(** The AST-driven rule checks (CQL001–CQL004, CQL006–CQL010).

    CQL005 (mli-coverage) is a file-system property and lives in
    {!Engine}.  All checks are scope-aware: a local or module-level
    binding of [compare]/[min]/[max] shadows the polymorphic primitive
    and suppresses CQL001 for uses in its scope, and functor bodies are
    exempt from CQL003 (their "module-level" state is allocated per
    application).

    The concurrency/performance rules (CQL006–CQL010) run as a second
    pass that first collects whole-file context — module-level function
    bodies and their local call sets, module-level mutable bindings, and
    the transitive closure of [\[@cq.hot\]] annotations over local calls
    (cut by [\[@cq.cold\]]) — then threads an environment
    (hot? exempt? tail? blocking-ok?) through an explicit AST walk.
    Everything is a per-file, name-based over-approximation: the rules
    enforce conventions the type system cannot express, and false
    positives are handled by restructuring the code or by a justified
    waiver, never by weakening the rule. *)

val check_structure : path:string -> Ppxlib.structure -> Diagnostic.t list
(** Run every rule that applies to [path] (see {!Rule.applies_to}) over
    a parsed implementation; diagnostics come back in source order. *)

val check_signature : path:string -> Ppxlib.signature -> Diagnostic.t list
(** Interfaces contain no expressions; today this is always []. *)

val hot_bindings : Ppxlib.structure -> (string * int) list
(** The [\[@cq.hot\]]-annotated value bindings of a parsed
    implementation as [(name, line)] pairs in source order — the raw
    material for the committed hot-path manifest ([out/hot_path.list])
    that CI uses to refuse silent annotation removal. *)
