(** The AST-driven rule checks (CQL001–CQL004).

    CQL005 (mli-coverage) is a file-system property and lives in
    {!Engine}.  All checks are scope-aware: a local or module-level
    binding of [compare]/[min]/[max] shadows the polymorphic primitive
    and suppresses CQL001 for uses in its scope, and functor bodies are
    exempt from CQL003 (their "module-level" state is allocated per
    application). *)

val check_structure : path:string -> Ppxlib.structure -> Diagnostic.t list
(** Run every rule that applies to [path] (see {!Rule.applies_to}) over
    a parsed implementation; diagnostics come back in source order. *)

val check_signature : path:string -> Ppxlib.signature -> Diagnostic.t list
(** Interfaces contain no expressions; today this is always []. *)
