type t = {
  rule : Rule.t;
  path : string;
  line : int option;
  justification : string;
  source_line : int;
}

type parse_error = { file : string; source_line : int; text : string; reason : string }

let error_to_string e =
  Printf.sprintf "%s:%d: bad waiver %S: %s" e.file e.source_line e.text e.reason

let normalize_path p =
  let p =
    if String.length p > 2 && String.equal (String.sub p 0 2) "./" then
      String.sub p 2 (String.length p - 2)
    else p
  in
  String.map (function '\\' -> '/' | c -> c) p

(* [path] or [path:line]; a trailing all-digit component after the last
   ':' is a line number. *)
let split_site site =
  match String.rindex_opt site ':' with
  | None -> Ok (normalize_path site, None)
  | Some i ->
      let path = String.sub site 0 i in
      let suffix = String.sub site (i + 1) (String.length site - i - 1) in
      if String.equal suffix "" then Error "empty line number after ':'"
      else if String.for_all (fun c -> c >= '0' && c <= '9') suffix then
        let n = int_of_string suffix in
        if n <= 0 then Error "line numbers are 1-based" else Ok (normalize_path path, Some n)
      else Error (Printf.sprintf "%S is not a line number" suffix)

let site_to_string w =
  match w.line with
  | None -> Printf.sprintf "%s %s" (Rule.id w.rule) w.path
  | Some l -> Printf.sprintf "%s %s:%d" (Rule.id w.rule) w.path l

let parse_line ~file ~source_line raw =
  let text = String.trim raw in
  let err reason = Error { file; source_line; text; reason } in
  if String.equal text "" || Char.equal text.[0] '#' then Ok None
  else
    match String.index_opt text ' ' with
    | None -> err "expected: RULE path[:line] -- justification"
    | Some sp -> (
        let rule_s = String.sub text 0 sp in
        match Rule.of_id rule_s with
        | None -> err (Printf.sprintf "unknown rule id %S (expected CQL001..CQL010)" rule_s)
        | Some rule -> (
            let rest = String.trim (String.sub text sp (String.length text - sp)) in
            (* Find the " -- " justification separator. *)
            let sep =
              let rec find i =
                if i + 2 > String.length rest then None
                else if String.equal (String.sub rest i 2) "--" then Some i
                else find (i + 1)
              in
              find 0
            in
            match sep with
            | None -> err "missing ' -- justification' (every waiver must say why)"
            | Some i -> (
                let site = String.trim (String.sub rest 0 i) in
                let just = String.trim (String.sub rest (i + 2) (String.length rest - i - 2)) in
                if String.equal site "" then err "missing path before '--'"
                else if String.equal just "" then err "empty justification after '--'"
                else
                  match split_site site with
                  | Error reason -> err reason
                  | Ok (path, line) ->
                      Ok (Some { rule; path; line; justification = just; source_line }))))

let parse ~file contents =
  let lines = String.split_on_char '\n' contents in
  let waivers = ref [] and errors = ref [] in
  List.iteri
    (fun i raw ->
      match parse_line ~file ~source_line:(i + 1) raw with
      | Ok None -> ()
      | Ok (Some w) -> (
          (* A duplicate site is a stale edit, not extra safety: the
             second entry would mask the removal of the first. *)
          match
            List.find_opt
              (fun p ->
                Rule.equal p.rule w.rule
                && String.equal p.path w.path
                && (match (p.line, w.line) with
                   | None, None -> true
                   | Some a, Some b -> a = b
                   | _ -> false))
              !waivers
          with
          | Some first ->
              errors :=
                {
                  file;
                  source_line = w.source_line;
                  text = String.trim raw;
                  reason =
                    Printf.sprintf "duplicate waiver for %s (first on line %d)"
                      (site_to_string w) first.source_line;
                }
                :: !errors
          | None -> waivers := w :: !waivers)
      | Error e -> errors := e :: !errors)
    lines;
  match List.rev !errors with [] -> Ok (List.rev !waivers) | es -> Error es

let load file =
  match In_channel.with_open_bin file In_channel.input_all with
  | contents -> parse ~file contents
  | exception Sys_error msg ->
      Error [ { file; source_line = 0; text = ""; reason = msg } ]

let covers w (d : Diagnostic.t) =
  Rule.equal w.rule d.rule
  && String.equal w.path d.path
  && match w.line with None -> true | Some l -> l = d.line
