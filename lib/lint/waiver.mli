(** Per-site waivers loaded from a checked-in [.cqlint] allowlist.

    One waiver per line:
    {v
    # comments and blank lines are ignored
    CQL003 lib/obs/metrics.ml:6 -- the sanctioned off-by-default switch
    CQL002 lib/util/vec.ml -- invalid_arg precondition guards (DESIGN §10)
    v}
    The justification after [--] is mandatory: a waiver that cannot say
    why it exists is a finding waiting to happen. *)

type t = {
  rule : Rule.t;
  path : string;  (** workspace-relative *)
  line : int option;  (** [None] waives the whole file for that rule *)
  justification : string;
  source_line : int;  (** 1-based line in the waiver file *)
}

type parse_error = { file : string; source_line : int; text : string; reason : string }

val error_to_string : parse_error -> string

val parse_line :
  file:string -> source_line:int -> string -> (t option, parse_error) result
(** [Ok None] for blank/comment lines. *)

val parse : file:string -> string -> (t list, parse_error list) result
(** Parse a whole waiver file; all bad lines are reported, not just the
    first. *)

val load : string -> (t list, parse_error list) result
(** [parse] on a file path; a missing file is a (single) error. *)

val covers : t -> Diagnostic.t -> bool
val site_to_string : t -> string
