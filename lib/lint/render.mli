(** Report rendering: compiler-style text and the machine-readable JSON
    the CI gate jq-checks (schema_version 1). *)

val json_of_report : Engine.report -> string
(** One JSON object:
    [{tool, schema_version, summary:{files,findings,waived,unused_waivers,errors},
      findings:[...], waived:[...], unused_waivers:[...], errors:[...]}] *)

val text_of_report : Engine.report -> string
