(** Report rendering: compiler-style text, the machine-readable JSON
    the CI gate jq-checks (schema_version 2), and SARIF 2.1.0 for
    GitHub code scanning. *)

val json_of_report : Engine.report -> string
(** One JSON object:
    [{tool, schema_version, rules:[...],
      summary:{files,findings,waived,unused_waivers,errors},
      findings:[...], waived:[...], unused_waivers:[...], errors:[...]}] *)

val sarif_of_report : Engine.report -> string
(** SARIF 2.1.0, one run: the full rule catalogue under
    [tool.driver.rules], one [result] per finding.  Waived findings are
    emitted with an external [suppression] carrying the waiver's
    justification, so code scanning shows them as suppressed rather
    than losing them. *)

val text_of_report : Engine.report -> string
