(* Hand-rolled JSON, same approach as Cq_bench.Report: the schema is
   small and fixed, and the lint tool must not grow dependencies. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""

let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"

let arr items = "[" ^ String.concat "," items ^ "]"

let finding_fields (d : Diagnostic.t) =
  [
    ("rule", str (Rule.id d.rule));
    ("name", str (Rule.name d.rule));
    ("path", str d.path);
    ("line", string_of_int d.line);
    ("col", string_of_int d.col);
    ("end_line", string_of_int d.end_line);
    ("end_col", string_of_int d.end_col);
    ("message", str d.message);
  ]

let waiver_fields (w : Waiver.t) =
  [
    ("rule", str (Rule.id w.rule));
    ("path", str w.path);
    ("line", match w.line with Some l -> string_of_int l | None -> "null");
    ("justification", str w.justification);
    ("waiver_line", string_of_int w.source_line);
  ]

let rule_fields rule =
  [
    ("id", str (Rule.id rule));
    ("name", str (Rule.name rule));
    ("summary", str (Rule.summary rule));
  ]

(* schema_version 2 (PR 9): adds the [rules] catalogue so consumers can
   render names/rationales without hard-coding the rule set. *)
let json_of_report (r : Engine.report) =
  obj
    [
      ("tool", str "cqlint");
      ("schema_version", "2");
      ("rules", arr (List.map (fun rule -> obj (rule_fields rule)) Rule.all));
      ( "summary",
        obj
          [
            ("files", string_of_int (List.length r.files));
            ("findings", string_of_int (List.length r.findings));
            ("waived", string_of_int (List.length r.waived));
            ("unused_waivers", string_of_int (List.length r.unused_waivers));
            ("errors", string_of_int (List.length r.errors));
          ] );
      ("findings", arr (List.map (fun d -> obj (finding_fields d)) r.findings));
      ( "waived",
        arr
          (List.map
             (fun (d, (w : Waiver.t)) ->
               obj (finding_fields d @ [ ("justification", str w.justification) ]))
             r.waived) );
      ("unused_waivers", arr (List.map (fun w -> obj (waiver_fields w)) r.unused_waivers));
      ("errors", arr (List.map str r.errors));
    ]

(* SARIF 2.1.0 — the minimal profile GitHub code scanning consumes:
   one run, a driver with the rule catalogue, one result per unwaived
   finding (waived findings are suppressed in-source per §3.35).
   Columns are 1-based in SARIF; Diagnostic stores 0-based columns. *)
let sarif_of_report (r : Engine.report) =
  let sarif_rule rule =
    obj
      [
        ("id", str (Rule.id rule));
        ("name", str (Rule.name rule));
        ("shortDescription", obj [ ("text", str (Rule.name rule)) ]);
        ("fullDescription", obj [ ("text", str (Rule.summary rule)) ]);
        ("defaultConfiguration", obj [ ("level", str "error") ]);
      ]
  in
  let rule_index rule =
    let rec go i = function
      | [] -> -1
      | r :: _ when Rule.equal r rule -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 Rule.all
  in
  let location (d : Diagnostic.t) =
    obj
      [
        ( "physicalLocation",
          obj
            [
              ("artifactLocation", obj [ ("uri", str d.path) ]);
              ( "region",
                obj
                  [
                    ("startLine", string_of_int d.line);
                    ("startColumn", string_of_int (d.col + 1));
                    ("endLine", string_of_int d.end_line);
                    ("endColumn", string_of_int (d.end_col + 1));
                  ] );
            ] );
      ]
  in
  let result ?suppression (d : Diagnostic.t) =
    obj
      ([
         ("ruleId", str (Rule.id d.rule));
         ("ruleIndex", string_of_int (rule_index d.rule));
         ("level", str "error");
         ("message", obj [ ("text", str d.message) ]);
         ("locations", arr [ location d ]);
       ]
      @
      match suppression with
      | None -> []
      | Some why ->
          [
            ( "suppressions",
              arr
                [
                  obj
                    [
                      ("kind", str "external");
                      ("justification", str why);
                    ];
                ] );
          ])
  in
  let results =
    List.map (fun d -> result d) r.findings
    @ List.map
        (fun (d, (w : Waiver.t)) -> result ~suppression:w.justification d)
        r.waived
  in
  obj
    [
      ("version", str "2.1.0");
      ( "$schema",
        str
          "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
      );
      ( "runs",
        arr
          [
            obj
              [
                ( "tool",
                  obj
                    [
                      ( "driver",
                        obj
                          [
                            ("name", str "cqlint");
                            ("informationUri", str "https://example.invalid/cqlint");
                            ("rules", arr (List.map sarif_rule Rule.all));
                          ] );
                    ] );
                ("results", arr results);
              ];
          ] );
    ]

let text_of_report (r : Engine.report) =
  let buf = Buffer.create 1024 in
  List.iter (fun e -> Buffer.add_string buf ("error: " ^ e ^ "\n")) r.errors;
  List.iter (fun d -> Buffer.add_string buf (Diagnostic.to_string d ^ "\n")) r.findings;
  List.iter
    (fun (w : Waiver.t) ->
      Buffer.add_string buf
        (Printf.sprintf "unused waiver (remove or re-justify, line %d): %s -- %s\n"
           w.source_line (Waiver.site_to_string w) w.justification))
    r.unused_waivers;
  Buffer.add_string buf
    (Printf.sprintf "%d file(s) scanned: %d finding(s), %d waived, %d unused waiver(s)%s\n"
       (List.length r.files) (List.length r.findings) (List.length r.waived)
       (List.length r.unused_waivers)
       (if Engine.clean r then " — clean" else ""));
  Buffer.contents buf
