(* Hand-rolled JSON, same approach as Cq_bench.Report: the schema is
   small and fixed, and the lint tool must not grow dependencies. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""

let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"

let arr items = "[" ^ String.concat "," items ^ "]"

let finding_fields (d : Diagnostic.t) =
  [
    ("rule", str (Rule.id d.rule));
    ("name", str (Rule.name d.rule));
    ("path", str d.path);
    ("line", string_of_int d.line);
    ("col", string_of_int d.col);
    ("end_line", string_of_int d.end_line);
    ("end_col", string_of_int d.end_col);
    ("message", str d.message);
  ]

let waiver_fields (w : Waiver.t) =
  [
    ("rule", str (Rule.id w.rule));
    ("path", str w.path);
    ("line", match w.line with Some l -> string_of_int l | None -> "null");
    ("justification", str w.justification);
    ("waiver_line", string_of_int w.source_line);
  ]

let json_of_report (r : Engine.report) =
  obj
    [
      ("tool", str "cqlint");
      ("schema_version", "1");
      ( "summary",
        obj
          [
            ("files", string_of_int (List.length r.files));
            ("findings", string_of_int (List.length r.findings));
            ("waived", string_of_int (List.length r.waived));
            ("unused_waivers", string_of_int (List.length r.unused_waivers));
            ("errors", string_of_int (List.length r.errors));
          ] );
      ("findings", arr (List.map (fun d -> obj (finding_fields d)) r.findings));
      ( "waived",
        arr
          (List.map
             (fun (d, (w : Waiver.t)) ->
               obj (finding_fields d @ [ ("justification", str w.justification) ]))
             r.waived) );
      ("unused_waivers", arr (List.map (fun w -> obj (waiver_fields w)) r.unused_waivers));
      ("errors", arr (List.map str r.errors));
    ]

let text_of_report (r : Engine.report) =
  let buf = Buffer.create 1024 in
  List.iter (fun e -> Buffer.add_string buf ("error: " ^ e ^ "\n")) r.errors;
  List.iter (fun d -> Buffer.add_string buf (Diagnostic.to_string d ^ "\n")) r.findings;
  List.iter
    (fun (w : Waiver.t) ->
      Buffer.add_string buf
        (Printf.sprintf "unused waiver (remove or re-justify, line %d): %s -- %s\n"
           w.source_line (Waiver.site_to_string w) w.justification))
    r.unused_waivers;
  Buffer.add_string buf
    (Printf.sprintf "%d file(s) scanned: %d finding(s), %d waived, %d unused waiver(s)%s\n"
       (List.length r.files) (List.length r.findings) (List.length r.waived)
       (List.length r.unused_waivers)
       (if Engine.clean r then " — clean" else ""));
  Buffer.contents buf
