(** Orchestration: discover sources, parse, run rules, apply waivers. *)

type report = {
  findings : Diagnostic.t list;  (** unwaived — these fail the build *)
  waived : (Diagnostic.t * Waiver.t) list;
  unused_waivers : Waiver.t list;
      (** stale allowlist entries — also fatal, so [.cqlint] never rots *)
  files : string list;  (** every file scanned, workspace-relative *)
  errors : string list;  (** I/O, parse and waiver-file errors *)
}

val clean : report -> bool
(** No findings, no unused waivers, no errors. *)

val discover : root:string -> string list
(** Every [.ml]/[.mli] under [root/lib] and [root/bin], skipping
    [_build]/[.git]/hidden directories; sorted, relative paths. *)

val lint_source : path:string -> string -> (Diagnostic.t list, string) result
(** Parse and check an in-memory source (the fixture-test entry point);
    [path] decides which rules apply.  CQL005 is not checked here. *)

val lint_path : root:string -> path:string -> (Diagnostic.t list, string) result

val run : ?waiver_file:string -> root:string -> unit -> report
(** Full run over [root].  [waiver_file] defaults to [root/.cqlint]
    when that file exists; a missing default is simply "no waivers". *)

val hot_manifest : root:string -> string list
(** Sorted ["path:name"] lines, one per [\[@cq.hot\]] binding under
    [root].  Line numbers are omitted so unrelated edits do not churn
    the committed manifest ([out/hot_path.list]); CI regenerates it and
    fails if any committed entry disappeared. *)
