open Ppxlib

(* Names whose local (re)binding shadows the polymorphic primitive of
   the same name: a module-level [let compare = Elem.compare] makes
   later bare [compare] uses monomorphic and unflaggable. *)
let shadowable = [ "compare"; "min"; "max"; "failwith"; "invalid_arg" ]
let is_shadowable n = List.exists (String.equal n) shadowable

let rec bound_names acc p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt :: acc
  | Ppat_alias (sub, { txt; _ }) -> bound_names (txt :: acc) sub
  | Ppat_tuple ps | Ppat_array ps -> List.fold_left bound_names acc ps
  | Ppat_construct (_, Some (_, sub)) -> bound_names acc sub
  | Ppat_variant (_, Some sub)
  | Ppat_constraint (sub, _)
  | Ppat_lazy sub
  | Ppat_open (_, sub)
  | Ppat_exception sub ->
      bound_names acc sub
  | Ppat_or (a, b) -> bound_names (bound_names acc a) b
  | Ppat_record (fields, _) ->
      List.fold_left (fun acc (_, sub) -> bound_names acc sub) acc fields
  | _ -> acc

let rec strip_constraint e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> strip_constraint e
  | _ -> e

(* Comparison operators the compiler specializes when the operand type
   is known: flagged only against operands whose type is syntactically
   non-immediate (a structural literal). *)
let poly_operators = [ "="; "<>"; "<"; ">"; "<="; ">=" ]
let is_poly_operator n = List.exists (String.equal n) poly_operators

(* List functions that embed a polymorphic equality. *)
let poly_list_fns = [ "mem"; "memq"; "assoc"; "assq"; "mem_assoc"; "mem_assq" ]

let is_structural_literal e =
  match (strip_constraint e).pexp_desc with
  | Pexp_construct ({ txt = Lident ("None" | "[]"); _ }, None) -> true
  | Pexp_construct (_, Some _) -> true (* Some x, x :: tl, C payload *)
  | Pexp_variant (_, Some _) -> true
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_constant (Pconst_string _) -> true
  | _ -> false

let is_float_literal e =
  match (strip_constraint e).pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | _ -> false

let literal_hint e =
  match (strip_constraint e).pexp_desc with
  | Pexp_construct ({ txt = Lident "None"; _ }, None) ->
      "use Option.is_none / Option.is_some or pattern-match"
  | Pexp_construct ({ txt = Lident "[]"; _ }, None) ->
      "use List.is_empty or pattern-match"
  | Pexp_constant (Pconst_string _) -> "use String.equal / String.compare"
  | Pexp_constant (Pconst_float _) -> "use Float.compare / Float.min / Float.max"
  | _ -> "use a typed comparator (List.equal, Option.equal, a record field order, ...)"

let mutable_ctor lid =
  match lid with
  | Lident "ref" -> Some "ref"
  | Ldot (Lident "Hashtbl", "create") -> Some "Hashtbl.create"
  | Ldot (Lident "Buffer", "create") -> Some "Buffer.create"
  | Ldot (Lident "Bytes", ("create" | "make")) -> Some "Bytes.create"
  | Ldot (Lident "Atomic", "make") -> Some "Atomic.make"
  | Ldot (Lident "Queue", "create") -> Some "Queue.create"
  | Ldot (Lident "Stack", "create") -> Some "Stack.create"
  | Ldot (Lident "Array", ("make" | "init" | "create_float")) -> Some "Array.make"
  | _ -> None

let strip_stdlib = function Ldot (Lident "Stdlib", n) -> Lident n | lid -> lid

class checker ~path ~(report : Diagnostic.t -> unit) =
  let active r = Rule.applies_to r ~path in
  let r001 = active Rule.CQL001
  and r002 = active Rule.CQL002
  and r003 = active Rule.CQL003
  and r004 = active Rule.CQL004 in
  object (self)
    inherit Ast_traverse.iter as super

    (* Multiset of currently shadowed primitive names. *)
    val shadows : (string, int) Hashtbl.t = Hashtbl.create 8

    (* Functor bodies allocate fresh state per application — their
       module-level bindings are constructor state, not globals. *)
    val mutable in_functor = false

    method private shadowed n =
      match Hashtbl.find_opt shadows n with Some c -> c > 0 | None -> false

    method private push names =
      List.iter
        (fun n ->
          if is_shadowable n then
            Hashtbl.replace shadows n (1 + Option.value ~default:0 (Hashtbl.find_opt shadows n)))
        names

    method private pop names =
      List.iter
        (fun n ->
          if is_shadowable n then
            Hashtbl.replace shadows n (Option.value ~default:1 (Hashtbl.find_opt shadows n) - 1))
        names

    method private emit rule loc message =
      report (Diagnostic.make ~rule ~path ~loc message)

    method private check_ident lid loc =
      (match strip_stdlib lid with
      | Lident "compare" when r001 && not (self#shadowed "compare") ->
          self#emit Rule.CQL001 loc
            "bare polymorphic compare: indirect call per comparison and \
             NaN-unsound on float keys; use a monomorphic comparator \
             (Float.compare, Int.compare, Cq_util.Order.*)"
      | Ldot (Lident "Hashtbl", ("hash" | "seeded_hash")) when r001 ->
          self#emit Rule.CQL001 loc
            "polymorphic Hashtbl.hash walks the value representation; hash an \
             explicit key instead"
      | Lident "failwith" when r002 && not (self#shadowed "failwith") ->
          self#emit Rule.CQL002 loc
            "bare failwith in library code: raise a typed Cq_util.Error \
             (Error.corrupt for audit failures) so callers can match on it"
      | Lident "invalid_arg" when r002 && not (self#shadowed "invalid_arg") ->
          self#emit Rule.CQL002 loc
            "invalid_arg is reserved for waived precondition guards; new code \
             returns (_, Cq_util.Error.t) result via a try_* API"
      | Ldot (Lident "Obj", ("magic" | "repr" | "obj")) when r004 ->
          self#emit Rule.CQL004 loc "Obj.magic (and Obj.repr/Obj.obj) defeat the type system"
      | _ -> ())

    method private check_apply f args =
      if r001 then
        match (strip_constraint f).pexp_desc with
        | Pexp_ident { txt; loc = _ } -> (
            let args = List.map snd args in
            match strip_stdlib txt with
            | Lident op when is_poly_operator op ->
                List.iter
                  (fun a ->
                    if is_structural_literal a then
                      self#emit Rule.CQL001 a.pexp_loc
                        (Printf.sprintf
                           "polymorphic (%s) against a structural literal; %s" op
                           (literal_hint a)))
                  args
            | Lident (("min" | "max") as op) when not (self#shadowed op) ->
                List.iter
                  (fun a ->
                    if is_float_literal a || is_structural_literal a then
                      self#emit Rule.CQL001 a.pexp_loc
                        (Printf.sprintf
                           "polymorphic %s at a non-immediate type; %s" op
                           (literal_hint a)))
                  args
            | Ldot (Lident "List", fn) when List.exists (String.equal fn) poly_list_fns ->
                List.iter
                  (fun a ->
                    if is_structural_literal a then
                      self#emit Rule.CQL001 a.pexp_loc
                        (Printf.sprintf
                           "List.%s uses polymorphic equality on a structural \
                            key; use an explicit equality (List.exists + \
                            String.equal, an assoc with typed keys, ...)" fn))
                  args
            | _ -> ())
        | _ -> ()

    method private check_toplevel_state vbs =
      if r003 && not in_functor then
        List.iter
          (fun vb ->
            match (strip_constraint vb.pvb_expr).pexp_desc with
            | Pexp_apply (f, _) -> (
                match (strip_constraint f).pexp_desc with
                | Pexp_ident { txt; _ } -> (
                    match mutable_ctor (strip_stdlib txt) with
                    | Some what ->
                        self#emit Rule.CQL003 vb.pvb_loc
                          (Printf.sprintf
                             "top-level mutable state (%s): shared state must \
                              be explicit before sharding — pass it through a \
                              create function, or waive with a justification"
                             what)
                    | None -> ())
                | _ -> ())
            | _ -> ())
          vbs

    method private visit_cases cases =
      List.iter
        (fun c ->
          let names = bound_names [] c.pc_lhs in
          self#push names;
          Option.iter self#expression c.pc_guard;
          self#expression c.pc_rhs;
          self#pop names)
        cases

    method private visit_bindings rf vbs k =
      let names = List.concat_map (fun vb -> bound_names [] vb.pvb_pat) vbs in
      if rf = Recursive then begin
        self#push names;
        List.iter (fun vb -> self#expression vb.pvb_expr) vbs;
        k ();
        self#pop names
      end
      else begin
        List.iter (fun vb -> self#expression vb.pvb_expr) vbs;
        self#push names;
        k ();
        self#pop names
      end

    method! expression e =
      match e.pexp_desc with
      | Pexp_ident { txt; _ } -> self#check_ident txt e.pexp_loc
      | Pexp_construct ({ txt = Lident (("Failure" | "Invalid_argument") as exc); _ }, Some _)
        when r002 ->
          self#emit Rule.CQL002 e.pexp_loc
            (Printf.sprintf
               "constructing %s directly; raise a typed Cq_util.Error instead \
                (catching it in a handler pattern is fine)" exc);
          super#expression e
      | Pexp_apply (f, args) ->
          self#check_apply f args;
          super#expression e
      | Pexp_let (rf, vbs, body) ->
          self#visit_bindings rf vbs (fun () -> self#expression body)
      | Pexp_function (params, _, body) ->
          let names =
            List.concat_map
              (fun p ->
                match p.pparam_desc with
                | Pparam_val (_, default, pat) ->
                    Option.iter self#expression default;
                    bound_names [] pat
                | Pparam_newtype _ -> [])
              params
          in
          self#push names;
          (match body with
          | Pfunction_body b -> self#expression b
          | Pfunction_cases (cases, _, _) -> self#visit_cases cases);
          self#pop names
      | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
          self#expression scrut;
          self#visit_cases cases
      | _ -> super#expression e

    method! module_expr m =
      match m.pmod_desc with
      | Pmod_functor (_, body) ->
          let saved = in_functor in
          in_functor <- true;
          self#module_expr body;
          in_functor <- saved
      | _ -> super#module_expr m

    method! structure items =
      let pushed = ref [] in
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (rf, vbs) ->
              self#check_toplevel_state vbs;
              let names = List.concat_map (fun vb -> bound_names [] vb.pvb_pat) vbs in
              if rf = Recursive then begin
                self#push names;
                List.iter (fun vb -> self#expression vb.pvb_expr) vbs
              end
              else begin
                List.iter (fun vb -> self#expression vb.pvb_expr) vbs;
                self#push names
              end;
              pushed := names @ !pushed
          | _ -> super#structure_item item)
        items;
      self#pop !pushed
  end

let check_structure ~path st =
  let acc = ref [] in
  let c = new checker ~path ~report:(fun d -> acc := d :: !acc) in
  c#structure st;
  List.sort Diagnostic.compare !acc

let check_signature ~path:_ (_ : signature) = []
