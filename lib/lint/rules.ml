open Ppxlib

(* Names whose local (re)binding shadows the polymorphic primitive of
   the same name: a module-level [let compare = Elem.compare] makes
   later bare [compare] uses monomorphic and unflaggable. *)
let shadowable = [ "compare"; "min"; "max"; "failwith"; "invalid_arg" ]
let is_shadowable n = List.exists (String.equal n) shadowable

let rec bound_names acc p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt :: acc
  | Ppat_alias (sub, { txt; _ }) -> bound_names (txt :: acc) sub
  | Ppat_tuple ps | Ppat_array ps -> List.fold_left bound_names acc ps
  | Ppat_construct (_, Some (_, sub)) -> bound_names acc sub
  | Ppat_variant (_, Some sub)
  | Ppat_constraint (sub, _)
  | Ppat_lazy sub
  | Ppat_open (_, sub)
  | Ppat_exception sub ->
      bound_names acc sub
  | Ppat_or (a, b) -> bound_names (bound_names acc a) b
  | Ppat_record (fields, _) ->
      List.fold_left (fun acc (_, sub) -> bound_names acc sub) acc fields
  | _ -> acc

let rec strip_constraint e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> strip_constraint e
  | _ -> e

(* Comparison operators the compiler specializes when the operand type
   is known: flagged only against operands whose type is syntactically
   non-immediate (a structural literal). *)
let poly_operators = [ "="; "<>"; "<"; ">"; "<="; ">=" ]
let is_poly_operator n = List.exists (String.equal n) poly_operators

(* List functions that embed a polymorphic equality. *)
let poly_list_fns = [ "mem"; "memq"; "assoc"; "assq"; "mem_assoc"; "mem_assq" ]

let is_structural_literal e =
  match (strip_constraint e).pexp_desc with
  | Pexp_construct ({ txt = Lident ("None" | "[]"); _ }, None) -> true
  | Pexp_construct (_, Some _) -> true (* Some x, x :: tl, C payload *)
  | Pexp_variant (_, Some _) -> true
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_constant (Pconst_string _) -> true
  | _ -> false

let is_float_literal e =
  match (strip_constraint e).pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | _ -> false

let literal_hint e =
  match (strip_constraint e).pexp_desc with
  | Pexp_construct ({ txt = Lident "None"; _ }, None) ->
      "use Option.is_none / Option.is_some or pattern-match"
  | Pexp_construct ({ txt = Lident "[]"; _ }, None) ->
      "use List.is_empty or pattern-match"
  | Pexp_constant (Pconst_string _) -> "use String.equal / String.compare"
  | Pexp_constant (Pconst_float _) -> "use Float.compare / Float.min / Float.max"
  | _ -> "use a typed comparator (List.equal, Option.equal, a record field order, ...)"

let mutable_ctor lid =
  match lid with
  | Lident "ref" -> Some "ref"
  | Ldot (Lident "Hashtbl", "create") -> Some "Hashtbl.create"
  | Ldot (Lident "Buffer", "create") -> Some "Buffer.create"
  | Ldot (Lident "Bytes", ("create" | "make")) -> Some "Bytes.create"
  | Ldot (Lident "Atomic", "make") -> Some "Atomic.make"
  | Ldot (Lident "Queue", "create") -> Some "Queue.create"
  | Ldot (Lident "Stack", "create") -> Some "Stack.create"
  | Ldot (Lident "Array", ("make" | "init" | "create_float")) -> Some "Array.make"
  | _ -> None

let strip_stdlib = function Ldot (Lident "Stdlib", n) -> Lident n | lid -> lid

class checker ~path ~(report : Diagnostic.t -> unit) =
  let active r = Rule.applies_to r ~path in
  let r001 = active Rule.CQL001
  and r002 = active Rule.CQL002
  and r003 = active Rule.CQL003
  and r004 = active Rule.CQL004 in
  object (self)
    inherit Ast_traverse.iter as super

    (* Multiset of currently shadowed primitive names. *)
    val shadows : (string, int) Hashtbl.t = Hashtbl.create 8

    (* Functor bodies allocate fresh state per application — their
       module-level bindings are constructor state, not globals. *)
    val mutable in_functor = false

    method private shadowed n =
      match Hashtbl.find_opt shadows n with Some c -> c > 0 | None -> false

    method private push names =
      List.iter
        (fun n ->
          if is_shadowable n then
            Hashtbl.replace shadows n (1 + Option.value ~default:0 (Hashtbl.find_opt shadows n)))
        names

    method private pop names =
      List.iter
        (fun n ->
          if is_shadowable n then
            Hashtbl.replace shadows n (Option.value ~default:1 (Hashtbl.find_opt shadows n) - 1))
        names

    method private emit rule loc message =
      report (Diagnostic.make ~rule ~path ~loc message)

    method private check_ident lid loc =
      (match strip_stdlib lid with
      | Lident "compare" when r001 && not (self#shadowed "compare") ->
          self#emit Rule.CQL001 loc
            "bare polymorphic compare: indirect call per comparison and \
             NaN-unsound on float keys; use a monomorphic comparator \
             (Float.compare, Int.compare, Cq_util.Order.*)"
      | Ldot (Lident "Hashtbl", ("hash" | "seeded_hash")) when r001 ->
          self#emit Rule.CQL001 loc
            "polymorphic Hashtbl.hash walks the value representation; hash an \
             explicit key instead"
      | Lident "failwith" when r002 && not (self#shadowed "failwith") ->
          self#emit Rule.CQL002 loc
            "bare failwith in library code: raise a typed Cq_util.Error \
             (Error.corrupt for audit failures) so callers can match on it"
      | Lident "invalid_arg" when r002 && not (self#shadowed "invalid_arg") ->
          self#emit Rule.CQL002 loc
            "invalid_arg is reserved for waived precondition guards; new code \
             returns (_, Cq_util.Error.t) result via a try_* API"
      | Ldot (Lident "Obj", ("magic" | "repr" | "obj")) when r004 ->
          self#emit Rule.CQL004 loc "Obj.magic (and Obj.repr/Obj.obj) defeat the type system"
      | _ -> ())

    method private check_apply f args =
      if r001 then
        match (strip_constraint f).pexp_desc with
        | Pexp_ident { txt; loc = _ } -> (
            let args = List.map snd args in
            match strip_stdlib txt with
            | Lident op when is_poly_operator op ->
                List.iter
                  (fun a ->
                    if is_structural_literal a then
                      self#emit Rule.CQL001 a.pexp_loc
                        (Printf.sprintf
                           "polymorphic (%s) against a structural literal; %s" op
                           (literal_hint a)))
                  args
            | Lident (("min" | "max") as op) when not (self#shadowed op) ->
                List.iter
                  (fun a ->
                    if is_float_literal a || is_structural_literal a then
                      self#emit Rule.CQL001 a.pexp_loc
                        (Printf.sprintf
                           "polymorphic %s at a non-immediate type; %s" op
                           (literal_hint a)))
                  args
            | Ldot (Lident "List", fn) when List.exists (String.equal fn) poly_list_fns ->
                List.iter
                  (fun a ->
                    if is_structural_literal a then
                      self#emit Rule.CQL001 a.pexp_loc
                        (Printf.sprintf
                           "List.%s uses polymorphic equality on a structural \
                            key; use an explicit equality (List.exists + \
                            String.equal, an assoc with typed keys, ...)" fn))
                  args
            | _ -> ())
        | _ -> ()

    method private check_toplevel_state vbs =
      if r003 && not in_functor then
        List.iter
          (fun vb ->
            match (strip_constraint vb.pvb_expr).pexp_desc with
            | Pexp_apply (f, _) -> (
                match (strip_constraint f).pexp_desc with
                | Pexp_ident { txt; _ } -> (
                    match mutable_ctor (strip_stdlib txt) with
                    | Some what ->
                        self#emit Rule.CQL003 vb.pvb_loc
                          (Printf.sprintf
                             "top-level mutable state (%s): shared state must \
                              be explicit before sharding — pass it through a \
                              create function, or waive with a justification"
                             what)
                    | None -> ())
                | _ -> ())
            | _ -> ())
          vbs

    method private visit_cases cases =
      List.iter
        (fun c ->
          let names = bound_names [] c.pc_lhs in
          self#push names;
          Option.iter self#expression c.pc_guard;
          self#expression c.pc_rhs;
          self#pop names)
        cases

    method private visit_bindings rf vbs k =
      let names = List.concat_map (fun vb -> bound_names [] vb.pvb_pat) vbs in
      if rf = Recursive then begin
        self#push names;
        List.iter (fun vb -> self#expression vb.pvb_expr) vbs;
        k ();
        self#pop names
      end
      else begin
        List.iter (fun vb -> self#expression vb.pvb_expr) vbs;
        self#push names;
        k ();
        self#pop names
      end

    method! expression e =
      match e.pexp_desc with
      | Pexp_ident { txt; _ } -> self#check_ident txt e.pexp_loc
      | Pexp_construct ({ txt = Lident (("Failure" | "Invalid_argument") as exc); _ }, Some _)
        when r002 ->
          self#emit Rule.CQL002 e.pexp_loc
            (Printf.sprintf
               "constructing %s directly; raise a typed Cq_util.Error instead \
                (catching it in a handler pattern is fine)" exc);
          super#expression e
      | Pexp_apply (f, args) ->
          self#check_apply f args;
          super#expression e
      | Pexp_let (rf, vbs, body) ->
          self#visit_bindings rf vbs (fun () -> self#expression body)
      | Pexp_function (params, _, body) ->
          let names =
            List.concat_map
              (fun p ->
                match p.pparam_desc with
                | Pparam_val (_, default, pat) ->
                    Option.iter self#expression default;
                    bound_names [] pat
                | Pparam_newtype _ -> [])
              params
          in
          self#push names;
          (match body with
          | Pfunction_body b -> self#expression b
          | Pfunction_cases (cases, _, _) -> self#visit_cases cases);
          self#pop names
      | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
          self#expression scrut;
          self#visit_cases cases
      | _ -> super#expression e

    method! module_expr m =
      match m.pmod_desc with
      | Pmod_functor (_, body) ->
          let saved = in_functor in
          in_functor <- true;
          self#module_expr body;
          in_functor <- saved
      | _ -> super#module_expr m

    method! structure items =
      let pushed = ref [] in
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (rf, vbs) ->
              self#check_toplevel_state vbs;
              let names = List.concat_map (fun vb -> bound_names [] vb.pvb_pat) vbs in
              if rf = Recursive then begin
                self#push names;
                List.iter (fun vb -> self#expression vb.pvb_expr) vbs
              end
              else begin
                List.iter (fun vb -> self#expression vb.pvb_expr) vbs;
                self#push names
              end;
              pushed := names @ !pushed
          | _ -> super#structure_item item)
        items;
      self#pop !pushed
  end

(* ================================================================== *)
(* Pass 2: concurrency- and performance-safety rules (CQL006–CQL010)   *)
(*                                                                     *)
(* These rules need whole-file context the statement-local checker      *)
(* above cannot carry: which module-level bindings are mutable, which   *)
(* functions carry [@cq.hot] (directly or through a local call), and    *)
(* what a [Domain.spawn] argument can reach.  A prepass collects that   *)
(* context, then an explicit environment-threading walk applies the     *)
(* rules.  All analyses are per-file and name-based — deliberately      *)
(* conservative approximations of properties the type system cannot     *)
(* express (DESIGN.md §10).                                             *)
(* ================================================================== *)

let attr_names = List.map (fun (a : attribute) -> a.attr_name.txt)
let has_attr name attrs = List.exists (String.equal name) (attr_names attrs)
let hot_attr = "cq.hot"
let cold_attr = "cq.cold"
let blocking_ok_attr = "cq.blocking_ok"

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let rec lid_components = function
  | Lident n -> [ n ]
  | Ldot (l, n) -> lid_components l @ [ n ]
  | Lapply (a, b) -> lid_components a @ lid_components b

(* Every longident referenced in [e] (uses in any position). *)
let idents_of e =
  let acc = ref [] in
  let it =
    object
      inherit Ast_traverse.iter
      method! longident_loc l = acc := l.txt :: !acc
    end
  in
  it#expression e;
  !acc

let uses_var v e =
  List.exists (function Lident n -> String.equal n v | _ -> false) (idents_of e)

(* "Routes the failure": re-raises, or goes through the typed error
   channel (Cq_util.Error / the local Err alias). *)
let routes_failure e =
  List.exists
    (fun lid ->
      match lid_components lid with
      | [ ("raise" | "raise_notrace" | "failwith") ] -> true
      | comps ->
          List.exists (String.equal "raise_") comps
          || List.exists (String.equal "corrupt") comps
          || List.exists (fun c -> String.equal c "Error" || String.equal c "Err") comps)
    (idents_of e)

(* [if Metrics.enabled () then instrumented else bare]: only the bare
   branch runs in steady state, so the instrumented branch is exempt
   from the allocation gate (DESIGN.md §9: a disabled probe costs one
   load and one branch). *)
let gated_on_enabled cond =
  List.exists
    (fun lid ->
      match lid_components lid with
      | comps -> ( match List.rev comps with "enabled" :: _ -> true | _ -> false))
    (idents_of cond)

let raise_family lid =
  match lid_components lid with
  | [ ("raise" | "raise_notrace" | "failwith" | "invalid_arg") ] -> true
  | comps -> (
      match List.rev comps with
      | ("raise_" | "corrupt" | "raise" | "raise_notrace") :: _ -> true
      | _ -> false)

(* Blocking system-call family for CQL007.  [Unix.close] and the
   socket-option calls never block on a local socket and stay legal. *)
let blocking_call lid =
  match lid with
  | Ldot (Lident "Unix", fn) ->
      List.exists (String.equal fn)
        [
          "read"; "write"; "single_write"; "select"; "sleep"; "sleepf"; "accept";
          "connect"; "recv"; "recvfrom"; "send"; "sendto"; "waitpid"; "wait";
          "system"; "pause";
        ]
  | Ldot (Lident "Thread", ("delay" | "join")) -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Prepass: module-level functions, call graph, hot set, mutable tops   *)
(* ------------------------------------------------------------------ *)

type fn_info = {
  fn_loc : Location.t;
  fn_body : expression;  (** the binding RHS, constraints stripped *)
  fn_cold : bool;
  fn_arity : int;  (** syntactic parameter count of the outer function *)
  fn_plain : bool;  (** every parameter unlabelled — arity check is sound *)
  fn_calls : string list;  (** [Lident] references in the body *)
}

type ctx = {
  fns : (string, fn_info list) Hashtbl.t;
  mutable_tops : (string, string) Hashtbl.t;  (** name -> constructor *)
  hot : (string, unit) Hashtbl.t;  (** transitively hot names *)
  hot_seeds : (string * int) list;  (** annotated (name, line), manifest order *)
}

let rec binding_name pat =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> binding_name p
  | _ -> None

let fn_shape e =
  match (strip_constraint e).pexp_desc with
  | Pexp_function (params, _, body) ->
      let arity =
        List.length params + (match body with Pfunction_cases _ -> 1 | Pfunction_body _ -> 0)
      in
      let plain =
        List.for_all
          (fun p ->
            match p.pparam_desc with
            | Pparam_val (Nolabel, None, _) -> true
            | _ -> false)
          params
        && (match body with Pfunction_cases _ -> false | Pfunction_body _ -> true)
      in
      Some (arity, plain)
  | _ -> None

let collect_ctx st =
  let fns = Hashtbl.create 64 in
  let mutable_tops = Hashtbl.create 16 in
  let hot = Hashtbl.create 16 in
  let seeds = ref [] in
  let add_fn name info =
    Hashtbl.replace fns name (info :: Option.value ~default:[] (Hashtbl.find_opt fns name))
  in
  let visit_vb vb =
    match binding_name vb.pvb_pat with
    | None -> ()
    | Some name ->
        let body = strip_constraint vb.pvb_expr in
        let is_hot = has_attr hot_attr vb.pvb_attributes in
        let is_cold = has_attr cold_attr vb.pvb_attributes in
        if is_hot then begin
          Hashtbl.replace hot name ();
          seeds := (name, vb.pvb_loc.loc_start.pos_lnum) :: !seeds
        end;
        (match fn_shape body with
        | Some (arity, plain) ->
            let calls =
              List.filter_map
                (function Lident n -> Some n | _ -> None)
                (idents_of body)
            in
            add_fn name
              {
                fn_loc = vb.pvb_loc;
                fn_body = body;
                fn_cold = is_cold;
                fn_arity = arity;
                fn_plain = plain;
                fn_calls = calls;
              }
        | None -> ());
        (match (strip_constraint vb.pvb_expr).pexp_desc with
        | Pexp_apply (f, _) -> (
            match (strip_constraint f).pexp_desc with
            | Pexp_ident { txt; _ } -> (
                match mutable_ctor (strip_stdlib txt) with
                | Some what when not (String.equal what "Atomic.make") ->
                    (* Atomics are the guard, not the hazard. *)
                    Hashtbl.replace mutable_tops name what
                | _ -> ())
            | _ -> ())
        | _ -> ())
  in
  let rec visit_structure items = List.iter visit_item items
  and visit_item item =
    match item.pstr_desc with
    | Pstr_value (_, vbs) -> List.iter visit_vb vbs
    | Pstr_module mb -> visit_module_expr mb.pmb_expr
    | Pstr_recmodule mbs -> List.iter (fun mb -> visit_module_expr mb.pmb_expr) mbs
    | Pstr_include { pincl_mod; _ } -> visit_module_expr pincl_mod
    | _ -> ()
  and visit_module_expr me =
    match me.pmod_desc with
    | Pmod_structure items -> visit_structure items
    | Pmod_functor (_, body) -> visit_module_expr body
    | Pmod_constraint (me, _) -> visit_module_expr me
    | _ -> ()
  in
  visit_structure st;
  (* Transitive hotness: a hot function's local callees are hot too,
     unless the callee is marked [@cq.cold] (the sanctioned
     slow-path cut). *)
  let cold_name callee =
    List.exists
      (fun i -> i.fn_cold)
      (Option.value ~default:[] (Hashtbl.find_opt fns callee))
  in
  let queue = Queue.create () in
  Hashtbl.iter (fun n () -> Queue.add n queue) hot;
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    List.iter
      (fun info ->
        List.iter
          (fun callee ->
            if
              Hashtbl.mem fns callee
              && (not (Hashtbl.mem hot callee))
              && not (cold_name callee)
            then begin
              Hashtbl.replace hot callee ();
              Queue.add callee queue
            end)
          info.fn_calls)
      (Option.value ~default:[] (Hashtbl.find_opt fns n))
  done;
  { fns; mutable_tops; hot; hot_seeds = List.rev !seeds }

let hot_bindings st = (collect_ctx st).hot_seeds

(* ------------------------------------------------------------------ *)
(* CQL006: Domain.spawn reachability scan                               *)
(* ------------------------------------------------------------------ *)

let is_mutex_fn name f =
  match (strip_constraint f).pexp_desc with
  | Pexp_ident { txt = Ldot (Lident "Mutex", n); _ } -> String.equal n name
  | _ -> false

(* The value a mutation targets: strip field and (parser-desugared)
   array/bytes subscript accesses down to the root identifier. *)
let rec root_ident e =
  match (strip_constraint e).pexp_desc with
  | Pexp_ident { txt = Lident n; _ } -> Some n
  | Pexp_field (e, _) -> root_ident e
  | Pexp_apply (f, (_, first) :: _) -> (
      match (strip_constraint f).pexp_desc with
      | Pexp_ident { txt = Ldot (Lident ("Array" | "Bytes" | "String"), ("get" | "unsafe_get")); _ }
        ->
          root_ident first
      | _ -> None)
  | _ -> None

let mutating_module_call lid =
  match lid with
  | Ldot (Lident "Array", ("set" | "unsafe_set" | "fill" | "blit")) -> Some "Array"
  | Ldot (Lident "Bytes", ("set" | "unsafe_set" | "fill" | "blit")) -> Some "Bytes"
  | Ldot
      ( Lident "Hashtbl",
        ("replace" | "add" | "remove" | "clear" | "reset" | "filter_map_inplace") ) ->
      Some "Hashtbl"
  | Ldot (Lident "Buffer", n) when has_prefix ~prefix:"add_" n -> Some "Buffer"
  | Ldot (Lident "Buffer", ("clear" | "reset" | "truncate")) -> Some "Buffer"
  | Ldot (Lident ("Queue" | "Stack"), ("push" | "add" | "pop" | "take" | "clear" | "transfer"))
    ->
      Some "Queue/Stack"
  | _ -> None

let spawn_scan ~path ~ctx ~report arg =
  let emit loc msg = report (Diagnostic.make ~rule:Rule.CQL006 ~path ~loc msg) in
  let scanned : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let bound : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let is_bound n = match Hashtbl.find_opt bound n with Some c -> c > 0 | None -> false in
  let push ns =
    List.iter
      (fun n -> Hashtbl.replace bound n (1 + Option.value ~default:0 (Hashtbl.find_opt bound n)))
      ns
  in
  let pop ns =
    List.iter
      (fun n -> Hashtbl.replace bound n (Option.value ~default:1 (Hashtbl.find_opt bound n) - 1))
      ns
  in
  let pending = Queue.create () in
  let enqueue_fn n =
    if Hashtbl.mem ctx.fns n && not (Hashtbl.mem scanned n) then begin
      Hashtbl.replace scanned n ();
      Queue.add n pending
    end
  in
  let guard_hint =
    "guard it with Mutex.protect/Mutex.lock, use an Atomic, or hand the state \
     to exactly one domain"
  in
  let rec scan ~guard e =
    match e.pexp_desc with
    | Pexp_sequence _ ->
        (* Walk the statement spine tracking Mutex.lock/unlock pairs:
           statements between a lock and its unlock are guarded. *)
        let rec spine acc e =
          match e.pexp_desc with
          | Pexp_sequence (a, b) -> spine (a :: acc) b
          | _ -> List.rev (e :: acc)
        in
        let g = ref guard in
        List.iter
          (fun stmt ->
            (match stmt.pexp_desc with
            | Pexp_apply (f, _) when is_mutex_fn "lock" f -> g := !g + 1
            | Pexp_apply (f, _) when is_mutex_fn "unlock" f -> g := max guard (!g - 1)
            | _ -> ());
            scan ~guard:!g stmt)
          (spine [] e)
    | Pexp_apply (f, args) when is_mutex_fn "protect" f ->
        scan ~guard f;
        List.iter (fun (_, a) -> scan ~guard:(guard + 1) a) args
    | Pexp_ident { txt = Lident n; _ } ->
        if guard = 0 && (not (is_bound n)) && Hashtbl.mem ctx.mutable_tops n then
          emit e.pexp_loc
            (Printf.sprintf
               "top-level mutable state %s (%s) is reached from a Domain.spawn body \
                without a guard in scope; %s"
               n
               (Hashtbl.find ctx.mutable_tops n)
               guard_hint);
        enqueue_fn n
    | Pexp_apply (f, args) ->
        (match (strip_constraint f).pexp_desc with
        | Pexp_ident { txt; _ } -> (
            let txt = strip_stdlib txt in
            match txt with
            | Lident ((":=" | "incr" | "decr") as op) when guard = 0 -> (
                match args with
                | (_, target) :: _ -> (
                    match root_ident target with
                    | Some n when (not (is_bound n)) && not (Hashtbl.mem ctx.mutable_tops n) ->
                        emit e.pexp_loc
                          (Printf.sprintf
                             "(%s) on %s, a ref captured from outside the Domain.spawn \
                              body, without a guard in scope; %s"
                             op n guard_hint)
                    | _ -> ())
                | [] -> ())
            | _ -> (
                match mutating_module_call txt with
                | Some what when guard = 0 -> (
                    match args with
                    | (_, target) :: _ -> (
                        match root_ident target with
                        | Some n when (not (is_bound n)) && not (Hashtbl.mem ctx.mutable_tops n)
                          ->
                            emit e.pexp_loc
                              (Printf.sprintf
                                 "%s mutation of %s, captured from outside the \
                                  Domain.spawn body, without a guard in scope; %s"
                                 what n guard_hint)
                        | _ -> ())
                    | [] -> ())
                | _ -> ()))
        | _ -> ());
        scan ~guard f;
        List.iter (fun (_, a) -> scan ~guard a) args
    | Pexp_setfield (b, _, v) ->
        (match root_ident b with
        | Some n when guard = 0 && not (is_bound n) ->
            emit e.pexp_loc
              (Printf.sprintf
                 "mutable-field write on %s, captured from outside the Domain.spawn \
                  body, without a guard in scope; %s"
                 n guard_hint)
        | _ -> ());
        scan ~guard b;
        scan ~guard v
    | Pexp_let (rf, vbs, body) ->
        let names = List.concat_map (fun vb -> bound_names [] vb.pvb_pat) vbs in
        if (match rf with Recursive -> true | Nonrecursive -> false) then begin
          push names;
          List.iter (fun vb -> scan ~guard vb.pvb_expr) vbs;
          scan ~guard body;
          pop names
        end
        else begin
          List.iter (fun vb -> scan ~guard vb.pvb_expr) vbs;
          push names;
          scan ~guard body;
          pop names
        end
    | Pexp_function (params, _, body) ->
        let names =
          List.concat_map
            (fun p ->
              match p.pparam_desc with
              | Pparam_val (_, default, pat) ->
                  Option.iter (scan ~guard) default;
                  bound_names [] pat
              | Pparam_newtype _ -> [])
            params
        in
        push names;
        (match body with
        | Pfunction_body b -> scan ~guard b
        | Pfunction_cases (cases, _, _) -> scan_cases ~guard cases);
        pop names
    | Pexp_match (s, cases) | Pexp_try (s, cases) ->
        scan ~guard s;
        scan_cases ~guard cases
    | Pexp_for (pat, lo, hi, _, body) ->
        scan ~guard lo;
        scan ~guard hi;
        let names = bound_names [] pat in
        push names;
        scan ~guard body;
        pop names
    | _ ->
        (* Generic recursion into the remaining forms. *)
        let first = ref true in
        let it =
          object
            inherit Ast_traverse.iter as super

            method! expression e' =
              if !first then begin
                first := false;
                super#expression e'
              end
              else scan ~guard e'
          end
        in
        it#expression e
  and scan_cases ~guard cases =
    List.iter
      (fun c ->
        let names = bound_names [] c.pc_lhs in
        push names;
        Option.iter (scan ~guard) c.pc_guard;
        scan ~guard c.pc_rhs;
        pop names)
      cases
  in
  (* The spawn argument: an inline closure is scanned directly; any
     module-level function it references (e.g. [Domain.spawn (worker st)])
     is scanned transitively, its parameters counting as handed-over
     (explicitly transferred) state. *)
  scan ~guard:0 arg;
  while not (Queue.is_empty pending) do
    let n = Queue.pop pending in
    List.iter (fun info -> scan ~guard:0 info.fn_body)
      (Option.value ~default:[] (Hashtbl.find_opt ctx.fns n))
  done

(* ------------------------------------------------------------------ *)
(* CQL007–CQL010: the environment-threading walk                        *)
(* ------------------------------------------------------------------ *)

type env = {
  in_hot : bool;  (** inside a (transitively) [@cq.hot] binding *)
  exempt : bool;  (** CQL008 suppressed: raise args, gated branch, result wrap *)
  tail : bool;  (** tail position of the enclosing hot function *)
  blocking_ok : bool;  (** inside a [@cq.blocking_ok] expression/binding *)
}

let swallow_hint =
  "name the expected exception constructors, use the binder, or route the \
   failure through Cq_util.Error"

(* Classify an exception-handler pattern: a wildcard (or an or-pattern
   containing one) discards everything; a bare binder may still be used
   by the body; a constructor pattern is a deliberate catch. *)
let rec classify_handler p =
  match p.ppat_desc with
  | Ppat_any -> `Wild
  | Ppat_var { txt; _ } -> `Var txt
  | Ppat_alias (_, { txt; _ }) -> `Var txt
  | Ppat_constraint (p, _) -> classify_handler p
  | Ppat_or (a, b) -> (
      match (classify_handler a, classify_handler b) with
      | `Wild, _ | _, `Wild -> `Wild
      | (`Var _ as v), _ | _, (`Var _ as v) -> v
      | _ -> `Specific)
  | _ -> `Specific

let rec exception_sub p =
  match p.ppat_desc with
  | Ppat_exception sub -> Some sub
  | Ppat_or (a, b) -> ( match exception_sub a with Some s -> Some s | None -> exception_sub b)
  | Ppat_constraint (p, _) -> exception_sub p
  | _ -> None

class pass2 ~path ~ctx ~(report : Diagnostic.t -> unit) =
  let active r = Rule.applies_to r ~path in
  let r006 = active Rule.CQL006
  and r007 = active Rule.CQL007
  and r008 = active Rule.CQL008
  and r009 = active Rule.CQL009
  and r010 = active Rule.CQL010 in
  object (self)
    method private emit rule loc message = report (Diagnostic.make ~rule ~path ~loc message)

    method private check_handler pat rhs =
      if r010 then
        match classify_handler pat with
        | `Wild ->
            if not (routes_failure rhs) then
              self#emit Rule.CQL010 pat.ppat_loc
                (Printf.sprintf
                   "wildcard handler discards the exception (Unix_error and friends \
                    vanish silently); %s"
                   swallow_hint)
        | `Var v ->
            if not (uses_var v rhs || routes_failure rhs) then
              self#emit Rule.CQL010 pat.ppat_loc
                (Printf.sprintf "handler binds %s but never consults it; %s" v swallow_hint)
        | `Specific -> ()

    method private check_ident env lid loc =
      (if r007 && (not env.blocking_ok) && blocking_call (strip_stdlib lid) then
         self#emit Rule.CQL007 loc
           (Printf.sprintf
              "%s can block the single-threaded event loop, stalling every session; \
               mark the call [@cq.blocking_ok] with the reason it cannot block \
               (non-blocking fd, bounded timeout)"
              (String.concat "." (lid_components lid))));
      (if r009 && not env.in_hot then
         match strip_stdlib lid with
         | Ldot (_, n) when has_prefix ~prefix:"unsafe_" n ->
             self#emit Rule.CQL009 loc
               (Printf.sprintf
                  "%s outside a [@cq.hot] function: unchecked accesses are the hot \
                   path's contract only — move it under [@cq.hot] or waive this line \
                   with the bounds evidence"
                  (String.concat "." (lid_components lid)))
         | _ -> ());
      if r008 && env.in_hot && not env.exempt then
        match strip_stdlib lid with
        | Lident (("@" | "^") as op) ->
            self#emit Rule.CQL008 loc
              (Printf.sprintf
                 "(%s) allocates on the [@cq.hot] path; preallocate or rewrite with \
                  index arithmetic"
                 op)
        | Ldot (Lident "List", fn) ->
            self#emit Rule.CQL008 loc
              (Printf.sprintf
                 "List.%s on the [@cq.hot] path allocates list cells/closures per \
                  element; use preallocated arrays or explicit loops"
                 fn)
        | _ -> ()

    method private walk_fn env fe =
      match fe.pexp_desc with
      | Pexp_function (params, _, body) ->
          List.iter
            (fun p ->
              match p.pparam_desc with
              | Pparam_val (_, default, _) ->
                  Option.iter (self#walk { env with tail = false }) default
              | Pparam_newtype _ -> ())
            params;
          (match body with
          | Pfunction_body b -> self#walk { env with tail = true } b
          | Pfunction_cases (cases, _, _) -> self#walk_cases env cases)
      | _ -> self#walk env fe

    method private walk_cases env cases =
      (* Case bodies keep tail position; guards do not. *)
      List.iter
        (fun c ->
          Option.iter (self#walk { env with tail = false }) c.pc_guard;
          self#walk env c.pc_rhs)
        cases

    method private walk_binding env vb =
      let env =
        {
          env with
          blocking_ok = env.blocking_ok || has_attr blocking_ok_attr vb.pvb_attributes;
          in_hot =
            (env.in_hot || has_attr hot_attr vb.pvb_attributes)
            && not (has_attr cold_attr vb.pvb_attributes);
        }
      in
      let rhs = strip_constraint vb.pvb_expr in
      match rhs.pexp_desc with
      | Pexp_function _ ->
          (* The binding's own lambda is the function being defined,
             not a closure allocated per call. *)
          self#walk_fn env rhs
      | _ -> self#walk { env with tail = false } vb.pvb_expr

    method private alloc env loc what hint =
      if r008 && env.in_hot && not env.exempt then
        self#emit Rule.CQL008 loc
          (Printf.sprintf "%s on the [@cq.hot] path; %s" what hint)

    method walk env e =
      let env =
        if has_attr blocking_ok_attr e.pexp_attributes then { env with blocking_ok = true }
        else env
      in
      match e.pexp_desc with
      | Pexp_ident { txt; _ } -> self#check_ident env txt e.pexp_loc
      | Pexp_function _ ->
          self#alloc env e.pexp_loc "closure construction"
            "hoist it to a module-level function or a preallocated field";
          self#walk_fn env e
      | Pexp_tuple es ->
          self#alloc env e.pexp_loc "tuple construction"
            "return components through out-parameters or split the function";
          List.iter (self#walk { env with tail = false }) es
      | Pexp_record (fields, base) ->
          self#alloc env e.pexp_loc "record construction"
            "reuse a preallocated record or waive with the amortisation argument";
          Option.iter (self#walk { env with tail = false }) base;
          List.iter (fun (_, v) -> self#walk { env with tail = false } v) fields
      | Pexp_construct ({ txt; _ }, Some payload) ->
          let result_wrap =
            env.tail && match txt with Lident ("Ok" | "Error") -> true | _ -> false
          in
          if not result_wrap then
            self#alloc env e.pexp_loc
              (Printf.sprintf "%s construction" (String.concat "." (lid_components txt)))
              "constructor payloads box; restructure or waive with the amortisation \
               argument";
          let env = { env with tail = false; exempt = env.exempt || result_wrap } in
          (* A multi-argument constructor is one block: the syntactic
             tuple is its argument list, not a nested allocation. *)
          (match payload.pexp_desc with
          | Pexp_tuple es -> List.iter (self#walk env) es
          | _ -> self#walk env payload)
      | Pexp_variant (_, Some payload) ->
          self#alloc env e.pexp_loc "polymorphic-variant construction"
            "variant payloads box on every call";
          self#walk { env with tail = false } payload
      | Pexp_apply (f, args) ->
          (let fs = strip_constraint f in
           match fs.pexp_desc with
           | Pexp_ident { txt; _ } -> (
               let txt' = strip_stdlib txt in
               (* Domain.spawn: run the CQL006 reachability scan. *)
               (if r006 then
                  match txt' with
                  | Ldot (Lident "Domain", "spawn") ->
                      List.iter (fun (_, a) -> spawn_scan ~path ~ctx ~report a) args
                  | _ -> ());
               (* Partial application of a local function: flag only
                  when the callee's parameters are all positional, so
                  the syntactic arity comparison is sound. *)
               if r008 && env.in_hot && not env.exempt then
                 match txt' with
                 | Lident n -> (
                     match Hashtbl.find_opt ctx.fns n with
                     | Some (info :: _)
                       when info.fn_plain
                            && List.for_all
                                 (fun (l, _) ->
                                   match l with Nolabel -> true | _ -> false)
                                 args
                            && List.length args < info.fn_arity ->
                         self#emit Rule.CQL008 e.pexp_loc
                           (Printf.sprintf
                              "partial application of %s (%d of %d arguments) \
                               allocates a closure on the [@cq.hot] path"
                              n (List.length args) info.fn_arity)
                     | _ -> ())
                 | _ -> ())
           | _ -> ());
          let arg_exempt =
            match (strip_constraint f).pexp_desc with
            | Pexp_ident { txt; _ } -> raise_family (strip_stdlib txt)
            | _ -> false
          in
          self#walk { env with tail = false } f;
          List.iter
            (fun (_, a) ->
              self#walk { env with tail = false; exempt = env.exempt || arg_exempt } a)
            args
      | Pexp_let (_, vbs, body) ->
          List.iter (self#walk_binding env) vbs;
          self#walk env body
      | Pexp_sequence (a, b) ->
          self#walk { env with tail = false } a;
          self#walk env b
      | Pexp_ifthenelse (cond, then_, else_) ->
          let gated = gated_on_enabled cond in
          self#walk { env with tail = false } cond;
          self#walk { env with exempt = env.exempt || gated } then_;
          Option.iter (self#walk env) else_
      | Pexp_match (scrut, cases) ->
          List.iter
            (fun c ->
              match exception_sub c.pc_lhs with
              | Some sub -> self#check_handler sub c.pc_rhs
              | None -> ())
            cases;
          self#walk { env with tail = false } scrut;
          self#walk_cases env cases
      | Pexp_try (scrut, cases) ->
          List.iter (fun c -> self#check_handler c.pc_lhs c.pc_rhs) cases;
          self#walk { env with tail = false } scrut;
          self#walk_cases env cases
      | Pexp_while (cond, body) ->
          (match cond.pexp_desc with
          | Pexp_construct ({ txt = Lident "true"; _ }, None)
            when r007 && not env.blocking_ok ->
              self#emit Rule.CQL007 e.pexp_loc
                "unbounded [while true] in the event loop: every iteration must be \
                 bounded by readiness or a stop flag; mark deliberate drains \
                 [@cq.blocking_ok]"
          | _ -> ());
          self#walk { env with tail = false } cond;
          self#walk { env with tail = false } body
      | Pexp_for (_, lo, hi, _, body) ->
          self#walk { env with tail = false } lo;
          self#walk { env with tail = false } hi;
          self#walk { env with tail = false } body
      | Pexp_setfield (b, _, v) ->
          self#walk { env with tail = false } b;
          self#walk { env with tail = false } v
      | Pexp_field (b, _) -> self#walk { env with tail = false } b
      | Pexp_constraint (inner, _) | Pexp_coerce (inner, _, _) -> self#walk env inner
      | Pexp_open (_, inner) | Pexp_lazy inner -> self#walk env inner
      | Pexp_assert inner -> self#walk { env with tail = false; exempt = true } inner
      | Pexp_constant _ | Pexp_construct (_, None) | Pexp_variant (_, None)
      | Pexp_unreachable ->
          ()
      | Pexp_array es -> List.iter (self#walk { env with tail = false }) es
      | _ ->
          (* Generic recursion for the remaining forms (objects, letops,
             local modules, extensions ...). *)
          let first = ref true in
          let it =
            object
              inherit Ast_traverse.iter as super

              method! expression e' =
                if !first then begin
                  first := false;
                  super#expression e'
                end
                else self#walk { env with tail = false } e'
            end
          in
          it#expression e

    method structure items = List.iter self#structure_item items

    method structure_item item =
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              let hot =
                (match binding_name vb.pvb_pat with
                | Some n -> Hashtbl.mem ctx.hot n
                | None -> false)
                || has_attr hot_attr vb.pvb_attributes
              in
              self#walk_binding
                { in_hot = hot; exempt = false; tail = false; blocking_ok = false }
                vb)
            vbs
      | Pstr_module mb -> self#module_expr mb.pmb_expr
      | Pstr_recmodule mbs -> List.iter (fun mb -> self#module_expr mb.pmb_expr) mbs
      | Pstr_include { pincl_mod; _ } -> self#module_expr pincl_mod
      | Pstr_eval (e, _) ->
          self#walk { in_hot = false; exempt = false; tail = false; blocking_ok = false } e
      | _ -> ()

    method module_expr me =
      match me.pmod_desc with
      | Pmod_structure items -> self#structure items
      | Pmod_functor (_, body) -> self#module_expr body
      | Pmod_constraint (me, _) -> self#module_expr me
      | Pmod_apply (a, b) ->
          self#module_expr a;
          self#module_expr b
      | _ -> ()
  end

let check_extended ~path st =
  let needs =
    List.exists
      (fun r -> Rule.applies_to r ~path)
      [ Rule.CQL006; Rule.CQL007; Rule.CQL008; Rule.CQL009; Rule.CQL010 ]
  in
  if not needs then []
  else begin
    let ctx = collect_ctx st in
    let acc = ref [] in
    let p = new pass2 ~path ~ctx ~report:(fun d -> acc := d :: !acc) in
    p#structure st;
    !acc
  end

let diag_compare (a : Diagnostic.t) (b : Diagnostic.t) =
  match Diagnostic.compare a b with
  | 0 -> String.compare a.message b.message
  | c -> c

let check_structure ~path st =
  let acc = ref [] in
  let c = new checker ~path ~report:(fun d -> acc := d :: !acc) in
  c#structure st;
  List.sort_uniq diag_compare (check_extended ~path st @ !acc)

let check_signature ~path:_ (_ : signature) = []
