type report = {
  findings : Diagnostic.t list;
  waived : (Diagnostic.t * Waiver.t) list;
  unused_waivers : Waiver.t list;
  files : string list;
  errors : string list;
}

let clean r =
  List.is_empty r.findings && List.is_empty r.unused_waivers && List.is_empty r.errors

(* ------------------------------------------------------------------ *)
(* File discovery                                                       *)
(* ------------------------------------------------------------------ *)

let skip_dir = function
  | "_build" | ".git" | "_opam" | "node_modules" -> true
  | d -> String.length d > 0 && d.[0] = '.'

let has_suffix s suf =
  let ls = String.length s and lf = String.length suf in
  ls >= lf && String.equal (String.sub s (ls - lf) lf) suf

let discover ~root =
  let acc = ref [] in
  let rec walk rel =
    let dir = Filename.concat root rel in
    match Sys.readdir dir with
    | entries ->
        Array.sort String.compare entries;
        Array.iter
          (fun name ->
            let rel' = if String.equal rel "" then name else rel ^ "/" ^ name in
            let full = Filename.concat root rel' in
            if Sys.is_directory full then begin
              if not (skip_dir name) then walk rel'
            end
            else if has_suffix name ".ml" || has_suffix name ".mli" then
              acc := rel' :: !acc)
          entries
    | exception Sys_error _ -> ()
  in
  List.iter
    (fun top ->
      let full = Filename.concat root top in
      if Sys.file_exists full && Sys.is_directory full then walk top)
    [ "lib"; "bin" ];
  List.sort String.compare !acc

(* ------------------------------------------------------------------ *)
(* Parsing (ppxlib's pinned AST; its parser tracks the compiler's)      *)
(* ------------------------------------------------------------------ *)

let lint_source ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  try
    if has_suffix path ".mli" then
      Ok (Rules.check_signature ~path (Ppxlib.Parse.interface lexbuf))
    else Ok (Rules.check_structure ~path (Ppxlib.Parse.implementation lexbuf))
  with exn -> Error (Printf.sprintf "%s: parse error: %s" path (Printexc.to_string exn))

let lint_path ~root ~path =
  match In_channel.with_open_bin (Filename.concat root path) In_channel.input_all with
  | source -> lint_source ~path source
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* CQL005: every lib implementation carries a signature                 *)
(* ------------------------------------------------------------------ *)

let mli_coverage files =
  List.filter_map
    (fun path ->
      if
        has_suffix path ".ml"
        && Rule.applies_to Rule.CQL005 ~path
        && not (List.exists (String.equal (path ^ "i")) files)
      then
        Some
          (Diagnostic.file_level ~rule:Rule.CQL005 ~path
             (Printf.sprintf "%s has no interface: add %si or waive with the \
                              reason the module must stay unabstracted"
                (Filename.basename path) (Filename.basename path)))
      else None)
    files

(* ------------------------------------------------------------------ *)
(* Waiver application                                                   *)
(* ------------------------------------------------------------------ *)

let apply_waivers waivers diags =
  let used = Array.make (List.length waivers) false in
  let findings = ref [] and waived = ref [] in
  List.iter
    (fun d ->
      let rec find i = function
        | [] -> findings := d :: !findings
        | w :: ws ->
            if Waiver.covers w d then begin
              used.(i) <- true;
              waived := (d, w) :: !waived
            end
            else find (i + 1) ws
      in
      find 0 waivers)
    diags;
  let unused = List.filteri (fun i _ -> not used.(i)) waivers in
  (List.rev !findings, List.rev !waived, unused)

let run ?waiver_file ~root () =
  let errors = ref [] in
  let waiver_file =
    match waiver_file with Some f -> Some f | None ->
      let f = Filename.concat root ".cqlint" in
      if Sys.file_exists f then Some f else None
  in
  let waivers =
    match waiver_file with
    | None -> []
    | Some f -> (
        match Waiver.load f with
        | Ok ws -> ws
        | Error es ->
            errors := List.map Waiver.error_to_string es @ !errors;
            [])
  in
  let files = discover ~root in
  let diags =
    List.concat_map
      (fun path ->
        match lint_path ~root ~path with
        | Ok ds -> ds
        | Error msg ->
            errors := msg :: !errors;
            [])
      files
  in
  let diags = diags @ mli_coverage files in
  let diags = List.sort Diagnostic.compare diags in
  let findings, waived, unused_waivers = apply_waivers waivers diags in
  { findings; waived; unused_waivers; files; errors = List.rev !errors }

(* ------------------------------------------------------------------ *)
(* Hot-path manifest (out/hot_path.list)                                *)
(* ------------------------------------------------------------------ *)

(* One "path:name" line per [@cq.hot] binding, sorted.  Line numbers
   are deliberately omitted so unrelated edits do not churn the
   committed manifest; CI diffs the committed copy against a fresh one
   and fails if any annotation disappeared. *)
let hot_manifest ~root =
  let files = discover ~root in
  let lines = ref [] in
  List.iter
    (fun path ->
      if has_suffix path ".ml" then
        match In_channel.with_open_bin (Filename.concat root path) In_channel.input_all with
        | source -> (
            let lexbuf = Lexing.from_string source in
            Lexing.set_filename lexbuf path;
            match Ppxlib.Parse.implementation lexbuf with
            | st ->
                List.iter
                  (fun (name, _line) -> lines := Printf.sprintf "%s:%s" path name :: !lines)
                  (Rules.hot_bindings st)
            | exception exn ->
                (* Unparseable files already fail [run]; the manifest
                   stays total and just skips them. *)
                ignore (Printexc.to_string exn))
        | exception Sys_error _ -> ())
    files;
  List.sort_uniq String.compare !lines
