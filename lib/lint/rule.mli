(** The cqlint rule set.

    Each rule enforces a convention the OCaml compiler cannot check
    for us; DESIGN.md §10 records the rationale for every rule. *)

type t = CQL001 | CQL002 | CQL003 | CQL004 | CQL005

val all : t list
val id : t -> string  (** ["CQL001"] … *)

val name : t -> string  (** kebab-case short name, e.g. [no-polymorphic-compare] *)

val summary : t -> string  (** one-line rationale *)

val of_id : string -> t option
(** Case-insensitive parse of ["CQL001"]-style ids. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val applies_to : t -> path:string -> bool
(** [path] is workspace-relative with ['/'] separators.  CQL001 and
    CQL004 cover [lib/] and [bin/]; CQL002, CQL003 and CQL005 are
    library-only conventions. *)
