(** The cqlint rule set.

    Each rule enforces a convention the OCaml compiler cannot check
    for us; DESIGN.md §10 records the rationale for every rule. *)

type t =
  | CQL001
  | CQL002
  | CQL003
  | CQL004
  | CQL005
  | CQL006
  | CQL007
  | CQL008
  | CQL009
  | CQL010

val all : t list
val id : t -> string  (** ["CQL001"] … *)

val name : t -> string  (** kebab-case short name, e.g. [no-polymorphic-compare] *)

val summary : t -> string  (** one-line rationale *)

val of_id : string -> t option
(** Case-insensitive parse of ["CQL001"]-style ids. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val applies_to : t -> path:string -> bool
(** [path] is workspace-relative with ['/'] separators.  CQL001,
    CQL004, CQL006, CQL008 and CQL009 cover [lib/] and [bin/];
    CQL002, CQL003, CQL005 and CQL010 are library-only conventions;
    CQL007 is scoped to the event-loop modules
    ([lib/net/server.ml], [lib/net/session.ml]). *)
