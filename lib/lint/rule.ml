type t =
  | CQL001
  | CQL002
  | CQL003
  | CQL004
  | CQL005
  | CQL006
  | CQL007
  | CQL008
  | CQL009
  | CQL010

let all =
  [ CQL001; CQL002; CQL003; CQL004; CQL005; CQL006; CQL007; CQL008; CQL009; CQL010 ]

let id = function
  | CQL001 -> "CQL001"
  | CQL002 -> "CQL002"
  | CQL003 -> "CQL003"
  | CQL004 -> "CQL004"
  | CQL005 -> "CQL005"
  | CQL006 -> "CQL006"
  | CQL007 -> "CQL007"
  | CQL008 -> "CQL008"
  | CQL009 -> "CQL009"
  | CQL010 -> "CQL010"

let name = function
  | CQL001 -> "no-polymorphic-compare"
  | CQL002 -> "error-discipline"
  | CQL003 -> "global-mutable-state"
  | CQL004 -> "obj-magic-ban"
  | CQL005 -> "mli-coverage"
  | CQL006 -> "domain-shared-state"
  | CQL007 -> "no-blocking-in-event-loop"
  | CQL008 -> "hot-path-allocation"
  | CQL009 -> "unsafe-access-discipline"
  | CQL010 -> "no-swallowed-exceptions"

let summary = function
  | CQL001 ->
      "polymorphic compare/hash at a non-immediate type: NaN-unsound on float \
       endpoints and an indirect call on the hot path"
  | CQL002 ->
      "library code must not raise bare failwith/Failure; invalid_arg only in \
       waived precondition guards — everything else goes through Cq_util.Error"
  | CQL003 ->
      "top-level mutable state in lib/ needs a waiver: shared state must be \
       explicit before the engine is sharded across domains"
  | CQL004 -> "Obj.magic and friends defeat the type system; never in this codebase"
  | CQL005 -> "every lib/ module exposes a signature (.mli) or carries a waiver"
  | CQL006 ->
      "mutable state captured by a Domain.spawn body without a Mutex.protect/\
       Mutex.lock or Atomic guard: a data race the compiler cannot see"
  | CQL007 ->
      "blocking Unix call or unbounded loop inside the lib/net event loop: one \
       blocked call stalls every session; mark sanctioned sites [@cq.blocking_ok]"
  | CQL008 ->
      "[@cq.hot] functions (and the local functions they call) must not allocate: \
       no closures, tuple/record/variant construction, partial application, @/^, \
       or List combinators on the zero-allocation ingest spine"
  | CQL009 ->
      "Array/Bytes/Batch unsafe_* accesses are legal only inside [@cq.hot] \
       functions (bounds are the hot-path contract) or with a same-line \
       bounds-evidence waiver"
  | CQL010 ->
      "a handler that discards the exception (with _ -> / unused binder) without \
       re-raising or routing through Cq_util.Error hides real failures"

let of_id s =
  match String.uppercase_ascii (String.trim s) with
  | "CQL001" -> Some CQL001
  | "CQL002" -> Some CQL002
  | "CQL003" -> Some CQL003
  | "CQL004" -> Some CQL004
  | "CQL005" -> Some CQL005
  | "CQL006" -> Some CQL006
  | "CQL007" -> Some CQL007
  | "CQL008" -> Some CQL008
  | "CQL009" -> Some CQL009
  | "CQL010" -> Some CQL010
  | _ -> None

let equal a b = String.equal (id a) (id b)
let compare a b = String.compare (id a) (id b)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* CQL001/CQL004 audit everything we compile; the error-discipline,
   state and signature rules are library-only conventions.  CQL006,
   CQL008 and CQL009 follow the code they guard (domains, [@cq.hot]
   annotations and unsafe accessors appear in lib/ and bin/ alike);
   CQL007 is scoped to the single-threaded event-loop modules, and
   CQL010 is a library contract (binaries may deliberately catch-all
   at their outermost boundary). *)
let event_loop_paths = [ "lib/net/server.ml"; "lib/net/session.ml" ]

let applies_to rule ~path =
  let in_lib = starts_with ~prefix:"lib/" path in
  let in_bin = starts_with ~prefix:"bin/" path in
  match rule with
  | CQL001 | CQL004 | CQL006 | CQL008 | CQL009 -> in_lib || in_bin
  | CQL002 | CQL003 | CQL005 | CQL010 -> in_lib
  | CQL007 -> List.exists (String.equal path) event_loop_paths
