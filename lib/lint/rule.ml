type t = CQL001 | CQL002 | CQL003 | CQL004 | CQL005

let all = [ CQL001; CQL002; CQL003; CQL004; CQL005 ]

let id = function
  | CQL001 -> "CQL001"
  | CQL002 -> "CQL002"
  | CQL003 -> "CQL003"
  | CQL004 -> "CQL004"
  | CQL005 -> "CQL005"

let name = function
  | CQL001 -> "no-polymorphic-compare"
  | CQL002 -> "error-discipline"
  | CQL003 -> "global-mutable-state"
  | CQL004 -> "obj-magic-ban"
  | CQL005 -> "mli-coverage"

let summary = function
  | CQL001 ->
      "polymorphic compare/hash at a non-immediate type: NaN-unsound on float \
       endpoints and an indirect call on the hot path"
  | CQL002 ->
      "library code must not raise bare failwith/Failure; invalid_arg only in \
       waived precondition guards — everything else goes through Cq_util.Error"
  | CQL003 ->
      "top-level mutable state in lib/ needs a waiver: shared state must be \
       explicit before the engine is sharded across domains"
  | CQL004 -> "Obj.magic and friends defeat the type system; never in this codebase"
  | CQL005 -> "every lib/ module exposes a signature (.mli) or carries a waiver"

let of_id s =
  match String.uppercase_ascii (String.trim s) with
  | "CQL001" -> Some CQL001
  | "CQL002" -> Some CQL002
  | "CQL003" -> Some CQL003
  | "CQL004" -> Some CQL004
  | "CQL005" -> Some CQL005
  | _ -> None

let equal a b = String.equal (id a) (id b)
let compare a b = String.compare (id a) (id b)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* CQL001/CQL004 audit everything we compile; the error-discipline,
   state and signature rules are library-only conventions. *)
let applies_to rule ~path =
  let in_lib = starts_with ~prefix:"lib/" path in
  let in_bin = starts_with ~prefix:"bin/" path in
  match rule with
  | CQL001 | CQL004 -> in_lib || in_bin
  | CQL002 | CQL003 | CQL005 -> in_lib
