type t = {
  rule : Rule.t;
  path : string;
  line : int;
  col : int;
  end_line : int;
  end_col : int;
  message : string;
}

let make ~rule ~path ~loc message =
  let open Ppxlib in
  let s = loc.loc_start and e = loc.loc_end in
  {
    rule;
    path;
    line = s.pos_lnum;
    col = s.pos_cnum - s.pos_bol;
    end_line = e.pos_lnum;
    end_col = e.pos_cnum - e.pos_bol;
    message;
  }

let file_level ~rule ~path message =
  { rule; path; line = 1; col = 0; end_line = 1; end_col = 0; message }

let compare a b =
  match String.compare a.path b.path with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> Rule.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let to_string d =
  Printf.sprintf "%s:%d:%d: %s [%s] %s" d.path d.line d.col (Rule.id d.rule)
    (Rule.name d.rule) d.message
