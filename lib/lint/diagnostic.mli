(** A single span-accurate lint finding. *)

type t = {
  rule : Rule.t;
  path : string;  (** workspace-relative, ['/'] separators *)
  line : int;  (** 1-based start line *)
  col : int;  (** 0-based start column *)
  end_line : int;
  end_col : int;
  message : string;
}

val make : rule:Rule.t -> path:string -> loc:Ppxlib.Location.t -> string -> t

val file_level : rule:Rule.t -> path:string -> string -> t
(** A whole-file finding (CQL005), anchored at line 1. *)

val compare : t -> t -> int
(** path, then position, then rule. *)

val to_string : t -> string
(** [path:line:col: CQL00N [name] message] — compiler-style, clickable. *)
