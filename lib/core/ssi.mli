(** The stabbing set index (SSI) framework — Section 2.1.

    An SSI derives one interval per continuous query, computes a
    (canonical) stabbing partition, and attaches an arbitrary per-group
    data structure to each group — "SSI is completely agnostic about
    the underlying data structure used".  The band-join processor
    instantiates the group structure with two sorted sequences; the
    select-join processor instantiates it with an R-tree.

    This module is the {e static} SSI used when indexing a fixed query
    set (the paper's Figures 7, 8 and 10 apply SSI to all stabbing
    groups of a static workload); dynamic SSIs over evolving hotspots
    are driven by {!Hotspot_tracker} events instead.  Construction is
    O(n log n) for the canonical partition (Lemma 1) plus the group
    structures' own build costs; a probe visits only the stabbed
    groups — O(log τ) to locate them by stabbing point, then the group
    structure's query cost each. *)

module type GROUP_STRUCTURE = sig
  type elt
  type t

  val build : stab:float -> elt array -> t
  (** Build the per-group structure from the group's members (given in
      increasing left-endpoint order) and its stabbing point. *)
end

module Make (E : Partition_intf.ELEMENT) (G : GROUP_STRUCTURE with type elt = E.t) : sig
  type t

  val build : E.t array -> t
  (** Compute the canonical stabbing partition of the elements and
      build one [G.t] per group. *)

  val size : t -> int
  (** Number of indexed elements. *)

  val num_groups : t -> int
  (** τ(I): the stabbing number of the indexed set. *)

  val iter : t -> (stab:float -> G.t -> unit) -> unit
  (** Visit every group in increasing stabbing-point order. *)

  val fold : t -> ('acc -> stab:float -> G.t -> 'acc) -> 'acc -> 'acc
  val stabbing_points : t -> float array
end
