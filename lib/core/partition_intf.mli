(** Shared signatures for dynamic stabbing-partition maintainers.

    A {e stabbing partition} of a set of intervals I is a partition
    into groups such that each group has a nonempty common
    intersection, hence a common {e stabbing point} (Definition 1).
    Both maintainers in this library ({!Lazy_partition}, the simple
    strategy of Section 2.3, and {!Refined_partition}, the Appendix-B
    algorithm) satisfy [S] and keep the partition size within
    [(1 + epsilon) * tau(I)] of optimal (Lemma 3 / Theorem 2). *)

(** Elements carried by a partition: anything exposing an interval and
    a total order whose primary criterion is the interval's left
    endpoint (with some unique tiebreaker so equal ranges coexist). *)
module type ELEMENT = sig
  type t

  val compare : t -> t -> int
  val interval : t -> Cq_interval.Interval.t
end

(** Interface common to both dynamic maintainers. *)
module type S = sig
  type elt
  type t

  val try_create : ?epsilon:float -> ?seed:int -> unit -> (t, Cq_util.Error.t) result
  (** [epsilon] is the slack of Lemma 2/3 (default 1.0; the paper's
      band-join experiments use 3.0).  [Error] unless [epsilon] is
      finite and positive. *)

  val create : ?epsilon:float -> ?seed:int -> unit -> t
  (** Like {!try_create}.  @raise Cq_util.Error.Cq_error if
      [epsilon <= 0]. *)

  val size : t -> int
  (** Number of intervals currently maintained. *)

  val num_groups : t -> int
  (** Current partition size |P|. *)

  val insert : t -> elt -> unit
  (** @raise Invalid_argument if the element is already present. *)

  val delete : t -> elt -> bool
  (** Remove an element; [false] if absent. *)

  val mem : t -> elt -> bool

  val groups : t -> (float * elt list) list
  (** [(stabbing point, members)] for every group.  O(n); intended for
      inspection, promotion scans and tests, not hot paths. *)

  val iter_group_sizes : t -> (int -> int -> unit) -> unit
  (** [iter_group_sizes t f] calls [f gid size] for every group.  Group
      ids are never reused; reconstructions retire all current ids and
      issue fresh ones, so a stale id simply stops resolving. *)

  val group_members : t -> int -> elt list
  (** Members of group [gid].  @raise Not_found for an unknown id. *)

  val group_of : t -> elt -> int
  (** Group id currently holding the element.  @raise Not_found. *)

  val reconstructions : t -> int
  (** How many reconstruction stages have run (maintenance-cost
      telemetry for Figure 11). *)

  val check_invariants : t -> unit
  (** Every group's members share its stabbing point, every element is
      in exactly one group, and the partition size respects the
      [(1+epsilon)] bound against a freshly computed optimum.
      @raise Failure on violation. *)
end
