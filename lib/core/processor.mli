(** The unified continuous-query processor core.

    The paper's three applications — band joins (Section 3.1),
    equality joins with local selections (Section 3.2), composite
    queries (Section 6) — are all instances of one scheme: derive an
    interval per query, maintain a stabbing partition (or only its
    hotspots) over those intervals, keep a per-group auxiliary
    structure, and process each event with the two-step group walk.
    [Make] owns everything that scheme shares — per-event dedupe, the
    hotspot-tracker subscription, SSI rebuild bookkeeping, query
    insert/delete plumbing, invariant auditing — so each join module
    only supplies its query geometry ({!QUERY}) and the processors fall
    out as thin instantiations.

    The stabbing index holding the scattered queries is itself a
    functor parameter ({!Cq_index.Stab_backend.S}), so every backend
    (interval tree, interval skip list, treap) drives identical
    processing code.

    Per event, the two-step walk costs O(h log m + k) over the hotspot
    groups (h ≤ 2/α of them, Theorems 3 and 4) plus the scattered
    fallback — a per-query probe under the [Hotspot] strategy, another
    group walk under plain [Ssi]; query insert/delete is O(log n)
    amortised through the tracker and partition maintainers. *)

(** Per-event deduplication of affected queries: a query reachable
    from both boundary scans of a group must be reported once. *)
module Dedupe : sig
  type t

  val create : unit -> t
  val fresh : t -> unit
  (** Start a new event epoch. *)

  val mark : t -> int -> bool
  (** [mark d qid] is [true] the first time [qid] is marked in the
      current epoch. *)
end

(** What a join application must provide: its query geometry and its
    per-group structure. *)
module type QUERY = sig
  type t
  (** The query. *)

  type event
  (** An incoming tuple of the driving relation. *)

  type store
  (** The indexed opposite relation the processors probe. *)

  type result
  (** A matched opposite-relation tuple. *)

  val label : string
  (** Short processor-name prefix ("BJ", "SJ", "CJ"). *)

  val qid : t -> int
  val compare : t -> t -> int

  val interval : t -> Cq_interval.Interval.t
  (** The interval the stabbing partition is computed on. *)

  val scatter_interval : t -> Cq_interval.Interval.t
  (** The interval scattered (non-hotspot) queries are indexed on —
      may differ from {!interval} (SJ scatters on rangeA but
      partitions on rangeC). *)

  val scatter_point : event -> float option
  (** Where the event stabs the scatter axis; [None] when the scatter
      windows shift with the event (band joins), in which case every
      scattered query is probed. *)

  val probe : store -> t -> event -> (result -> unit) -> unit
  (** Traditional per-query processing of one scattered query. *)

  val probe_hit : store -> t -> event -> bool
  (** Existence-only version of {!probe}. *)

  (** The per-group auxiliary structure (sorted sequences for band
      windows, an R-tree for select rectangles) with the group walk of
      Section 3's STEP 1 / STEP 2. *)
  module Group : sig
    type g

    val create : unit -> g
    val add : g -> t -> unit
    val remove : g -> t -> unit
    val size : g -> int
    val check_invariants : g -> unit

    val process :
      store -> g -> stab:float -> event -> mark:(t -> bool) -> (t -> result -> unit) -> unit
    (** Emit every (member query, result) pair the event produces.
        [mark] is the per-event dedupe: a member is considered
        affected only when [mark] accepts it. *)

    val identify :
      store -> g -> stab:float -> event -> mark:(t -> bool) -> (t -> unit) -> unit
    (** STEP 1 only: report affected members without enumerating
        results. *)
  end
end

(** The contract every event-processing strategy satisfies (the
    per-join [STRATEGY] module types are this signature with the
    four carrier types pinned). *)
module type STRATEGY = sig
  type query
  type event
  type store
  type result
  type t

  val name : string

  val create : store -> query array -> t
  (** The store is shared, not copied: strategies see later updates
      made through the store's own interface. *)

  val process_r : t -> event -> (query -> result -> unit) -> unit

  val affected : t -> event -> (query -> unit) -> unit
  (** Identification only (the paper's STEP 1): report each affected
      query exactly once, without enumerating its result tuples. *)

  val insert_query : t -> query -> unit
  val delete_query : t -> query -> bool
  val query_count : t -> int
end

(** Per-instance structural-reorganisation counters, exposed uniformly
    so the engine can aggregate them into its stats block. *)
type telemetry = {
  restructures : int;
      (** Every structural reorganisation: hotspot promotions +
          demotions + scattered-partition reconstructions (Hotspot), or
          lazy index rebuilds (SSI). *)
  groups_split : int;  (** Hotspot promotions; 0 for SSI. *)
  groups_merged : int;  (** Hotspot demotions; 0 for SSI. *)
  max_group_size : int;
      (** High-water mark of hotspot-group cardinality; 0 for SSI. *)
}

val empty_telemetry : telemetry

val add_telemetry : telemetry -> telemetry -> telemetry
(** Component-wise sum ([max] for {!telemetry.max_group_size}). *)

(** A processor's contribution to cross-shard statistics: a plain
    value, safe to capture on the domain that owns the processor and
    merge on another.  The sharded engine ([Cq_engine.Parallel])
    collects one per shard and folds them with {!merge_snapshot}. *)
type snapshot = {
  snap_queries : int;  (** Registered queries in this instance. *)
  snap_hotspots : int;
  snap_coverage : float;
      (** Fraction of {e this instance's} queries inside hotspots;
          {!merge_snapshot} reweights by query count. *)
  snap_telemetry : telemetry;
}

val empty_snapshot : snapshot

val merge_snapshot : snapshot -> snapshot -> snapshot
(** Sums counts and telemetry; coverage merges as the query-weighted
    mean, so the merged value is again "fraction of all queries inside
    hotspots". *)

(** A strategy produced by {!Make}, with configuration knobs and
    invariant auditing. *)
module type PROCESSOR = sig
  include STRATEGY

  val create_cfg : ?alpha:float -> ?epsilon:float -> ?seed:int -> store -> query array -> t
  (** [alpha] is the hotspot threshold (default 0.001), [epsilon] the
      scattered-partition slack, [seed] the randomization seed; the
      SSI processor ignores all three.
      @raise Cq_util.Error.Cq_error on a bad [alpha] or [epsilon]. *)

  val num_hotspots : t -> int
  (** 0 for the SSI processor. *)

  val coverage : t -> float
  (** Fraction of queries inside hotspots; 0 for the SSI processor. *)

  val telemetry : t -> telemetry

  val snapshot : t -> snapshot
  (** {!telemetry} plus query/hotspot/coverage counts, packaged for
      cross-shard merging. *)

  val check_invariants : t -> unit
  (** @raise Failure on violation. *)

  val set_shed : t -> (int -> bool) option -> unit
  (** Install ([Some]) or clear ([None], the default) a load-shedding
      predicate for degraded (approximate) processing.  During
      {!process_r} the predicate is consulted at most once per (event,
      candidate qid) — after per-event dedupe — and {e only} for pairs
      that definitely produce at least one result: group
      identification is anchor-exact, and the scattered fallback
      confirms with [probe_hit] before asking.  The consultation set
      is therefore a pure function of the query population and the
      event stream, independent of internal structure (hotspot
      grouping, scatter layout, seeds), which makes drop-side
      accounting shard-count invariant.  A [false] verdict suppresses
      that query's probes for this event.  {!affected}, query
      maintenance, and invariant audits remain exact.  With [None]
      there is no per-candidate overhead. *)

  val stage_batch : t -> event array -> int -> unit
  (** [stage_batch t evs n] precomputes per-event scattered-index
      candidates for the events [evs.(0 .. n-1)] with a single batched
      index descent ({!Cq_index.Stab_backend.S.stab_batch}), when the
      processor keeps a scattered index and the events project to
      fixed stabbing points; otherwise it only hoists lazy maintenance
      (the SSI rebuild) out of the per-event loop.  Staged candidates
      are invalidated by any query insertion or deletion — subsequent
      {!process_staged} calls then fall back to the live per-event
      path, so semantics never depend on staleness. *)

  val process_staged : t -> idx:int -> event -> (query -> result -> unit) -> unit
  (** [process_staged t ~idx ev sink] behaves exactly like
      [process_r t ev sink], reusing candidates staged for position
      [idx] by the last {!stage_batch} when still valid and falling
      back to the live path otherwise.  [ev] must be the event passed
      at position [idx] of that batch.  Results for a given event are
      identical, in identical order, to the per-event path. *)
end

(** {2 Runtime strategy selection} *)

type strategy = Hotspot | Ssi

val strategies : strategy list
val strategy_to_string : strategy -> string
(** ["hotspot" | "ssi"] — the [cqctl] flag spellings. *)

val strategy_of_string : string -> (strategy, string) result

module Make (Q : QUERY) (B : Cq_index.Stab_backend.S) : sig
  module Tracker : module type of Hotspot_tracker.Make (struct
    type t = Q.t

    let compare = Q.compare
    let interval = Q.interval
  end)

  (** SSI on the α-hotspots, per-query probing (pruned through [B]) on
      the scattered remainder — Section 2.2 + the closing remark of
      Section 3.1. *)
  module Hotspot :
    PROCESSOR
      with type query = Q.t
       and type event = Q.event
       and type store = Q.store
       and type result = Q.result

  (** SSI over a static canonical partition of the whole query set,
      rebuilt lazily after churn. *)
  module Ssi : sig
    include
      PROCESSOR
        with type query = Q.t
         and type event = Q.event
         and type store = Q.store
         and type result = Q.result

    val num_groups : t -> int
    (** τ(I) of the current query set (refreshes the index first). *)

    val iter_queries : t -> (query -> unit) -> unit
  end
end
