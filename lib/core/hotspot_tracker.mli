(** Hotspot tracking — Section 2.2, Theorem 1.

    Maintains a partition of the current interval set I into hotspot
    groups [I_H] and a scattered remainder [S] (itself kept as a
    near-optimal stabbing partition [I_S] by {!Refined_partition}),
    preserving the paper's three invariants:

    - (I1) [I_H] contains every α-hotspot, possibly some
      (α/2)-hotspots, and nothing smaller — hence at most 2/α groups;
    - (I2) the overall partition size is at most (1+ε)·τ(I) + 2/α;
    - (I3) the amortised number of intervals moving between S and H is
      at most 5 per update (the credit argument of Theorem 1) — checked
      live by {!moves} accounting.

    Consumers that keep auxiliary per-group structures (the SSI band
    join and select-join processors) subscribe via [on_event] and
    receive every membership change.  Updates cost O(log n) amortised
    (the scattered partition's maintainer bound) plus O(log(1/α)) for
    the hotspot-membership check; the O(1) amortised move bound (I3)
    caps the consumer-visible event rate. *)

module Make (E : Partition_intf.ELEMENT) : sig
  type t

  type event =
    | Hotspot_created of int * E.t list
        (** A scattered group reached α·|I| and was promoted; its
            members just left S. *)
    | Hotspot_destroyed of int * E.t list
        (** A hotspot fell below (α/2)·|I|; its members return to S. *)
    | Hotspot_added of int * E.t  (** New interval joined an existing hotspot. *)
    | Hotspot_removed of int * E.t  (** Interval deleted from a hotspot. *)
    | Scattered_added of E.t  (** Interval entered S (fresh insert or demotion). *)
    | Scattered_removed of E.t  (** Interval left S (deletion or promotion). *)

  val try_create :
    ?alpha:float ->
    ?epsilon:float ->
    ?seed:int ->
    ?on_event:(event -> unit) ->
    unit ->
    (t, Cq_util.Error.t) result
  (** [alpha] is the hotspot threshold (default 0.01); [epsilon] the
      scattered-partition slack (default 1.0).  [Error] unless
      [0 < alpha <= 1] and [epsilon > 0]. *)

  val create :
    ?alpha:float ->
    ?epsilon:float ->
    ?seed:int ->
    ?on_event:(event -> unit) ->
    unit ->
    t
  (** Like {!try_create}.
      @raise Cq_util.Error.Cq_error on a bad [alpha] or [epsilon]. *)

  val size : t -> int
  val insert : t -> E.t -> unit
  (** @raise Invalid_argument if already present. *)

  val delete : t -> E.t -> bool
  val mem : t -> E.t -> bool

  val num_hotspots : t -> int
  val hotspots : t -> (int * float * E.t list) list
  (** [(gid, stabbing point, members)] per hotspot group. *)

  val hotspot_of : t -> E.t -> int option
  (** Hotspot gid holding the element, if it is a hotspot interval. *)

  val hotspot_stab : t -> int -> float
  (** Stabbing point of hotspot [gid].  @raise Not_found. *)

  val scattered_count : t -> int
  val scattered : t -> E.t list
  val scattered_groups : t -> int
  (** Current size of the scattered stabbing partition |I_S|. *)

  val coverage : t -> float
  (** Fraction of intervals inside hotspots (0 when empty). *)

  val moves : t -> int
  (** Total intervals moved into or out of S by promotions/demotions
      over the whole history — the quantity bounded by (I3). *)

  val updates : t -> int
  (** Total insert/delete operations processed. *)

  val promotions : t -> int
  (** Scattered groups promoted into hotspots over the history. *)

  val demotions : t -> int
  (** Hotspot groups dissolved back into S over the history. *)

  val restructures : t -> int
  (** Every structural reorganisation performed by this instance:
      promotions + demotions + reconstructions of the scattered
      partition. *)

  val max_group_size : t -> int
  (** High-water mark of hotspot-group cardinality. *)

  val check_invariants : t -> unit
  (** Verify (I1), (I2), (I3) and structural consistency.
      @raise Failure on violation. *)

  (** Deliberate state corruption, for verifying that the invariant
      auditors actually detect broken trackers.  {b Test harnesses
      only} — never call these from application code. *)
  module Testing : sig
    val corrupt_where_hot : t -> bool
    (** Drop one hot member's reverse-lookup entry; [false] when there
        is no hotspot to corrupt. *)

    val corrupt_isect : t -> bool
    (** Widen one hot group's maintained intersection past its members'
        true common intersection. *)
  end
end
