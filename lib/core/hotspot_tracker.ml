module I = Cq_interval.Interval
module Metrics = Cq_obs.Metrics
module Trace = Cq_obs.Trace

(* Cross-instance aggregates: every tracker in the process feeds the
   same registry cells (per-instance figures live in the telemetry
   accessors below). *)
let m_promotions = Metrics.counter "tracker.promotions"
let m_demotions = Metrics.counter "tracker.demotions"
let m_moves = Metrics.counter "tracker.moves"
let m_group_size = Metrics.histogram "tracker.hot_group_size"

module Make (E : Partition_intf.ELEMENT) = struct
  module Spart = Refined_partition.Make (E)
  module EMap = Map.Make (E)
  module ESet = Set.Make (E)

  type event =
    | Hotspot_created of int * E.t list
    | Hotspot_destroyed of int * E.t list
    | Hotspot_added of int * E.t
    | Hotspot_removed of int * E.t
    | Scattered_added of E.t
    | Scattered_removed of E.t

  type hgrp = {
    gid : int;
    mutable members : ESet.t;
    (* Always contained in every member; may be narrower than the true
       common intersection after deletions (never widened back). *)
    mutable isect : I.t;
  }

  type t = {
    alpha : float;
    on_event : event -> unit;
    spart : Spart.t;
    hot : (int, hgrp) Hashtbl.t;
    mutable where_hot : hgrp EMap.t;
    mutable next_gid : int;
    mutable n : int;
    mutable move_count : int;
    mutable update_count : int;
    mutable promote_count : int;
    mutable demote_count : int;
    mutable max_group : int;
  }

  let try_create ?(alpha = 0.01) ?(epsilon = 1.0) ?(seed = 0x40757) ?(on_event = fun _ -> ())
      () =
    match
      Cq_util.Error.both
        (Cq_util.Error.in_unit_open_closed ~name:"alpha" alpha)
        (Spart.try_create ~epsilon ~seed ())
    with
    | Error _ as e -> e
    | Ok (alpha, spart) ->
        Ok
          {
            alpha;
            on_event;
            spart;
            hot = Hashtbl.create 16;
            where_hot = EMap.empty;
            next_gid = 0;
            n = 0;
            move_count = 0;
            update_count = 0;
            promote_count = 0;
            demote_count = 0;
            max_group = 0;
          }

  let create ?alpha ?epsilon ?seed ?on_event () =
    Cq_util.Error.ok_exn (try_create ?alpha ?epsilon ?seed ?on_event ())

  let size t = t.n
  let num_hotspots t = Hashtbl.length t.hot
  let scattered_count t = Spart.size t.spart
  let scattered t = List.concat_map snd (Spart.groups t.spart)
  let scattered_groups t = Spart.num_groups t.spart
  let moves t = t.move_count
  let updates t = t.update_count
  let promotions t = t.promote_count
  let demotions t = t.demote_count
  let max_group_size t = t.max_group

  (* Every structural reorganisation the instance has performed:
     promotions and demotions of hotspot groups plus reconstructions of
     the scattered partition. *)
  let restructures t = t.promote_count + t.demote_count + Spart.reconstructions t.spart

  let mem t e = EMap.mem e t.where_hot || Spart.mem t.spart e

  let coverage t =
    if t.n = 0 then 0.0
    else float_of_int (t.n - Spart.size t.spart) /. float_of_int t.n

  let hotspot_of t e = Option.map (fun g -> g.gid) (EMap.find_opt e t.where_hot)

  let hotspot_stab t gid =
    match Hashtbl.find_opt t.hot gid with
    | Some g -> I.hi g.isect
    | None -> raise Not_found

  let hotspots t =
    Hashtbl.fold (fun gid g acc -> (gid, I.hi g.isect, ESet.elements g.members) :: acc) t.hot []
    |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)

  let fresh_gid t =
    let g = t.next_gid in
    t.next_gid <- g + 1;
    g

  (* ------------------------------------------------------------------ *)
  (* Promotion / demotion                                                 *)
  (* ------------------------------------------------------------------ *)

  let promote t gid_s =
    let members = Spart.group_members t.spart gid_s in
    List.iter
      (fun e ->
        ignore (Spart.delete t.spart e);
        t.move_count <- t.move_count + 1;
        t.on_event (Scattered_removed e))
      members;
    let isect =
      List.fold_left (fun acc e -> I.inter acc (E.interval e)) (I.make neg_infinity infinity)
        members
    in
    assert (not (I.is_empty isect));
    let gid = fresh_gid t in
    let g = { gid; members = ESet.of_list members; isect } in
    Hashtbl.replace t.hot gid g;
    List.iter (fun e -> t.where_hot <- EMap.add e g t.where_hot) members;
    t.promote_count <- t.promote_count + 1;
    let sz = ESet.cardinal g.members in
    if sz > t.max_group then t.max_group <- sz;
    Metrics.incr m_promotions;
    Metrics.add m_moves sz;
    Metrics.observe m_group_size (float_of_int sz);
    Trace.instant ~cat:"tracker" "tracker.promote";
    t.on_event (Hotspot_created (gid, members))

  let demote t (g : hgrp) =
    Hashtbl.remove t.hot g.gid;
    let members = ESet.elements g.members in
    List.iter (fun e -> t.where_hot <- EMap.remove e t.where_hot) members;
    t.demote_count <- t.demote_count + 1;
    Metrics.incr m_demotions;
    Metrics.add m_moves (List.length members);
    Trace.instant ~cat:"tracker" "tracker.demote";
    t.on_event (Hotspot_destroyed (g.gid, members));
    List.iter
      (fun e ->
        Spart.insert t.spart e;
        t.move_count <- t.move_count + 1;
        t.on_event (Scattered_added e))
      members

  (* Promote every α-hotspot out of I_S and demote every I_H group
     that is no longer an (α/2)-hotspot, repeating until stable: a
     demotion re-inserts intervals into S, which can create fresh
     α-hotspots (Section 2.2's cascading case). *)
  let stabilize t =
    let changed = ref true in
    let rounds = ref 0 in
    while !changed do
      incr rounds;
      if !rounds > 1000 then Cq_util.Error.corrupt ~structure:"hotspot_tracker" "stabilize: no fixpoint";
      changed := false;
      let nf = float_of_int t.n in
      (* Promotions. *)
      let to_promote = ref [] in
      Spart.iter_group_sizes t.spart (fun gid sz ->
          if float_of_int sz >= t.alpha *. nf then to_promote := gid :: !to_promote);
      List.iter
        (fun gid ->
          (* The group may have vanished if an earlier promotion this
             round triggered a reconstruction of the scattered
             partition; re-check by id. *)
          match Spart.group_members t.spart gid with
          | exception Not_found -> ()
          | members when float_of_int (List.length members) >= t.alpha *. nf ->
              promote t gid;
              changed := true
          | _ -> ())
        !to_promote;
      (* Demotions. *)
      let to_demote = ref [] in
      Hashtbl.iter
        (fun _ g ->
          if float_of_int (ESet.cardinal g.members) < t.alpha /. 2.0 *. nf then
            to_demote := g :: !to_demote)
        t.hot;
      List.iter
        (fun g ->
          if Hashtbl.mem t.hot g.gid then begin
            demote t g;
            changed := true
          end)
        !to_demote
    done

  (* ------------------------------------------------------------------ *)
  (* Updates                                                              *)
  (* ------------------------------------------------------------------ *)

  let insert t e =
    if mem t e then invalid_arg "Hotspot_tracker.insert: element already present";
    let iv = E.interval e in
    t.update_count <- t.update_count + 1;
    t.n <- t.n + 1;
    (* First try to absorb into an existing hotspot (O(1/α) scan of the
       maintained common intersections). *)
    let target =
      Hashtbl.fold
        (fun _ g acc ->
          match acc with
          | Some _ -> acc
          | None -> if I.overlaps g.isect iv then Some g else None)
        t.hot None
    in
    (match target with
    | Some g ->
        g.isect <- I.inter g.isect iv;
        g.members <- ESet.add e g.members;
        t.where_hot <- EMap.add e g t.where_hot;
        let sz = ESet.cardinal g.members in
        if sz > t.max_group then t.max_group <- sz;
        t.on_event (Hotspot_added (g.gid, e))
    | None ->
        Spart.insert t.spart e;
        t.on_event (Scattered_added e));
    stabilize t

  let delete t e =
    match EMap.find_opt e t.where_hot with
    | Some g ->
        t.update_count <- t.update_count + 1;
        t.n <- t.n - 1;
        g.members <- ESet.remove e g.members;
        t.where_hot <- EMap.remove e t.where_hot;
        t.on_event (Hotspot_removed (g.gid, e));
        if ESet.is_empty g.members then begin
          Hashtbl.remove t.hot g.gid;
          t.on_event (Hotspot_destroyed (g.gid, []))
        end;
        stabilize t;
        true
    | None ->
        if Spart.delete t.spart e then begin
          t.update_count <- t.update_count + 1;
          t.n <- t.n - 1;
          t.on_event (Scattered_removed e);
          stabilize t;
          true
        end
        else false

  (* ------------------------------------------------------------------ *)
  (* Invariants                                                           *)
  (* ------------------------------------------------------------------ *)

  let check_invariants t =
    let fail fmt = Cq_util.Error.corrupt ~structure:"hotspot_tracker" fmt in
    let nf = float_of_int t.n in
    (* Structural consistency. *)
    Spart.check_invariants t.spart;
    Hashtbl.iter
      (fun gid g ->
        if gid <> g.gid then fail "hotspot id mismatch";
        if ESet.is_empty g.members then fail "empty hotspot retained";
        if I.is_empty g.isect then fail "hotspot with empty intersection";
        ESet.iter
          (fun e ->
            if not (I.contains (E.interval e) g.isect) then
              fail "hotspot member does not contain group intersection";
            match EMap.find_opt e t.where_hot with
            | Some g' when g' == g -> ()
            | _ -> fail "where_hot out of sync")
          g.members)
      t.hot;
    let hot_total = Hashtbl.fold (fun _ g acc -> acc + ESet.cardinal g.members) t.hot 0 in
    if hot_total + Spart.size t.spart <> t.n then fail "size accounting broken";
    if EMap.cardinal t.where_hot <> hot_total then fail "where_hot cardinality broken";
    (* (I1): every hotspot is at least an (α/2)-hotspot, and S holds no
       α-hotspot. *)
    Hashtbl.iter
      (fun gid g ->
        if float_of_int (ESet.cardinal g.members) < (t.alpha /. 2.0 *. nf) -. 1e-9 then
          fail "hotspot %d below the alpha/2 threshold" gid)
      t.hot;
    Spart.iter_group_sizes t.spart (fun gid sz ->
        if float_of_int sz >= t.alpha *. nf && t.n > 0 then
          fail "scattered group %d is an unpromoted alpha-hotspot" gid);
    if float_of_int (num_hotspots t) > (2.0 /. t.alpha) +. 1e-9 then
      fail "more than 2/alpha hotspots";
    (* (I2): |I| <= (1+eps)tau(I) + 2/alpha — the scattered partition
       already enforces its own (1+eps)tau(S) <= (1+eps)tau(I) bound in
       Spart.check_invariants, so only the hotspot count can add more,
       and it is bounded above. *)
    (* (I3): amortised moves.  The credit argument yields at most 5
       credits per update. *)
    if t.move_count > (5 * t.update_count) + 1 then
      fail "moves %d exceed 5 per update (updates = %d)" t.move_count t.update_count

  (* ------------------------------------------------------------------ *)
  (* Test-only corruption hooks                                           *)
  (* ------------------------------------------------------------------ *)

  module Testing = struct
    let some_hot_group t =
      Hashtbl.fold (fun _ g acc -> match acc with Some _ -> acc | None -> Some g) t.hot None

    let corrupt_where_hot t =
      match some_hot_group t with
      | Some g when not (ESet.is_empty g.members) ->
          t.where_hot <- EMap.remove (ESet.min_elt g.members) t.where_hot;
          true
      | _ -> false

    let corrupt_isect t =
      match some_hot_group t with
      | Some g ->
          g.isect <- I.make neg_infinity infinity;
          true
      | None -> false
  end
end
