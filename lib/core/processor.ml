module I = Cq_interval.Interval
module Metrics = Cq_obs.Metrics
module Trace = Cq_obs.Trace

(* Keep the library siblings reachable inside [Make], where [Ssi] and
   [Hotspot] name the generated processors. *)
module Ssi0 = Ssi
module Tracker0 = Hotspot_tracker

module Dedupe = struct
  type t = {
    seen : (int, int) Hashtbl.t;
    mutable event : int;
  }

  let create () = { seen = Hashtbl.create 256; event = 0 }

  let fresh d = d.event <- d.event + 1

  let mark d qid =
    match Hashtbl.find_opt d.seen qid with
    | Some ev when ev = d.event -> false
    | _ ->
        Hashtbl.replace d.seen qid d.event;
        true
end

module type QUERY = sig
  type t
  type event
  type store
  type result

  val label : string
  val qid : t -> int
  val compare : t -> t -> int
  val interval : t -> I.t
  val scatter_interval : t -> I.t
  val scatter_point : event -> float option
  val probe : store -> t -> event -> (result -> unit) -> unit
  val probe_hit : store -> t -> event -> bool

  module Group : sig
    type g

    val create : unit -> g
    val add : g -> t -> unit
    val remove : g -> t -> unit
    val size : g -> int
    val check_invariants : g -> unit

    val process :
      store -> g -> stab:float -> event -> mark:(t -> bool) -> (t -> result -> unit) -> unit

    val identify :
      store -> g -> stab:float -> event -> mark:(t -> bool) -> (t -> unit) -> unit
  end
end

module type STRATEGY = sig
  type query
  type event
  type store
  type result
  type t

  val name : string
  val create : store -> query array -> t
  val process_r : t -> event -> (query -> result -> unit) -> unit
  val affected : t -> event -> (query -> unit) -> unit
  val insert_query : t -> query -> unit
  val delete_query : t -> query -> bool
  val query_count : t -> int
end

type telemetry = {
  restructures : int;
  groups_split : int;
  groups_merged : int;
  max_group_size : int;
}

let empty_telemetry =
  { restructures = 0; groups_split = 0; groups_merged = 0; max_group_size = 0 }

let add_telemetry a b =
  {
    restructures = a.restructures + b.restructures;
    groups_split = a.groups_split + b.groups_split;
    groups_merged = a.groups_merged + b.groups_merged;
    max_group_size = max a.max_group_size b.max_group_size;
  }

type snapshot = {
  snap_queries : int;
  snap_hotspots : int;
  snap_coverage : float;
  snap_telemetry : telemetry;
}

let empty_snapshot =
  { snap_queries = 0; snap_hotspots = 0; snap_coverage = 0.0; snap_telemetry = empty_telemetry }

(* Coverage is a per-instance fraction, so the merge reweights it by
   query count: the result is again "fraction of all queries covered". *)
let merge_snapshot a b =
  let n = a.snap_queries + b.snap_queries in
  {
    snap_queries = n;
    snap_hotspots = a.snap_hotspots + b.snap_hotspots;
    snap_coverage =
      (if n = 0 then 0.0
       else
         ((a.snap_coverage *. float_of_int a.snap_queries)
         +. (b.snap_coverage *. float_of_int b.snap_queries))
         /. float_of_int n);
    snap_telemetry = add_telemetry a.snap_telemetry b.snap_telemetry;
  }

module type PROCESSOR = sig
  include STRATEGY

  val create_cfg : ?alpha:float -> ?epsilon:float -> ?seed:int -> store -> query array -> t
  val num_hotspots : t -> int
  val coverage : t -> float
  val telemetry : t -> telemetry
  val snapshot : t -> snapshot
  val check_invariants : t -> unit

  val set_shed : t -> (int -> bool) option -> unit
  (** Install ([Some]) or clear ([None], the default) a load-shedding
      predicate.  During [process_r] the predicate is consulted only
      for (event, qid) pairs that definitely produce at least one
      result — group identification is anchor-exact, and the scattered
      fallback confirms with [probe_hit] first — so the consultation
      set is a pure function of the query population and the event
      stream, independent of internal structure (hotspot grouping,
      partition layout, seeds).  A [false] verdict suppresses that
      query's probe for this event.  [affected] and structural
      maintenance stay exact.  With [None] there is no per-candidate
      overhead. *)

  val stage_batch : t -> event array -> int -> unit
  (** [stage_batch t evs n] precomputes per-event scattered-index
      candidates for the events [evs.(0 .. n-1)] with a single batched
      index descent, when the processor has a scattered index and the
      events project to fixed stabbing points.  A no-op (beyond
      refreshing lazy state) otherwise.  The staged candidates feed
      [process_staged]; any query insertion or deletion invalidates
      them (later [process_staged] calls then fall back to the live
      per-event path, preserving exact semantics). *)

  val process_staged : t -> idx:int -> event -> (query -> result -> unit) -> unit
  (** [process_staged t ~idx ev sink] is exactly [process_r t ev sink]
      for the [idx]-th staged event, reusing the candidates staged by
      the last [stage_batch] when they are still valid.  [ev] must be
      the same value passed at position [idx] of that batch.  Falls
      back to [process_r] when nothing (or a smaller batch) was
      staged. *)
end

type strategy = Hotspot | Ssi

let strategies = [ Hotspot; Ssi ]

let strategy_to_string = function Hotspot -> "hotspot" | Ssi -> "ssi"

let strategy_of_string = function
  | "hotspot" -> Ok Hotspot
  | "ssi" -> Ok Ssi
  | s -> Error (Printf.sprintf "unknown strategy %S (hotspot|ssi)" s)


module Make (Q : QUERY) (B : Cq_index.Stab_backend.S) = struct
  module Vec = Cq_util.Vec

  module Elem = struct
    type t = Q.t

    let compare = Q.compare
    let interval = Q.interval
  end

  module Tracker = Tracker0.Make (Elem)

  let dummy_sink : Q.t -> Q.result -> unit = fun _ _ -> ()

  (* Per-event candidate fanout (queries visited by the group walk and
     scattered probes) and the number surviving dedupe — shared cells
     for every instance built from this QUERY. *)
  let m_fanout = Metrics.histogram ("proc." ^ Q.label ^ ".fanout")
  let m_dedupe_marks = Metrics.histogram ("proc." ^ Q.label ^ ".dedupe_marks")

  module Hotspot = struct
    type query = Q.t
    type event = Q.event
    type store = Q.store
    type result = Q.result

    type t = {
      store : Q.store;
      tracker : Tracker.t;
      hot : (int, Q.Group.g) Hashtbl.t;
      scattered : Q.t B.t;
      dedupe : Dedupe.t;
      mutable shed : (int -> bool) option;
      (* Hot-path closures, allocated once and parameterised through
         the [cur_*] cells so [process_r] builds no closure per event.
         Set after record creation (they capture [t]). *)
      mutable cur_ev : Q.event option;
      mutable cur_sink : Q.t -> Q.result -> unit;
      mutable c_mark : Q.t -> bool;
      mutable c_group : int -> Q.Group.g -> unit;
      mutable c_scat : Q.t -> unit;
      (* Batch staging: one scattered-index descent answers a whole
         batch of events; [stage_cand] holds one reusable candidate
         bucket per event position.  [staged_n] < 0 means nothing
         staged (or staged state invalidated by query churn). *)
      mutable stage_keys : float array;
      stage_cand : Q.t Vec.t Vec.t;
      mutable c_stage : idx:int -> Q.t -> unit;
      mutable staged_n : int;
    }

    let name = Q.label ^ "-Hotspot"

    let create_cfg ?(alpha = 0.001) ?epsilon ?seed store queries =
      let hot = Hashtbl.create 16 in
      let scattered = B.create ~seed:(Option.value seed ~default:0x40757) in
      let on_event = function
        | Tracker.Hotspot_created (gid, members) ->
            let g = Q.Group.create () in
            List.iter (Q.Group.add g) members;
            Hashtbl.replace hot gid g
        | Tracker.Hotspot_destroyed (gid, _members) -> Hashtbl.remove hot gid
        | Tracker.Hotspot_added (gid, q) -> Q.Group.add (Hashtbl.find hot gid) q
        | Tracker.Hotspot_removed (gid, q) -> Q.Group.remove (Hashtbl.find hot gid) q
        | Tracker.Scattered_added q -> B.add scattered (Q.scatter_interval q) q
        | Tracker.Scattered_removed q ->
            ignore (B.remove scattered (Q.scatter_interval q) (fun p -> Q.qid p = Q.qid q))
      in
      let tracker = Tracker.create ~alpha ?epsilon ?seed ~on_event () in
      Array.iter (fun q -> Tracker.insert tracker q) queries;
      let t =
        {
          store;
          tracker;
          hot;
          scattered;
          dedupe = Dedupe.create ();
          shed = None;
          cur_ev = None;
          cur_sink = dummy_sink;
          c_mark = (fun _ -> false);
          c_group = (fun _ _ -> ());
          c_scat = (fun _ -> ());
          stage_keys = [||];
          stage_cand = Vec.create ();
          c_stage = (fun ~idx:_ _ -> ());
          staged_n = -1;
        }
      in
      t.c_mark <-
        (fun q ->
          Dedupe.mark t.dedupe (Q.qid q)
          && (match t.shed with None -> true | Some pred -> pred (Q.qid q)));
      t.c_group <-
        (fun gid g ->
          match t.cur_ev with
          | Some ev ->
              let stab = Tracker.hotspot_stab t.tracker gid in
              Q.Group.process t.store g ~stab ev ~mark:t.c_mark t.cur_sink
          | None -> ());
      t.c_scat <-
        (fun q ->
          match t.cur_ev with
          | Some ev -> (
              match t.shed with
              | None -> Q.probe t.store q ev (fun res -> t.cur_sink q res)
              | Some pred ->
                  if Q.probe_hit t.store q ev && pred (Q.qid q) then
                    Q.probe t.store q ev (fun res -> t.cur_sink q res))
          | None -> ());
      t.c_stage <- (fun ~idx q -> Vec.push (Vec.get t.stage_cand idx) q);
      t

    let create store queries = create_cfg store queries

    (* Scattered queries are served individually; when the event
       projects to a point on the scatter axis the backend prunes the
       candidates with a stabbing query, otherwise every scattered
       query is probed (band windows shift with the event, so no fixed
       stabbing point exists). *)
    let[@cq.hot] iter_scattered t ev f =
      match Q.scatter_point ev with
      | Some x -> B.stab t.scattered x f
      | None -> B.iter t.scattered f

    let[@cq.hot] process_r t ev sink =
      Dedupe.fresh t.dedupe;
      if Metrics.enabled () then begin
        let cands = ref 0 and marked = ref 0 in
        let mark q =
          Stdlib.incr cands;
          let fresh = Dedupe.mark t.dedupe (Q.qid q) in
          if fresh then Stdlib.incr marked;
          fresh && (match t.shed with None -> true | Some pred -> pred (Q.qid q))
        in
        Hashtbl.iter
          (fun gid g ->
            let stab = Tracker.hotspot_stab t.tracker gid in
            Q.Group.process t.store g ~stab ev ~mark sink)
          t.hot;
        (match t.shed with
        | None ->
            iter_scattered t ev (fun q ->
                Stdlib.incr cands;
                Stdlib.incr marked;
                Q.probe t.store q ev (fun res -> sink q res))
        | Some pred ->
            iter_scattered t ev (fun q ->
                Stdlib.incr cands;
                Stdlib.incr marked;
                if Q.probe_hit t.store q ev && pred (Q.qid q) then
                  Q.probe t.store q ev (fun res -> sink q res)));
        Metrics.observe m_fanout (float_of_int !cands);
        Metrics.observe m_dedupe_marks (float_of_int !marked)
      end
      else begin
        t.cur_ev <- Some ev;
        t.cur_sink <- sink;
        Hashtbl.iter t.c_group t.hot;
        iter_scattered t ev t.c_scat;
        t.cur_ev <- None;
        t.cur_sink <- dummy_sink
      end

    (* Stage the scattered-index candidates for a whole batch with one
       batched descent.  Only possible when every event projects to a
       point on the scatter axis; band-style queries (no fixed stabbing
       point) keep the per-event path.  The staged buckets stay valid
       for the rest of the batch because event processing never moves
       queries between the hotspot and scattered partitions — only
       query churn does, and that invalidates below. *)
    let[@cq.hot] stage_batch t evs n =
      t.staged_n <- -1;
      if n > 0 && B.size t.scattered > 0 then begin
        match Q.scatter_point evs.(0) with
        | None -> ()
        | Some _ ->
            if Array.length t.stage_keys <> n then t.stage_keys <- Array.make n 0.0;
            let ok = ref true in
            for i = 0 to n - 1 do
              match Q.scatter_point evs.(i) with
              | Some x -> t.stage_keys.(i) <- x
              | None -> ok := false
            done;
            if !ok then begin
              while Vec.length t.stage_cand < n do
                Vec.push t.stage_cand (Vec.create ())
              done;
              for i = 0 to n - 1 do
                Vec.clear (Vec.get t.stage_cand i)
              done;
              B.stab_batch t.scattered ~keys:t.stage_keys ~f:t.c_stage;
              t.staged_n <- n
            end
      end

    let[@cq.hot] process_staged t ~idx ev sink =
      if idx < 0 || idx >= t.staged_n then process_r t ev sink
      else begin
        Dedupe.fresh t.dedupe;
        let bucket = Vec.get t.stage_cand idx in
        if Metrics.enabled () then begin
          let cands = ref 0 and marked = ref 0 in
          let mark q =
            Stdlib.incr cands;
            let fresh = Dedupe.mark t.dedupe (Q.qid q) in
            if fresh then Stdlib.incr marked;
            fresh && (match t.shed with None -> true | Some pred -> pred (Q.qid q))
          in
          Hashtbl.iter
            (fun gid g ->
              let stab = Tracker.hotspot_stab t.tracker gid in
              Q.Group.process t.store g ~stab ev ~mark sink)
            t.hot;
          (match t.shed with
          | None ->
              Vec.iter
                (fun q ->
                  Stdlib.incr cands;
                  Stdlib.incr marked;
                  Q.probe t.store q ev (fun res -> sink q res))
                bucket
          | Some pred ->
              Vec.iter
                (fun q ->
                  Stdlib.incr cands;
                  Stdlib.incr marked;
                  if Q.probe_hit t.store q ev && pred (Q.qid q) then
                    Q.probe t.store q ev (fun res -> sink q res))
                bucket);
          Metrics.observe m_fanout (float_of_int !cands);
          Metrics.observe m_dedupe_marks (float_of_int !marked)
        end
        else begin
          t.cur_ev <- Some ev;
          t.cur_sink <- sink;
          Hashtbl.iter t.c_group t.hot;
          Vec.iter t.c_scat bucket;
          t.cur_ev <- None;
          t.cur_sink <- dummy_sink
        end
      end

    let affected t ev report =
      Dedupe.fresh t.dedupe;
      let mark q = Dedupe.mark t.dedupe (Q.qid q) in
      Hashtbl.iter
        (fun gid g ->
          let stab = Tracker.hotspot_stab t.tracker gid in
          Q.Group.identify t.store g ~stab ev ~mark report)
        t.hot;
      (* Hotspot and scattered sets are disjoint, so scattered hits
         need no dedupe marking. *)
      iter_scattered t ev (fun q -> if Q.probe_hit t.store q ev then report q)

    let set_shed t pred = t.shed <- pred

    (* Query churn can move queries between the hotspot and scattered
       partitions, so any staged batch candidates are stale. *)
    let insert_query t q =
      t.staged_n <- -1;
      Tracker.insert t.tracker q

    let delete_query t q =
      t.staged_n <- -1;
      Tracker.delete t.tracker q
    let query_count t = Tracker.size t.tracker
    let num_hotspots t = Tracker.num_hotspots t.tracker
    let coverage t = Tracker.coverage t.tracker

    let telemetry t =
      {
        restructures = Tracker.restructures t.tracker;
        groups_split = Tracker.promotions t.tracker;
        groups_merged = Tracker.demotions t.tracker;
        max_group_size = Tracker.max_group_size t.tracker;
      }

    let snapshot t =
      {
        snap_queries = query_count t;
        snap_hotspots = num_hotspots t;
        snap_coverage = coverage t;
        snap_telemetry = telemetry t;
      }

    (* The aux groups and the scattered index are maintained purely
       from the tracker's event stream; verify they never drift from
       the tracker's own view. *)
    let check_invariants t =
      Tracker.check_invariants t.tracker;
      let fail fmt = Cq_util.Error.corrupt ~structure:name fmt in
      let hotspots = Tracker.hotspots t.tracker in
      if List.length hotspots <> Hashtbl.length t.hot then
        fail "%s: %d aux groups for %d hotspots" name (Hashtbl.length t.hot)
          (List.length hotspots);
      List.iter
        (fun (gid, _, members) ->
          match Hashtbl.find_opt t.hot gid with
          | None -> fail "%s: hotspot %d has no aux group" name gid
          | Some g ->
              Q.Group.check_invariants g;
              if Q.Group.size g <> List.length members then
                fail "%s: hotspot %d aux group holds %d of %d members" name gid
                  (Q.Group.size g) (List.length members))
        hotspots;
      let scattered = Tracker.scattered t.tracker in
      B.check_invariants t.scattered;
      if B.size t.scattered <> List.length scattered then
        fail "%s: scattered index holds %d of %d queries" name (B.size t.scattered)
          (List.length scattered)
  end

  module Ssi = struct
    type query = Q.t
    type event = Q.event
    type store = Q.store
    type result = Q.result

    module G = struct
      type elt = Q.t
      type t = Q.Group.g

      let build ~stab:_ members =
        let g = Q.Group.create () in
        Array.iter (Q.Group.add g) members;
        g
    end

    module Index = Ssi0.Make (Elem) (G)

    type t = {
      store : Q.store;
      queries : (int, Q.t) Hashtbl.t;
      mutable index : Index.t;
      mutable dirty : bool;
      mutable rebuilds : int;
      dedupe : Dedupe.t;
      mutable shed : (int -> bool) option;
      (* Hot-path closures, allocated once (see Hotspot above). *)
      mutable cur_ev : Q.event option;
      mutable cur_sink : Q.t -> Q.result -> unit;
      mutable c_mark : Q.t -> bool;
      mutable c_visit : stab:float -> Q.Group.g -> unit;
    }

    let name = Q.label ^ "-SSI"

    (* The lazy rebuild is the sanctioned slow path: churn-triggered,
       amortised over the batch — [@cq.cold] cuts CQL008 propagation. *)
    let[@cq.cold] rebuild t =
      t.rebuilds <- t.rebuilds + 1;
      Trace.with_span ~cat:"ssi" (Q.label ^ ".ssi_rebuild") (fun () ->
          let qs = Hashtbl.fold (fun _ q acc -> q :: acc) t.queries [] in
          t.index <- Index.build (Array.of_list qs);
          t.dirty <- false)

    let refresh t = if t.dirty then rebuild t

    let create store queries =
      let h = Hashtbl.create (max 16 (Array.length queries)) in
      Array.iter (fun q -> Hashtbl.replace h (Q.qid q) q) queries;
      let t =
        {
          store;
          queries = h;
          index = Index.build queries;
          dirty = false;
          rebuilds = 0;
          dedupe = Dedupe.create ();
          shed = None;
          cur_ev = None;
          cur_sink = dummy_sink;
          c_mark = (fun _ -> false);
          c_visit = (fun ~stab:_ _ -> ());
        }
      in
      t.c_mark <-
        (fun q ->
          Dedupe.mark t.dedupe (Q.qid q)
          && (match t.shed with None -> true | Some pred -> pred (Q.qid q)));
      t.c_visit <-
        (fun ~stab g ->
          match t.cur_ev with
          | Some ev -> Q.Group.process t.store g ~stab ev ~mark:t.c_mark t.cur_sink
          | None -> ());
      t

    let create_cfg ?alpha:_ ?epsilon:_ ?seed:_ store queries = create store queries

    let[@cq.hot] process_r t ev sink =
      refresh t;
      Dedupe.fresh t.dedupe;
      if Metrics.enabled () then begin
        let cands = ref 0 and marked = ref 0 in
        let mark q =
          Stdlib.incr cands;
          let fresh = Dedupe.mark t.dedupe (Q.qid q) in
          if fresh then Stdlib.incr marked;
          fresh && (match t.shed with None -> true | Some pred -> pred (Q.qid q))
        in
        Index.iter t.index (fun ~stab g -> Q.Group.process t.store g ~stab ev ~mark sink);
        Metrics.observe m_fanout (float_of_int !cands);
        Metrics.observe m_dedupe_marks (float_of_int !marked)
      end
      else begin
        t.cur_ev <- Some ev;
        t.cur_sink <- sink;
        Index.iter t.index t.c_visit;
        t.cur_ev <- None;
        t.cur_sink <- dummy_sink
      end

    (* SSI has no scattered index, so there is nothing to stage beyond
       hoisting the lazy rebuild out of the per-event loop. *)
    let[@cq.hot] stage_batch t _ n = if n > 0 then refresh t
    let[@cq.hot] process_staged t ~idx:_ ev sink = process_r t ev sink

    let affected t ev report =
      refresh t;
      Dedupe.fresh t.dedupe;
      let mark q = Dedupe.mark t.dedupe (Q.qid q) in
      Index.iter t.index (fun ~stab g -> Q.Group.identify t.store g ~stab ev ~mark report)

    let set_shed t pred = t.shed <- pred

    let insert_query t q =
      Hashtbl.replace t.queries (Q.qid q) q;
      t.dirty <- true

    let delete_query t q =
      if Hashtbl.mem t.queries (Q.qid q) then begin
        Hashtbl.remove t.queries (Q.qid q);
        t.dirty <- true;
        true
      end
      else false

    let query_count t = Hashtbl.length t.queries
    let num_hotspots _ = 0
    let coverage _ = 0.0

    (* The only structural reorganisation SSI performs is the lazy
       full rebuild. *)
    let telemetry t = { empty_telemetry with restructures = t.rebuilds }

    let snapshot t =
      {
        snap_queries = query_count t;
        snap_hotspots = 0;
        snap_coverage = 0.0;
        snap_telemetry = telemetry t;
      }

    let check_invariants t =
      refresh t;
      if Index.size t.index <> Hashtbl.length t.queries then
        Cq_util.Error.corrupt ~structure:name "index holds %d of %d queries"
          (Index.size t.index) (Hashtbl.length t.queries)

    (* Extras used by the adaptive dispatcher. *)
    let num_groups t =
      refresh t;
      Index.num_groups t.index

    let iter_queries t f = Hashtbl.iter (fun _ q -> f q) t.queries
  end
end
