(** Two-dimensional stabbing partitions — Section 6's first future-work
    item ("extend the idea of clustering by stabbing partition to
    multidimensional spaces, so that we can handle multi-attribute
    selection conditions").

    A 2-D stabbing partition groups rectangles so that every group has
    a common {e stabbing point} (px, py) inside all its members.
    Minimum piercing of rectangles is NP-hard (unlike intervals), so
    the construction is the natural projection heuristic the paper's
    footnote suggests: partition canonically on the x-projections, then
    re-partition each x-group canonically on its y-projections.  The
    result is at most τx·τy groups and is exact on workloads whose
    clusters are axis-aligned (each cluster of overlapping rectangles
    becomes one group).  Construction is O(n log n) — two nested
    canonical passes, each a sort plus a linear greedy scan. *)

type 'e group = {
  px : float;
  py : float;  (** The group's stabbing point: inside every member. *)
  members : 'e array;
}

val partition : ('e -> Cq_index.Rect.t) -> 'e array -> 'e group array
(** The projection-heuristic 2-D stabbing partition. *)

val size : ('e -> Cq_index.Rect.t) -> 'e array -> int
(** Number of groups the heuristic produces. *)

val is_valid : ('e -> Cq_index.Rect.t) -> 'e group array -> bool
(** Every member contains its group's stabbing point, sizes add up. *)

val coverage_of_top : ('e -> Cq_index.Rect.t) -> 'e array -> top:int -> float
(** Fraction of rectangles inside the [top] largest groups — the 2-D
    analogue of the hotspot coverage curves of Figure 2. *)
