module I = Cq_interval.Interval
module Metrics = Cq_obs.Metrics
module Trace = Cq_obs.Trace

let m_reconstructions = Metrics.counter "partition.reconstructions"

module Make (E : Partition_intf.ELEMENT) = struct
  type elt = E.t

  module T = Cq_index.Treap.Make (E)
  module EMap = Map.Make (E)

  (* A group surviving from the last reconstruction.  [boundary] is the
     smallest left endpoint among the group's members (lowered when an
     insertion refines into the group); by invariant (⋆) the boundaries
     are strictly increasing across groups, so an element's group is
     found by binary search on its left endpoint — no per-element
     pointers are needed.  [point] is the stabbing point fixed at
     reconstruction time: every member, past and future, contains it
     (deletions can only widen the common intersection, and the insert
     refinement only admits elements stabbed by [point]). *)
  type grp = {
    gid : int;
    mutable boundary : float;
    point : float;
    mutable treap : T.t;
  }

  type t = {
    epsilon : float;
    rng : Cq_util.Rng.t;
    mutable olds : grp array; (* in invariant-(⋆) order *)
    mutable nonempty_olds : int;
    mutable sing_gids : int EMap.t; (* post-reconstruction singletons *)
    sing_by_gid : (int, elt) Hashtbl.t;
    mutable next_gid : int;
    mutable n : int;
    mutable tau0 : int;
    mutable updates : int; (* updates since last reconstruction *)
    mutable dels_since : int; (* deletions since last reconstruction *)
    mutable recon_count : int;
  }

  let try_create ?(epsilon = 1.0) ?(seed = 0x5eed) () =
    match Cq_util.Error.positive ~name:"epsilon" epsilon with
    | Error _ as e -> e
    | Ok epsilon ->
        Ok
          {
            epsilon;
            rng = Cq_util.Rng.create seed;
            olds = [||];
            nonempty_olds = 0;
            sing_gids = EMap.empty;
            sing_by_gid = Hashtbl.create 64;
            next_gid = 0;
            n = 0;
            tau0 = 0;
            updates = 0;
            dels_since = 0;
            recon_count = 0;
          }

  let create ?epsilon ?seed () = Cq_util.Error.ok_exn (try_create ?epsilon ?seed ())

  let size t = t.n
  let num_groups t = t.nonempty_olds + Hashtbl.length t.sing_by_gid
  let reconstructions t = t.recon_count
  let updates_since_reconstruction t = t.updates

  let fresh_gid t =
    let g = t.next_gid in
    t.next_gid <- g + 1;
    g

  (* Rightmost old group whose boundary <= the element's left endpoint:
     the only old group that can hold it. *)
  let old_candidate t e =
    let lo = I.lo (E.interval e) in
    let n = Array.length t.olds in
    if n = 0 || t.olds.(0).boundary > lo then None
    else begin
      let a = ref 0 and b = ref (n - 1) in
      (* invariant: olds.(a).boundary <= lo *)
      while !a < !b do
        let mid = (!a + !b + 1) / 2 in
        if t.olds.(mid).boundary <= lo then a := mid else b := mid - 1
      done;
      Some t.olds.(!a)
    end

  let mem t e =
    EMap.mem e t.sing_gids
    || match old_candidate t e with Some g -> T.mem e g.treap | None -> false

  (* The paper's insertion refinement (Section 2.3, footnote): if some
     existing stabbing point stabs the new interval, join that group —
     specifically the group of the LEFTMOST such point, which keeps
     invariant (⋆): every earlier group's point lies strictly left of
     the new element's left endpoint. *)
  let refine_candidate t e =
    let iv = E.interval e in
    let n = Array.length t.olds in
    if n = 0 then None
    else begin
      (* First group whose fixed point >= lo. *)
      let a = ref 0 and b = ref n in
      while !a < !b do
        let mid = (!a + !b) / 2 in
        if t.olds.(mid).point < I.lo iv then a := mid + 1 else b := mid
      done;
      if !a < n && t.olds.(!a).point <= I.hi iv then Some t.olds.(!a) else None
    end

  (* ------------------------------------------------------------------ *)
  (* Reconstruction stage (Figure 13)                                     *)
  (* ------------------------------------------------------------------ *)

  let full_line = I.make neg_infinity infinity

  let reconstruct_impl t =
    (* Unprocessed inputs: old groups in (⋆) order, singletons in
       left-endpoint order; both consumed from the head. *)
    let olds = ref (List.filter (fun g -> not (T.is_empty g.treap)) (Array.to_list t.olds)) in
    let sings = ref (List.map fst (EMap.bindings t.sing_gids)) in
    let out = Cq_util.Vec.create () in
    (* Active set A: joined old-group pieces [u], pending singletons
       [v], and the common intersection of everything in A. *)
    let u = ref T.empty in
    let v = ref [] in
    let isect = ref full_line in
    let active_nonempty () = (not (T.is_empty !u)) || not (List.is_empty !v) in
    let flush () =
      if active_nonempty () then begin
        let tj = List.fold_left (fun acc e -> T.add t.rng e acc) !u !v in
        Cq_util.Vec.push out tj
      end
    in
    (* Absorb into A the prefix of old group [g] whose left endpoints
       do not exceed r(⋂A); the remainder (possibly all of [g]) stays
       unprocessed at the head. *)
    let absorb_prefix g =
      let piece, rest = T.split_lo_le (I.hi !isect) g.treap in
      if not (T.is_empty piece) then begin
        u := T.join !u piece;
        isect := I.inter !isect (T.isect piece)
      end;
      if T.is_empty rest then olds := List.tl !olds
      else begin
        g.treap <- rest;
        ()
      end
    in
    let continue = ref true in
    while !continue do
      (* K <- next unprocessed set by the left endpoint of its common
         intersection. *)
      let next_old = match !olds with [] -> None | g :: _ -> Some (I.lo (T.isect g.treap)) in
      let next_sing = match !sings with [] -> None | e :: _ -> Some (I.lo (E.interval e)) in
      match (next_old, next_sing) with
      | None, None -> continue := false
      | _ ->
          let k_is_sing =
            match (next_old, next_sing) with
            | Some lo, Some ls -> ls <= lo
            | None, Some _ -> true
            | Some _, None -> false
            | None, None -> assert false
          in
          let l_k = if k_is_sing then Option.get next_sing else Option.get next_old in
          if l_k <= I.hi !isect then
            if k_is_sing then begin
              (* Case 1, singleton: joins A outright. *)
              let e = List.hd !sings in
              sings := List.tl !sings;
              v := e :: !v;
              isect := I.inter !isect (E.interval e)
            end
            else
              (* Case 1, old group: l(⋂K) <= r(⋂A) means the whole
                 group fits; absorb (split is a no-op full take). *)
              absorb_prefix (List.hd !olds)
          else begin
            (* Case 2: close the current group — but first pull in the
               fitting prefix of the leftmost unprocessed old group
               (Figure 15), whose early members may still belong to A
               even though its intersection starts past r(⋂A). *)
            (match !olds with g :: _ -> absorb_prefix g | [] -> ());
            flush ();
            (* Start a fresh active set from K.  (K may itself have
               just lost its prefix to the closed group.) *)
            match (!olds, !sings) with
            | _, e :: rest when k_is_sing ->
                sings := rest;
                u := T.empty;
                v := [ e ];
                isect := E.interval e
            | g :: rest, _ ->
                olds := rest;
                u := g.treap;
                v := [];
                isect := T.isect g.treap
            | [], _ ->
                (* K was an old group that the prefix pull fully
                   consumed; restart from an empty active set. *)
                u := T.empty;
                v := [];
                isect := full_line
          end
    done;
    flush ();
    (* Install the new epoch. *)
    let groups = Cq_util.Vec.to_array out in
    t.olds <-
      Array.map
        (fun treap ->
          let boundary =
            match T.min_elt treap with
            | Some e -> I.lo (E.interval e)
            | None -> assert false
          in
          { gid = fresh_gid t; boundary; point = I.hi (T.isect treap); treap })
        groups;
    t.nonempty_olds <- Array.length t.olds;
    t.sing_gids <- EMap.empty;
    Hashtbl.reset t.sing_by_gid;
    t.tau0 <- Array.length t.olds;
    t.updates <- 0;
    t.dels_since <- 0;
    t.recon_count <- t.recon_count + 1

  let reconstruct t =
    Metrics.incr m_reconstructions;
    Trace.with_span ~cat:"partition" "refined_partition.reconstruct" (fun () ->
        reconstruct_impl t)

  (* The paper's relaxed trigger: rebuild only once the partition size
     reaches (1+eps)(tau0 - m), where m counts deletions since the last
     rebuild.  Lemma 3's argument gives |P| <= (1+eps)tau(I) at all
     times; with the insertion refinement below, clustered insertions
     rarely grow |P|, so reconstructions are infrequent. *)
  let maybe_reconstruct t =
    let p = float_of_int (num_groups t) in
    if p >= (1.0 +. t.epsilon) *. float_of_int (t.tau0 - t.dels_since) && t.n > 0 then
      reconstruct t

  let insert t e =
    if mem t e then invalid_arg "Refined_partition.insert: element already present";
    (match refine_candidate t e with
    | Some g ->
        if T.is_empty g.treap then t.nonempty_olds <- t.nonempty_olds + 1;
        g.treap <- T.add t.rng e g.treap;
        let lo = I.lo (E.interval e) in
        if lo < g.boundary then g.boundary <- lo
    | None ->
        let gid = fresh_gid t in
        t.sing_gids <- EMap.add e gid t.sing_gids;
        Hashtbl.replace t.sing_by_gid gid e);
    t.n <- t.n + 1;
    t.updates <- t.updates + 1;
    maybe_reconstruct t

  let delete t e =
    match EMap.find_opt e t.sing_gids with
    | Some gid ->
        t.sing_gids <- EMap.remove e t.sing_gids;
        Hashtbl.remove t.sing_by_gid gid;
        t.n <- t.n - 1;
        t.updates <- t.updates + 1;
        t.dels_since <- t.dels_since + 1;
        maybe_reconstruct t;
        true
    | None -> (
        match old_candidate t e with
        | None -> false
        | Some g -> (
            match T.remove e g.treap with
            | None -> false
            | Some treap ->
                g.treap <- treap;
                if T.is_empty treap then t.nonempty_olds <- t.nonempty_olds - 1;
                t.n <- t.n - 1;
                t.updates <- t.updates + 1;
                t.dels_since <- t.dels_since + 1;
                maybe_reconstruct t;
                true))

  let group_stab treap = I.hi (T.isect treap)

  let groups_in_order t =
    let old_part =
      Array.to_list t.olds
      |> List.filter (fun g -> not (T.is_empty g.treap))
      |> List.map (fun g -> (group_stab g.treap, T.to_list g.treap))
    in
    let sing_part =
      EMap.bindings t.sing_gids |> List.map (fun (e, _) -> (I.hi (E.interval e), [ e ]))
    in
    old_part @ sing_part

  let groups t =
    List.sort (fun (a, _) (b, _) -> Float.compare a b) (groups_in_order t)

  let iter_group_sizes t f =
    Array.iter (fun g -> if not (T.is_empty g.treap) then f g.gid (T.size g.treap)) t.olds;
    Hashtbl.iter (fun gid _ -> f gid 1) t.sing_by_gid

  let group_members t gid =
    match Hashtbl.find_opt t.sing_by_gid gid with
    | Some e -> [ e ]
    | None -> (
        match Array.find_opt (fun g -> g.gid = gid && not (T.is_empty g.treap)) t.olds with
        | Some g -> T.to_list g.treap
        | None -> raise Not_found)

  let group_of t e =
    match EMap.find_opt e t.sing_gids with
    | Some gid -> gid
    | None -> (
        match old_candidate t e with
        | Some g when T.mem e g.treap -> g.gid
        | _ -> raise Not_found)

  let elements t =
    let acc = ref [] in
    Array.iter (fun g -> T.iter (fun e -> acc := e :: !acc) g.treap) t.olds;
    EMap.iter (fun e _ -> acc := e :: !acc) t.sing_gids;
    !acc

  let check_invariants t =
    let fail fmt = Cq_util.Error.corrupt ~structure:"refined_partition" fmt in
    (* Old groups: treap invariants, nonempty intersection, (⋆) order. *)
    let last_boundary = ref neg_infinity in
    Array.iter
      (fun g ->
        T.check_invariants g.treap;
        if g.boundary <= !last_boundary then fail "boundaries not strictly increasing";
        last_boundary := g.boundary;
        if not (T.is_empty g.treap) then begin
          if I.is_empty (T.isect g.treap) then fail "old group with empty intersection";
          T.iter
            (fun e ->
              if I.lo (E.interval e) < g.boundary then fail "member left of its group boundary")
            g.treap
        end)
      t.olds;
    let counted_olds =
      Array.fold_left (fun acc g -> if T.is_empty g.treap then acc else acc + 1) 0 t.olds
    in
    if counted_olds <> t.nonempty_olds then fail "stale nonempty_olds counter";
    let member_total =
      Array.fold_left (fun acc g -> acc + T.size g.treap) 0 t.olds + EMap.cardinal t.sing_gids
    in
    if member_total <> t.n then fail "size mismatch";
    if Hashtbl.length t.sing_by_gid <> EMap.cardinal t.sing_gids then
      fail "singleton maps out of sync";
    (* Theorem 2 size bound against a freshly computed optimum. *)
    let tau = Stabbing.tau E.interval (Array.of_list (elements t)) in
    let p = num_groups t in
    if float_of_int p > ((1.0 +. t.epsilon) *. float_of_int tau) +. 1e-9 then
      fail "partition size %d exceeds (1+%g) * tau with tau = %d" p t.epsilon tau
end
