module I = Cq_interval.Interval
module Itree = Cq_index.Interval_tree
module Metrics = Cq_obs.Metrics
module Trace = Cq_obs.Trace

let m_reconstructions = Metrics.counter "partition.reconstructions"

module Make (E : Partition_intf.ELEMENT) = struct
  type elt = E.t

  module ESet = Set.Make (E)
  module EMap = Map.Make (E)

  type grp = {
    gid : int;
    mutable members : ESet.t;
    (* Lazy common intersection: always stabs every member, but may be
       narrower than the true intersection after deletions (the paper's
       strategy never widens it back). *)
    mutable isect : I.t;
  }

  type t = {
    epsilon : float;
    groups : (int, grp) Hashtbl.t;
    (* Interval tree over group intersections, for the overlap lookup
       on insertion; replaced wholesale by reconstructions. *)
    mutable gindex : int Itree.Mutable.t;
    mutable where : grp EMap.t;
    mutable next_gid : int;
    mutable n : int; (* current number of elements *)
    mutable tau0 : int; (* optimal partition size at last rebuild *)
    mutable dels_since : int; (* deletions since last rebuild *)
    mutable recon_count : int;
  }

  let try_create ?(epsilon = 1.0) ?seed:_ () =
    match Cq_util.Error.positive ~name:"epsilon" epsilon with
    | Error _ as e -> e
    | Ok epsilon ->
        Ok
          {
            epsilon;
            groups = Hashtbl.create 64;
            gindex = Itree.Mutable.create ();
            where = EMap.empty;
            next_gid = 0;
            n = 0;
            tau0 = 0;
            dels_since = 0;
            recon_count = 0;
          }

  let create ?epsilon ?seed () = Cq_util.Error.ok_exn (try_create ?epsilon ?seed ())

  let size t = t.n
  let num_groups t = Hashtbl.length t.groups
  let mem t e = EMap.mem e t.where
  let reconstructions t = t.recon_count

  let fresh_gid t =
    let g = t.next_gid in
    t.next_gid <- g + 1;
    g

  let elements t = EMap.fold (fun e _ acc -> e :: acc) t.where []

  let reconstruct_impl t =
    let elems = Array.of_list (elements t) in
    Hashtbl.reset t.groups;
    t.where <- EMap.empty;
    let gi = Itree.Mutable.create () in
    let fresh = Stabbing.canonical E.interval elems in
    Array.iter
      (fun (g : elt Stabbing.group) ->
        let gid = fresh_gid t in
        let grp = { gid; members = ESet.of_list (Array.to_list g.members); isect = g.isect } in
        Hashtbl.replace t.groups gid grp;
        Itree.Mutable.add gi g.isect gid;
        Array.iter (fun e -> t.where <- EMap.add e grp t.where) g.members)
      fresh;
    t.gindex <- gi;
    t.tau0 <- Array.length fresh;
    t.dels_since <- 0;
    t.recon_count <- t.recon_count + 1

  let reconstruct t =
    Metrics.incr m_reconstructions;
    Trace.with_span ~cat:"partition" "lazy_partition.reconstruct" (fun () -> reconstruct_impl t)

  (* Paper's relaxed trigger: rebuild once |P| >= (1+eps)(tau0 - m). *)
  let maybe_reconstruct t =
    let p = float_of_int (num_groups t) in
    let budget = (1.0 +. t.epsilon) *. float_of_int (t.tau0 - t.dels_since) in
    if p >= budget && t.n > 0 then reconstruct t

  let insert t e =
    if mem t e then invalid_arg "Lazy_partition.insert: element already present";
    let iv = E.interval e in
    (* Any group whose common intersection overlaps iv can absorb it. *)
    let candidate = ref None in
    (let s = Itree.Mutable.snapshot t.gindex in
     try
       Itree.query s iv (fun _ gid ->
           candidate := Some gid;
           raise Exit)
     with Exit -> ());
    (match !candidate with
    | Some gid ->
        let grp = Hashtbl.find t.groups gid in
        let isect' = I.inter grp.isect iv in
        assert (not (I.is_empty isect'));
        ignore (Itree.Mutable.remove t.gindex grp.isect (fun g -> g = gid));
        grp.isect <- isect';
        grp.members <- ESet.add e grp.members;
        Itree.Mutable.add t.gindex isect' gid;
        t.where <- EMap.add e grp t.where
    | None ->
        let gid = fresh_gid t in
        let grp = { gid; members = ESet.singleton e; isect = iv } in
        Hashtbl.replace t.groups gid grp;
        Itree.Mutable.add t.gindex iv gid;
        t.where <- EMap.add e grp t.where);
    t.n <- t.n + 1;
    maybe_reconstruct t

  let delete t e =
    match EMap.find_opt e t.where with
    | None -> false
    | Some grp ->
        grp.members <- ESet.remove e grp.members;
        t.where <- EMap.remove e t.where;
        if ESet.is_empty grp.members then begin
          Hashtbl.remove t.groups grp.gid;
          ignore (Itree.Mutable.remove t.gindex grp.isect (fun g -> g = grp.gid))
        end;
        t.n <- t.n - 1;
        t.dels_since <- t.dels_since + 1;
        maybe_reconstruct t;
        true

  let groups t =
    Hashtbl.fold (fun _ grp acc -> (I.hi grp.isect, ESet.elements grp.members) :: acc) t.groups []
    |> List.sort (fun (a, _) (b, _) -> Float.compare a b)

  let iter_group_sizes t f = Hashtbl.iter (fun gid grp -> f gid (ESet.cardinal grp.members)) t.groups

  let group_members t gid =
    match Hashtbl.find_opt t.groups gid with
    | Some grp -> ESet.elements grp.members
    | None -> raise Not_found

  let group_of t e =
    match EMap.find_opt e t.where with Some grp -> grp.gid | None -> raise Not_found

  let check_invariants t =
    let fail fmt = Cq_util.Error.corrupt ~structure:"lazy_partition" fmt in
    (* Each member stabbed by its group's intersection. *)
    Hashtbl.iter
      (fun gid grp ->
        if ESet.is_empty grp.members then fail "empty group %d retained" gid;
        if I.is_empty grp.isect then fail "group %d has empty intersection" gid;
        ESet.iter
          (fun e ->
            if not (I.contains (E.interval e) grp.isect) then
              fail "group %d: member does not contain the group intersection" gid)
          grp.members)
      t.groups;
    (* where-map consistency and element count. *)
    let counted = ref 0 in
    EMap.iter
      (fun e grp ->
        incr counted;
        match Hashtbl.find_opt t.groups grp.gid with
        | Some g when g == grp ->
            if not (ESet.mem e grp.members) then fail "where-map points to non-member group"
        | _ -> fail "where-map points to dead group")
      t.where;
    if !counted <> t.n then fail "size mismatch";
    let member_total = Hashtbl.fold (fun _ g acc -> acc + ESet.cardinal g.members) t.groups 0 in
    if member_total <> t.n then fail "group member totals disagree with size";
    (* Lemma 3 size bound against a freshly computed optimum. *)
    let tau = Stabbing.tau E.interval (Array.of_list (elements t)) in
    let p = num_groups t in
    if float_of_int p > ((1.0 +. t.epsilon) *. float_of_int tau) +. 1e-9 then
      fail "partition size %d exceeds (1+eps) * tau = (1+%g) * %d" p t.epsilon tau
end
