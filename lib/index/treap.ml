module I = Cq_interval.Interval

module type ELEMENT = sig
  type t

  val compare : t -> t -> int
  val interval : t -> I.t
end

(* The common intersection of zero intervals is the whole line — the
   neutral element of intersection — so that joins compose. *)
let full_line = I.make neg_infinity infinity

module Make (E : ELEMENT) = struct
  type t =
    | Empty
    | Node of {
        elt : E.t;
        prio : int64;
        left : t;
        right : t;
        isect : I.t;
        count : int;
      }

  let empty = Empty

  let is_empty = function Empty -> true | Node _ -> false

  let size = function Empty -> 0 | Node n -> n.count

  let isect = function Empty -> full_line | Node n -> n.isect

  let mk elt prio left right =
    Node
      {
        elt;
        prio;
        left;
        right;
        isect = I.inter (E.interval elt) (I.inter (isect left) (isect right));
        count = 1 + size left + size right;
      }

  (* Split by element order: (elements < e or (= e)) handled by caller
     through the strictness flag. *)
  let rec split_cmp keep_eq_left e = function
    | Empty -> (Empty, Empty)
    | Node n ->
        let c = E.compare n.elt e in
        if c < 0 || (c = 0 && keep_eq_left) then
          let l, r = split_cmp keep_eq_left e n.right in
          (mk n.elt n.prio n.left l, r)
        else
          let l, r = split_cmp keep_eq_left e n.left in
          (l, mk n.elt n.prio r n.right)

  let rec join l r =
    match (l, r) with
    | Empty, t | t, Empty -> t
    | Node a, Node b ->
        if a.prio >= b.prio then mk a.elt a.prio a.left (join a.right r)
        else mk b.elt b.prio (join l b.left) b.right

  let add rng elt t =
    let prio = Cq_util.Rng.int64 rng in
    let rec ins = function
      | Empty -> mk elt prio Empty Empty
      | Node n when prio > n.prio ->
          let l, r = split_cmp true elt (Node n) in
          mk elt prio l r
      | Node n ->
          if E.compare elt n.elt <= 0 then mk n.elt n.prio (ins n.left) n.right
          else mk n.elt n.prio n.left (ins n.right)
    in
    ins t

  let rec remove elt t =
    match t with
    | Empty -> None
    | Node n -> (
        let c = E.compare elt n.elt in
        if c = 0 then Some (join n.left n.right)
        else if c < 0 then
          match remove elt n.left with
          | Some l -> Some (mk n.elt n.prio l n.right)
          | None -> None
        else
          match remove elt n.right with
          | Some r -> Some (mk n.elt n.prio n.left r)
          | None -> None)

  let rec mem elt = function
    | Empty -> false
    | Node n ->
        let c = E.compare elt n.elt in
        if c = 0 then true else if c < 0 then mem elt n.left else mem elt n.right

  (* Split on the interval's left endpoint.  E.compare is primarily by
     left endpoint, so the element order refines the lo order and a
     structural descent on lo is well-defined. *)
  let rec split_lo_le x = function
    | Empty -> (Empty, Empty)
    | Node n ->
        if I.lo (E.interval n.elt) <= x then
          let l, r = split_lo_le x n.right in
          (mk n.elt n.prio n.left l, r)
        else
          let l, r = split_lo_le x n.left in
          (l, mk n.elt n.prio r n.right)

  let rec min_elt = function
    | Empty -> None
    | Node { left = Empty; elt; _ } -> Some elt
    | Node { left; _ } -> min_elt left

  let rec iter f = function
    | Empty -> ()
    | Node n ->
        iter f n.left;
        f n.elt;
        iter f n.right

  let fold f acc t =
    let acc = ref acc in
    iter (fun e -> acc := f !acc e) t;
    !acc

  let to_list t = List.rev (fold (fun acc e -> e :: acc) [] t)

  let of_list rng elts = List.fold_left (fun t e -> add rng e t) Empty elts

  let check_invariants t =
    let fail fmt = Cq_util.Error.corrupt ~structure:"treap" fmt in
    let rec go = function
      | Empty -> (full_line, 0)
      | Node n ->
          (match n.left with
          | Node l ->
              if l.prio > n.prio then fail "heap order violated (left)";
              if E.compare l.elt n.elt > 0 then fail "BST order violated (left)"
          | Empty -> ());
          (match n.right with
          | Node r ->
              if r.prio > n.prio then fail "heap order violated (right)";
              if E.compare r.elt n.elt < 0 then fail "BST order violated (right)"
          | Empty -> ());
          let il, cl = go n.left in
          let ir, cr = go n.right in
          let expect = I.inter (E.interval n.elt) (I.inter il ir) in
          if not (I.equal expect n.isect) then fail "stale intersection augmentation";
          if n.count <> 1 + cl + cr then fail "stale count";
          (n.isect, n.count)
    in
    ignore (go t)
end
