(** In-memory B+-tree with doubly-linked leaves.

    This is the ordered index the paper assumes on [S(B)] and on the
    composite key [S(B,C)]: it supports logarithmic point lookup, the
    "find the two adjacent entries surrounding a search key" operation
    at the heart of BJ-SSI and SJ-SSI (here {!seek_le} / {!seek_ge}),
    and bidirectional leaf scans from any position (here {!cursor}s).

    Duplicate keys are allowed; entries with equal keys are adjacent in
    leaf order.  All operations are O(log n) plus output size. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int

  val compare_at : t array -> int -> t -> int
  (** [compare_at a i k] must equal [compare a.(i) k].  The tree's
      descent searches read keys through this hook so a key module can
      supply a {e monomorphic} array read: for [t = float] the key
      arrays are flat float arrays and a polymorphic [a.(i)] boxes the
      element on every comparison — the dominant allocation of an
      insert-heavy workload.  Non-float keys just use the generic
      default [fun a i k -> compare a.(i) k]. *)
end

module Make (K : ORDERED) : sig
  type 'a t
  (** A B+-tree mapping keys [K.t] to values ['a]. *)

  val create : ?order:int -> unit -> 'a t
  (** [create ~order ()] makes an empty tree.  [order] is the minimum
      occupancy b (nodes hold between b and 2b entries); default 16.
      @raise Invalid_argument if [order < 2]. *)

  val length : 'a t -> int
  val is_empty : 'a t -> bool

  val insert : 'a t -> K.t -> 'a -> unit

  val remove_first : 'a t -> K.t -> ('a -> bool) -> bool
  (** [remove_first t k pred] deletes the first (leftmost) entry whose
      key equals [k] and whose value satisfies [pred]; returns whether
      an entry was deleted. *)

  val find_all : 'a t -> K.t -> 'a list
  (** All values bound to a key, in leaf order. *)

  val min_entry : 'a t -> (K.t * 'a) option
  val max_entry : 'a t -> (K.t * 'a) option

  (** {2 Cursors}

      A cursor designates an entry and can walk the leaf chain in both
      directions.  Cursors are invalidated by updates; the algorithms
      in this repository never mutate during a scan. *)

  type 'a cursor

  val key : 'a cursor -> K.t
  val value : 'a cursor -> 'a
  val next : 'a cursor -> 'a cursor option
  val prev : 'a cursor -> 'a cursor option

  val seek_ge : 'a t -> K.t -> 'a cursor option
  (** Leftmost entry with key >= the argument. *)

  val seek_le : 'a t -> K.t -> 'a cursor option
  (** Rightmost entry with key <= the argument. *)

  val neighbours : 'a t -> K.t -> (K.t * 'a) option * (K.t * 'a) option
  (** [neighbours t k] = (rightmost entry <= k, leftmost entry >= k) —
      the pair (s1, s2) of the paper's STEP 1.  When an entry equals
      [k] it appears on both sides. *)

  val walk_ge : 'a t -> K.t -> (K.t -> 'a -> bool) -> unit
  (** [walk_ge t k f] visits entries in ascending order starting at the
      leftmost entry with key >= [k], for as long as [f] returns
      [true].  Unlike a cursor chain this allocates nothing — the
      hot-path form of a bounded ascending scan. *)

  val walk_lt : 'a t -> K.t -> (K.t -> 'a -> bool) -> unit
  (** [walk_lt t k f] visits entries in descending order starting at
      the rightmost entry with key < [k] (strictly), for as long as
      [f] returns [true].  Allocation-free. *)

  val iter : 'a t -> (K.t -> 'a -> unit) -> unit
  (** In-order iteration over all entries. *)

  val iter_range : 'a t -> lo:K.t -> hi:K.t -> (K.t -> 'a -> unit) -> unit
  (** All entries with lo <= key <= hi, in order. *)

  val fold_range : 'a t -> lo:K.t -> hi:K.t -> ('acc -> K.t -> 'a -> 'acc) -> 'acc -> 'acc

  val count_range : 'a t -> lo:K.t -> hi:K.t -> int

  val to_list : 'a t -> (K.t * 'a) list

  val of_sorted : ?order:int -> (K.t * 'a) array -> 'a t
  (** Bulk-load from an array sorted by key (stable w.r.t. duplicates).
      @raise Invalid_argument if the array is not sorted. *)

  val check_invariants : 'a t -> unit
  (** Verify structural invariants (uniform depth, occupancy bounds,
      key order, separator consistency, leaf chaining); used by the
      test suite.  @raise Failure on violation. *)
end
