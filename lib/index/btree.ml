module type ORDERED = sig
  type t

  val compare : t -> t -> int
  val compare_at : t array -> int -> t -> int
end

(* Leaves hold slack arrays: fixed capacity 2*order+1 with an explicit
   count, updated by in-place blits.  A leaf allocates only when it is
   created (empty-root laziness aside) or split, so steady-state
   insert/remove churn costs zero heap words — this is the allocation
   dominator on the ingest hot path.  A removed slot keeps its old
   key/value reference until overwritten (bounded by one leaf's
   capacity per leaf; harmless for the numeric keys and tuple values
   stored here).

   Internal nodes keep exactly-sized arrays that are replaced on
   update: internal updates happen only on child split/merge, so the
   O(order) copies amortise away and the rebalancing code stays free
   of capacity bookkeeping. *)

let array_insert a i x =
  let n = Array.length a in
  Array.init (n + 1) (fun j -> if j < i then a.(j) else if j = i then x else a.(j - 1))

let array_remove a i =
  let n = Array.length a in
  Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

let array_concat a b = Array.append a b

module Make (K : ORDERED) = struct
  type 'a leaf = {
    mutable lkeys : K.t array; (* capacity 2*order+1 once allocated; [||] only in the empty root *)
    mutable lvals : 'a array;
    mutable lcount : int;
    mutable lnext : 'a leaf option;
    mutable lprev : 'a leaf option;
  }

  type 'a node =
    | Leaf of 'a leaf
    | Internal of 'a internal

  and 'a internal = {
    mutable seps : K.t array;
    (* |kids| = |seps| + 1.  All keys in [kids.(i)] lie in
       [seps.(i-1), seps.(i)] (closed on both sides; duplicates may
       touch a separator from either side). *)
    mutable kids : 'a node array;
  }

  type 'a t = {
    mutable root : 'a node;
    mutable size : int;
    order : int; (* minimum occupancy b; max is 2b *)
  }

  let leaf_capacity order = (2 * order) + 1

  let create ?(order = 16) () =
    if order < 2 then invalid_arg "Btree.create: order must be >= 2";
    {
      root = Leaf { lkeys = [||]; lvals = [||]; lcount = 0; lnext = None; lprev = None };
      size = 0;
      order;
    }

  let length t = t.size
  let is_empty t = t.size = 0

  (* A fresh full-capacity leaf, every slot filled with [key]/[v] (the
     filler is immediately overwritten where it matters). *)
  let alloc_leaf t ~key ~v ~count ~lnext ~lprev =
    let cap = leaf_capacity t.order in
    { lkeys = Array.make cap key; lvals = Array.make cap v; lcount = count; lnext; lprev }

  (* Number of separators <= key: the child index used for inserts
     (duplicates go right) and for seek_le descents. *)
  let child_right seps key =
    let n = Array.length seps in
    let lo = ref 0 and hi = ref n in
    (* invariant: seps.(i) <= key for i < lo; seps.(i) > key for i >= hi *)
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare_at seps mid key <= 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  (* First child index i such that seps.(i) >= key (else the last
     child): the descent for seek_ge. *)
  let child_left seps key =
    let n = Array.length seps in
    let lo = ref 0 and hi = ref n in
    (* invariant: seps.(i) < key for i < lo; seps.(i) >= key for i >= hi *)
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare_at seps mid key < 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  (* Position of the first key > [key] among the live prefix of a leaf
     (insert point keeping duplicates contiguous, new duplicate
     rightmost). *)
  let leaf_upper_bound keys count key =
    let lo = ref 0 and hi = ref count in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare_at keys mid key <= 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  (* Position of the first key >= [key] among the live prefix. *)
  let leaf_lower_bound keys count key =
    let lo = ref 0 and hi = ref count in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare_at keys mid key < 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  (* ------------------------------------------------------------------ *)
  (* Insertion                                                           *)
  (* ------------------------------------------------------------------ *)

  let leaf_insert_at l i key v =
    Array.blit l.lkeys i l.lkeys (i + 1) (l.lcount - i);
    Array.blit l.lvals i l.lvals (i + 1) (l.lcount - i);
    l.lkeys.(i) <- key;
    l.lvals.(i) <- v;
    l.lcount <- l.lcount + 1

  let leaf_remove_at l i =
    Array.blit l.lkeys (i + 1) l.lkeys i (l.lcount - i - 1);
    Array.blit l.lvals (i + 1) l.lvals i (l.lcount - i - 1);
    l.lcount <- l.lcount - 1

  (* Returns [Some (sep, right)] when the node split. *)
  let rec insert_node t node key v : (K.t * 'a node) option =
    match node with
    | Leaf l ->
        if Array.length l.lkeys = 0 then begin
          (* The lazily-allocated empty root. *)
          let cap = leaf_capacity t.order in
          l.lkeys <- Array.make cap key;
          l.lvals <- Array.make cap v;
          l.lcount <- 1;
          None
        end
        else begin
          let i = leaf_upper_bound l.lkeys l.lcount key in
          leaf_insert_at l i key v;
          if l.lcount <= 2 * t.order then None
          else begin
            let n = l.lcount in
            let mid = n / 2 in
            let right =
              alloc_leaf t ~key:l.lkeys.(mid) ~v:l.lvals.(mid) ~count:(n - mid)
                ~lnext:l.lnext ~lprev:(Some l)
            in
            Array.blit l.lkeys mid right.lkeys 0 (n - mid);
            Array.blit l.lvals mid right.lvals 0 (n - mid);
            (match l.lnext with Some nx -> nx.lprev <- Some right | None -> ());
            l.lcount <- mid;
            l.lnext <- Some right;
            Some (right.lkeys.(0), Leaf right)
          end
        end
    | Internal nd -> (
        let ci = child_right nd.seps key in
        match insert_node t nd.kids.(ci) key v with
        | None -> None
        | Some (sep, right) ->
            nd.seps <- array_insert nd.seps ci sep;
            nd.kids <- array_insert nd.kids (ci + 1) right;
            let n = Array.length nd.seps in
            if n <= 2 * t.order then None
            else begin
              let mid = n / 2 in
              let up = nd.seps.(mid) in
              let rseps = Array.sub nd.seps (mid + 1) (n - mid - 1) in
              let rkids = Array.sub nd.kids (mid + 1) (n - mid) in
              nd.seps <- Array.sub nd.seps 0 mid;
              nd.kids <- Array.sub nd.kids 0 (mid + 1);
              Some (up, Internal { seps = rseps; kids = rkids })
            end)

  let insert t key v =
    (match insert_node t t.root key v with
    | None -> ()
    | Some (sep, right) -> t.root <- Internal { seps = [| sep |]; kids = [| t.root; right |] });
    t.size <- t.size + 1

  (* ------------------------------------------------------------------ *)
  (* Deletion                                                            *)
  (* ------------------------------------------------------------------ *)

  let node_underflows t = function
    | Leaf l -> l.lcount < t.order
    | Internal nd -> Array.length nd.seps < t.order

  (* Rebalance the underfull child [ci] of internal node [nd] by
     borrowing from a sibling or merging with one. *)
  let rebalance t nd ci =
    let borrowable = function
      | Leaf l -> l.lcount > t.order
      | Internal n -> Array.length n.seps > t.order
    in
    let nkids = Array.length nd.kids in
    let try_left = ci > 0 && borrowable nd.kids.(ci - 1) in
    let try_right = ci < nkids - 1 && borrowable nd.kids.(ci + 1) in
    match (nd.kids.(ci), try_left, try_right) with
    | Leaf l, true, _ ->
        (* Move last entry of the left sibling to the front of l. *)
        let left = (match nd.kids.(ci - 1) with Leaf x -> x | Internal _ -> assert false) in
        let ln = left.lcount in
        let k = left.lkeys.(ln - 1) and v = left.lvals.(ln - 1) in
        left.lcount <- ln - 1;
        leaf_insert_at l 0 k v;
        nd.seps.(ci - 1) <- k
    | Leaf l, false, true ->
        (* Move first entry of the right sibling to the end of l. *)
        let right = (match nd.kids.(ci + 1) with Leaf x -> x | Internal _ -> assert false) in
        let k = right.lkeys.(0) and v = right.lvals.(0) in
        leaf_remove_at right 0;
        leaf_insert_at l l.lcount k v;
        nd.seps.(ci) <- right.lkeys.(0)
    | Leaf l, false, false ->
        (* Merge with a sibling (prefer the left one); the combined
           count is < order + order, within capacity. *)
        if ci > 0 then begin
          let left = (match nd.kids.(ci - 1) with Leaf x -> x | Internal _ -> assert false) in
          Array.blit l.lkeys 0 left.lkeys left.lcount l.lcount;
          Array.blit l.lvals 0 left.lvals left.lcount l.lcount;
          left.lcount <- left.lcount + l.lcount;
          left.lnext <- l.lnext;
          (match l.lnext with Some nx -> nx.lprev <- Some left | None -> ());
          nd.seps <- array_remove nd.seps (ci - 1);
          nd.kids <- array_remove nd.kids ci
        end
        else begin
          let right = (match nd.kids.(ci + 1) with Leaf x -> x | Internal _ -> assert false) in
          Array.blit right.lkeys 0 l.lkeys l.lcount right.lcount;
          Array.blit right.lvals 0 l.lvals l.lcount right.lcount;
          l.lcount <- l.lcount + right.lcount;
          l.lnext <- right.lnext;
          (match right.lnext with Some nx -> nx.lprev <- Some l | None -> ());
          nd.seps <- array_remove nd.seps ci;
          nd.kids <- array_remove nd.kids (ci + 1)
        end
    | Internal c, true, _ ->
        (* Rotate through the parent separator from the left sibling. *)
        let left = (match nd.kids.(ci - 1) with Internal x -> x | Leaf _ -> assert false) in
        let ln = Array.length left.seps in
        let up = left.seps.(ln - 1) in
        let moved = left.kids.(ln) in
        left.seps <- Array.sub left.seps 0 (ln - 1);
        left.kids <- Array.sub left.kids 0 ln;
        c.seps <- array_insert c.seps 0 nd.seps.(ci - 1);
        c.kids <- array_insert c.kids 0 moved;
        nd.seps.(ci - 1) <- up
    | Internal c, false, true ->
        let right = (match nd.kids.(ci + 1) with Internal x -> x | Leaf _ -> assert false) in
        let up = right.seps.(0) in
        let moved = right.kids.(0) in
        right.seps <- array_remove right.seps 0;
        right.kids <- array_remove right.kids 0;
        c.seps <- array_concat c.seps [| nd.seps.(ci) |];
        c.kids <- array_concat c.kids [| moved |];
        nd.seps.(ci) <- up
    | Internal c, false, false ->
        if ci > 0 then begin
          let left = (match nd.kids.(ci - 1) with Internal x -> x | Leaf _ -> assert false) in
          left.seps <- array_concat left.seps (array_concat [| nd.seps.(ci - 1) |] c.seps);
          left.kids <- array_concat left.kids c.kids;
          nd.seps <- array_remove nd.seps (ci - 1);
          nd.kids <- array_remove nd.kids ci
        end
        else begin
          let right = (match nd.kids.(ci + 1) with Internal x -> x | Leaf _ -> assert false) in
          c.seps <- array_concat c.seps (array_concat [| nd.seps.(ci) |] right.seps);
          c.kids <- array_concat c.kids right.kids;
          nd.seps <- array_remove nd.seps ci;
          nd.kids <- array_remove nd.kids (ci + 1)
        end

  (* Delete the leftmost entry with key = [key] satisfying [pred].
     Equal keys may straddle separators, so every child whose key range
     can contain [key] is tried left-to-right. *)
  let rec remove_node t node key pred =
    match node with
    | Leaf l ->
        let n = l.lcount in
        let rec scan i =
          if i >= n || K.compare l.lkeys.(i) key > 0 then false
          else if K.compare l.lkeys.(i) key = 0 && pred l.lvals.(i) then begin
            leaf_remove_at l i;
            true
          end
          else scan (i + 1)
        in
        scan (leaf_lower_bound l.lkeys l.lcount key)
    | Internal nd ->
        let first = child_left nd.seps key in
        let last = child_right nd.seps key in
        let rec try_child ci =
          if ci > last then false
          else if remove_node t nd.kids.(ci) key pred then begin
            if node_underflows t nd.kids.(ci) then rebalance t nd ci;
            true
          end
          else try_child (ci + 1)
        in
        try_child first

  let collapse_root t =
    match t.root with
    | Internal nd when Array.length nd.seps = 0 -> t.root <- nd.kids.(0)
    | _ -> ()

  let remove_first t key pred =
    if remove_node t t.root key pred then begin
      collapse_root t;
      t.size <- t.size - 1;
      true
    end
    else false

  (* ------------------------------------------------------------------ *)
  (* Cursors and searches                                                *)
  (* ------------------------------------------------------------------ *)

  type 'a cursor = { cleaf : 'a leaf; cidx : int }

  let key c = c.cleaf.lkeys.(c.cidx)
  let value c = c.cleaf.lvals.(c.cidx)

  let rec first_of_leaf leaf =
    if leaf.lcount > 0 then Some { cleaf = leaf; cidx = 0 }
    else match leaf.lnext with Some nx -> first_of_leaf nx | None -> None

  let rec last_of_leaf leaf =
    let n = leaf.lcount in
    if n > 0 then Some { cleaf = leaf; cidx = n - 1 }
    else match leaf.lprev with Some pv -> last_of_leaf pv | None -> None

  let next c =
    if c.cidx + 1 < c.cleaf.lcount then Some { c with cidx = c.cidx + 1 }
    else match c.cleaf.lnext with Some nx -> first_of_leaf nx | None -> None

  let prev c =
    if c.cidx > 0 then Some { c with cidx = c.cidx - 1 }
    else match c.cleaf.lprev with Some pv -> last_of_leaf pv | None -> None

  let rec descend_ge node key =
    match node with
    | Leaf l -> l
    | Internal nd -> descend_ge nd.kids.(child_left nd.seps key) key

  let rec descend_le node key =
    match node with
    | Leaf l -> l
    | Internal nd -> descend_le nd.kids.(child_right nd.seps key) key

  let seek_ge t k =
    let l = descend_ge t.root k in
    let i = leaf_lower_bound l.lkeys l.lcount k in
    if i < l.lcount then Some { cleaf = l; cidx = i }
    else match l.lnext with Some nx -> first_of_leaf nx | None -> None

  let seek_le t k =
    let l = descend_le t.root k in
    (* Last index with key <= k is upper_bound - 1. *)
    let i = leaf_upper_bound l.lkeys l.lcount k - 1 in
    if i >= 0 then Some { cleaf = l; cidx = i }
    else match l.lprev with Some pv -> last_of_leaf pv | None -> None

  let neighbours t k =
    let pack = Option.map (fun c -> (key c, value c)) in
    (pack (seek_le t k), pack (seek_ge t k))

  (* Allocation-free bounded walks: the hot-path replacement for
     cursor chains (each cursor hop allocates an option + record;
     these walk the leaf chain with tail calls and ints only). *)

  let walk_ge t k0 f =
    let rec walk l i =
      if i < l.lcount then begin
        if f l.lkeys.(i) l.lvals.(i) then walk l (i + 1)
      end
      else match l.lnext with Some nx -> walk nx 0 | None -> ()
    in
    let l = descend_ge t.root k0 in
    walk l (leaf_lower_bound l.lkeys l.lcount k0)

  let walk_lt t k0 f =
    let rec walk l i =
      if i >= 0 then begin
        if f l.lkeys.(i) l.lvals.(i) then walk l (i - 1)
      end
      else match l.lprev with Some pv -> walk pv (pv.lcount - 1) | None -> ()
    in
    let l = descend_ge t.root k0 in
    walk l (leaf_lower_bound l.lkeys l.lcount k0 - 1)

  let rec leftmost_leaf = function
    | Leaf l -> l
    | Internal nd -> leftmost_leaf nd.kids.(0)

  let rec rightmost_leaf = function
    | Leaf l -> l
    | Internal nd -> rightmost_leaf nd.kids.(Array.length nd.kids - 1)

  let min_entry t =
    match first_of_leaf (leftmost_leaf t.root) with
    | Some c -> Some (key c, value c)
    | None -> None

  let max_entry t =
    match last_of_leaf (rightmost_leaf t.root) with
    | Some c -> Some (key c, value c)
    | None -> None

  let iter t f =
    let rec walk leaf =
      for i = 0 to leaf.lcount - 1 do
        f leaf.lkeys.(i) leaf.lvals.(i)
      done;
      match leaf.lnext with Some nx -> walk nx | None -> ()
    in
    walk (leftmost_leaf t.root)

  let iter_range t ~lo ~hi f =
    walk_ge t lo (fun k v ->
        if K.compare k hi <= 0 then begin
          f k v;
          true
        end
        else false)

  let fold_range t ~lo ~hi f acc =
    let acc = ref acc in
    iter_range t ~lo ~hi (fun k v -> acc := f !acc k v);
    !acc

  let count_range t ~lo ~hi = fold_range t ~lo ~hi (fun n _ _ -> n + 1) 0

  let find_all t k =
    List.rev (fold_range t ~lo:k ~hi:k (fun acc _ v -> v :: acc) [])

  let to_list t =
    let acc = ref [] in
    iter t (fun k v -> acc := (k, v) :: !acc);
    List.rev !acc

  (* ------------------------------------------------------------------ *)
  (* Bulk loading                                                        *)
  (* ------------------------------------------------------------------ *)

  let of_sorted ?(order = 16) entries =
    if order < 2 then invalid_arg "Btree.of_sorted: order must be >= 2";
    let n = Array.length entries in
    for i = 1 to n - 1 do
      if K.compare (fst entries.(i - 1)) (fst entries.(i)) > 0 then
        invalid_arg "Btree.of_sorted: input not sorted"
    done;
    let t = create ~order () in
    (* Choose a number of chunks so that even division yields sizes in
       [order, 2*order] (single chunk allowed below [order]: the root
       leaf is exempt).  Target 3/2*order leaves headroom for inserts
       and deletes alike. *)
    let clamp x lo hi = max lo (min hi x) in
    let pick_groups m ~target ~min_size ~max_size =
      let lo = (m + max_size - 1) / max_size in
      let hi = max 1 (m / min_size) in
      if hi < lo then 1 else clamp ((m + target - 1) / target) lo hi
    in
    if n = 0 then t
    else begin
      let nchunks =
        pick_groups n ~target:(3 * order / 2) ~min_size:order ~max_size:(2 * order)
      in
      let leaves =
        Array.init nchunks (fun c ->
            let start = c * n / nchunks in
            let stop = (c + 1) * n / nchunks in
            let k0, v0 = entries.(start) in
            let l = alloc_leaf t ~key:k0 ~v:v0 ~count:(stop - start) ~lnext:None ~lprev:None in
            for i = start to stop - 1 do
              l.lkeys.(i - start) <- fst entries.(i);
              l.lvals.(i - start) <- snd entries.(i)
            done;
            l)
      in
      Array.iteri
        (fun i l ->
          if i > 0 then l.lprev <- Some leaves.(i - 1);
          if i < nchunks - 1 then l.lnext <- Some leaves.(i + 1))
        leaves;
      (* Build internal levels bottom-up.  [mins.(i)] is the smallest
         key under node [i]; group boundaries use it as separator. *)
      let rec build (nodes : 'a node array) (mins : K.t array) =
        let m = Array.length nodes in
        if m = 1 then nodes.(0)
        else begin
          (* Group sizes (children per parent) in [order+1, 2*order+1],
             i.e. separator counts within occupancy bounds; a single
             group is fine — it becomes the root. *)
          let ngroups =
            pick_groups m ~target:((3 * order / 2) + 1) ~min_size:(order + 1)
              ~max_size:((2 * order) + 1)
          in
          let parents =
            Array.init ngroups (fun g ->
                let start = g * m / ngroups in
                let stop = (g + 1) * m / ngroups in
                let kids = Array.sub nodes start (stop - start) in
                let seps = Array.init (stop - start - 1) (fun i -> mins.(start + i + 1)) in
                Internal { seps; kids })
          in
          let pmins = Array.init ngroups (fun g -> mins.(g * m / ngroups)) in
          build parents pmins
        end
      in
      let lnodes = Array.map (fun l -> Leaf l) leaves in
      let lmins = Array.map (fun l -> l.lkeys.(0)) leaves in
      t.root <- build lnodes lmins;
      t.size <- n;
      t
    end

  (* ------------------------------------------------------------------ *)
  (* Invariant checking (test support)                                   *)
  (* ------------------------------------------------------------------ *)

  let check_invariants t =
    let fail fmt = Cq_util.Error.corrupt ~structure:"btree" fmt in
    let b = t.order in
    (* Returns (depth, min_key, max_key, entry_count); bounds are None
       for empty subtrees (only the empty root). *)
    let rec check ~is_root node =
      match node with
      | Leaf l ->
          let n = l.lcount in
          if Array.length l.lvals <> Array.length l.lkeys then
            fail "leaf keys/vals capacity mismatch";
          if n > Array.length l.lkeys then fail "leaf count exceeds capacity";
          if Array.length l.lkeys > 0 && Array.length l.lkeys <> leaf_capacity b then
            fail "leaf capacity %d not %d" (Array.length l.lkeys) (leaf_capacity b);
          if (not is_root) && n < b then fail "leaf underflow: %d < %d" n b;
          if n > 2 * b then fail "leaf overflow: %d > %d" n (2 * b);
          for i = 1 to n - 1 do
            if K.compare l.lkeys.(i - 1) l.lkeys.(i) > 0 then fail "leaf keys out of order"
          done;
          let bounds = if n = 0 then None else Some (l.lkeys.(0), l.lkeys.(n - 1)) in
          (1, bounds, n)
      | Internal nd ->
          let ns = Array.length nd.seps in
          if Array.length nd.kids <> ns + 1 then fail "internal kids/seps mismatch";
          if (not is_root) && ns < b then fail "internal underflow";
          if ns > 2 * b then fail "internal overflow";
          if is_root && ns < 1 then fail "internal root with < 1 separator";
          for i = 1 to ns - 1 do
            if K.compare nd.seps.(i - 1) nd.seps.(i) > 0 then fail "separators out of order"
          done;
          let depth = ref 0 and total = ref 0 in
          let lo_bound = ref None and hi_bound = ref None in
          Array.iteri
            (fun i kid ->
              let d, bounds, cnt = check ~is_root:false kid in
              if !depth = 0 then depth := d
              else if d <> !depth then fail "non-uniform depth";
              total := !total + cnt;
              (match bounds with
              | None -> fail "empty non-root child"
              | Some (mn, mx) ->
                  if i = 0 then lo_bound := Some mn;
                  if i = Array.length nd.kids - 1 then hi_bound := Some mx;
                  if i > 0 && K.compare nd.seps.(i - 1) mn > 0 then
                    fail "separator above child's min key";
                  if i < ns && K.compare mx nd.seps.(i) > 0 then
                    fail "child's max key above separator"))
            nd.kids;
          let bounds =
            match (!lo_bound, !hi_bound) with Some a, Some b -> Some (a, b) | _ -> None
          in
          (!depth + 1, bounds, !total)
    in
    let _, _, total = check ~is_root:true t.root in
    if total <> t.size then fail "size mismatch: counted %d, recorded %d" total t.size;
    (* Leaf chain must visit every entry in order. *)
    let chain_count = ref 0 in
    let last = ref None in
    let rec walk leaf =
      for i = 0 to leaf.lcount - 1 do
        let k = leaf.lkeys.(i) in
        (match !last with
        | Some pk when K.compare pk k > 0 -> fail "leaf chain out of order"
        | _ -> ());
        last := Some k;
        incr chain_count
      done;
      match leaf.lnext with
      | Some nx ->
          (match nx.lprev with
          | Some back when back == leaf -> ()
          | _ -> fail "broken lprev link");
          walk nx
      | None -> ()
    in
    walk (leftmost_leaf t.root);
    if !chain_count <> t.size then fail "leaf chain count mismatch"
end
