module I = Cq_interval.Interval

type 'a t =
  | Empty
  | Node of {
      iv : I.t;
      payload : 'a;
      left : 'a t;
      right : 'a t;
      height : int;
      maxhi : float; (* max right endpoint over the whole subtree *)
      count : int;
    }

let empty = Empty

let is_empty = function Empty -> true | Node _ -> false

let size = function Empty -> 0 | Node n -> n.count

let height = function Empty -> 0 | Node n -> n.height

let maxhi = function Empty -> neg_infinity | Node n -> n.maxhi

(* Order by (lo, hi); equal keys go right so duplicates coexist. *)
let cmp_iv a b =
  let c = Float.compare (I.lo a) (I.lo b) in
  if c <> 0 then c else Float.compare (I.hi a) (I.hi b)

let mk iv payload left right =
  Node
    {
      iv;
      payload;
      left;
      right;
      height = 1 + max (height left) (height right);
      maxhi = Float.max (I.hi iv) (Float.max (maxhi left) (maxhi right));
      count = 1 + size left + size right;
    }

let balance_factor = function Empty -> 0 | Node n -> height n.left - height n.right

let rotate_right = function
  | Node { iv; payload; left = Node l; right; _ } ->
      mk l.iv l.payload l.left (mk iv payload l.right right)
  | _ -> assert false

let rotate_left = function
  | Node { iv; payload; left; right = Node r; _ } ->
      mk r.iv r.payload (mk iv payload left r.left) r.right
  | _ -> assert false

let rebalance t =
  match t with
  | Empty -> t
  | Node n ->
      let bf = balance_factor t in
      if bf > 1 then
        let left = if balance_factor n.left < 0 then rotate_left n.left else n.left in
        rotate_right (mk n.iv n.payload left n.right)
      else if bf < -1 then
        let right = if balance_factor n.right > 0 then rotate_right n.right else n.right in
        rotate_left (mk n.iv n.payload n.left right)
      else t

let rec add iv payload = function
  | Empty -> mk iv payload Empty Empty
  | Node n ->
      if cmp_iv iv n.iv < 0 then rebalance (mk n.iv n.payload (add iv payload n.left) n.right)
      else rebalance (mk n.iv n.payload n.left (add iv payload n.right))

let rec min_node = function
  | Empty -> invalid_arg "Interval_tree.min_node: empty"
  | Node { left = Empty; iv; payload; _ } -> (iv, payload)
  | Node { left; _ } -> min_node left

let rec remove_min = function
  | Empty -> invalid_arg "Interval_tree.remove_min: empty"
  | Node { left = Empty; right; _ } -> right
  | Node n -> rebalance (mk n.iv n.payload (remove_min n.left) n.right)

(* Remove one entry with exactly key [iv] whose payload satisfies
   [pred].  Equal keys live on the right spine below the first match,
   so both subtrees of an equal node may need searching. *)
let rec remove iv pred t =
  match t with
  | Empty -> None
  | Node n -> (
      let c = cmp_iv iv n.iv in
      if c < 0 then
        match remove iv pred n.left with
        | Some l -> Some (rebalance (mk n.iv n.payload l n.right))
        | None -> None
      else if c > 0 then
        match remove iv pred n.right with
        | Some r -> Some (rebalance (mk n.iv n.payload n.left r))
        | None -> None
      else if pred n.payload then
        match (n.left, n.right) with
        | Empty, r -> Some r
        | l, Empty -> Some l
        | l, r ->
            let siv, spay = min_node r in
            Some (rebalance (mk siv spay l (remove_min r)))
      else
        (* Same key, wrong payload: equal keys were inserted to the
           right, but rotations can move them to either side. *)
        match remove iv pred n.right with
        | Some r -> Some (rebalance (mk n.iv n.payload n.left r))
        | None -> (
            match remove iv pred n.left with
            | Some l -> Some (rebalance (mk n.iv n.payload l n.right))
            | None -> None))

let rec stab t x f =
  match t with
  | Empty -> ()
  | Node n ->
      (* Prune: nothing below contains x if every right endpoint is to
         its left. *)
      if n.maxhi >= x then begin
        stab n.left x f;
        if I.stabs n.iv x then f n.iv n.payload;
        (* Keys in the right subtree have lo >= this lo; if this lo is
           already past x, so are theirs. *)
        if I.lo n.iv <= x then stab n.right x f
      end

let stab_list t x =
  let acc = ref [] in
  stab t x (fun iv p -> acc := (iv, p) :: !acc);
  List.rev !acc

let stab_count t x =
  let n = ref 0 in
  stab t x (fun _ _ -> incr n);
  !n

let rec query t q f =
  match t with
  | Empty -> ()
  | Node n ->
      if (not (I.is_empty q)) && n.maxhi >= I.lo q then begin
        query n.left q f;
        if I.overlaps n.iv q then f n.iv n.payload;
        if I.lo n.iv <= I.hi q then query n.right q f
      end

let rec iter f = function
  | Empty -> ()
  | Node n ->
      iter f n.left;
      f n.iv n.payload;
      iter f n.right

let to_list t =
  let acc = ref [] in
  iter (fun iv p -> acc := (iv, p) :: !acc) t;
  List.rev !acc

let check_invariants t =
  let fail fmt = Cq_util.Error.corrupt ~structure:"interval_tree" fmt in
  let rec go = function
    | Empty -> (0, neg_infinity, 0)
    | Node n ->
        let hl, ml, cl = go n.left in
        let hr, mr, cr = go n.right in
        if abs (hl - hr) > 1 then fail "AVL imbalance";
        if n.height <> 1 + max hl hr then fail "stale height";
        let expect = Float.max (I.hi n.iv) (Float.max ml mr) in
        if n.maxhi <> expect then fail "stale maxhi";
        if n.count <> 1 + cl + cr then fail "stale count";
        (match n.left with
        | Node l when cmp_iv l.iv n.iv > 0 -> fail "left key above node"
        | _ -> ());
        (match n.right with
        | Node r when cmp_iv r.iv n.iv < 0 -> fail "right key below node"
        | _ -> ());
        (n.height, n.maxhi, n.count)
  in
  ignore (go t)

module Mutable = struct
  type 'a p = 'a t
  type nonrec 'a t = { mutable tree : 'a p }

  let create () = { tree = Empty }
  let size m = size m.tree
  let add m iv payload = m.tree <- add iv payload m.tree

  let remove m iv pred =
    match remove iv pred m.tree with
    | Some tree ->
        m.tree <- tree;
        true
    | None -> false

  let stab m x f = stab m.tree x f
  let stab_count m x = stab_count m.tree x
  let snapshot m = m.tree
end
