module Vec = Cq_util.Vec

type 'a entry = { erect : Rect.t; payload : 'a }

type 'a node =
  | RLeaf of 'a leaf_node
  | RInternal of 'a internal_node

and 'a leaf_node = {
  mutable entries : 'a entry Vec.t;
  mutable lmbr : Rect.t;
}

and 'a internal_node = {
  mutable children : 'a node Vec.t;
  mutable imbr : Rect.t;
}

type 'a t = {
  mutable root : 'a node;
  mutable count : int;
  max_entries : int;
  min_entries : int;
}

let node_mbr = function RLeaf l -> l.lmbr | RInternal n -> n.imbr

let create ?(max_entries = 8) () =
  if max_entries < 4 then invalid_arg "Rtree.create: max_entries must be >= 4";
  {
    root = RLeaf { entries = Vec.create (); lmbr = Rect.empty };
    count = 0;
    max_entries;
    min_entries = max 2 (max_entries / 2);
  }

let size t = t.count

let recompute_leaf_mbr l =
  l.lmbr <- Vec.fold (fun acc e -> Rect.union acc e.erect) Rect.empty l.entries

let recompute_internal_mbr n =
  n.imbr <- Vec.fold (fun acc c -> Rect.union acc (node_mbr c)) Rect.empty n.children

(* --------------------------------------------------------------------- *)
(* Quadratic split (Guttman 1984)                                          *)
(* --------------------------------------------------------------------- *)

(* Splits [items] (with their rectangles given by [rect_of]) into two
   groups, each of size >= [min_fill]. *)
let quadratic_split rect_of items min_fill =
  let n = Array.length items in
  assert (n >= 2);
  (* Pick seeds: the pair wasting the most area if grouped together. *)
  let seed_a = ref 0 and seed_b = ref 1 and worst = ref neg_infinity in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let ri = rect_of items.(i) and rj = rect_of items.(j) in
      let waste = Rect.area (Rect.union ri rj) -. Rect.area ri -. Rect.area rj in
      if waste > !worst then begin
        worst := waste;
        seed_a := i;
        seed_b := j
      end
    done
  done;
  let ga = Vec.create () and gb = Vec.create () in
  let mbra = ref (rect_of items.(!seed_a)) and mbrb = ref (rect_of items.(!seed_b)) in
  Vec.push ga items.(!seed_a);
  Vec.push gb items.(!seed_b);
  let remaining = Vec.create () in
  Array.iteri (fun i it -> if i <> !seed_a && i <> !seed_b then Vec.push remaining it) items;
  while not (Vec.is_empty remaining) do
    let left = Vec.length remaining in
    (* Force-assign when a group must take every remaining item to
       reach minimum occupancy. *)
    if Vec.length ga + left = min_fill then
      while not (Vec.is_empty remaining) do
        let it = Vec.pop remaining in
        mbra := Rect.union !mbra (rect_of it);
        Vec.push ga it
      done
    else if Vec.length gb + left = min_fill then
      while not (Vec.is_empty remaining) do
        let it = Vec.pop remaining in
        mbrb := Rect.union !mbrb (rect_of it);
        Vec.push gb it
      done
    else begin
      (* PickNext: the item with the strongest preference. *)
      let best = ref 0 and best_diff = ref neg_infinity in
      for i = 0 to left - 1 do
        let r = rect_of (Vec.get remaining i) in
        let da = Rect.enlargement !mbra r and db = Rect.enlargement !mbrb r in
        let diff = Float.abs (da -. db) in
        if diff > !best_diff then begin
          best_diff := diff;
          best := i
        end
      done;
      let it = Vec.swap_remove remaining !best in
      let r = rect_of it in
      let da = Rect.enlargement !mbra r and db = Rect.enlargement !mbrb r in
      let to_a =
        if da < db then true
        else if db < da then false
        else if Rect.area !mbra < Rect.area !mbrb then true
        else if Rect.area !mbrb < Rect.area !mbra then false
        else Vec.length ga <= Vec.length gb
      in
      if to_a then begin
        mbra := Rect.union !mbra r;
        Vec.push ga it
      end
      else begin
        mbrb := Rect.union !mbrb r;
        Vec.push gb it
      end
    end
  done;
  ((ga, !mbra), (gb, !mbrb))

(* --------------------------------------------------------------------- *)
(* Insertion                                                               *)
(* --------------------------------------------------------------------- *)

let choose_child children r =
  let best = ref 0 and best_enl = ref infinity and best_area = ref infinity in
  Vec.iteri
    (fun i c ->
      let m = node_mbr c in
      let enl = Rect.enlargement m r in
      let a = Rect.area m in
      if enl < !best_enl || (enl = !best_enl && a < !best_area) then begin
        best := i;
        best_enl := enl;
        best_area := a
      end)
    children;
  !best

(* Returns a new sibling when the node split. *)
let rec insert_rec t node r payload : 'a node option =
  match node with
  | RLeaf l ->
      Vec.push l.entries { erect = r; payload };
      l.lmbr <- Rect.union l.lmbr r;
      if Vec.length l.entries <= t.max_entries then None
      else begin
        let (ga, mbra), (gb, mbrb) =
          quadratic_split (fun e -> e.erect) (Vec.to_array l.entries) t.min_entries
        in
        l.entries <- ga;
        l.lmbr <- mbra;
        Some (RLeaf { entries = gb; lmbr = mbrb })
      end
  | RInternal n -> (
      let ci = choose_child n.children r in
      let sibling = insert_rec t (Vec.get n.children ci) r payload in
      n.imbr <- Rect.union n.imbr r;
      match sibling with
      | None -> None
      | Some s ->
          Vec.push n.children s;
          if Vec.length n.children <= t.max_entries then None
          else begin
            let (ga, mbra), (gb, mbrb) =
              quadratic_split node_mbr (Vec.to_array n.children) t.min_entries
            in
            n.children <- ga;
            n.imbr <- mbra;
            Some (RInternal { children = gb; imbr = mbrb })
          end)

let insert t r payload =
  if Rect.is_empty r then invalid_arg "Rtree.insert: empty rectangle";
  (match insert_rec t t.root r payload with
  | None -> ()
  | Some sibling ->
      let children = Vec.create () in
      Vec.push children t.root;
      Vec.push children sibling;
      t.root <- RInternal { children; imbr = Rect.union (node_mbr t.root) (node_mbr sibling) });
  t.count <- t.count + 1

(* --------------------------------------------------------------------- *)
(* Deletion (with CondenseTree re-insertion)                               *)
(* --------------------------------------------------------------------- *)

let rec collect_entries node acc =
  match node with
  | RLeaf l -> Vec.iter (fun e -> Vec.push acc e) l.entries
  | RInternal n -> Vec.iter (fun c -> collect_entries c acc) n.children

(* Returns [true] if the entry was removed beneath [node].  Underfull
   non-root nodes are dissolved: their surviving entries are appended
   to [orphans] and the caller drops the child. *)
let rec remove_rec t node r pred orphans : bool =
  match node with
  | RLeaf l ->
      let found = ref false in
      let i = ref 0 in
      while (not !found) && !i < Vec.length l.entries do
        let e = Vec.get l.entries !i in
        if Rect.equal e.erect r && pred e.payload then begin
          ignore (Vec.swap_remove l.entries !i);
          found := true
        end
        else incr i
      done;
      if !found then recompute_leaf_mbr l;
      !found
  | RInternal n ->
      let found = ref false in
      let ci = ref 0 in
      while (not !found) && !ci < Vec.length n.children do
        let c = Vec.get n.children !ci in
        if Rect.contains (node_mbr c) r then
          if remove_rec t c r pred orphans then begin
            found := true;
            let under =
              match c with
              | RLeaf l -> Vec.length l.entries < t.min_entries
              | RInternal m -> Vec.length m.children < t.min_entries
            in
            if under then begin
              collect_entries c orphans;
              ignore (Vec.swap_remove n.children !ci)
            end
          end
          else incr ci
        else incr ci
      done;
      if !found then recompute_internal_mbr n;
      !found

let remove t r pred =
  if Rect.is_empty r then false
  else begin
    let orphans = Vec.create () in
    let found = remove_rec t t.root r pred orphans in
    if found then begin
      t.count <- t.count - 1;
      (* Collapse a root with a single child. *)
      let rec collapse () =
        match t.root with
        | RInternal n when Vec.length n.children = 1 ->
            t.root <- Vec.get n.children 0;
            collapse ()
        | RInternal n when Vec.length n.children = 0 ->
            t.root <- RLeaf { entries = Vec.create (); lmbr = Rect.empty }
        | _ -> ()
      in
      collapse ();
      (* Re-insert entries of dissolved nodes. *)
      Vec.iter
        (fun e ->
          t.count <- t.count - 1;
          insert t e.erect e.payload)
        orphans
    end;
    found
  end

(* --------------------------------------------------------------------- *)
(* Queries                                                                 *)
(* --------------------------------------------------------------------- *)

let rec stab_rec node ~x ~y f =
  match node with
  | RLeaf l ->
      Vec.iter (fun e -> if Rect.contains_point e.erect ~x ~y then f e.erect e.payload) l.entries
  | RInternal n ->
      Vec.iter (fun c -> if Rect.contains_point (node_mbr c) ~x ~y then stab_rec c ~x ~y f) n.children

let stab t ~x ~y f = stab_rec t.root ~x ~y f

let stab_count t ~x ~y =
  let n = ref 0 in
  stab t ~x ~y (fun _ _ -> incr n);
  !n

let rec search_rec node w f =
  match node with
  | RLeaf l -> Vec.iter (fun e -> if Rect.intersects e.erect w then f e.erect e.payload) l.entries
  | RInternal n ->
      Vec.iter (fun c -> if Rect.intersects (node_mbr c) w then search_rec c w f) n.children

let search t w f = if not (Rect.is_empty w) then search_rec t.root w f

let rec iter_rec node f =
  match node with
  | RLeaf l -> Vec.iter (fun e -> f e.erect e.payload) l.entries
  | RInternal n -> Vec.iter (fun c -> iter_rec c f) n.children

let iter t f = iter_rec t.root f

(* --------------------------------------------------------------------- *)
(* Invariants (test support)                                               *)
(* --------------------------------------------------------------------- *)

let check_invariants t =
  let fail fmt = Cq_util.Error.corrupt ~structure:"rtree" fmt in
  let rec go ~is_root node =
    match node with
    | RLeaf l ->
        let n = Vec.length l.entries in
        if (not is_root) && n < t.min_entries then fail "leaf underflow";
        if n > t.max_entries then fail "leaf overflow";
        let mbr = Vec.fold (fun acc e -> Rect.union acc e.erect) Rect.empty l.entries in
        if not (Rect.equal mbr l.lmbr) then fail "stale leaf mbr";
        (1, n)
    | RInternal nd ->
        let n = Vec.length nd.children in
        if (not is_root) && n < t.min_entries then fail "internal underflow";
        if is_root && n < 2 then fail "internal root with < 2 children";
        if n > t.max_entries then fail "internal overflow";
        let mbr = Vec.fold (fun acc c -> Rect.union acc (node_mbr c)) Rect.empty nd.children in
        if not (Rect.equal mbr nd.imbr) then fail "stale internal mbr";
        let depth = ref 0 and total = ref 0 in
        Vec.iter
          (fun c ->
            let d, cnt = go ~is_root:false c in
            if !depth = 0 then depth := d
            else if d <> !depth then fail "non-uniform depth";
            total := !total + cnt)
          nd.children;
        (!depth + 1, !total)
  in
  let _, total = go ~is_root:true t.root in
  if total <> t.count then fail "size mismatch: counted %d, recorded %d" total t.count
