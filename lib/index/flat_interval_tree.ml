module I = Cq_interval.Interval

(* Implementation notes.

   Same structure as {!Interval_tree} — an AVL tree on the key
   (lo, hi) with a max-right-endpoint augmentation — but laid out as a
   struct-of-arrays arena: node [i]'s fields live at index [i] of the
   [lo]/[hi]/[maxhi] float columns and the [left]/[right]/[height] int
   columns.  Float columns are monomorphic float arrays, so endpoints
   are stored flat (unboxed); child links are immediate ints.  The only
   boxed word per entry is the payload's [Some] cell, allocated once at
   [add].  A [stab] therefore touches no pointers except the payload it
   reports and allocates nothing, where the boxed tree chases one heap
   node per visited entry.

   Freed slots are threaded into a free list through the [left] column
   ([free] holds the head); a released slot drops its payload reference
   immediately so the arena never pins dead user data.  The arena only
   grows (by doubling) — sizing is bounded by the high-water mark of
   live entries, which for the scattered-query population the engine
   stores here is exactly the paper's "few queries are scattered"
   regime.

   Ordering and traversal are kept bit-for-bit compatible with
   {!Interval_tree}: duplicates of an equal (lo, hi) key are inserted
   to the right, [remove] on an equal key with a non-matching payload
   searches the right subtree before the left, and [stab] emits
   matches in in-order sequence under the same maxhi pruning — so
   swapping one implementation for the other never reorders results. *)

let nil = -1

type 'a t = {
  mutable lo : float array;
  mutable hi : float array;
  mutable maxhi : float array; (* max right endpoint over the subtree *)
  mutable left : int array; (* child index, [nil] if none; doubles as the free-list next link *)
  mutable right : int array;
  mutable height : int array;
  mutable payload : 'a option array; (* [None] marks a free slot *)
  mutable root : int;
  mutable size : int;
  mutable free : int; (* free-list head threaded through [left] *)
  mutable limit : int; (* next never-used slot; slots >= limit are virgin *)
}

let create () =
  {
    lo = [||];
    hi = [||];
    maxhi = [||];
    left = [||];
    right = [||];
    height = [||];
    payload = [||];
    root = nil;
    size = 0;
    free = nil;
    limit = 0;
  }

let size t = t.size

let is_empty t = t.size = 0

let corrupt fmt = Cq_util.Error.corrupt ~structure:"flat_interval_tree" fmt

let payload_exn t i =
  match t.payload.(i) with Some p -> p | None -> corrupt "live node %d has no payload" i

(* ------------------------------------------------------------------ *)
(* Arena                                                                *)
(* ------------------------------------------------------------------ *)

let grow t =
  let cap = Array.length t.lo in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let widen a fill =
    let b = Array.make ncap fill in
    Array.blit a 0 b 0 cap;
    b
  in
  t.lo <- widen t.lo 0.0;
  t.hi <- widen t.hi 0.0;
  t.maxhi <- widen t.maxhi 0.0;
  t.left <- widen t.left nil;
  t.right <- widen t.right nil;
  t.height <- widen t.height 0;
  t.payload <- widen t.payload None

let alloc t ~key_lo ~key_hi p =
  let i =
    if t.free <> nil then begin
      let i = t.free in
      t.free <- t.left.(i);
      i
    end
    else begin
      if t.limit = Array.length t.lo then grow t;
      let i = t.limit in
      t.limit <- t.limit + 1;
      i
    end
  in
  t.lo.(i) <- key_lo;
  t.hi.(i) <- key_hi;
  t.maxhi.(i) <- key_hi;
  t.left.(i) <- nil;
  t.right.(i) <- nil;
  t.height.(i) <- 1;
  t.payload.(i) <- Some p;
  i

let release t i =
  t.payload.(i) <- None;
  t.left.(i) <- t.free;
  t.free <- i

(* ------------------------------------------------------------------ *)
(* AVL plumbing                                                         *)
(* ------------------------------------------------------------------ *)

let h t i = if i = nil then 0 else t.height.(i)

let mh t i = if i = nil then neg_infinity else t.maxhi.(i)

let update t i =
  t.height.(i) <- 1 + max (h t t.left.(i)) (h t t.right.(i));
  t.maxhi.(i) <- Float.max t.hi.(i) (Float.max (mh t t.left.(i)) (mh t t.right.(i)))

let balance_factor t i = h t t.left.(i) - h t t.right.(i)

let rotate_right t i =
  let l = t.left.(i) in
  t.left.(i) <- t.right.(l);
  t.right.(l) <- i;
  update t i;
  update t l;
  l

let rotate_left t i =
  let r = t.right.(i) in
  t.right.(i) <- t.left.(r);
  t.left.(r) <- i;
  update t i;
  update t r;
  r

let rebalance t i =
  let b = balance_factor t i in
  if b > 1 then begin
    if balance_factor t t.left.(i) < 0 then t.left.(i) <- rotate_left t t.left.(i);
    rotate_right t i
  end
  else if b < -1 then begin
    if balance_factor t t.right.(i) > 0 then t.right.(i) <- rotate_right t t.right.(i);
    rotate_left t i
  end
  else i

(* Order by (lo, hi), matching {!Interval_tree.cmp_iv}: compare the
   key [(key_lo, key_hi)] against node [j]. *)
let cmp_key t key_lo key_hi j =
  let c = Float.compare key_lo t.lo.(j) in
  if c <> 0 then c else Float.compare key_hi t.hi.(j)

(* ------------------------------------------------------------------ *)
(* Insertion                                                            *)
(* ------------------------------------------------------------------ *)

(* Equal keys go right so duplicates coexist (same as the boxed tree). *)
let rec insert_at t i nd =
  if i = nil then nd
  else begin
    if cmp_key t t.lo.(nd) t.hi.(nd) i < 0 then t.left.(i) <- insert_at t t.left.(i) nd
    else t.right.(i) <- insert_at t t.right.(i) nd;
    update t i;
    rebalance t i
  end

let add t iv p =
  let nd = alloc t ~key_lo:(I.lo iv) ~key_hi:(I.hi iv) p in
  t.root <- insert_at t t.root nd;
  t.size <- t.size + 1

(* ------------------------------------------------------------------ *)
(* Removal                                                              *)
(* ------------------------------------------------------------------ *)

(* Detach the minimum node of subtree [i]; returns (new subtree root,
   detached slot).  The detached slot keeps its key and payload. *)
let rec detach_min t i =
  if t.left.(i) = nil then (t.right.(i), i)
  else begin
    let l, m = detach_min t t.left.(i) in
    t.left.(i) <- l;
    update t i;
    (rebalance t i, m)
  end

let not_found = -2

(* Remove one entry with exactly key (key_lo, key_hi) whose payload
   satisfies [pred]; returns the new subtree root or [not_found].  The
   tree is only mutated on the success path. *)
let rec del t i key_lo key_hi pred =
  if i = nil then not_found
  else
    let c = cmp_key t key_lo key_hi i in
    if c < 0 then
      let l = del t t.left.(i) key_lo key_hi pred in
      if l = not_found then not_found
      else begin
        t.left.(i) <- l;
        update t i;
        rebalance t i
      end
    else if c > 0 then
      let r = del t t.right.(i) key_lo key_hi pred in
      if r = not_found then not_found
      else begin
        t.right.(i) <- r;
        update t i;
        rebalance t i
      end
    else if pred (payload_exn t i) then
      if t.left.(i) = nil then begin
        let r = t.right.(i) in
        release t i;
        r
      end
      else if t.right.(i) = nil then begin
        let l = t.left.(i) in
        release t i;
        l
      end
      else begin
        (* Two children: the in-order successor takes over this slot's
           position, exactly as the boxed tree promotes [min_node] of
           the right subtree. *)
        let r, s = detach_min t t.right.(i) in
        t.left.(s) <- t.left.(i);
        t.right.(s) <- r;
        release t i;
        update t s;
        rebalance t s
      end
    else
      (* Same key, wrong payload: equal keys were inserted to the
         right, but rotations can move them to either side — search
         right first, then left (mirrors {!Interval_tree.remove}). *)
      let r = del t t.right.(i) key_lo key_hi pred in
      if r <> not_found then begin
        t.right.(i) <- r;
        update t i;
        rebalance t i
      end
      else
        let l = del t t.left.(i) key_lo key_hi pred in
        if l = not_found then not_found
        else begin
          t.left.(i) <- l;
          update t i;
          rebalance t i
        end

let remove t iv pred =
  let r = del t t.root (I.lo iv) (I.hi iv) pred in
  if r = not_found then false
  else begin
    t.root <- r;
    t.size <- t.size - 1;
    true
  end

(* ------------------------------------------------------------------ *)
(* Stabbing                                                             *)
(* ------------------------------------------------------------------ *)

let[@cq.hot] rec stab_at t i x f =
  (* Prune: nothing below contains x if every right endpoint is to its
     left.  Emission order matches {!Interval_tree.stab} exactly. *)
  if i <> nil && t.maxhi.(i) >= x then begin
    stab_at t t.left.(i) x f;
    if t.lo.(i) <= x then begin
      if x <= t.hi.(i) then f (payload_exn t i);
      (* Keys in the right subtree have lo >= this lo; if this lo is
         already past x, so are theirs. *)
      stab_at t t.right.(i) x f
    end
  end

let[@cq.hot] stab t x f = stab_at t t.root x f

let stab_count t x =
  let n = ref 0 in
  stab t x (fun _ -> incr n);
  !n

let[@cq.hot] stab_batch t ~keys ~f =
  let n = Array.length keys in
  if n = 1 then stab t keys.(0) (fun p -> f ~idx:0 p)
  else if n > 1 then begin
    (* One descent answers every key: sort the key indices (the keys
       array itself is the caller's and is left untouched), then walk
       the tree once, narrowing the live key window [jlo, jhi) at each
       node.  Per key the visited entries and their order are exactly
       those of a scalar [stab] — the window conditions below are the
       per-node conditions of [stab_at] applied to a sorted run. *)
    let perm = Array.make n 0 in
    for j = 0 to n - 1 do
      perm.(j) <- j
    done;
    Array.sort (fun a b -> Float.compare keys.(a) keys.(b)) perm;
    let key j = keys.(perm.(j)) in
    (* First index in [a, b) whose key is > v. *)
    let upper v a b =
      let a = ref a and b = ref b in
      while !a < !b do
        let m = (!a + !b) / 2 in
        if key m <= v then a := m + 1 else b := m
      done;
      !a
    in
    (* First index in [a, b) whose key is >= v. *)
    let lower v a b =
      let a = ref a and b = ref b in
      while !a < !b do
        let m = (!a + !b) / 2 in
        if key m < v then a := m + 1 else b := m
      done;
      !a
    in
    let rec go i jlo jhi =
      if i <> nil && jlo < jhi then begin
        (* maxhi prune: keys above every right endpoint match nothing
           in this subtree. *)
        let jhi = upper t.maxhi.(i) jlo jhi in
        if jlo < jhi then begin
          go t.left.(i) jlo jhi;
          let a = lower t.lo.(i) jlo jhi in
          let b = upper t.hi.(i) a jhi in
          if a < b then begin
            let p = payload_exn t i in
            for j = a to b - 1 do
              f ~idx:perm.(j) p
            done
          end;
          (* Right subtree holds keys with lo >= this lo: only stab
             points >= this lo can match there. *)
          go t.right.(i) a jhi
        end
      end
    in
    go t.root 0 n
  end

(* ------------------------------------------------------------------ *)
(* Iteration                                                            *)
(* ------------------------------------------------------------------ *)

let rec iter_at t i f =
  if i <> nil then begin
    iter_at t t.left.(i) f;
    f (payload_exn t i);
    iter_at t t.right.(i) f
  end

let iter t f = iter_at t t.root f

let to_list t =
  let acc = ref [] in
  let rec go i =
    if i <> nil then begin
      go t.right.(i);
      acc := (t.lo.(i), t.hi.(i), payload_exn t i) :: !acc;
      go t.left.(i)
    end
  in
  go t.root;
  !acc

(* ------------------------------------------------------------------ *)
(* Invariants                                                           *)
(* ------------------------------------------------------------------ *)

let check_invariants t =
  let rec go i =
    if i = nil then (0, neg_infinity, 0)
    else begin
      (match t.payload.(i) with None -> corrupt "reachable node %d has no payload" i | Some _ -> ());
      let hl, ml, cl = go t.left.(i) in
      let hr, mr, cr = go t.right.(i) in
      if abs (hl - hr) > 1 then corrupt "AVL imbalance";
      if t.height.(i) <> 1 + max hl hr then corrupt "stale height";
      let expect = Float.max t.hi.(i) (Float.max ml mr) in
      if t.maxhi.(i) <> expect then corrupt "stale maxhi";
      (if t.left.(i) <> nil then
         let l = t.left.(i) in
         if cmp_key t t.lo.(l) t.hi.(l) i > 0 then corrupt "left key above node");
      (if t.right.(i) <> nil then
         let r = t.right.(i) in
         if cmp_key t t.lo.(r) t.hi.(r) i < 0 then corrupt "right key below node");
      (t.height.(i), t.maxhi.(i), 1 + cl + cr)
    end
  in
  let _, _, live = go t.root in
  if live <> t.size then corrupt "size mismatch: %d reachable nodes, %d recorded" live t.size;
  (* Free slots and reachable nodes must partition the used arena
     prefix exactly: no leaks, no double frees, no payload pinning. *)
  let freec = ref 0 in
  let fi = ref t.free in
  while !fi <> nil do
    if !freec > t.limit then corrupt "free list cycles";
    (match t.payload.(!fi) with
    | Some _ -> corrupt "free slot %d pins a payload" !fi
    | None -> ());
    incr freec;
    fi := t.left.(!fi)
  done;
  if live + !freec <> t.limit then
    corrupt "arena leak: %d reachable + %d free <> %d allocated" live !freec t.limit
