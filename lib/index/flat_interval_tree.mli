(** Flat (struct-of-arrays) augmented interval tree.

    Semantically identical to {!Interval_tree.Mutable} — an AVL tree
    keyed on (lo, hi) with a max-right-endpoint augmentation answering
    1-D stabbing queries — but stored as an int-indexed arena: node
    fields live in parallel [float array] / [int array] columns, so a
    node occupies no heap object of its own and endpoint floats stay
    unboxed.  [stab] allocates nothing and chases no pointers beyond
    the payloads it reports, which makes this the hot-path form of the
    stabbing index ({!Stab_backend}'s [Itree] kind is backed by it).

    Ordering, duplicate placement and stab emission order are
    bit-for-bit those of {!Interval_tree}: duplicates of an equal key
    coexist (inserted right), and [stab] visits matches in in-order
    key sequence.  Swapping the two implementations never reorders
    results. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> Cq_interval.Interval.t -> 'a -> unit
(** O(log n) amortised; duplicates (even identical interval + payload)
    are kept.  The only per-entry allocation is the payload box. *)

val remove : 'a t -> Cq_interval.Interval.t -> ('a -> bool) -> bool
(** [remove t iv pred] deletes one entry with exactly interval [iv]
    whose payload satisfies [pred]; returns whether one was found.
    The freed slot is recycled by later [add]s and releases its
    payload reference immediately. *)

val stab : 'a t -> float -> ('a -> unit) -> unit
(** Visit the payload of every stored interval containing [x], in
    ascending (lo, hi) order.  Allocation-free. *)

val stab_count : 'a t -> float -> int

val stab_batch : 'a t -> keys:float array -> f:(idx:int -> 'a -> unit) -> unit
(** [stab_batch t ~keys ~f] answers every stabbing query in [keys]
    with a single tree descent: [f ~idx p] is called for each pair of
    a key index [idx] and a stored payload [p] whose interval contains
    [keys.(idx)].  For any fixed [idx] the payloads arrive in exactly
    the order [stab t keys.(idx)] would produce them; calls for
    different keys may interleave.  [keys] need not be sorted and is
    not modified.  Cost is one sort of the key indices plus a single
    maxhi-pruned traversal — o(k log n + output) shared work instead
    of k independent descents. *)

val iter : 'a t -> ('a -> unit) -> unit
(** Visit every stored payload once, in ascending (lo, hi) order. *)

val to_list : 'a t -> (float * float * 'a) list
(** All entries as (lo, hi, payload), in ascending (lo, hi) order —
    the differential-testing view. *)

val check_invariants : 'a t -> unit
(** AVL shape, augmentation freshness, key order, size accounting and
    arena integrity (free list and reachable nodes partition the used
    prefix).  @raise Failure on violation. *)
