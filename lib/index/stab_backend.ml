module I = Cq_interval.Interval

module type S = sig
  type 'a t

  val name : string
  val create : seed:int -> 'a t
  val size : 'a t -> int
  val add : 'a t -> I.t -> 'a -> unit
  val remove : 'a t -> I.t -> ('a -> bool) -> bool
  val stab : 'a t -> float -> ('a -> unit) -> unit
  val iter : 'a t -> ('a -> unit) -> unit
  val check_invariants : 'a t -> unit
end

module Interval_tree : S = struct
  module M = Interval_tree.Mutable

  type 'a t = 'a M.t

  let name = "interval_tree"
  let create ~seed:_ = M.create ()
  let size = M.size
  let add = M.add
  let remove = M.remove
  let stab t x f = M.stab t x (fun _ p -> f p)
  let iter t f = Interval_tree.iter (fun _ p -> f p) (M.snapshot t)
  let check_invariants t = Interval_tree.check_invariants (M.snapshot t)
end

module Interval_skiplist : S = struct
  module M = Interval_skiplist

  type 'a t = 'a M.t

  let name = "interval_skiplist"
  let create ~seed = M.create ~seed ()
  let size = M.size
  let add = M.add
  let remove = M.remove
  let stab t x f = M.stab t x (fun _ p -> f p)
  let iter t f = M.iter t (fun _ p -> f p)
  let check_invariants = M.check_invariants
end

module Treap : S = struct
  module M = Priority_search_tree.Mutable

  type 'a t = 'a M.t

  let name = "priority_search_tree"
  let create ~seed = M.create ~seed ()
  let size = M.size
  let add = M.add
  let remove = M.remove
  let stab t x f = M.stab t x (fun _ p -> f p)
  let iter t f = Priority_search_tree.iter (fun _ p -> f p) (M.snapshot t)
  let check_invariants t = Priority_search_tree.check_invariants (M.snapshot t)
end

type kind = Itree | Skiplist | Treap_pst

let all = [ Itree; Skiplist; Treap_pst ]

let to_string = function Itree -> "itree" | Skiplist -> "skiplist" | Treap_pst -> "treap"

let of_string = function
  | "itree" | "interval_tree" -> Ok Itree
  | "skiplist" | "interval_skiplist" -> Ok Skiplist
  | "treap" | "pst" | "priority_search_tree" -> Ok Treap_pst
  | s -> Error (Printf.sprintf "unknown stabbing backend %S (itree|skiplist|treap)" s)

let backend : kind -> (module S) = function
  | Itree -> (module Interval_tree)
  | Skiplist -> (module Interval_skiplist)
  | Treap_pst -> (module Treap)
