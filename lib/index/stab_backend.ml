module I = Cq_interval.Interval

module type S = sig
  type 'a t

  val name : string
  val create : seed:int -> 'a t
  val size : 'a t -> int
  val add : 'a t -> I.t -> 'a -> unit
  val remove : 'a t -> I.t -> ('a -> bool) -> bool
  val stab : 'a t -> float -> ('a -> unit) -> unit
  val stab_batch : 'a t -> keys:float array -> f:(idx:int -> 'a -> unit) -> unit
  val iter : 'a t -> ('a -> unit) -> unit
  val check_invariants : 'a t -> unit
end

(* Backends without a native batched descent answer a batch as a loop
   of scalar stabs — semantically the reference implementation. *)
let loop_stab_batch stab t ~keys ~f =
  Array.iteri (fun i x -> stab t x (fun p -> f ~idx:i p)) keys

module Interval_tree : S = struct
  module M = Flat_interval_tree

  type 'a t = 'a M.t

  let name = "interval_tree"
  let create ~seed:_ = M.create ()
  let size = M.size
  let add = M.add
  let remove = M.remove
  let stab = M.stab
  let stab_batch = M.stab_batch
  let iter = M.iter
  let check_invariants = M.check_invariants
end

module Interval_skiplist : S = struct
  module M = Interval_skiplist

  type 'a t = 'a M.t

  let name = "interval_skiplist"
  let create ~seed = M.create ~seed ()
  let size = M.size
  let add = M.add
  let remove = M.remove
  let stab t x f = M.stab t x (fun _ p -> f p)
  let stab_batch t ~keys ~f = loop_stab_batch stab t ~keys ~f
  let iter t f = M.iter t (fun _ p -> f p)
  let check_invariants = M.check_invariants
end

module Treap : S = struct
  module M = Priority_search_tree.Mutable

  type 'a t = 'a M.t

  let name = "priority_search_tree"
  let create ~seed = M.create ~seed ()
  let size = M.size
  let add = M.add
  let remove = M.remove
  let stab t x f = M.stab t x (fun _ p -> f p)
  let stab_batch t ~keys ~f = loop_stab_batch stab t ~keys ~f
  let iter t f = Priority_search_tree.iter (fun _ p -> f p) (M.snapshot t)
  let check_invariants t = Priority_search_tree.check_invariants (M.snapshot t)
end

(* Decorator: same backend, with per-operation monotonic timings fed
   into the metrics registry under the backend's own name.  The wrapped
   calls pay one enabled-check when metrics are off; the stab path is a
   tree walk, so the branch disappears in the noise. *)
module Instrumented (B : S) : S = struct
  module M = Cq_obs.Metrics

  type 'a t = 'a B.t

  let name = B.name
  let stab_ns = M.histogram (Printf.sprintf "stab.%s.stab_ns" B.name)
  let stab_batch_ns = M.histogram (Printf.sprintf "stab.%s.stab_batch_ns" B.name)
  let add_ns = M.histogram (Printf.sprintf "stab.%s.add_ns" B.name)
  let remove_ns = M.histogram (Printf.sprintf "stab.%s.remove_ns" B.name)
  let stab_hits = M.histogram (Printf.sprintf "stab.%s.stab_hits" B.name)

  let create ~seed = B.create ~seed
  let size = B.size

  let timed h f =
    if M.enabled () then begin
      let r, dt = Cq_util.Clock.time_ns f in
      M.observe h (Int64.to_float dt);
      r
    end
    else f ()

  let add t iv p = timed add_ns (fun () -> B.add t iv p)
  let remove t iv eq = timed remove_ns (fun () -> B.remove t iv eq)

  let stab t x f =
    if M.enabled () then begin
      let hits = ref 0 in
      let (), dt =
        Cq_util.Clock.time_ns (fun () ->
            B.stab t x (fun p ->
                Stdlib.incr hits;
                f p))
      in
      M.observe stab_ns (Int64.to_float dt);
      M.observe stab_hits (float_of_int !hits)
    end
    else B.stab t x f

  let stab_batch t ~keys ~f =
    if M.enabled () then begin
      let hits = ref 0 in
      let (), dt =
        Cq_util.Clock.time_ns (fun () ->
            B.stab_batch t ~keys ~f:(fun ~idx p ->
                Stdlib.incr hits;
                f ~idx p))
      in
      M.observe stab_batch_ns (Int64.to_float dt);
      M.observe stab_hits (float_of_int !hits)
    end
    else B.stab_batch t ~keys ~f

  let iter = B.iter
  let check_invariants = B.check_invariants
end

type kind = Itree | Skiplist | Treap_pst

let all = [ Itree; Skiplist; Treap_pst ]

let to_string = function Itree -> "itree" | Skiplist -> "skiplist" | Treap_pst -> "treap"

let of_string = function
  | "itree" | "interval_tree" -> Ok Itree
  | "skiplist" | "interval_skiplist" -> Ok Skiplist
  | "treap" | "pst" | "priority_search_tree" -> Ok Treap_pst
  | s -> Error (Printf.sprintf "unknown stabbing backend %S (itree|skiplist|treap)" s)

let backend : kind -> (module S) = function
  | Itree -> (module Interval_tree)
  | Skiplist -> (module Interval_skiplist)
  | Treap_pst -> (module Treap)

module Instrumented_interval_tree = Instrumented (Interval_tree)
module Instrumented_interval_skiplist = Instrumented (Interval_skiplist)
module Instrumented_treap = Instrumented (Treap)

let instrumented : kind -> (module S) = function
  | Itree -> (module Instrumented_interval_tree)
  | Skiplist -> (module Instrumented_interval_skiplist)
  | Treap_pst -> (module Instrumented_treap)
