module I = Cq_interval.Interval

(* Implementation notes.

   Nodes sit at the distinct interval endpoints.  An interval "marks"
   a set of edges whose spans tile [lo, hi] exactly, each edge as high
   as the classic two-phase placement walk can push it.  Every node on
   an interval's path also records it in [eq] (the eqMarkers of the
   original paper), which answers stabbing queries that hit a node key
   exactly and locates entries for deletion.

   Structural changes (a node appearing or disappearing) invalidate
   only the placements of intervals marking the edges adjacent to the
   changed node: those intervals are unplaced first and re-placed
   afterwards — expected O(log n) intervals, O(log n) each.

   Entries are int-indexed: an entry is a slot id into struct-of-array
   columns on [t] ([e_iv], [e_payload], [e_edges], [e_eq]) rather than
   a boxed per-entry record, and the marker/eq tables key those ids
   with unit values.  A stabbing query therefore walks int-keyed
   tables and reads two arena columns per hit instead of chasing a
   per-entry heap record; freed ids are recycled through a free list,
   and releasing an id drops its interval and payload references
   immediately.  The placement record ([e_edges]/[e_eq]) stays a list
   — it is touched only on structural repair, never on the stab
   path. *)

(* A node is endpoint structure only — entries live in the arena on
   [t], so nodes carry no payload type. *)
type node = {
  key : float;
  mutable owners : int; (* endpoint references; 0 => node removable *)
  forward : node option array;
  markers : (int, unit) Hashtbl.t array; (* entry ids, per outgoing level *)
  eq : (int, unit) Hashtbl.t;
}

let max_level = 32

type 'a t = {
  header : node;
  rng : Cq_util.Rng.t;
  mutable size : int;
  (* Entry arena, indexed by id. *)
  mutable e_iv : I.t option array;
  mutable e_payload : 'a option array;
  mutable e_edges : (node * int) list array; (* exact marker placements *)
  mutable e_eq : node list array; (* nodes whose eq set holds the id *)
  mutable e_free : int list;
  mutable e_limit : int; (* next never-used id *)
}

let make_node key level =
  {
    key;
    owners = 0;
    forward = Array.make level None;
    markers = Array.init level (fun _ -> Hashtbl.create 4);
    eq = Hashtbl.create 4;
  }

let create ?(seed = 0x151) () =
  {
    header = make_node neg_infinity max_level;
    rng = Cq_util.Rng.create seed;
    size = 0;
    e_iv = [||];
    e_payload = [||];
    e_edges = [||];
    e_eq = [||];
    e_free = [];
    e_limit = 0;
  }

let size t = t.size

let corrupt fmt = Cq_util.Error.corrupt ~structure:"interval_skiplist" fmt

(* ------------------------------------------------------------------ *)
(* Entry arena                                                          *)
(* ------------------------------------------------------------------ *)

let entry_iv t id =
  match t.e_iv.(id) with Some iv -> iv | None -> corrupt "dangling entry id %d" id

let entry_payload t id =
  match t.e_payload.(id) with Some p -> p | None -> corrupt "entry id %d has no payload" id

let grow_entries t =
  let cap = Array.length t.e_iv in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let widen a fill =
    let b = Array.make ncap fill in
    Array.blit a 0 b 0 cap;
    b
  in
  t.e_iv <- widen t.e_iv None;
  t.e_payload <- widen t.e_payload None;
  t.e_edges <- widen t.e_edges [];
  t.e_eq <- widen t.e_eq []

let alloc_entry t iv payload =
  let id =
    match t.e_free with
    | id :: rest ->
        t.e_free <- rest;
        id
    | [] ->
        if t.e_limit = Array.length t.e_iv then grow_entries t;
        let id = t.e_limit in
        t.e_limit <- t.e_limit + 1;
        id
  in
  t.e_iv.(id) <- Some iv;
  t.e_payload.(id) <- Some payload;
  t.e_edges.(id) <- [];
  t.e_eq.(id) <- [];
  id

let release_entry t id =
  t.e_iv.(id) <- None;
  t.e_payload.(id) <- None;
  t.e_edges.(id) <- [];
  t.e_eq.(id) <- [];
  t.e_free <- id :: t.e_free

let node_level n = Array.length n.forward

let random_level t =
  let l = ref 1 in
  while !l < max_level && Cq_util.Rng.bool t.rng do
    incr l
  done;
  !l

(* Predecessors of [key] at every level of the header. *)
let update_path t key =
  let update = Array.make max_level t.header in
  let x = ref t.header in
  for i = max_level - 1 downto 0 do
    let continue = ref true in
    while !continue do
      match !x.forward.(i) with
      | Some n when n.key < key -> x := n
      | _ -> continue := false
    done;
    update.(i) <- !x
  done;
  update

let find_node t key =
  let update = update_path t key in
  match update.(0).forward.(0) with Some n when n.key = key -> Some n | _ -> None

(* Does the edge from [x] to its level-[i] successor lie entirely
   inside the entry's interval? *)
let covers t id x i =
  match x.forward.(i) with
  | Some s ->
      let iv = entry_iv t id in
      I.lo iv <= x.key && s.key <= I.hi iv
  | None -> false

let add_marker x i id = Hashtbl.replace x.markers.(i) id ()

let remove_marker x i id = Hashtbl.remove x.markers.(i) id

let add_eq x id = Hashtbl.replace x.eq id ()

let remove_eq x id = Hashtbl.remove x.eq id

let mark_edge t id x i =
  add_marker x i id;
  t.e_edges.(id) <- (x, i) :: t.e_edges.(id)

let mark_eq t id x =
  if not (Hashtbl.mem x.eq id) then begin
    add_eq x id;
    t.e_eq.(id) <- x :: t.e_eq.(id)
  end

(* The two-phase placement walk of Hanson & Johnson: mark each covered
   edge as high as the structure allows, recording every placement on
   the entry's arena slot. *)
let place_markers t id =
  let iv = entry_iv t id in
  let left =
    match find_node t (I.lo iv) with
    | Some n -> n
    | None -> corrupt "missing left endpoint node"
  in
  mark_eq t id left;
  let x = ref left in
  let i = ref 0 in
  (* Ascending phase: push each marked edge as high as possible. *)
  let ascending = ref true in
  while !ascending do
    if covers t id !x !i then begin
      while !i + 1 < node_level !x && covers t id !x (!i + 1) do
        incr i
      done;
      mark_edge t id !x !i;
      x := Option.get !x.forward.(!i);
      mark_eq t id !x
    end
    else ascending := false
  done;
  (* Descending phase: finish the tiling down to the right endpoint. *)
  while !x.key < I.hi iv do
    while !i > 0 && not (covers t id !x !i) do
      decr i
    done;
    mark_edge t id !x !i;
    x := Option.get !x.forward.(!i);
    mark_eq t id !x
  done

(* Removal replays the recorded placements — exact whatever structural
   drift has happened since. *)
let unplace_markers t id =
  List.iter (fun (x, i) -> remove_marker x i id) t.e_edges.(id);
  List.iter (fun x -> remove_eq x id) t.e_eq.(id);
  t.e_edges.(id) <- [];
  t.e_eq.(id) <- []

(* ----------------------------------------------------------------------- *)
(* Node insertion / removal with local marker repair                        *)
(* ----------------------------------------------------------------------- *)

let collect tbl_list =
  let seen = Hashtbl.create 16 in
  List.iter (fun tbl -> Hashtbl.iter (fun id () -> Hashtbl.replace seen id ()) tbl) tbl_list;
  Hashtbl.fold (fun id () acc -> id :: acc) seen []

(* Insert a node for [key] (assumed absent) and return it.  Markers on
   a split edge are copied onto both halves — the edge spans shrink, so
   coverage and disjoint tiling are preserved.  (The placement is no
   longer height-maximal; that only costs performance, never
   correctness, and avoids the quadratic re-placement blowup on
   workloads full of near-identical intervals.) *)
let insert_node t key =
  let update = update_path t key in
  let level = random_level t in
  let x = make_node key level in
  for l = 0 to level - 1 do
    x.forward.(l) <- update.(l).forward.(l);
    update.(l).forward.(l) <- Some x;
    Hashtbl.iter
      (fun id () ->
        mark_edge t id x l;
        mark_eq t id x)
      update.(l).markers.(l)
  done;
  x

(* Remove the node for [key] (owners = 0), repairing adjacent markers. *)
let remove_node t key =
  let update = update_path t key in
  match update.(0).forward.(0) with
  | Some x when x.key = key ->
      let level = node_level x in
      let incoming =
        List.filter_map
          (fun l -> if update.(l).forward.(l) == Some x then Some update.(l).markers.(l) else None)
          (List.init level Fun.id)
      in
      let affected = collect ((x.eq :: incoming) @ Array.to_list x.markers) in
      List.iter (unplace_markers t) affected;
      for l = 0 to level - 1 do
        if update.(l).forward.(l) == Some x then update.(l).forward.(l) <- x.forward.(l)
      done;
      List.iter (place_markers t) affected;
      ()
  | _ -> corrupt "remove_node: node not found"

(* ----------------------------------------------------------------------- *)
(* Public operations                                                         *)
(* ----------------------------------------------------------------------- *)

let ensure_node t key =
  match find_node t key with Some n -> n | None -> insert_node t key

let add t iv payload =
  if I.is_empty iv then invalid_arg "Interval_skiplist.add: empty interval";
  let id = alloc_entry t iv payload in
  let left = ensure_node t (I.lo iv) in
  left.owners <- left.owners + 1;
  let right = ensure_node t (I.hi iv) in
  right.owners <- right.owners + 1;
  place_markers t id;
  t.size <- t.size + 1

let remove t iv pred =
  match find_node t (I.lo iv) with
  | None -> false
  | Some left -> (
      (* Every interval's path touches its left endpoint node, so the
         entry is registered there. *)
      match
        Hashtbl.fold
          (fun id () acc ->
            match acc with
            | Some _ -> acc
            | None ->
                if I.equal (entry_iv t id) iv && pred (entry_payload t id) then Some id else None)
          left.eq None
      with
      | None -> false
      | Some id ->
          unplace_markers t id;
          release_entry t id;
          left.owners <- left.owners - 1;
          (match find_node t (I.hi iv) with
          | Some right -> right.owners <- right.owners - 1
          | None -> corrupt "remove: missing right endpoint");
          if left.owners = 0 then remove_node t (I.lo iv);
          if I.hi iv <> I.lo iv then begin
            match find_node t (I.hi iv) with
            | Some right when right.owners = 0 -> remove_node t (I.hi iv)
            | _ -> ()
          end;
          t.size <- t.size - 1;
          true)

let stab t key f =
  let report id = f (entry_iv t id) (entry_payload t id) in
  let x = ref t.header in
  for i = max_level - 1 downto 0 do
    let continue = ref true in
    while !continue do
      match !x.forward.(i) with
      | Some n when n.key < key -> x := n
      | _ -> continue := false
    done;
    (* Stopping edge at level i: spans (x.key, fwd.key].  When the
       successor's key is exactly [key], its markers are deferred to
       the node's eq set to avoid double reporting. *)
    match !x.forward.(i) with
    | Some n when n.key = key -> ()
    | Some _ -> Hashtbl.iter (fun id () -> report id) !x.markers.(i)
    | None -> ()
  done;
  match !x.forward.(0) with
  | Some n when n.key = key -> Hashtbl.iter (fun id () -> report id) n.eq
  | _ -> ()

let stab_count t key =
  let n = ref 0 in
  stab t key (fun _ _ -> incr n);
  !n

let stab_list t key =
  let acc = ref [] in
  stab t key (fun iv p -> acc := (iv, p) :: !acc);
  List.rev !acc

(* Every entry's placement walk registers it in the eq set of its left
   endpoint node, so scanning level 0 and reporting each entry at the
   node matching its left endpoint visits each exactly once. *)
let iter t f =
  let rec go = function
    | None -> ()
    | Some n ->
        Hashtbl.iter
          (fun id () ->
            let iv = entry_iv t id in
            if I.lo iv = n.key then f iv (entry_payload t id))
          n.eq;
        go n.forward.(0)
  in
  go t.header.forward.(0)

(* ----------------------------------------------------------------------- *)
(* Invariants                                                                *)
(* ----------------------------------------------------------------------- *)

let check_invariants t =
  let fail fmt = corrupt fmt in
  (* Node keys strictly increasing along level 0; forward pointers at
     higher levels consistent with level 0 ordering. *)
  let rec walk0 acc = function
    | None -> List.rev acc
    | Some n ->
        (match acc with
        | prev :: _ when prev.key >= n.key -> fail "node keys not strictly increasing"
        | _ -> ());
        walk0 (n :: acc) n.forward.(0)
  in
  let nodes = walk0 [] t.header.forward.(0) in
  (* Collect each entry's marked spans and check edge coverage. *)
  let spans : (int, (float * float) list) Hashtbl.t = Hashtbl.create 64 in
  let record x =
    Array.iteri
      (fun l ms ->
        Hashtbl.iter
          (fun id () ->
            let iv = entry_iv t id in
            match x.forward.(l) with
            | Some s ->
                if not (I.lo iv <= x.key && s.key <= I.hi iv) then
                  fail "marker does not cover its edge";
                Hashtbl.replace spans id
                  ((x.key, s.key) :: Option.value ~default:[] (Hashtbl.find_opt spans id))
            | None -> fail "marker on a tail edge")
          ms)
      x.markers
  in
  List.iter record nodes;
  (* Every entry reachable via a left-endpoint eq set must have spans
     tiling [lo, hi] exactly (empty for point intervals). *)
  List.iter
    (fun n ->
      Hashtbl.iter
        (fun id () ->
          let iv = entry_iv t id in
          if I.lo iv = n.key then begin
            let sp =
              List.sort Cq_util.Order.float_pair
                (Option.value ~default:[] (Hashtbl.find_opt spans id))
            in
            let rec tiles cur = function
              | [] -> cur = I.hi iv
              | (a, b) :: rest -> a = cur && b > a && tiles b rest
            in
            if not (tiles (I.lo iv) sp) then fail "marked spans do not tile the interval exactly"
          end)
        n.eq)
    nodes;
  (* Size: count distinct entries found at their left endpoints. *)
  let counted = ref 0 in
  List.iter
    (fun n -> Hashtbl.iter (fun id () -> if I.lo (entry_iv t id) = n.key then incr counted) n.eq)
    nodes;
  if !counted <> t.size then fail "size mismatch: %d entries found, %d recorded" !counted t.size;
  (* Arena accounting: live ids + free ids = the allocated prefix. *)
  let live = ref 0 in
  for id = 0 to t.e_limit - 1 do
    match t.e_iv.(id) with Some _ -> incr live | None -> ()
  done;
  if !live <> t.size then fail "arena mismatch: %d live ids, %d recorded" !live t.size;
  let frees = List.length t.e_free in
  if !live + frees <> t.e_limit then
    fail "arena leak: %d live + %d free <> %d allocated" !live frees t.e_limit
