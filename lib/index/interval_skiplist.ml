module I = Cq_interval.Interval

(* Implementation notes.

   Nodes sit at the distinct interval endpoints.  An interval "marks"
   a set of edges whose spans tile [lo, hi] exactly, each edge as high
   as the classic two-phase placement walk can push it.  Every node on
   an interval's path also records it in [eq] (the eqMarkers of the
   original paper), which answers stabbing queries that hit a node key
   exactly and locates entries for deletion.

   Structural changes (a node appearing or disappearing) invalidate
   only the placements of intervals marking the edges adjacent to the
   changed node: those intervals are unplaced first and re-placed
   afterwards — expected O(log n) intervals, O(log n) each. *)

type 'a entry = {
  id : int;
  iv : I.t;
  payload : 'a;
  (* Exact record of where this entry's markers live, so removal never
     has to re-derive the placement walk (placements drift from the
     canonical maximal walk as nodes split edges). *)
  mutable edges : ('a node_ref * int) list;
  mutable eq_nodes : 'a node_ref list;
}

and 'a node_ref = 'a node

and 'a node = {
  key : float;
  mutable owners : int; (* endpoint references; 0 => node removable *)
  forward : 'a node option array;
  markers : (int, 'a entry) Hashtbl.t array; (* per outgoing level *)
  eq : (int, 'a entry) Hashtbl.t;
}

let max_level = 32

type 'a t = {
  header : 'a node;
  rng : Cq_util.Rng.t;
  mutable size : int;
  mutable next_id : int;
}

let make_node key level =
  {
    key;
    owners = 0;
    forward = Array.make level None;
    markers = Array.init level (fun _ -> Hashtbl.create 4);
    eq = Hashtbl.create 4;
  }

let create ?(seed = 0x151) () =
  {
    header = make_node neg_infinity max_level;
    rng = Cq_util.Rng.create seed;
    size = 0;
    next_id = 0;
  }

let size t = t.size

let node_level n = Array.length n.forward

let random_level t =
  let l = ref 1 in
  while !l < max_level && Cq_util.Rng.bool t.rng do
    incr l
  done;
  !l

(* Predecessors of [key] at every level of the header. *)
let update_path t key =
  let update = Array.make max_level t.header in
  let x = ref t.header in
  for i = max_level - 1 downto 0 do
    let continue = ref true in
    while !continue do
      match !x.forward.(i) with
      | Some n when n.key < key -> x := n
      | _ -> continue := false
    done;
    update.(i) <- !x
  done;
  update

let find_node t key =
  let update = update_path t key in
  match update.(0).forward.(0) with Some n when n.key = key -> Some n | _ -> None

(* Does the edge from [x] to its level-[i] successor lie entirely
   inside the interval? *)
let covers (e : 'a entry) x i =
  match x.forward.(i) with
  | Some s -> I.lo e.iv <= x.key && s.key <= I.hi e.iv
  | None -> false

let add_marker x i e = Hashtbl.replace x.markers.(i) e.id e

let remove_marker x i e = Hashtbl.remove x.markers.(i) e.id

let add_eq x e = Hashtbl.replace x.eq e.id e

let remove_eq x e = Hashtbl.remove x.eq e.id

let mark_edge e x i =
  add_marker x i e;
  e.edges <- (x, i) :: e.edges

let mark_eq e x =
  if not (Hashtbl.mem x.eq e.id) then begin
    add_eq x e;
    e.eq_nodes <- x :: e.eq_nodes
  end

(* The two-phase placement walk of Hanson & Johnson: mark each covered
   edge as high as the structure allows, recording every placement on
   the entry itself. *)
let place_markers t e =
  let left =
    match find_node t (I.lo e.iv) with
    | Some n -> n
    | None -> Cq_util.Error.corrupt ~structure:"interval_skiplist" "missing left endpoint node"
  in
  mark_eq e left;
  let x = ref left in
  let i = ref 0 in
  (* Ascending phase: push each marked edge as high as possible. *)
  let ascending = ref true in
  while !ascending do
    if covers e !x !i then begin
      while !i + 1 < node_level !x && covers e !x (!i + 1) do
        incr i
      done;
      mark_edge e !x !i;
      x := Option.get !x.forward.(!i);
      mark_eq e !x
    end
    else ascending := false
  done;
  (* Descending phase: finish the tiling down to the right endpoint. *)
  while !x.key < I.hi e.iv do
    while !i > 0 && not (covers e !x !i) do
      decr i
    done;
    mark_edge e !x !i;
    x := Option.get !x.forward.(!i);
    mark_eq e !x
  done

(* Removal replays the recorded placements — exact whatever structural
   drift has happened since. *)
let unplace_markers _t e =
  List.iter (fun (x, i) -> remove_marker x i e) e.edges;
  List.iter (fun x -> remove_eq x e) e.eq_nodes;
  e.edges <- [];
  e.eq_nodes <- []

(* ----------------------------------------------------------------------- *)
(* Node insertion / removal with local marker repair                        *)
(* ----------------------------------------------------------------------- *)

let collect tbl_list =
  let seen = Hashtbl.create 16 in
  List.iter (fun tbl -> Hashtbl.iter (fun id e -> Hashtbl.replace seen id e) tbl) tbl_list;
  Hashtbl.fold (fun _ e acc -> e :: acc) seen []

(* Insert a node for [key] (assumed absent) and return it.  Markers on
   a split edge are copied onto both halves — the edge spans shrink, so
   coverage and disjoint tiling are preserved.  (The placement is no
   longer height-maximal; that only costs performance, never
   correctness, and avoids the quadratic re-placement blowup on
   workloads full of near-identical intervals.) *)
let insert_node t key =
  let update = update_path t key in
  let level = random_level t in
  let x = make_node key level in
  for l = 0 to level - 1 do
    x.forward.(l) <- update.(l).forward.(l);
    update.(l).forward.(l) <- Some x;
    Hashtbl.iter
      (fun _ e ->
        mark_edge e x l;
        mark_eq e x)
      update.(l).markers.(l)
  done;
  x

(* Remove the node for [key] (owners = 0), repairing adjacent markers. *)
let remove_node t key =
  let update = update_path t key in
  match update.(0).forward.(0) with
  | Some x when x.key = key ->
      let level = node_level x in
      let incoming =
        List.filter_map
          (fun l -> if update.(l).forward.(l) == Some x then Some update.(l).markers.(l) else None)
          (List.init level Fun.id)
      in
      let affected = collect ((x.eq :: incoming) @ Array.to_list x.markers) in
      List.iter (unplace_markers t) affected;
      for l = 0 to level - 1 do
        if update.(l).forward.(l) == Some x then update.(l).forward.(l) <- x.forward.(l)
      done;
      List.iter (place_markers t) affected;
      ()
  | _ -> Cq_util.Error.corrupt ~structure:"interval_skiplist" "remove_node: node not found"

(* ----------------------------------------------------------------------- *)
(* Public operations                                                         *)
(* ----------------------------------------------------------------------- *)

let ensure_node t key =
  match find_node t key with Some n -> n | None -> insert_node t key

let add t iv payload =
  if I.is_empty iv then invalid_arg "Interval_skiplist.add: empty interval";
  let e = { id = t.next_id; iv; payload; edges = []; eq_nodes = [] } in
  t.next_id <- t.next_id + 1;
  let left = ensure_node t (I.lo iv) in
  left.owners <- left.owners + 1;
  let right = ensure_node t (I.hi iv) in
  right.owners <- right.owners + 1;
  place_markers t e;
  t.size <- t.size + 1

let remove t iv pred =
  match find_node t (I.lo iv) with
  | None -> false
  | Some left -> (
      (* Every interval's path touches its left endpoint node, so the
         entry is registered there. *)
      match
        Hashtbl.fold
          (fun _ e acc ->
            match acc with
            | Some _ -> acc
            | None -> if I.equal e.iv iv && pred e.payload then Some e else None)
          left.eq None
      with
      | None -> false
      | Some e ->
          unplace_markers t e;
          left.owners <- left.owners - 1;
          (match find_node t (I.hi iv) with
          | Some right -> right.owners <- right.owners - 1
          | None -> Cq_util.Error.corrupt ~structure:"interval_skiplist" "remove: missing right endpoint");
          if left.owners = 0 then remove_node t (I.lo iv);
          if I.hi iv <> I.lo iv then begin
            match find_node t (I.hi iv) with
            | Some right when right.owners = 0 -> remove_node t (I.hi iv)
            | _ -> ()
          end;
          t.size <- t.size - 1;
          true)

let stab t key f =
  let x = ref t.header in
  for i = max_level - 1 downto 0 do
    let continue = ref true in
    while !continue do
      match !x.forward.(i) with
      | Some n when n.key < key -> x := n
      | _ -> continue := false
    done;
    (* Stopping edge at level i: spans (x.key, fwd.key].  When the
       successor's key is exactly [key], its markers are deferred to
       the node's eq set to avoid double reporting. *)
    match !x.forward.(i) with
    | Some n when n.key = key -> ()
    | Some _ -> Hashtbl.iter (fun _ e -> f e.iv e.payload) !x.markers.(i)
    | None -> ()
  done;
  match !x.forward.(0) with
  | Some n when n.key = key -> Hashtbl.iter (fun _ e -> f e.iv e.payload) n.eq
  | _ -> ()

let stab_count t key =
  let n = ref 0 in
  stab t key (fun _ _ -> incr n);
  !n

let stab_list t key =
  let acc = ref [] in
  stab t key (fun iv p -> acc := (iv, p) :: !acc);
  List.rev !acc

(* Every entry's placement walk registers it in the eq set of its left
   endpoint node, so scanning level 0 and reporting each entry at the
   node matching its left endpoint visits each exactly once. *)
let iter t f =
  let rec go = function
    | None -> ()
    | Some n ->
        Hashtbl.iter (fun _ e -> if I.lo e.iv = n.key then f e.iv e.payload) n.eq;
        go n.forward.(0)
  in
  go t.header.forward.(0)

(* ----------------------------------------------------------------------- *)
(* Invariants                                                                *)
(* ----------------------------------------------------------------------- *)

let check_invariants t =
  let fail fmt = Cq_util.Error.corrupt ~structure:"interval_skiplist" fmt in
  (* Node keys strictly increasing along level 0; forward pointers at
     higher levels consistent with level 0 ordering. *)
  let rec walk0 acc = function
    | None -> List.rev acc
    | Some n ->
        (match acc with
        | prev :: _ when prev.key >= n.key -> fail "node keys not strictly increasing"
        | _ -> ());
        walk0 (n :: acc) n.forward.(0)
  in
  let nodes = walk0 [] t.header.forward.(0) in
  (* Collect each entry's marked spans and check edge coverage. *)
  let spans : (int, (float * float) list) Hashtbl.t = Hashtbl.create 64 in
  let record x =
    Array.iteri
      (fun l ms ->
        Hashtbl.iter
          (fun _ e ->
            (match x.forward.(l) with
            | Some s ->
                if not (I.lo e.iv <= x.key && s.key <= I.hi e.iv) then
                  fail "marker does not cover its edge";
                Hashtbl.replace spans e.id
                  ((x.key, s.key) :: Option.value ~default:[] (Hashtbl.find_opt spans e.id))
            | None -> fail "marker on a tail edge"))
          ms)
      x.markers
  in
  List.iter record nodes;
  (* Every entry reachable via a left-endpoint eq set must have spans
     tiling [lo, hi] exactly (empty for point intervals). *)
  List.iter
    (fun n ->
      Hashtbl.iter
        (fun _ e ->
          if I.lo e.iv = n.key then begin
            let sp =
              List.sort Cq_util.Order.float_pair
                (Option.value ~default:[] (Hashtbl.find_opt spans e.id))
            in
            let rec tiles cur = function
              | [] -> cur = I.hi e.iv
              | (a, b) :: rest -> a = cur && b > a && tiles b rest
            in
            if not (tiles (I.lo e.iv) sp) then
              fail "marked spans do not tile the interval exactly"
          end)
        n.eq)
    nodes;
  (* Size: count distinct entries found at their left endpoints. *)
  let counted = ref 0 in
  List.iter
    (fun n -> Hashtbl.iter (fun _ e -> if I.lo e.iv = n.key then incr counted) n.eq)
    nodes;
  if !counted <> t.size then fail "size mismatch: %d entries found, %d recorded" !counted t.size
