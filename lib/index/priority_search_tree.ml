module I = Cq_interval.Interval

(* A randomized BST (treap) on left endpoints where every node carries
   the tournament winner of its subtree — the entry with the largest
   right endpoint.  Stabbing queries prune subtrees whose winner ends
   before the query point; any un-pruned subtree fully inside the
   "lo <= x" region is guaranteed to produce output, which makes
   reporting output-sensitive (O(log n + k) in practice; the strict
   McCreight bound needs entry push-down, which this treap variant
   trades away for simple O(log n) expected updates — see DESIGN.md). *)

type 'a entry = { iv : I.t; payload : 'a }

type 'a t =
  | Empty
  | Node of {
      entry : 'a entry;
      prio : int64;
      left : 'a t;
      right : 'a t;
      winner : 'a entry; (* max right endpoint in the subtree *)
      count : int;
    }

let empty = Empty

let size = function Empty -> 0 | Node n -> n.count

let winner_hi = function Empty -> neg_infinity | Node n -> I.hi n.winner.iv

let best a b = if I.hi a.iv >= I.hi b.iv then a else b

let mk entry prio left right =
  let winner = entry in
  let winner = match left with Empty -> winner | Node l -> best winner l.winner in
  let winner = match right with Empty -> winner | Node r -> best winner r.winner in
  Node { entry; prio; left; right; winner; count = 1 + size left + size right }

let cmp_entry a b =
  let c = Float.compare (I.lo a.iv) (I.lo b.iv) in
  if c <> 0 then c else Float.compare (I.hi a.iv) (I.hi b.iv)

let rec split e = function
  | Empty -> (Empty, Empty)
  | Node n ->
      if cmp_entry n.entry e <= 0 then
        let l, r = split e n.right in
        (mk n.entry n.prio n.left l, r)
      else
        let l, r = split e n.left in
        (l, mk n.entry n.prio r n.right)

let add rng iv payload t =
  if I.is_empty iv then invalid_arg "Priority_search_tree.add: empty interval";
  let e = { iv; payload } in
  let prio = Cq_util.Rng.int64 rng in
  let rec ins = function
    | Empty -> mk e prio Empty Empty
    | Node n when prio > n.prio ->
        let l, r = split e (Node n) in
        mk e prio l r
    | Node n ->
        if cmp_entry e n.entry <= 0 then mk n.entry n.prio (ins n.left) n.right
        else mk n.entry n.prio n.left (ins n.right)
  in
  ins t

let rec join l r =
  match (l, r) with
  | Empty, t | t, Empty -> t
  | Node a, Node b ->
      if a.prio >= b.prio then mk a.entry a.prio a.left (join a.right r)
      else mk b.entry b.prio (join l b.left) b.right

let rec remove iv pred t =
  match t with
  | Empty -> None
  | Node n -> (
      let c = I.compare_lo iv n.entry.iv in
      if c = 0 && pred n.entry.payload then Some (join n.left n.right)
      else if c < 0 then
        match remove iv pred n.left with
        | Some l -> Some (mk n.entry n.prio l n.right)
        | None -> None
      else if c > 0 then
        match remove iv pred n.right with
        | Some r -> Some (mk n.entry n.prio n.left r)
        | None -> None
      else
        (* Equal key, wrong payload: duplicates can sit on either
           side. *)
        match remove iv pred n.left with
        | Some l -> Some (mk n.entry n.prio l n.right)
        | None -> (
            match remove iv pred n.right with
            | Some r -> Some (mk n.entry n.prio n.left r)
            | None -> None))

let rec stab t x f =
  match t with
  | Empty -> ()
  | Node n ->
      if winner_hi t >= x then begin
        stab n.left x f;
        if I.lo n.entry.iv <= x then begin
          if I.hi n.entry.iv >= x then f n.entry.iv n.entry.payload;
          stab n.right x f
        end
      end

let stab_count t x =
  let n = ref 0 in
  stab t x (fun _ _ -> incr n);
  !n

exception Found

let stab_any t x =
  let hit = ref None in
  (try
     stab t x (fun iv p ->
         hit := Some (iv, p);
         raise Found)
   with Found -> ());
  !hit

let rec iter f = function
  | Empty -> ()
  | Node n ->
      iter f n.left;
      f n.entry.iv n.entry.payload;
      iter f n.right

let check_invariants t =
  let fail fmt = Cq_util.Error.corrupt ~structure:"priority_search_tree" fmt in
  let rec go = function
    | Empty -> None
    | Node n ->
        (match n.left with
        | Node l ->
            if l.prio > n.prio then fail "heap order violated (left)";
            if cmp_entry l.entry n.entry > 0 then fail "BST order violated (left)"
        | Empty -> ());
        (match n.right with
        | Node r ->
            if r.prio > n.prio then fail "heap order violated (right)";
            if cmp_entry r.entry n.entry < 0 then fail "BST order violated (right)"
        | Empty -> ());
        let wl = go n.left and wr = go n.right in
        let expect =
          List.fold_left
            (fun acc w -> match w with Some e -> best acc e | None -> acc)
            n.entry [ wl; wr ]
        in
        if I.hi expect.iv <> I.hi n.winner.iv then fail "stale tournament winner";
        Some n.winner
  in
  ignore (go t)

module Mutable = struct
  type 'a p = 'a t

  type nonrec 'a t = {
    mutable tree : 'a p;
    rng : Cq_util.Rng.t;
  }

  let create ?(seed = 0x9571) () = { tree = Empty; rng = Cq_util.Rng.create seed }
  let size m = size m.tree
  let add m iv payload = m.tree <- add m.rng iv payload m.tree

  let remove m iv pred =
    match remove iv pred m.tree with
    | Some t ->
        m.tree <- t;
        true
    | None -> false

  let stab m x f = stab m.tree x f
  let stab_count m x = stab_count m.tree x
  let stab_any m x = stab_any m.tree x
  let snapshot m = m.tree
end
