(** First-class pluggable stabbing-index backends.

    Every structure in this library that answers 1-D stabbing queries
    — the augmented interval tree, the interval skip list, the
    treap-based priority search tree — is packaged here behind one
    imperative signature, so processors can be functorized over the
    index rather than hard-wiring one.  The paper itself treats the
    choice as open ("an index on ranges, e.g., priority search tree or
    external interval tree"); making it a parameter lets the ablation
    harness and the fuzz oracle drive every candidate through the same
    code. *)

(** The backend contract: a mutable multiset of (interval, payload)
    entries supporting stabbing queries and full iteration. *)
module type S = sig
  type 'a t

  val name : string
  (** Short stable identifier ("interval_tree", "interval_skiplist",
      "priority_search_tree"). *)

  val create : seed:int -> 'a t
  (** [seed] feeds any internal randomization (skip-list levels, treap
      priorities); deterministic backends ignore it.  Fixing the seed
      makes a run reproducible bit-for-bit. *)

  val size : 'a t -> int

  val add : 'a t -> Cq_interval.Interval.t -> 'a -> unit
  (** Duplicates (even identical interval + payload) are kept.
      @raise Invalid_argument on an empty interval. *)

  val remove : 'a t -> Cq_interval.Interval.t -> ('a -> bool) -> bool
  (** Remove one entry with exactly this interval and a matching
      payload; [false] if absent. *)

  val stab : 'a t -> float -> ('a -> unit) -> unit
  (** Visit the payload of every stored interval containing [x]. *)

  val stab_batch : 'a t -> keys:float array -> f:(idx:int -> 'a -> unit) -> unit
  (** Answer a whole batch of stabbing queries: [f ~idx p] is called
      for every pair of a key index [idx] and a stored payload [p]
      whose interval contains [keys.(idx)].  For a fixed [idx] the
      payloads arrive in exactly the order [stab t keys.(idx)] would
      report them; calls for different keys may interleave.  Backends
      with a batched descent ({!Interval_tree}) answer the whole array
      per index walk; the others fall back to a loop of scalar stabs. *)

  val iter : 'a t -> ('a -> unit) -> unit
  (** Visit every stored payload exactly once. *)

  val check_invariants : 'a t -> unit
  (** The backend's own structural invariants.  @raise Failure. *)
end

module Interval_tree : S
(** Augmented AVL interval tree, backed by the flat arena layout
    ({!Cq_index.Flat_interval_tree}) — allocation-free stabs and a
    native batched descent; deterministic, ignores the seed.
    Traversal order is bit-for-bit that of the boxed
    {!Cq_index.Interval_tree.Mutable} it replaced. *)

module Interval_skiplist : S
(** Hanson–Johnson interval skip list ({!Cq_index.Interval_skiplist}). *)

module Treap : S
(** Treap-based priority search tree
    ({!Cq_index.Priority_search_tree.Mutable}). *)

module Instrumented (B : S) : S
(** The same backend with per-operation monotonic timings recorded
    into the {!Cq_obs.Metrics} registry under the backend's name:
    [stab.<name>.stab_ns], [stab.<name>.stab_batch_ns],
    [stab.<name>.add_ns], [stab.<name>.remove_ns], and the per-stab
    result fanout [stab.<name>.stab_hits].  While metrics are disabled the wrapper
    costs one branch per call, so instrumented backends can be used
    unconditionally. *)

module Instrumented_interval_tree : S
module Instrumented_interval_skiplist : S
module Instrumented_treap : S
(** Pre-applied {!Instrumented} wrappers — named so functor
    instantiations over them are shared across the codebase instead of
    duplicated at each use site. *)

(** {2 Runtime selection}

    A nominal tag for configuration records and CLI flags; resolve it
    to an implementation with {!backend}. *)

type kind = Itree | Skiplist | Treap_pst

val all : kind list

val to_string : kind -> string
(** ["itree" | "skiplist" | "treap"] — the [cqctl] flag spellings. *)

val of_string : string -> (kind, string) result

val backend : kind -> (module S)

val instrumented : kind -> (module S)
(** The {!Instrumented}-wrapped module for the kind. *)
