(** Interval skip list (Hanson & Johnson, WADS 1991) — the second
    dynamic stabbing index the paper cites for indexing range-selection
    continuous queries.

    Intervals are decomposed onto the edges of a randomized skip list
    built over their endpoints: an interval marks an edge when it
    covers the edge's whole span and the edge is as high as possible.
    A stabbing query walks the ordinary skip-list search path and
    collects the markers of the edges it descends from — expected
    O(log n + k).  Insertions and deletions place or remove O(log n)
    expected markers and repair the markers of nodes whose level
    structure changes.

    Functionally interchangeable with {!Interval_tree}; the test suite
    cross-checks the two, and the `ablation-stab-index` benchmark
    compares them. *)

type 'a t

val create : ?seed:int -> unit -> 'a t

val size : 'a t -> int
(** Number of stored intervals. *)

val add : 'a t -> Cq_interval.Interval.t -> 'a -> unit
(** Insert an interval with a payload; duplicates are kept.
    @raise Invalid_argument on an empty interval. *)

val remove : 'a t -> Cq_interval.Interval.t -> ('a -> bool) -> bool
(** Delete one entry with exactly this interval whose payload matches;
    [false] if none does. *)

val stab : 'a t -> float -> (Cq_interval.Interval.t -> 'a -> unit) -> unit
(** Report every stored (interval, payload) containing the point. *)

val stab_count : 'a t -> float -> int
val stab_list : 'a t -> float -> (Cq_interval.Interval.t * 'a) list

val iter : 'a t -> (Cq_interval.Interval.t -> 'a -> unit) -> unit
(** Visit every stored (interval, payload) exactly once, in increasing
    left-endpoint order (ties in arbitrary order). *)

val check_invariants : 'a t -> unit
(** Node ordering, marker placement/coverage invariants.
    @raise Failure on violation. *)
