(** Guttman R-tree (quadratic split) over rectangles.

    Used as the two-dimensional point-stabbing index over query
    rectangles in SJ-JoinFirst, and as the per-group structure of the
    SSI in SJ-SSI ("each group in the SSI is stored as an R-tree",
    Section 3.2).  Supports insertion, deletion with tree condensing
    and re-insertion, point stabbing and window queries.  Insertion
    descends one root-to-leaf path — O(log n) node visits plus O(M²)
    work per quadratic split; queries have no sublinear worst-case
    guarantee (overlapping bounding boxes may force multi-path
    descent) but are output-sensitive on the clustered workloads the
    SSI feeds them. *)

type 'a t

val create : ?max_entries:int -> unit -> 'a t
(** [max_entries] is M (default 8); minimum occupancy is M/2 rounded
    down, at least 2.  @raise Invalid_argument if [max_entries < 4]. *)

val size : 'a t -> int

val insert : 'a t -> Rect.t -> 'a -> unit
(** @raise Invalid_argument on an empty rectangle. *)

val remove : 'a t -> Rect.t -> ('a -> bool) -> bool
(** Delete one entry with exactly this rectangle whose payload
    satisfies the predicate; underfull nodes are condensed and their
    entries re-inserted (Guttman's CondenseTree). *)

val stab : 'a t -> x:float -> y:float -> (Rect.t -> 'a -> unit) -> unit
(** Every entry whose rectangle contains the point. *)

val stab_count : 'a t -> x:float -> y:float -> int

val search : 'a t -> Rect.t -> (Rect.t -> 'a -> unit) -> unit
(** Every entry whose rectangle intersects the window. *)

val iter : 'a t -> (Rect.t -> 'a -> unit) -> unit

val check_invariants : 'a t -> unit
(** MBR containment, occupancy bounds, uniform leaf depth;
    @raise Failure. *)
