(** Synthetic data and query workloads — Table 1 of the paper.

    Base tables: R.B and the local-selection attributes R.A, S.C are
    uniform on the domain; S.B follows a clamped ("discretized")
    normal, modelling varying join selectivity.  Query ranges: rangeA
    midpoints are normal, rangeB/rangeC midpoints uniform, all lengths
    normal.  Every generator takes an explicit {!Cq_util.Rng.t} so
    experiments are reproducible. *)

type config = {
  domain_lo : float;
  domain_hi : float;  (** attribute domain, paper: [0, 10000] *)
  b_quantum : float;
      (** The paper's attributes are integer-valued; B values (both
          relations) are rounded to multiples of this quantum so that
          equality joins actually match.  A coarser quantum raises the
          event selectivity on S (Figure 8(iv)'s knob). *)
  sb_mu : float;
  sb_sigma : float;  (** S.B ~ Normal(5000, 1000), clamped to the domain *)
  range_a_mid_mu : float;
  range_a_mid_sigma : float;  (** rangeA midpoint ~ Normal(mu1, sigma1) *)
  range_a_len_mu : float;
  range_a_len_sigma : float;  (** rangeA/rangeC length ~ Normal(mu2, sigma2) *)
  range_b_len_mu : float;
  range_b_len_sigma : float;  (** rangeB length ~ Normal(mu3, sigma3) *)
}

val default : config
(** The paper's Table 1 with representative mu/sigma choices:
    mu1 = 5000, sigma1 = 1500; mu2 = 600, sigma2 = 200;
    mu3 = 400, sigma3 = 150. *)

val pp_config : Format.formatter -> config -> unit

(** {2 Base tables and streams} *)

val gen_s_tuples : config -> Cq_util.Rng.t -> n:int -> Tuple.s array
val gen_r_tuples : config -> Cq_util.Rng.t -> n:int -> Tuple.r array
(** R insertion events: A and B uniform on the domain. *)

val gen_s_batch : config -> Cq_util.Rng.t -> n:int -> Batch.t
val gen_r_batch : config -> Cq_util.Rng.t -> n:int -> Batch.t
(** Flat-batch variants of the tuple generators: same draws in the
    same order, packed into a {!Batch} (ids stamped from the tuple
    ids), so per-tuple and batch ingest replay identical streams. *)

(** {2 Query ranges} *)

val gen_select_ranges :
  config -> Cq_util.Rng.t -> n:int -> (Cq_interval.Interval.t * Cq_interval.Interval.t) array
(** [(rangeA, rangeC)] pairs per Table 1. *)

val gen_band_ranges : config -> Cq_util.Rng.t -> n:int -> Cq_interval.Interval.t array
(** rangeB intervals per Table 1 (offsets around zero are applied by
    the band-join semantics; here midpoints are uniform on the domain
    like the paper's rangeB rows). *)

(** {2 Clusteredness control} *)

val gen_clustered_ranges :
  ?scattered_len:float * float ->
  Cq_util.Rng.t ->
  n:int ->
  n_clusters:int ->
  clustered_frac:float ->
  domain:float * float ->
  cluster_halfwidth:float ->
  len_mu:float ->
  len_sigma:float ->
  Cq_interval.Interval.t array
(** [clustered_frac] of the ranges are centred near one of
    [n_clusters] cluster centres (Zipf-weighted, beta = 1, so cluster
    sizes follow the popularity law of Figure 2); the rest have
    uniform midpoints.  Used to sweep the number of stabbing groups
    (Figures 7(ii), 10(ii)) and hotspot coverage (Figure 9). *)

val scale_lengths :
  Cq_interval.Interval.t array -> factor:float -> Cq_interval.Interval.t array
(** Shrink or grow every range around its midpoint — the paper's knob
    for "decreasing mean and variance of interval lengths" to control
    the stabbing number. *)
