(* Flat structure-of-arrays tuple batches: the unit of ingest on the
   zero-allocation hot path.  Columns are monomorphic [int array] /
   [float array] so reads and writes never box (a polymorphic
   [Cq_util.Vec] push would box every float crossing the call
   boundary); the growth discipline mirrors Vec's doubling.

   Column meaning follows the raw-row convention of the engine's batch
   APIs: for R rows [x = a, y = b]; for S rows [x = b, y = c].  The
   [ids] column carries caller-side tuple ids (workload generators
   stamp them); the engine assigns its own ids at ingest and never
   writes into a batch, so a batch slice can be shared read-only
   across shards.

   Slices are zero-copy views aliasing the root's columns.  A view is
   read-only; the root must not be mutated while views are in flight —
   [seal] turns mutation attempts into [Cq_util.Error.Cq_error] until
   [unseal] (the parallel engine seals around shard dispatch). *)

module Err = Cq_util.Error

type t = {
  mutable ids : int array;
  mutable xs : float array;
  mutable ys : float array;
  mutable off : int;
  mutable len : int;
  view : bool;
  mutable sealed : bool;
}

let create ?(capacity = 0) () =
  let capacity = max capacity 0 in
  {
    ids = Array.make capacity (-1);
    xs = Array.make capacity 0.0;
    ys = Array.make capacity 0.0;
    off = 0;
    len = 0;
    view = false;
    sealed = false;
  }

let length b = b.len
let is_empty b = b.len = 0
let is_view b = b.view
let sealed b = b.sealed

let reject ~fn ~value =
  Err.raise_
    (Err.Invalid_parameter
       { name = "batch"; value; expected = Printf.sprintf "a writable root batch for Batch.%s" fn })

let check_mutable b fn =
  if b.view then reject ~fn ~value:"read-only view";
  if b.sealed then reject ~fn ~value:"sealed batch"

let seal b = if b.view then reject ~fn:"seal" ~value:"read-only view" else b.sealed <- true
let unseal b = if b.view then reject ~fn:"unseal" ~value:"read-only view" else b.sealed <- false

let grow b =
  let cap = max 8 (2 * Array.length b.xs) in
  let ids = Array.make cap (-1)
  and xs = Array.make cap 0.0
  and ys = Array.make cap 0.0 in
  Array.blit b.ids 0 ids 0 b.len;
  Array.blit b.xs 0 xs 0 b.len;
  Array.blit b.ys 0 ys 0 b.len;
  b.ids <- ids;
  b.xs <- xs;
  b.ys <- ys

let push b ~x ~y =
  check_mutable b "push";
  if b.len = Array.length b.xs then grow b;
  b.ids.(b.len) <- -1;
  b.xs.(b.len) <- x;
  b.ys.(b.len) <- y;
  b.len <- b.len + 1

let clear b =
  check_mutable b "clear";
  b.len <- 0

let check_index b i fn =
  if i < 0 || i >= b.len then
    Err.raise_
      (Err.Invalid_parameter
         {
           name = "i";
           value = string_of_int i;
           expected = Printf.sprintf "0 <= i < %d in Batch.%s" b.len fn;
         })

let id b i =
  check_index b i "id";
  b.ids.(b.off + i)

(* Single-expression bodies so the classic inliner expands them at the
   call site: a non-inlined call would box the float return on every
   read, defeating the flat columns. *)
let[@cq.hot] unsafe_x b i = Array.unsafe_get b.xs (b.off + i)
let[@cq.hot] unsafe_y b i = Array.unsafe_get b.ys (b.off + i)

let[@cq.hot] x b i =
  check_index b i "x";
  b.xs.(b.off + i)

let[@cq.hot] y b i =
  check_index b i "y";
  b.ys.(b.off + i)

let set_id b i id =
  check_mutable b "set_id";
  check_index b i "set_id";
  b.ids.(b.off + i) <- id

let[@cq.hot] slice b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > b.len then
    Err.raise_
      (Err.Invalid_parameter
         {
           name = "pos/len";
           value = Printf.sprintf "pos=%d len=%d" pos len;
           expected = Printf.sprintf "0 <= pos, 0 <= len, pos + len <= %d in Batch.slice" b.len;
         });
  {
    ids = b.ids;
    xs = b.xs;
    ys = b.ys;
    off = b.off + pos;
    len;
    view = true;
    sealed = false;
  }

let[@cq.hot] iter b ~f =
  for i = 0 to b.len - 1 do
    let j = b.off + i in
    f ~i ~x:b.xs.(j) ~y:b.ys.(j)
  done

let of_rows rows =
  let n = Array.length rows in
  let b = create ~capacity:n () in
  for i = 0 to n - 1 do
    let x, y = rows.(i) in
    push b ~x ~y
  done;
  b

let to_rows b = Array.init b.len (fun i -> (b.xs.(b.off + i), b.ys.(b.off + i)))

let of_r_tuples rs =
  let b = create ~capacity:(Array.length rs) () in
  Array.iter
    (fun (r : Tuple.r) ->
      push b ~x:r.a ~y:r.b;
      b.ids.(b.len - 1) <- r.rid)
    rs;
  b

let of_s_tuples ss =
  let b = create ~capacity:(Array.length ss) () in
  Array.iter
    (fun (s : Tuple.s) ->
      push b ~x:s.b ~y:s.c;
      b.ids.(b.len - 1) <- s.sid)
    ss;
  b

let to_r_tuples b =
  Array.init b.len (fun i ->
      let j = b.off + i in
      { Tuple.rid = b.ids.(j); a = b.xs.(j); b = b.ys.(j) })

let to_s_tuples b =
  Array.init b.len (fun i ->
      let j = b.off + i in
      { Tuple.sid = b.ids.(j); b = b.xs.(j); c = b.ys.(j) })

let check_invariants b =
  let fail fmt = Err.corrupt ~structure:"batch" fmt in
  if b.off < 0 || b.len < 0 then fail "negative offset %d or length %d" b.off b.len;
  if b.off + b.len > Array.length b.xs then
    fail "extent %d + %d exceeds column storage %d" b.off b.len (Array.length b.xs);
  if Array.length b.xs <> Array.length b.ys || Array.length b.xs <> Array.length b.ids then
    fail "column lengths differ: xs=%d ys=%d ids=%d" (Array.length b.xs) (Array.length b.ys)
      (Array.length b.ids);
  if b.view && b.sealed then fail "a view cannot be sealed"
