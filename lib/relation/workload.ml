module I = Cq_interval.Interval
module Rng = Cq_util.Rng
module Dist = Cq_util.Dist

type config = {
  domain_lo : float;
  domain_hi : float;
  b_quantum : float;
  sb_mu : float;
  sb_sigma : float;
  range_a_mid_mu : float;
  range_a_mid_sigma : float;
  range_a_len_mu : float;
  range_a_len_sigma : float;
  range_b_len_mu : float;
  range_b_len_sigma : float;
}

let default =
  {
    domain_lo = 0.0;
    domain_hi = 10_000.0;
    b_quantum = 1.0;
    sb_mu = 5000.0;
    sb_sigma = 1000.0;
    range_a_mid_mu = 5000.0;
    range_a_mid_sigma = 1500.0;
    range_a_len_mu = 600.0;
    range_a_len_sigma = 200.0;
    range_b_len_mu = 400.0;
    range_b_len_sigma = 150.0;
  }

let pp_config fmt c =
  Format.fprintf fmt
    "@[<v>domain                [%g, %g]@,\
     S.B                   Normal(%g, %g) clamped@,\
     R.A, R.B, S.C         Uni(domain)@,\
     rangeA midpoint       Normal(%g, %g)@,\
     rangeA/rangeC length  Normal(%g, %g)@,\
     rangeB/rangeC midpoint Uni(domain)@,\
     rangeB length         Normal(%g, %g)@]"
    c.domain_lo c.domain_hi c.sb_mu c.sb_sigma c.range_a_mid_mu c.range_a_mid_sigma
    c.range_a_len_mu c.range_a_len_sigma c.range_b_len_mu c.range_b_len_sigma

(* "All integer-valued": B lands on a grid so equality joins match. *)
let quantise c x = Float.round (x /. c.b_quantum) *. c.b_quantum

let gen_s_tuples c rng ~n =
  Array.init n (fun sid ->
      {
        Tuple.sid;
        b =
          quantise c
            (Dist.normal_clamped rng ~mu:c.sb_mu ~sigma:c.sb_sigma ~lo:c.domain_lo
               ~hi:c.domain_hi);
        c = Dist.uniform rng ~lo:c.domain_lo ~hi:c.domain_hi;
      })

let gen_r_tuples c rng ~n =
  Array.init n (fun rid ->
      {
        Tuple.rid;
        a = Dist.uniform rng ~lo:c.domain_lo ~hi:c.domain_hi;
        b = quantise c (Dist.uniform rng ~lo:c.domain_lo ~hi:c.domain_hi);
      })

let gen_s_batch c rng ~n = Batch.of_s_tuples (gen_s_tuples c rng ~n)
let gen_r_batch c rng ~n = Batch.of_r_tuples (gen_r_tuples c rng ~n)

(* Lengths are "normally distributed"; a negative draw means a
   degenerate (point-like) range. *)
let draw_len rng ~mu ~sigma = Float.max 0.0 (Dist.normal rng ~mu ~sigma)

let gen_select_ranges c rng ~n =
  Array.init n (fun _ ->
      let mid_a = Dist.normal rng ~mu:c.range_a_mid_mu ~sigma:c.range_a_mid_sigma in
      let len_a = draw_len rng ~mu:c.range_a_len_mu ~sigma:c.range_a_len_sigma in
      let mid_c = Dist.uniform rng ~lo:c.domain_lo ~hi:c.domain_hi in
      let len_c = draw_len rng ~mu:c.range_a_len_mu ~sigma:c.range_a_len_sigma in
      (I.of_midpoint ~mid:mid_a ~len:len_a, I.of_midpoint ~mid:mid_c ~len:len_c))

let gen_band_ranges c rng ~n =
  Array.init n (fun _ ->
      let mid = Dist.uniform rng ~lo:c.domain_lo ~hi:c.domain_hi in
      let len = draw_len rng ~mu:c.range_b_len_mu ~sigma:c.range_b_len_sigma in
      I.of_midpoint ~mid ~len)

let gen_clustered_ranges ?scattered_len rng ~n ~n_clusters ~clustered_frac ~domain:(lo, hi)
    ~cluster_halfwidth ~len_mu ~len_sigma =
  if n_clusters <= 0 then invalid_arg "Workload.gen_clustered_ranges: n_clusters must be > 0";
  if clustered_frac < 0.0 || clustered_frac > 1.0 then
    invalid_arg "Workload.gen_clustered_ranges: clustered_frac must be in [0,1]";
  let centres =
    Array.init n_clusters (fun _ -> Dist.uniform rng ~lo ~hi)
  in
  let s_mu, s_sigma = Option.value scattered_len ~default:(len_mu, len_sigma) in
  let cdf = Dist.cdf_of_weights (Dist.zipf_weights ~n:n_clusters ~beta:1.0) in
  Array.init n (fun _ ->
      if Rng.float rng < clustered_frac then begin
        let len = Float.max 0.0 (Dist.normal rng ~mu:len_mu ~sigma:len_sigma) in
        let k = Dist.zipf rng ~cdf in
        let jitter = Dist.uniform rng ~lo:(-.cluster_halfwidth) ~hi:cluster_halfwidth in
        (* Clustered ranges share their cluster centre: the centre
           always stabs them, whatever the jitter and length. *)
        let mid = centres.(k) +. jitter in
        I.of_midpoint ~mid ~len:(Float.max len (2.0 *. Float.abs jitter))
      end
      else begin
        let len = Float.max 0.0 (Dist.normal rng ~mu:s_mu ~sigma:s_sigma) in
        I.of_midpoint ~mid:(Dist.uniform rng ~lo ~hi) ~len
      end)

let scale_lengths ranges ~factor =
  Array.map
    (fun iv -> I.of_midpoint ~mid:(I.midpoint iv) ~len:(I.length iv *. factor))
    ranges
