module Fkey = struct
  type t = float

  let compare = Float.compare

  (* Monomorphic read: the key arrays are flat float arrays, so the
     generic [a.(i)] would box on every comparison of every descent. *)
  let[@cq.hot] compare_at (a : float array) i k = Float.compare (Array.unsafe_get a i) k
end

module Pkey = struct
  type t = float * float

  let compare (a1, a2) (b1, b2) =
    let c = Float.compare a1 b1 in
    if c <> 0 then c else Float.compare a2 b2

  let[@cq.hot] compare_at a i k = compare (Array.unsafe_get a i) k
end

module Fbt = Cq_index.Btree.Make (Fkey)
module Pbt = Cq_index.Btree.Make (Pkey)

type s_table = {
  s_b : Tuple.s Fbt.t;
  s_bc : Tuple.s Pbt.t;
}

let create_s () = { s_b = Fbt.create (); s_bc = Pbt.create () }

let insert_s t (s : Tuple.s) =
  Fbt.insert t.s_b s.b s;
  Pbt.insert t.s_bc (s.b, s.c) s

let delete_s t (s : Tuple.s) =
  let hit = Fbt.remove_first t.s_b s.b (fun x -> Tuple.equal_s x s) in
  if hit then ignore (Pbt.remove_first t.s_bc (s.b, s.c) (fun x -> Tuple.equal_s x s));
  hit

let of_s_tuples tuples =
  let by_b = Array.copy tuples in
  Array.sort (fun (a : Tuple.s) b -> Float.compare a.b b.b) by_b;
  let by_bc = Array.copy tuples in
  Array.sort (fun (a : Tuple.s) b -> Pkey.compare (a.b, a.c) (b.b, b.c)) by_bc;
  {
    s_b = Fbt.of_sorted (Array.map (fun (s : Tuple.s) -> (s.b, s)) by_b);
    s_bc = Pbt.of_sorted (Array.map (fun (s : Tuple.s) -> ((s.b, s.c), s)) by_bc);
  }

let of_s_batch b = of_s_tuples (Batch.to_s_tuples b)

let s_size t = Fbt.length t.s_b
let s_by_b t = t.s_b
let s_by_bc t = t.s_bc
let iter_s t f = Fbt.iter t.s_b (fun _ s -> f s)

type r_table = {
  r_b : Tuple.r Fbt.t;
  r_ba : Tuple.r Pbt.t;
}

let create_r () = { r_b = Fbt.create (); r_ba = Pbt.create () }

let insert_r t (r : Tuple.r) =
  Fbt.insert t.r_b r.b r;
  Pbt.insert t.r_ba (r.b, r.a) r

let delete_r t (r : Tuple.r) =
  let hit = Fbt.remove_first t.r_b r.b (fun x -> Tuple.equal_r x r) in
  if hit then ignore (Pbt.remove_first t.r_ba (r.b, r.a) (fun x -> Tuple.equal_r x r));
  hit

let of_r_tuples tuples =
  let by_b = Array.copy tuples in
  Array.sort (fun (a : Tuple.r) b -> Float.compare a.b b.b) by_b;
  let by_ba = Array.copy tuples in
  Array.sort (fun (a : Tuple.r) b -> Pkey.compare (a.b, a.a) (b.b, b.a)) by_ba;
  {
    r_b = Fbt.of_sorted (Array.map (fun (r : Tuple.r) -> (r.b, r)) by_b);
    r_ba = Pbt.of_sorted (Array.map (fun (r : Tuple.r) -> ((r.b, r.a), r)) by_ba);
  }

let of_r_batch b = of_r_tuples (Batch.to_r_tuples b)

let r_size t = Fbt.length t.r_b
let r_by_b t = t.r_b
let r_by_ba t = t.r_ba
let iter_r t f = Fbt.iter t.r_b (fun _ r -> f r)
