(** Flat structure-of-arrays tuple batches — the unit of ingest on the
    zero-allocation hot path.

    A batch holds three parallel columns: [ids] (caller-side tuple
    ids, [-1] when unset) and two float attribute columns whose
    meaning follows the engine's raw-row convention — for R rows
    [x = a, y = b]; for S rows [x = b, y = c].  Columns are
    monomorphic arrays, so per-row access never allocates or boxes.

    {b Ownership and aliasing.}  [slice] returns a zero-copy {e view}
    aliasing the root's columns; views are read-only.  While views are
    in flight (e.g. queued to shards), the root must not be mutated:
    [seal] makes [push]/[clear]/[set_id] raise
    {!Cq_util.Error.Cq_error} until [unseal].  Note a
    [push] that grows the root reallocates its columns, after which
    existing views keep aliasing the {e old} storage — sealing around
    dispatch is what rules this out on the parallel path. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh root batch; [capacity] pre-sizes the columns (default 0,
    grown on demand). *)

val length : t -> int
val is_empty : t -> bool

val push : t -> x:float -> y:float -> unit
(** Append a row with id [-1].  Amortised O(1).
    @raise Cq_util.Error.Cq_error on a view or a sealed batch. *)

val clear : t -> unit
(** Reset to length 0, keeping capacity for reuse.
    @raise Cq_util.Error.Cq_error on a view or a sealed batch. *)

val id : t -> int -> int
val x : t -> int -> float
val y : t -> int -> float

val unsafe_x : t -> int -> float
(** [x] without the bounds check — a single-expression accessor the
    compiler inlines, keeping the float unboxed at the call site.  The
    caller guarantees [0 <= i < length t]. *)

val unsafe_y : t -> int -> float
(** [y] without the bounds check; same contract as {!unsafe_x}. *)

val set_id : t -> int -> int -> unit
(** @raise Cq_util.Error.Cq_error on a view or a sealed batch. *)

val slice : t -> pos:int -> len:int -> t
(** Zero-copy read-only view of rows [pos .. pos+len-1]. *)

val is_view : t -> bool

val seal : t -> unit
(** Freeze the root against mutation while views are in flight.
    @raise Cq_util.Error.Cq_error on a view. *)

val unseal : t -> unit
val sealed : t -> bool

val iter : t -> f:(i:int -> x:float -> y:float -> unit) -> unit
(** In-order row iteration; allocation-free apart from [f] itself. *)

val of_rows : (float * float) array -> t
val to_rows : t -> (float * float) array

val of_r_tuples : Tuple.r array -> t
(** [x = a, y = b], ids from [rid]. *)

val of_s_tuples : Tuple.s array -> t
(** [x = b, y = c], ids from [sid]. *)

val to_r_tuples : t -> Tuple.r array
val to_s_tuples : t -> Tuple.s array

val check_invariants : t -> unit
(** @raise Cq_util.Error.Cq_error ([Corrupt]) on a violated structural
    invariant. *)
