(** The database relations, indexed as the paper assumes.

    S(B,C) carries a B-tree on B (for band joins) and a composite
    B-tree on (B,C) (for equality joins with local selections); R(A,B)
    symmetrically carries B and (B,A) indexes so that S-side events can
    be processed the same way R-side events are. *)

module Fkey : Cq_index.Btree.ORDERED with type t = float

module Pkey : Cq_index.Btree.ORDERED with type t = float * float
(** Lexicographic order on (primary, secondary). *)

module Fbt : module type of Cq_index.Btree.Make (Fkey)
module Pbt : module type of Cq_index.Btree.Make (Pkey)

(** {2 S(B,C)} *)

type s_table

val create_s : unit -> s_table

val of_s_tuples : Tuple.s array -> s_table
(** Bulk-load; input order is free. *)

val of_s_batch : Batch.t -> s_table
(** Bulk-load from a flat batch ([x = b, y = c], ids as [sid]). *)

val insert_s : s_table -> Tuple.s -> unit
val delete_s : s_table -> Tuple.s -> bool
val s_size : s_table -> int
val s_by_b : s_table -> Tuple.s Fbt.t
(** B-tree keyed on S.B. *)

val s_by_bc : s_table -> Tuple.s Pbt.t
(** B-tree keyed on (S.B, S.C). *)

val iter_s : s_table -> (Tuple.s -> unit) -> unit
(** In increasing S.B order. *)

(** {2 R(A,B)} *)

type r_table

val create_r : unit -> r_table
val of_r_tuples : Tuple.r array -> r_table

val of_r_batch : Batch.t -> r_table
(** Bulk-load from a flat batch ([x = a, y = b], ids as [rid]). *)

val insert_r : r_table -> Tuple.r -> unit
val delete_r : r_table -> Tuple.r -> bool
val r_size : r_table -> int

val r_by_b : r_table -> Tuple.r Fbt.t
val r_by_ba : r_table -> Tuple.r Pbt.t
(** B-tree keyed on (R.B, R.A). *)

val iter_r : r_table -> (Tuple.r -> unit) -> unit
