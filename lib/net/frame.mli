(** The wire protocol of the network front-end: length-prefixed binary
    frames over a byte stream (DESIGN.md §14).

    Every frame is a 5-byte header — one tag byte, then the body length
    as an unsigned 32-bit big-endian integer — followed by the body.
    Integers are big-endian; floats are IEEE-754 binary64, big-endian.
    The two directions use disjoint tag spaces (client tags < 0x80,
    server tags >= 0x80), so a peer reading its own reflection fails
    loudly instead of mis-parsing.

    Decoding is {e incremental} and total: {!Decoder.feed} accepts
    arbitrary byte chunks, {!Decoder.next_client}/[next_server] yield
    one frame at a time, and every malformed input — unknown tag, body
    longer than the negotiated cap, a row count disagreeing with the
    body length, a stream closed mid-frame — is classified into
    {!proto_error}.  No input byte sequence makes the decoder raise or
    loop; the protocol fuzzer in [test_net] holds it to that. *)

type side = R | S
(** Which relation a tuple batch targets, as {!Cq_engine.Parallel.side}. *)

(** Frames a client sends.  A session speaks strictly in order: the
    server replies to each request frame in arrival order, interleaved
    with asynchronous {!server_frame.Results} / [Overload] pushes. *)
type client_frame =
  | Hello of { version : int }
      (** Must be the first frame, exactly once — enforced: any other
          frame before a successful handshake, or a repeated [Hello],
          draws a fatal [Err_proto].  The server answers [Welcome] (or
          a protocol error on a version mismatch). *)
  | Register_band of { lo : float; hi : float }
      (** Register a continuous band query with window [\[lo, hi\]];
          answered by [Registered] carrying the session-visible qid. *)
  | Register_select of { a_lo : float; a_hi : float; c_lo : float; c_hi : float }
      (** Register a continuous select-join query; answered by
          [Registered]. *)
  | Drop of { qid : int }  (** Drop a query this session registered. *)
  | Batch of { side : side; rows : Cq_relation.Batch.t }
      (** A tuple batch, decoded straight into the flat
          {!Cq_relation.Batch} so the zero-allocation ingest path is
          the wire-to-engine path.  Answered by [Batch_ok] or
          [Overload]. *)
  | Flush  (** Barrier: answered by [Flushed] once every result frame
               of the session's prior batches has been enqueued. *)
  | Ping of { token : int }  (** Liveness probe; answered by [Pong]. *)
  | Bye  (** Orderly close; answered by [Goodbye]. *)

(** Why an [Err] frame was sent.  [Err_proto] is fatal (the server
    closes the session after sending it); the others leave the session
    usable. *)
type err_code = Err_proto | Err_bad_request | Err_engine | Err_server_full

(** Which mechanism produced an [Overload] frame. *)
type overload_source =
  | Engine_admission
      (** {!Cq_engine.Parallel} admission control refused the batch
          (Reject policy): nothing was ingested; retry after the
          hint. *)
  | Slow_session
      (** This session's bounded output queue overflowed: [dropped]
          result {e rows} were discarded rather than buffered without
          bound.  Read faster, or re-register and resync. *)

(** Frames the server sends. *)
type server_frame =
  | Welcome of { version : int; session_id : int }
  | Registered of { qid : int }
  | Dropped of { qid : int }
  | Batch_ok of { rows : int }
  | Results of { qid : int; rows : (float * float * float * float) array }
      (** Fan-out results for one continuous query: each row is
          [(r.a, r.b, s.b, s.c)] — the joined pair's four attributes.
          Rows arrive in the engine's deterministic merge order. *)
  | Flushed of { results : int }
      (** Answer to [Flush]: [results] rows were enqueued to this
          session by the flush that answered it. *)
  | Pong of { token : int }
  | Overload of { source : overload_source; dropped : int; retry_after_ms : float }
  | Err of { code : err_code; message : string }
  | Goodbye

(** Typed decode failures.  [Truncated] is only reported by
    {!Decoder.at_eof} — mid-stream, a short buffer just means
    [Awaiting]. *)
type proto_error =
  | Unknown_tag of { tag : int }
  | Oversized of { tag : int; declared : int; limit : int }
  | Malformed of { tag : int; detail : string }
  | Truncated of { buffered : int }

val protocol_version : int

val proto_error_to_string : proto_error -> string
val pp_proto_error : Format.formatter -> proto_error -> unit

val err_code_to_int : err_code -> int
val overload_source_to_string : overload_source -> string

val pp_client_frame : Format.formatter -> client_frame -> unit
val pp_server_frame : Format.formatter -> server_frame -> unit

val encode_client : Buffer.t -> client_frame -> unit
(** Append the frame's full wire image (header + body). *)

val encode_server : Buffer.t -> server_frame -> unit

(** Incremental frame decoder over a growable internal buffer.  One
    decoder per direction per connection; a decode failure is sticky —
    after a [Broken] answer every further [next_*] repeats it, because
    a framing error leaves no way to resynchronise the stream. *)
module Decoder : sig
  type t

  val create : ?max_frame:int -> unit -> t
  (** [max_frame] caps the {e body} length the decoder will buffer
      (default {!default_max_frame}); a declared length beyond it is an
      [Oversized] error before any body byte is read. *)

  val feed : t -> bytes -> off:int -> len:int -> unit
  (** Append received bytes.  O(len) amortised; the internal buffer
      compacts as frames are consumed. *)

  type 'a next = Frame of 'a | Awaiting | Broken of proto_error

  val next_client : t -> client_frame next
  (** Decode the next client frame if a full one is buffered. *)

  val next_server : t -> server_frame next

  val at_eof : t -> (unit, proto_error) result
  (** Call when the peer closed the stream: [Error (Truncated _)] if a
      partial frame is still buffered, [Ok ()] on a clean boundary. *)

  val buffered : t -> int
  (** Bytes fed but not yet consumed. *)
end

val default_max_frame : int
(** 1 MiB: comfortably above the largest [Results]/[Batch] frame the
    server emits, small enough that a hostile length prefix cannot
    balloon a session's memory. *)
