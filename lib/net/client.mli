(** Blocking client for the {!Frame} protocol — the counterpart the
    tests, the loopback driver, and [cqctl client] use to talk to
    {!Server}.

    The client is synchronous: each helper sends one request frame and
    waits for its reply.  Asynchronous pushes that arrive while waiting
    ([Results] fan-out and slow-session [Overload] notices) are stashed
    and drained later with {!take_results} / {!take_overloads}, so a
    lockstep request/reply discipline loses nothing.

    Not thread-safe; one domain per client. *)

type t

type error =
  | Timeout  (** No reply within [recv_timeout]. *)
  | Closed_by_server  (** EOF on a clean frame boundary. *)
  | Protocol of Frame.proto_error  (** The server's bytes did not parse. *)
  | Server_error of { code : Frame.err_code; message : string }  (** An [Err] reply. *)
  | Unexpected of string  (** A well-formed reply of the wrong kind. *)
  | Io of string  (** Connection-level [Unix] failure. *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val connect :
  ?recv_timeout:float -> ?max_frame:int -> addr:Unix.sockaddr -> unit -> (t, error) result
(** Connect, set [TCP_NODELAY] and a receive timeout (default 5 s),
    perform the [Hello]/[Welcome] handshake. *)

val session_id : t -> int
val close : t -> unit

(** {2 Request/reply helpers} *)

val register_band : t -> lo:float -> hi:float -> (int, error) result
(** Returns the server-assigned qid. *)

val register_select :
  t -> a_lo:float -> a_hi:float -> c_lo:float -> c_hi:float -> (int, error) result

val drop : t -> qid:int -> (unit, error) result

type batch_reply =
  | Accepted of int  (** [Batch_ok]: rows admitted. *)
  | Overloaded of { source : Frame.overload_source; dropped : int; retry_after_ms : float }

val send_batch : t -> side:Frame.side -> Cq_relation.Batch.t -> (batch_reply, error) result

val flush : t -> (int, error) result
(** Barrier: returns the number of result rows the answering flush
    enqueued to this session (they land in {!take_results}). *)

val ping : t -> token:int -> (unit, error) result

val bye : t -> (unit, error) result
(** Orderly shutdown: sends [Bye], waits for [Goodbye], closes. The
    socket is closed even on error. *)

(** {2 Raw access} — for the fuzzer and the slow-reader test. *)

val send : t -> Frame.client_frame -> (unit, error) result
(** Write one frame without waiting for anything. *)

val recv : t -> (Frame.server_frame, error) result
(** Next server frame: a stashed push if one is pending, else read. *)

(** {2 Stashed pushes} *)

val pump : t -> (unit, error) result
(** Non-blocking: drain whatever the kernel has buffered into the
    frame decoder (no frame is consumed — the next {!recv} or RPC
    still sees everything in order).  Call it from time to time on a
    client that goes quiet between RPCs: letting the kernel receive
    buffer fill invites in-window TCP segment drops on loopback, whose
    RTO-backoff retransmits stall the stream for seconds. *)

val take_results : t -> (int * (float * float * float * float) array) list
(** Drain stashed [Results] frames in arrival order as [(qid, rows)]. *)

val take_overloads : t -> (Frame.overload_source * int * float) list
(** Drain stashed [Overload] notices as [(source, dropped, retry_after_ms)]. *)
