type side = R | S

type client_frame =
  | Hello of { version : int }
  | Register_band of { lo : float; hi : float }
  | Register_select of { a_lo : float; a_hi : float; c_lo : float; c_hi : float }
  | Drop of { qid : int }
  | Batch of { side : side; rows : Cq_relation.Batch.t }
  | Flush
  | Ping of { token : int }
  | Bye

type err_code = Err_proto | Err_bad_request | Err_engine | Err_server_full

type overload_source = Engine_admission | Slow_session

type server_frame =
  | Welcome of { version : int; session_id : int }
  | Registered of { qid : int }
  | Dropped of { qid : int }
  | Batch_ok of { rows : int }
  | Results of { qid : int; rows : (float * float * float * float) array }
  | Flushed of { results : int }
  | Pong of { token : int }
  | Overload of { source : overload_source; dropped : int; retry_after_ms : float }
  | Err of { code : err_code; message : string }
  | Goodbye

type proto_error =
  | Unknown_tag of { tag : int }
  | Oversized of { tag : int; declared : int; limit : int }
  | Malformed of { tag : int; detail : string }
  | Truncated of { buffered : int }

let protocol_version = 1
let default_max_frame = 1 lsl 20

let proto_error_to_string = function
  | Unknown_tag { tag } -> Printf.sprintf "unknown frame tag 0x%02x" tag
  | Oversized { tag; declared; limit } ->
      Printf.sprintf "frame 0x%02x declares %d body bytes (limit %d)" tag declared limit
  | Malformed { tag; detail } -> Printf.sprintf "malformed frame 0x%02x: %s" tag detail
  | Truncated { buffered } ->
      Printf.sprintf "stream closed mid-frame (%d bytes buffered)" buffered

let pp_proto_error fmt e = Format.pp_print_string fmt (proto_error_to_string e)

let err_code_to_int = function
  | Err_proto -> 1
  | Err_bad_request -> 2
  | Err_engine -> 3
  | Err_server_full -> 4

let err_code_of_int = function
  | 1 -> Some Err_proto
  | 2 -> Some Err_bad_request
  | 3 -> Some Err_engine
  | 4 -> Some Err_server_full
  | _ -> None

let overload_source_to_string = function
  | Engine_admission -> "engine"
  | Slow_session -> "session"

let side_to_string = function R -> "R" | S -> "S"

let pp_client_frame fmt = function
  | Hello { version } -> Format.fprintf fmt "HELLO v%d" version
  | Register_band { lo; hi } -> Format.fprintf fmt "REGISTER band [%g, %g]" lo hi
  | Register_select { a_lo; a_hi; c_lo; c_hi } ->
      Format.fprintf fmt "REGISTER select A:[%g, %g] C:[%g, %g]" a_lo a_hi c_lo c_hi
  | Drop { qid } -> Format.fprintf fmt "DROP q%d" qid
  | Batch { side; rows } ->
      Format.fprintf fmt "BATCH %s %d rows" (side_to_string side) (Cq_relation.Batch.length rows)
  | Flush -> Format.pp_print_string fmt "FLUSH"
  | Ping { token } -> Format.fprintf fmt "PING %d" token
  | Bye -> Format.pp_print_string fmt "BYE"

let pp_server_frame fmt = function
  | Welcome { version; session_id } -> Format.fprintf fmt "WELCOME v%d sid=%d" version session_id
  | Registered { qid } -> Format.fprintf fmt "REGISTERED q%d" qid
  | Dropped { qid } -> Format.fprintf fmt "DROPPED q%d" qid
  | Batch_ok { rows } -> Format.fprintf fmt "BATCH_OK %d" rows
  | Results { qid; rows } -> Format.fprintf fmt "RESULTS q%d %d rows" qid (Array.length rows)
  | Flushed { results } -> Format.fprintf fmt "FLUSHED %d" results
  | Pong { token } -> Format.fprintf fmt "PONG %d" token
  | Overload { source; dropped; retry_after_ms } ->
      Format.fprintf fmt "OVERLOAD %s dropped=%d retry_after=%.1fms"
        (overload_source_to_string source) dropped retry_after_ms
  | Err { code; message } -> Format.fprintf fmt "ERR %d %s" (err_code_to_int code) message
  | Goodbye -> Format.pp_print_string fmt "GOODBYE"

(* ------------------------------ encoding ------------------------------- *)

(* Tag spaces are disjoint per direction so a peer that reads its own
   reflection fails with Unknown_tag instead of mis-parsing. *)
let tag_hello = 0x01
let tag_register_band = 0x02
let tag_register_select = 0x03
let tag_drop = 0x04
let tag_batch = 0x05
let tag_flush = 0x06
let tag_ping = 0x07
let tag_bye = 0x08
let tag_welcome = 0x81
let tag_registered = 0x82
let tag_dropped = 0x83
let tag_batch_ok = 0x84
let tag_results = 0x85
let tag_flushed = 0x86
let tag_pong = 0x87
let tag_overload = 0x88
let tag_err = 0x89
let tag_goodbye = 0x8A

let add_header buf tag body_len =
  Buffer.add_uint8 buf tag;
  Buffer.add_int32_be buf (Int32.of_int body_len)

let add_f64 buf v = Buffer.add_int64_be buf (Int64.bits_of_float v)
let add_u32 buf v = Buffer.add_int32_be buf (Int32.of_int v)

let encode_client buf = function
  | Hello { version } ->
      add_header buf tag_hello 4;
      add_u32 buf version
  | Register_band { lo; hi } ->
      add_header buf tag_register_band 16;
      add_f64 buf lo;
      add_f64 buf hi
  | Register_select { a_lo; a_hi; c_lo; c_hi } ->
      add_header buf tag_register_select 32;
      add_f64 buf a_lo;
      add_f64 buf a_hi;
      add_f64 buf c_lo;
      add_f64 buf c_hi
  | Drop { qid } ->
      add_header buf tag_drop 4;
      add_u32 buf qid
  | Batch { side; rows } ->
      let n = Cq_relation.Batch.length rows in
      add_header buf tag_batch (5 + (16 * n));
      Buffer.add_uint8 buf (match side with R -> 0 | S -> 1);
      add_u32 buf n;
      for i = 0 to n - 1 do
        add_f64 buf (Cq_relation.Batch.x rows i);
        add_f64 buf (Cq_relation.Batch.y rows i)
      done
  | Flush -> add_header buf tag_flush 0
  | Ping { token } ->
      add_header buf tag_ping 4;
      add_u32 buf token
  | Bye -> add_header buf tag_bye 0

let encode_server buf = function
  | Welcome { version; session_id } ->
      add_header buf tag_welcome 8;
      add_u32 buf version;
      add_u32 buf session_id
  | Registered { qid } ->
      add_header buf tag_registered 4;
      add_u32 buf qid
  | Dropped { qid } ->
      add_header buf tag_dropped 4;
      add_u32 buf qid
  | Batch_ok { rows } ->
      add_header buf tag_batch_ok 4;
      add_u32 buf rows
  | Results { qid; rows } ->
      let n = Array.length rows in
      add_header buf tag_results (8 + (32 * n));
      add_u32 buf qid;
      add_u32 buf n;
      Array.iter
        (fun (ra, rb, sb, sc) ->
          add_f64 buf ra;
          add_f64 buf rb;
          add_f64 buf sb;
          add_f64 buf sc)
        rows
  | Flushed { results } ->
      add_header buf tag_flushed 4;
      add_u32 buf results
  | Pong { token } ->
      add_header buf tag_pong 4;
      add_u32 buf token
  | Overload { source; dropped; retry_after_ms } ->
      add_header buf tag_overload 13;
      Buffer.add_uint8 buf (match source with Engine_admission -> 0 | Slow_session -> 1);
      add_u32 buf dropped;
      add_f64 buf retry_after_ms
  | Err { code; message } ->
      let msg =
        if String.length message > 0xFFFF then String.sub message 0 0xFFFF else message
      in
      add_header buf tag_err (4 + String.length msg);
      Buffer.add_uint16_be buf (err_code_to_int code);
      Buffer.add_uint16_be buf (String.length msg);
      Buffer.add_string buf msg
  | Goodbye -> add_header buf tag_goodbye 0

(* ------------------------------ decoding ------------------------------- *)

module Decoder = struct
  type t = {
    max_frame : int;
    mutable buf : Bytes.t;
    mutable start : int;  (** First unconsumed byte. *)
    mutable fill : int;  (** One past the last valid byte. *)
    mutable broken : proto_error option;
  }

  let create ?(max_frame = default_max_frame) () =
    { max_frame; buf = Bytes.create 4096; start = 0; fill = 0; broken = None }

  let buffered t = t.fill - t.start

  let feed t src ~off ~len =
    if len > 0 && Option.is_none t.broken then begin
      let live = buffered t in
      (* Compact (shift live bytes down) before growing. *)
      if t.start > 0 && t.fill + len > Bytes.length t.buf then begin
        Bytes.blit t.buf t.start t.buf 0 live;
        t.start <- 0;
        t.fill <- live
      end;
      if t.fill + len > Bytes.length t.buf then begin
        let cap = ref (2 * Bytes.length t.buf) in
        while t.fill + len > !cap do
          cap := 2 * !cap
        done;
        let nbuf = Bytes.create !cap in
        Bytes.blit t.buf 0 nbuf 0 t.fill;
        t.buf <- nbuf
      end;
      Bytes.blit src off t.buf t.fill len;
      t.fill <- t.fill + len
    end

  type 'a next = Frame of 'a | Awaiting | Broken of proto_error

  let fail t e =
    t.broken <- Some e;
    Broken e

  let f64 t pos = Int64.float_of_bits (Bytes.get_int64_be t.buf pos)
  let u32 t pos = Int32.to_int (Bytes.get_int32_be t.buf pos)

  (* The per-direction body parsers run only once the whole declared
     body is buffered; [pos] is the body's first byte.  They check the
     exact body length themselves so a length/shape mismatch is a typed
     Malformed, never an out-of-bounds read. *)

  let parse_client t tag pos body_len : client_frame next =
    let mal detail = fail t (Malformed { tag; detail }) in
    let want n k = if body_len = n then k () else mal (Printf.sprintf "body %d, want %d" body_len n) in
    if tag = tag_hello then want 4 (fun () -> Frame (Hello { version = u32 t pos }))
    else if tag = tag_register_band then
      want 16 (fun () -> Frame (Register_band { lo = f64 t pos; hi = f64 t (pos + 8) }))
    else if tag = tag_register_select then
      want 32 (fun () ->
          Frame
            (Register_select
               {
                 a_lo = f64 t pos;
                 a_hi = f64 t (pos + 8);
                 c_lo = f64 t (pos + 16);
                 c_hi = f64 t (pos + 24);
               }))
    else if tag = tag_drop then want 4 (fun () -> Frame (Drop { qid = u32 t pos }))
    else if tag = tag_batch then begin
      if body_len < 5 then mal "batch body shorter than its fixed part"
      else
        let side_byte = Bytes.get_uint8 t.buf pos in
        let n = u32 t (pos + 1) in
        if side_byte > 1 then mal (Printf.sprintf "bad side byte %d" side_byte)
        else if n < 0 || body_len <> 5 + (16 * n) then
          mal (Printf.sprintf "row count %d disagrees with body %d" n body_len)
        else begin
          let rows = Cq_relation.Batch.create ~capacity:n () in
          for i = 0 to n - 1 do
            let base = pos + 5 + (16 * i) in
            Cq_relation.Batch.push rows ~x:(f64 t base) ~y:(f64 t (base + 8))
          done;
          Frame (Batch { side = (if side_byte = 0 then R else S); rows })
        end
    end
    else if tag = tag_flush then want 0 (fun () -> Frame Flush)
    else if tag = tag_ping then want 4 (fun () -> Frame (Ping { token = u32 t pos }))
    else if tag = tag_bye then want 0 (fun () -> Frame Bye)
    else fail t (Unknown_tag { tag })

  let parse_server t tag pos body_len : server_frame next =
    let mal detail = fail t (Malformed { tag; detail }) in
    let want n k = if body_len = n then k () else mal (Printf.sprintf "body %d, want %d" body_len n) in
    if tag = tag_welcome then
      want 8 (fun () -> Frame (Welcome { version = u32 t pos; session_id = u32 t (pos + 4) }))
    else if tag = tag_registered then want 4 (fun () -> Frame (Registered { qid = u32 t pos }))
    else if tag = tag_dropped then want 4 (fun () -> Frame (Dropped { qid = u32 t pos }))
    else if tag = tag_batch_ok then want 4 (fun () -> Frame (Batch_ok { rows = u32 t pos }))
    else if tag = tag_results then begin
      if body_len < 8 then mal "results body shorter than its fixed part"
      else
        let qid = u32 t pos in
        let n = u32 t (pos + 4) in
        if n < 0 || body_len <> 8 + (32 * n) then
          mal (Printf.sprintf "row count %d disagrees with body %d" n body_len)
        else
          let rows =
            Array.init n (fun i ->
                let base = pos + 8 + (32 * i) in
                (f64 t base, f64 t (base + 8), f64 t (base + 16), f64 t (base + 24)))
          in
          Frame (Results { qid; rows })
    end
    else if tag = tag_flushed then want 4 (fun () -> Frame (Flushed { results = u32 t pos }))
    else if tag = tag_pong then want 4 (fun () -> Frame (Pong { token = u32 t pos }))
    else if tag = tag_overload then
      want 13 (fun () ->
          let source_byte = Bytes.get_uint8 t.buf pos in
          if source_byte > 1 then mal (Printf.sprintf "bad overload source %d" source_byte)
          else
            Frame
              (Overload
                 {
                   source = (if source_byte = 0 then Engine_admission else Slow_session);
                   dropped = u32 t (pos + 1);
                   retry_after_ms = f64 t (pos + 5);
                 }))
    else if tag = tag_err then begin
      if body_len < 4 then mal "err body shorter than its fixed part"
      else
        let code_int = Bytes.get_uint16_be t.buf pos in
        let msg_len = Bytes.get_uint16_be t.buf (pos + 2) in
        match err_code_of_int code_int with
        | None -> mal (Printf.sprintf "bad error code %d" code_int)
        | Some code ->
            if body_len <> 4 + msg_len then
              mal (Printf.sprintf "message length %d disagrees with body %d" msg_len body_len)
            else Frame (Err { code; message = Bytes.sub_string t.buf (pos + 4) msg_len })
    end
    else if tag = tag_goodbye then want 0 (fun () -> Frame Goodbye)
    else fail t (Unknown_tag { tag })

  let known_client tag = tag >= tag_hello && tag <= tag_bye
  let known_server tag = tag >= tag_welcome && tag <= tag_goodbye

  let next t ~known ~parse =
    match t.broken with
    | Some e -> Broken e
    | None ->
        if buffered t < 5 then Awaiting
        else begin
          let tag = Bytes.get_uint8 t.buf t.start in
          let body_len = u32 t (t.start + 1) in
          (* Reject bad tags and hostile lengths before waiting for a
             body that will never (or should never) arrive. *)
          if not (known tag) then fail t (Unknown_tag { tag })
          else if body_len < 0 || body_len > t.max_frame then
            fail t (Oversized { tag; declared = body_len; limit = t.max_frame })
          else if buffered t < 5 + body_len then Awaiting
          else begin
            let pos = t.start + 5 in
            let r = parse t tag pos body_len in
            (match r with
            | Frame _ ->
                t.start <- t.start + 5 + body_len;
                if t.start = t.fill then begin
                  t.start <- 0;
                  t.fill <- 0
                end
            | Awaiting | Broken _ -> ());
            r
          end
        end

  let next_client t = next t ~known:known_client ~parse:parse_client
  let next_server t = next t ~known:known_server ~parse:parse_server

  let at_eof t =
    match t.broken with
    | Some e -> Error e
    | None -> if buffered t = 0 then Ok () else Error (Truncated { buffered = buffered t })
end
