module BQ = Cq_engine.Bounded_queue
module Metrics = Cq_obs.Metrics

let m_encode_ns = Metrics.histogram "net.frame.encode_ns"
let m_frames_out = Metrics.counter "net.frames.out"
let m_queue_depth = Metrics.histogram "net.session.queue_depth"

(* Rows per RESULTS frame: large enough to amortise the header, small
   enough that one frame never dominates the bounded queue's memory. *)
let max_rows_per_frame = 512

type t = {
  sid : int;
  fd : Unix.file_descr;
  decoder : Frame.Decoder.t;
  queue_cap : int;
  (* Control replies (acks, pongs, errors): a plain FIFO with a hard
     abuse cap — its depth is bounded by the client's own unanswered
     requests, so a client that overflows it is flooding and gets
     disconnected rather than buffered. *)
  ctrl : Bytes.t Queue.t;
  ctrl_cap : int;
  (* Result fan-out: the bounded buffer.  A full queue drops result
     frames (accounted, surfaced as OVERLOAD) — never grows. *)
  out : Bytes.t BQ.t;
  enc : Buffer.t;
  mutable wbuf : Bytes.t option;
  mutable woff : int;
  mutable qids : int list;
  mutable pending : (int * float * float * float * float) list;  (** Reversed. *)
  mutable dropped_rows : int;
  mutable flush_requested : bool;
  (* A FLUSHED ack waiting for room in the result queue: it must follow
     that flush's RESULTS frames on the wire (same FIFO), so it cannot
     take the control path. *)
  mutable ack_due : bool;
  mutable ack_rows : int;
  mutable closing : bool;
  mutable closed : bool;
  mutable greeted : bool;
  mutable frames_in : int;
  mutable results_sent : int;
}

let create ~sid ~fd ~queue_cap ~max_frame =
  {
    sid;
    fd;
    decoder = Frame.Decoder.create ~max_frame ();
    queue_cap;
    ctrl = Queue.create ();
    ctrl_cap = queue_cap + 16;
    out = BQ.create ~capacity:queue_cap;
    enc = Buffer.create 1024;
    wbuf = None;
    woff = 0;
    qids = [];
    pending = [];
    dropped_rows = 0;
    flush_requested = false;
    ack_due = false;
    ack_rows = 0;
    closing = false;
    closed = false;
    greeted = false;
    frames_in = 0;
    results_sent = 0;
  }

let sid t = t.sid
let fd t = t.fd
let decoder t = t.decoder
let closing t = t.closing
let closed t = t.closed
let mark_closing t = t.closing <- true
let mark_closed t = t.closed <- true
let greeted t = t.greeted
let mark_greeted t = t.greeted <- true
let frames_in t = t.frames_in
let count_frame_in t = t.frames_in <- t.frames_in + 1
let results_sent t = t.results_sent

let qids t = t.qids
let add_qid t qid = t.qids <- qid :: t.qids
let owns_qid t qid = List.exists (fun q -> q = qid) t.qids
let remove_qid t qid = t.qids <- List.filter (fun q -> q <> qid) t.qids

let out_depth t = BQ.length t.out
let queue_cap t = t.queue_cap

(* Reads are throttled while the result queue is full: the kernel
   socket buffer then pushes back on the peer — backpressure instead of
   buffering. *)
let throttled t = BQ.length t.out >= t.queue_cap

let encode t frame =
  Buffer.clear t.enc;
  if Metrics.enabled () then begin
    let t0 = Cq_util.Clock.monotonic_ns () in
    Frame.encode_server t.enc frame;
    Metrics.observe m_encode_ns (Int64.to_float (Int64.sub (Cq_util.Clock.monotonic_ns ()) t0))
  end
  else Frame.encode_server t.enc frame;
  Buffer.to_bytes t.enc

let enqueue_ctrl t frame =
  if t.closed then true
  else if Queue.length t.ctrl >= t.ctrl_cap then false
  else begin
    Queue.add (encode t frame) t.ctrl;
    Metrics.incr m_frames_out;
    true
  end

let enqueue_result_frame t frame =
  if t.closed then false
  else begin
    let ok = BQ.try_push t.out (encode t frame) in
    if ok then begin
      Metrics.incr m_frames_out;
      Metrics.observe m_queue_depth (float_of_int (BQ.length t.out))
    end;
    ok
  end

let note_dropped t n = t.dropped_rows <- t.dropped_rows + n
let dropped_rows t = t.dropped_rows
let clear_dropped t = t.dropped_rows <- 0

let flush_requested t = t.flush_requested
let request_flush t = t.flush_requested <- true
let clear_flush_request t = t.flush_requested <- false

let set_flush_ack t rows =
  t.ack_due <- true;
  t.ack_rows <- t.ack_rows + rows

let flush_ack_due t = t.ack_due

let try_send_flush_ack t =
  if not t.ack_due then true
  else if enqueue_result_frame t (Frame.Flushed { results = t.ack_rows }) then begin
    t.ack_due <- false;
    t.ack_rows <- 0;
    true
  end
  else false

let record_result t ~qid ~ra ~rb ~sb ~sc =
  if not t.closed then t.pending <- (qid, ra, rb, sb, sc) :: t.pending

let has_pending t = not (List.is_empty t.pending)

(* Group the chronological pending rows into per-query frames: runs of
   consecutive same-qid rows become one RESULTS frame (split at
   [max_rows_per_frame]), preserving the engine's merge order. *)
let take_pending t =
  let chron = List.rev t.pending in
  t.pending <- [];
  let frames = ref [] in
  let cur_qid = ref min_int in
  let cur = ref [] in
  let cur_n = ref 0 in
  let close_run () =
    if !cur_n > 0 then begin
      let arr = Array.of_list (List.rev !cur) in
      frames := (!cur_qid, arr) :: !frames;
      cur := [];
      cur_n := 0
    end
  in
  List.iter
    (fun (qid, ra, rb, sb, sc) ->
      if qid <> !cur_qid || !cur_n >= max_rows_per_frame then begin
        close_run ();
        cur_qid := qid
      end;
      cur := (ra, rb, sb, sc) :: !cur;
      cur_n := !cur_n + 1)
    chron;
  close_run ();
  List.rev !frames

let count_results_sent t n = t.results_sent <- t.results_sent + n

let wants_write t =
  (not t.closed)
  && (Option.is_some t.wbuf || Queue.length t.ctrl > 0 || BQ.length t.out > 0)

(* Drain as much outbound data as the socket accepts: the in-flight
   frame first, then control replies, then buffered result frames. *)
let write_step t =
  let gone = ref false in
  let blocked = ref false in
  let rec go () =
    (match t.wbuf with
    | None -> (
        match
          if Queue.length t.ctrl > 0 then Some (Queue.pop t.ctrl) else BQ.try_pop t.out
        with
        | Some b ->
            t.wbuf <- Some b;
            t.woff <- 0
        | None -> ())
    | Some _ -> ());
    match t.wbuf with
    | None -> ()
    | Some b -> (
        let len = Bytes.length b - t.woff in
        (* The session fd is non-blocking: a full socket buffer returns
           EAGAIN (handled below) instead of stalling the event loop. *)
        match (Unix.write t.fd b t.woff len [@cq.blocking_ok]) with
        | n ->
            if n = len then begin
              t.wbuf <- None;
              t.woff <- 0;
              go ()
            end
            else begin
              t.woff <- t.woff + n;
              go ()
            end
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> blocked := true
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (_, _, _) -> gone := true)
  in
  go ();
  if !gone then `Gone else if !blocked then `Blocked else `Drained

let close_fd t =
  if not t.closed then begin
    t.closed <- true;
    (try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ())
  end
