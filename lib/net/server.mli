(** Session-oriented network front-end over {!Cq_engine.Parallel}: a
    single-threaded, non-blocking [Unix.select] event loop serving the
    {!Frame} protocol on a TCP socket (DESIGN.md §14).

    One tick of the loop ([step]) runs in a fixed order — accept, read
    and handle client frames, flush the engine (which fans results out
    to the per-session bounded queues), then write — so a batch's
    [Batch_ok] ack only reaches the wire {e after} the flush that
    processed it.  Under the lockstep driving discipline of
    {!Driver.run_workload} that makes the whole multi-session execution
    deterministic and differentially checkable against a direct
    single-engine run ({!Cq_robust.Oracle.run_serve}).

    Backpressure is end to end: each session's outbound buffers are
    bounded ({!Session}), a session with a full result queue stops
    being read (so the kernel socket buffer pushes back), engine
    admission refusals surface as typed [Overload] frames, and result
    rows that would exceed the bounded queue are dropped and accounted
    in one coalesced [Overload] notice — memory per slow reader is
    O(session_queue), never unbounded. *)

type t

type config = {
  engine : Cq_engine.Engine.Config.t;  (** Engine the server fronts. *)
  max_sessions : int;
      (** Accept cap; beyond it new connections get [Err_server_full].
          At most 1000: [Unix.select] cannot watch fds past FD_SETSIZE
          (1024), so {!try_create} refuses configs whose sessions could
          push a watched fd over it. *)
  session_queue : int;  (** Bounded result-queue capacity per session, in frames. *)
  max_frame : int;  (** Per-session decoder body cap, bytes. *)
}

val default_config : config
(** [Engine.Config.default] engine, 1000 sessions (the FD_SETSIZE
    budget), 64-frame queues, {!Frame.default_max_frame} frames. *)

val try_create :
  ?config:config -> addr:Unix.sockaddr -> unit -> (t, Cq_util.Error.t) result
(** Bind and listen (non-blocking, [SO_REUSEADDR]); port 0 picks an
    ephemeral port, see {!port}.  Fails with [Invalid_parameter] on a
    bad config or unbindable address.  Also ignores [SIGPIPE]
    process-wide (once): a peer that vanishes mid-write must surface
    as [EPIPE] on that one socket, closing just that session, not kill
    the whole server. *)

val create : ?config:config -> addr:Unix.sockaddr -> unit -> t
(** {!try_create}, raising {!Cq_util.Error.Cq_error} on failure. *)

val port : t -> int
(** The bound TCP port (resolves port-0 binds). *)

val active_sessions : t -> int

val step : t -> timeout:float -> int
(** Run one event-loop tick, waiting at most [timeout] seconds for
    readiness.  Returns the number of client frames handled.  Exposed
    for tests; {!serve} is the production loop. *)

val serve : t -> unit
(** Loop {!step} until {!stop} is called (from any domain), then tear
    down: close every session, close the listener, shut the engine
    down.  Runs in the calling domain. *)

val debug_dump : t -> string
(** One line of queue/flag state per session — a diagnostic aid for
    tests and for poking a live server from a debugger.  The format is
    human-oriented and not stable. *)

val stop : t -> unit
(** Ask a running {!serve} to exit.  Safe to call from another domain
    (self-pipe); idempotent. *)

val teardown : t -> unit
(** Release everything without going through {!serve} — for tests that
    drive {!step} directly.  Idempotent. *)

val with_server : ?config:config -> addr:Unix.sockaddr -> (t -> 'a) -> 'a
(** [try_create], run the function, always {!teardown}. *)

type stats = {
  net_accepts : int;
  net_active : int;
  net_results_delivered : int;  (** Result rows enqueued to sessions. *)
  net_results_dropped : int;  (** Result rows dropped at full session queues. *)
  net_overloads : int;  (** OVERLOAD frames sent (both sources). *)
  net_proto_errors : int;
  net_flushes : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
