(** Seeded multi-client loopback driver: the reference way to exercise
    {!Server} end to end, shared by the tests, the
    {!Cq_robust.Oracle.run_serve} differential check, and the
    [serve-sessions] bench experiment.

    {!gen_workload} synthesises a deterministic workload — per-session
    continuous queries plus a global sequence of tuple batches — from a
    seed.  {!run_workload} then stands a server up on an ephemeral
    loopback port (in a forked child process when possible — see
    below), connects one client per session, registers the queries
    session-major, and streams the batches in {e lockstep}: each batch waits for its ack before the
    next batch is sent anywhere.  Lockstep pins the server's ingest
    order to the workload order, which — with the server's
    read/flush/write tick discipline — makes every session's result
    stream deterministic and bit-comparable against a direct
    single-engine replay of the same workload. *)

type query_spec =
  | Band of { lo : float; hi : float }
  | Select of { a_lo : float; a_hi : float; c_lo : float; c_hi : float }

type batch_spec = {
  owner : int;  (** Session index that sends this batch. *)
  side : Frame.side;
  rows : (float * float) array;
}

type workload = {
  seed : int;
  sessions : int;
  queries : query_spec array array;  (** [queries.(i)] = session [i]'s queries. *)
  batches : batch_spec array;  (** Global send order. *)
}

val gen_workload :
  seed:int ->
  sessions:int ->
  queries_per_session:int ->
  batches:int ->
  rows_per_batch:int ->
  workload
(** Pure and deterministic in all arguments.  Attribute values are
    uniform in [\[0, 1000)]; query windows are 10–200 wide. *)

val batch_of_rows : (float * float) array -> Cq_relation.Batch.t

type outcome = {
  results : (int * (float * float * float * float) array) array array;
      (** [results.(i)] = session [i]'s [Results] frames in arrival
          order, each [(qid, rows)]. *)
  qids : int array array;
      (** [qids.(i).(k)] = qid assigned to session [i]'s [k]-th query. *)
  latencies_ns : float array;  (** Per batch: send to ack, nanoseconds. *)
  overloads : (Frame.overload_source * int * float) list;
      (** Overload notices observed client-side. *)
  server : Server.stats;  (** Server counters at shutdown. *)
  server_metrics : Cq_obs.Metrics.snapshot option;
      (** The server process's metrics registry at shutdown, when
          recording was enabled — the server runs in a forked child
          (see below), so its counters are not in this process's
          registry. *)
  elapsed_s : float;  (** Wall time of the streaming phase. *)
}

val run_workload :
  ?engine:Cq_engine.Engine.Config.t ->
  ?session_queue:int ->
  workload ->
  (outcome, Client.error) result
(** Run the whole workload as described above.  [session_queue]
    defaults to 4096 frames — deep enough that a lockstep reader never
    drops, which is what the differential check needs.

    The server runs in a {e forked child process}, not a domain: two
    busy domains in one process interact badly with the stop-the-world
    GC handshake when cores are scarce (a domain parked in [select]
    stalls the other's minor collections for the full select timeout),
    and a separate process is the honest deployment shape anyway.  The
    child ships its stats and metrics snapshot back over a pipe at
    shutdown.  [Unix.fork] refuses to run in a process that has ever
    created a domain, so callers that already spun up a parallel
    engine (the oracle's direct replay, bench experiments) silently
    fall back to serving from a spawned domain — slower on starved
    machines, behaviourally identical. *)

val percentile : float array -> float -> float
(** Nearest-rank percentile (q in [0, 100]) over a copy; 0 on empty. *)

(** {2 Protocol fuzzing} *)

type fuzz_outcome = {
  fz_conns : int;  (** Hostile connections driven. *)
  fz_typed_errors : int;  (** Connections answered with a typed [Err] frame. *)
  fz_clean_eofs : int;  (** Connections the server just closed. *)
  fz_hangs : int;  (** Connections that timed out — must be 0. *)
  fz_server : Server.stats option;  (** [None] if the server child crashed. *)
}

val fuzz : ?conns:int -> seed:int -> unit -> fuzz_outcome
(** Stand up a private server and throw seeded garbage at it — random
    bytes, truncated frames, hostile length prefixes, unknown tags,
    valid prefixes that go bad — asserting every connection ends in a
    typed protocol error or a clean close, never a hang.  The server
    must still be answering well-formed traffic afterwards (checked
    with a final healthy client). *)
