(** Per-client session state for {!Server}: the frame decoder, the
    bounded outbound buffers, and the per-flush result staging.

    Outbound frames travel through two queues with one hard bound
    between them (DESIGN.md §14):

    - {e control replies} (acks, pongs, errors) go through a FIFO
      capped at [queue_cap + 16] — its depth is bounded by the client's
      own unanswered requests, so overflowing it means the client is
      flooding and {!enqueue_ctrl} returns [false] (the server
      disconnects);
    - {e result fan-out} goes through a {!Cq_engine.Bounded_queue} of
      [queue_cap] encoded frames — a full queue {b drops} the frame
      ({!enqueue_result_frame} returns [false]), the drop is accounted
      via {!note_dropped} and later surfaced as one coalesced
      [OVERLOAD] frame.

    While the result queue is full the session reports {!throttled} and
    the server stops reading its socket, so the kernel buffer pushes
    back on the producer.  Either way a slow reader costs O(queue_cap)
    memory, never more. *)

type t

val create : sid:int -> fd:Unix.file_descr -> queue_cap:int -> max_frame:int -> t

val sid : t -> int
val fd : t -> Unix.file_descr
val decoder : t -> Frame.Decoder.t

val closing : t -> bool
(** Outbound data still draining; no further reads. *)

val closed : t -> bool
val mark_closing : t -> unit
val mark_closed : t -> unit

val greeted : t -> bool
(** A [Hello] with the right version has been accepted; until then
    every other frame is a fatal protocol violation. *)

val mark_greeted : t -> unit

val frames_in : t -> int
val count_frame_in : t -> unit
val results_sent : t -> int

(** {2 Query ownership} *)

val qids : t -> int list
val add_qid : t -> int -> unit
val owns_qid : t -> int -> bool
val remove_qid : t -> int -> unit

(** {2 Outbound buffering} *)

val queue_cap : t -> int
val out_depth : t -> int
(** Occupancy of the bounded result queue. *)

val throttled : t -> bool
(** Result queue full: stop reading this session's socket. *)

val enqueue_ctrl : t -> Frame.server_frame -> bool
(** [false] means the control FIFO hit its abuse cap — disconnect. *)

val enqueue_result_frame : t -> Frame.server_frame -> bool
(** [false] means the bounded queue was full and the frame was dropped
    — account it with {!note_dropped}. *)

val note_dropped : t -> int -> unit
val dropped_rows : t -> int
(** Result rows dropped since the last OVERLOAD notice. *)

val clear_dropped : t -> unit

val wants_write : t -> bool

val write_step : t -> [ `Blocked | `Drained | `Gone ]
(** Write until the socket blocks or both queues drain; [`Gone] on a
    connection-level error (peer reset). *)

val close_fd : t -> unit

(** {2 Flush barrier bookkeeping} *)

val flush_requested : t -> bool
val request_flush : t -> unit
val clear_flush_request : t -> unit

val set_flush_ack : t -> int -> unit
(** A handled flush owes this session a [Flushed] ack for [rows]
    delivered rows (accumulates if one is already due). *)

val flush_ack_due : t -> bool

val try_send_flush_ack : t -> bool
(** Enqueue the due [Flushed] ack through the {e result} queue — it
    must follow that flush's [Results] frames on the wire, so it rides
    the same FIFO and is the client's drain barrier.  [false] if the
    queue is full; retried each tick. *)

val count_results_sent : t -> int -> unit

(** {2 Per-flush result staging} *)

val record_result : t -> qid:int -> ra:float -> rb:float -> sb:float -> sc:float -> unit
(** Called by the engine subscription callbacks during a flush, in
    merge order. *)

val has_pending : t -> bool

val take_pending : t -> (int * (float * float * float * float) array) list
(** Drain the staged rows as RESULTS-frame payloads: runs of
    consecutive same-qid rows, split at 512 rows, chronological. *)
