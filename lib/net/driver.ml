module Rng = Cq_util.Rng
module Clock = Cq_util.Clock
module Engine = Cq_engine.Engine
module Batch = Cq_relation.Batch
module Metrics = Cq_obs.Metrics

let m_rtt = Metrics.histogram "net.batch.rtt_ns"

type query_spec =
  | Band of { lo : float; hi : float }
  | Select of { a_lo : float; a_hi : float; c_lo : float; c_hi : float }

type batch_spec = { owner : int; side : Frame.side; rows : (float * float) array }

type workload = {
  seed : int;
  sessions : int;
  queries : query_spec array array;
  batches : batch_spec array;
}

let gen_window rng =
  let lo = Rng.float rng *. 800.0 in
  let width = 10.0 +. (Rng.float rng *. 190.0) in
  (lo, lo +. width)

let gen_workload ~seed ~sessions ~queries_per_session ~batches ~rows_per_batch =
  let rng = Rng.create seed in
  let queries =
    Array.init sessions (fun _ ->
        Array.init queries_per_session (fun _ ->
            if Rng.bool rng then
              let lo, hi = gen_window rng in
              Band { lo; hi }
            else
              let a_lo, a_hi = gen_window rng in
              let c_lo, c_hi = gen_window rng in
              Select { a_lo; a_hi; c_lo; c_hi }))
  in
  let batches =
    Array.init batches (fun _ ->
        let owner = Rng.int rng sessions in
        let side = if Rng.bool rng then Frame.R else Frame.S in
        let rows =
          Array.init rows_per_batch (fun _ ->
              (Rng.float rng *. 1000.0, Rng.float rng *. 1000.0))
        in
        { owner; side; rows })
  in
  { seed; sessions; queries; batches }

let batch_of_rows rows =
  let b = Batch.create ~capacity:(max 1 (Array.length rows)) () in
  Array.iter (fun (x, y) -> Batch.push b ~x ~y) rows;
  b

type outcome = {
  results : (int * (float * float * float * float) array) array array;
  qids : int array array;
  latencies_ns : float array;
  overloads : (Frame.overload_source * int * float) list;
  server : Server.stats;
  server_metrics : Metrics.snapshot option;
  elapsed_s : float;
}

let percentile samples q =
  let n = Array.length samples in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy samples in
    Array.sort Float.compare sorted;
    let rank = int_of_float (Float.ceil (q /. 100.0 *. float_of_int n)) in
    sorted.(min (n - 1) (max 0 (rank - 1)))
  end

exception Bail of Client.error

let ok_or_bail = function Ok v -> v | Error e -> raise (Bail e)

let loopback port = Unix.ADDR_INET (Unix.inet_addr_loopback, port)

(* The server runs in a forked child, not a domain: two busy domains in
   one process interact badly with the stop-the-world GC handshake when
   cores are scarce (a domain parked in select stalls the other's minor
   collections for the full select timeout), and a separate process is
   the honest deployment shape anyway.  The child ships its ephemeral
   port up front and its final stats + metrics snapshot at shutdown
   over a pipe. *)
type server_handle = { pid : int; ic : in_channel }

let fork_server config =
  let r, w = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 -> (
      Unix.close r;
      let oc = Unix.out_channel_of_descr w in
      match Server.try_create ~config ~addr:(loopback 0) () with
      | Error e ->
          Marshal.to_channel oc (Error (Cq_util.Error.to_string e) : (int, string) result) [];
          flush oc;
          Unix._exit 1
      | Ok srv ->
          ignore (Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> Server.stop srv)));
          Marshal.to_channel oc (Ok (Server.port srv) : (int, string) result) [];
          flush oc;
          Server.serve srv;
          Marshal.to_channel oc (Server.stats srv) [];
          Marshal.to_channel oc (Metrics.snapshot ()) [];
          flush oc;
          Unix._exit 0)
  | pid -> (
      Unix.close w;
      let ic = Unix.in_channel_of_descr r in
      match (Marshal.from_channel ic : (int, string) result) with
      | Ok port -> Ok (port, { pid; ic })
      | Error msg ->
          close_in ic;
          ignore (Unix.waitpid [] pid);
          Error msg
      | exception (End_of_file | Failure _ | Sys_error _) ->
          (* Truncated handshake = the child died before writing its
             port; other exceptions are ours and must propagate. *)
          close_in ic;
          ignore (Unix.waitpid [] pid);
          Error "server child died before reporting its port")

(* [Unix.fork] refuses to run in a process that has ever created a
   domain, so callers that already spun up a parallel engine (the
   oracle's direct replay, earlier bench experiments) fall back to
   serving from a domain — slower on starved machines, identical
   behaviour. *)
type server_backend =
  | Forked of server_handle
  | Domained of Server.t * (Server.stats * Metrics.snapshot option) Domain.t

let spawn_server config =
  match fork_server config with
  | Ok (port, h) -> Ok (port, Forked h)
  | Error _ as e -> e
  | exception Failure _ -> (
      match Server.try_create ~config ~addr:(loopback 0) () with
      | Error e -> Error (Cq_util.Error.to_string e)
      | Ok srv ->
          let d =
            Domain.spawn (fun () ->
                Server.serve srv;
                (Server.stats srv, Some (Metrics.snapshot ())))
          in
          Ok (Server.port srv, Domained (srv, d)))

(* Stop the child and collect (stats, metrics snapshot); [None]s mean
   the child crashed instead of shutting down. *)
let stop_server h =
  (try Unix.kill h.pid Sys.sigterm with Unix.Unix_error (_, _, _) -> ());
  let fd = Unix.descr_of_in_channel h.ic in
  let readable =
    match Unix.select [ fd ] [] [] 10.0 with
    | [], _, _ -> false
    | _ -> true
    | exception Unix.Unix_error (_, _, _) -> false
  in
  let stats, snap =
    if not readable then (None, None)
    else
      (* A crashed child yields a truncated stream: [End_of_file] or a
         [Failure] from Marshal, or [Sys_error] if the pipe was torn
         down under us.  Anything else (e.g. a real [Unix_error]) is a
         driver bug and must propagate, not read as "child crashed". *)
      match (Marshal.from_channel h.ic : Server.stats) with
      | st -> (
          match (Marshal.from_channel h.ic : Metrics.snapshot) with
          | sn -> (Some st, Some sn)
          | exception (End_of_file | Failure _ | Sys_error _) -> (Some st, None))
      | exception (End_of_file | Failure _ | Sys_error _) -> (None, None)
  in
  if not readable then (try Unix.kill h.pid Sys.sigkill with Unix.Unix_error (_, _, _) -> ());
  close_in h.ic;
  (try ignore (Unix.waitpid [] h.pid) with Unix.Unix_error (_, _, _) -> ());
  (stats, snap)

let stop_backend = function
  | Forked h -> stop_server h
  | Domained (srv, d) ->
      Server.stop srv;
      let st, sn = Domain.join d in
      (Some st, sn)

let register_queries clients (w : workload) =
  Array.mapi
    (fun i specs ->
      let c = clients.(i) in
      Array.map
        (fun spec ->
          match spec with
          | Band { lo; hi } -> ok_or_bail (Client.register_band c ~lo ~hi)
          | Select { a_lo; a_hi; c_lo; c_hi } ->
              ok_or_bail (Client.register_select c ~a_lo ~a_hi ~c_lo ~c_hi))
        specs)
    w.queries

let run_workload ?(engine = Engine.Config.default) ?(session_queue = 4096) (w : workload) =
  let config = { Server.default_config with engine; session_queue } in
  match spawn_server config with
  | Error msg -> Error (Client.Io msg)
  | Ok (port, h) -> (
      let addr = loopback port in
      let clients = ref [] in
      let run () =
        let cs =
          Array.init w.sessions (fun _ ->
              let c = ok_or_bail (Client.connect ~recv_timeout:30.0 ~addr ()) in
              clients := c :: !clients;
              c)
        in
        let qids = register_queries cs w in
        let latencies = Array.make (Array.length w.batches) 0.0 in
        let t_start = Clock.monotonic () in
        let overloads = ref [] in
        Array.iteri
          (fun i b ->
            let c = cs.(b.owner) in
            let t0 = Clock.monotonic_ns () in
            (match ok_or_bail (Client.send_batch c ~side:b.side (batch_of_rows b.rows)) with
            | Client.Accepted _ -> ()
            | Client.Overloaded { source; dropped; retry_after_ms } ->
                overloads := (source, dropped, retry_after_ms) :: !overloads);
            let dt = Int64.to_float (Int64.sub (Clock.monotonic_ns ()) t0) in
            latencies.(i) <- dt;
            Metrics.observe m_rtt dt;
            (* Idle sessions still receive fan-out: drain their kernel
               buffers each round so no window ever fills (see
               {!Client.pump}). *)
            Array.iter (fun c -> ignore (Client.pump c)) cs)
          w.batches;
        let elapsed_s = Clock.monotonic () -. t_start in
        (* FLUSHED rides the result FIFO, so it is the drain barrier:
           once it arrives, every surviving RESULTS frame for batches
           acked above has been stashed. *)
        let results =
          Array.map
            (fun c ->
              ignore (ok_or_bail (Client.flush c));
              Array.iter (fun c' -> ignore (Client.pump c')) cs;
              Array.of_list (Client.take_results c))
            cs
        in
        Array.iter
          (fun c ->
            List.iter (fun o -> overloads := o :: !overloads) (Client.take_overloads c);
            ignore (Client.bye c))
          cs;
        (results, qids, latencies, List.rev !overloads, elapsed_s)
      in
      match run () with
      | results, qids, latencies_ns, overloads, elapsed_s -> (
          match stop_backend h with
          | Some server, server_metrics ->
              Ok { results; qids; latencies_ns; overloads; server; server_metrics; elapsed_s }
          | None, _ -> Error (Client.Io "server child crashed before reporting stats"))
      | exception Bail e ->
          List.iter Client.close !clients;
          ignore (stop_backend h);
          Error e)

(* ------------------------------ fuzzing -------------------------------- *)

type fuzz_outcome = {
  fz_conns : int;
  fz_typed_errors : int;
  fz_clean_eofs : int;
  fz_hangs : int;
  fz_server : Server.stats option;
}

let gen_garbage rng =
  let buf = Buffer.create 128 in
  (match Rng.int rng 6 with
  | 0 ->
      (* Pure noise. *)
      let len = 1 + Rng.int rng 64 in
      for _ = 1 to len do
        Buffer.add_uint8 buf (Rng.int rng 256)
      done
  | 1 ->
      (* A polite hello, then noise. *)
      Frame.encode_client buf (Frame.Hello { version = Frame.protocol_version });
      let len = 1 + Rng.int rng 64 in
      for _ = 1 to len do
        Buffer.add_uint8 buf (Rng.int rng 256)
      done
  | 2 ->
      (* Hostile length prefix on a real tag. *)
      Buffer.add_uint8 buf 0x05;
      Buffer.add_int32_be buf 0x7FFFFFFFl
  | 3 ->
      (* A valid frame cut off mid-body (EOF follows). *)
      let whole = Buffer.create 32 in
      Frame.encode_client whole (Frame.Register_band { lo = 1.0; hi = 2.0 });
      let img = Buffer.to_bytes whole in
      let keep = 1 + Rng.int rng (Bytes.length img - 1) in
      Buffer.add_subbytes buf img 0 keep
  | 4 ->
      (* Unknown tag with a plausible length. *)
      Buffer.add_uint8 buf (0x20 + Rng.int rng 0x60);
      let len = Rng.int rng 16 in
      Buffer.add_int32_be buf (Int32.of_int len);
      for _ = 1 to len do
        Buffer.add_uint8 buf (Rng.int rng 256)
      done
  | _ ->
      (* BATCH whose row count disagrees with its body length. *)
      Buffer.add_uint8 buf 0x05;
      Buffer.add_int32_be buf 13l;
      Buffer.add_uint8 buf 0;
      Buffer.add_int32_be buf 1000l;
      Buffer.add_int32_be buf 0l;
      Buffer.add_int32_be buf 0l);
  Buffer.to_bytes buf

let drive_garbage_conn rng addr =
  match
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.connect fd addr;
       Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0
     with e ->
       (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
       raise e);
    fd
  with
  | exception Unix.Unix_error (_, _, _) -> `Hang
  | fd ->
      let payload = gen_garbage rng in
      let verdict =
        match
          let off = ref 0 in
          while !off < Bytes.length payload do
            off := !off + Unix.write fd payload !off (Bytes.length payload - !off)
          done
        with
        | exception Unix.Unix_error (_, _, _) ->
            (* Server already slammed the door — that is a clean refusal. *)
            `Eof
        | () -> (
            (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error (_, _, _) -> ());
            let dec = Frame.Decoder.create () in
            let rbuf = Bytes.create 4096 in
            let rec read_replies saw_err =
              match Frame.Decoder.next_server dec with
              | Frame.Decoder.Frame (Frame.Err _) -> read_replies true
              | Frame.Decoder.Frame _ -> read_replies saw_err
              | Frame.Decoder.Broken _ -> `Hang
              | Frame.Decoder.Awaiting -> (
                  match Unix.read fd rbuf 0 (Bytes.length rbuf) with
                  | 0 -> if saw_err then `Typed else `Eof
                  | n ->
                      Frame.Decoder.feed dec rbuf ~off:0 ~len:n;
                      read_replies saw_err
                  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                      `Hang
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_replies saw_err
                  | exception Unix.Unix_error (_, _, _) ->
                      if saw_err then `Typed else `Eof)
            in
            read_replies false)
      in
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      verdict

let fuzz ?(conns = 64) ~seed () =
  let rng = Rng.create seed in
  match spawn_server Server.default_config with
  | Error msg ->
      Cq_util.Error.raise_
        (Cq_util.Error.Invalid_parameter
           { name = "fuzz server"; value = msg; expected = "a running loopback server" })
  | Ok (port, h) ->
      let addr = loopback port in
      let typed = ref 0 in
      let eofs = ref 0 in
      let hangs = ref 0 in
      for _ = 1 to conns do
        match drive_garbage_conn rng addr with
        | `Typed -> incr typed
        | `Eof -> incr eofs
        | `Hang -> incr hangs
      done;
      (* The server must still answer a healthy client after the abuse. *)
      (match Client.connect ~addr () with
      | Error _ -> incr hangs
      | Ok c -> (
          match Client.ping c ~token:42 with
          | Ok () -> ignore (Client.bye c)
          | Error _ ->
              Client.close c;
              incr hangs));
      let fz_server, _ = stop_backend h in
      {
        fz_conns = conns;
        fz_typed_errors = !typed;
        fz_clean_eofs = !eofs;
        fz_hangs = !hangs;
        fz_server;
      }
