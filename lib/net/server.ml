module Par = Cq_engine.Parallel
module Engine = Cq_engine.Engine
module I = Cq_interval.Interval
module Error = Cq_util.Error
module Metrics = Cq_obs.Metrics

let m_accepts = Metrics.counter "net.accepts"
let m_active = Metrics.gauge "net.sessions.active"
let m_frames_in = Metrics.counter "net.frames.in"
let m_decode_ns = Metrics.histogram "net.frame.decode_ns"
let m_batches_in = Metrics.counter "net.batches.in"
let m_rows_in = Metrics.counter "net.rows.in"
let m_results_delivered = Metrics.counter "net.results.delivered"
let m_results_dropped = Metrics.counter "net.results.dropped"
let m_overloads = Metrics.counter "net.overload.frames"
let m_proto_errors = Metrics.counter "net.proto_errors"

(* Fixed kernel socket-buffer size (bytes) for accepted connections;
   see the rationale at the [accept_loop] call site. *)
let sock_buf_bytes = 256 * 1024

(* A peer that vanishes mid-write must surface as EPIPE on that one
   socket — handled in [Session.write_step], which closes just that
   session — not as a process-killing SIGPIPE.  Set once, process-wide:
   every write in this module relies on it. *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ())

(* [Unix.select] cannot watch an fd >= FD_SETSIZE (1024 on Linux) — it
   raises EINVAL, which would crash the loop exactly as the server
   approaches capacity.  Budget the watchable range: stdio, the
   listener, the stop pipe, and transient accept fds leave room for at
   most [max_sessions_limit] concurrent sessions. *)
let fd_setsize = 1024
let max_sessions_limit = fd_setsize - 24

type config = {
  engine : Engine.Config.t;
  max_sessions : int;
  session_queue : int;
  max_frame : int;
}

let default_config =
  {
    engine = Engine.Config.default;
    max_sessions = max_sessions_limit;
    session_queue = 64;
    max_frame = Frame.default_max_frame;
  }

type sub_entry = { sub : Par.subscription; owner : int }

type t = {
  cfg : config;
  par : Par.t;
  listen_fd : Unix.file_descr;
  port : int;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  mutable stopping : bool;
  mutable torn_down : bool;
  sessions : (int, Session.t) Hashtbl.t;
  mutable next_sid : int;
  mutable next_qid : int;
  subs : (int, sub_entry) Hashtbl.t;
  (* Batches queued to the engine alias their decode buffers until the
     next flush barrier unseals them; hold the roots until then. *)
  mutable inflight : Cq_relation.Batch.t list;
  mutable dirty : bool;
  rbuf : Bytes.t;
  mutable accepts : int;
  mutable results_delivered : int;
  mutable results_dropped : int;
  mutable overloads_sent : int;
  mutable proto_errors : int;
  mutable flushes : int;
}

type stats = {
  net_accepts : int;
  net_active : int;
  net_results_delivered : int;
  net_results_dropped : int;
  net_overloads : int;
  net_proto_errors : int;
  net_flushes : int;
}

let stats t =
  {
    net_accepts = t.accepts;
    net_active = Hashtbl.length t.sessions;
    net_results_delivered = t.results_delivered;
    net_results_dropped = t.results_dropped;
    net_overloads = t.overloads_sent;
    net_proto_errors = t.proto_errors;
    net_flushes = t.flushes;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>accepts              %d@,active sessions      %d@,results delivered    %d@,results \
     dropped      %d@,overload frames      %d@,protocol errors      %d@,flushes              \
     %d@]"
    s.net_accepts s.net_active s.net_results_delivered s.net_results_dropped s.net_overloads
    s.net_proto_errors s.net_flushes

let port t = t.port
let active_sessions t = Hashtbl.length t.sessions

let try_create ?(config = default_config) ~addr () =
  let ( let* ) = Result.bind in
  Lazy.force ignore_sigpipe;
  let* _ = Error.at_least ~name:"max_sessions" ~min:1 config.max_sessions in
  let* _ =
    if config.max_sessions <= max_sessions_limit then Ok config.max_sessions
    else
      Error
        (Error.Invalid_parameter
           {
             name = "max_sessions";
             value = string_of_int config.max_sessions;
             expected =
               Printf.sprintf "an integer <= %d (select's FD_SETSIZE budget)"
                 max_sessions_limit;
           })
  in
  let* _ = Error.at_least ~name:"session_queue" ~min:1 config.session_queue in
  let* _ = Error.at_least ~name:"max_frame" ~min:64 config.max_frame in
  let* par = Par.try_create_cfg config.engine in
  match
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd addr;
       Unix.listen fd 128;
       Unix.set_nonblock fd
     with e ->
       (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
       raise e);
    fd
  with
  | exception Unix.Unix_error (err, fn, _) ->
      Par.shutdown par;
      Error
        (Error.Invalid_parameter
           {
             name = "addr";
             value = Printf.sprintf "%s: %s" fn (Unix.error_message err);
             expected = "a bindable TCP address";
           })
  | listen_fd ->
      let port =
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, p) -> p
        | Unix.ADDR_UNIX _ -> 0
      in
      let stop_r, stop_w = Unix.pipe ~cloexec:true () in
      Unix.set_nonblock stop_r;
      Ok
        {
          cfg = config;
          par;
          listen_fd;
          port;
          stop_r;
          stop_w;
          stopping = false;
          torn_down = false;
          sessions = Hashtbl.create 64;
          next_sid = 1;
          next_qid = 1;
          subs = Hashtbl.create 64;
          inflight = [];
          dirty = false;
          rbuf = Bytes.create 65536;
          accepts = 0;
          results_delivered = 0;
          results_dropped = 0;
          overloads_sent = 0;
          proto_errors = 0;
          flushes = 0;
        }

let create ?config ~addr () = Error.ok_exn (try_create ?config ~addr ())

(* ------------------------- session lifecycle --------------------------- *)

let close_session t s =
  if not (Session.closed s) then begin
    List.iter
      (fun qid ->
        match Hashtbl.find_opt t.subs qid with
        | Some { sub; _ } ->
            ignore (Par.unsubscribe t.par sub);
            Hashtbl.remove t.subs qid
        | None -> ())
      (Session.qids s);
    Session.close_fd s;
    Hashtbl.remove t.sessions (Session.sid s);
    Metrics.set m_active (float_of_int (Hashtbl.length t.sessions))
  end

let sorted_sessions t =
  let all = Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions [] in
  List.sort (fun a b -> Int.compare (Session.sid a) (Session.sid b)) all

let send_ctrl t s frame =
  if not (Session.enqueue_ctrl s frame) then
    (* Control FIFO overflow: the client floods requests without
       reading replies.  Cut it loose — that is the bound. *)
    close_session t s

let maybe_notify_overload t s =
  let dropped = Session.dropped_rows s in
  if dropped > 0 then
    let notice =
      Frame.Overload { source = Frame.Slow_session; dropped; retry_after_ms = 50.0 }
    in
    if Session.enqueue_ctrl s notice then begin
      Session.clear_dropped s;
      t.overloads_sent <- t.overloads_sent + 1;
      Metrics.incr m_overloads
    end

(* ------------------------------ accept --------------------------------- *)

let accept_loop t =
  let continue = ref true in
  while !continue do
    (* The listen fd is non-blocking: accept returns EAGAIN instead of
       waiting, and the loop exits on it. *)
    match (Unix.accept ~cloexec:true t.listen_fd [@cq.blocking_ok]) with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> continue := false
    | fd, _peer ->
        t.accepts <- t.accepts + 1;
        Metrics.incr m_accepts;
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error (_, _, _) -> ());
        (* Pin both kernel buffers.  Auto-tuned buffers are a trap for
           this traffic shape: a client that drains one result burst
           quickly gets its window auto-grown past what the kernel will
           actually allocate, and when it then idles between RPCs the
           in-window segments that no longer fit are silently dropped —
           on loopback that means retransmission timeouts with
           exponential backoff, i.e. multi-second stalls.  A fixed
           buffer keeps the advertised window honest, and a small send
           buffer keeps undelivered results in our bounded per-session
           queues — where the backpressure accounting lives — rather
           than invisibly in the kernel. *)
        (try
           Unix.setsockopt_int fd Unix.SO_SNDBUF sock_buf_bytes;
           Unix.setsockopt_int fd Unix.SO_RCVBUF sock_buf_bytes
         with Unix.Unix_error (_, _, _) -> ());
        if Hashtbl.length t.sessions >= t.cfg.max_sessions then begin
          (* Best-effort refusal; the fd is non-blocking, a lost byte
             just looks like a reset to the peer. *)
          let buf = Buffer.create 64 in
          Frame.encode_server buf
            (Frame.Err { code = Frame.Err_server_full; message = "session limit reached" });
          let b = Buffer.to_bytes buf in
          (try ignore (Unix.write fd b 0 (Bytes.length b) [@cq.blocking_ok])
           (* refusal fd is fresh and non-blocking: a full socket buffer
              errors out instead of stalling the loop *)
           with Unix.Unix_error (_, _, _) -> ());
          try Unix.close fd with Unix.Unix_error (_, _, _) -> ()
        end
        else begin
          let sid = t.next_sid in
          t.next_sid <- sid + 1;
          let s =
            Session.create ~sid ~fd ~queue_cap:t.cfg.session_queue
              ~max_frame:t.cfg.max_frame
          in
          Hashtbl.replace t.sessions sid s;
          Metrics.set m_active (float_of_int (Hashtbl.length t.sessions))
        end
  done

(* ---------------------------- frame handling --------------------------- *)

let finite_range lo hi = Float.is_finite lo && Float.is_finite hi && lo <= hi

let register t s ~subscribe =
  let qid = t.next_qid in
  t.next_qid <- qid + 1;
  match subscribe qid with
  | Ok sub ->
      Hashtbl.replace t.subs qid { sub; owner = Session.sid s };
      Session.add_qid s qid;
      send_ctrl t s (Frame.Registered { qid })
  | Error e ->
      t.next_qid <- qid;
      send_ctrl t s (Frame.Err { code = Frame.Err_engine; message = Error.to_string e })

(* A protocol violation (framing error or handshake breach) is fatal:
   one ERR {proto}, then the session drains and closes. *)
let proto_violation t s message =
  t.proto_errors <- t.proto_errors + 1;
  Metrics.incr m_proto_errors;
  send_ctrl t s (Frame.Err { code = Frame.Err_proto; message });
  Session.mark_closing s

let handle_frame t s (frame : Frame.client_frame) =
  match frame with
  | Frame.Hello { version } ->
      if Session.greeted s then
        proto_violation t s "HELLO must be the first frame of a session, exactly once"
      else if version = Frame.protocol_version then begin
        Session.mark_greeted s;
        send_ctrl t s
          (Frame.Welcome { version = Frame.protocol_version; session_id = Session.sid s })
      end
      else
        proto_violation t s
          (Printf.sprintf "protocol version %d unsupported (server speaks %d)" version
             Frame.protocol_version)
  | _ when not (Session.greeted s) ->
      (* Version negotiation cannot be skipped: no other frame means
         anything before the handshake pins what we are speaking. *)
      proto_violation t s "expected HELLO as the first frame"
  | Frame.Register_band { lo; hi } ->
      if not (finite_range lo hi) then
        send_ctrl t s
          (Frame.Err { code = Frame.Err_bad_request; message = "band range must be finite with lo <= hi" })
      else
        register t s ~subscribe:(fun qid ->
            Par.try_subscribe_band t.par ~range:(I.make lo hi) (fun r sv ->
                Session.record_result s ~qid ~ra:r.Cq_relation.Tuple.a ~rb:r.Cq_relation.Tuple.b
                  ~sb:sv.Cq_relation.Tuple.b ~sc:sv.Cq_relation.Tuple.c))
  | Frame.Register_select { a_lo; a_hi; c_lo; c_hi } ->
      if not (finite_range a_lo a_hi && finite_range c_lo c_hi) then
        send_ctrl t s
          (Frame.Err
             { code = Frame.Err_bad_request; message = "select ranges must be finite with lo <= hi" })
      else
        register t s ~subscribe:(fun qid ->
            Par.try_subscribe_select t.par ~range_a:(I.make a_lo a_hi)
              ~range_c:(I.make c_lo c_hi) (fun r sv ->
                Session.record_result s ~qid ~ra:r.Cq_relation.Tuple.a ~rb:r.Cq_relation.Tuple.b
                  ~sb:sv.Cq_relation.Tuple.b ~sc:sv.Cq_relation.Tuple.c))
  | Frame.Drop { qid } -> (
      match Hashtbl.find_opt t.subs qid with
      | Some { sub; owner } when owner = Session.sid s ->
          ignore (Par.unsubscribe t.par sub);
          Hashtbl.remove t.subs qid;
          Session.remove_qid s qid;
          send_ctrl t s (Frame.Dropped { qid })
      | Some _ | None ->
          send_ctrl t s
            (Frame.Err
               { code = Frame.Err_bad_request; message = Printf.sprintf "q%d is not yours to drop" qid }))
  | Frame.Batch { side; rows } ->
      let n = Cq_relation.Batch.length rows in
      Metrics.incr m_batches_in;
      if n = 0 then send_ctrl t s (Frame.Batch_ok { rows = 0 })
      else begin
        let engine_side = match side with Frame.R -> Par.R | Frame.S -> Par.S in
        match Par.try_ingest_batch_flat t.par engine_side rows with
        | Ok () ->
            t.dirty <- true;
            t.inflight <- rows :: t.inflight;
            Metrics.add m_rows_in n;
            send_ctrl t s (Frame.Batch_ok { rows = n })
        | Error (Error.Overload { retry_after_ms; _ }) ->
            t.overloads_sent <- t.overloads_sent + 1;
            Metrics.incr m_overloads;
            send_ctrl t s
              (Frame.Overload { source = Frame.Engine_admission; dropped = n; retry_after_ms })
        | Error e ->
            send_ctrl t s (Frame.Err { code = Frame.Err_engine; message = Error.to_string e })
      end
  | Frame.Flush -> Session.request_flush s
  | Frame.Ping { token } -> send_ctrl t s (Frame.Pong { token })
  | Frame.Bye ->
      send_ctrl t s Frame.Goodbye;
      Session.mark_closing s

let handle_proto_error t s e = proto_violation t s (Frame.proto_error_to_string e)

let handle_readable t s =
  (* Session fds are non-blocking (set at accept): read returns EAGAIN
     rather than waiting for bytes. *)
  match (Unix.read (Session.fd s) t.rbuf 0 (Bytes.length t.rbuf) [@cq.blocking_ok]) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> close_session t s
  | 0 -> (
      match Frame.Decoder.at_eof (Session.decoder s) with
      | Ok () -> close_session t s
      | Error _ ->
          t.proto_errors <- t.proto_errors + 1;
          Metrics.incr m_proto_errors;
          close_session t s)
  | n ->
      Frame.Decoder.feed (Session.decoder s) t.rbuf ~off:0 ~len:n;
      let continue = ref true in
      while !continue && not (Session.closing s || Session.closed s) do
        let t0 = if Metrics.enabled () then Cq_util.Clock.monotonic_ns () else 0L in
        match Frame.Decoder.next_client (Session.decoder s) with
        | Frame.Decoder.Frame f ->
            if Metrics.enabled () then
              Metrics.observe m_decode_ns
                (Int64.to_float (Int64.sub (Cq_util.Clock.monotonic_ns ()) t0));
            Session.count_frame_in s;
            Metrics.incr m_frames_in;
            handle_frame t s f
        | Frame.Decoder.Awaiting -> continue := false
        | Frame.Decoder.Broken e ->
            handle_proto_error t s e;
            continue := false
      done

(* ------------------------------- flush --------------------------------- *)

let do_flush t =
  ignore (Par.flush t.par);
  t.flushes <- t.flushes + 1;
  (* The barrier unsealed the decode-buffer roots; release them. *)
  t.inflight <- [];
  t.dirty <- false;
  List.iter
    (fun s ->
      if not (Session.closed s) then begin
        let delivered = ref 0 in
        List.iter
          (fun (qid, rows) ->
            let n = Array.length rows in
            if Session.enqueue_result_frame s (Frame.Results { qid; rows }) then begin
              delivered := !delivered + n;
              t.results_delivered <- t.results_delivered + n;
              Metrics.add m_results_delivered n;
              Session.count_results_sent s n
            end
            else begin
              Session.note_dropped s n;
              t.results_dropped <- t.results_dropped + n;
              Metrics.add m_results_dropped n
            end)
          (Session.take_pending s);
        maybe_notify_overload t s;
        if Session.flush_requested s then begin
          Session.clear_flush_request s;
          Session.set_flush_ack s !delivered
        end;
        ignore (Session.try_send_flush_ack s)
      end)
    (sorted_sessions t)

(* ------------------------------- the tick ------------------------------ *)

let step t ~timeout =
  let sessions = sorted_sessions t in
  let reads =
    t.stop_r
    :: (if t.stopping || Hashtbl.length t.sessions >= t.cfg.max_sessions + 8 then [] else [ t.listen_fd ])
    @ List.filter_map
        (fun s ->
          if Session.closing s || Session.closed s || Session.throttled s then None
          else Some (Session.fd s))
        sessions
  in
  let writes = List.filter_map (fun s -> if Session.wants_write s then Some (Session.fd s) else None) sessions in
  let readable, _writable, _ =
    (* select is the event loop's one sanctioned wait: bounded by
       [timeout] and woken early by the stop pipe. *)
    match (Unix.select reads writes [] timeout [@cq.blocking_ok]) with
    | r -> r
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
  in
  let handled = ref 0 in
  if List.memq t.stop_r readable then begin
    let b = Bytes.create 16 in
    (try
       (* stop_r is the non-blocking read end of the stop pipe: the
          drain ends on EAGAIN, not on quiescence. *)
       while (Unix.read t.stop_r b 0 16 [@cq.blocking_ok]) > 0 do
         ()
       done
     with Unix.Unix_error (_, _, _) -> ());
    t.stopping <- true
  end;
  if List.memq t.listen_fd readable then accept_loop t;
  List.iter
    (fun s ->
      if (not (Session.closed s)) && List.memq (Session.fd s) readable then begin
        let before = Session.frames_in s in
        handle_readable t s;
        handled := !handled + (Session.frames_in s - before)
      end)
    sessions;
  if t.dirty || List.exists (fun s -> Session.flush_requested s) (sorted_sessions t) then
    do_flush t;
  (* Opportunistic writes: sockets are non-blocking, so attempting
     every session with queued output costs at most one EWOULDBLOCK;
     the select write-set exists to wake the loop, not to gate this. *)
  List.iter
    (fun s ->
      if not (Session.closed s) then begin
        (if Session.wants_write s then
           match Session.write_step s with
           | `Gone -> close_session t s
           | `Blocked | `Drained -> ());
        if not (Session.closed s) then begin
          ignore (Session.try_send_flush_ack s);
          maybe_notify_overload t s;
          if Session.closing s && not (Session.wants_write s) then close_session t s
        end
      end)
    (sorted_sessions t);
  !handled

let debug_dump t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "sessions=%d dirty=%b\n" (Hashtbl.length t.sessions) t.dirty);
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf
           "  sid=%d throttled=%b out=%d wants_write=%b closing=%b flush_req=%b ack_due=%b dropped=%d results_sent=%d\n"
           (Session.sid s) (Session.throttled s) (Session.out_depth s)
           (Session.wants_write s) (Session.closing s) (Session.flush_requested s)
           (Session.flush_ack_due s) (Session.dropped_rows s) (Session.results_sent s)))
    (sorted_sessions t);
  Buffer.contents b

let stop t =
  (* One byte into the non-blocking stop pipe; a full pipe already
     guarantees a pending wakeup. *)
  try ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1 [@cq.blocking_ok])
  with Unix.Unix_error (_, _, _) -> ()

let teardown t =
  if not t.torn_down then begin
    t.torn_down <- true;
    List.iter (fun s -> Session.close_fd s) (sorted_sessions t);
    Hashtbl.reset t.sessions;
    Hashtbl.reset t.subs;
    (try Unix.close t.listen_fd with Unix.Unix_error (_, _, _) -> ());
    (try Unix.close t.stop_r with Unix.Unix_error (_, _, _) -> ());
    (try Unix.close t.stop_w with Unix.Unix_error (_, _, _) -> ());
    Par.shutdown t.par
  end

let serve t =
  while not t.stopping do
    ignore (step t ~timeout:0.25)
  done;
  teardown t

let with_server ?config ~addr f =
  match try_create ?config ~addr () with
  | Error e -> Error.raise_ e
  | Ok t -> Fun.protect ~finally:(fun () -> teardown t) (fun () -> f t)
