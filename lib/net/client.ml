type t = {
  fd : Unix.file_descr;
  dec : Frame.Decoder.t;
  enc : Buffer.t;
  rbuf : Bytes.t;
  pushed : Frame.server_frame Queue.t;
  mutable session_id : int;
  mutable closed : bool;
}

type error =
  | Timeout
  | Closed_by_server
  | Protocol of Frame.proto_error
  | Server_error of { code : Frame.err_code; message : string }
  | Unexpected of string
  | Io of string

let error_to_string = function
  | Timeout -> "timeout waiting for server reply"
  | Closed_by_server -> "server closed the connection"
  | Protocol e -> Printf.sprintf "protocol error: %s" (Frame.proto_error_to_string e)
  | Server_error { code; message } ->
      Printf.sprintf "server error %d: %s" (Frame.err_code_to_int code) message
  | Unexpected what -> Printf.sprintf "unexpected reply: %s" what
  | Io msg -> Printf.sprintf "io error: %s" msg

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()
  end

let session_id t = t.session_id

let write_all fd b =
  let len = Bytes.length b in
  let off = ref 0 in
  let err = ref None in
  while !off < len && Option.is_none !err do
    match Unix.write fd b !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (e, fn, _) ->
        err := Some (Io (Printf.sprintf "%s: %s" fn (Unix.error_message e)))
  done;
  match !err with Some e -> Error e | None -> Ok ()

let send t frame =
  if t.closed then Error (Io "client closed")
  else begin
    Buffer.clear t.enc;
    Frame.encode_client t.enc frame;
    write_all t.fd (Buffer.to_bytes t.enc)
  end

(* Read the next frame off the socket, ignoring the stash. *)
let rec read_frame t =
  match Frame.Decoder.next_server t.dec with
  | Frame.Decoder.Frame f -> Ok f
  | Frame.Decoder.Broken e -> Error (Protocol e)
  | Frame.Decoder.Awaiting -> (
      match Unix.read t.fd t.rbuf 0 (Bytes.length t.rbuf) with
      | 0 -> (
          match Frame.Decoder.at_eof t.dec with
          | Ok () -> Error Closed_by_server
          | Error e -> Error (Protocol e))
      | n ->
          Frame.Decoder.feed t.dec t.rbuf ~off:0 ~len:n;
          read_frame t
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> Error Timeout
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_frame t
      | exception Unix.Unix_error (e, fn, _) ->
          Error (Io (Printf.sprintf "%s: %s" fn (Unix.error_message e))))

let recv t =
  if t.closed then Error (Io "client closed")
  else
    match Queue.take_opt t.pushed with Some f -> Ok f | None -> read_frame t

(* Wait for the reply [terminal] recognises, stashing asynchronous
   pushes that arrive first. *)
let rec rpc_wait t ~terminal =
  match read_frame t with
  | Error _ as e -> e
  | Ok f -> (
      match terminal f with
      | Some r -> r
      | None -> (
          match f with
          | Frame.Results _ | Frame.Overload _ ->
              Queue.add f t.pushed;
              rpc_wait t ~terminal
          | Frame.Err { code; message } -> Error (Server_error { code; message })
          | other ->
              Error
                (Unexpected (Format.asprintf "%a" Frame.pp_server_frame other))))

let rpc t frame ~terminal =
  match send t frame with Error _ as e -> e | Ok () -> rpc_wait t ~terminal

(* Same rationale as the server's: a vanished peer must cost an EPIPE
   on this socket, not a process-killing SIGPIPE. *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ())

let connect ?(recv_timeout = 5.0) ?(max_frame = Frame.default_max_frame) ~addr () =
  Lazy.force ignore_sigpipe;
  match
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       (* Fixed buffers, set before connect so the negotiated window
          can never outgrow them: auto-tuning grows the receive window
          of a bursty reader past what the kernel will allocate, and
          the overflow segments are dropped — on loopback that turns
          into RTO-backoff stalls of several seconds. *)
       (try
          Unix.setsockopt_int fd Unix.SO_RCVBUF (256 * 1024);
          Unix.setsockopt_int fd Unix.SO_SNDBUF (256 * 1024)
        with Unix.Unix_error (_, _, _) -> ());
       Unix.connect fd addr;
       (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error (_, _, _) -> ());
       Unix.setsockopt_float fd Unix.SO_RCVTIMEO recv_timeout
     with e ->
       (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
       raise e);
    fd
  with
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Io (Printf.sprintf "%s: %s" fn (Unix.error_message e)))
  | fd -> (
      let t =
        {
          fd;
          dec = Frame.Decoder.create ~max_frame ();
          enc = Buffer.create 1024;
          rbuf = Bytes.create 65536;
          pushed = Queue.create ();
          session_id = 0;
          closed = false;
        }
      in
      match
        rpc t
          (Frame.Hello { version = Frame.protocol_version })
          ~terminal:(function
            | Frame.Welcome { session_id; _ } -> Some (Ok session_id)
            | _ -> None)
      with
      | Ok sid ->
          t.session_id <- sid;
          Ok t
      | Error e ->
          close t;
          Error e)

let register_band t ~lo ~hi =
  rpc t
    (Frame.Register_band { lo; hi })
    ~terminal:(function Frame.Registered { qid } -> Some (Ok qid) | _ -> None)

let register_select t ~a_lo ~a_hi ~c_lo ~c_hi =
  rpc t
    (Frame.Register_select { a_lo; a_hi; c_lo; c_hi })
    ~terminal:(function Frame.Registered { qid } -> Some (Ok qid) | _ -> None)

let drop t ~qid =
  rpc t (Frame.Drop { qid })
    ~terminal:(function
      | Frame.Dropped { qid = q } when q = qid -> Some (Ok ()) | _ -> None)

type batch_reply =
  | Accepted of int
  | Overloaded of { source : Frame.overload_source; dropped : int; retry_after_ms : float }

let send_batch t ~side rows =
  rpc t
    (Frame.Batch { side; rows })
    ~terminal:(function
      | Frame.Batch_ok { rows } -> Some (Ok (Accepted rows))
      | Frame.Overload { source = Frame.Engine_admission as source; dropped; retry_after_ms }
        ->
          Some (Ok (Overloaded { source; dropped; retry_after_ms }))
      | _ -> None)

let flush t =
  rpc t Frame.Flush
    ~terminal:(function Frame.Flushed { results } -> Some (Ok results) | _ -> None)

let ping t ~token =
  rpc t (Frame.Ping { token })
    ~terminal:(function
      | Frame.Pong { token = tk } when tk = token -> Some (Ok ()) | _ -> None)

let bye t =
  let r =
    rpc t Frame.Bye ~terminal:(function Frame.Goodbye -> Some (Ok ()) | _ -> None)
  in
  close t;
  r

(* Move whatever the kernel has buffered into the decoder without
   consuming any frame: bytes wait there until the next [recv]/RPC
   reads them in order.  Keeping the kernel receive buffer drained
   matters more than it looks — an idle client that lets it fill makes
   the peer's TCP drop in-window segments once the advertised window
   outruns what the kernel will actually allocate (skb overhead), and
   the retransmit then sits out an exponentially backed-off RTO:
   multi-second stalls on an idle loopback. *)
let pump t =
  if t.closed then Error (Io "client closed")
  else begin
    let err = ref None in
    (try
       Unix.set_nonblock t.fd;
       let continue = ref true in
       while !continue do
         match Unix.read t.fd t.rbuf 0 (Bytes.length t.rbuf) with
         | 0 -> continue := false
         | n -> Frame.Decoder.feed t.dec t.rbuf ~off:0 ~len:n
         | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
             continue := false
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         | exception Unix.Unix_error (e, fn, _) ->
             err := Some (Io (Printf.sprintf "%s: %s" fn (Unix.error_message e)));
             continue := false
       done
     with e ->
       (try Unix.clear_nonblock t.fd with Unix.Unix_error (_, _, _) -> ());
       raise e);
    (try Unix.clear_nonblock t.fd with Unix.Unix_error (_, _, _) -> ());
    match !err with Some e -> Error e | None -> Ok ()
  end

let take_results t =
  let acc = ref [] in
  let keep = Queue.create () in
  Queue.iter
    (fun f ->
      match f with
      | Frame.Results { qid; rows } -> acc := (qid, rows) :: !acc
      | other -> Queue.add other keep)
    t.pushed;
  Queue.clear t.pushed;
  Queue.transfer keep t.pushed;
  List.rev !acc

let take_overloads t =
  let acc = ref [] in
  let keep = Queue.create () in
  Queue.iter
    (fun f ->
      match f with
      | Frame.Overload { source; dropped; retry_after_ms } ->
          acc := (source, dropped, retry_after_ms) :: !acc
      | other -> Queue.add other keep)
    t.pushed;
  Queue.clear t.pushed;
  Queue.transfer keep t.pushed;
  List.rev !acc
