(** Group processing of continuous band joins — Section 3.1.

    All strategies share one contract: given the current S table and a
    registered set of band-join queries, [process_r] receives an
    incoming R-tuple and reports every (query, S-tuple) pair the tuple
    produces, through a callback.  Worst-case costs per event
    (Theorem 3), with n queries, τ stabbing groups, m = |S|, k output:

    - {!Qouter}   (BJ-QOuter): O(n log m + k)
    - {!Douter}   (BJ-DOuter): O(m log n + k)
    - {!Merge}    (BJ-MJ):     O(m + n + k)
    - {!Ssi}      (BJ-SSI):    O(τ log m + k)
    - {!Ssi_dynamic}: BJ-SSI over a dynamically maintained
      (1+ε)-approximate stabbing partition (Appendix B, the
      configuration measured in Figure 11)
    - {!Hotspot}: BJ-SSI restricted to α-hotspots, per-query index
      probing (BJ-QOuter style) on the scattered remainder — the
      SSI + hotspot-tracking combination of Section 3.1's closing
      remark, with the traditional method that is cheapest when the
      scattered set is small. *)

type sink = Band_query.t -> Cq_relation.Tuple.s -> unit
(** Called once per new result tuple (the R side is the event itself). *)

module type STRATEGY = sig
  type t

  val name : string

  val create : Cq_relation.Table.s_table -> Band_query.t array -> t
  (** The S table is shared, not copied: strategies see later S-side
      updates made through the table's own interface. *)

  val process_r : t -> Cq_relation.Tuple.r -> sink -> unit

  val affected : t -> Cq_relation.Tuple.r -> (Band_query.t -> unit) -> unit
  (** Identification only (the paper's STEP 1): report each query the
      event affects, exactly once, without enumerating its result
      tuples.  This is what the paper's throughput numbers measure —
      "we excluded the output time from measurement". *)

  val insert_query : t -> Band_query.t -> unit
  val delete_query : t -> Band_query.t -> bool
  val query_count : t -> int
end

module Qouter : STRATEGY
module Douter : STRATEGY
module Merge : STRATEGY
module Ssi : STRATEGY

module Shared : STRATEGY
(** NiagaraCQ-style sharing of {e identical} join conditions (the
    Section 5 related-work contrast): queries binned by exact window,
    one probe per distinct window.  Degenerates to {!Qouter} when all
    windows differ — the limitation SSI lifts by sharing across merely
    {e overlapping} windows. *)

module Ssi_dynamic : sig
  include STRATEGY

  val create_eps : epsilon:float -> Cq_relation.Table.s_table -> Band_query.t array -> t
  (** Like [create] but choosing the partition slack (the paper uses
      ε = 3 in the Figure 11 maintenance experiment, the default). *)

  val num_groups : t -> int
  val reconstructions : t -> int
end

module Hotspot : sig
  include STRATEGY

  val create_alpha :
    alpha:float -> ?seed:int -> Cq_relation.Table.s_table -> Band_query.t array -> t
  (** [seed] drives the tracker's scattered-partition treap priorities;
      fixing it makes a run reproducible bit-for-bit. *)

  val num_hotspots : t -> int
  val coverage : t -> float

  val check_invariants : t -> unit
  (** Tracker invariants (I1)–(I3) plus aux-structure/tracker sync.
      @raise Failure on violation. *)
end

val reference : Cq_relation.Table.s_table -> Band_query.t array -> Cq_relation.Tuple.r ->
  (int * int) list
(** Brute-force ground truth: sorted [(qid, sid)] result pairs for one
    event — the oracle the test suite holds every strategy to. *)
