(** Group processing of continuous band joins — Section 3.1.

    All strategies share one contract: given the current S table and a
    registered set of band-join queries, [process_r] receives an
    incoming R-tuple and reports every (query, S-tuple) pair the tuple
    produces, through a callback.  Worst-case costs per event
    (Theorem 3), with n queries, τ stabbing groups, m = |S|, k output:

    - {!Qouter}   (BJ-QOuter): O(n log m + k)
    - {!Douter}   (BJ-DOuter): O(m log n + k)
    - {!Merge}    (BJ-MJ):     O(m + n + k)
    - {!Ssi}      (BJ-SSI):    O(τ log m + k)
    - {!Ssi_dynamic}: BJ-SSI over a dynamically maintained
      (1+ε)-approximate stabbing partition (Appendix B, the
      configuration measured in Figure 11)
    - {!Hotspot}: BJ-SSI restricted to α-hotspots, per-query index
      probing (BJ-QOuter style) on the scattered remainder — the
      SSI + hotspot-tracking combination of Section 3.1's closing
      remark, with the traditional method that is cheapest when the
      scattered set is small.

    {!Ssi} and {!Hotspot} are instantiations of the shared
    {!Hotspot_core.Processor.Make} core with this module's band-axis
    group walk; {!processor} selects one per strategy × stabbing
    backend. *)

type sink = Band_query.t -> Cq_relation.Tuple.s -> unit
(** Called once per new result tuple (the R side is the event itself). *)

module type STRATEGY =
  Hotspot_core.Processor.STRATEGY
    with type query := Band_query.t
     and type event := Cq_relation.Tuple.r
     and type store := Cq_relation.Table.s_table
     and type result := Cq_relation.Tuple.s

module type PROCESSOR =
  Hotspot_core.Processor.PROCESSOR
    with type query = Band_query.t
     and type event = Cq_relation.Tuple.r
     and type store = Cq_relation.Table.s_table
     and type result = Cq_relation.Tuple.s

module Qouter : STRATEGY
module Douter : STRATEGY
module Merge : STRATEGY

module Ssi : sig
  include PROCESSOR

  val num_groups : t -> int
  (** τ(I) of the current query set. *)
end

module Shared : STRATEGY
(** NiagaraCQ-style sharing of {e identical} join conditions (the
    Section 5 related-work contrast): queries binned by exact window,
    one probe per distinct window.  Degenerates to {!Qouter} when all
    windows differ — the limitation SSI lifts by sharing across merely
    {e overlapping} windows. *)

module Ssi_dynamic : sig
  include STRATEGY

  val create_eps : epsilon:float -> Cq_relation.Table.s_table -> Band_query.t array -> t
  (** Like [create] but choosing the partition slack (the paper uses
      ε = 3 in the Figure 11 maintenance experiment, the default). *)

  val num_groups : t -> int
  val reconstructions : t -> int
end

module Hotspot : sig
  include PROCESSOR

  val create_alpha :
    alpha:float -> ?seed:int -> Cq_relation.Table.s_table -> Band_query.t array -> t
  (** [seed] drives the tracker's scattered-partition treap priorities;
      fixing it makes a run reproducible bit-for-bit. *)
end

val processor :
  Hotspot_core.Processor.strategy ->
  Cq_index.Stab_backend.kind ->
  (module PROCESSOR)
(** The {!Hotspot} or {!Ssi} processor backed by the chosen stabbing
    index ({!Hotspot} and {!Ssi} themselves are the interval-tree
    instances). *)

val reference : Cq_relation.Table.s_table -> Band_query.t array -> Cq_relation.Tuple.r ->
  (int * int) list
(** Brute-force ground truth: sorted [(qid, sid)] result pairs for one
    event — the oracle the test suite holds every strategy to. *)
