(** Group processing of continuous equality joins with local
    selections — Section 3.2.

    Worst-case costs per incoming R-tuple (Theorem 4), with n queries,
    τ stabbing groups on the rangeC projections, m = |S|, m' joining
    S-tuples, n' queries whose R.A selection the event satisfies,
    g(n) the cost of a 2-D stabbing query, k output:

    - {!Naive}:        O(log m + n log m' + k) — join, then test every query
    - {!Join_first}    (SJ-J): O(log m + m'·g(n) + k)
    - {!Select_first}  (SJ-S): O(log n + n' log m + k)
    - {!Ssi}           (SJ-SSI): O(τ (log m + g(n)) + k)
    - {!Hotspot}: SJ-SSI on α-hotspots + SJ-SelectFirst on scattered
      queries — Figure 9's HOTSPOT-BASED configuration (its
      TRADITIONAL opponent is {!Select_first}).

    {!Ssi} and {!Hotspot} are instantiations of the shared
    {!Hotspot_core.Processor.Make} core with this module's R-tree
    group probe; {!processor} selects one per strategy × stabbing
    backend. *)

type sink = Select_query.t -> Cq_relation.Tuple.s -> unit

module type STRATEGY =
  Hotspot_core.Processor.STRATEGY
    with type query := Select_query.t
     and type event := Cq_relation.Tuple.r
     and type store := Cq_relation.Table.s_table
     and type result := Cq_relation.Tuple.s

module type PROCESSOR =
  Hotspot_core.Processor.PROCESSOR
    with type query = Select_query.t
     and type event = Cq_relation.Tuple.r
     and type store = Cq_relation.Table.s_table
     and type result = Cq_relation.Tuple.s

module Naive : STRATEGY
module Join_first : STRATEGY
module Select_first : STRATEGY

module Ssi : sig
  include PROCESSOR

  val num_groups : t -> int
  (** τ(I) of the current query set. *)
end

module Hotspot : sig
  include PROCESSOR

  val create_alpha :
    alpha:float -> ?seed:int -> Cq_relation.Table.s_table -> Select_query.t array -> t
  (** [seed] drives the tracker's scattered-partition treap priorities;
      fixing it makes a run reproducible bit-for-bit. *)
end

val processor :
  Hotspot_core.Processor.strategy ->
  Cq_index.Stab_backend.kind ->
  (module PROCESSOR)
(** The {!Hotspot} or {!Ssi} processor backed by the chosen stabbing
    index ({!Hotspot} and {!Ssi} themselves are the interval-tree
    instances). *)

module Adaptive : sig
  include STRATEGY

  type choice = Use_select_first | Use_ssi

  val create_tuned : threshold:float -> Cq_relation.Table.s_table -> Select_query.t array -> t
  (** [threshold] scales the dispatch rule (default 2.0): SJ-SelectFirst
      is chosen when the estimated n' is below [threshold * tau]. *)

  val choose : t -> Cq_relation.Tuple.r -> choice
  (** The decision the dispatcher would make for this event. *)

  val decisions : t -> int * int
  (** (events routed to SJ-S, events routed to SJ-SSI) so far. *)
end
(** Section 6's cost-based optimization sketch, made concrete: every
    incoming event is routed to SJ-SelectFirst or SJ-SSI by comparing
    the estimated number of satisfied R.A selections n' — read off an
    SSI histogram over the rangeA intervals (Section 3.3's own
    selectivity estimator) — against the stabbing-group count τ, the
    two terms that dominate Theorem 4's bounds.  "Every incoming data
    update event can potentially be processed using a different
    strategy." *)

val reference :
  Cq_relation.Table.s_table -> Select_query.t array -> Cq_relation.Tuple.r ->
  (int * int) list
(** Brute-force ground truth: sorted [(qid, sid)] pairs for one event. *)
