(** Group processing of continuous equality joins with local
    selections — Section 3.2.

    Worst-case costs per incoming R-tuple (Theorem 4), with n queries,
    τ stabbing groups on the rangeC projections, m = |S|, m' joining
    S-tuples, n' queries whose R.A selection the event satisfies,
    g(n) the cost of a 2-D stabbing query, k output:

    - {!Naive}:        O(log m + n log m' + k) — join, then test every query
    - {!Join_first}    (SJ-J): O(log m + m'·g(n) + k)
    - {!Select_first}  (SJ-S): O(log n + n' log m + k)
    - {!Ssi}           (SJ-SSI): O(τ (log m + g(n)) + k)
    - {!Hotspot}: SJ-SSI on α-hotspots + SJ-SelectFirst on scattered
      queries — Figure 9's HOTSPOT-BASED configuration (its
      TRADITIONAL opponent is {!Select_first}). *)

type sink = Select_query.t -> Cq_relation.Tuple.s -> unit

module type STRATEGY = sig
  type t

  val name : string
  val create : Cq_relation.Table.s_table -> Select_query.t array -> t
  val process_r : t -> Cq_relation.Tuple.r -> sink -> unit

  val affected : t -> Cq_relation.Tuple.r -> (Select_query.t -> unit) -> unit
  (** Identification only (the paper's STEP 1): report each affected
      query exactly once without enumerating its result tuples — the
      quantity the paper's throughput measurements time ("we excluded
      the output time"). *)

  val insert_query : t -> Select_query.t -> unit
  val delete_query : t -> Select_query.t -> bool
  val query_count : t -> int
end

module Naive : STRATEGY
module Join_first : STRATEGY
module Select_first : STRATEGY
module Ssi : STRATEGY

module Hotspot : sig
  include STRATEGY

  val create_alpha :
    alpha:float -> ?seed:int -> Cq_relation.Table.s_table -> Select_query.t array -> t
  (** [seed] drives the tracker's scattered-partition treap priorities;
      fixing it makes a run reproducible bit-for-bit. *)

  val num_hotspots : t -> int
  val coverage : t -> float

  val check_invariants : t -> unit
  (** Tracker invariants (I1)–(I3) plus aux-structure/tracker sync.
      @raise Failure on violation. *)
end

module Adaptive : sig
  include STRATEGY

  type choice = Use_select_first | Use_ssi

  val create_tuned : threshold:float -> Cq_relation.Table.s_table -> Select_query.t array -> t
  (** [threshold] scales the dispatch rule (default 2.0): SJ-SelectFirst
      is chosen when the estimated n' is below [threshold * tau]. *)

  val choose : t -> Cq_relation.Tuple.r -> choice
  (** The decision the dispatcher would make for this event. *)

  val decisions : t -> int * int
  (** (events routed to SJ-S, events routed to SJ-SSI) so far. *)
end
(** Section 6's cost-based optimization sketch, made concrete: every
    incoming event is routed to SJ-SelectFirst or SJ-SSI by comparing
    the estimated number of satisfied R.A selections n' — read off an
    SSI histogram over the rangeA intervals (Section 3.3's own
    selectivity estimator) — against the stabbing-group count τ, the
    two terms that dominate Theorem 4's bounds.  "Every incoming data
    update event can potentially be processed using a different
    strategy." *)

val reference :
  Cq_relation.Table.s_table -> Select_query.t array -> Cq_relation.Tuple.r ->
  (int * int) list
(** Brute-force ground truth: sorted [(qid, sid)] pairs for one event. *)
