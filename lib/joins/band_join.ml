module I = Cq_interval.Interval
module Table = Cq_relation.Table
module Tuple = Cq_relation.Tuple
module Fbt = Table.Fbt
module Itree = Cq_index.Interval_tree
module Vec = Cq_util.Vec

type sink = Band_query.t -> Tuple.s -> unit

module type STRATEGY = sig
  type t

  val name : string
  val create : Table.s_table -> Band_query.t array -> t
  val process_r : t -> Tuple.r -> sink -> unit

  val affected : t -> Tuple.r -> (Band_query.t -> unit) -> unit

  val insert_query : t -> Band_query.t -> unit
  val delete_query : t -> Band_query.t -> bool
  val query_count : t -> int
end

(* Per-event deduplication of affected queries: a query containing both
   boundary tuples is reachable from both scans. *)
type dedupe = {
  seen : (int, int) Hashtbl.t;
  mutable event : int;
}

let new_dedupe () = { seen = Hashtbl.create 256; event = 0 }

let fresh_event d =
  d.event <- d.event + 1;
  d.event

let mark d q =
  let qid = q.Band_query.qid in
  match Hashtbl.find_opt d.seen qid with
  | Some ev when ev = d.event -> false
  | _ ->
      Hashtbl.replace d.seen qid d.event;
      true

(* Existence probe shared by the per-query strategies: does the
   instantiated window contain any S.B value? *)
let window_nonempty table w =
  match Fbt.seek_ge (Table.s_by_b table) (I.lo w) with
  | Some c -> Fbt.key c <= I.hi w
  | None -> false

(* --------------------------------------------------------------------- *)
(* BJ-QOuter: queries as the outer relation                                *)
(* --------------------------------------------------------------------- *)

module Qouter = struct
  type t = {
    table : Table.s_table;
    queries : (int, Band_query.t) Hashtbl.t;
  }

  let name = "BJ-Q"

  let create table queries =
    let h = Hashtbl.create (max 16 (Array.length queries)) in
    Array.iter (fun (q : Band_query.t) -> Hashtbl.replace h q.qid q) queries;
    { table; queries = h }

  let process_r t (r : Tuple.r) sink =
    let sb = Table.s_by_b t.table in
    Hashtbl.iter
      (fun _ (q : Band_query.t) ->
        let w = Band_query.instantiated q ~b:r.b in
        Fbt.iter_range sb ~lo:(I.lo w) ~hi:(I.hi w) (fun _ s -> sink q s))
      t.queries

  let affected t (r : Tuple.r) report =
    Hashtbl.iter
      (fun _ (q : Band_query.t) ->
        if window_nonempty t.table (Band_query.instantiated q ~b:r.b) then report q)
      t.queries

  let insert_query t q = Hashtbl.replace t.queries q.Band_query.qid q
  let delete_query t (q : Band_query.t) =
    if Hashtbl.mem t.queries q.qid then (Hashtbl.remove t.queries q.qid; true) else false

  let query_count t = Hashtbl.length t.queries
end

(* --------------------------------------------------------------------- *)
(* BJ-DOuter: data as the outer relation                                   *)
(* --------------------------------------------------------------------- *)

module Douter = struct
  type t = {
    table : Table.s_table;
    (* Stabbing index over the band windows (the paper suggests a
       dynamic priority search tree; an augmented interval tree has the
       same O(log n + k) stabbing bound and O(log n) updates). *)
    windows : Band_query.t Itree.Mutable.t;
    dedupe : dedupe;
  }

  let name = "BJ-D"

  let create table queries =
    let windows = Itree.Mutable.create () in
    Array.iter (fun (q : Band_query.t) -> Itree.Mutable.add windows q.range q) queries;
    { table; windows; dedupe = new_dedupe () }

  let process_r t (r : Tuple.r) sink =
    Table.iter_s t.table (fun s ->
        Itree.Mutable.stab t.windows (s.b -. r.b) (fun _ q -> sink q s))

  let affected t (r : Tuple.r) report =
    ignore (fresh_event t.dedupe);
    Table.iter_s t.table (fun s ->
        Itree.Mutable.stab t.windows (s.b -. r.b) (fun _ q ->
            if mark t.dedupe q then report q))

  let insert_query t (q : Band_query.t) = Itree.Mutable.add t.windows q.range q

  let delete_query t (q : Band_query.t) =
    Itree.Mutable.remove t.windows q.range (fun p -> p.Band_query.qid = q.qid)

  let query_count t = Itree.Mutable.size t.windows
end

(* --------------------------------------------------------------------- *)
(* BJ-MJ: merge join between the sorted windows and sorted S               *)
(* --------------------------------------------------------------------- *)

module Merge = struct
  type t = {
    table : Table.s_table;
    (* Band windows in increasing left-endpoint order (a B-tree doubles
       as the "sorted list" with O(log n) maintenance). *)
    by_lo : Band_query.t Fbt.t;
  }

  let name = "BJ-MJ"

  let create table queries =
    let by_lo = Fbt.create () in
    Array.iter (fun (q : Band_query.t) -> Fbt.insert by_lo (I.lo q.range) q) queries;
    { table; by_lo }

  let process_r t (r : Tuple.r) sink =
    let sb = Table.s_by_b t.table in
    (* The frontier cursor only ever moves right: total cost
       O(n + m + k) per event. *)
    let frontier = ref (Fbt.seek_ge sb neg_infinity) in
    Fbt.iter t.by_lo (fun _ q ->
        let w = Band_query.instantiated q ~b:r.b in
        let rec advance () =
          match !frontier with
          | Some c when Fbt.key c < I.lo w ->
              frontier := Fbt.next c;
              advance ()
          | _ -> ()
        in
        advance ();
        let rec emit = function
          | Some c when Fbt.key c <= I.hi w ->
              sink q (Fbt.value c);
              emit (Fbt.next c)
          | _ -> ()
        in
        emit !frontier)

  let affected t (r : Tuple.r) report =
    let sb = Table.s_by_b t.table in
    let frontier = ref (Fbt.seek_ge sb neg_infinity) in
    Fbt.iter t.by_lo (fun _ q ->
        let w = Band_query.instantiated q ~b:r.b in
        let rec advance () =
          match !frontier with
          | Some c when Fbt.key c < I.lo w ->
              frontier := Fbt.next c;
              advance ()
          | _ -> ()
        in
        advance ();
        match !frontier with
        | Some c when Fbt.key c <= I.hi w -> report q
        | _ -> ())

  let insert_query t (q : Band_query.t) = Fbt.insert t.by_lo (I.lo q.range) q

  let delete_query t (q : Band_query.t) =
    Fbt.remove_first t.by_lo (I.lo q.range) (fun p -> p.Band_query.qid = q.qid)

  let query_count t = Fbt.length t.by_lo
end

(* --------------------------------------------------------------------- *)
(* BJ-Shared: NiagaraCQ-style sharing of identical join conditions        *)
(* --------------------------------------------------------------------- *)

module Shared = struct
  (* The related-work contrast (Section 5): NiagaraCQ shares work only
     across queries with IDENTICAL join conditions.  Queries are binned
     by their exact window; each distinct window is probed once and the
     results fanned out.  With all-distinct windows this degenerates to
     BJ-QOuter — exactly the limitation the SSI overcomes by exploiting
     overlap instead of equality. *)
  type t = {
    table : Table.s_table;
    bins : (float * float, (int, Band_query.t) Hashtbl.t) Hashtbl.t;
    mutable count : int;
  }

  let name = "BJ-Shared"

  let key (q : Band_query.t) = (I.lo q.range, I.hi q.range)

  let create table queries =
    let t = { table; bins = Hashtbl.create 64; count = 0 } in
    Array.iter
      (fun (q : Band_query.t) ->
        let bin =
          match Hashtbl.find_opt t.bins (key q) with
          | Some b -> b
          | None ->
              let b = Hashtbl.create 4 in
              Hashtbl.replace t.bins (key q) b;
              b
        in
        Hashtbl.replace bin q.qid q;
        t.count <- t.count + 1)
      queries;
    t

  let process_r t (r : Tuple.r) sink =
    let sb = Table.s_by_b t.table in
    Hashtbl.iter
      (fun (lo, hi) bin ->
        Fbt.iter_range sb ~lo:(lo +. r.b) ~hi:(hi +. r.b) (fun _ s ->
            Hashtbl.iter (fun _ q -> sink q s) bin))
      t.bins

  let affected t (r : Tuple.r) report =
    Hashtbl.iter
      (fun (lo, hi) bin ->
        if window_nonempty t.table (I.shift (I.make lo hi) r.b) then
          Hashtbl.iter (fun _ q -> report q) bin)
      t.bins

  let insert_query t (q : Band_query.t) =
    let bin =
      match Hashtbl.find_opt t.bins (key q) with
      | Some b -> b
      | None ->
          let b = Hashtbl.create 4 in
          Hashtbl.replace t.bins (key q) b;
          b
    in
    Hashtbl.replace bin q.qid q;
    t.count <- t.count + 1

  let delete_query t (q : Band_query.t) =
    match Hashtbl.find_opt t.bins (key q) with
    | None -> false
    | Some bin ->
        if Hashtbl.mem bin q.qid then begin
          Hashtbl.remove bin q.qid;
          if Hashtbl.length bin = 0 then Hashtbl.remove t.bins (key q);
          t.count <- t.count - 1;
          true
        end
        else false

  let query_count t = t.count
end

(* --------------------------------------------------------------------- *)
(* Shared SSI group processing (STEP 1 + STEP 2 of Section 3.1)            *)
(* --------------------------------------------------------------------- *)

(* STEP 1 for one stabbing group against an incoming r: find the
   affected queries.  [iter_lo f] visits members in increasing
   left-endpoint order, [iter_hi f] in decreasing right-endpoint
   order; both must stop when [f] returns [false] (early exit is the
   point of the sorted sequences).  Returns the affected queries with
   the two anchor cursors for STEP 2. *)
let group_step1 table dedupe (r : Tuple.r) ~stab ~iter_lo ~iter_hi =
  let b = r.b in
  let key = stab +. b in
  let sb = Table.s_by_b table in
  (* Anchors around the stabbing point offset: c2 = leftmost entry
     >= key; c1 = its predecessor (rightmost entry < key), or the last
     entry when c2 is exhausted.  On an exact match the key's
     duplicates all sit on the forward side, so the two scans never
     meet. *)
  let c2 = Fbt.seek_ge sb key in
  let c1 = match c2 with Some c -> Fbt.prev c | None -> Fbt.seek_le sb key in
  let affected = Vec.create () in
  if not (c1 = None && c2 = None) then begin
    let exact = match c2 with Some c -> Fbt.key c = key | None -> false in
    let consider q = if mark dedupe q then Vec.push affected q in
    if exact then
      (* The S-tuple at the stabbing point joins with every member. *)
      iter_lo (fun q ->
          consider q;
          true)
    else begin
      (match c1 with
      | Some c ->
          let s1_shift = Fbt.key c -. b in
          iter_lo (fun (q : Band_query.t) ->
              if I.lo q.range <= s1_shift then (consider q; true) else false)
      | None -> ());
      match c2 with
      | Some c ->
          let s2_shift = Fbt.key c -. b in
          iter_hi (fun (q : Band_query.t) ->
              if I.hi q.range >= s2_shift then (consider q; true) else false)
      | None -> ()
    end
  end;
  (affected, c1, c2)

let process_group table dedupe (r : Tuple.r) (sink : sink) ~stab ~iter_lo ~iter_hi =
  let affected, c1, c2 = group_step1 table dedupe r ~stab ~iter_lo ~iter_hi in
  let b = r.b in
  (* STEP 2: for each affected query, walk the leaves outward from the
     anchors, emitting until the instantiated window ends. *)
  Vec.iter
    (fun (q : Band_query.t) ->
      let lo_b = I.lo q.range +. b and hi_b = I.hi q.range +. b in
      let rec back = function
        | Some c when Fbt.key c >= lo_b ->
            sink q (Fbt.value c);
            back (Fbt.prev c)
        | _ -> ()
      in
      back c1;
      let rec fwd = function
        | Some c when Fbt.key c <= hi_b ->
            sink q (Fbt.value c);
            fwd (Fbt.next c)
        | _ -> ()
      in
      fwd c2)
    affected

let identify_group table dedupe r report ~stab ~iter_lo ~iter_hi =
  let affected, _, _ = group_step1 table dedupe r ~stab ~iter_lo ~iter_hi in
  Vec.iter report affected

let iter_lo_of_array members k =
  let n = Array.length members in
  let rec go i = if i < n && k members.(i) then go (i + 1) in
  go 0

let iter_hi_of_array by_hi k = iter_lo_of_array by_hi k

(* --------------------------------------------------------------------- *)
(* BJ-SSI over a static canonical partition                                *)
(* --------------------------------------------------------------------- *)

module Group_seqs = struct
  type elt = Band_query.t

  type t = {
    by_lo : Band_query.t array; (* increasing left endpoint *)
    by_hi : Band_query.t array; (* decreasing right endpoint *)
  }

  let build ~stab:_ members =
    let by_hi = Array.copy members in
    Array.sort (fun (a : Band_query.t) b -> I.compare_hi_desc a.range b.range) by_hi;
    { by_lo = members; by_hi }
end

module Ssi_index = Hotspot_core.Ssi.Make (Band_query.Elem) (Group_seqs)

module Ssi = struct
  type t = {
    table : Table.s_table;
    queries : (int, Band_query.t) Hashtbl.t;
    mutable index : Ssi_index.t;
    mutable dirty : bool;
    dedupe : dedupe;
  }

  let name = "BJ-SSI"

  let rebuild t =
    let qs = Hashtbl.fold (fun _ q acc -> q :: acc) t.queries [] in
    t.index <- Ssi_index.build (Array.of_list qs);
    t.dirty <- false

  let create table queries =
    let h = Hashtbl.create (max 16 (Array.length queries)) in
    Array.iter (fun (q : Band_query.t) -> Hashtbl.replace h q.qid q) queries;
    { table; queries = h; index = Ssi_index.build queries; dirty = false; dedupe = new_dedupe () }

  let process_r t r sink =
    if t.dirty then rebuild t;
    ignore (fresh_event t.dedupe);
    Ssi_index.iter t.index (fun ~stab (g : Group_seqs.t) ->
        process_group t.table t.dedupe r sink ~stab
          ~iter_lo:(iter_lo_of_array g.by_lo)
          ~iter_hi:(iter_hi_of_array g.by_hi))

  let affected t r report =
    if t.dirty then rebuild t;
    ignore (fresh_event t.dedupe);
    Ssi_index.iter t.index (fun ~stab (g : Group_seqs.t) ->
        identify_group t.table t.dedupe r report ~stab
          ~iter_lo:(iter_lo_of_array g.by_lo)
          ~iter_hi:(iter_hi_of_array g.by_hi))

  let insert_query t q =
    Hashtbl.replace t.queries q.Band_query.qid q;
    t.dirty <- true

  let delete_query t (q : Band_query.t) =
    if Hashtbl.mem t.queries q.qid then begin
      Hashtbl.remove t.queries q.qid;
      t.dirty <- true;
      true
    end
    else false

  let query_count t = Hashtbl.length t.queries
end

(* --------------------------------------------------------------------- *)
(* BJ-SSI over the dynamically maintained partition (Appendix B)           *)
(* --------------------------------------------------------------------- *)

module P = Hotspot_core.Refined_partition.Make (Band_query.Elem)

module Ssi_dynamic = struct
  type aux = {
    stab : float;
    by_lo : Band_query.t array;
    by_hi : Band_query.t array;
  }

  type t = {
    table : Table.s_table;
    part : P.t;
    (* Per-group sequences, rebuilt lazily after the group changes.
       Updates touch at most one group (Theorem 2), so invalidation is
       surgical; reconstructions retire every group id at once. *)
    cache : (int, aux) Hashtbl.t;
    mutable last_recon : int;
    dedupe : dedupe;
  }

  let name = "BJ-SSI(dyn)"

  let sync t =
    let r = P.reconstructions t.part in
    if r <> t.last_recon then begin
      Hashtbl.reset t.cache;
      t.last_recon <- r
    end

  let create_eps ~epsilon table queries =
    let part = P.create ~epsilon ~seed:0xb57 () in
    Array.iter (fun q -> P.insert part q) queries;
    {
      table;
      part;
      cache = Hashtbl.create 64;
      last_recon = P.reconstructions part;
      dedupe = new_dedupe ();
    }

  let create table queries = create_eps ~epsilon:3.0 table queries

  let aux_of t gid =
    match Hashtbl.find_opt t.cache gid with
    | Some a -> a
    | None ->
        let members = Array.of_list (P.group_members t.part gid) in
        Array.sort (fun (a : Band_query.t) b -> I.compare_lo a.range b.range) members;
        let by_hi = Array.copy members in
        Array.sort (fun (a : Band_query.t) b -> I.compare_hi_desc a.range b.range) by_hi;
        let isect =
          Array.fold_left (fun acc (q : Band_query.t) -> I.inter acc q.range)
            (I.make neg_infinity infinity) members
        in
        let a = { stab = I.hi isect; by_lo = members; by_hi } in
        Hashtbl.replace t.cache gid a;
        a

  let process_r t r sink =
    sync t;
    ignore (fresh_event t.dedupe);
    P.iter_group_sizes t.part (fun gid _size ->
        let a = aux_of t gid in
        process_group t.table t.dedupe r sink ~stab:a.stab
          ~iter_lo:(iter_lo_of_array a.by_lo)
          ~iter_hi:(iter_hi_of_array a.by_hi))

  let affected t r report =
    sync t;
    ignore (fresh_event t.dedupe);
    P.iter_group_sizes t.part (fun gid _size ->
        let a = aux_of t gid in
        identify_group t.table t.dedupe r report ~stab:a.stab
          ~iter_lo:(iter_lo_of_array a.by_lo)
          ~iter_hi:(iter_hi_of_array a.by_hi))

  let insert_query t q =
    P.insert t.part q;
    sync t;
    (* The element landed in some group; drop that group's cache entry
       (for a fresh singleton there is nothing cached — harmless). *)
    (match P.group_of t.part q with
    | gid -> Hashtbl.remove t.cache gid
    | exception Not_found -> ())

  let delete_query t q =
    match P.group_of t.part q with
    | exception Not_found -> false
    | gid ->
        ignore (P.delete t.part q);
        sync t;
        Hashtbl.remove t.cache gid;
        true

  let query_count t = P.size t.part
  let num_groups t = P.num_groups t.part
  let reconstructions t = P.reconstructions t.part
end

(* --------------------------------------------------------------------- *)
(* SSI + hotspot tracking: BJ-SSI on hotspots, BJ-QOuter on the rest       *)
(* --------------------------------------------------------------------- *)

module Tracker = Hotspot_core.Hotspot_tracker.Make (Band_query.Elem)

module Hotspot = struct
  (* Per-hotspot sequences as B-trees so membership changes cost
     O(log) instead of a rebuild. *)
  type haux = {
    by_lo : Band_query.t Fbt.t;
    by_hi : Band_query.t Fbt.t; (* keyed on the right endpoint *)
  }

  type t = {
    table : Table.s_table;
    tracker : Tracker.t;
    hot : (int, haux) Hashtbl.t;
    scattered : (int, Band_query.t) Hashtbl.t;
    dedupe : dedupe;
  }

  let name = "BJ-Hotspot"

  let haux_add h (q : Band_query.t) =
    Fbt.insert h.by_lo (I.lo q.range) q;
    Fbt.insert h.by_hi (I.hi q.range) q

  let haux_remove h (q : Band_query.t) =
    ignore (Fbt.remove_first h.by_lo (I.lo q.range) (fun p -> p.Band_query.qid = q.qid));
    ignore (Fbt.remove_first h.by_hi (I.hi q.range) (fun p -> p.Band_query.qid = q.qid))

  let create_alpha ~alpha ?seed table queries =
    let hot = Hashtbl.create 16 in
    let scattered = Hashtbl.create 256 in
    let on_event = function
      | Tracker.Hotspot_created (gid, members) ->
          let h = { by_lo = Fbt.create (); by_hi = Fbt.create () } in
          List.iter (haux_add h) members;
          Hashtbl.replace hot gid h
      | Tracker.Hotspot_destroyed (gid, _members) -> Hashtbl.remove hot gid
      | Tracker.Hotspot_added (gid, q) -> haux_add (Hashtbl.find hot gid) q
      | Tracker.Hotspot_removed (gid, q) -> haux_remove (Hashtbl.find hot gid) q
      | Tracker.Scattered_added q -> Hashtbl.replace scattered q.Band_query.qid q
      | Tracker.Scattered_removed q -> Hashtbl.remove scattered q.Band_query.qid
    in
    let tracker = Tracker.create ~alpha ?seed ~on_event () in
    Array.iter (fun q -> Tracker.insert tracker q) queries;
    { table; tracker; hot; scattered; dedupe = new_dedupe () }

  let create table queries = create_alpha ~alpha:0.001 table queries

  (* Ascending scan of a by_lo B-tree with early exit. *)
  let iter_tree_asc bt k =
    let rec go = function
      | Some c -> if k (Fbt.value c) then go (Fbt.next c)
      | None -> ()
    in
    go (Fbt.seek_ge bt neg_infinity)

  (* Descending scan of a by_hi B-tree with early exit. *)
  let iter_tree_desc bt k =
    let rec go = function
      | Some c -> if k (Fbt.value c) then go (Fbt.prev c)
      | None -> ()
    in
    go (Fbt.seek_le bt infinity)

  let process_r t (r : Tuple.r) sink =
    ignore (fresh_event t.dedupe);
    (* Hotspot queries: SSI group processing per hotspot. *)
    Hashtbl.iter
      (fun gid h ->
        let stab = Tracker.hotspot_stab t.tracker gid in
        process_group t.table t.dedupe r sink ~stab
          ~iter_lo:(iter_tree_asc h.by_lo)
          ~iter_hi:(iter_tree_desc h.by_hi))
      t.hot;
    (* Scattered queries: traditional per-query index probing. *)
    let sb = Table.s_by_b t.table in
    Hashtbl.iter
      (fun _ (q : Band_query.t) ->
        let w = Band_query.instantiated q ~b:r.b in
        Fbt.iter_range sb ~lo:(I.lo w) ~hi:(I.hi w) (fun _ s -> sink q s))
      t.scattered

  let affected t (r : Tuple.r) report =
    ignore (fresh_event t.dedupe);
    Hashtbl.iter
      (fun gid h ->
        let stab = Tracker.hotspot_stab t.tracker gid in
        identify_group t.table t.dedupe r report ~stab
          ~iter_lo:(iter_tree_asc h.by_lo)
          ~iter_hi:(iter_tree_desc h.by_hi))
      t.hot;
    Hashtbl.iter
      (fun _ (q : Band_query.t) ->
        if window_nonempty t.table (Band_query.instantiated q ~b:r.b) then report q)
      t.scattered

  let insert_query t q = Tracker.insert t.tracker q
  let delete_query t q = Tracker.delete t.tracker q
  let query_count t = Tracker.size t.tracker
  let num_hotspots t = Tracker.num_hotspots t.tracker
  let coverage t = Tracker.coverage t.tracker

  (* The aux B-trees are maintained purely from the tracker's event
     stream; verify they never drift from the tracker's own view. *)
  let check_invariants t =
    Tracker.check_invariants t.tracker;
    let fail fmt = Printf.ksprintf failwith fmt in
    let hotspots = Tracker.hotspots t.tracker in
    if List.length hotspots <> Hashtbl.length t.hot then
      fail "BJ-Hotspot: %d aux entries for %d hotspots" (Hashtbl.length t.hot)
        (List.length hotspots);
    List.iter
      (fun (gid, _, members) ->
        match Hashtbl.find_opt t.hot gid with
        | None -> fail "BJ-Hotspot: hotspot %d has no aux trees" gid
        | Some h ->
            Fbt.check_invariants h.by_lo;
            Fbt.check_invariants h.by_hi;
            let n = List.length members in
            if Fbt.length h.by_lo <> n || Fbt.length h.by_hi <> n then
              fail "BJ-Hotspot: hotspot %d aux sizes (%d, %d) for %d members" gid
                (Fbt.length h.by_lo) (Fbt.length h.by_hi) n)
      hotspots;
    let scattered = Tracker.scattered t.tracker in
    if List.length scattered <> Hashtbl.length t.scattered then
      fail "BJ-Hotspot: %d scattered aux entries for %d scattered queries"
        (Hashtbl.length t.scattered) (List.length scattered);
    List.iter
      (fun (q : Band_query.t) ->
        if not (Hashtbl.mem t.scattered q.qid) then
          fail "BJ-Hotspot: scattered query %d missing from aux table" q.qid)
      scattered
end

(* --------------------------------------------------------------------- *)
(* Ground truth                                                            *)
(* --------------------------------------------------------------------- *)

let reference table queries (r : Tuple.r) =
  let acc = ref [] in
  Array.iter
    (fun (q : Band_query.t) ->
      Table.iter_s table (fun s ->
          if Band_query.matches q ~r_b:r.b ~s_b:s.b then acc := (q.qid, s.sid) :: !acc))
    queries;
  List.sort compare !acc
