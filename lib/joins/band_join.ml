module I = Cq_interval.Interval
module Table = Cq_relation.Table
module Tuple = Cq_relation.Tuple
module Fbt = Table.Fbt
module Itree = Cq_index.Interval_tree
module Vec = Cq_util.Vec
module Processor = Hotspot_core.Processor
module Dedupe = Processor.Dedupe

type sink = Band_query.t -> Tuple.s -> unit

module type STRATEGY =
  Processor.STRATEGY
    with type query := Band_query.t
     and type event := Tuple.r
     and type store := Table.s_table
     and type result := Tuple.s

module type PROCESSOR =
  Processor.PROCESSOR
    with type query = Band_query.t
     and type event = Tuple.r
     and type store = Table.s_table
     and type result = Tuple.s

let window_nonempty = Band_axis.window_nonempty

(* --------------------------------------------------------------------- *)
(* BJ-QOuter: queries as the outer relation                                *)
(* --------------------------------------------------------------------- *)

module Qouter = struct
  type t = {
    table : Table.s_table;
    queries : (int, Band_query.t) Hashtbl.t;
  }

  let name = "BJ-Q"

  let create table queries =
    let h = Hashtbl.create (max 16 (Array.length queries)) in
    Array.iter (fun (q : Band_query.t) -> Hashtbl.replace h q.qid q) queries;
    { table; queries = h }

  let process_r t (r : Tuple.r) sink =
    let sb = Table.s_by_b t.table in
    Hashtbl.iter
      (fun _ (q : Band_query.t) ->
        let w = Band_query.instantiated q ~b:r.b in
        Fbt.iter_range sb ~lo:(I.lo w) ~hi:(I.hi w) (fun _ s -> sink q s))
      t.queries

  let affected t (r : Tuple.r) report =
    Hashtbl.iter
      (fun _ (q : Band_query.t) ->
        if window_nonempty t.table (Band_query.instantiated q ~b:r.b) then report q)
      t.queries

  let insert_query t q = Hashtbl.replace t.queries q.Band_query.qid q
  let delete_query t (q : Band_query.t) =
    if Hashtbl.mem t.queries q.qid then (Hashtbl.remove t.queries q.qid; true) else false

  let query_count t = Hashtbl.length t.queries
end

(* --------------------------------------------------------------------- *)
(* BJ-DOuter: data as the outer relation                                   *)
(* --------------------------------------------------------------------- *)

module Douter = struct
  type t = {
    table : Table.s_table;
    (* Stabbing index over the band windows (the paper suggests a
       dynamic priority search tree; an augmented interval tree has the
       same O(log n + k) stabbing bound and O(log n) updates). *)
    windows : Band_query.t Itree.Mutable.t;
    dedupe : Dedupe.t;
  }

  let name = "BJ-D"

  let create table queries =
    let windows = Itree.Mutable.create () in
    Array.iter (fun (q : Band_query.t) -> Itree.Mutable.add windows q.range q) queries;
    { table; windows; dedupe = Dedupe.create () }

  let process_r t (r : Tuple.r) sink =
    Table.iter_s t.table (fun s ->
        Itree.Mutable.stab t.windows (s.b -. r.b) (fun _ q -> sink q s))

  let affected t (r : Tuple.r) report =
    Dedupe.fresh t.dedupe;
    Table.iter_s t.table (fun s ->
        Itree.Mutable.stab t.windows (s.b -. r.b) (fun _ (q : Band_query.t) ->
            if Dedupe.mark t.dedupe q.qid then report q))

  let insert_query t (q : Band_query.t) = Itree.Mutable.add t.windows q.range q

  let delete_query t (q : Band_query.t) =
    Itree.Mutable.remove t.windows q.range (fun p -> p.Band_query.qid = q.qid)

  let query_count t = Itree.Mutable.size t.windows
end

(* --------------------------------------------------------------------- *)
(* BJ-MJ: merge join between the sorted windows and sorted S               *)
(* --------------------------------------------------------------------- *)

module Merge = struct
  type t = {
    table : Table.s_table;
    (* Band windows in increasing left-endpoint order (a B-tree doubles
       as the "sorted list" with O(log n) maintenance). *)
    by_lo : Band_query.t Fbt.t;
  }

  let name = "BJ-MJ"

  let create table queries =
    let by_lo = Fbt.create () in
    Array.iter (fun (q : Band_query.t) -> Fbt.insert by_lo (I.lo q.range) q) queries;
    { table; by_lo }

  let process_r t (r : Tuple.r) sink =
    let sb = Table.s_by_b t.table in
    (* The frontier cursor only ever moves right: total cost
       O(n + m + k) per event. *)
    let frontier = ref (Fbt.seek_ge sb neg_infinity) in
    Fbt.iter t.by_lo (fun _ q ->
        let w = Band_query.instantiated q ~b:r.b in
        let rec advance () =
          match !frontier with
          | Some c when Fbt.key c < I.lo w ->
              frontier := Fbt.next c;
              advance ()
          | _ -> ()
        in
        advance ();
        let rec emit = function
          | Some c when Fbt.key c <= I.hi w ->
              sink q (Fbt.value c);
              emit (Fbt.next c)
          | _ -> ()
        in
        emit !frontier)

  let affected t (r : Tuple.r) report =
    let sb = Table.s_by_b t.table in
    let frontier = ref (Fbt.seek_ge sb neg_infinity) in
    Fbt.iter t.by_lo (fun _ q ->
        let w = Band_query.instantiated q ~b:r.b in
        let rec advance () =
          match !frontier with
          | Some c when Fbt.key c < I.lo w ->
              frontier := Fbt.next c;
              advance ()
          | _ -> ()
        in
        advance ();
        match !frontier with
        | Some c when Fbt.key c <= I.hi w -> report q
        | _ -> ())

  let insert_query t (q : Band_query.t) = Fbt.insert t.by_lo (I.lo q.range) q

  let delete_query t (q : Band_query.t) =
    Fbt.remove_first t.by_lo (I.lo q.range) (fun p -> p.Band_query.qid = q.qid)

  let query_count t = Fbt.length t.by_lo
end

(* --------------------------------------------------------------------- *)
(* BJ-Shared: NiagaraCQ-style sharing of identical join conditions        *)
(* --------------------------------------------------------------------- *)

module Shared = struct
  (* The related-work contrast (Section 5): NiagaraCQ shares work only
     across queries with IDENTICAL join conditions.  Queries are binned
     by their exact window; each distinct window is probed once and the
     results fanned out.  With all-distinct windows this degenerates to
     BJ-QOuter — exactly the limitation the SSI overcomes by exploiting
     overlap instead of equality. *)
  type t = {
    table : Table.s_table;
    bins : (float * float, (int, Band_query.t) Hashtbl.t) Hashtbl.t;
    mutable count : int;
  }

  let name = "BJ-Shared"

  let key (q : Band_query.t) = (I.lo q.range, I.hi q.range)

  let create table queries =
    let t = { table; bins = Hashtbl.create 64; count = 0 } in
    Array.iter
      (fun (q : Band_query.t) ->
        let bin =
          match Hashtbl.find_opt t.bins (key q) with
          | Some b -> b
          | None ->
              let b = Hashtbl.create 4 in
              Hashtbl.replace t.bins (key q) b;
              b
        in
        Hashtbl.replace bin q.qid q;
        t.count <- t.count + 1)
      queries;
    t

  let process_r t (r : Tuple.r) sink =
    let sb = Table.s_by_b t.table in
    Hashtbl.iter
      (fun (lo, hi) bin ->
        Fbt.iter_range sb ~lo:(lo +. r.b) ~hi:(hi +. r.b) (fun _ s ->
            Hashtbl.iter (fun _ q -> sink q s) bin))
      t.bins

  let affected t (r : Tuple.r) report =
    Hashtbl.iter
      (fun (lo, hi) bin ->
        if window_nonempty t.table (I.shift (I.make lo hi) r.b) then
          Hashtbl.iter (fun _ q -> report q) bin)
      t.bins

  let insert_query t (q : Band_query.t) =
    let bin =
      match Hashtbl.find_opt t.bins (key q) with
      | Some b -> b
      | None ->
          let b = Hashtbl.create 4 in
          Hashtbl.replace t.bins (key q) b;
          b
    in
    Hashtbl.replace bin q.qid q;
    t.count <- t.count + 1

  let delete_query t (q : Band_query.t) =
    match Hashtbl.find_opt t.bins (key q) with
    | None -> false
    | Some bin ->
        if Hashtbl.mem bin q.qid then begin
          Hashtbl.remove bin q.qid;
          if Hashtbl.length bin = 0 then Hashtbl.remove t.bins (key q);
          t.count <- t.count - 1;
          true
        end
        else false

  let query_count t = t.count
end

(* --------------------------------------------------------------------- *)
(* The shared processor core: groups on the band axis, STEP 2 walking     *)
(* the S.B leaves outward from the anchors (Section 3.1)                  *)
(* --------------------------------------------------------------------- *)

module G = Band_axis.Make (struct
  type q = Band_query.t

  let qid (q : Band_query.t) = q.qid
  let axis (q : Band_query.t) = q.range
end)

let process_group table g ~stab (r : Tuple.r) ~mark (sink : sink) =
  let affected = G.step1 table r g ~stab ~mark in
  let b = r.b in
  let key = stab +. b in
  let sb = Table.s_by_b table in
  (* STEP 2: for each affected query, walk the leaves outward from the
     anchors (rightmost entry below the shifted stabbing point, then
     leftmost at or above it), emitting until the instantiated window
     ends.  Leaf walks rather than cursor chains: no allocation per
     emitted result. *)
  Vec.iter
    (fun (q : Band_query.t) ->
      let lo_b = I.lo q.range +. b and hi_b = I.hi q.range +. b in
      Fbt.walk_lt sb key (fun k s -> if k >= lo_b then (sink q s; true) else false);
      Fbt.walk_ge sb key (fun k s -> if k <= hi_b then (sink q s; true) else false))
    affected

let identify_group table g ~stab r ~mark report =
  let affected = G.step1 table r g ~stab ~mark in
  Vec.iter report affected

module Core_query = struct
  type t = Band_query.t
  type event = Tuple.r
  type store = Table.s_table
  type result = Tuple.s

  let label = "BJ"
  let qid (q : Band_query.t) = q.qid
  let compare = Band_query.Elem.compare
  let interval (q : Band_query.t) = q.range
  let scatter_interval = interval

  (* Band windows shift with the event's B value, so scattered queries
     have no fixed stabbing point: each is probed individually. *)
  let scatter_point _ = None

  let probe table (q : Band_query.t) (r : Tuple.r) emit =
    let w = Band_query.instantiated q ~b:r.b in
    Fbt.iter_range (Table.s_by_b table) ~lo:(I.lo w) ~hi:(I.hi w) (fun _ s -> emit s)

  let probe_hit table q (r : Tuple.r) =
    window_nonempty table (Band_query.instantiated q ~b:r.b)

  module Group = struct
    type g = G.g

    let create = G.create
    let add = G.add
    let remove = G.remove
    let size = G.size
    let check_invariants = G.check_invariants
    let process store g ~stab ev ~mark sink = process_group store g ~stab ev ~mark sink
    let identify store g ~stab ev ~mark report = identify_group store g ~stab ev ~mark report
  end
end

module Make_core (B : Cq_index.Stab_backend.S) = Processor.Make (Core_query) (B)
module C_itree = Make_core (Cq_index.Stab_backend.Instrumented_interval_tree)
module C_skiplist = Make_core (Cq_index.Stab_backend.Instrumented_interval_skiplist)
module C_treap = Make_core (Cq_index.Stab_backend.Instrumented_treap)

module Ssi = C_itree.Ssi

module Hotspot = struct
  include C_itree.Hotspot

  let create_alpha ~alpha ?seed table queries = create_cfg ~alpha ?seed table queries
end

let processor strategy kind : (module PROCESSOR) =
  match (strategy, kind) with
  | Processor.Hotspot, Cq_index.Stab_backend.Itree -> (module C_itree.Hotspot)
  | Processor.Hotspot, Cq_index.Stab_backend.Skiplist -> (module C_skiplist.Hotspot)
  | Processor.Hotspot, Cq_index.Stab_backend.Treap_pst -> (module C_treap.Hotspot)
  | Processor.Ssi, Cq_index.Stab_backend.Itree -> (module C_itree.Ssi)
  | Processor.Ssi, Cq_index.Stab_backend.Skiplist -> (module C_skiplist.Ssi)
  | Processor.Ssi, Cq_index.Stab_backend.Treap_pst -> (module C_treap.Ssi)

(* --------------------------------------------------------------------- *)
(* BJ-SSI over the dynamically maintained partition (Appendix B)           *)
(* --------------------------------------------------------------------- *)

module P = Hotspot_core.Refined_partition.Make (Band_query.Elem)

module Ssi_dynamic = struct
  type aux = {
    stab : float;
    g : G.g;
  }

  type t = {
    table : Table.s_table;
    part : P.t;
    (* Per-group sequences, rebuilt lazily after the group changes.
       Updates touch at most one group (Theorem 2), so invalidation is
       surgical; reconstructions retire every group id at once. *)
    cache : (int, aux) Hashtbl.t;
    mutable last_recon : int;
    dedupe : Dedupe.t;
  }

  let name = "BJ-SSI(dyn)"

  let sync t =
    let r = P.reconstructions t.part in
    if r <> t.last_recon then begin
      Hashtbl.reset t.cache;
      t.last_recon <- r
    end

  let create_eps ~epsilon table queries =
    let part = P.create ~epsilon ~seed:0xb57 () in
    Array.iter (fun q -> P.insert part q) queries;
    {
      table;
      part;
      cache = Hashtbl.create 64;
      last_recon = P.reconstructions part;
      dedupe = Dedupe.create ();
    }

  let create table queries = create_eps ~epsilon:3.0 table queries

  let aux_of t gid =
    match Hashtbl.find_opt t.cache gid with
    | Some a -> a
    | None ->
        let members = P.group_members t.part gid in
        let g = G.create () in
        List.iter (G.add g) members;
        let isect =
          List.fold_left (fun acc (q : Band_query.t) -> I.inter acc q.range)
            (I.make neg_infinity infinity) members
        in
        let a = { stab = I.hi isect; g } in
        Hashtbl.replace t.cache gid a;
        a

  let process_r t r sink =
    sync t;
    Dedupe.fresh t.dedupe;
    let mark (q : Band_query.t) = Dedupe.mark t.dedupe q.qid in
    P.iter_group_sizes t.part (fun gid _size ->
        let a = aux_of t gid in
        process_group t.table a.g ~stab:a.stab r ~mark sink)

  let affected t r report =
    sync t;
    Dedupe.fresh t.dedupe;
    let mark (q : Band_query.t) = Dedupe.mark t.dedupe q.qid in
    P.iter_group_sizes t.part (fun gid _size ->
        let a = aux_of t gid in
        identify_group t.table a.g ~stab:a.stab r ~mark report)

  let insert_query t q =
    P.insert t.part q;
    sync t;
    (* The element landed in some group; drop that group's cache entry
       (for a fresh singleton there is nothing cached — harmless). *)
    (match P.group_of t.part q with
    | gid -> Hashtbl.remove t.cache gid
    | exception Not_found -> ())

  let delete_query t q =
    match P.group_of t.part q with
    | exception Not_found -> false
    | gid ->
        ignore (P.delete t.part q);
        sync t;
        Hashtbl.remove t.cache gid;
        true

  let query_count t = P.size t.part
  let num_groups t = P.num_groups t.part
  let reconstructions t = P.reconstructions t.part
end

(* --------------------------------------------------------------------- *)
(* Ground truth                                                            *)
(* --------------------------------------------------------------------- *)

let reference table queries (r : Tuple.r) =
  let acc = ref [] in
  Array.iter
    (fun (q : Band_query.t) ->
      Table.iter_s table (fun s ->
          if Band_query.matches q ~r_b:r.b ~s_b:s.b then acc := (q.qid, s.sid) :: !acc))
    queries;
  List.sort Cq_util.Order.int_pair !acc
