module I = Cq_interval.Interval
module Table = Cq_relation.Table
module Tuple = Cq_relation.Tuple
module Fbt = Table.Fbt
module Vec = Cq_util.Vec

let[@cq.hot] window_nonempty table w =
  match Fbt.seek_ge (Table.s_by_b table) (I.lo w) with
  | Some c -> Fbt.key c <= I.hi w
  | None -> false

module Make (X : sig
  type q

  val qid : q -> int
  val axis : q -> I.t
end) =
struct
  (* Endpoint sequences as B-trees so membership changes cost O(log)
     instead of a rebuild.  [scratch] is the reusable STEP-1 output
     buffer: [step1] clears and refills it, so its contents are only
     valid until the next [step1] on the same group (no re-entrant
     processing of one group — the batch-ingest non-reentrancy
     contract). *)
  type g = {
    by_lo : X.q Fbt.t;
    by_hi : X.q Fbt.t; (* keyed on the right endpoint *)
    scratch : X.q Vec.t;
  }

  let create () = { by_lo = Fbt.create (); by_hi = Fbt.create (); scratch = Vec.create () }

  let add g q =
    Fbt.insert g.by_lo (I.lo (X.axis q)) q;
    Fbt.insert g.by_hi (I.hi (X.axis q)) q

  let remove g q =
    ignore (Fbt.remove_first g.by_lo (I.lo (X.axis q)) (fun p -> X.qid p = X.qid q));
    ignore (Fbt.remove_first g.by_hi (I.hi (X.axis q)) (fun p -> X.qid p = X.qid q))

  let size g = Fbt.length g.by_lo

  let check_invariants g =
    Fbt.check_invariants g.by_lo;
    Fbt.check_invariants g.by_hi;
    if Fbt.length g.by_lo <> Fbt.length g.by_hi then
      Cq_util.Error.corrupt ~structure:"band_axis" "endpoint sequences out of sync"

  (* Members in increasing left-endpoint order, stopping when [k]
     returns false (early exit is the point of the sorted sequences).
     Leaf walks, not cursor chains: no allocation per member. *)
  let iter_lo g k = Fbt.walk_ge g.by_lo neg_infinity (fun _ q -> k q)

  (* Members in decreasing right-endpoint order. *)
  let iter_hi g k = Fbt.walk_lt g.by_hi infinity (fun _ q -> k q)

  let step1 table (r : Tuple.r) g ~stab ~mark =
    let b = r.b in
    let key = stab +. b in
    let sb = Table.s_by_b table in
    let affected = g.scratch in
    Vec.clear affected;
    (* Anchors around the stabbing point offset: s2 = leftmost entry
       >= key; s1 = rightmost entry < key.  On an exact match the key's
       duplicates all sit on the forward side, so the two scans never
       meet. *)
    let s2 = ref 0.0 and has2 = ref false in
    Fbt.walk_ge sb key (fun k _ ->
        s2 := k;
        has2 := true;
        false);
    let exact = !has2 && !s2 = key in
    let consider q = if mark q then Vec.push affected q in
    if exact then
      (* The S-tuple at the stabbing point joins with every member. *)
      iter_lo g (fun q ->
          consider q;
          true)
    else begin
      let s1 = ref 0.0 and has1 = ref false in
      Fbt.walk_lt sb key (fun k _ ->
          s1 := k;
          has1 := true;
          false);
      if !has1 then begin
        let s1_shift = !s1 -. b in
        iter_lo g (fun q -> if I.lo (X.axis q) <= s1_shift then (consider q; true) else false)
      end;
      if !has2 then begin
        let s2_shift = !s2 -. b in
        iter_hi g (fun q -> if I.hi (X.axis q) >= s2_shift then (consider q; true) else false)
      end
    end;
    affected
end
