module I = Cq_interval.Interval
module Table = Cq_relation.Table
module Tuple = Cq_relation.Tuple
module Fbt = Table.Fbt
module Vec = Cq_util.Vec

let window_nonempty table w =
  match Fbt.seek_ge (Table.s_by_b table) (I.lo w) with
  | Some c -> Fbt.key c <= I.hi w
  | None -> false

module Make (X : sig
  type q

  val qid : q -> int
  val axis : q -> I.t
end) =
struct
  (* Endpoint sequences as B-trees so membership changes cost O(log)
     instead of a rebuild. *)
  type g = {
    by_lo : X.q Fbt.t;
    by_hi : X.q Fbt.t; (* keyed on the right endpoint *)
  }

  let create () = { by_lo = Fbt.create (); by_hi = Fbt.create () }

  let add g q =
    Fbt.insert g.by_lo (I.lo (X.axis q)) q;
    Fbt.insert g.by_hi (I.hi (X.axis q)) q

  let remove g q =
    ignore (Fbt.remove_first g.by_lo (I.lo (X.axis q)) (fun p -> X.qid p = X.qid q));
    ignore (Fbt.remove_first g.by_hi (I.hi (X.axis q)) (fun p -> X.qid p = X.qid q))

  let size g = Fbt.length g.by_lo

  let check_invariants g =
    Fbt.check_invariants g.by_lo;
    Fbt.check_invariants g.by_hi;
    if Fbt.length g.by_lo <> Fbt.length g.by_hi then
      Cq_util.Error.corrupt ~structure:"band_axis" "endpoint sequences out of sync"

  (* Members in increasing left-endpoint order, stopping when [k]
     returns false (early exit is the point of the sorted sequences). *)
  let iter_lo g k =
    let rec go = function
      | Some c -> if k (Fbt.value c) then go (Fbt.next c)
      | None -> ()
    in
    go (Fbt.seek_ge g.by_lo neg_infinity)

  (* Members in decreasing right-endpoint order. *)
  let iter_hi g k =
    let rec go = function
      | Some c -> if k (Fbt.value c) then go (Fbt.prev c)
      | None -> ()
    in
    go (Fbt.seek_le g.by_hi infinity)

  let step1 table (r : Tuple.r) g ~stab ~mark =
    let b = r.b in
    let key = stab +. b in
    let sb = Table.s_by_b table in
    (* Anchors around the stabbing point offset: c2 = leftmost entry
       >= key; c1 = its predecessor (rightmost entry < key), or the
       last entry when c2 is exhausted.  On an exact match the key's
       duplicates all sit on the forward side, so the two scans never
       meet. *)
    let c2 = Fbt.seek_ge sb key in
    let c1 = match c2 with Some c -> Fbt.prev c | None -> Fbt.seek_le sb key in
    let affected = Vec.create () in
    if not (Option.is_none c1 && Option.is_none c2) then begin
      let exact = match c2 with Some c -> Fbt.key c = key | None -> false in
      let consider q = if mark q then Vec.push affected q in
      if exact then
        (* The S-tuple at the stabbing point joins with every member. *)
        iter_lo g (fun q ->
            consider q;
            true)
      else begin
        (match c1 with
        | Some c ->
            let s1_shift = Fbt.key c -. b in
            iter_lo g (fun q ->
                if I.lo (X.axis q) <= s1_shift then (consider q; true) else false)
        | None -> ());
        match c2 with
        | Some c ->
            let s2_shift = Fbt.key c -. b in
            iter_hi g (fun q ->
                if I.hi (X.axis q) >= s2_shift then (consider q; true) else false)
        | None -> ()
      end
    end;
    (affected, c1, c2)
end
