module I = Cq_interval.Interval
module Table = Cq_relation.Table
module Tuple = Cq_relation.Tuple
module Pbt = Table.Pbt
module Itree = Cq_index.Interval_tree
module Rtree = Cq_index.Rtree
module Vec = Cq_util.Vec
module Processor = Hotspot_core.Processor
module Dedupe = Processor.Dedupe

type sink = Select_query.t -> Tuple.s -> unit

module type STRATEGY =
  Processor.STRATEGY
    with type query := Select_query.t
     and type event := Tuple.r
     and type store := Table.s_table
     and type result := Tuple.s

module type PROCESSOR =
  Processor.PROCESSOR
    with type query = Select_query.t
     and type event = Tuple.r
     and type store = Table.s_table
     and type result = Tuple.s

(* Visit the S-tuples joining with the event (same B), in C order. *)
let iter_joining table ~b f =
  Pbt.iter_range (Table.s_by_bc table) ~lo:(b, neg_infinity) ~hi:(b, infinity)
    (fun _ s -> f s)

(* --------------------------------------------------------------------- *)
(* NAIVE: join, then evaluate every query on the intermediate result       *)
(* --------------------------------------------------------------------- *)

module Naive = struct
  type t = {
    table : Table.s_table;
    queries : (int, Select_query.t) Hashtbl.t;
  }

  let name = "NAIVE"

  let create table queries =
    let h = Hashtbl.create (max 16 (Array.length queries)) in
    Array.iter (fun (q : Select_query.t) -> Hashtbl.replace h q.qid q) queries;
    { table; queries = h }

  let process_r t (r : Tuple.r) sink =
    (* Intermediate result, ordered by S.C. *)
    let joined = Vec.create () in
    iter_joining t.table ~b:r.b (fun s -> Vec.push joined s);
    let m = Vec.length joined in
    if m > 0 then begin
      (* First index with C >= x. *)
      let lower_bound x =
        let lo = ref 0 and hi = ref m in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if (Vec.get joined mid).Tuple.c < x then lo := mid + 1 else hi := mid
        done;
        !lo
      in
      Hashtbl.iter
        (fun _ (q : Select_query.t) ->
          if I.stabs q.range_a r.a then begin
            let i = ref (lower_bound (I.lo q.range_c)) in
            let continue = ref true in
            while !continue && !i < m do
              let s = Vec.get joined !i in
              if s.Tuple.c <= I.hi q.range_c then begin
                sink q s;
                incr i
              end
              else continue := false
            done
          end)
        t.queries
    end

  let affected t (r : Tuple.r) report =
    let joined = Vec.create () in
    iter_joining t.table ~b:r.b (fun s -> Vec.push joined s);
    let m = Vec.length joined in
    if m > 0 then begin
      let lower_bound x =
        let lo = ref 0 and hi = ref m in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if (Vec.get joined mid).Tuple.c < x then lo := mid + 1 else hi := mid
        done;
        !lo
      in
      Hashtbl.iter
        (fun _ (q : Select_query.t) ->
          if I.stabs q.range_a r.a then begin
            let i = lower_bound (I.lo q.range_c) in
            if i < m && (Vec.get joined i).Tuple.c <= I.hi q.range_c then report q
          end)
        t.queries
    end

  let insert_query t q = Hashtbl.replace t.queries q.Select_query.qid q

  let delete_query t (q : Select_query.t) =
    if Hashtbl.mem t.queries q.qid then (Hashtbl.remove t.queries q.qid; true) else false

  let query_count t = Hashtbl.length t.queries
end

(* --------------------------------------------------------------------- *)
(* SJ-JoinFirst: join, then 2-D stab per join result point                 *)
(* --------------------------------------------------------------------- *)

module Join_first = struct
  type t = {
    table : Table.s_table;
    rects : Select_query.t Rtree.t;
    dedupe : Dedupe.t;
    mutable count : int;
  }

  let name = "SJ-J"

  let create table queries =
    let rects = Rtree.create ~max_entries:8 () in
    Array.iter (fun q -> Rtree.insert rects (Select_query.rect q) q) queries;
    { table; rects; dedupe = Dedupe.create (); count = Array.length queries }

  let process_r t (r : Tuple.r) sink =
    iter_joining t.table ~b:r.b (fun s ->
        Rtree.stab t.rects ~x:s.Tuple.c ~y:r.a (fun _ q -> sink q s))

  let affected t (r : Tuple.r) report =
    Dedupe.fresh t.dedupe;
    iter_joining t.table ~b:r.b (fun s ->
        Rtree.stab t.rects ~x:s.Tuple.c ~y:r.a (fun _ (q : Select_query.t) ->
            if Dedupe.mark t.dedupe q.qid then report q))

  let insert_query t q =
    Rtree.insert t.rects (Select_query.rect q) q;
    t.count <- t.count + 1

  let delete_query t (q : Select_query.t) =
    let hit = Rtree.remove t.rects (Select_query.rect q) (fun p -> p.Select_query.qid = q.qid) in
    if hit then t.count <- t.count - 1;
    hit

  let query_count t = t.count
end

(* --------------------------------------------------------------------- *)
(* SJ-SelectFirst: R.A selection first, then an index join per query       *)
(* --------------------------------------------------------------------- *)

module Select_first = struct
  type t = {
    table : Table.s_table;
    a_index : Select_query.t Itree.Mutable.t;
  }

  let name = "SJ-S"

  let create table queries =
    let a_index = Itree.Mutable.create () in
    Array.iter (fun (q : Select_query.t) -> Itree.Mutable.add a_index q.range_a q) queries;
    { table; a_index }

  let process_r t (r : Tuple.r) sink =
    Itree.Mutable.stab t.a_index r.a (fun _ (q : Select_query.t) ->
        Pbt.iter_range (Table.s_by_bc t.table)
          ~lo:(r.b, I.lo q.range_c)
          ~hi:(r.b, I.hi q.range_c)
          (fun _ s -> sink q s))

  let affected t (r : Tuple.r) report =
    let bc = Table.s_by_bc t.table in
    Itree.Mutable.stab t.a_index r.a (fun _ (q : Select_query.t) ->
        match Pbt.seek_ge bc (r.b, I.lo q.range_c) with
        | Some c ->
            let kb, kc = Pbt.key c in
            if kb = r.b && kc <= I.hi q.range_c then report q
        | None -> ())

  let insert_query t (q : Select_query.t) = Itree.Mutable.add t.a_index q.range_a q

  let delete_query t (q : Select_query.t) =
    Itree.Mutable.remove t.a_index q.range_a (fun p -> p.Select_query.qid = q.qid)

  let query_count t = Itree.Mutable.size t.a_index
end

(* --------------------------------------------------------------------- *)
(* The shared processor core: groups as R-trees over the query             *)
(* rectangles, STEP 1 probing at the two anchor join-result points         *)
(* (Section 3.2, Figure 5)                                                 *)
(* --------------------------------------------------------------------- *)

(* A stabbing group: member rectangles in an R-tree plus a reusable
   STEP-1 output buffer.  [group_step1] clears and refills [scratch],
   so its contents are only valid until the next STEP 1 on the same
   group (the batch-ingest non-reentrancy contract). *)
type group = {
  rtree : Select_query.t Rtree.t;
  scratch : Select_query.t Vec.t;
}

(* STEP 1 for one stabbing group (on the rangeC projections) with
   stabbing point [stab]: find the affected queries.  The anchors are
   the joining S-tuples whose C values surround the stabbing point —
   the rightmost entry < (b, stab) and the leftmost >= (b, stab), each
   usable only while it stays within the event's B value. *)
let group_step1 table (r : Tuple.r) ~stab ~g ~mark =
  let b = r.b in
  let bc = Table.s_by_bc table in
  let key = (b, stab) in
  let affected = g.scratch in
  Vec.clear affected;
  (* The two join result points closest to (stab, r.a) probe the
     group's rectangle index. *)
  let q1 = ref 0.0 and has1 = ref false in
  Pbt.walk_lt bc key (fun k _ ->
      if fst k = b then begin
        q1 := snd k;
        has1 := true
      end;
      false);
  if !has1 then Rtree.stab g.rtree ~x:!q1 ~y:r.a (fun _ q -> if mark q then Vec.push affected q);
  let q2 = ref 0.0 and has2 = ref false in
  Pbt.walk_ge bc key (fun k _ ->
      if fst k = b then begin
        q2 := snd k;
        has2 := true
      end;
      false);
  if !has2 then Rtree.stab g.rtree ~x:!q2 ~y:r.a (fun _ q -> if mark q then Vec.push affected q);
  affected

let process_group table g ~stab (r : Tuple.r) ~mark (sink : sink) =
  let b = r.b in
  let bc = Table.s_by_bc table in
  let key = (b, stab) in
  let affected = group_step1 table r ~stab ~g ~mark in
  (* STEP 2: each affected rectangle covers a consecutive C-run of
     join result points including an anchor; walk the leaves outward.
     No allocation per emitted result. *)
  Vec.iter
    (fun (q : Select_query.t) ->
      let lo_c = I.lo q.range_c and hi_c = I.hi q.range_c in
      Pbt.walk_lt bc key (fun k s ->
          let kb, kc = k in
          if kb = b && kc >= lo_c then (sink q s; true) else false);
      Pbt.walk_ge bc key (fun k s ->
          let kb, kc = k in
          if kb = b && kc <= hi_c then (sink q s; true) else false))
    affected

let identify_group table g ~stab r ~mark report =
  let affected = group_step1 table r ~stab ~g ~mark in
  Vec.iter report affected

module Core_query = struct
  type t = Select_query.t
  type event = Tuple.r
  type store = Table.s_table
  type result = Tuple.s

  let label = "SJ"
  let qid (q : Select_query.t) = q.qid
  let compare = Select_query.Elem_c.compare

  (* Partition on the rangeC projections; scattered queries are served
     SJ-SelectFirst style, indexed on rangeA and pruned by the event's
     A value. *)
  let interval (q : Select_query.t) = q.range_c
  let scatter_interval (q : Select_query.t) = q.range_a
  let scatter_point (r : Tuple.r) = Some r.a

  let probe table (q : Select_query.t) (r : Tuple.r) emit =
    Pbt.iter_range (Table.s_by_bc table)
      ~lo:(r.b, I.lo q.range_c)
      ~hi:(r.b, I.hi q.range_c)
      (fun _ s -> emit s)

  let probe_hit table (q : Select_query.t) (r : Tuple.r) =
    match Pbt.seek_ge (Table.s_by_bc table) (r.b, I.lo q.range_c) with
    | Some c ->
        let kb, kc = Pbt.key c in
        kb = r.b && kc <= I.hi q.range_c
    | None -> false

  module Group = struct
    type g = group

    let create () = { rtree = Rtree.create ~max_entries:8 (); scratch = Vec.create () }
    let add g q = Rtree.insert g.rtree (Select_query.rect q) q

    let remove g (q : Select_query.t) =
      ignore (Rtree.remove g.rtree (Select_query.rect q) (fun p -> p.Select_query.qid = q.qid))

    let size g = Rtree.size g.rtree
    let check_invariants g = Rtree.check_invariants g.rtree
    let process store g ~stab ev ~mark sink = process_group store g ~stab ev ~mark sink
    let identify store g ~stab ev ~mark report = identify_group store g ~stab ev ~mark report
  end
end

module Make_core (B : Cq_index.Stab_backend.S) = Processor.Make (Core_query) (B)
module C_itree = Make_core (Cq_index.Stab_backend.Instrumented_interval_tree)
module C_skiplist = Make_core (Cq_index.Stab_backend.Instrumented_interval_skiplist)
module C_treap = Make_core (Cq_index.Stab_backend.Instrumented_treap)

module Ssi = C_itree.Ssi

module Hotspot = struct
  include C_itree.Hotspot

  let create_alpha ~alpha ?seed table queries = create_cfg ~alpha ?seed table queries
end

let processor strategy kind : (module PROCESSOR) =
  match (strategy, kind) with
  | Processor.Hotspot, Cq_index.Stab_backend.Itree -> (module C_itree.Hotspot)
  | Processor.Hotspot, Cq_index.Stab_backend.Skiplist -> (module C_skiplist.Hotspot)
  | Processor.Hotspot, Cq_index.Stab_backend.Treap_pst -> (module C_treap.Hotspot)
  | Processor.Ssi, Cq_index.Stab_backend.Itree -> (module C_itree.Ssi)
  | Processor.Ssi, Cq_index.Stab_backend.Skiplist -> (module C_skiplist.Ssi)
  | Processor.Ssi, Cq_index.Stab_backend.Treap_pst -> (module C_treap.Ssi)

(* --------------------------------------------------------------------- *)
(* Adaptive per-event strategy choice (Section 6)                          *)
(* --------------------------------------------------------------------- *)

module Adaptive = struct
  type choice = Use_select_first | Use_ssi

  type t = {
    table : Table.s_table;
    sf : Select_first.t;
    ssi : Ssi.t;
    threshold : float;
    (* n' estimator: an SSI histogram over the rangeA intervals,
       rebuilt lazily after query churn. *)
    mutable estimator : Cq_histogram.Ssi_hist.t option;
    mutable churn : int;
    mutable sf_events : int;
    mutable ssi_events : int;
  }

  let name = "SJ-ADAPT"

  let create_tuned ~threshold table queries =
    {
      table;
      sf = Select_first.create table queries;
      ssi = Ssi.create table queries;
      threshold;
      estimator = None;
      churn = 0;
      sf_events = 0;
      ssi_events = 0;
    }

  let create table queries = create_tuned ~threshold:2.0 table queries

  let estimator t =
    match t.estimator with
    | Some h when t.churn = 0 -> h
    | _ ->
        let acc = ref [] in
        Ssi.iter_queries t.ssi (fun (q : Select_query.t) -> acc := q.range_a :: !acc);
        let ranges = Array.of_list !acc in
        let buckets = max 16 (Array.length ranges / 250) in
        let h = Cq_histogram.Ssi_hist.build ranges ~buckets in
        t.estimator <- Some h;
        t.churn <- 0;
        h

  let choose t (r : Tuple.r) =
    let est_n' = Cq_histogram.Ssi_hist.estimate (estimator t) r.a in
    let tau = float_of_int (Ssi.num_groups t.ssi) in
    if est_n' < t.threshold *. tau then Use_select_first else Use_ssi

  let process_r t r sink =
    match choose t r with
    | Use_select_first ->
        t.sf_events <- t.sf_events + 1;
        Select_first.process_r t.sf r sink
    | Use_ssi ->
        t.ssi_events <- t.ssi_events + 1;
        Ssi.process_r t.ssi r sink

  let affected t r report =
    match choose t r with
    | Use_select_first ->
        t.sf_events <- t.sf_events + 1;
        Select_first.affected t.sf r report
    | Use_ssi ->
        t.ssi_events <- t.ssi_events + 1;
        Ssi.affected t.ssi r report

  let insert_query t q =
    Select_first.insert_query t.sf q;
    Ssi.insert_query t.ssi q;
    t.churn <- t.churn + 1

  let delete_query t q =
    let ok = Select_first.delete_query t.sf q in
    if ok then begin
      ignore (Ssi.delete_query t.ssi q);
      t.churn <- t.churn + 1
    end;
    ok

  let query_count t = Ssi.query_count t.ssi
  let decisions t = (t.sf_events, t.ssi_events)
end

(* --------------------------------------------------------------------- *)
(* Ground truth                                                            *)
(* --------------------------------------------------------------------- *)

let reference table queries (r : Tuple.r) =
  let acc = ref [] in
  Array.iter
    (fun (q : Select_query.t) ->
      Table.iter_s table (fun s ->
          if s.Tuple.b = r.b && Select_query.matches q ~r_a:r.a ~s_c:s.Tuple.c then
            acc := (q.qid, s.sid) :: !acc))
    queries;
  List.sort Cq_util.Order.int_pair !acc
