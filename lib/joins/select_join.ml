module I = Cq_interval.Interval
module Table = Cq_relation.Table
module Tuple = Cq_relation.Tuple
module Fbt = Table.Fbt
module Pbt = Table.Pbt
module Itree = Cq_index.Interval_tree
module Rtree = Cq_index.Rtree
module Vec = Cq_util.Vec

type sink = Select_query.t -> Tuple.s -> unit

module type STRATEGY = sig
  type t

  val name : string
  val create : Table.s_table -> Select_query.t array -> t
  val process_r : t -> Tuple.r -> sink -> unit
  val affected : t -> Tuple.r -> (Select_query.t -> unit) -> unit
  val insert_query : t -> Select_query.t -> unit
  val delete_query : t -> Select_query.t -> bool
  val query_count : t -> int
end

(* Visit the S-tuples joining with the event (same B), in C order. *)
let iter_joining table ~b f =
  Pbt.iter_range (Table.s_by_bc table) ~lo:(b, neg_infinity) ~hi:(b, infinity)
    (fun _ s -> f s)

(* Per-event deduplication of affected queries. *)
type dedupe = {
  seen : (int, int) Hashtbl.t;
  mutable event : int;
}

let new_dedupe () = { seen = Hashtbl.create 256; event = 0 }

let fresh_event d =
  d.event <- d.event + 1;
  d.event

let mark d (q : Select_query.t) =
  match Hashtbl.find_opt d.seen q.qid with
  | Some ev when ev = d.event -> false
  | _ ->
      Hashtbl.replace d.seen q.qid d.event;
      true

(* --------------------------------------------------------------------- *)
(* NAIVE: join, then evaluate every query on the intermediate result       *)
(* --------------------------------------------------------------------- *)

module Naive = struct
  type t = {
    table : Table.s_table;
    queries : (int, Select_query.t) Hashtbl.t;
  }

  let name = "NAIVE"

  let create table queries =
    let h = Hashtbl.create (max 16 (Array.length queries)) in
    Array.iter (fun (q : Select_query.t) -> Hashtbl.replace h q.qid q) queries;
    { table; queries = h }

  let process_r t (r : Tuple.r) sink =
    (* Intermediate result, ordered by S.C. *)
    let joined = Vec.create () in
    iter_joining t.table ~b:r.b (fun s -> Vec.push joined s);
    let m = Vec.length joined in
    if m > 0 then begin
      (* First index with C >= x. *)
      let lower_bound x =
        let lo = ref 0 and hi = ref m in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if (Vec.get joined mid).Tuple.c < x then lo := mid + 1 else hi := mid
        done;
        !lo
      in
      Hashtbl.iter
        (fun _ (q : Select_query.t) ->
          if I.stabs q.range_a r.a then begin
            let i = ref (lower_bound (I.lo q.range_c)) in
            let continue = ref true in
            while !continue && !i < m do
              let s = Vec.get joined !i in
              if s.Tuple.c <= I.hi q.range_c then begin
                sink q s;
                incr i
              end
              else continue := false
            done
          end)
        t.queries
    end

  let affected t (r : Tuple.r) report =
    let joined = Vec.create () in
    iter_joining t.table ~b:r.b (fun s -> Vec.push joined s);
    let m = Vec.length joined in
    if m > 0 then begin
      let lower_bound x =
        let lo = ref 0 and hi = ref m in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if (Vec.get joined mid).Tuple.c < x then lo := mid + 1 else hi := mid
        done;
        !lo
      in
      Hashtbl.iter
        (fun _ (q : Select_query.t) ->
          if I.stabs q.range_a r.a then begin
            let i = lower_bound (I.lo q.range_c) in
            if i < m && (Vec.get joined i).Tuple.c <= I.hi q.range_c then report q
          end)
        t.queries
    end

  let insert_query t q = Hashtbl.replace t.queries q.Select_query.qid q

  let delete_query t (q : Select_query.t) =
    if Hashtbl.mem t.queries q.qid then (Hashtbl.remove t.queries q.qid; true) else false

  let query_count t = Hashtbl.length t.queries
end

(* --------------------------------------------------------------------- *)
(* SJ-JoinFirst: join, then 2-D stab per join result point                 *)
(* --------------------------------------------------------------------- *)

module Join_first = struct
  type t = {
    table : Table.s_table;
    rects : Select_query.t Rtree.t;
    dedupe : dedupe;
    mutable count : int;
  }

  let name = "SJ-J"

  let create table queries =
    let rects = Rtree.create ~max_entries:8 () in
    Array.iter (fun q -> Rtree.insert rects (Select_query.rect q) q) queries;
    { table; rects; dedupe = new_dedupe (); count = Array.length queries }

  let process_r t (r : Tuple.r) sink =
    iter_joining t.table ~b:r.b (fun s ->
        Rtree.stab t.rects ~x:s.Tuple.c ~y:r.a (fun _ q -> sink q s))

  let affected t (r : Tuple.r) report =
    ignore (fresh_event t.dedupe);
    iter_joining t.table ~b:r.b (fun s ->
        Rtree.stab t.rects ~x:s.Tuple.c ~y:r.a (fun _ q ->
            if mark t.dedupe q then report q))

  let insert_query t q =
    Rtree.insert t.rects (Select_query.rect q) q;
    t.count <- t.count + 1

  let delete_query t (q : Select_query.t) =
    let hit = Rtree.remove t.rects (Select_query.rect q) (fun p -> p.Select_query.qid = q.qid) in
    if hit then t.count <- t.count - 1;
    hit

  let query_count t = t.count
end

(* --------------------------------------------------------------------- *)
(* SJ-SelectFirst: R.A selection first, then an index join per query       *)
(* --------------------------------------------------------------------- *)

module Select_first = struct
  type t = {
    table : Table.s_table;
    a_index : Select_query.t Itree.Mutable.t;
  }

  let name = "SJ-S"

  let create table queries =
    let a_index = Itree.Mutable.create () in
    Array.iter (fun (q : Select_query.t) -> Itree.Mutable.add a_index q.range_a q) queries;
    { table; a_index }

  let process_r t (r : Tuple.r) sink =
    Itree.Mutable.stab t.a_index r.a (fun _ (q : Select_query.t) ->
        Pbt.iter_range (Table.s_by_bc t.table)
          ~lo:(r.b, I.lo q.range_c)
          ~hi:(r.b, I.hi q.range_c)
          (fun _ s -> sink q s))

  let affected t (r : Tuple.r) report =
    let bc = Table.s_by_bc t.table in
    Itree.Mutable.stab t.a_index r.a (fun _ (q : Select_query.t) ->
        match Pbt.seek_ge bc (r.b, I.lo q.range_c) with
        | Some c ->
            let kb, kc = Pbt.key c in
            if kb = r.b && kc <= I.hi q.range_c then report q
        | None -> ())

  let insert_query t (q : Select_query.t) = Itree.Mutable.add t.a_index q.range_a q

  let delete_query t (q : Select_query.t) =
    Itree.Mutable.remove t.a_index q.range_a (fun p -> p.Select_query.qid = q.qid)

  let query_count t = Itree.Mutable.size t.a_index
end

(* --------------------------------------------------------------------- *)
(* Shared SSI group processing (Section 3.2, Figure 5)                     *)
(* --------------------------------------------------------------------- *)

(* STEP 1 for one stabbing group (on the rangeC projections) with
   stabbing point [stab], whose member rectangles live in [rtree]:
   find the affected queries and the anchor cursors for STEP 2. *)
let group_step1 table dedupe (r : Tuple.r) ~stab ~rtree =
  let b = r.b in
  let bc = Table.s_by_bc table in
  (* Anchors: the joining S-tuples whose C values surround the stabbing
     point.  c2 = leftmost entry >= (b, stab); its predecessor is the
     rightmost entry < (b, stab).  Each anchor is only usable while it
     stays within the event's B value. *)
  let c2 = Pbt.seek_ge bc (b, stab) in
  let c1 = match c2 with Some c -> Pbt.prev c | None -> Pbt.seek_le bc (b, stab) in
  let fwd = match c2 with Some c when fst (Pbt.key c) = b -> Some c | _ -> None in
  let bwd = match c1 with Some c when fst (Pbt.key c) = b -> Some c | _ -> None in
  let affected = Vec.create () in
  if not (fwd = None && bwd = None) then begin
    let consider q = if mark dedupe q then Vec.push affected q in
    (* The two join result points closest to (stab, r.a) probe the
       group's rectangle index. *)
    (match bwd with
    | Some c ->
        let q1 = snd (Pbt.key c) in
        Rtree.stab rtree ~x:q1 ~y:r.a (fun _ q -> consider q)
    | None -> ());
    match fwd with
    | Some c ->
        let q2 = snd (Pbt.key c) in
        Rtree.stab rtree ~x:q2 ~y:r.a (fun _ q -> consider q)
    | None -> ()
  end;
  (affected, bwd, fwd)

let process_group table dedupe (r : Tuple.r) (sink : sink) ~stab ~rtree =
  let b = r.b in
  let affected, bwd, fwd = group_step1 table dedupe r ~stab ~rtree in
  begin
    (* STEP 2: each affected rectangle covers a consecutive C-run of
       join result points including an anchor; walk outward. *)
    Vec.iter
      (fun (q : Select_query.t) ->
        let lo_c = I.lo q.range_c and hi_c = I.hi q.range_c in
        let rec back = function
          | Some c ->
              let kb, kc = Pbt.key c in
              if kb = b && kc >= lo_c then begin
                sink q (Pbt.value c);
                back (Pbt.prev c)
              end
          | None -> ()
        in
        back bwd;
        let rec forward = function
          | Some c ->
              let kb, kc = Pbt.key c in
              if kb = b && kc <= hi_c then begin
                sink q (Pbt.value c);
                forward (Pbt.next c)
              end
          | None -> ()
        in
        forward fwd)
      affected
  end

let identify_group table dedupe r report ~stab ~rtree =
  let affected, _, _ = group_step1 table dedupe r ~stab ~rtree in
  Vec.iter report affected

(* --------------------------------------------------------------------- *)
(* SJ-SSI over a static canonical partition of the rangeC projections      *)
(* --------------------------------------------------------------------- *)

module Group_rtree = struct
  type elt = Select_query.t
  type t = Select_query.t Rtree.t

  let build ~stab:_ members =
    let rt = Rtree.create ~max_entries:8 () in
    Array.iter (fun q -> Rtree.insert rt (Select_query.rect q) q) members;
    rt
end

module Ssi_index = Hotspot_core.Ssi.Make (Select_query.Elem_c) (Group_rtree)

module Ssi = struct
  type t = {
    table : Table.s_table;
    queries : (int, Select_query.t) Hashtbl.t;
    mutable index : Ssi_index.t;
    mutable dirty : bool;
    dedupe : dedupe;
  }

  let name = "SJ-SSI"

  let rebuild t =
    let qs = Hashtbl.fold (fun _ q acc -> q :: acc) t.queries [] in
    t.index <- Ssi_index.build (Array.of_list qs);
    t.dirty <- false

  let create table queries =
    let h = Hashtbl.create (max 16 (Array.length queries)) in
    Array.iter (fun (q : Select_query.t) -> Hashtbl.replace h q.qid q) queries;
    { table; queries = h; index = Ssi_index.build queries; dirty = false; dedupe = new_dedupe () }

  let process_r t r sink =
    if t.dirty then rebuild t;
    ignore (fresh_event t.dedupe);
    Ssi_index.iter t.index (fun ~stab rtree ->
        process_group t.table t.dedupe r sink ~stab ~rtree)

  let affected t r report =
    if t.dirty then rebuild t;
    ignore (fresh_event t.dedupe);
    Ssi_index.iter t.index (fun ~stab rtree ->
        identify_group t.table t.dedupe r report ~stab ~rtree)

  let insert_query t q =
    Hashtbl.replace t.queries q.Select_query.qid q;
    t.dirty <- true

  let delete_query t (q : Select_query.t) =
    if Hashtbl.mem t.queries q.qid then begin
      Hashtbl.remove t.queries q.qid;
      t.dirty <- true;
      true
    end
    else false

  let query_count t = Hashtbl.length t.queries
end

(* --------------------------------------------------------------------- *)
(* SSI + hotspot tracking (Figure 9's HOTSPOT-BASED)                       *)
(* --------------------------------------------------------------------- *)

module Tracker = Hotspot_core.Hotspot_tracker.Make (Select_query.Elem_c)

module Hotspot = struct
  type t = {
    table : Table.s_table;
    tracker : Tracker.t;
    hot : (int, Select_query.t Rtree.t) Hashtbl.t;
    scattered_a : Select_query.t Itree.Mutable.t;
    dedupe : dedupe;
  }

  let name = "SJ-Hotspot"

  let create_alpha ~alpha ?seed table queries =
    let hot = Hashtbl.create 16 in
    let scattered_a = Itree.Mutable.create () in
    let on_event = function
      | Tracker.Hotspot_created (gid, members) ->
          let rt = Rtree.create ~max_entries:8 () in
          List.iter (fun q -> Rtree.insert rt (Select_query.rect q) q) members;
          Hashtbl.replace hot gid rt
      | Tracker.Hotspot_destroyed (gid, _) -> Hashtbl.remove hot gid
      | Tracker.Hotspot_added (gid, q) ->
          Rtree.insert (Hashtbl.find hot gid) (Select_query.rect q) q
      | Tracker.Hotspot_removed (gid, q) ->
          ignore
            (Rtree.remove (Hashtbl.find hot gid) (Select_query.rect q) (fun p ->
                 p.Select_query.qid = q.Select_query.qid))
      | Tracker.Scattered_added q -> Itree.Mutable.add scattered_a q.Select_query.range_a q
      | Tracker.Scattered_removed q ->
          ignore
            (Itree.Mutable.remove scattered_a q.Select_query.range_a (fun p ->
                 p.Select_query.qid = q.Select_query.qid))
    in
    let tracker = Tracker.create ~alpha ?seed ~on_event () in
    Array.iter (fun q -> Tracker.insert tracker q) queries;
    { table; tracker; hot; scattered_a; dedupe = new_dedupe () }

  let create table queries = create_alpha ~alpha:0.001 table queries

  let process_r t (r : Tuple.r) sink =
    ignore (fresh_event t.dedupe);
    (* Hotspot queries: SJ-SSI per hotspot group. *)
    Hashtbl.iter
      (fun gid rtree ->
        let stab = Tracker.hotspot_stab t.tracker gid in
        process_group t.table t.dedupe r sink ~stab ~rtree)
      t.hot;
    (* Scattered queries: SJ-SelectFirst. *)
    Itree.Mutable.stab t.scattered_a r.a (fun _ (q : Select_query.t) ->
        Pbt.iter_range (Table.s_by_bc t.table)
          ~lo:(r.b, I.lo q.range_c)
          ~hi:(r.b, I.hi q.range_c)
          (fun _ s -> sink q s))

  let affected t (r : Tuple.r) report =
    ignore (fresh_event t.dedupe);
    Hashtbl.iter
      (fun gid rtree ->
        let stab = Tracker.hotspot_stab t.tracker gid in
        identify_group t.table t.dedupe r report ~stab ~rtree)
      t.hot;
    let bc = Table.s_by_bc t.table in
    Itree.Mutable.stab t.scattered_a r.a (fun _ (q : Select_query.t) ->
        match Pbt.seek_ge bc (r.b, I.lo q.range_c) with
        | Some c ->
            let kb, kc = Pbt.key c in
            if kb = r.b && kc <= I.hi q.range_c then report q
        | None -> ())

  let insert_query t q = Tracker.insert t.tracker q
  let delete_query t q = Tracker.delete t.tracker q
  let query_count t = Tracker.size t.tracker
  let num_hotspots t = Tracker.num_hotspots t.tracker
  let coverage t = Tracker.coverage t.tracker

  (* The per-hotspot R-trees and the scattered interval tree are
     maintained purely from the tracker's event stream; verify they
     never drift from the tracker's own view. *)
  let check_invariants t =
    Tracker.check_invariants t.tracker;
    let fail fmt = Printf.ksprintf failwith fmt in
    let hotspots = Tracker.hotspots t.tracker in
    if List.length hotspots <> Hashtbl.length t.hot then
      fail "SJ-Hotspot: %d aux R-trees for %d hotspots" (Hashtbl.length t.hot)
        (List.length hotspots);
    List.iter
      (fun (gid, _, members) ->
        match Hashtbl.find_opt t.hot gid with
        | None -> fail "SJ-Hotspot: hotspot %d has no aux R-tree" gid
        | Some rt ->
            Rtree.check_invariants rt;
            if Rtree.size rt <> List.length members then
              fail "SJ-Hotspot: hotspot %d R-tree holds %d of %d members" gid (Rtree.size rt)
                (List.length members))
      hotspots;
    let scattered = Tracker.scattered t.tracker in
    Itree.check_invariants (Itree.Mutable.snapshot t.scattered_a);
    if Itree.Mutable.size t.scattered_a <> List.length scattered then
      fail "SJ-Hotspot: scattered interval tree holds %d of %d queries"
        (Itree.Mutable.size t.scattered_a) (List.length scattered)
end

(* --------------------------------------------------------------------- *)
(* Adaptive per-event strategy choice (Section 6)                          *)
(* --------------------------------------------------------------------- *)

module Adaptive = struct
  type choice = Use_select_first | Use_ssi

  type t = {
    table : Table.s_table;
    sf : Select_first.t;
    ssi : Ssi.t;
    threshold : float;
    (* n' estimator: an SSI histogram over the rangeA intervals,
       rebuilt lazily after query churn. *)
    mutable estimator : Cq_histogram.Ssi_hist.t option;
    mutable churn : int;
    mutable sf_events : int;
    mutable ssi_events : int;
  }

  let name = "SJ-ADAPT"

  let create_tuned ~threshold table queries =
    {
      table;
      sf = Select_first.create table queries;
      ssi = Ssi.create table queries;
      threshold;
      estimator = None;
      churn = 0;
      sf_events = 0;
      ssi_events = 0;
    }

  let create table queries = create_tuned ~threshold:2.0 table queries

  let estimator t =
    match t.estimator with
    | Some h when t.churn = 0 -> h
    | _ ->
        let ranges =
          Hashtbl.fold (fun _ (q : Select_query.t) acc -> q.range_a :: acc) t.ssi.Ssi.queries []
          |> Array.of_list
        in
        let buckets = max 16 (Array.length ranges / 250) in
        let h = Cq_histogram.Ssi_hist.build ranges ~buckets in
        t.estimator <- Some h;
        t.churn <- 0;
        h

  let choose t (r : Tuple.r) =
    let est_n' = Cq_histogram.Ssi_hist.estimate (estimator t) r.a in
    (* Make sure the SSI index is current before reading tau. *)
    if t.ssi.Ssi.dirty then Ssi.rebuild t.ssi;
    let tau = float_of_int (Ssi_index.num_groups t.ssi.Ssi.index) in
    if est_n' < t.threshold *. tau then Use_select_first else Use_ssi

  let process_r t r sink =
    match choose t r with
    | Use_select_first ->
        t.sf_events <- t.sf_events + 1;
        Select_first.process_r t.sf r sink
    | Use_ssi ->
        t.ssi_events <- t.ssi_events + 1;
        Ssi.process_r t.ssi r sink

  let affected t r report =
    match choose t r with
    | Use_select_first ->
        t.sf_events <- t.sf_events + 1;
        Select_first.affected t.sf r report
    | Use_ssi ->
        t.ssi_events <- t.ssi_events + 1;
        Ssi.affected t.ssi r report

  let insert_query t q =
    Select_first.insert_query t.sf q;
    Ssi.insert_query t.ssi q;
    t.churn <- t.churn + 1

  let delete_query t q =
    let ok = Select_first.delete_query t.sf q in
    if ok then begin
      ignore (Ssi.delete_query t.ssi q);
      t.churn <- t.churn + 1
    end;
    ok

  let query_count t = Ssi.query_count t.ssi
  let decisions t = (t.sf_events, t.ssi_events)
end

(* --------------------------------------------------------------------- *)
(* Ground truth                                                            *)
(* --------------------------------------------------------------------- *)

let reference table queries (r : Tuple.r) =
  let acc = ref [] in
  Array.iter
    (fun (q : Select_query.t) ->
      Table.iter_s table (fun s ->
          if s.Tuple.b = r.b && Select_query.matches q ~r_a:r.a ~s_c:s.Tuple.c then
            acc := (q.qid, s.sid) :: !acc))
    queries;
  List.sort compare !acc
