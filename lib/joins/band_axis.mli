(** Shared STEP-1 machinery for stabbing groups partitioned on a band
    (S.B − R.B) axis — the group walk of Section 3.1 that both the
    band-join and composite-query processors instantiate.

    An incoming R-tuple shifts every member window by its B value; the
    two S-tuples closest to the shifted stabbing point certify which
    members are affected: a member whose window reaches the left
    anchor (scanned in increasing left-endpoint order) or the right
    anchor (scanned in decreasing right-endpoint order) has at least
    one joining S-tuple. *)

val window_nonempty : Cq_relation.Table.s_table -> Cq_interval.Interval.t -> bool
(** Does the S.B index hold any value inside the window? *)

module Make (X : sig
  type q

  val qid : q -> int
  val axis : q -> Cq_interval.Interval.t
end) : sig
  type g
  (** A group's members in two sorted endpoint sequences, plus a
      reusable STEP-1 scratch buffer. *)

  val create : unit -> g
  val add : g -> X.q -> unit
  val remove : g -> X.q -> unit
  val size : g -> int

  val check_invariants : g -> unit
  (** @raise Failure on violation. *)

  val step1 :
    Cq_relation.Table.s_table ->
    Cq_relation.Tuple.r ->
    g ->
    stab:float ->
    mark:(X.q -> bool) ->
    X.q Cq_util.Vec.t
  (** Affected members (those accepted by [mark]).  The returned vector
      is the group's own scratch buffer, cleared and refilled on every
      call: read it before the next [step1] on the same group and do
      not retain it.  Callers needing the STEP-2 anchors recompute them
      from [stab +. r.b] with {!Cq_relation.Table.Fbt.walk_lt} /
      [walk_ge] (rightmost entry below the shifted stabbing point and
      leftmost at or above it, respectively). *)
end
