module I = Cq_interval.Interval
module Table = Cq_relation.Table
module Tuple = Cq_relation.Tuple
module Pbt = Table.Pbt
module Rtree = Cq_index.Rtree
module Vec = Cq_util.Vec
module S2 = Hotspot_core.Stabbing2d

type r_sink = Select_query.t -> Tuple.s -> unit
type s_sink = Select_query.t -> Tuple.r -> unit

type group = {
  pc : float; (* stabbing point on the S.C axis *)
  pa : float; (* stabbing point on the R.A axis *)
  rtree : Select_query.t Rtree.t;
}

type t = {
  s_table : Table.s_table;
  r_table : Table.r_table;
  queries : (int, Select_query.t) Hashtbl.t;
  mutable groups : group array;
  mutable dirty : bool;
  seen : (int, int) Hashtbl.t;
  mutable event : int;
}

let rebuild t =
  let qs = Array.of_list (Hashtbl.fold (fun _ q acc -> q :: acc) t.queries []) in
  let partition = S2.partition Select_query.rect qs in
  t.groups <-
    Array.map
      (fun (g : Select_query.t S2.group) ->
        let rtree = Rtree.create ~max_entries:8 () in
        Array.iter (fun q -> Rtree.insert rtree (Select_query.rect q) q) g.members;
        { pc = g.px; pa = g.py; rtree })
      partition;
  t.dirty <- false

let create s_table r_table queries =
  let h = Hashtbl.create (max 16 (Array.length queries)) in
  Array.iter (fun (q : Select_query.t) -> Hashtbl.replace h q.qid q) queries;
  let t =
    {
      s_table;
      r_table;
      queries = h;
      groups = [||];
      dirty = true;
      seen = Hashtbl.create 256;
      event = 0;
    }
  in
  rebuild t;
  t

let num_groups t =
  if t.dirty then rebuild t;
  Array.length t.groups

let query_count t = Hashtbl.length t.queries

let fresh_event t =
  t.event <- t.event + 1;
  t.event

let mark t (q : Select_query.t) =
  match Hashtbl.find_opt t.seen q.qid with
  | Some ev when ev = t.event -> false
  | _ ->
      Hashtbl.replace t.seen q.qid t.event;
      true

(* Generic group processing over a composite-keyed B-tree: the paper's
   STEP 1 (two anchor probes into the group's rectangle index) and
   STEP 2 (outward leaf walks bounded by the query's selection range).
   Instantiated with the S(B,C) index for R events and the R(B,A) index
   for S events — only the axis accessors change. *)
let process_group (type v) t (bt : v Pbt.t) ~b ~stab ~probe_of ~range_of
    ~(rtree : Select_query.t Rtree.t) ~(emit : Select_query.t -> v -> unit) =
  let c2 = Pbt.seek_ge bt (b, stab) in
  let c1 = match c2 with Some c -> Pbt.prev c | None -> Pbt.seek_le bt (b, stab) in
  let fwd = match c2 with Some c when fst (Pbt.key c) = b -> Some c | _ -> None in
  let bwd = match c1 with Some c when fst (Pbt.key c) = b -> Some c | _ -> None in
  if not (Option.is_none fwd && Option.is_none bwd) then begin
    let affected = Vec.create () in
    let consider q = if mark t q then Vec.push affected q in
    (match bwd with
    | Some c -> probe_of rtree (snd (Pbt.key c)) consider
    | None -> ());
    (match fwd with
    | Some c -> probe_of rtree (snd (Pbt.key c)) consider
    | None -> ());
    Vec.iter
      (fun (q : Select_query.t) ->
        let range = range_of q in
        let lo = I.lo range and hi = I.hi range in
        let rec back = function
          | Some c ->
              let kb, kv = Pbt.key c in
              if kb = b && kv >= lo then begin
                emit q (Pbt.value c);
                back (Pbt.prev c)
              end
          | None -> ()
        in
        back bwd;
        let rec forward = function
          | Some c ->
              let kb, kv = Pbt.key c in
              if kb = b && kv <= hi then begin
                emit q (Pbt.value c);
                forward (Pbt.next c)
              end
          | None -> ()
        in
        forward fwd)
      affected
  end

let process_r t (r : Tuple.r) (sink : r_sink) =
  if t.dirty then rebuild t;
  ignore (fresh_event t);
  Array.iter
    (fun g ->
      process_group t (Table.s_by_bc t.s_table) ~b:r.b ~stab:g.pc
        ~probe_of:(fun rt c k -> Rtree.stab rt ~x:c ~y:r.a (fun _ q -> k q))
        ~range_of:(fun q -> q.Select_query.range_c)
        ~rtree:g.rtree ~emit:sink)
    t.groups

let process_s t (s : Tuple.s) (sink : s_sink) =
  if t.dirty then rebuild t;
  ignore (fresh_event t);
  Array.iter
    (fun g ->
      process_group t (Table.r_by_ba t.r_table) ~b:s.b ~stab:g.pa
        ~probe_of:(fun rt a k -> Rtree.stab rt ~x:s.c ~y:a (fun _ q -> k q))
        ~range_of:(fun q -> q.Select_query.range_a)
        ~rtree:g.rtree ~emit:sink)
    t.groups

let insert_query t (q : Select_query.t) =
  Hashtbl.replace t.queries q.qid q;
  t.dirty <- true

let delete_query t (q : Select_query.t) =
  if Hashtbl.mem t.queries q.qid then begin
    Hashtbl.remove t.queries q.qid;
    t.dirty <- true;
    true
  end
  else false

let reference_s r_table queries (s : Tuple.s) =
  let acc = ref [] in
  Array.iter
    (fun (q : Select_query.t) ->
      Table.iter_r r_table (fun r ->
          if r.Tuple.b = s.b && Select_query.matches q ~r_a:r.Tuple.a ~s_c:s.c then
            acc := (q.qid, r.rid) :: !acc))
    queries;
  List.sort Cq_util.Order.int_pair !acc
