module I = Cq_interval.Interval
module Table = Cq_relation.Table
module Tuple = Cq_relation.Tuple
module Fbt = Table.Fbt
module Itree = Cq_index.Interval_tree
module Vec = Cq_util.Vec
module CQ = Composite_query
module Processor = Hotspot_core.Processor

type sink = CQ.t -> Tuple.s -> unit

module type STRATEGY =
  Processor.STRATEGY
    with type query := CQ.t
     and type event := Tuple.r
     and type store := Table.s_table
     and type result := Tuple.s

module type PROCESSOR =
  Processor.PROCESSOR
    with type query = CQ.t
     and type event = Tuple.r
     and type store = Table.s_table
     and type result = Tuple.s

(* Emit results of one query against the event: scan the instantiated
   band window on the S.B index, filtering by the C selection.  With
   [stop_after_first], stops at the first hit (existence probing for
   [affected]).  Returns whether anything matched. *)
let probe_query table (q : CQ.t) ~b ~stop_after_first sink =
  let w = I.shift q.band b in
  let hit = ref false in
  (try
     Fbt.iter_range (Table.s_by_b table) ~lo:(I.lo w) ~hi:(I.hi w) (fun _ s ->
         if I.stabs q.range_c s.Tuple.c then begin
           hit := true;
           sink q s;
           if stop_after_first then raise Exit
         end)
   with Exit -> ());
  !hit

(* --------------------------------------------------------------------- *)
(* NAIVE                                                                   *)
(* --------------------------------------------------------------------- *)

module Naive = struct
  type t = {
    table : Table.s_table;
    queries : (int, CQ.t) Hashtbl.t;
  }

  let name = "CJ-NAIVE"

  let create table queries =
    let h = Hashtbl.create (max 16 (Array.length queries)) in
    Array.iter (fun (q : CQ.t) -> Hashtbl.replace h q.qid q) queries;
    { table; queries = h }

  let visit t (r : Tuple.r) ~stop_after_first sink report =
    Hashtbl.iter
      (fun _ (q : CQ.t) ->
        if I.stabs q.range_a r.a then
          if probe_query t.table q ~b:r.b ~stop_after_first sink then report q)
      t.queries

  let process_r t r sink = visit t r ~stop_after_first:false sink (fun _ -> ())
  let affected t r report = visit t r ~stop_after_first:true (fun _ _ -> ()) report

  let insert_query t q = Hashtbl.replace t.queries q.CQ.qid q

  let delete_query t (q : CQ.t) =
    if Hashtbl.mem t.queries q.qid then (Hashtbl.remove t.queries q.qid; true) else false

  let query_count t = Hashtbl.length t.queries
end

(* --------------------------------------------------------------------- *)
(* A-first: R.A selection index, then per-query probing                    *)
(* --------------------------------------------------------------------- *)

module Afirst = struct
  type t = {
    table : Table.s_table;
    a_index : CQ.t Itree.Mutable.t;
  }

  let name = "CJ-A"

  let create table queries =
    let a_index = Itree.Mutable.create () in
    Array.iter (fun (q : CQ.t) -> Itree.Mutable.add a_index q.range_a q) queries;
    { table; a_index }

  let process_r t (r : Tuple.r) sink =
    Itree.Mutable.stab t.a_index r.a (fun _ q ->
        ignore (probe_query t.table q ~b:r.b ~stop_after_first:false sink))

  let affected t (r : Tuple.r) report =
    Itree.Mutable.stab t.a_index r.a (fun _ q ->
        if probe_query t.table q ~b:r.b ~stop_after_first:true (fun _ _ -> ()) then report q)

  let insert_query t (q : CQ.t) = Itree.Mutable.add t.a_index q.range_a q

  let delete_query t (q : CQ.t) =
    Itree.Mutable.remove t.a_index q.range_a (fun p -> p.CQ.qid = q.qid)

  let query_count t = Itree.Mutable.size t.a_index
end

(* --------------------------------------------------------------------- *)
(* The shared processor core: groups on the band axis; the R.A             *)
(* selection is tested before a candidate is accepted (an O(1) filter      *)
(* the group walk absorbs for free) and the C selection during the         *)
(* per-candidate result walk.  STEP 2's output-sensitivity is lost to      *)
(* the C filter — exactly the composition difficulty the paper flags.      *)
(* --------------------------------------------------------------------- *)

module G = Band_axis.Make (struct
  type q = CQ.t

  let qid (q : CQ.t) = q.qid
  let axis (q : CQ.t) = q.band
end)

module Core_query = struct
  type t = CQ.t
  type event = Tuple.r
  type store = Table.s_table
  type result = Tuple.s

  let label = "CJ"
  let qid (q : CQ.t) = q.qid
  let compare = CQ.Elem.compare

  (* Partition on the band windows; scattered queries are pruned by
     their rangeA selection first (the Afirst idea). *)
  let interval (q : CQ.t) = q.band
  let scatter_interval (q : CQ.t) = q.range_a
  let scatter_point (r : Tuple.r) = Some r.a

  let probe table q (r : Tuple.r) emit =
    ignore (probe_query table q ~b:r.b ~stop_after_first:false (fun _ s -> emit s))

  let probe_hit table q (r : Tuple.r) =
    probe_query table q ~b:r.b ~stop_after_first:true (fun _ _ -> ())

  module Group = struct
    type g = G.g

    let create = G.create
    let add = G.add
    let remove = G.remove
    let size = G.size
    let check_invariants = G.check_invariants

    let candidates table g ~stab (r : Tuple.r) ~mark =
      let mark' (q : CQ.t) = I.stabs q.range_a r.a && mark q in
      G.step1 table r g ~stab ~mark:mark'

    let process table g ~stab (r : Tuple.r) ~mark sink =
      Vec.iter
        (fun (q : CQ.t) ->
          ignore (probe_query table q ~b:r.b ~stop_after_first:false (fun q s -> sink q s)))
        (candidates table g ~stab r ~mark)

    let identify table g ~stab (r : Tuple.r) ~mark report =
      Vec.iter
        (fun (q : CQ.t) ->
          if probe_query table q ~b:r.b ~stop_after_first:true (fun _ _ -> ()) then report q)
        (candidates table g ~stab r ~mark)
  end
end

module Make_core (B : Cq_index.Stab_backend.S) = Processor.Make (Core_query) (B)
module C_itree = Make_core (Cq_index.Stab_backend.Instrumented_interval_tree)
module C_skiplist = Make_core (Cq_index.Stab_backend.Instrumented_interval_skiplist)
module C_treap = Make_core (Cq_index.Stab_backend.Instrumented_treap)

module Ssi = C_itree.Ssi

module Hotspot = struct
  include C_itree.Hotspot

  let create_alpha ~alpha ?seed table queries = create_cfg ~alpha ?seed table queries
end

let processor strategy kind : (module PROCESSOR) =
  match (strategy, kind) with
  | Processor.Hotspot, Cq_index.Stab_backend.Itree -> (module C_itree.Hotspot)
  | Processor.Hotspot, Cq_index.Stab_backend.Skiplist -> (module C_skiplist.Hotspot)
  | Processor.Hotspot, Cq_index.Stab_backend.Treap_pst -> (module C_treap.Hotspot)
  | Processor.Ssi, Cq_index.Stab_backend.Itree -> (module C_itree.Ssi)
  | Processor.Ssi, Cq_index.Stab_backend.Skiplist -> (module C_skiplist.Ssi)
  | Processor.Ssi, Cq_index.Stab_backend.Treap_pst -> (module C_treap.Ssi)

(* --------------------------------------------------------------------- *)

let reference table queries (r : Tuple.r) =
  let acc = ref [] in
  Array.iter
    (fun (q : CQ.t) ->
      Table.iter_s table (fun s ->
          if CQ.matches q ~r_a:r.a ~r_b:r.b ~s_b:s.Tuple.b ~s_c:s.Tuple.c then
            acc := (q.qid, s.sid) :: !acc))
    queries;
  List.sort Cq_util.Order.int_pair !acc
