module I = Cq_interval.Interval

type t = { qid : int; range : I.t }

let make ~qid ~range = { qid; range }

let of_ranges ranges = Array.mapi (fun qid range -> { qid; range }) ranges

let[@cq.hot] instantiated q ~b = I.shift q.range b

let[@cq.hot] matches q ~r_b ~s_b = I.stabs q.range (s_b -. r_b)

let pp fmt q = Format.fprintf fmt "bq#%d%a" q.qid I.pp q.range

module Elem = struct
  type nonrec t = t

  let compare a b =
    let c = I.compare_lo a.range b.range in
    if c <> 0 then c else Int.compare a.qid b.qid

  let interval q = q.range
end
