(** Processing composite continuous queries (band join + local
    selections) — an implementation of Section 6's first future-work
    direction.

    Composition costs something: once a C-selection filters the
    B-consecutive result run, output-sensitivity of the SSI's STEP 2 is
    lost (a candidate query may scan part of its instantiated window
    without producing anything).  The SSI strategy here therefore
    guarantees only that {e band-unaffected} queries are never touched;
    among band-affected candidates, the R.A selection is tested in O(1)
    and the C selection during the result walk.  This is precisely the
    composition difficulty the paper flags ("it remains a challenging
    problem to develop methods for composing group-processing
    techniques").

    {!Ssi} and {!Hotspot} are instantiations of the shared
    {!Hotspot_core.Processor.Make} core — the hotspot tracker partitions
    the band windows, and scattered queries are indexed (and pruned) by
    their rangeA selections; {!processor} selects one per strategy ×
    stabbing backend. *)

type sink = Composite_query.t -> Cq_relation.Tuple.s -> unit

module type STRATEGY =
  Hotspot_core.Processor.STRATEGY
    with type query := Composite_query.t
     and type event := Cq_relation.Tuple.r
     and type store := Cq_relation.Table.s_table
     and type result := Cq_relation.Tuple.s

module type PROCESSOR =
  Hotspot_core.Processor.PROCESSOR
    with type query = Composite_query.t
     and type event = Cq_relation.Tuple.r
     and type store = Cq_relation.Table.s_table
     and type result = Cq_relation.Tuple.s

module Naive : STRATEGY
(** Scan every query; O(n (log m + window)). *)

module Afirst : STRATEGY
(** Stab an interval index on the rangeA selections first (the
    SJ-SelectFirst idea transplanted), then probe per query. *)

module Ssi : STRATEGY
(** SSI over the band windows with inline selection filtering. *)

module Hotspot : sig
  include PROCESSOR

  val create_alpha :
    alpha:float -> ?seed:int -> Cq_relation.Table.s_table -> Composite_query.t array -> t
  (** [seed] drives the tracker's scattered-partition treap priorities;
      fixing it makes a run reproducible bit-for-bit. *)
end
(** SSI on α-hotspots of the band windows; scattered queries sit in a
    stabbing index on their rangeA selections (the {!Afirst} idea), so
    an event only ever touches scattered queries whose A-selection it
    satisfies. *)

val processor :
  Hotspot_core.Processor.strategy ->
  Cq_index.Stab_backend.kind ->
  (module PROCESSOR)
(** The {!Hotspot} or {!Ssi} processor backed by the chosen stabbing
    backend ({!Hotspot} and {!Ssi} themselves are the interval-tree
    instances). *)

val reference :
  Cq_relation.Table.s_table ->
  Composite_query.t array ->
  Cq_relation.Tuple.r ->
  (int * int) list
(** Brute-force oracle: sorted (qid, sid) result pairs for one event. *)
