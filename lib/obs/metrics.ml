(* Counters, gauges and log-bucketed histograms behind one registry.
   Everything is gated on a single global switch, off by default: a
   disabled [incr]/[observe] is one load and one branch, so
   instrumentation can stay in the hot paths permanently. *)

let on = ref false

let set_enabled b = on := b
let enabled () = !on

(* ------------------------------------------------------------------ *)
(* Metric cells                                                         *)
(* ------------------------------------------------------------------ *)

type counter = { mutable c : int }
type gauge = { mutable g : float }

(* Power-of-two buckets: bucket 0 holds values < 1, bucket i >= 1 holds
   [2^(i-1), 2^i), and the last bucket absorbs everything above.  The
   mantissa/exponent decomposition makes [bucket_of] exact — no log2
   rounding at bucket boundaries. *)
let n_buckets = 64

type histogram = {
  counts : int array; (* length n_buckets *)
  mutable n : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
}

let bucket_of v =
  if not (v >= 1.0) then 0 (* negatives and NaN collapse into bucket 0 *)
  else
    let _, e = Float.frexp v in
    min (n_buckets - 1) e

let bucket_bounds i =
  if i <= 0 then (0.0, 1.0)
  else if i >= n_buckets - 1 then (Float.ldexp 1.0 (n_buckets - 2), infinity)
  else (Float.ldexp 1.0 (i - 1), Float.ldexp 1.0 i)

let incr c = if !on then c.c <- c.c + 1
let add c k = if !on then c.c <- c.c + k
let counter_value c = c.c

let set g v = if !on then g.g <- v
let gauge_value g = g.g

let observe h v =
  if !on then begin
    h.counts.(bucket_of v) <- h.counts.(bucket_of v) + 1;
    h.n <- h.n + 1;
    h.sum <- h.sum +. v;
    if v < h.mn then h.mn <- v;
    if v > h.mx then h.mx <- v
  end

let hist_count h = h.n
let hist_sum h = h.sum
let hist_max h = if h.n = 0 then 0.0 else h.mx
let hist_min h = if h.n = 0 then 0.0 else h.mn

(* Nearest-rank over the buckets; the estimate is the containing
   bucket's upper bound, clamped into the observed [min, max] range so
   p0 is exact-min and p100 exact-max. *)
let percentile h p =
  if h.n = 0 then 0.0
  else if p <= 0.0 then h.mn
  else if p >= 100.0 then h.mx
  else begin
    let rank = max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int h.n))) in
    let i = ref 0 and cum = ref 0 in
    while !cum < rank && !i < n_buckets do
      cum := !cum + h.counts.(!i);
      i := !i + 1
    done;
    let _, hi = bucket_bounds (!i - 1) in
    Float.max h.mn (Float.min hi h.mx)
  end

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)
(* ------------------------------------------------------------------ *)

(* The registry's structural operations (interning, reset, snapshot)
   take [lock] so they are safe from any domain — a Hashtbl being
   resized by one domain while another walks it is memory-unsafe.
   Recording into an already-interned cell stays lock-free: a lost
   increment under concurrent recording is acceptable, a torn registry
   is not. *)
type registry = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  lock : Mutex.t;
}

let create_registry () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
    lock = Mutex.create ();
  }

let registry = create_registry ()

let with_lock r f =
  Mutex.lock r.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.lock) f

let intern r tbl name make =
  with_lock r (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some m -> m
      | None ->
          let m = make () in
          Hashtbl.replace tbl name m;
          m)

let counter ?(registry = registry) name =
  intern registry registry.counters name (fun () -> { c = 0 })

let gauge ?(registry = registry) name =
  intern registry registry.gauges name (fun () -> { g = 0.0 })

let histogram ?(registry = registry) name =
  intern registry registry.histograms name (fun () ->
      { counts = Array.make n_buckets 0; n = 0; sum = 0.0; mn = infinity; mx = neg_infinity })

let reset ?(registry = registry) () =
  with_lock registry (fun () ->
      Hashtbl.iter (fun _ c -> c.c <- 0) registry.counters;
      Hashtbl.iter (fun _ g -> g.g <- 0.0) registry.gauges;
      Hashtbl.iter
        (fun _ h ->
          Array.fill h.counts 0 n_buckets 0;
          h.n <- 0;
          h.sum <- 0.0;
          h.mn <- infinity;
          h.mx <- neg_infinity)
        registry.histograms)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                            *)
(* ------------------------------------------------------------------ *)

type hist_summary = {
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type snapshot = {
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_histograms : (string * hist_summary) list;
}

let summarize h =
  {
    count = h.n;
    sum = h.sum;
    min_v = hist_min h;
    max_v = hist_max h;
    p50 = percentile h 50.0;
    p90 = percentile h 90.0;
    p99 = percentile h 99.0;
  }

let by_name (a, _) (b, _) = String.compare a b

let snapshot ?(registry = registry) () =
  with_lock registry (fun () ->
      {
        snap_counters =
          Hashtbl.fold (fun k c acc -> (k, c.c) :: acc) registry.counters []
          |> List.sort by_name;
        snap_gauges =
          Hashtbl.fold (fun k g acc -> (k, g.g) :: acc) registry.gauges [] |> List.sort by_name;
        snap_histograms =
          Hashtbl.fold (fun k h acc -> (k, summarize h) :: acc) registry.histograms []
          |> List.sort by_name;
      })

let pp_snapshot fmt s =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (k, v) -> Format.fprintf fmt "%-40s %d@," k v) s.snap_counters;
  List.iter (fun (k, v) -> Format.fprintf fmt "%-40s %g@," k v) s.snap_gauges;
  List.iter
    (fun (k, h) ->
      Format.fprintf fmt "%-40s n=%d p50=%.3g p90=%.3g p99=%.3g max=%.3g@," k h.count h.p50
        h.p90 h.p99 h.max_v)
    s.snap_histograms;
  Format.fprintf fmt "@]"

let pp fmt () = pp_snapshot fmt (snapshot ())
