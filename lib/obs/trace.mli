(** Structured trace layer: a fixed-capacity ring buffer of typed
    span/instant events with monotonic timestamps.

    Like {!Metrics}, recording is gated on a global switch (off by
    default) so [with_span]/[instant] calls can live permanently in the
    hot paths; a disabled call is one load and one branch (and
    [with_span] degenerates to a direct application of its thunk).

    The ring overwrites {e oldest-first} — a bounded-memory tail of the
    most recent activity.  Export the contents as Chrome
    [trace_event] JSON (loadable in chrome://tracing or Perfetto) or
    as a compact text tail. *)

type event =
  | Span of { name : string; cat : string; ts_ns : int64; dur_ns : int64 }
  | Instant of { name : string; cat : string; ts_ns : int64 }

val set_enabled : bool -> unit
val enabled : unit -> bool

val configure : capacity:int -> unit
(** Replace the global ring with an empty one of the given capacity
    (default 65536 events).
    @raise Invalid_argument if [capacity <= 0]. *)

val clear : unit -> unit
val capacity : unit -> int

val length : unit -> int
(** Events currently held (≤ capacity). *)

val dropped : unit -> int
(** Events overwritten so far. *)

(** {2 Recording} *)

val instant : ?cat:string -> string -> unit
(** Point event at the current monotonic time. *)

val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** Time the thunk on the monotonic clock and record a complete span
    (recorded even if the thunk raises). *)

val add_span : ?cat:string -> name:string -> ts_ns:int64 -> dur_ns:int64 -> unit -> unit
(** Record a span measured externally (decorators that already hold
    the timestamps). *)

(** {2 Inspection and export} *)

val events : unit -> event list
(** Oldest-first contents of the ring. *)

val to_chrome_json : unit -> string
(** The ring as a Chrome [trace_event] JSON document:
    [{"displayTimeUnit":"ns","traceEvents":[...]}] with complete spans
    ([ph = "X"]) and global instants ([ph = "i"]); timestamps in
    microseconds with the nanosecond fraction preserved. *)

val write_chrome : path:string -> unit

val pp_tail : ?limit:int -> Format.formatter -> unit -> unit
(** Compact text tail of the last [limit] (default 40) events,
    timestamps relative to the oldest retained event. *)
