(* Structured tracing: a fixed-capacity ring buffer of typed events
   with monotonic timestamps.  The ring overwrites oldest-first, so a
   long run keeps the tail — which is what you want when something goes
   wrong at event 10 million.  Export as Chrome trace_event JSON
   (chrome://tracing / Perfetto both load it) or as a compact text
   tail. *)

type event =
  | Span of { name : string; cat : string; ts_ns : int64; dur_ns : int64 }
  | Instant of { name : string; cat : string; ts_ns : int64 }

type t = {
  mutable buf : event option array;
  mutable next : int; (* ring write cursor *)
  mutable total : int; (* events ever recorded *)
}

let default_capacity = 65_536

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { buf = Array.make capacity None; next = 0; total = 0 }

(* The global ring every recording call targets. *)
let ring = create ()

let on = ref false

let set_enabled b = on := b
let enabled () = !on

let configure ~capacity =
  if capacity <= 0 then invalid_arg "Trace.configure: capacity must be positive";
  ring.buf <- Array.make capacity None;
  ring.next <- 0;
  ring.total <- 0

let clear () =
  Array.fill ring.buf 0 (Array.length ring.buf) None;
  ring.next <- 0;
  ring.total <- 0

let capacity () = Array.length ring.buf
let length () = min ring.total (Array.length ring.buf)
let dropped () = max 0 (ring.total - Array.length ring.buf)

let push ev =
  ring.buf.(ring.next) <- Some ev;
  ring.next <- (ring.next + 1) mod Array.length ring.buf;
  ring.total <- ring.total + 1

let instant ?(cat = "cq") name =
  if !on then push (Instant { name; cat; ts_ns = Cq_util.Clock.monotonic_ns () })

let add_span ?(cat = "cq") ~name ~ts_ns ~dur_ns () =
  if !on then push (Span { name; cat; ts_ns; dur_ns })

let with_span ?(cat = "cq") name f =
  if not !on then f ()
  else begin
    let t0 = Cq_util.Clock.monotonic_ns () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Cq_util.Clock.monotonic_ns () in
        push (Span { name; cat; ts_ns = t0; dur_ns = Int64.sub t1 t0 }))
      f
  end

(* Oldest-first walk of the ring. *)
let events () =
  let cap = Array.length ring.buf in
  let n = length () in
  let start = if ring.total <= cap then 0 else ring.next in
  List.init n (fun i -> ring.buf.((start + i) mod cap)) |> List.filter_map Fun.id

let ts_of = function Span { ts_ns; _ } -> ts_ns | Instant { ts_ns; _ } -> ts_ns

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                            *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* trace_event wants microseconds; keep sub-microsecond precision as a
   fractional part. *)
let us ns = Int64.to_float ns /. 1e3

let event_json buf ev =
  match ev with
  | Span { name; cat; ts_ns; dur_ns } ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":1}"
           (json_escape name) (json_escape cat) (us ts_ns) (us dur_ns))
  | Instant { name; cat; ts_ns } ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,\"s\":\"g\",\"pid\":1,\"tid\":1}"
           (json_escape name) (json_escape cat) (us ts_ns))

let to_chrome_json () =
  let evs = events () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n';
      event_json buf ev)
    evs;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_chrome ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_chrome_json ()))

(* ------------------------------------------------------------------ *)
(* Text tail                                                            *)
(* ------------------------------------------------------------------ *)

let pp_event ?(t0 = 0L) fmt ev =
  let rel ns = Int64.to_float (Int64.sub ns t0) /. 1e6 in
  match ev with
  | Span { name; cat; ts_ns; dur_ns } ->
      Format.fprintf fmt "%10.3fms  span    %-28s %-10s %.1fus" (rel ts_ns) name cat
        (Int64.to_float dur_ns /. 1e3)
  | Instant { name; cat; ts_ns } ->
      Format.fprintf fmt "%10.3fms  instant %-28s %-10s" (rel ts_ns) name cat

let pp_tail ?(limit = 40) fmt () =
  let evs = events () in
  let n = List.length evs in
  let t0 = match evs with [] -> 0L | ev :: _ -> ts_of ev in
  let tail = if n <= limit then evs else List.filteri (fun i _ -> i >= n - limit) evs in
  Format.fprintf fmt "@[<v>";
  if dropped () > 0 then Format.fprintf fmt "... %d earlier events dropped by the ring@," (dropped ());
  if n > List.length tail then Format.fprintf fmt "... %d earlier events elided@," (n - List.length tail);
  List.iter (fun ev -> Format.fprintf fmt "%a@," (pp_event ~t0) ev) tail;
  Format.fprintf fmt "@]"
