(** Near-zero-overhead runtime metrics: counters, gauges, and
    log-bucketed histograms behind a single global {!registry}.

    Recording is gated on one global switch, {b off by default}: a
    disabled {!incr} or {!observe} costs one load and one branch, so
    instrumentation lives permanently in the hot paths
    (tracker restructures, per-event fanout, ingest latency) without a
    build-time variant.  Metric {e creation} is independent of the
    switch — instrument at module/processor construction time, record
    only when enabled.

    Naming scheme: dot-separated [subsystem.metric[_unit]] —
    [tracker.promotions], [engine.ingest_ns], [stab.interval_tree.stab_ns].
    Interning the same name twice returns the same cell, so
    instrumentation sites aggregate naturally.

    {b Domains.} Registry operations — interning ({!counter} /
    {!gauge} / {!histogram}), {!reset}, {!snapshot} — are mutex-guarded
    and safe from any domain.  {e Recording} ({!incr}, {!set},
    {!observe}) is deliberately lock-free and therefore best-effort
    under concurrency: concurrent increments to the same cell may be
    lost.  [Cq_engine.Parallel] keeps per-shard metrics on
    coordinator-owned cells for this reason. *)

val set_enabled : bool -> unit
(** Flip the global recording switch (default [false]). *)

val enabled : unit -> bool

(** {2 Metric cells} *)

type counter
(** Monotonically increasing integer. *)

type gauge
(** Last-written float. *)

type histogram
(** Log-bucketed distribution: bucket 0 holds values < 1, bucket
    [i >= 1] holds [\[2^(i-1), 2^i)], the last bucket absorbs the rest
    — 64 buckets cover the full positive float range, so a nanosecond
    latency and a fanout count share the same shape. *)

type registry

val registry : registry
(** The process-wide default registry every [?registry] defaults to. *)

val create_registry : unit -> registry

val counter : ?registry:registry -> string -> counter
(** Create-or-intern by name. *)

val gauge : ?registry:registry -> string -> gauge
val histogram : ?registry:registry -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Record one sample (negative and NaN samples collapse into bucket
    0).  No-op while disabled, like every recording call. *)

val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_min : histogram -> float
val hist_max : histogram -> float

val percentile : histogram -> float -> float
(** Nearest-rank estimate from the buckets: the containing bucket's
    upper bound clamped into the observed [\[min, max\]], so [p 0] is
    the exact minimum and [p 100] the exact maximum; 0 on an empty
    histogram. *)

(** {2 Bucketing scheme (exposed for tests)} *)

val n_buckets : int

val bucket_of : float -> int

val bucket_bounds : int -> float * float
(** [(lo, hi)] with the bucket holding exactly [lo <= v < hi]; the last
    bucket's [hi] is [infinity]. *)

(** {2 Snapshots} *)

type hist_summary = {
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type snapshot = {
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_histograms : (string * hist_summary) list;
}

val snapshot : ?registry:registry -> unit -> snapshot
(** Name-sorted copy of every registered metric's current value. *)

val reset : ?registry:registry -> unit -> unit
(** Zero every registered value (cells stay interned) — used by the
    bench harness to capture per-experiment deltas. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
val pp : Format.formatter -> unit -> unit
(** [pp fmt ()] dumps a snapshot of the default registry. *)
