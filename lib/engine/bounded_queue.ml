(* A classic bounded buffer: ring of [capacity] slots guarded by one
   mutex, with separate not-full / not-empty conditions so a push only
   ever wakes the consumer and a pop only ever wakes the producer. *)

type 'a t = {
  buf : 'a option array;
  cap : int;
  mutable head : int;  (* next pop *)
  mutable tail : int;  (* next push *)
  mutable len : int;
  lock : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bounded_queue.create: capacity must be >= 1";
  {
    buf = Array.make capacity None;
    cap = capacity;
    head = 0;
    tail = 0;
    len = 0;
    lock = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
  }

let capacity t = t.cap

let push t v =
  Mutex.lock t.lock;
  while t.len = t.cap do
    Condition.wait t.not_full t.lock
  done;
  t.buf.(t.tail) <- Some v;
  t.tail <- (t.tail + 1) mod t.cap;
  t.len <- t.len + 1;
  Condition.signal t.not_empty;
  Mutex.unlock t.lock

let pop t =
  Mutex.lock t.lock;
  while t.len = 0 do
    Condition.wait t.not_empty t.lock
  done;
  let v =
    match t.buf.(t.head) with
    | Some v -> v
    | None ->
        (* Unreachable: len > 0 guarantees an occupied slot. *)
        Mutex.unlock t.lock;
        Cq_util.Error.corrupt ~structure:"bounded_queue" "occupied slot %d is empty" t.head
  in
  t.buf.(t.head) <- None;
  t.head <- (t.head + 1) mod t.cap;
  t.len <- t.len - 1;
  Condition.signal t.not_full;
  Mutex.unlock t.lock;
  v

let try_push t v =
  Mutex.lock t.lock;
  let accepted = t.len < t.cap in
  if accepted then begin
    t.buf.(t.tail) <- Some v;
    t.tail <- (t.tail + 1) mod t.cap;
    t.len <- t.len + 1;
    Condition.signal t.not_empty
  end;
  Mutex.unlock t.lock;
  accepted

let try_pop t =
  Mutex.lock t.lock;
  let v =
    if t.len = 0 then None
    else begin
      let v =
        match t.buf.(t.head) with
        | Some v -> v
        | None ->
            (* Unreachable: len > 0 guarantees an occupied slot. *)
            Mutex.unlock t.lock;
            Cq_util.Error.corrupt ~structure:"bounded_queue" "occupied slot %d is empty" t.head
      in
      t.buf.(t.head) <- None;
      t.head <- (t.head + 1) mod t.cap;
      t.len <- t.len - 1;
      Condition.signal t.not_full;
      Some v
    end
  in
  Mutex.unlock t.lock;
  v

(* The stdlib has no timed [Condition.wait], so the timeout variant
   polls [try_push] against a monotonic deadline.  [cpu_relax] keeps the
   spin friendly on SMT siblings; the queue drains at batch granularity,
   so successful retries arrive within a handful of iterations. *)
let push_timeout t v ~timeout_ns =
  if try_push t v then true
  else begin
    let deadline = Int64.add (Cq_util.Clock.monotonic_ns ()) timeout_ns in
    let rec loop () =
      if try_push t v then true
      else if Cq_util.Clock.monotonic_ns () >= deadline then false
      else begin
        Domain.cpu_relax ();
        loop ()
      end
    in
    loop ()
  end

let length t =
  Mutex.lock t.lock;
  let n = t.len in
  Mutex.unlock t.lock;
  n
