(** Bounded single-producer/single-consumer work queue — the per-shard
    command channel of {!Parallel}.

    One producer (the coordinator domain) and one consumer (the shard's
    worker domain); the bound provides backpressure, so a coordinator
    that outruns a shard blocks on {!push} instead of growing an
    unbounded backlog.  Blocking uses a mutex and two condition
    variables rather than spinning: command granularity is one
    [batch_size]-row batch, so queue transitions are rare relative to
    per-tuple work, and a blocked party must yield the core on
    oversubscribed machines (more shards than cores).

    Operations are O(1); [push]/[pop] block (never busy-wait) while the
    queue is full/empty. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> unit
(** Blocks while the queue is full. *)

val pop : 'a t -> 'a
(** Blocks while the queue is empty. *)

val try_push : 'a t -> 'a -> bool
(** Non-blocking push: [false] (and no enqueue) if the queue is full.
    The admission-control primitive — overload policies that must never
    stall the producer ({!Parallel.try_ingest_batch} under [Reject] /
    [Shed]) use this instead of {!push}. *)

val try_pop : 'a t -> 'a option
(** Non-blocking pop: [None] if the queue is empty. *)

val push_timeout : 'a t -> 'a -> timeout_ns:int64 -> bool
(** [push_timeout t v ~timeout_ns] keeps retrying {!try_push} against a
    {!Cq_util.Clock.monotonic_ns} deadline, yielding with
    [Domain.cpu_relax] between attempts; [false] if the queue stayed
    full for the whole window.  Used by [Parallel.shutdown] so a wedged
    shard can never deadlock teardown. *)

val length : 'a t -> int
(** Instantaneous occupancy (racy by nature across domains; exact when
    no concurrent push/pop is in flight).  Feeds the per-shard
    [parallel.shard<i>.queue_depth] gauge. *)
