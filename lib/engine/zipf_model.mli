(** The Zipf hotspot-coverage model of Figure 2.

    If stabbing-group sizes follow a Zipf law with exponent beta (the
    k-th largest group holds a share proportional to k^-beta), the
    paper observes that a small number of top groups covers most
    queries — the motivation for tracking only the α-hotspots.  All
    entry points evaluate partial harmonic sums in O(n_groups). *)

val coverage : n_groups:int -> beta:float -> top_k:int -> float
(** Fraction of all queries covered by the [top_k] largest groups
    among [n_groups] Zipf-distributed groups.
    @raise Invalid_argument if [n_groups <= 0] or [top_k < 0]. *)

val series : n_groups:int -> beta:float -> ks:int list -> (int * float) list
(** [(k, coverage)] rows for Figure 2's curves. *)

val groups_needed : n_groups:int -> beta:float -> target:float -> int
(** Smallest k whose top-k coverage reaches [target] (in [0,1]). *)

(** {2 Hotspot drift}

    A deterministic "walking hotspot": [dr_groups] group sites laid
    out [dr_spread] apart on the partition axis, with the whole
    lattice translating by [dr_velocity] per time step.  Group sizes
    stay Zipf([dr_beta])-distributed — rank 0 is always the hottest —
    so as the lattice walks across shard strips, the {e load} walks
    with it while the {e distribution shape} is stationary.  This is
    the workload generator behind [Cq_robust.Oracle.run_drift] and the
    [rebalance-drift] bench: it forces the parallel engine's
    rebalancer to migrate strips without ever changing the per-step
    sampling law, keeping runs reproducible from the seed alone. *)
type drift = {
  dr_groups : int;  (** Number of group sites (> 0). *)
  dr_beta : float;  (** Zipf exponent of the group-size law. *)
  dr_center0 : float;  (** Rank-0 site's centre at step 0 (finite). *)
  dr_spread : float;  (** Distance between adjacent sites (> 0, finite). *)
  dr_velocity : float;  (** Lattice translation per step (finite). *)
}

val group_center : drift -> step:int -> rank:int -> float
(** Centre of the rank-[rank] hottest site at time [step]:
    [dr_center0 + dr_velocity * step + dr_spread * rank].  O(1).
    @raise Invalid_argument on an invalid drift, [rank] outside
    [\[0, dr_groups)], or negative [step]. *)

val sample_rank : drift -> u:float -> int
(** Inverse-CDF sample of a group rank from the Zipf law: maps a
    uniform [u] in [\[0, 1)] to the rank whose cumulative weight
    interval contains it (small [u] ⇒ hot ranks).  O(dr_groups).
    Deterministic: the caller supplies the randomness, so the same
    [u] stream yields the same rank stream on every run.
    @raise Invalid_argument on an invalid drift or [u] outside
    [\[0, 1)]. *)
