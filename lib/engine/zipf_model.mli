(** The Zipf hotspot-coverage model of Figure 2.

    If stabbing-group sizes follow a Zipf law with exponent beta (the
    k-th largest group holds a share proportional to k^-beta), the
    paper observes that a small number of top groups covers most
    queries — the motivation for tracking only the α-hotspots.  All
    entry points evaluate partial harmonic sums in O(n_groups). *)

val coverage : n_groups:int -> beta:float -> top_k:int -> float
(** Fraction of all queries covered by the [top_k] largest groups
    among [n_groups] Zipf-distributed groups.
    @raise Invalid_argument if [n_groups <= 0] or [top_k < 0]. *)

val series : n_groups:int -> beta:float -> ks:int list -> (int * float) list
(** [(k, coverage)] rows for Figure 2's curves. *)

val groups_needed : n_groups:int -> beta:float -> target:float -> int
(** Smallest k whose top-k coverage reaches [target] (in [0,1]). *)
