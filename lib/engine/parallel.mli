(** The multicore sharded engine: N independent {!Engine} instances on
    OCaml 5 domains behind bounded SPSC work queues.

    {2 Sharding scheme}

    The hotspot design partitions {e queries}, not data: every stabbing
    group — and a fortiori every query — is an independent unit of
    work, so the parallel engine {b range-partitions the continuous
    queries} across shards (contiguous strips of the partition axis,
    striped round-robin so clustered workloads spread out) and
    {b broadcasts every tuple batch} to all shards.  Each shard owns a
    full {!Engine.t} — its own hotspot trackers, processors, and table
    copies — and processes the whole event stream against its query
    subset; per-event identification cost, the dominant term at scale
    (Theorems 3/4: O(τ log m + k) per event), divides by the shard
    count while the O(log m) home-table store is replicated.

    {2 Determinism}

    Results are delivered through subscriber callbacks {e at flush
    time}, in a total order that is a pure function of the input
    stream and the configuration:

    - each query lives in exactly one shard, so the result {e multiset}
      equals the sequential engine's (no duplication, no omission);
    - each shard's engine is seeded and single-threaded, so its result
      sequence per event is deterministic;
    - every result is tagged [(seq, shard, idx)] — global event
      sequence number, shard id, per-event delivery index — and the
      merge sorts on that triple before invoking callbacks.

    [cq_robust]'s differential oracle ([Cq_robust.Oracle.run_parallel])
    replays seeded workloads through both engines and asserts the
    multisets agree.

    {2 Elasticity and rebalancing}

    The engine is {e elastic}: queries join and leave a running engine
    ({!try_register} / {!try_deregister}), and an optional rebalancer
    ({!Engine.Config.rebalance}) migrates whole strips — stabbing
    neighbourhoods — between shards when the load-imbalance ratio
    crosses a threshold.  Both operations quiesce at a flush barrier,
    so every membership change happens at a deterministic position of
    the event stream; and because the data plane is
    broadcast-replicated (every shard sees every tuple), moving a query
    is just replaying its definition on the target shard — no state
    transfer, and the query's result stream is {b identical either side
    of the move} (only the [shard] component of its merge tags
    changes).  The full protocol, including why determinism survives,
    is DESIGN.md §15.

    {2 Fallback and caveats}

    With [shards = 1] no domains are spawned: commands execute inline
    on a sequential {!Engine.t} with the same buffered-delivery
    semantics.  Deletions and retraction callbacks are not yet routed
    through the parallel API (use the sequential engine); observability
    recording from worker domains is best-effort (concurrent counter
    increments may be lost — the switches are off by default).
    Speedup requires real cores: on a single-core host the shards
    time-slice and queue/merge overhead makes [shards > 1] strictly
    slower.  See DESIGN.md §11. *)

type t

(** Which relation a batch of rows belongs to: [R] rows are [(a, b)]
    pairs, [S] rows are [(b, c)] pairs, exactly as in
    {!Engine.try_insert_r} / {!Engine.try_insert_s}. *)
type side = R | S

(** A continuous query's full, portable definition — everything needed
    to (re)play it into any shard.  [Band {range}] subscribes to
    [b - a ∈ range] join results; [Select {range_a; range_c}] to
    [a ∈ range_a ∧ c ∈ range_c] ones.  The routing strip is derived
    from [range] (band) or [range_c] (select), the processors'
    partition axes. *)
type spec =
  | Band of { range : Cq_interval.Interval.t }
  | Select of { range_a : Cq_interval.Interval.t; range_c : Cq_interval.Interval.t }

type subscription
(** A handle naming one live query.  Deliberately {e not} tied to a
    shard: the rebalancer may migrate the query at any flush barrier,
    and the handle keeps working across moves. *)

val try_create_cfg : Engine.Config.t -> (t, Cq_util.Error.t) result
(** Validates via {!Engine.Config.validate} (so a bad [shards] or
    [batch_size] names that field in the error payload), then spawns
    [cfg.shards - 1 >= 1 ? cfg.shards : 0] worker domains, each owning
    a sequential engine derived from [cfg] with a distinct seed. *)

val create_cfg : Engine.Config.t -> t

val try_create :
  ?alpha:float ->
  ?epsilon:float ->
  ?seed:int ->
  ?backend:Cq_index.Stab_backend.kind ->
  ?strategy:Hotspot_core.Processor.strategy ->
  ?shards:int ->
  ?batch_size:int ->
  ?overload:Engine.Config.overload ->
  ?shed_rate:float ->
  ?rebalance:Engine.Config.rebalance option ->
  unit ->
  (t, Cq_util.Error.t) result

val create :
  ?alpha:float ->
  ?epsilon:float ->
  ?seed:int ->
  ?backend:Cq_index.Stab_backend.kind ->
  ?strategy:Hotspot_core.Processor.strategy ->
  ?shards:int ->
  ?batch_size:int ->
  ?overload:Engine.Config.overload ->
  ?shed_rate:float ->
  ?rebalance:Engine.Config.rebalance option ->
  unit ->
  t

val shards : t -> int

(** {2 Continuous queries}

    Callbacks fire during {!flush} (and {!shutdown}), on the
    coordinator's domain, in the deterministic merge order — never
    concurrently.  A raising callback is contained and logged, as in
    the sequential engine. *)

val try_subscribe_band :
  t ->
  range:Cq_interval.Interval.t ->
  (Cq_relation.Tuple.r -> Cq_relation.Tuple.s -> unit) ->
  (subscription, Cq_util.Error.t) result
(** The query is assigned to the shard owning its band-window strip;
    the subscription is applied at the current stream position (after
    previously ingested batches, before subsequent ones). *)

val subscribe_band :
  t ->
  range:Cq_interval.Interval.t ->
  (Cq_relation.Tuple.r -> Cq_relation.Tuple.s -> unit) ->
  subscription

val try_subscribe_select :
  t ->
  range_a:Cq_interval.Interval.t ->
  range_c:Cq_interval.Interval.t ->
  (Cq_relation.Tuple.r -> Cq_relation.Tuple.s -> unit) ->
  (subscription, Cq_util.Error.t) result
(** Assigned by [range_c] strip (the partition axis of the select
    processors). *)

val subscribe_select :
  t ->
  range_a:Cq_interval.Interval.t ->
  range_c:Cq_interval.Interval.t ->
  (Cq_relation.Tuple.r -> Cq_relation.Tuple.s -> unit) ->
  subscription

val unsubscribe : t -> subscription -> bool
(** Remove a query without a barrier: results already buffered on its
    shard (ingested but not yet flushed) are still delivered at the
    next flush, then silently discarded at the merge.  [false] if the
    subscription was already gone.  For a deterministic leave point use
    {!try_deregister}. *)

val band_query_count : t -> int
val select_query_count : t -> int

(** {2 Elastic registration}

    Online membership changes on a {e running} engine.  Both calls
    first run a full flush barrier (cost: one {!flush}, i.e. one
    queue-drain round-trip per shard plus the merge), so the join or
    leave point is a deterministic batch boundary of the event stream:
    replaying the same call sequence against the same input yields
    bit-for-bit the same output, for any shard count.  Beyond the
    barrier, registration is O(1) on the coordinator plus one
    subscribe on the owning shard. *)

val try_register :
  t ->
  spec ->
  (Cq_relation.Tuple.r -> Cq_relation.Tuple.s -> unit) ->
  (subscription, Cq_util.Error.t) result
(** Flush-barrier quiesce, then install the query on its strip's
    {e current} owner — which may be a migrated shard, so a
    re-registration lands with the rest of its stabbing neighbourhood.
    Pending results of other queries are delivered by the implicit
    flush.  Errors: empty ranges ([Empty_range]), dead engine. *)

val register :
  t -> spec -> (Cq_relation.Tuple.r -> Cq_relation.Tuple.s -> unit) -> subscription

val try_deregister : t -> subscription -> (bool, Cq_util.Error.t) result
(** Flush-barrier quiesce (delivering everything the query produced up
    to the barrier), then remove it.  [Ok false] when the subscription
    was already gone — in that case no barrier runs. *)

val deregister : t -> subscription -> bool

(** {2 Batch ingest} *)

val try_ingest_batch_flat :
  t -> side -> Cq_relation.Batch.t -> (unit, Cq_util.Error.t) result
(** The flat-batch ingest path: stamp the batch's rows with
    consecutive global sequence numbers, split the batch into
    [batch_size]-row {e zero-copy slice views}
    ({!Cq_relation.Batch.slice}) and broadcast each view to every
    shard's queue as a single command; shards run it through
    {!Engine.try_ingest_batch_r} / [_s], so the whole chunk costs one
    scattered-index descent per processor instead of one per event.
    Returns once the chunks are {e enqueued}; results surface at the
    next {!flush}.

    Because the queued chunks alias the caller's batch, the root is
    {!Cq_relation.Batch.seal}ed here and unsealed at the next flush
    barrier (including the implicit ones in {!stats}, {!shed_info},
    {!shed_totals}, {!check_invariants} and {!shutdown}) — mutating
    the batch before then raises {!Cq_util.Error.Cq_error}.  A batch the
    caller sealed beforehand stays the caller's to unseal.  Passing a
    view is allowed but the caller must then keep the underlying root
    frozen until the next flush.  Tuple ids are {e not} written back
    (each shard assigns its own id stream); use the sequential
    {!Engine.try_ingest_batch_r} when ids matter.

    Validation and overload behaviour are identical to
    {!try_ingest_batch}. *)

val ingest_batch_flat : t -> side -> Cq_relation.Batch.t -> unit

val try_ingest_batch : t -> side -> (float * float) array -> (unit, Cq_util.Error.t) result
(** Row-array convenience wrapper: copies [rows] once into a fresh
    {!Cq_relation.Batch.t} and runs {!try_ingest_batch_flat}.  Rows
    are stamped with consecutive global sequence numbers, split into
    [batch_size]-row commands and broadcast to every shard's queue.
    Returns once the batches are {e enqueued}; results surface at the
    next {!flush}.  All rows are validated before any is enqueued —
    NaN/infinite attributes are rejected with the attribute's name
    ([a]/[b] for [R] rows, [b]/[c] for [S] rows), and a rejected batch
    leaves the engine untouched.

    What happens when a shard queue is full depends on the configured
    {!Engine.Config.overload} policy:

    - [Block] (default): apply backpressure — block until space frees
      up.  Exact results, unbounded producer latency.
    - [Reject]: an admission check runs before anything is published;
      if any shard lacks room for the whole batch the call returns
      [Error (Overload {shard; queue_depth; retry_after_ms})] and no
      row is ingested (all-or-nothing).  A batch that could {e never}
      be admitted — more than [queue_capacity * batch_size] rows, so
      its chunks cannot fit even an idle queue — is instead refused
      with [Error (Invalid_parameter _)] and no retry hint: the
      producer must split it, not back off.
    - [Shed]: never blocks indefinitely.  Each chunk is stamped with a
      keep-rate (the forced [shed_rate] when < 1.0, else adapted to
      the deepest queue) and shards sample (event, query) candidates
      at that rate; a chunk that cannot be enqueued everywhere within
      a short grace window is dropped whole and counted in
      [parallel.overload.dropped_chunks] and {!shed_totals}.  Degraded
      answers carry Horvitz-Thompson estimates and claimed error
      bounds — see {!shed_info}. *)

val ingest_batch : t -> side -> (float * float) array -> unit

val flush : t -> int
(** Barrier: wait until every shard has drained its queue, then merge
    the shards' tagged result buffers in [(seq, shard, idx)] order and
    invoke the subscriber callbacks.  Returns the number of results
    delivered by this flush.  Worker-side failures (a shard engine
    raising) are re-raised here, on the coordinator. *)

val results_delivered : t -> int
(** Total results delivered across all flushes so far. *)

(** {2 Introspection} *)

val stats : t -> Engine.stats
(** Flushes, then merges the per-shard stats: table sizes and event
    counts are per-shard maxima (each shard sees the whole stream),
    results and restructure counters sum, and hotspot/coverage fields
    fold the shards' {!Hotspot_core.Processor.snapshot}s with
    {!Hotspot_core.Processor.merge_snapshot} (query-weighted
    coverage). *)

val shard_result_counts : t -> int array
(** Results delivered per shard so far — the load-balance signal behind
    the [parallel.shard_imbalance] gauge. *)

(** One shard's load figures, as of the most recent flush barrier.
    The same values are exported through [Cq_obs.Metrics] as
    [parallel.shard<i>.{queue_depth,queries,groups,max_group,delivered}]
    gauges (coordinator-owned cells; recording obeys the global
    metrics switch). *)
type shard_load = {
  sl_shard : int;
  sl_queries : int;  (** Live queries hosted on the shard. *)
  sl_groups : int;
      (** Stabbing groups (hotspot groups, band + select trackers). *)
  sl_max_group : int;  (** Largest single stabbing group. *)
  sl_queue_depth : int;  (** Commands waiting in the shard's queue. *)
  sl_delivered : int;  (** Results delivered by the shard so far. *)
}

val shard_loads : t -> shard_load array
(** Flushes (refreshing every figure), then reports one entry per
    shard.  [shards = 1] reports a single synthetic entry.  O(shards)
    beyond the flush. *)

(** Cumulative rebalancer activity.  All zeros unless
    {!Engine.Config.rebalance} is set. *)
type rebalance_stats = {
  rb_checks : int;  (** Imbalance checks run (every [check_every] flushes). *)
  rb_migrations : int;  (** Whole-strip moves executed. *)
  rb_migrated_queries : int;  (** Queries carried by those moves. *)
  rb_last_ratio : float;
      (** Imbalance ratio after the latest check:
          [max(load) * shards / total(load)], 1.0 = perfectly even. *)
}

val rebalance_stats : t -> rebalance_stats
(** O(1); no barrier. *)

val shed_info : t -> Engine.degraded list
(** Flushes, then returns the degraded-answer reports of every query
    that was ever touched by a sub-unit shed coin, sorted by qid (each
    query lives on one shard, so the per-shard reports are disjoint).
    Empty when processing has been exact.  Deterministic under a
    forced [shed_rate]: identical — including claimed bounds — for
    every shard count.

    The claimed error bounds cover coin drops only.  Whole chunks
    dropped past the shed grace window never reach any shard — no coin
    is flipped for their events, nothing accounts for them — so the
    bounds are valid {b only while} {!shed_totals}[.par_dropped_rows]
    is 0; check it before trusting them
    ({!Cq_robust.Oracle.run_burst} does exactly that). *)

(** Aggregate shedding counters: the shards' coin totals plus the
    coordinator's whole-chunk drops (which no coin ever sees). *)
type shed_totals = {
  par_kept : int;  (** Candidates kept by a sub-unit coin, all shards. *)
  par_dropped : int;  (** Candidates dropped by a coin, all shards. *)
  par_min_rate : float;  (** Minimum keep-rate any shard applied. *)
  par_dropped_chunks : int;
      (** Chunks dropped whole at admission (grace window expired). *)
  par_dropped_rows : int;
      (** Rows in those chunks; nonzero invalidates {!shed_info}'s
          claimed bounds. *)
}

val shed_totals : t -> shed_totals
(** Flushes, then sums kept/dropped candidate counters across shards
    ([par_min_rate] is the minimum rate any shard applied) and adds
    the coordinator-side dropped-chunk counters. *)

val check_invariants : t -> unit
(** Flushes, then runs {!Engine.check_invariants} on every shard (on
    the shard's own domain) plus coordinator-side checks: every
    registered query is owned by exactly one live shard, and global
    delivery counts equal the sum of per-shard counts. *)

val shutdown : t -> unit
(** Flush outstanding batches (delivering their results), stop and
    join the worker domains.  Idempotent; the engine rejects further
    use afterwards.  Stop commands are delivered with a bounded wait
    ({!Bounded_queue.push_timeout}), so a wedged shard with a full
    queue cannot deadlock teardown — its domain is abandoned and the
    leak logged instead. *)

val with_engine : Engine.Config.t -> (t -> 'a) -> 'a
(** [with_engine cfg f] runs [f] on a fresh engine and guarantees
    {!shutdown} on exit, including on exceptions. *)
