module E = Engine
module I = Cq_interval.Interval
module Tuple = Cq_relation.Tuple
module Batch = Cq_relation.Batch
module Err = Cq_util.Error
module Metrics = Cq_obs.Metrics
module P = Hotspot_core.Processor

let log_src = Logs.Src.create "cq.parallel" ~doc:"sharded continuous-query engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Coordinator-side observability: merge latency per flush, batch
   fan-out count, and the load-balance ratio (1.0 = perfectly even).
   Per-shard queue-depth gauges are interned per engine in [create]
   (before any worker domain exists — the registry's interning table is
   shared). *)
let m_merge_ns = Metrics.histogram "parallel.merge_ns"
let m_batches = Metrics.counter "parallel.batches"
let m_imbalance = Metrics.gauge "parallel.shard_imbalance"

(* Rebalancer observability: checks run, whole-group (strip) moves,
   queries carried by those moves, and the load-imbalance ratio seen at
   the last check.  All recorded on the coordinator's domain. *)
let m_rb_checks = Metrics.counter "parallel.rebalance.checks"
let m_rb_migrations = Metrics.counter "parallel.rebalance.migrations"
let m_rb_migrated = Metrics.counter "parallel.rebalance.migrated_queries"
let m_rb_ratio = Metrics.gauge "parallel.rebalance.last_ratio"

(* Overload-management observability: admission-control rejections
   (Reject policy), whole chunks dropped because a queue stayed full
   past the shed-mode grace window, the effective keep-rate of the most
   recent shed-mode chunk, and flush latency while degraded. *)
let m_rejected = Metrics.counter "parallel.overload.rejected_batches"
let m_dropped = Metrics.counter "parallel.overload.dropped_chunks"
let m_shed_rate = Metrics.gauge "parallel.overload.shed_rate"
let m_degraded_flush_ns = Metrics.histogram "parallel.overload.degraded_flush_ns"

type side = R | S

(* A result pair tagged for the deterministic merge: [seq] is the
   global event sequence number stamped by the coordinator, [idx] the
   delivery index within that event on the owning shard.  Sorting on
   (seq, shard, idx) makes the output order a pure function of the
   input stream. *)
type tagged = { seq : int; shard : int; idx : int; qid : int; r : Tuple.r; s : Tuple.s }

let compare_tagged a b =
  let c = Int.compare a.seq b.seq in
  if c <> 0 then c
  else
    let c = Int.compare a.shard b.shard in
    if c <> 0 then c else Int.compare a.idx b.idx

(* The coordinator keeps every query's full definition: routing needs
   its partition-axis strip, and migration replays the definition into
   the target shard (the data plane is broadcast-replicated, so the
   definition is the whole of a query's portable state). *)
type spec =
  | Band of { range : I.t }
  | Select of { range_a : I.t; range_c : I.t }

(* A subscription names only the query: the owning shard is looked up
   at use time, because the rebalancer may have migrated the query
   since the handle was issued. *)
type subscription = { sub_qid : int }

(* Coordinator-side record of one live query.  [rg_window] counts the
   results delivered since the last rebalance check — the windowed
   load signal the migration policy reads. *)
type reg = {
  rg_spec : spec;
  rg_cb : Tuple.r -> Tuple.s -> unit;
  rg_strip : int;
  mutable rg_window : int;
}

(* What a shard reports at every barrier: its drained result buffer
   plus the stats/snapshot block, captured on the shard's own domain
   so the coordinator never touches a live engine. *)
type ack = {
  a_results : tagged list;  (* newest first *)
  a_stats : E.stats;
  a_band : P.snapshot;
  a_select : P.snapshot;
  a_degraded : E.degraded list;
  a_shed : E.shed_totals;
}

type cmd =
  | Ingest of { iside : side; batch : Batch.t; base_seq : int; rate : float }
      (* [batch] is a zero-copy slice view of the caller's root batch
         (sealed until the next flush barrier), so fanning a chunk out
         to every shard ships one immutable view instead of copying
         rows.  [rate] is the keep-probability the coordinator decided
         for this chunk at admission time; every shard applies it so
         shed decisions are a pure function of the command stream. *)
  | Sub_band of { qid : int; range : I.t }
  | Sub_select of { qid : int; range_a : I.t; range_c : I.t }
  | Unsub of { qid : int }
  | Flush
  | Check
  | Stop

type shard_state = {
  sid : int;
  queue : cmd Bounded_queue.t;
  lock : Mutex.t;
  cond : Condition.t;
  mutable acked : bool;
  mutable ack : ack option;
  mutable worker_error : exn option;
  mutable delivered : int;  (* coordinator-side running total for this shard *)
  depth_gauge : Metrics.gauge;
  (* Per-shard load gauges, refreshed from the shard's barrier ack on
     the coordinator's domain: live queries, stabbing-group count
     (hotspot groups across both processors), the largest group, and
     cumulative deliveries. *)
  queries_gauge : Metrics.gauge;
  groups_gauge : Metrics.gauge;
  max_group_gauge : Metrics.gauge;
  delivered_gauge : Metrics.gauge;
  (* Latest barrier-ack load figures, kept here so [shard_loads] can
     report without re-reading the metrics registry. *)
  mutable ld_queries : int;
  mutable ld_groups : int;
  mutable ld_max_group : int;
}

type par = { shard_states : shard_state array; doms : unit Domain.t array }

type shed_totals = {
  par_kept : int;
  par_dropped : int;
  par_min_rate : float;
  par_dropped_chunks : int;
  par_dropped_rows : int;
}

type seq_state = {
  eng : E.t;
  buf : tagged list ref;
  cur_seq : int ref;
  cur_idx : int ref;
  subs : (int, E.subscription) Hashtbl.t;
}

type impl = Seq of seq_state | Par of par

type t = {
  cfg : E.Config.t;
  impl : impl;
  regs : (int, reg) Hashtbl.t;  (* qid -> full query definition *)
  owners : (int, int) Hashtbl.t;  (* qid -> owning shard *)
  (* Strip-ownership overrides laid down by the rebalancer.  A strip
     absent here lives on its round-robin home shard; migrating a strip
     records the new owner so later registrations land with their
     group. *)
  strip_owners : (int, int) Hashtbl.t;
  mutable next_qid : int;
  mutable next_seq : int;
  mutable total_delivered : int;
  (* Chunks (and their rows) dropped whole because a queue stayed full
     past the shed grace window.  Dropped rows never reach any shard —
     no table stores them, no coin is flipped for them — so they are
     invisible to the per-query estimators: the claimed error bounds
     in [shed_info] are only valid while [dropped_rows] is 0, and
     [shed_totals] surfaces both counters so callers can check. *)
  mutable dropped_chunks : int;
  mutable dropped_rows : int;
  (* Root batches sealed by the coordinator while zero-copy chunk
     views of them sit in shard queues; unsealed at the next flush
     barrier, after every shard has consumed its copy of the views. *)
  mutable inflight : Batch.t list;
  (* Rebalancer bookkeeping: flush barriers seen (the check clock) and
     the running totals surfaced by [rebalance_stats]. *)
  mutable flushes : int;
  mutable n_checks : int;
  mutable n_migrations : int;
  mutable n_migrated : int;
  mutable last_ratio : float;
  mutable stopped : bool;
}

(* ------------------------------ worker --------------------------------- *)

let set_error st exn =
  Mutex.lock st.lock;
  if Option.is_none st.worker_error then st.worker_error <- Some exn;
  Mutex.unlock st.lock

let has_error st =
  Mutex.lock st.lock;
  let e = Option.is_some st.worker_error in
  Mutex.unlock st.lock;
  e

(* The shard body: one sequential engine fed from the SPSC queue.  A
   failing command poisons the shard — the exception is stored for the
   coordinator and subsequent commands are skipped, but barrier acks
   keep flowing so a poisoned shard can never deadlock a flush. *)
let worker ~sid ~eng (st : shard_state) () =
  let subs : (int, E.subscription) Hashtbl.t = Hashtbl.create 64 in
  let buf = ref [] in
  let cur_seq = ref 0 and cur_idx = ref 0 in
  let record qid r s =
    buf := { seq = !cur_seq; shard = sid; idx = !cur_idx; qid; r; s } :: !buf;
    incr cur_idx
  in
  let apply = function
    | Ingest { iside; batch; base_seq; rate } ->
        E.set_shed_rate eng rate;
        (* Results are tagged while their event processes, so the tag
           must be positioned before each event: set it for event 0
           here, and let the engine's post-event hook pre-position it
           for event [i + 1]. *)
        cur_seq := base_seq;
        cur_idx := 0;
        let bump i =
          cur_seq := base_seq + i + 1;
          cur_idx := 0
        in
        ignore
          (match iside with
          | R -> E.ingest_batch_r eng ~on_event:bump batch
          | S -> E.ingest_batch_s eng ~on_event:bump batch)
    | Sub_band { qid; range } ->
        Hashtbl.replace subs qid (E.subscribe_band eng ~qid ~range (record qid))
    | Sub_select { qid; range_a; range_c } ->
        Hashtbl.replace subs qid (E.subscribe_select eng ~qid ~range_a ~range_c (record qid))
    | Unsub { qid } -> (
        match Hashtbl.find_opt subs qid with
        | Some sub ->
            ignore (E.unsubscribe eng sub);
            Hashtbl.remove subs qid
        | None -> ())
    | Check -> E.check_invariants eng
    | Flush | Stop -> ()
  in
  let running = ref true in
  while !running do
    match Bounded_queue.pop st.queue with
    | Stop -> running := false
    | (Flush | Check) as cmd ->
        (if not (has_error st) then try apply cmd with exn -> set_error st exn);
        let ack =
          {
            a_results = !buf;
            a_stats = E.stats eng;
            a_band = E.band_snapshot eng;
            a_select = E.select_snapshot eng;
            a_degraded = E.shed_info eng;
            a_shed = E.shed_totals eng;
          }
        in
        buf := [];
        Mutex.lock st.lock;
        st.ack <- Some ack;
        st.acked <- true;
        Condition.signal st.cond;
        Mutex.unlock st.lock
    | cmd -> if not (has_error st) then ( try apply cmd with exn -> set_error st exn)
  done

(* ---------------------------- construction ------------------------------ *)

let queue_capacity = 64

let try_create_cfg (cfg : E.Config.t) =
  match E.Config.validate cfg with
  | Error e -> Error e
  | Ok cfg ->
      let impl =
        if cfg.shards = 1 then
          Seq
            {
              eng = E.create_cfg cfg;
              buf = ref [];
              cur_seq = ref 0;
              cur_idx = ref 0;
              subs = Hashtbl.create 64;
            }
        else begin
          let shard_states =
            Array.init cfg.shards (fun sid ->
                {
                  sid;
                  queue = Bounded_queue.create ~capacity:queue_capacity;
                  lock = Mutex.create ();
                  cond = Condition.create ();
                  acked = false;
                  ack = None;
                  worker_error = None;
                  delivered = 0;
                  depth_gauge =
                    Metrics.gauge (Printf.sprintf "parallel.shard%d.queue_depth" sid);
                  queries_gauge =
                    Metrics.gauge (Printf.sprintf "parallel.shard%d.queries" sid);
                  groups_gauge =
                    Metrics.gauge (Printf.sprintf "parallel.shard%d.groups" sid);
                  max_group_gauge =
                    Metrics.gauge (Printf.sprintf "parallel.shard%d.max_group" sid);
                  delivered_gauge =
                    Metrics.gauge (Printf.sprintf "parallel.shard%d.delivered" sid);
                  ld_queries = 0;
                  ld_groups = 0;
                  ld_max_group = 0;
                })
          in
          (* Shard engines are built here on the coordinator — metric
             interning and processor construction are not domain-safe —
             then handed over wholly to their worker domain.  Distinct
             derived seeds keep the shards' treap priority streams
             independent. *)
          let doms =
            Array.map
              (fun st ->
                let eng =
                  E.create_cfg { cfg with shards = 1; seed = cfg.seed + (7919 * (st.sid + 1)) }
                in
                (* Structural seeds differ per shard, but the shed coin
                   must not: re-key every shard to the coordinator's
                   seed so coin flips agree across shard counts. *)
                E.set_shed_seed eng cfg.seed;
                Domain.spawn (worker ~sid:st.sid ~eng st))
              shard_states
          in
          Par { shard_states; doms }
        end
      in
      Ok
        {
          cfg;
          impl;
          regs = Hashtbl.create 64;
          owners = Hashtbl.create 64;
          strip_owners = Hashtbl.create 16;
          next_qid = 0;
          next_seq = 0;
          total_delivered = 0;
          dropped_chunks = 0;
          dropped_rows = 0;
          inflight = [];
          flushes = 0;
          n_checks = 0;
          n_migrations = 0;
          n_migrated = 0;
          last_ratio = 1.0;
          stopped = false;
        }

let create_cfg cfg = Err.ok_exn (try_create_cfg cfg)

let try_create ?alpha ?epsilon ?seed ?backend ?strategy ?shards ?batch_size ?overload
    ?shed_rate ?rebalance () =
  let d = E.Config.default in
  try_create_cfg
    {
      alpha = Option.value alpha ~default:d.alpha;
      epsilon = Option.value epsilon ~default:d.epsilon;
      seed = Option.value seed ~default:d.seed;
      backend = Option.value backend ~default:d.backend;
      strategy = Option.value strategy ~default:d.strategy;
      shards = Option.value shards ~default:d.shards;
      batch_size = Option.value batch_size ~default:d.batch_size;
      overload = Option.value overload ~default:d.overload;
      shed_rate = Option.value shed_rate ~default:d.shed_rate;
      rebalance = Option.value rebalance ~default:d.rebalance;
    }

let create ?alpha ?epsilon ?seed ?backend ?strategy ?shards ?batch_size ?overload ?shed_rate
    ?rebalance () =
  Err.ok_exn
    (try_create ?alpha ?epsilon ?seed ?backend ?strategy ?shards ?batch_size ?overload
       ?shed_rate ?rebalance ())

let shards t = t.cfg.shards

let stopped_error =
  Err.Invalid_parameter
    { name = "engine"; value = "shut down"; expected = "a live parallel engine" }

(* try_* entry points return this as [Error]; plain entry points raise
   it via [ensure_live]. *)
let live t = if t.stopped then Error stopped_error else Ok ()
let ensure_live t = if t.stopped then Err.raise_ stopped_error

(* --------------------------- query routing ----------------------------- *)

(* Range partitioning with striping: the partition axis is cut into
   fixed-width strips and strips are dealt round-robin to shards, so a
   cluster of overlapping queries (a future hotspot) stays mostly
   within one shard while distinct clusters spread across shards.  The
   strip is also the rebalancer's migration unit: queries sharing a
   strip share a stabbing neighbourhood, so they move together. *)
let strip_width = 128.0

let strip_of iv =
  let mid = I.lo iv +. ((I.hi iv -. I.lo iv) /. 2.0) in
  if not (Float.is_finite mid) then 0
  else int_of_float (Float.floor (mid /. strip_width))

let default_shard_of_strip t strip =
  let n = t.cfg.shards in
  ((strip mod n) + n) mod n

(* Current owner of a strip: the rebalancer's override if it moved the
   strip, the round-robin home shard otherwise. *)
let shard_of_strip t strip =
  match Hashtbl.find_opt t.strip_owners strip with
  | Some sh -> sh
  | None -> default_shard_of_strip t strip

(* The partition axis the strips cut: [range] for band queries,
   [range_c] for selects, mirroring the sequential engine's processor
   split. *)
let spec_axis = function
  | Band { range } -> range
  | Select { range_c; _ } -> range_c

let validate_spec = function
  | Band { range } ->
      if I.is_empty range then Error (Err.Empty_range { name = "range" }) else Ok ()
  | Select { range_a; range_c } ->
      if I.is_empty range_a then Error (Err.Empty_range { name = "range_a" })
      else if I.is_empty range_c then Error (Err.Empty_range { name = "range_c" })
      else Ok ()

let sub_cmd qid = function
  | Band { range } -> Sub_band { qid; range }
  | Select { range_a; range_c } -> Sub_select { qid; range_a; range_c }

let fresh_qid t =
  let q = t.next_qid in
  t.next_qid <- q + 1;
  q

let record_seq (s : seq_state) qid r s_tup =
  s.buf := { seq = !(s.cur_seq); shard = 0; idx = !(s.cur_idx); qid; r; s = s_tup } :: !(s.buf);
  incr s.cur_idx

(* Install one query: record its definition, route it to its strip's
   current owner, and replay the subscription there.  O(1) beyond the
   engine's own subscribe. *)
let add_query t spec cb =
  let qid = fresh_qid t in
  let strip = strip_of (spec_axis spec) in
  let shard = shard_of_strip t strip in
  Hashtbl.replace t.regs qid { rg_spec = spec; rg_cb = cb; rg_strip = strip; rg_window = 0 };
  Hashtbl.replace t.owners qid shard;
  (match t.impl with
  | Seq s ->
      let sub =
        match spec with
        | Band { range } -> E.subscribe_band s.eng ~range (record_seq s qid)
        | Select { range_a; range_c } ->
            E.subscribe_select s.eng ~range_a ~range_c (record_seq s qid)
      in
      Hashtbl.replace s.subs qid sub
  | Par p -> Bounded_queue.push p.shard_states.(shard).queue (sub_cmd qid spec));
  { sub_qid = qid }

let remove_query t qid =
  if not (Hashtbl.mem t.regs qid) then false
  else begin
    Hashtbl.remove t.regs qid;
    let owner = Hashtbl.find_opt t.owners qid in
    Hashtbl.remove t.owners qid;
    (match t.impl with
    | Seq s -> (
        match Hashtbl.find_opt s.subs qid with
        | Some esub ->
            ignore (E.unsubscribe s.eng esub);
            Hashtbl.remove s.subs qid
        | None -> ())
    | Par p -> (
        match owner with
        | Some sh -> Bounded_queue.push p.shard_states.(sh).queue (Unsub { qid })
        | None -> ()));
    true
  end

let try_subscribe_band t ~range cb =
  match live t with
  | Error e -> Error e
  | Ok () -> (
      let spec = Band { range } in
      match validate_spec spec with Error e -> Error e | Ok () -> Ok (add_query t spec cb))

let subscribe_band t ~range cb = Err.ok_exn (try_subscribe_band t ~range cb)

let try_subscribe_select t ~range_a ~range_c cb =
  match live t with
  | Error e -> Error e
  | Ok () -> (
      let spec = Select { range_a; range_c } in
      match validate_spec spec with Error e -> Error e | Ok () -> Ok (add_query t spec cb))

let subscribe_select t ~range_a ~range_c cb =
  Err.ok_exn (try_subscribe_select t ~range_a ~range_c cb)

let unsubscribe t sub =
  ensure_live t;
  remove_query t sub.sub_qid

let band_query_count t =
  Hashtbl.fold
    (fun _ rg acc -> match rg.rg_spec with Band _ -> acc + 1 | Select _ -> acc)
    t.regs 0

let select_query_count t =
  Hashtbl.fold
    (fun _ rg acc -> match rg.rg_spec with Select _ -> acc + 1 | Band _ -> acc)
    t.regs 0

(* ------------------------------ ingest --------------------------------- *)

let validate_side_batch side batch =
  let fst_name, snd_name = match side with R -> ("a", "b") | S -> ("b", "c") in
  let n = Batch.length batch in
  let bad = ref None in
  for i = 0 to n - 1 do
    if Option.is_none !bad then begin
      let x = Batch.x batch i and y = Batch.y batch i in
      if not (Float.is_finite x) then bad := Some (Err.Not_finite { name = fst_name; value = x })
      else if not (Float.is_finite y) then
        bad := Some (Err.Not_finite { name = snd_name; value = y })
    end
  done;
  match !bad with None -> Ok () | Some e -> Error e

(* Crude service-time hint for rejected producers: roughly half a
   millisecond per command ahead of the one that didn't fit. *)
let retry_after_ms ~depth ~needed = 0.5 *. float_of_int (depth + needed)

(* Shed-mode keep-rate from instantaneous queue pressure: exact below
   half capacity, then degrading linearly to a floor of 0.1 as the
   deepest queue approaches full. *)
let adaptive_rate p =
  let half = queue_capacity / 2 in
  let maxd =
    Array.fold_left (fun acc st -> Int.max acc (Bounded_queue.length st.queue)) 0 p.shard_states
  in
  if maxd <= half then 1.0
  else
    Float.max 0.1 (1.0 -. (0.9 *. (float_of_int (maxd - half) /. float_of_int half)))

(* Shed mode never blocks indefinitely: a chunk waits at most this long
   for every queue to have a free slot, then is dropped whole (no shard
   receives it, so shards never disagree about the event stream). *)
let shed_grace_ns = 5_000_000L (* 5 ms *)

(* The coordinator is the only producer, so once a free slot is
   observed it cannot disappear before our push. *)
let wait_all_space p ~deadline =
  Array.for_all
    (fun st ->
      let rec loop () =
        if Bounded_queue.length st.queue < queue_capacity then true
        else if Cq_util.Clock.monotonic_ns () >= deadline then false
        else begin
          Domain.cpu_relax ();
          loop ()
        end
      in
      loop ())
    p.shard_states

let try_ingest_batch_flat t side batch =
  match Result.bind (live t) (fun () -> validate_side_batch side batch) with
  | Error e -> Error e
  | Ok () -> (
      let bs = t.cfg.batch_size in
      let n = Batch.length batch in
      let needed = (n + bs - 1) / bs in
      (* Reject-mode admission check happens before any chunk is
         published: the whole batch is accepted or refused atomically,
         so a rejected call leaves no partial state behind.  A batch
         needing more chunks than the queue can hold at all is refused
         with a distinct, non-retriable error — an [Overload] with its
         backoff hint would send the producer into a retry loop that
         can never succeed, even against idle queues. *)
      let admission =
        match (t.cfg.overload, t.impl) with
        | E.Config.Reject, Par _ when needed > queue_capacity ->
            Error
              (Err.Invalid_parameter
                 {
                   name = "rows";
                   value = Printf.sprintf "%d rows (%d chunks of %d)" n needed bs;
                   expected =
                     Printf.sprintf
                       "at most queue_capacity * batch_size = %d rows per batch under \
                        the Reject policy; split the batch"
                       (queue_capacity * bs);
                 })
        | E.Config.Reject, Par p ->
            Array.fold_left
              (fun acc st ->
                match acc with
                | Error _ -> acc
                | Ok () ->
                    let depth = Bounded_queue.length st.queue in
                    if depth + needed > queue_capacity then begin
                      Metrics.incr m_rejected;
                      Error
                        (Err.Overload
                           {
                             shard = st.sid;
                             queue_depth = depth;
                             retry_after_ms = retry_after_ms ~depth ~needed;
                           })
                    end
                    else Ok ())
              (Ok ()) p.shard_states
        | _ -> Ok ()
      in
      match admission with
      | Error _ as e -> e
      | Ok () ->
          (match t.impl with
          | Seq s ->
              (* Single engine: one batch-path descent over the whole
                 batch.  Results are tagged while their event
                 processes, so position the tag for event 0 up front
                 and let the post-event hook pre-position it for event
                 [i + 1] — identical numbering to the per-row loop. *)
              let base_seq = t.next_seq in
              t.next_seq <- base_seq + n;
              s.cur_seq := base_seq;
              s.cur_idx := 0;
              let bump i =
                s.cur_seq := base_seq + i + 1;
                s.cur_idx := 0
              in
              ignore
                (match side with
                | R -> E.ingest_batch_r s.eng ~on_event:bump batch
                | S -> E.ingest_batch_s s.eng ~on_event:bump batch)
          | Par p ->
              (* Chunks are zero-copy slice views of the caller's
                 batch: freeze the root while any view sits in a shard
                 queue, releasing it at the next flush barrier.  An
                 already-sealed root stays the caller's to unseal. *)
              if n > 0 && (not (Batch.is_view batch)) && not (Batch.sealed batch) then begin
                Batch.seal batch;
                t.inflight <- batch :: t.inflight
              end;
              let off = ref 0 in
              while !off < n do
                let len = min bs (n - !off) in
                let chunk = Batch.slice batch ~pos:!off ~len in
                let base_seq = t.next_seq in
                t.next_seq <- base_seq + len;
                (* Per-chunk keep-rate: a forced shed_rate < 1.0 is the
                   deterministic-replay configuration; otherwise Shed
                   adapts to the deepest queue and Block/Reject stay at
                   the configured (normally exact) rate. *)
                let rate =
                  match t.cfg.overload with
                  | E.Config.Shed ->
                      if t.cfg.shed_rate < 1.0 then t.cfg.shed_rate else adaptive_rate p
                  | E.Config.Block | E.Config.Reject -> t.cfg.shed_rate
                in
                let admit =
                  match t.cfg.overload with
                  | E.Config.Shed ->
                      Metrics.set m_shed_rate rate;
                      let deadline =
                        Int64.add (Cq_util.Clock.monotonic_ns ()) shed_grace_ns
                      in
                      wait_all_space p ~deadline
                  | E.Config.Block | E.Config.Reject -> true
                in
                if admit then begin
                  Metrics.incr m_batches;
                  (* The view is immutable once published: every shard
                     reads the same sealed columns. *)
                  Array.iter
                    (fun st ->
                      Bounded_queue.push st.queue
                        (Ingest { iside = side; batch = chunk; base_seq; rate });
                      Metrics.set st.depth_gauge
                        (float_of_int (Bounded_queue.length st.queue)))
                    p.shard_states
                end
                else begin
                  t.dropped_chunks <- t.dropped_chunks + 1;
                  t.dropped_rows <- t.dropped_rows + len;
                  Metrics.incr m_dropped;
                  Log.warn (fun m ->
                      m "shed mode dropped a %d-row chunk: queues full past grace window" len)
                end;
                off := !off + len
              done);
          Ok ())

let ingest_batch_flat t side batch = Err.ok_exn (try_ingest_batch_flat t side batch)

(* Legacy row-array ingest: copy once into a fresh root batch and ship
   it down the flat path. *)
let try_ingest_batch t side rows = try_ingest_batch_flat t side (Batch.of_rows rows)
let ingest_batch t side rows = Err.ok_exn (try_ingest_batch t side rows)

(* ------------------------- barrier and merge --------------------------- *)

(* A misbehaving subscriber must not break delivery for everyone else. *)
let protected cb r s =
  try cb r s
  with exn ->
    Log.warn (fun m -> m "subscriber callback raised %s" (Printexc.to_string exn))

let deliver t results =
  let sorted = List.sort compare_tagged results in
  List.iter
    (fun tg ->
      (match Hashtbl.find_opt t.regs tg.qid with
      | Some rg ->
          (* The windowed load signal the rebalancer reads: results
             delivered since the last check.  Counted here, on the
             already-merged stream, so it is a pure function of the
             input — identical across runs and across shard layouts. *)
          rg.rg_window <- rg.rg_window + 1;
          protected rg.rg_cb tg.r tg.s
      | None -> ());
      t.total_delivered <- t.total_delivered + 1)
    sorted;
  List.length sorted

(* ----------------------------- rebalancing ------------------------------ *)

(* Load model: a shard's load is the sum over its queries of
   [1 + rg_window] — one point for ownership, plus the results the
   query delivered since the last check.  Cold queries keep a floor
   weight so empty shards still attract migrations, and hot groups
   dominate, which is the point. *)
let shard_query_loads t =
  let loads = Array.make t.cfg.shards 0 in
  Hashtbl.iter
    (fun qid rg ->
      match Hashtbl.find_opt t.owners qid with
      | Some sh -> loads.(sh) <- loads.(sh) + 1 + rg.rg_window
      | None -> ())
    t.regs;
  loads

(* max(load) * shards / total(load): 1.0 is perfectly even, [shards] is
   everything-on-one-shard. *)
let imbalance_ratio loads =
  let total = Array.fold_left ( + ) 0 loads in
  if total = 0 then 1.0
  else
    let mx = Array.fold_left Int.max 0 loads in
    float_of_int (mx * Array.length loads) /. float_of_int total

(* First-index tie-break keeps the choice a pure function of the load
   vector. *)
let arg_extreme cmp loads =
  let best = ref 0 in
  Array.iteri (fun i v -> if cmp v loads.(!best) then best := i) loads;
  !best

(* Move one whole strip from [src] to [dst].  The caller runs at a
   flush barrier, so both queues are drained: the Unsub/Sub pairs land
   at the same position of both shards' command streams, making the
   migration point a deterministic batch boundary.  The data plane is
   broadcast-replicated, so re-subscribing on the target is a complete
   state transfer — the query's results are identical either side of
   the move. *)
let migrate_strip t p ~strip ~src ~dst =
  let qids =
    Hashtbl.fold
      (fun qid rg acc ->
        if rg.rg_strip = strip then
          match Hashtbl.find_opt t.owners qid with
          | Some sh when sh = src -> qid :: acc
          | Some _ | None -> acc
        else acc)
      t.regs []
    |> List.sort Int.compare
  in
  List.iter
    (fun qid ->
      match Hashtbl.find_opt t.regs qid with
      | None -> ()
      | Some rg ->
          Bounded_queue.push p.shard_states.(src).queue (Unsub { qid });
          Bounded_queue.push p.shard_states.(dst).queue (sub_cmd qid rg.rg_spec);
          Hashtbl.replace t.owners qid dst)
    qids;
  Hashtbl.replace t.strip_owners strip dst;
  List.length qids

(* Runs on the coordinator immediately after every flush barrier's
   delivery.  Every [check_every] flushes: while the imbalance ratio
   exceeds the threshold, greedily move the strip that best lowers the
   heaviest shard's projected load — but only if it strictly improves
   it, so the loop terminates and cannot oscillate.  All inputs
   (windowed counts, flush count, config) are pure functions of the
   input stream, so the migration schedule is too. *)
let maybe_rebalance t p =
  match t.cfg.rebalance with
  | None -> ()
  | Some { E.Config.threshold; check_every } ->
      t.flushes <- t.flushes + 1;
      if t.flushes mod check_every = 0 then begin
        t.n_checks <- t.n_checks + 1;
        Metrics.incr m_rb_checks;
        let loads = shard_query_loads t in
        let improving = ref true in
        while !improving do
          improving := false;
          let ratio = imbalance_ratio loads in
          t.last_ratio <- ratio;
          Metrics.set m_rb_ratio ratio;
          if ratio > threshold then begin
            let src = arg_extreme ( > ) loads in
            let dst = arg_extreme ( < ) loads in
            if src <> dst then begin
              (* Weight of every strip hosted on the source shard. *)
              let strip_w : (int, int) Hashtbl.t = Hashtbl.create 16 in
              Hashtbl.iter
                (fun qid rg ->
                  match Hashtbl.find_opt t.owners qid with
                  | Some sh when sh = src ->
                      let w =
                        match Hashtbl.find_opt strip_w rg.rg_strip with
                        | Some w -> w
                        | None -> 0
                      in
                      Hashtbl.replace strip_w rg.rg_strip (w + 1 + rg.rg_window)
                  | Some _ | None -> ())
                t.regs;
              (* Candidate strip: minimise the projected heavier side
                 of the (src, dst) pair; ties break to the smallest
                 strip id. *)
              let best = ref None in
              Hashtbl.iter
                (fun strip w ->
                  let projected = Int.max (loads.(src) - w) (loads.(dst) + w) in
                  match !best with
                  | None -> best := Some (strip, w, projected)
                  | Some (bs, _, bp) ->
                      if projected < bp || (projected = bp && strip < bs) then
                        best := Some (strip, w, projected))
                strip_w;
              match !best with
              | Some (strip, w, projected) when projected < loads.(src) ->
                  let moved = migrate_strip t p ~strip ~src ~dst in
                  loads.(src) <- loads.(src) - w;
                  loads.(dst) <- loads.(dst) + w;
                  t.n_migrations <- t.n_migrations + 1;
                  t.n_migrated <- t.n_migrated + moved;
                  Metrics.incr m_rb_migrations;
                  Metrics.add m_rb_migrated moved;
                  Log.info (fun m ->
                      m "rebalance: strip %d (%d queries, weight %d) shard %d -> %d" strip
                        moved w src dst);
                  improving := true
              | Some _ | None -> ()
            end
          end
        done;
        (* Fresh window for the next check. *)
        Hashtbl.iter (fun _ rg -> rg.rg_window <- 0) t.regs
      end

(* Run one barrier command (Flush or Check) through every shard and
   wait for all acks before looking at any error — a poisoned shard
   still acks, so the barrier cannot deadlock, and the first stored
   worker exception is re-raised here on the coordinator. *)
let barrier p cmd =
  Array.iter
    (fun st ->
      Mutex.lock st.lock;
      st.acked <- false;
      st.ack <- None;
      Mutex.unlock st.lock;
      Bounded_queue.push st.queue cmd)
    p.shard_states;
  let acks =
    Array.map
      (fun st ->
        Mutex.lock st.lock;
        while not st.acked do
          Condition.wait st.cond st.lock
        done;
        let ack = st.ack in
        let err = st.worker_error in
        Mutex.unlock st.lock;
        Metrics.set st.depth_gauge (float_of_int (Bounded_queue.length st.queue));
        (st, ack, err))
      p.shard_states
  in
  Array.iter (fun (_, _, err) -> match err with Some exn -> raise exn | None -> ()) acks;
  acks

(* Drain every shard, deliver the merged results, and return the acks
   (each also carries its shard's stats/snapshot block). *)
let sync t =
  match t.impl with
  | Seq s ->
      let rs = !(s.buf) in
      s.buf := [];
      let n = deliver t rs in
      let acks =
        [
          {
            a_results = [];
            a_stats = E.stats s.eng;
            a_band = E.band_snapshot s.eng;
            a_select = E.select_snapshot s.eng;
            a_degraded = E.shed_info s.eng;
            a_shed = E.shed_totals s.eng;
          };
        ]
      in
      (acks, n)
  | Par p ->
      let acks = barrier p Flush in
      (* Every shard has drained its queue past our Ingest commands
         (the barrier ack follows them in FIFO order), so no chunk
         view is live any more: release the frozen roots. *)
      List.iter (fun b -> if Batch.sealed b then Batch.unseal b) t.inflight;
      t.inflight <- [];
      let all =
        Array.fold_left
          (fun acc (st, ack, _) ->
            match ack with
            | Some a ->
                st.delivered <- st.delivered + List.length a.a_results;
                (* Refresh the per-shard load gauges from the ack, on
                   the coordinator's domain — worker-side recording
                   would race the registry's lock-free cells. *)
                st.ld_queries <- a.a_band.P.snap_queries + a.a_select.P.snap_queries;
                st.ld_groups <- a.a_stats.E.band_hotspots + a.a_stats.E.select_hotspots;
                st.ld_max_group <- a.a_stats.E.max_group_size;
                Metrics.set st.queries_gauge (float_of_int st.ld_queries);
                Metrics.set st.groups_gauge (float_of_int st.ld_groups);
                Metrics.set st.max_group_gauge (float_of_int st.ld_max_group);
                Metrics.set st.delivered_gauge (float_of_int st.delivered);
                List.rev_append a.a_results acc
            | None -> acc)
          [] acks
      in
      let counts = Array.map (fun (st, _, _) -> st.delivered) acks in
      let total = Array.fold_left ( + ) 0 counts in
      if total > 0 then begin
        let mx = Array.fold_left Int.max 0 counts in
        Metrics.set m_imbalance
          (float_of_int (mx * Array.length counts) /. float_of_int total)
      end;
      let n = deliver t all in
      (* Rebalance checks run here, after delivery at the barrier:
         queues are drained, windowed counts are fresh, and any
         migration commands land before the next batch. *)
      maybe_rebalance t p;
      (Array.to_list (Array.map (fun (_, ack, _) -> ack) acks) |> List.filter_map Fun.id, n)

let flush t =
  ensure_live t;
  if Metrics.enabled () then begin
    let (_, n), dt = Cq_util.Clock.time_ns (fun () -> sync t) in
    Metrics.observe m_merge_ns (Int64.to_float dt);
    if t.cfg.overload = E.Config.Shed then
      Metrics.observe m_degraded_flush_ns (Int64.to_float dt);
    n
  end
  else snd (sync t)

let results_delivered t = t.total_delivered

(* ------------------------ elastic registration -------------------------- *)

(* Online registration on a running engine: quiesce at a flush barrier
   first, so the new query's first observable event is a deterministic
   stream position (the barrier), then install it exactly like a
   static subscription. *)
let try_register t spec cb =
  match live t with
  | Error e -> Error e
  | Ok () -> (
      match validate_spec spec with
      | Error e -> Error e
      | Ok () ->
          ignore (sync t);
          Ok (add_query t spec cb))

let register t spec cb = Err.ok_exn (try_register t spec cb)

(* Online deregistration: same barrier discipline.  [Ok false] when the
   subscription was already gone. *)
let try_deregister t sub =
  match live t with
  | Error e -> Error e
  | Ok () ->
      if not (Hashtbl.mem t.regs sub.sub_qid) then Ok false
      else begin
        ignore (sync t);
        Ok (remove_query t sub.sub_qid)
      end

let deregister t sub = Err.ok_exn (try_deregister t sub)

(* ---------------------------- introspection ----------------------------- *)

type shard_load = {
  sl_shard : int;
  sl_queries : int;
  sl_groups : int;
  sl_max_group : int;
  sl_queue_depth : int;
  sl_delivered : int;
}

let shard_loads t =
  ensure_live t;
  let acks, _ = sync t in
  match t.impl with
  | Seq _ -> (
      match acks with
      | a :: _ ->
          [|
            {
              sl_shard = 0;
              sl_queries = a.a_band.P.snap_queries + a.a_select.P.snap_queries;
              sl_groups = a.a_stats.E.band_hotspots + a.a_stats.E.select_hotspots;
              sl_max_group = a.a_stats.E.max_group_size;
              sl_queue_depth = 0;
              sl_delivered = t.total_delivered;
            };
          |]
      | [] -> [||])
  | Par p ->
      Array.map
        (fun st ->
          {
            sl_shard = st.sid;
            sl_queries = st.ld_queries;
            sl_groups = st.ld_groups;
            sl_max_group = st.ld_max_group;
            sl_queue_depth = Bounded_queue.length st.queue;
            sl_delivered = st.delivered;
          })
        p.shard_states

type rebalance_stats = {
  rb_checks : int;
  rb_migrations : int;
  rb_migrated_queries : int;
  rb_last_ratio : float;
}

let rebalance_stats t =
  {
    rb_checks = t.n_checks;
    rb_migrations = t.n_migrations;
    rb_migrated_queries = t.n_migrated;
    rb_last_ratio = t.last_ratio;
  }

let merged_stats (acks : ack list) =
  let band = List.fold_left (fun acc a -> P.merge_snapshot acc a.a_band) P.empty_snapshot acks in
  let select =
    List.fold_left (fun acc a -> P.merge_snapshot acc a.a_select) P.empty_snapshot acks
  in
  let mx f = List.fold_left (fun acc a -> Int.max acc (f a.a_stats)) 0 acks in
  let sum f = List.fold_left (fun acc a -> acc + f a.a_stats) 0 acks in
  {
    E.r_size = mx (fun (s : E.stats) -> s.r_size);
    s_size = mx (fun s -> s.s_size);
    events_processed = mx (fun s -> s.events_processed);
    results_delivered = sum (fun s -> s.results_delivered);
    band_hotspots = band.P.snap_hotspots;
    band_coverage = band.P.snap_coverage;
    select_hotspots = select.P.snap_hotspots;
    select_coverage = select.P.snap_coverage;
    restructures = sum (fun s -> s.restructures);
    groups_split = sum (fun s -> s.groups_split);
    groups_merged = sum (fun s -> s.groups_merged);
    max_group_size = mx (fun s -> s.max_group_size);
  }

let stats t =
  ensure_live t;
  let acks, _ = sync t in
  merged_stats acks

(* Queries live on exactly one shard, so the per-shard degraded lists
   are disjoint and their union is the global report. *)
let shed_info t =
  ensure_live t;
  let acks, _ = sync t in
  List.concat_map (fun a -> a.a_degraded) acks
  |> List.sort (fun (a : E.degraded) b -> Int.compare a.deg_qid b.deg_qid)

let shed_totals t =
  ensure_live t;
  let acks, _ = sync t in
  let coins =
    List.fold_left
      (fun (acc : E.shed_totals) a ->
        {
          E.tot_kept = acc.tot_kept + a.a_shed.E.tot_kept;
          tot_dropped = acc.tot_dropped + a.a_shed.E.tot_dropped;
          tot_min_rate = Float.min acc.tot_min_rate a.a_shed.E.tot_min_rate;
        })
      { E.tot_kept = 0; tot_dropped = 0; tot_min_rate = 1.0 }
      acks
  in
  {
    par_kept = coins.E.tot_kept;
    par_dropped = coins.E.tot_dropped;
    par_min_rate = coins.E.tot_min_rate;
    par_dropped_chunks = t.dropped_chunks;
    par_dropped_rows = t.dropped_rows;
  }

let shard_result_counts t =
  match t.impl with
  | Seq _ -> [| t.total_delivered |]
  | Par p -> Array.map (fun st -> st.delivered) p.shard_states

let check_invariants t =
  ensure_live t;
  let fail fmt = Err.corrupt ~structure:"parallel" fmt in
  let acks, _ = sync t in
  (match t.impl with
  | Seq s -> E.check_invariants s.eng
  | Par p -> ignore (barrier p Check));
  (* Every registered query is owned by exactly one shard, and the
     shards' query populations add up to the registry. *)
  if Hashtbl.length t.regs <> Hashtbl.length t.owners then
    fail "parallel: %d registrations for %d owned queries" (Hashtbl.length t.regs)
      (Hashtbl.length t.owners);
  Hashtbl.iter
    (fun qid shard ->
      if shard < 0 || shard >= t.cfg.shards then
        fail "parallel: query %d owned by nonexistent shard %d" qid shard)
    t.owners;
  Hashtbl.iter
    (fun strip shard ->
      if shard < 0 || shard >= t.cfg.shards then
        fail "parallel: strip %d owned by nonexistent shard %d" strip shard)
    t.strip_owners;
  (* Ownership is strip-granular: a query always lives on its strip's
     current shard, so whole stabbing neighbourhoods migrate together
     and a re-registration joins its group wherever it moved to. *)
  Hashtbl.iter
    (fun qid rg ->
      let expect = shard_of_strip t rg.rg_strip in
      match Hashtbl.find_opt t.owners qid with
      | Some sh when sh = expect -> ()
      | Some sh ->
          fail "parallel: query %d on shard %d but its strip %d maps to shard %d" qid sh
            rg.rg_strip expect
      | None -> fail "parallel: query %d registered but unowned" qid)
    t.regs;
  let owned =
    List.fold_left (fun acc a -> acc + a.a_band.P.snap_queries + a.a_select.P.snap_queries) 0 acks
  in
  if owned <> Hashtbl.length t.owners then
    fail "parallel: shards own %d queries, registry has %d" owned (Hashtbl.length t.owners);
  match t.impl with
  | Seq _ -> ()
  | Par p ->
      let per_shard = Array.fold_left (fun acc st -> acc + st.delivered) 0 p.shard_states in
      if per_shard <> t.total_delivered then
        fail "parallel: per-shard deliveries sum to %d, total is %d" per_shard t.total_delivered

(* ------------------------------ shutdown ------------------------------- *)

let shutdown t =
  if not t.stopped then
    match t.impl with
    | Seq _ ->
        Fun.protect
          ~finally:(fun () -> t.stopped <- true)
          (fun () -> ignore (sync t))
    | Par p ->
        Fun.protect
          ~finally:(fun () ->
            t.stopped <- true;
            (* Bounded-wait Stop delivery: a wedged or poisoned shard
               whose queue stays full must not deadlock teardown.  A
               shard whose Stop could not be enqueued is abandoned
               (leaked domain) rather than joined forever — and the
               leak is logged. *)
            let stop_ok =
              Array.map
                (fun st ->
                  Bounded_queue.push_timeout st.queue Stop ~timeout_ns:200_000_000L)
                p.shard_states
            in
            Array.iteri
              (fun i ok ->
                if ok then Domain.join p.doms.(i)
                else
                  Log.err (fun m ->
                      m "shard %d did not accept Stop within 200ms; abandoning its domain" i))
              stop_ok)
          (fun () -> ignore (sync t))

let with_engine cfg f =
  let t = create_cfg cfg in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
