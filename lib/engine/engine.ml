module I = Cq_interval.Interval
module Table = Cq_relation.Table
module Tuple = Cq_relation.Tuple
module Batch = Cq_relation.Batch
module BQ = Cq_joins.Band_query
module BJ = Cq_joins.Band_join
module SQ = Cq_joins.Select_query
module SJ = Cq_joins.Select_join
module Err = Cq_util.Error
module Metrics = Cq_obs.Metrics
module Trace = Cq_obs.Trace

(* End-to-end event latencies (index probes + group walks + callback
   delivery + the home-table store), and global result/event totals.
   All gated on the metrics switch; one branch each when disabled. *)
let m_ingest_ns = Metrics.histogram "engine.ingest_ns"
let m_retract_ns = Metrics.histogram "engine.retract_ns"
let m_events = Metrics.counter "engine.events"
let m_results = Metrics.counter "engine.results"
let m_shed_kept = Metrics.counter "engine.shed.kept"
let m_shed_dropped = Metrics.counter "engine.shed.dropped"

module Config = struct
  type overload = Block | Reject | Shed

  let overload_to_string = function Block -> "block" | Reject -> "reject" | Shed -> "shed"

  let overload_of_string = function
    | "block" -> Ok Block
    | "reject" -> Ok Reject
    | "shed" -> Ok Shed
    | s -> Error (Printf.sprintf "unknown overload policy %S (block|reject|shed)" s)

  type rebalance = { threshold : float; check_every : int }

  type t = {
    alpha : float;
    epsilon : float;
    seed : int;
    backend : Cq_index.Stab_backend.kind;
    strategy : Hotspot_core.Processor.strategy;
    shards : int;
    batch_size : int;
    overload : overload;
    shed_rate : float;
    rebalance : rebalance option;
  }

  let default =
    {
      alpha = 0.01;
      epsilon = 1.0;
      seed = 0x40757;
      backend = Cq_index.Stab_backend.Itree;
      strategy = Hotspot_core.Processor.Hotspot;
      shards = 1;
      batch_size = 256;
      overload = Block;
      shed_rate = 1.0;
      rebalance = None;
    }

  (* The single validator behind every try_create path (sequential and
     parallel): a bad knob always surfaces as Invalid_parameter with
     [name] spelled exactly as the record field. *)
  let validate t =
    match Err.in_unit_open_closed ~name:"alpha" t.alpha with
    | Error _ as e -> e
    | Ok _ -> (
        match Err.positive ~name:"epsilon" t.epsilon with
        | Error _ as e -> e
        | Ok _ -> (
            match Err.at_least ~name:"shards" ~min:1 t.shards with
            | Error _ as e -> e
            | Ok _ -> (
                match Err.at_least ~name:"batch_size" ~min:1 t.batch_size with
                | Error _ as e -> e
                | Ok _ -> (
                    match Err.in_unit_open_closed ~name:"shed_rate" t.shed_rate with
                    | Error _ as e -> e
                    | Ok _ -> (
                        match t.rebalance with
                        | None -> Ok t
                        | Some { threshold; check_every } ->
                            if not (Float.is_finite threshold && threshold >= 1.0) then
                              Error
                                (Err.Invalid_parameter
                                   {
                                     name = "rebalance.threshold";
                                     value = Printf.sprintf "%g" threshold;
                                     expected = "a finite imbalance ratio >= 1.0";
                                   })
                            else (
                              match
                                Err.at_least ~name:"rebalance.check_every" ~min:1 check_every
                              with
                              | Error _ as e -> e
                              | Ok _ -> Ok t))))))
end

type subscription =
  | Band of { fwd : BQ.t; bwd : BQ.t }
  | Select of { fwd : SQ.t; bwd : SQ.t }

(* The configured processors are chosen at engine creation time, so
   each lives behind its module: an existential package pairing the
   processor module with its state. *)
type band_proc = Bproc : (module BJ.PROCESSOR with type t = 'a) * 'a -> band_proc
type select_proc = Sproc : (module SJ.PROCESSOR with type t = 'a) * 'a -> select_proc

(* One side of the symmetric engine.  A side processes the events for
   which its tuples play the R role: its processors probe the {e other}
   side's table, and [home] is where its own tuples are stored (always
   in S shape — B stays the join key, the side-local attribute rides in
   the other slot). *)
type side = {
  band : band_proc;
  select : select_proc;
  home : Table.s_table;
}

(* Per-query Horvitz-Thompson accounting for shed mode.  Results of one
   event are accumulated in the [se_ev_*] pending cells and folded into
   the estimate lazily when a later event (or a reader) arrives, so the
   per-result hot path is two int bumps. *)
type shed_est = {
  mutable se_obs : int;  (* results actually delivered *)
  mutable se_est : float;  (* HT cardinality estimate *)
  mutable se_err : float;  (* exact kept-side error mass: sum k*(1-p)/p *)
  mutable se_dropped : int;  (* dropped (event, query) candidates *)
  mutable se_min_p : float;  (* lowest keep-rate this query saw *)
  mutable se_kbound : float;  (* sum of per-event k caps over drops *)
  mutable se_ev : int;  (* ordinal of the pending event *)
  mutable se_ev_k : int;  (* results of the pending event *)
  mutable se_ev_p : float;  (* keep-rate of the pending event *)
}

type t = {
  s_table : Table.s_table;
  (* R encoded in S shape: B stays the join key, A rides in the C
     slot.  S-side events are processed against this mirror with the
     mirrored queries below. *)
  r_mirror : Table.s_table;
  r_side : side;
  s_side : side;
  band_cbs : (int, Tuple.r -> Tuple.s -> unit) Hashtbl.t;
  select_cbs : (int, Tuple.r -> Tuple.s -> unit) Hashtbl.t;
  band_retracts : (int, Tuple.r -> Tuple.s -> unit) Hashtbl.t;
  select_retracts : (int, Tuple.r -> Tuple.s -> unit) Hashtbl.t;
  mutable next_qid : int;
  mutable next_rid : int;
  mutable next_sid : int;
  mutable events : int;
  mutable results : int;
  (* Load-shedding state.  [shed_rate] is the current Bernoulli
     keep-probability (1.0 = exact); [shed_seed]/[shed_ord] key the
     deterministic per-(event, query) coin, with the ordinal counting
     ingests only so that every shard of a broadcast stream assigns the
     same ordinals. *)
  mutable shed_rate : float;
  (* True once the engine is in shed mode: created under the [Shed]
     policy or with a forced rate, or handed a sub-unit rate later.
     While engaged, {e every} delivered result is folded into the
     per-query estimator — rate-1.0 phases at p = 1.0 contribute zero
     error mass — so the claimed bound covers the whole stream even
     when an adaptive controller moves the rate through 1.0.  Never
     reset: bounds stay valid across exact interludes. *)
  mutable shed_engaged : bool;
  mutable shed_seed : int;
  mutable shed_ord : int;
  mutable shed_kept : int;
  mutable shed_dropped : int;
  mutable shed_floor : float;  (* lowest rate applied while shedding *)
  mutable shed_ev_kbound : int;  (* opposite-table size for this event *)
  shed_ests : (int, shed_est) Hashtbl.t;
  (* Hot-path delivery closures, allocated once at creation and
     parameterised through the [cur_r]/[cur_s] cells, so per-event
     ingest builds no sink closures.  [evbuf]/[sbuf] are the reusable
     pseudo-event buffers of the flat-batch path. *)
  mutable cur_r : Tuple.r option;
  mutable cur_s : Tuple.s option;
  mutable ob_r : BQ.t -> Tuple.s -> unit;
  mutable os_r : SQ.t -> Tuple.s -> unit;
  mutable ob_s : BQ.t -> Tuple.s -> unit;
  mutable os_s : SQ.t -> Tuple.s -> unit;
  mutable evbuf : Tuple.r array;
  mutable sbuf : Tuple.s array;
}

(* Dispatch helpers over the existential packages. *)
let band_process (Bproc ((module P), p)) r sink = P.process_r p r sink
let band_stage (Bproc ((module P), p)) evs n = P.stage_batch p evs n
let band_process_staged (Bproc ((module P), p)) ~idx r sink = P.process_staged p ~idx r sink
let band_insert (Bproc ((module P), p)) q = P.insert_query p q
let band_delete (Bproc ((module P), p)) q = P.delete_query p q
let band_count (Bproc ((module P), p)) = P.query_count p
let band_check (Bproc ((module P), p)) = P.check_invariants p
let band_hotspots (Bproc ((module P), p)) = P.num_hotspots p
let band_coverage (Bproc ((module P), p)) = P.coverage p
let band_telemetry (Bproc ((module P), p)) = P.telemetry p
let band_set_shed (Bproc ((module P), p)) pred = P.set_shed p pred
let select_process (Sproc ((module P), p)) r sink = P.process_r p r sink
let select_stage (Sproc ((module P), p)) evs n = P.stage_batch p evs n
let select_process_staged (Sproc ((module P), p)) ~idx r sink = P.process_staged p ~idx r sink
let select_set_shed (Sproc ((module P), p)) pred = P.set_shed p pred
let select_insert (Sproc ((module P), p)) q = P.insert_query p q
let select_delete (Sproc ((module P), p)) q = P.delete_query p q
let select_count (Sproc ((module P), p)) = P.query_count p
let select_check (Sproc ((module P), p)) = P.check_invariants p
let select_hotspots (Sproc ((module P), p)) = P.num_hotspots p
let select_coverage (Sproc ((module P), p)) = P.coverage p
let select_telemetry (Sproc ((module P), p)) = P.telemetry p

(* {2 Load shedding}

   Shed mode samples (event, query) candidate pairs with a Bernoulli
   coin of keep-probability [shed_rate]; a dropped pair skips the
   query's probes for that event entirely.  Delivered answers are
   degraded: the per-query Horvitz-Thompson estimate [se_est] unbiases
   the observed cardinality, and the claimed absolute-error bound is

     max(se_err, se_kbound)

   This is rigorous, not heuristic.  Writing the exact count as
   N = sum over all (event, query) candidates of k_i (the event's
   result count for the query), the estimate is sum over kept events
   of k_i/p_i, so

     est - N = sum_kept k_i*(1-p_i)/p_i - sum_dropped k_i

   The positive part is [se_err] exactly (accumulated per kept event);
   the negative part is bounded by [se_kbound], the sum over dropped
   events of that event's opposite-table size — an event's results all
   pair it with previously stored tuples of the other relation, so the
   table size at ingest time caps k_i.  The difference of two
   non-negative sums is bounded by their max.  Tuples are broadcast to
   every shard, so table sizes at a given ordinal — like the coins —
   are shard-invariant, and the claimed bound is identical for every
   shard count.

   For the sum to cover the whole stream the estimator must see every
   delivered result, including those of exact phases: an adaptive
   controller moves the rate between 1.0 and sub-unit values per
   chunk, and results delivered at rate 1.0 are candidates kept with
   p = 1 — they add k/1 to the estimate and zero to either error term.
   Omitting them would understate the estimate by exactly the exact
   phases' result count while the claimed bound only covered the
   shed phases' sampling error.  Hence recording is gated on
   [shed_engaged] (shed mode), not on the instantaneous rate.
   [Cq_robust.Oracle.run_shed] fuzzes the bound at constant forced
   rates and [Cq_robust.Oracle.run_shed_adaptive] across rate
   schedules that mix exact and shedding phases. *)

let est_for t qid =
  match Hashtbl.find_opt t.shed_ests qid with
  | Some e -> e
  | None ->
      let e =
        {
          se_obs = 0;
          se_est = 0.0;
          se_err = 0.0;
          se_dropped = 0;
          se_min_p = 1.0;
          se_kbound = 0.0;
          se_ev = -1;
          se_ev_k = 0;
          se_ev_p = 1.0;
        }
      in
      Hashtbl.replace t.shed_ests qid e;
      e

let flush_pending est =
  if est.se_ev_k > 0 then begin
    let k = float_of_int est.se_ev_k and p = est.se_ev_p in
    est.se_est <- est.se_est +. (k /. p);
    est.se_err <- est.se_err +. (k *. (1.0 -. p) /. p);
    est.se_ev_k <- 0
  end

(* The coin is a pure function of (seed, event ordinal, qid): every
   shard of a broadcast stream — and every replay with the same seed —
   flips identically, which is what makes shed decisions deterministic
   and shard-count-invariant. *)
let shed_coin t qid =
  let mix =
    t.shed_seed
    lxor (t.shed_ord * 0x2545F4914F6CDD1D)
    lxor ((qid + 1) * 0x1F3779B97F4A7C15)
  in
  Cq_util.Rng.float (Cq_util.Rng.create mix) < t.shed_rate

let shed_pred t qid =
  t.shed_rate >= 1.0
  ||
  if shed_coin t qid then begin
    t.shed_kept <- t.shed_kept + 1;
    if t.shed_rate < t.shed_floor then t.shed_floor <- t.shed_rate;
    Metrics.incr m_shed_kept;
    true
  end
  else begin
    t.shed_dropped <- t.shed_dropped + 1;
    if t.shed_rate < t.shed_floor then t.shed_floor <- t.shed_rate;
    Metrics.incr m_shed_dropped;
    let est = est_for t qid in
    est.se_dropped <- est.se_dropped + 1;
    est.se_kbound <- est.se_kbound +. float_of_int t.shed_ev_kbound;
    if t.shed_rate < est.se_min_p then est.se_min_p <- t.shed_rate;
    false
  end

let shed_note_result t qid =
  if t.shed_engaged then begin
    let est = est_for t qid in
    if est.se_ev <> t.shed_ord then begin
      flush_pending est;
      est.se_ev <- t.shed_ord;
      est.se_ev_p <- t.shed_rate
    end;
    est.se_ev_k <- est.se_ev_k + 1;
    est.se_obs <- est.se_obs + 1;
    if t.shed_rate < est.se_min_p then est.se_min_p <- t.shed_rate
  end

type degraded = {
  deg_qid : int;
  deg_observed : int;
  deg_estimate : float;
  deg_claimed_error : float;
  deg_rate : float;
}

type shed_totals = { tot_kept : int; tot_dropped : int; tot_min_rate : float }

let shed_totals t =
  { tot_kept = t.shed_kept; tot_dropped = t.shed_dropped; tot_min_rate = t.shed_floor }

(* Only queries actually touched by a sub-unit coin are reported: a
   query whose candidates were all seen at rate 1.0 (in particular,
   every query of an engine that never shed) has estimate = observed =
   exact and claimed error 0 — omitting it keeps "exact processing ⇒
   empty report" true even though the estimator records rate-1.0
   traffic while engaged. *)
let shed_info t =
  let out =
    Hashtbl.fold
      (fun qid est acc ->
        flush_pending est;
        if est.se_dropped = 0 && est.se_min_p >= 1.0 then acc
        else
          let claimed = Float.max est.se_err est.se_kbound in
          {
            deg_qid = qid;
            deg_observed = est.se_obs;
            deg_estimate = est.se_est;
            deg_claimed_error = claimed;
            deg_rate = est.se_min_p;
          }
          :: acc)
      t.shed_ests []
  in
  List.sort (fun a b -> Int.compare a.deg_qid b.deg_qid) out

(* All four processors share one predicate closed over the engine, so
   a rate change applies everywhere at once.  The predicate is only
   installed while shedding is active (rate < 1.0): with [None]
   installed the processors take their exact zero-overhead path, so
   Block mode is byte-for-byte the pre-shedding engine. *)
let install_shed t =
  let pred = if t.shed_rate < 1.0 then Some (fun qid -> shed_pred t qid) else None in
  band_set_shed t.r_side.band pred;
  band_set_shed t.s_side.band pred;
  select_set_shed t.r_side.select pred;
  select_set_shed t.s_side.select pred

let set_shed_rate t rate =
  let was_shedding = t.shed_rate < 1.0 in
  t.shed_rate <- rate;
  if rate < 1.0 then t.shed_engaged <- true;
  if was_shedding <> (rate < 1.0) then install_shed t

let set_shed_seed t seed = t.shed_seed <- seed

let log_src = Logs.Src.create "cq.engine" ~doc:"continuous-query engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* A misbehaving subscriber must not break event processing for
   everyone else: callback exceptions are contained and logged. *)
let protected cb r s =
  try cb r s
  with exn ->
    Log.warn (fun m -> m "subscriber callback raised %s" (Printexc.to_string exn))

let deliver_band t (q : BQ.t) r s =
  (match Hashtbl.find_opt t.band_cbs q.qid with
  | Some cb -> protected cb r s
  | None -> ());
  t.results <- t.results + 1;
  shed_note_result t q.qid;
  Metrics.incr m_results

let deliver_select t (q : SQ.t) r s =
  (match Hashtbl.find_opt t.select_cbs q.qid with
  | Some cb -> protected cb r s
  | None -> ());
  t.results <- t.results + 1;
  shed_note_result t q.qid;
  Metrics.incr m_results

(* Both encodings are one and the same transposition: the join key B
   stays put, the side-local attribute crosses to the other slot.  An
   R-tuple stored in S shape, and a probe-table row decoded back into
   R shape, go through these. *)
let to_row (r : Tuple.r) = { Tuple.sid = r.rid; b = r.b; c = r.a }
let of_row (s : Tuple.s) = { Tuple.rid = s.sid; a = s.c; b = s.b }

let dummy_r = { Tuple.rid = -1; a = 0.0; b = 0.0 }
let dummy_s = { Tuple.sid = -1; b = 0.0; c = 0.0 }

let make_side (cfg : Config.t) ~probe ~home ~seed_base =
  let (module BP : BJ.PROCESSOR) = BJ.processor cfg.strategy cfg.backend in
  let (module SP : SJ.PROCESSOR) = SJ.processor cfg.strategy cfg.backend in
  {
    band =
      Bproc
        ( (module BP),
          BP.create_cfg ~alpha:cfg.alpha ~epsilon:cfg.epsilon ~seed:seed_base probe [||] );
    select =
      Sproc
        ( (module SP),
          SP.create_cfg ~alpha:cfg.alpha ~epsilon:cfg.epsilon ~seed:(seed_base + 2) probe
            [||] );
    home;
  }

let try_create_cfg (cfg : Config.t) =
  match Config.validate cfg with
  | Error e -> Error e
  | Ok _ ->
      let s_table = Table.create_s () in
      let r_mirror = Table.create_s () in
      (* The four processors get distinct derived seeds so their treap
         priority streams stay independent: the R side takes seed and
         seed+2, the S side seed+1 and seed+3. *)
      let t =
        {
          s_table;
          r_mirror;
          r_side = make_side cfg ~probe:s_table ~home:r_mirror ~seed_base:cfg.seed;
          s_side = make_side cfg ~probe:r_mirror ~home:s_table ~seed_base:(cfg.seed + 1);
          band_cbs = Hashtbl.create 64;
          select_cbs = Hashtbl.create 64;
          band_retracts = Hashtbl.create 64;
          select_retracts = Hashtbl.create 64;
          next_qid = 0;
          next_rid = 0;
          next_sid = 0;
          events = 0;
          results = 0;
          shed_rate = cfg.shed_rate;
          shed_engaged = (cfg.overload = Config.Shed || cfg.shed_rate < 1.0);
          shed_seed = cfg.seed;
          shed_ord = 0;
          shed_kept = 0;
          shed_dropped = 0;
          shed_floor = 1.0;
          shed_ev_kbound = 0;
          shed_ests = Hashtbl.create 32;
          cur_r = None;
          cur_s = None;
          ob_r = (fun _ _ -> ());
          os_r = (fun _ _ -> ());
          ob_s = (fun _ _ -> ());
          os_s = (fun _ _ -> ());
          evbuf = [||];
          sbuf = [||];
        }
      in
      (* Tie the delivery-closure knot: the four sinks read the event
         tuple from [cur_r]/[cur_s] instead of capturing it, so the
         same closures serve every event. *)
      t.ob_r <-
        (fun q s -> match t.cur_r with Some r -> deliver_band t q r s | None -> ());
      t.os_r <-
        (fun q s -> match t.cur_r with Some r -> deliver_select t q r s | None -> ());
      t.ob_s <-
        (fun q mirror ->
          match t.cur_s with Some s -> deliver_band t q (of_row mirror) s | None -> ());
      t.os_s <-
        (fun q mirror ->
          match t.cur_s with Some s -> deliver_select t q (of_row mirror) s | None -> ());
      install_shed t;
      Ok t

let create_cfg cfg = Err.ok_exn (try_create_cfg cfg)

let try_create ?alpha ?epsilon ?seed ?backend ?strategy ?shards ?batch_size ?overload
    ?shed_rate ?rebalance () =
  let d = Config.default in
  try_create_cfg
    {
      alpha = Option.value alpha ~default:d.alpha;
      epsilon = Option.value epsilon ~default:d.epsilon;
      seed = Option.value seed ~default:d.seed;
      backend = Option.value backend ~default:d.backend;
      strategy = Option.value strategy ~default:d.strategy;
      shards = Option.value shards ~default:d.shards;
      batch_size = Option.value batch_size ~default:d.batch_size;
      overload = Option.value overload ~default:d.overload;
      shed_rate = Option.value shed_rate ~default:d.shed_rate;
      rebalance = Option.value rebalance ~default:d.rebalance;
    }

let create ?alpha ?epsilon ?seed ?backend ?strategy ?shards ?batch_size ?overload ?shed_rate
    ?rebalance () =
  Err.ok_exn
    (try_create ?alpha ?epsilon ?seed ?backend ?strategy ?shards ?batch_size ?overload
       ?shed_rate ?rebalance ())

let fresh_qid t =
  let q = t.next_qid in
  t.next_qid <- q + 1;
  q

(* Subscriptions normally draw sequential qids; an explicit [?qid]
   override lets a coordinator (Engine.Parallel) impose its own global
   numbering so qids — and therefore shed-coin outcomes — are identical
   on every shard regardless of which queries landed there. *)
let claim_qid t = function
  | None -> Ok (fresh_qid t)
  | Some q ->
      if Hashtbl.mem t.band_cbs q || Hashtbl.mem t.select_cbs q then
        Error (Err.Duplicate { what = Printf.sprintf "qid %d" q })
      else begin
        t.next_qid <- max t.next_qid (q + 1);
        Ok q
      end

(* The mirrored band window: S.B - R.B ∈ [lo, hi] iff
   R.B - S.B ∈ [-hi, -lo]. *)
let negate_range r = I.make (-.I.hi r) (-.I.lo r)

let try_subscribe_band t ?qid ?on_retract ~range cb =
  if I.is_empty range then Error (Err.Empty_range { name = "range" })
  else
    match claim_qid t qid with
    | Error _ as e -> e
    | Ok qid ->
        let fwd = BQ.make ~qid ~range in
        let bwd = BQ.make ~qid ~range:(negate_range range) in
        band_insert t.r_side.band fwd;
        band_insert t.s_side.band bwd;
        Hashtbl.replace t.band_cbs qid cb;
        (match on_retract with
        | Some f -> Hashtbl.replace t.band_retracts qid f
        | None -> ());
        Ok (Band { fwd; bwd })

let subscribe_band t ?qid ?on_retract ~range cb =
  Err.ok_exn (try_subscribe_band t ?qid ?on_retract ~range cb)

let try_subscribe_select t ?qid ?on_retract ~range_a ~range_c cb =
  if I.is_empty range_a then Error (Err.Empty_range { name = "range_a" })
  else if I.is_empty range_c then Error (Err.Empty_range { name = "range_c" })
  else
    match claim_qid t qid with
    | Error _ as e -> e
    | Ok qid ->
        let fwd = SQ.make ~qid ~range_a ~range_c in
        (* Mirror swaps the roles of the two selection axes. *)
        let bwd = SQ.make ~qid ~range_a:range_c ~range_c:range_a in
        select_insert t.r_side.select fwd;
        select_insert t.s_side.select bwd;
        Hashtbl.replace t.select_cbs qid cb;
        (match on_retract with
        | Some f -> Hashtbl.replace t.select_retracts qid f
        | None -> ());
        Ok (Select { fwd; bwd })

let subscribe_select t ?qid ?on_retract ~range_a ~range_c cb =
  Err.ok_exn (try_subscribe_select t ?qid ?on_retract ~range_a ~range_c cb)

let unsubscribe t = function
  | Band { fwd; bwd } ->
      let ok = band_delete t.r_side.band fwd in
      if ok then begin
        ignore (band_delete t.s_side.band bwd);
        Hashtbl.remove t.band_cbs fwd.BQ.qid;
        Hashtbl.remove t.band_retracts fwd.BQ.qid
      end;
      ok
  | Select { fwd; bwd } ->
      let ok = select_delete t.r_side.select fwd in
      if ok then begin
        ignore (select_delete t.s_side.select bwd);
        Hashtbl.remove t.select_cbs fwd.SQ.qid;
        Hashtbl.remove t.select_retracts fwd.SQ.qid
      end;
      ok

let band_query_count t = band_count t.r_side.band
let select_query_count t = select_count t.r_side.select

(* The symmetric event path, written once and driven by both sides:
   the event — encoded in the R role for [side]'s processors — is run
   through the side's band and select processors, then stored in the
   side's home table so future events on the other side can see it. *)
let ingest t side pseudo ~on_band ~on_select =
  t.events <- t.events + 1;
  (* Ordinals advance on ingests only (never on retractions), so a
     broadcast stream assigns the same ordinal to the same event on
     every shard. *)
  t.shed_ord <- t.shed_ord + 1;
  (* Cap on this event's per-query result count: it can only pair with
     tuples already stored on the other side.  Broadcast replication
     makes this size shard-invariant at a given ordinal, so the claimed
     error bounds built from it are too. *)
  if t.shed_rate < 1.0 then
    t.shed_ev_kbound <-
      Table.s_size (if side == t.r_side then t.s_side.home else t.r_side.home);
  Metrics.incr m_events;
  if Metrics.enabled () then begin
    let (), dt =
      Cq_util.Clock.time_ns (fun () ->
          band_process side.band pseudo on_band;
          select_process side.select pseudo on_select;
          Table.insert_s side.home (to_row pseudo))
    in
    Metrics.observe m_ingest_ns (Int64.to_float dt)
  end
  else begin
    band_process side.band pseudo on_band;
    select_process side.select pseudo on_select;
    Table.insert_s side.home (to_row pseudo)
  end

(* Deletion, likewise: the tuple leaves the home table first (it must
   not join with itself), then the very machinery that produced its
   result pairs at insertion time recomputes them as retractions.

   Shed mode is insert-only, matching the parallel API (which routes no
   deletions at all): a retraction would recompute the {e exact} result
   pairs — firing [on_retract] for pairs that were shed at insertion
   time and never delivered — and the Horvitz-Thompson accounting has
   no sound way to subtract them.  [shed_guard] rejects the deletion
   up front, before any state changes. *)
let shed_guard t what =
  if t.shed_engaged then
    Err.raise_
      (Err.Invalid_parameter
         {
           name = what;
           value = "shed-mode engine";
           expected =
             "an insert-only workload under the Shed policy / a forced shed_rate (use \
              Block or Reject for workloads with deletions)";
         })

let retract t side pseudo ~on_band ~on_select =
  if not (Table.delete_s side.home (to_row pseudo)) then None
  else begin
    t.events <- t.events + 1;
    Metrics.incr m_events;
    let count = ref 0 in
    let run () =
      band_process side.band pseudo (fun q s ->
          incr count;
          on_band q s);
      select_process side.select pseudo (fun q s ->
          incr count;
          on_select q s)
    in
    (* [shed_guard] has already excluded shed-mode engines, so the rate
       is 1.0 here and the recomputation is exact. *)
    if Metrics.enabled () then begin
      let (), dt = Cq_util.Clock.time_ns run in
      Metrics.observe m_retract_ns (Int64.to_float dt)
    end
    else run ();
    Some !count
  end

(* Attribute values must be finite: a NaN join key admitted into the
   B-trees breaks their total order silently — by far the nastiest
   corruption the fuzz harness found a route to. *)
let insert_r_unchecked t ~a ~b =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  let r = { Tuple.rid; a; b } in
  let before = t.results in
  t.cur_r <- Some r;
  ingest t t.r_side r ~on_band:t.ob_r ~on_select:t.os_r;
  t.cur_r <- None;
  (r, t.results - before)

let try_insert_r t ~a ~b =
  match Err.both (Err.finite ~name:"a" a) (Err.finite ~name:"b" b) with
  | Error e -> Error e
  | Ok _ -> Ok (insert_r_unchecked t ~a ~b)

let insert_r t ~a ~b = Err.ok_exn (try_insert_r t ~a ~b)

let insert_s_unchecked t ~b ~c =
  let sid = t.next_sid in
  t.next_sid <- sid + 1;
  let s = { Tuple.sid; b; c } in
  let before = t.results in
  (* Through the mirror: the new S-tuple plays the R role, and the
     probe results are r_mirror rows decoded back into R shape. *)
  t.cur_s <- Some s;
  ingest t t.s_side (of_row s) ~on_band:t.ob_s ~on_select:t.os_s;
  t.cur_s <- None;
  (s, t.results - before)

let try_insert_s t ~b ~c =
  match Err.both (Err.finite ~name:"b" b) (Err.finite ~name:"c" c) with
  | Error e -> Error e
  | Ok _ -> Ok (insert_s_unchecked t ~b ~c)

let insert_s t ~b ~c = Err.ok_exn (try_insert_s t ~b ~c)

(* {2 Flat-batch ingest}

   The batch is validated as a whole, its events staged through the
   processors' batched scattered-index descent, then processed event
   by event through the preallocated sinks — no per-event closures, no
   intermediate per-tuple lists.  Semantics are exactly the sequential
   path's: each event is processed before its row reaches the home
   table (a tuple never joins with itself), ordinals advance once per
   row, and same-side events never join with each other, so staging
   the whole batch up front observes the same index state per event as
   a sequential replay.  Subscriber callbacks must not re-enter the
   engine (ingest, subscribe, unsubscribe) during a batch: the staged
   candidates and scratch buffers assume the structure is quiescent
   until the batch returns. *)

let ensure_evbuf t n =
  if Array.length t.evbuf < n then t.evbuf <- Array.make n dummy_r

let ensure_sbuf t n = if Array.length t.sbuf < n then t.sbuf <- Array.make n dummy_s

(* Same per-event bookkeeping as [ingest], with the staged processor
   entry points. *)
(* [home] is the row stored in the side's home table — structurally
   [to_row pseudo], passed in so the S side can reuse the row it
   already built instead of re-allocating it per event. *)
let[@cq.hot] ingest_staged t side ~idx pseudo ~home ~on_band ~on_select =
  t.events <- t.events + 1;
  t.shed_ord <- t.shed_ord + 1;
  if t.shed_rate < 1.0 then
    t.shed_ev_kbound <-
      Table.s_size (if side == t.r_side then t.s_side.home else t.r_side.home);
  Metrics.incr m_events;
  if Metrics.enabled () then begin
    let (), dt =
      Cq_util.Clock.time_ns (fun () ->
          band_process_staged side.band ~idx pseudo on_band;
          select_process_staged side.select ~idx pseudo on_select;
          Table.insert_s side.home home)
    in
    Metrics.observe m_ingest_ns (Int64.to_float dt)
  end
  else begin
    band_process_staged side.band ~idx pseudo on_band;
    select_process_staged side.select ~idx pseudo on_select;
    Table.insert_s side.home home
  end

(* Whole-batch validation, mirroring [validate_rows]: a bad row fails
   the batch before any state changes. *)
(* Tracks the first bad index, not a materialised error, so the clean
   (overwhelmingly common) pass allocates nothing; the [Error] payload
   is built once, after the scan, only on the failure path. *)
let[@cq.hot] validate_batch ~x_name ~y_name batch =
  let n = Batch.length batch in
  let bad = ref (-1) in
  let bad_y = ref false in
  let i = ref 0 in
  while !bad < 0 && !i < n do
    let x = Batch.unsafe_x batch !i and y = Batch.unsafe_y batch !i in
    if not (Float.is_finite x) then bad := !i
    else if not (Float.is_finite y) then begin
      bad := !i;
      bad_y := true
    end
    else incr i
  done;
  if !bad < 0 then Ok ()
  else if !bad_y then
    Error (Err.Not_finite { name = y_name; value = Batch.unsafe_y batch !bad })
  else Error (Err.Not_finite { name = x_name; value = Batch.unsafe_x batch !bad })

let[@cq.hot] try_ingest_batch_r t ?on_event batch =
  match validate_batch ~x_name:"a" ~y_name:"b" batch with
  | Error e -> Error e
  | Ok () ->
      let n = Batch.length batch in
      let before = t.results in
      ensure_evbuf t n;
      let writable = not (Batch.is_view batch || Batch.sealed batch) in
      for i = 0 to n - 1 do
        let rid = t.next_rid in
        t.next_rid <- rid + 1;
        if writable then Batch.set_id batch i rid;
        t.evbuf.(i) <- { Tuple.rid; a = Batch.unsafe_x batch i; b = Batch.unsafe_y batch i }
      done;
      band_stage t.r_side.band t.evbuf n;
      select_stage t.r_side.select t.evbuf n;
      for i = 0 to n - 1 do
        let r = t.evbuf.(i) in
        t.cur_r <- Some r;
        ingest_staged t t.r_side ~idx:i r ~home:(to_row r) ~on_band:t.ob_r ~on_select:t.os_r;
        match on_event with Some f -> f i | None -> ()
      done;
      t.cur_r <- None;
      Ok (t.results - before)

let[@cq.hot] try_ingest_batch_s t ?on_event batch =
  match validate_batch ~x_name:"b" ~y_name:"c" batch with
  | Error e -> Error e
  | Ok () ->
      let n = Batch.length batch in
      let before = t.results in
      ensure_evbuf t n;
      ensure_sbuf t n;
      let writable = not (Batch.is_view batch || Batch.sealed batch) in
      for i = 0 to n - 1 do
        let sid = t.next_sid in
        t.next_sid <- sid + 1;
        if writable then Batch.set_id batch i sid;
        let s = { Tuple.sid; b = Batch.unsafe_x batch i; c = Batch.unsafe_y batch i } in
        t.sbuf.(i) <- s;
        (* The S-tuple plays the R role against the mirror. *)
        t.evbuf.(i) <- of_row s
      done;
      band_stage t.s_side.band t.evbuf n;
      select_stage t.s_side.select t.evbuf n;
      for i = 0 to n - 1 do
        t.cur_s <- Some t.sbuf.(i);
        ingest_staged t t.s_side ~idx:i t.evbuf.(i) ~home:t.sbuf.(i) ~on_band:t.ob_s
          ~on_select:t.os_s;
        match on_event with Some f -> f i | None -> ()
      done;
      t.cur_s <- None;
      Ok (t.results - before)

let ingest_batch_r t ?on_event batch = Err.ok_exn (try_ingest_batch_r t ?on_event batch)
let ingest_batch_s t ?on_event batch = Err.ok_exn (try_ingest_batch_s t ?on_event batch)

(* Bulk loads validate every row before touching the tables, so a bad
   row cannot leave a half-applied load behind.  The Cq_error payload
   names the actual attribute ("b"/"c" for S rows, "a"/"b" for R rows),
   matching what try_insert_r/try_insert_s report for the same value —
   not the tuple position. *)
let validate_rows ~fst_name ~snd_name rows =
  let bad = ref None in
  Array.iter
    (fun (x, y) ->
      if Option.is_none !bad then
        if not (Float.is_finite x) then
          bad := Some (Err.Not_finite { name = fst_name; value = x })
        else if not (Float.is_finite y) then
          bad := Some (Err.Not_finite { name = snd_name; value = y }))
    rows;
  match !bad with None -> Ok () | Some e -> Error e

let try_load_s t rows =
  match validate_rows ~fst_name:"b" ~snd_name:"c" rows with
  | Error e -> Error e
  | Ok () ->
      Array.iter
        (fun (b, c) ->
          let sid = t.next_sid in
          t.next_sid <- sid + 1;
          Table.insert_s t.s_table { Tuple.sid; b; c })
        rows;
      Ok ()

let load_s t rows = Err.ok_exn (try_load_s t rows)

let try_load_r t rows =
  match validate_rows ~fst_name:"a" ~snd_name:"b" rows with
  | Error e -> Error e
  | Ok () ->
      Array.iter
        (fun (a, b) ->
          let rid = t.next_rid in
          t.next_rid <- rid + 1;
          Table.insert_s t.r_mirror { Tuple.sid = rid; b; c = a })
        rows;
      Ok ()

let load_r t rows = Err.ok_exn (try_load_r t rows)

let find_retract tbl qid = Hashtbl.find_opt tbl qid

let delete_r t (r : Tuple.r) =
  shed_guard t "delete_r";
  retract t t.r_side r
    ~on_band:(fun (q : BQ.t) s ->
      match find_retract t.band_retracts q.qid with
      | Some f -> protected f r s
      | None -> ())
    ~on_select:(fun (q : SQ.t) s ->
      match find_retract t.select_retracts q.qid with
      | Some f -> protected f r s
      | None -> ())

let delete_s t (s : Tuple.s) =
  shed_guard t "delete_s";
  retract t t.s_side (of_row s)
    ~on_band:(fun (q : BQ.t) mirror ->
      match find_retract t.band_retracts q.qid with
      | Some f -> protected f (of_row mirror) s
      | None -> ())
    ~on_select:(fun (q : SQ.t) mirror ->
      match find_retract t.select_retracts q.qid with
      | Some f -> protected f (of_row mirror) s
      | None -> ())

let check_invariants t =
  let fail fmt = Cq_util.Error.corrupt ~structure:"engine" fmt in
  band_check t.r_side.band;
  band_check t.s_side.band;
  select_check t.r_side.select;
  select_check t.s_side.select;
  (* Forward and mirrored query sets are registered/cancelled in
     lockstep. *)
  if band_count t.r_side.band <> band_count t.s_side.band then
    fail "engine: %d forward band queries but %d mirrored"
      (band_count t.r_side.band) (band_count t.s_side.band);
  if select_count t.r_side.select <> select_count t.s_side.select then
    fail "engine: %d forward select queries but %d mirrored"
      (select_count t.r_side.select)
      (select_count t.s_side.select);
  if Hashtbl.length t.band_cbs <> band_count t.r_side.band then
    fail "engine: band callback table out of sync with query set";
  if Hashtbl.length t.select_cbs <> select_count t.r_side.select then
    fail "engine: select callback table out of sync with query set";
  if Table.s_size t.s_table > t.next_sid then fail "engine: |S| exceeds issued sids";
  if Table.s_size t.r_mirror > t.next_rid then fail "engine: |R| exceeds issued rids"

type stats = {
  r_size : int;
  s_size : int;
  events_processed : int;
  results_delivered : int;
  band_hotspots : int;
  band_coverage : float;
  select_hotspots : int;
  select_coverage : float;
  restructures : int;
  groups_split : int;
  groups_merged : int;
  max_group_size : int;
}

(* Aggregate structural-reorganisation telemetry over all four
   processors (band/select × forward/mirror). *)
let telemetry t =
  let module P = Hotspot_core.Processor in
  List.fold_left P.add_telemetry P.empty_telemetry
    [
      band_telemetry t.r_side.band;
      band_telemetry t.s_side.band;
      select_telemetry t.r_side.select;
      select_telemetry t.s_side.select;
    ]

let stats t =
  let tel = telemetry t in
  {
    r_size = Table.s_size t.r_mirror;
    s_size = Table.s_size t.s_table;
    events_processed = t.events;
    results_delivered = t.results;
    band_hotspots = band_hotspots t.r_side.band;
    band_coverage = band_coverage t.r_side.band;
    select_hotspots = select_hotspots t.r_side.select;
    select_coverage = select_coverage t.r_side.select;
    restructures = tel.Hotspot_core.Processor.restructures;
    groups_split = tel.Hotspot_core.Processor.groups_split;
    groups_merged = tel.Hotspot_core.Processor.groups_merged;
    max_group_size = tel.Hotspot_core.Processor.max_group_size;
  }

(* Cross-shard merge hooks: forward-side snapshots only, matching the
   hotspot/coverage fields of [stats] (the mirror side tracks the same
   query population). *)
let band_snapshot t =
  let (Bproc ((module P), p)) = t.r_side.band in
  P.snapshot p

let select_snapshot t =
  let (Sproc ((module P), p)) = t.r_side.select in
  P.snapshot p

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>|R| = %d, |S| = %d@,\
     events processed   %d@,\
     results delivered  %d@,\
     band hotspots      %d (coverage %.1f%%)@,\
     select hotspots    %d (coverage %.1f%%)@,\
     restructures       %d (%d splits, %d merges)@,\
     max group size     %d@]"
    s.r_size s.s_size s.events_processed s.results_delivered s.band_hotspots
    (100.0 *. s.band_coverage) s.select_hotspots (100.0 *. s.select_coverage)
    s.restructures s.groups_split s.groups_merged s.max_group_size
