module I = Cq_interval.Interval
module Table = Cq_relation.Table
module Tuple = Cq_relation.Tuple
module BQ = Cq_joins.Band_query
module BJ = Cq_joins.Band_join
module SQ = Cq_joins.Select_query
module SJ = Cq_joins.Select_join

type subscription =
  | Band of { fwd : BQ.t; bwd : BQ.t }
  | Select of { fwd : SQ.t; bwd : SQ.t }

type t = {
  s_table : Table.s_table;
  (* R encoded in S shape: B stays the join key, A rides in the C
     slot.  S-side events are processed against this mirror with the
     mirrored queries below. *)
  r_mirror : Table.s_table;
  band_fwd : BJ.Hotspot.t;
  band_bwd : BJ.Hotspot.t;
  select_fwd : SJ.Hotspot.t;
  select_bwd : SJ.Hotspot.t;
  band_cbs : (int, Tuple.r -> Tuple.s -> unit) Hashtbl.t;
  select_cbs : (int, Tuple.r -> Tuple.s -> unit) Hashtbl.t;
  band_retracts : (int, Tuple.r -> Tuple.s -> unit) Hashtbl.t;
  select_retracts : (int, Tuple.r -> Tuple.s -> unit) Hashtbl.t;
  mutable next_qid : int;
  mutable next_rid : int;
  mutable next_sid : int;
  mutable events : int;
  mutable results : int;
}

module Err = Cq_util.Error

let try_create ?(alpha = 0.01) ?(seed = 0x40757) () =
  match Err.in_unit_open_closed ~name:"alpha" alpha with
  | Error e -> Error e
  | Ok alpha ->
      let s_table = Table.create_s () in
      let r_mirror = Table.create_s () in
      (* The four trackers get distinct derived seeds so their treap
         priority streams stay independent. *)
      Ok
        {
          s_table;
          r_mirror;
          band_fwd = BJ.Hotspot.create_alpha ~alpha ~seed s_table [||];
          band_bwd = BJ.Hotspot.create_alpha ~alpha ~seed:(seed + 1) r_mirror [||];
          select_fwd = SJ.Hotspot.create_alpha ~alpha ~seed:(seed + 2) s_table [||];
          select_bwd = SJ.Hotspot.create_alpha ~alpha ~seed:(seed + 3) r_mirror [||];
          band_cbs = Hashtbl.create 64;
          select_cbs = Hashtbl.create 64;
          band_retracts = Hashtbl.create 64;
          select_retracts = Hashtbl.create 64;
          next_qid = 0;
          next_rid = 0;
          next_sid = 0;
          events = 0;
          results = 0;
        }

let create ?alpha ?seed () = Err.ok_exn (try_create ?alpha ?seed ())

let fresh_qid t =
  let q = t.next_qid in
  t.next_qid <- q + 1;
  q

(* The mirrored band window: S.B - R.B ∈ [lo, hi] iff
   R.B - S.B ∈ [-hi, -lo]. *)
let negate_range r = I.make (-.I.hi r) (-.I.lo r)

let try_subscribe_band t ?on_retract ~range cb =
  if I.is_empty range then Error (Err.Empty_range { name = "range" })
  else begin
    let qid = fresh_qid t in
    let fwd = BQ.make ~qid ~range in
    let bwd = BQ.make ~qid ~range:(negate_range range) in
    BJ.Hotspot.insert_query t.band_fwd fwd;
    BJ.Hotspot.insert_query t.band_bwd bwd;
    Hashtbl.replace t.band_cbs qid cb;
    (match on_retract with Some f -> Hashtbl.replace t.band_retracts qid f | None -> ());
    Ok (Band { fwd; bwd })
  end

let subscribe_band t ?on_retract ~range cb =
  Err.ok_exn (try_subscribe_band t ?on_retract ~range cb)

let try_subscribe_select t ?on_retract ~range_a ~range_c cb =
  if I.is_empty range_a then Error (Err.Empty_range { name = "range_a" })
  else if I.is_empty range_c then Error (Err.Empty_range { name = "range_c" })
  else begin
    let qid = fresh_qid t in
    let fwd = SQ.make ~qid ~range_a ~range_c in
    (* Mirror swaps the roles of the two selection axes. *)
    let bwd = SQ.make ~qid ~range_a:range_c ~range_c:range_a in
    SJ.Hotspot.insert_query t.select_fwd fwd;
    SJ.Hotspot.insert_query t.select_bwd bwd;
    Hashtbl.replace t.select_cbs qid cb;
    (match on_retract with Some f -> Hashtbl.replace t.select_retracts qid f | None -> ());
    Ok (Select { fwd; bwd })
  end

let subscribe_select t ?on_retract ~range_a ~range_c cb =
  Err.ok_exn (try_subscribe_select t ?on_retract ~range_a ~range_c cb)

let unsubscribe t = function
  | Band { fwd; bwd } ->
      let ok = BJ.Hotspot.delete_query t.band_fwd fwd in
      if ok then begin
        ignore (BJ.Hotspot.delete_query t.band_bwd bwd);
        Hashtbl.remove t.band_cbs fwd.BQ.qid;
        Hashtbl.remove t.band_retracts fwd.BQ.qid
      end;
      ok
  | Select { fwd; bwd } ->
      let ok = SJ.Hotspot.delete_query t.select_fwd fwd in
      if ok then begin
        ignore (SJ.Hotspot.delete_query t.select_bwd bwd);
        Hashtbl.remove t.select_cbs fwd.SQ.qid;
        Hashtbl.remove t.select_retracts fwd.SQ.qid
      end;
      ok

let band_query_count t = BJ.Hotspot.query_count t.band_fwd
let select_query_count t = SJ.Hotspot.query_count t.select_fwd

let log_src = Logs.Src.create "cq.engine" ~doc:"continuous-query engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* A misbehaving subscriber must not break event processing for
   everyone else: callback exceptions are contained and logged. *)
let protected cb r s =
  try cb r s
  with exn ->
    Log.warn (fun m -> m "subscriber callback raised %s" (Printexc.to_string exn))

let deliver_band t (q : BQ.t) r s =
  (match Hashtbl.find_opt t.band_cbs q.qid with
  | Some cb -> protected cb r s
  | None -> ());
  t.results <- t.results + 1

let deliver_select t (q : SQ.t) r s =
  (match Hashtbl.find_opt t.select_cbs q.qid with
  | Some cb -> protected cb r s
  | None -> ());
  t.results <- t.results + 1

(* Attribute values must be finite: a NaN join key admitted into the
   B-trees breaks their total order silently — by far the nastiest
   corruption the fuzz harness found a route to. *)
let insert_r_unchecked t ~a ~b =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  let r = { Tuple.rid; a; b } in
  t.events <- t.events + 1;
  let before = t.results in
  BJ.Hotspot.process_r t.band_fwd r (fun q s -> deliver_band t q r s);
  SJ.Hotspot.process_r t.select_fwd r (fun q s -> deliver_select t q r s);
  (* Make the tuple visible to future S-side events. *)
  Table.insert_s t.r_mirror { Tuple.sid = rid; b; c = a };
  (r, t.results - before)

let try_insert_r t ~a ~b =
  match Err.both (Err.finite ~name:"a" a) (Err.finite ~name:"b" b) with
  | Error e -> Error e
  | Ok _ -> Ok (insert_r_unchecked t ~a ~b)

let insert_r t ~a ~b = Err.ok_exn (try_insert_r t ~a ~b)

let decode_r (ms : Tuple.s) = { Tuple.rid = ms.sid; a = ms.c; b = ms.b }

let insert_s_unchecked t ~b ~c =
  let sid = t.next_sid in
  t.next_sid <- sid + 1;
  let s = { Tuple.sid; b; c } in
  t.events <- t.events + 1;
  let before = t.results in
  (* Process through the mirror: the new S-tuple plays the R role. *)
  let pseudo_r = { Tuple.rid = sid; a = c; b } in
  BJ.Hotspot.process_r t.band_bwd pseudo_r (fun q mirror ->
      deliver_band t q (decode_r mirror) s);
  SJ.Hotspot.process_r t.select_bwd pseudo_r (fun q mirror ->
      deliver_select t q (decode_r mirror) s);
  Table.insert_s t.s_table s;
  (s, t.results - before)

let try_insert_s t ~b ~c =
  match Err.both (Err.finite ~name:"b" b) (Err.finite ~name:"c" c) with
  | Error e -> Error e
  | Ok _ -> Ok (insert_s_unchecked t ~b ~c)

let insert_s t ~b ~c = Err.ok_exn (try_insert_s t ~b ~c)

(* Bulk loads validate every row before touching the tables, so a bad
   row cannot leave a half-applied load behind. *)
let validate_rows rows =
  let bad = ref None in
  Array.iter
    (fun (x, y) ->
      if !bad = None then
        if not (Float.is_finite x) then bad := Some (Err.Not_finite { name = "fst"; value = x })
        else if not (Float.is_finite y) then
          bad := Some (Err.Not_finite { name = "snd"; value = y }))
    rows;
  match !bad with None -> Ok () | Some e -> Error e

let try_load_s t rows =
  match validate_rows rows with
  | Error e -> Error e
  | Ok () ->
      Array.iter
        (fun (b, c) ->
          let sid = t.next_sid in
          t.next_sid <- sid + 1;
          Table.insert_s t.s_table { Tuple.sid; b; c })
        rows;
      Ok ()

let load_s t rows = Err.ok_exn (try_load_s t rows)

let try_load_r t rows =
  match validate_rows rows with
  | Error e -> Error e
  | Ok () ->
      Array.iter
        (fun (a, b) ->
          let rid = t.next_rid in
          t.next_rid <- rid + 1;
          Table.insert_s t.r_mirror { Tuple.sid = rid; b; c = a })
        rows;
      Ok ()

let load_r t rows = Err.ok_exn (try_load_r t rows)

(* The result pairs a tuple contributed are recomputed by the same
   group-processing machinery that found them at insertion time; each
   becomes a retraction. *)
let delete_r t (r : Tuple.r) =
  let mirror = { Tuple.sid = r.rid; b = r.b; c = r.a } in
  if not (Table.delete_s t.r_mirror mirror) then None
  else begin
    t.events <- t.events + 1;
    let count = ref 0 in
    BJ.Hotspot.process_r t.band_fwd r (fun q s ->
        incr count;
        match Hashtbl.find_opt t.band_retracts q.BQ.qid with
        | Some f -> protected f r s
        | None -> ());
    SJ.Hotspot.process_r t.select_fwd r (fun q s ->
        incr count;
        match Hashtbl.find_opt t.select_retracts q.SQ.qid with
        | Some f -> protected f r s
        | None -> ());
    Some !count
  end

let delete_s t (s : Tuple.s) =
  if not (Table.delete_s t.s_table s) then None
  else begin
    t.events <- t.events + 1;
    let count = ref 0 in
    let pseudo_r = { Tuple.rid = s.sid; a = s.c; b = s.b } in
    BJ.Hotspot.process_r t.band_bwd pseudo_r (fun q mirror ->
        incr count;
        match Hashtbl.find_opt t.band_retracts q.BQ.qid with
        | Some f -> protected f (decode_r mirror) s
        | None -> ());
    SJ.Hotspot.process_r t.select_bwd pseudo_r (fun q mirror ->
        incr count;
        match Hashtbl.find_opt t.select_retracts q.SQ.qid with
        | Some f -> protected f (decode_r mirror) s
        | None -> ());
    Some !count
  end

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  BJ.Hotspot.check_invariants t.band_fwd;
  BJ.Hotspot.check_invariants t.band_bwd;
  SJ.Hotspot.check_invariants t.select_fwd;
  SJ.Hotspot.check_invariants t.select_bwd;
  (* Forward and mirrored query sets are registered/cancelled in
     lockstep. *)
  if BJ.Hotspot.query_count t.band_fwd <> BJ.Hotspot.query_count t.band_bwd then
    fail "engine: %d forward band queries but %d mirrored"
      (BJ.Hotspot.query_count t.band_fwd)
      (BJ.Hotspot.query_count t.band_bwd);
  if SJ.Hotspot.query_count t.select_fwd <> SJ.Hotspot.query_count t.select_bwd then
    fail "engine: %d forward select queries but %d mirrored"
      (SJ.Hotspot.query_count t.select_fwd)
      (SJ.Hotspot.query_count t.select_bwd);
  if Hashtbl.length t.band_cbs <> BJ.Hotspot.query_count t.band_fwd then
    fail "engine: band callback table out of sync with query set";
  if Hashtbl.length t.select_cbs <> SJ.Hotspot.query_count t.select_fwd then
    fail "engine: select callback table out of sync with query set";
  if Table.s_size t.s_table > t.next_sid then fail "engine: |S| exceeds issued sids";
  if Table.s_size t.r_mirror > t.next_rid then fail "engine: |R| exceeds issued rids"

type stats = {
  r_size : int;
  s_size : int;
  events_processed : int;
  results_delivered : int;
  band_hotspots : int;
  band_coverage : float;
  select_hotspots : int;
  select_coverage : float;
}

let stats t =
  {
    r_size = Table.s_size t.r_mirror;
    s_size = Table.s_size t.s_table;
    events_processed = t.events;
    results_delivered = t.results;
    band_hotspots = BJ.Hotspot.num_hotspots t.band_fwd;
    band_coverage = BJ.Hotspot.coverage t.band_fwd;
    select_hotspots = SJ.Hotspot.num_hotspots t.select_fwd;
    select_coverage = SJ.Hotspot.coverage t.select_fwd;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>|R| = %d, |S| = %d@,\
     events processed   %d@,\
     results delivered  %d@,\
     band hotspots      %d (coverage %.1f%%)@,\
     select hotspots    %d (coverage %.1f%%)@]"
    s.r_size s.s_size s.events_processed s.results_delivered s.band_hotspots
    (100.0 *. s.band_coverage) s.select_hotspots (100.0 *. s.select_coverage)
