module I = Cq_interval.Interval
module Table = Cq_relation.Table
module Tuple = Cq_relation.Tuple
module BQ = Cq_joins.Band_query
module BJ = Cq_joins.Band_join
module SQ = Cq_joins.Select_query
module SJ = Cq_joins.Select_join
module Err = Cq_util.Error
module Metrics = Cq_obs.Metrics
module Trace = Cq_obs.Trace

(* End-to-end event latencies (index probes + group walks + callback
   delivery + the home-table store), and global result/event totals.
   All gated on the metrics switch; one branch each when disabled. *)
let m_ingest_ns = Metrics.histogram "engine.ingest_ns"
let m_retract_ns = Metrics.histogram "engine.retract_ns"
let m_events = Metrics.counter "engine.events"
let m_results = Metrics.counter "engine.results"

module Config = struct
  type t = {
    alpha : float;
    epsilon : float;
    seed : int;
    backend : Cq_index.Stab_backend.kind;
    strategy : Hotspot_core.Processor.strategy;
    shards : int;
    batch_size : int;
  }

  let default =
    {
      alpha = 0.01;
      epsilon = 1.0;
      seed = 0x40757;
      backend = Cq_index.Stab_backend.Itree;
      strategy = Hotspot_core.Processor.Hotspot;
      shards = 1;
      batch_size = 256;
    }

  (* The single validator behind every try_create path (sequential and
     parallel): a bad knob always surfaces as Invalid_parameter with
     [name] spelled exactly as the record field. *)
  let validate t =
    match Err.in_unit_open_closed ~name:"alpha" t.alpha with
    | Error _ as e -> e
    | Ok _ -> (
        match Err.positive ~name:"epsilon" t.epsilon with
        | Error _ as e -> e
        | Ok _ -> (
            match Err.at_least ~name:"shards" ~min:1 t.shards with
            | Error _ as e -> e
            | Ok _ -> (
                match Err.at_least ~name:"batch_size" ~min:1 t.batch_size with
                | Error _ as e -> e
                | Ok _ -> Ok t)))
end

type subscription =
  | Band of { fwd : BQ.t; bwd : BQ.t }
  | Select of { fwd : SQ.t; bwd : SQ.t }

(* The configured processors are chosen at engine creation time, so
   each lives behind its module: an existential package pairing the
   processor module with its state. *)
type band_proc = Bproc : (module BJ.PROCESSOR with type t = 'a) * 'a -> band_proc
type select_proc = Sproc : (module SJ.PROCESSOR with type t = 'a) * 'a -> select_proc

(* One side of the symmetric engine.  A side processes the events for
   which its tuples play the R role: its processors probe the {e other}
   side's table, and [home] is where its own tuples are stored (always
   in S shape — B stays the join key, the side-local attribute rides in
   the other slot). *)
type side = {
  band : band_proc;
  select : select_proc;
  home : Table.s_table;
}

type t = {
  s_table : Table.s_table;
  (* R encoded in S shape: B stays the join key, A rides in the C
     slot.  S-side events are processed against this mirror with the
     mirrored queries below. *)
  r_mirror : Table.s_table;
  r_side : side;
  s_side : side;
  band_cbs : (int, Tuple.r -> Tuple.s -> unit) Hashtbl.t;
  select_cbs : (int, Tuple.r -> Tuple.s -> unit) Hashtbl.t;
  band_retracts : (int, Tuple.r -> Tuple.s -> unit) Hashtbl.t;
  select_retracts : (int, Tuple.r -> Tuple.s -> unit) Hashtbl.t;
  mutable next_qid : int;
  mutable next_rid : int;
  mutable next_sid : int;
  mutable events : int;
  mutable results : int;
}

(* Dispatch helpers over the existential packages. *)
let band_process (Bproc ((module P), p)) r sink = P.process_r p r sink
let band_insert (Bproc ((module P), p)) q = P.insert_query p q
let band_delete (Bproc ((module P), p)) q = P.delete_query p q
let band_count (Bproc ((module P), p)) = P.query_count p
let band_check (Bproc ((module P), p)) = P.check_invariants p
let band_hotspots (Bproc ((module P), p)) = P.num_hotspots p
let band_coverage (Bproc ((module P), p)) = P.coverage p
let band_telemetry (Bproc ((module P), p)) = P.telemetry p
let select_process (Sproc ((module P), p)) r sink = P.process_r p r sink
let select_insert (Sproc ((module P), p)) q = P.insert_query p q
let select_delete (Sproc ((module P), p)) q = P.delete_query p q
let select_count (Sproc ((module P), p)) = P.query_count p
let select_check (Sproc ((module P), p)) = P.check_invariants p
let select_hotspots (Sproc ((module P), p)) = P.num_hotspots p
let select_coverage (Sproc ((module P), p)) = P.coverage p
let select_telemetry (Sproc ((module P), p)) = P.telemetry p

let make_side (cfg : Config.t) ~probe ~home ~seed_base =
  let (module BP : BJ.PROCESSOR) = BJ.processor cfg.strategy cfg.backend in
  let (module SP : SJ.PROCESSOR) = SJ.processor cfg.strategy cfg.backend in
  {
    band =
      Bproc
        ( (module BP),
          BP.create_cfg ~alpha:cfg.alpha ~epsilon:cfg.epsilon ~seed:seed_base probe [||] );
    select =
      Sproc
        ( (module SP),
          SP.create_cfg ~alpha:cfg.alpha ~epsilon:cfg.epsilon ~seed:(seed_base + 2) probe
            [||] );
    home;
  }

let try_create_cfg (cfg : Config.t) =
  match Config.validate cfg with
  | Error e -> Error e
  | Ok _ ->
      let s_table = Table.create_s () in
      let r_mirror = Table.create_s () in
      (* The four processors get distinct derived seeds so their treap
         priority streams stay independent: the R side takes seed and
         seed+2, the S side seed+1 and seed+3. *)
      Ok
        {
          s_table;
          r_mirror;
          r_side = make_side cfg ~probe:s_table ~home:r_mirror ~seed_base:cfg.seed;
          s_side = make_side cfg ~probe:r_mirror ~home:s_table ~seed_base:(cfg.seed + 1);
          band_cbs = Hashtbl.create 64;
          select_cbs = Hashtbl.create 64;
          band_retracts = Hashtbl.create 64;
          select_retracts = Hashtbl.create 64;
          next_qid = 0;
          next_rid = 0;
          next_sid = 0;
          events = 0;
          results = 0;
        }

let create_cfg cfg = Err.ok_exn (try_create_cfg cfg)

let try_create ?alpha ?epsilon ?seed ?backend ?strategy ?shards ?batch_size () =
  let d = Config.default in
  try_create_cfg
    {
      alpha = Option.value alpha ~default:d.alpha;
      epsilon = Option.value epsilon ~default:d.epsilon;
      seed = Option.value seed ~default:d.seed;
      backend = Option.value backend ~default:d.backend;
      strategy = Option.value strategy ~default:d.strategy;
      shards = Option.value shards ~default:d.shards;
      batch_size = Option.value batch_size ~default:d.batch_size;
    }

let create ?alpha ?epsilon ?seed ?backend ?strategy ?shards ?batch_size () =
  Err.ok_exn (try_create ?alpha ?epsilon ?seed ?backend ?strategy ?shards ?batch_size ())

let fresh_qid t =
  let q = t.next_qid in
  t.next_qid <- q + 1;
  q

(* The mirrored band window: S.B - R.B ∈ [lo, hi] iff
   R.B - S.B ∈ [-hi, -lo]. *)
let negate_range r = I.make (-.I.hi r) (-.I.lo r)

let try_subscribe_band t ?on_retract ~range cb =
  if I.is_empty range then Error (Err.Empty_range { name = "range" })
  else begin
    let qid = fresh_qid t in
    let fwd = BQ.make ~qid ~range in
    let bwd = BQ.make ~qid ~range:(negate_range range) in
    band_insert t.r_side.band fwd;
    band_insert t.s_side.band bwd;
    Hashtbl.replace t.band_cbs qid cb;
    (match on_retract with Some f -> Hashtbl.replace t.band_retracts qid f | None -> ());
    Ok (Band { fwd; bwd })
  end

let subscribe_band t ?on_retract ~range cb =
  Err.ok_exn (try_subscribe_band t ?on_retract ~range cb)

let try_subscribe_select t ?on_retract ~range_a ~range_c cb =
  if I.is_empty range_a then Error (Err.Empty_range { name = "range_a" })
  else if I.is_empty range_c then Error (Err.Empty_range { name = "range_c" })
  else begin
    let qid = fresh_qid t in
    let fwd = SQ.make ~qid ~range_a ~range_c in
    (* Mirror swaps the roles of the two selection axes. *)
    let bwd = SQ.make ~qid ~range_a:range_c ~range_c:range_a in
    select_insert t.r_side.select fwd;
    select_insert t.s_side.select bwd;
    Hashtbl.replace t.select_cbs qid cb;
    (match on_retract with Some f -> Hashtbl.replace t.select_retracts qid f | None -> ());
    Ok (Select { fwd; bwd })
  end

let subscribe_select t ?on_retract ~range_a ~range_c cb =
  Err.ok_exn (try_subscribe_select t ?on_retract ~range_a ~range_c cb)

let unsubscribe t = function
  | Band { fwd; bwd } ->
      let ok = band_delete t.r_side.band fwd in
      if ok then begin
        ignore (band_delete t.s_side.band bwd);
        Hashtbl.remove t.band_cbs fwd.BQ.qid;
        Hashtbl.remove t.band_retracts fwd.BQ.qid
      end;
      ok
  | Select { fwd; bwd } ->
      let ok = select_delete t.r_side.select fwd in
      if ok then begin
        ignore (select_delete t.s_side.select bwd);
        Hashtbl.remove t.select_cbs fwd.SQ.qid;
        Hashtbl.remove t.select_retracts fwd.SQ.qid
      end;
      ok

let band_query_count t = band_count t.r_side.band
let select_query_count t = select_count t.r_side.select

let log_src = Logs.Src.create "cq.engine" ~doc:"continuous-query engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* A misbehaving subscriber must not break event processing for
   everyone else: callback exceptions are contained and logged. *)
let protected cb r s =
  try cb r s
  with exn ->
    Log.warn (fun m -> m "subscriber callback raised %s" (Printexc.to_string exn))

let deliver_band t (q : BQ.t) r s =
  (match Hashtbl.find_opt t.band_cbs q.qid with
  | Some cb -> protected cb r s
  | None -> ());
  t.results <- t.results + 1;
  Metrics.incr m_results

let deliver_select t (q : SQ.t) r s =
  (match Hashtbl.find_opt t.select_cbs q.qid with
  | Some cb -> protected cb r s
  | None -> ());
  t.results <- t.results + 1;
  Metrics.incr m_results

(* Both encodings are one and the same transposition: the join key B
   stays put, the side-local attribute crosses to the other slot.  An
   R-tuple stored in S shape, and a probe-table row decoded back into
   R shape, go through these. *)
let to_row (r : Tuple.r) = { Tuple.sid = r.rid; b = r.b; c = r.a }
let of_row (s : Tuple.s) = { Tuple.rid = s.sid; a = s.c; b = s.b }

(* The symmetric event path, written once and driven by both sides:
   the event — encoded in the R role for [side]'s processors — is run
   through the side's band and select processors, then stored in the
   side's home table so future events on the other side can see it. *)
let ingest t side pseudo ~on_band ~on_select =
  t.events <- t.events + 1;
  Metrics.incr m_events;
  if Metrics.enabled () then begin
    let (), dt =
      Cq_util.Clock.time_ns (fun () ->
          band_process side.band pseudo on_band;
          select_process side.select pseudo on_select;
          Table.insert_s side.home (to_row pseudo))
    in
    Metrics.observe m_ingest_ns (Int64.to_float dt)
  end
  else begin
    band_process side.band pseudo on_band;
    select_process side.select pseudo on_select;
    Table.insert_s side.home (to_row pseudo)
  end

(* Deletion, likewise: the tuple leaves the home table first (it must
   not join with itself), then the very machinery that produced its
   result pairs at insertion time recomputes them as retractions. *)
let retract t side pseudo ~on_band ~on_select =
  if not (Table.delete_s side.home (to_row pseudo)) then None
  else begin
    t.events <- t.events + 1;
    Metrics.incr m_events;
    let count = ref 0 in
    let run () =
      band_process side.band pseudo (fun q s ->
          incr count;
          on_band q s);
      select_process side.select pseudo (fun q s ->
          incr count;
          on_select q s)
    in
    if Metrics.enabled () then begin
      let (), dt = Cq_util.Clock.time_ns run in
      Metrics.observe m_retract_ns (Int64.to_float dt)
    end
    else run ();
    Some !count
  end

(* Attribute values must be finite: a NaN join key admitted into the
   B-trees breaks their total order silently — by far the nastiest
   corruption the fuzz harness found a route to. *)
let insert_r_unchecked t ~a ~b =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  let r = { Tuple.rid; a; b } in
  let before = t.results in
  ingest t t.r_side r
    ~on_band:(fun q s -> deliver_band t q r s)
    ~on_select:(fun q s -> deliver_select t q r s);
  (r, t.results - before)

let try_insert_r t ~a ~b =
  match Err.both (Err.finite ~name:"a" a) (Err.finite ~name:"b" b) with
  | Error e -> Error e
  | Ok _ -> Ok (insert_r_unchecked t ~a ~b)

let insert_r t ~a ~b = Err.ok_exn (try_insert_r t ~a ~b)

let insert_s_unchecked t ~b ~c =
  let sid = t.next_sid in
  t.next_sid <- sid + 1;
  let s = { Tuple.sid; b; c } in
  let before = t.results in
  (* Through the mirror: the new S-tuple plays the R role, and the
     probe results are r_mirror rows decoded back into R shape. *)
  ingest t t.s_side (of_row s)
    ~on_band:(fun q mirror -> deliver_band t q (of_row mirror) s)
    ~on_select:(fun q mirror -> deliver_select t q (of_row mirror) s);
  (s, t.results - before)

let try_insert_s t ~b ~c =
  match Err.both (Err.finite ~name:"b" b) (Err.finite ~name:"c" c) with
  | Error e -> Error e
  | Ok _ -> Ok (insert_s_unchecked t ~b ~c)

let insert_s t ~b ~c = Err.ok_exn (try_insert_s t ~b ~c)

(* Bulk loads validate every row before touching the tables, so a bad
   row cannot leave a half-applied load behind.  The Cq_error payload
   names the actual attribute ("b"/"c" for S rows, "a"/"b" for R rows),
   matching what try_insert_r/try_insert_s report for the same value —
   not the tuple position. *)
let validate_rows ~fst_name ~snd_name rows =
  let bad = ref None in
  Array.iter
    (fun (x, y) ->
      if Option.is_none !bad then
        if not (Float.is_finite x) then
          bad := Some (Err.Not_finite { name = fst_name; value = x })
        else if not (Float.is_finite y) then
          bad := Some (Err.Not_finite { name = snd_name; value = y }))
    rows;
  match !bad with None -> Ok () | Some e -> Error e

let try_load_s t rows =
  match validate_rows ~fst_name:"b" ~snd_name:"c" rows with
  | Error e -> Error e
  | Ok () ->
      Array.iter
        (fun (b, c) ->
          let sid = t.next_sid in
          t.next_sid <- sid + 1;
          Table.insert_s t.s_table { Tuple.sid; b; c })
        rows;
      Ok ()

let load_s t rows = Err.ok_exn (try_load_s t rows)

let try_load_r t rows =
  match validate_rows ~fst_name:"a" ~snd_name:"b" rows with
  | Error e -> Error e
  | Ok () ->
      Array.iter
        (fun (a, b) ->
          let rid = t.next_rid in
          t.next_rid <- rid + 1;
          Table.insert_s t.r_mirror { Tuple.sid = rid; b; c = a })
        rows;
      Ok ()

let load_r t rows = Err.ok_exn (try_load_r t rows)

let find_retract tbl qid = Hashtbl.find_opt tbl qid

let delete_r t (r : Tuple.r) =
  retract t t.r_side r
    ~on_band:(fun (q : BQ.t) s ->
      match find_retract t.band_retracts q.qid with
      | Some f -> protected f r s
      | None -> ())
    ~on_select:(fun (q : SQ.t) s ->
      match find_retract t.select_retracts q.qid with
      | Some f -> protected f r s
      | None -> ())

let delete_s t (s : Tuple.s) =
  retract t t.s_side (of_row s)
    ~on_band:(fun (q : BQ.t) mirror ->
      match find_retract t.band_retracts q.qid with
      | Some f -> protected f (of_row mirror) s
      | None -> ())
    ~on_select:(fun (q : SQ.t) mirror ->
      match find_retract t.select_retracts q.qid with
      | Some f -> protected f (of_row mirror) s
      | None -> ())

let check_invariants t =
  let fail fmt = Cq_util.Error.corrupt ~structure:"engine" fmt in
  band_check t.r_side.band;
  band_check t.s_side.band;
  select_check t.r_side.select;
  select_check t.s_side.select;
  (* Forward and mirrored query sets are registered/cancelled in
     lockstep. *)
  if band_count t.r_side.band <> band_count t.s_side.band then
    fail "engine: %d forward band queries but %d mirrored"
      (band_count t.r_side.band) (band_count t.s_side.band);
  if select_count t.r_side.select <> select_count t.s_side.select then
    fail "engine: %d forward select queries but %d mirrored"
      (select_count t.r_side.select)
      (select_count t.s_side.select);
  if Hashtbl.length t.band_cbs <> band_count t.r_side.band then
    fail "engine: band callback table out of sync with query set";
  if Hashtbl.length t.select_cbs <> select_count t.r_side.select then
    fail "engine: select callback table out of sync with query set";
  if Table.s_size t.s_table > t.next_sid then fail "engine: |S| exceeds issued sids";
  if Table.s_size t.r_mirror > t.next_rid then fail "engine: |R| exceeds issued rids"

type stats = {
  r_size : int;
  s_size : int;
  events_processed : int;
  results_delivered : int;
  band_hotspots : int;
  band_coverage : float;
  select_hotspots : int;
  select_coverage : float;
  restructures : int;
  groups_split : int;
  groups_merged : int;
  max_group_size : int;
}

(* Aggregate structural-reorganisation telemetry over all four
   processors (band/select × forward/mirror). *)
let telemetry t =
  let module P = Hotspot_core.Processor in
  List.fold_left P.add_telemetry P.empty_telemetry
    [
      band_telemetry t.r_side.band;
      band_telemetry t.s_side.band;
      select_telemetry t.r_side.select;
      select_telemetry t.s_side.select;
    ]

let stats t =
  let tel = telemetry t in
  {
    r_size = Table.s_size t.r_mirror;
    s_size = Table.s_size t.s_table;
    events_processed = t.events;
    results_delivered = t.results;
    band_hotspots = band_hotspots t.r_side.band;
    band_coverage = band_coverage t.r_side.band;
    select_hotspots = select_hotspots t.r_side.select;
    select_coverage = select_coverage t.r_side.select;
    restructures = tel.Hotspot_core.Processor.restructures;
    groups_split = tel.Hotspot_core.Processor.groups_split;
    groups_merged = tel.Hotspot_core.Processor.groups_merged;
    max_group_size = tel.Hotspot_core.Processor.max_group_size;
  }

(* Cross-shard merge hooks: forward-side snapshots only, matching the
   hotspot/coverage fields of [stats] (the mirror side tracks the same
   query population). *)
let band_snapshot t =
  let (Bproc ((module P), p)) = t.r_side.band in
  P.snapshot p

let select_snapshot t =
  let (Sproc ((module P), p)) = t.r_side.select in
  P.snapshot p

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>|R| = %d, |S| = %d@,\
     events processed   %d@,\
     results delivered  %d@,\
     band hotspots      %d (coverage %.1f%%)@,\
     select hotspots    %d (coverage %.1f%%)@,\
     restructures       %d (%d splits, %d merges)@,\
     max group size     %d@]"
    s.r_size s.s_size s.events_processed s.results_delivered s.band_hotspots
    (100.0 *. s.band_coverage) s.select_hotspots (100.0 *. s.select_coverage)
    s.restructures s.groups_split s.groups_merged s.max_group_size
