(** A continuous-query engine over the two-relation schema R(A,B),
    S(B,C), tying the whole stack together: hotspot-tracked SSI
    processing for both band joins and equality joins with local
    selections, per-query result callbacks, and full symmetry — both
    R-side and S-side insertions generate results.

    S-side events are processed by the paper's "symmetric" argument
    through mirrored state: the engine keeps R encoded as a second
    S-shaped table (B as the join key, A in the C slot) together with
    mirrored queries (band windows negated, rangeA/rangeC swapped), so
    a new S-tuple is processed by the very same SSI machinery with the
    roles of the relations exchanged.  Internally both directions are
    one code path: a [side] value packages the processors that probe
    the other side's table, and the R and S sides drive it with the
    roles swapped.

    The processors themselves are chosen per engine through
    {!Config}: any {!Hotspot_core.Processor.strategy} (hotspot-tracked
    or plain SSI) over any {!Cq_index.Stab_backend.kind} (interval
    tree, interval skip list, or treap-based priority search tree).

    Cost model (Sections 3.1/3.2, Theorems 3 and 4): each insertion
    pays O(log m) to store the tuple in its home table plus the
    processors' identification cost — O(τ log m + k) per event, where
    τ bounds the stabbed groups, m the opposite table size and k the
    affected queries — plus output enumeration.  Query subscription
    and removal are O(log n) amortised in the number of live
    queries. *)

type t

module Config : sig
  (** What the engine does when ingest outruns processing capacity:
      [Block] (the default) applies backpressure and stays exact,
      [Reject] refuses whole batches with {!Cq_util.Error.Overload} so
      the producer can back off, [Shed] admits everything but samples
      (event, query) candidate pairs, degrading answers to
      Horvitz-Thompson estimates with claimed error bounds.  The
      policy forms a lattice of fidelity vs availability — see
      DESIGN.md §12. *)
  type overload = Block | Reject | Shed

  val overload_to_string : overload -> string
  (** ["block" | "reject" | "shed"] — the [cqctl] flag spellings. *)

  val overload_of_string : string -> (overload, string) result

  (** Adaptive shard-rebalancing knobs for {!Parallel}: at every
      [check_every]-th flush barrier the coordinator compares per-shard
      loads (windowed result deliveries plus a base cost per registered
      query) and, when [max_load * shards / total_load] exceeds
      [threshold], migrates whole stabbing-group strips from the
      hottest shard to the coolest — see DESIGN.md §15 for the
      quiesce/replay protocol and why determinism survives.  The
      sequential engine validates and ignores it. *)
  type rebalance = {
    threshold : float;
        (** Load-imbalance ratio (>= 1.0) that triggers migration;
            1.0 rebalances on any imbalance, large values never. *)
    check_every : int;
        (** Rebalance check cadence, in flush barriers (>= 1). *)
  }

  type t = {
    alpha : float;
        (** Hotspot threshold passed to the trackers; must lie in
            (0, 1].  Default 0.01. *)
    epsilon : float;
        (** Slack of the (1+ε)-approximate scattered partitions; must
            be positive.  Default 1.0 (the paper's band-join
            experiments use ε = 3). *)
    seed : int;
        (** Seeds the four processors' randomised partitions (each
            gets a distinct derived seed): two engines built with the
            same seed and fed the same event sequence evolve
            identically, bit for bit.  Default [0x40757]. *)
    backend : Cq_index.Stab_backend.kind;
        (** Stabbing index used for the scattered query sets.
            Default [Itree]. *)
    strategy : Hotspot_core.Processor.strategy;
        (** [Hotspot] (SSI on α-hotspots + per-query probing on the
            scattered remainder, the default) or [Ssi] (one static
            stabbing partition over all queries). *)
    shards : int;
        (** Worker shards for the {!Parallel} engine; must be >= 1.
            The sequential engine accepts and ignores it (so one
            [Config.t] describes both deployments); {!Parallel} spawns
            [shards] domains when it is > 1 and degrades to an inline
            sequential engine at 1.  Default 1. *)
    batch_size : int;
        (** Rows per work-queue command in {!Parallel.ingest_batch};
            must be >= 1.  Ignored by the sequential engine.
            Default 256. *)
    overload : overload;
        (** Overload policy applied by {!Parallel.try_ingest_batch}.
            The sequential engine ignores [Reject] (it has no queue to
            overflow) but honours [Shed] via [shed_rate].
            Default [Block]. *)
    shed_rate : float;
        (** Bernoulli keep-probability for shed mode; must lie in
            (0, 1].  At 1.0 (the default) no coin is ever flipped and
            processing is exact.  Below 1.0 it acts as a {e forced}
            rate — the deterministic-replay configuration; under
            [Shed] with rate 1.0 the parallel engine instead adapts
            the rate to queue depth. *)
    rebalance : rebalance option;
        (** Adaptive shard rebalancing for {!Parallel}; [None] (the
            default) keeps the configuration-time query partition
            static.  Ignored by the sequential engine and by
            [shards = 1]. *)
  }

  val default : t

  val validate : t -> (t, Cq_util.Error.t) result
  (** Check every knob against its documented domain.  All [try_create]
      paths — sequential and parallel, record- and per-knob-based —
      funnel through this one validator, so a bad knob always yields
      the same {!Cq_util.Error.Invalid_parameter} payload with [name]
      spelled exactly as the record field ([alpha], [epsilon],
      [shards], [batch_size]). *)
end

type subscription
(** Handle for cancelling a registered continuous query. *)

(** {2 Input validation}

    Every mutating entry point validates its inputs against the shared
    taxonomy in {!Cq_util.Error}: non-finite attribute values are
    rejected before they can break the B-trees' total order, empty
    query windows are rejected at subscription time, and configuration
    knobs are checked against their documented domains.  The
    [try_]-prefixed variants return [result]s; the plain variants raise
    {!Cq_util.Error.Cq_error} (never a bare [Invalid_argument]) on the
    same conditions. *)

val try_create_cfg : Config.t -> (t, Cq_util.Error.t) result
val create_cfg : Config.t -> t

val try_create :
  ?alpha:float ->
  ?epsilon:float ->
  ?seed:int ->
  ?backend:Cq_index.Stab_backend.kind ->
  ?strategy:Hotspot_core.Processor.strategy ->
  ?shards:int ->
  ?batch_size:int ->
  ?overload:Config.overload ->
  ?shed_rate:float ->
  ?rebalance:Config.rebalance option ->
  unit ->
  (t, Cq_util.Error.t) result
(** Per-knob convenience over {!try_create_cfg}; unspecified knobs
    take their {!Config.default} values.  [shards]/[batch_size]/
    [rebalance] are validated (via {!Config.validate}) and otherwise
    ignored by the sequential engine — pass the same knobs to
    {!Parallel.try_create} for the sharded deployment. *)

val create :
  ?alpha:float ->
  ?epsilon:float ->
  ?seed:int ->
  ?backend:Cq_index.Stab_backend.kind ->
  ?strategy:Hotspot_core.Processor.strategy ->
  ?shards:int ->
  ?batch_size:int ->
  ?overload:Config.overload ->
  ?shed_rate:float ->
  ?rebalance:Config.rebalance option ->
  unit ->
  t

(** {2 Continuous queries} *)

val try_subscribe_band :
  t ->
  ?qid:int ->
  ?on_retract:(Cq_relation.Tuple.r -> Cq_relation.Tuple.s -> unit) ->
  range:Cq_interval.Interval.t ->
  (Cq_relation.Tuple.r -> Cq_relation.Tuple.s -> unit) ->
  (subscription, Cq_util.Error.t) result
(** Register [R ⋈_{S.B−R.B ∈ range} S]; the callback fires once per
    new result pair, for events on either side.  [on_retract] fires
    once per result pair that {e disappears} when a tuple is deleted
    (the paper's "changes between Q(D_i) and Q(D_{i-1})" include
    removals).  An empty [range] is rejected.

    [qid] overrides the engine's sequential numbering — the hook
    {!Parallel} uses to impose one global numbering on every shard, so
    shed-coin outcomes are shard-invariant.  A [qid] already held by a
    live subscription is rejected with {!Cq_util.Error.Duplicate}. *)

val subscribe_band :
  t ->
  ?qid:int ->
  ?on_retract:(Cq_relation.Tuple.r -> Cq_relation.Tuple.s -> unit) ->
  range:Cq_interval.Interval.t ->
  (Cq_relation.Tuple.r -> Cq_relation.Tuple.s -> unit) ->
  subscription

val try_subscribe_select :
  t ->
  ?qid:int ->
  ?on_retract:(Cq_relation.Tuple.r -> Cq_relation.Tuple.s -> unit) ->
  range_a:Cq_interval.Interval.t ->
  range_c:Cq_interval.Interval.t ->
  (Cq_relation.Tuple.r -> Cq_relation.Tuple.s -> unit) ->
  (subscription, Cq_util.Error.t) result
(** Register [σ_{A∈range_a} R ⋈_{B} σ_{C∈range_c} S].  Empty selection
    ranges are rejected.  [qid] as in {!try_subscribe_band}. *)

val subscribe_select :
  t ->
  ?qid:int ->
  ?on_retract:(Cq_relation.Tuple.r -> Cq_relation.Tuple.s -> unit) ->
  range_a:Cq_interval.Interval.t ->
  range_c:Cq_interval.Interval.t ->
  (Cq_relation.Tuple.r -> Cq_relation.Tuple.s -> unit) ->
  subscription

(** Subscriber callbacks are isolated: an exception raised by one
    callback is logged (source ["cq.engine"]) and does not disturb
    event processing or other subscribers. *)

val unsubscribe : t -> subscription -> bool

val band_query_count : t -> int
val select_query_count : t -> int

(** {2 Data events} *)

val try_insert_r :
  t -> a:float -> b:float -> (Cq_relation.Tuple.r * int, Cq_util.Error.t) result
(** Append an R-tuple: runs all affected continuous queries, invokes
    their callbacks, stores the tuple for future S-side events.
    Returns the tuple and the number of results delivered.  NaN or
    infinite attribute values are rejected before any state changes. *)

val insert_r : t -> a:float -> b:float -> Cq_relation.Tuple.r * int

val try_insert_s :
  t -> b:float -> c:float -> (Cq_relation.Tuple.s * int, Cq_util.Error.t) result
(** Symmetric S-side insertion. *)

val insert_s : t -> b:float -> c:float -> Cq_relation.Tuple.s * int

(** {2 Flat-batch ingest}

    The zero-allocation hot path: a whole {!Cq_relation.Batch} of rows
    is validated up front, staged through the processors' batched
    scattered-index descent, and processed event by event through
    preallocated delivery closures — no per-event closures and no
    intermediate per-tuple lists.  Results, callback invocations,
    ordinals and shed coins are identical, event for event, to a loop
    of the corresponding [insert_*] calls.

    {b Non-reentrancy.}  Subscriber callbacks must not re-enter the
    engine (ingest, subscribe, unsubscribe, delete) while a batch is
    in flight: the staged candidates and reused scratch buffers assume
    the structures are quiescent until the call returns.  (Query
    churn {e between} batches is fine and invalidates staged state
    automatically.) *)

val try_ingest_batch_r :
  t -> ?on_event:(int -> unit) -> Cq_relation.Batch.t -> (int, Cq_util.Error.t) result
(** Ingest every row of the batch as an R-tuple ([x = a, y = b]).
    Returns the total number of results delivered.  All rows are
    validated before any is applied.  When the batch is a writable
    root, each row's assigned [rid] is written back into its id slot.
    [on_event i] (default none) fires after row [i] is fully
    processed — the per-event latency hook. *)

val try_ingest_batch_s :
  t -> ?on_event:(int -> unit) -> Cq_relation.Batch.t -> (int, Cq_util.Error.t) result
(** Symmetric S-side batch ingest ([x = b, y = c]). *)

val ingest_batch_r : t -> ?on_event:(int -> unit) -> Cq_relation.Batch.t -> int
val ingest_batch_s : t -> ?on_event:(int -> unit) -> Cq_relation.Batch.t -> int

val delete_r : t -> Cq_relation.Tuple.r -> int option
(** Delete a previously inserted R tuple: every result pair it
    contributed is retracted through the [on_retract] callbacks.
    Returns the number of retractions, or [None] if the tuple was not
    present.

    Shed mode is insert-only (matching the parallel API, which routes
    no deletions): on an engine in shed mode — [Shed] policy, a forced
    [shed_rate], or any past {!set_shed_rate} below 1.0 — deletion
    would retract pairs that were shed at insertion time and never
    delivered, and the degraded-answer accounting cannot soundly
    subtract them, so the call raises {!Cq_util.Error.Cq_error}
    ([Invalid_parameter]) before touching any state.  Use [Block] or
    [Reject] for workloads with deletions. *)

val delete_s : t -> Cq_relation.Tuple.s -> int option
(** Symmetric S-side deletion; same shed-mode restriction as
    {!delete_r}. *)

val try_load_s : t -> (float * float) array -> (unit, Cq_util.Error.t) result
(** Bulk-load initial S contents (no results are generated, matching
    the continuous-query semantics of registering against a database
    state).  All rows are validated before any is applied, so a
    rejected load leaves the engine untouched. *)

val load_s : t -> (float * float) array -> unit

val try_load_r : t -> (float * float) array -> (unit, Cq_util.Error.t) result
val load_r : t -> (float * float) array -> unit

(** {2 Load shedding (degraded answers)}

    Under [Shed] with an effective rate below 1.0, each (event, query)
    candidate pair is kept with probability [rate] by a coin that is a
    pure function of (shed seed, event ordinal, qid) — deterministic
    under replay and invariant across shard counts.  A dropped pair
    skips the query's probes for that event; kept pairs deliver their
    results normally.  Per query the engine maintains a
    Horvitz-Thompson cardinality estimate and a claimed absolute-error
    bound — the max of the exact kept-side error mass and a rigorous
    cap on the dropped mass (each dropped event's results can only
    pair it with the opposite table's current contents, so that table
    size bounds its contribution).

    The estimator runs whenever the engine is {e in shed mode} —
    created under the [Shed] policy or with a forced [shed_rate] —
    not merely while the instantaneous rate is below 1.0: results
    delivered during exact (rate-1.0) phases are candidates kept with
    p = 1, contributing their count to the estimate and zero to the
    error terms, so the claimed bound covers the {e entire} stream
    even when an adaptive controller alternates exact and shedding
    phases.  {!Cq_robust.Oracle.run_shed} fuzz-checks observed error
    <= claimed bound at constant forced rates and
    {!Cq_robust.Oracle.run_shed_adaptive} across mixed-rate
    schedules, both against an exact mirror.

    An engine first handed a sub-unit rate via {!set_shed_rate}
    mid-stream (rather than at creation) enters shed mode only at
    that point: its estimates and bounds cover the results delivered
    {e from engagement onward}, so create the engine in shed mode
    when whole-stream bounds are wanted.  {!check_invariants} is
    never shed; deletions are rejected in shed mode (see
    {!delete_r}). *)

(** One query's degraded-answer report. *)
type degraded = {
  deg_qid : int;
  deg_observed : int;  (** Results actually delivered. *)
  deg_estimate : float;  (** HT estimate of the exact result count. *)
  deg_claimed_error : float;
      (** Claimed bound on [|deg_estimate - exact count|]. *)
  deg_rate : float;  (** Lowest keep-rate this query experienced. *)
}

type shed_totals = { tot_kept : int; tot_dropped : int; tot_min_rate : float }

val shed_info : t -> degraded list
(** Degraded-answer reports for every query ever touched by a
    sub-unit coin (a candidate kept at rate < 1.0 or dropped), sorted
    by qid.  Empty when processing has been exact — in particular for
    a shed-mode engine whose rate never left 1.0.  Each report's
    estimate covers all of that query's results since the engine
    entered shed mode, exact phases included (at p = 1, with zero
    error mass). *)

val shed_totals : t -> shed_totals

val set_shed_rate : t -> float -> unit
(** Set the current keep-probability.  Not validated: callers
    ({!Parallel}'s admission control) pass values in (0, 1].  A value
    below 1.0 puts the engine in shed mode permanently (if it was not
    already); see the section comment above for what that means for
    bound coverage when it happens mid-stream. *)

val set_shed_seed : t -> int -> unit
(** Re-key the shed coin.  {!Parallel} aligns every shard to the
    coordinator's seed so coins agree across shards. *)

(** {2 Introspection} *)

type stats = {
  r_size : int;
  s_size : int;
  events_processed : int;
  results_delivered : int;
  band_hotspots : int;
  band_coverage : float;
  select_hotspots : int;
  select_coverage : float;
  restructures : int;
      (** Structural reorganisations across all four processors:
          hotspot promotions + demotions + scattered-partition
          reconstructions (SSI strategy: lazy index rebuilds). *)
  groups_split : int;  (** Hotspot promotions; 0 under the SSI strategy. *)
  groups_merged : int;  (** Hotspot demotions; 0 under the SSI strategy. *)
  max_group_size : int;
      (** High-water mark of hotspot-group cardinality across the four
          processors. *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

val band_snapshot : t -> Hotspot_core.Processor.snapshot
(** Forward-side band processor snapshot — the cross-shard merge hook:
    {!Parallel} captures one per shard (on the shard's own domain) and
    folds them with {!Hotspot_core.Processor.merge_snapshot} into the
    merged {!stats} block. *)

val select_snapshot : t -> Hotspot_core.Processor.snapshot
(** Forward-side select processor snapshot; same merge contract as
    {!band_snapshot}. *)

val check_invariants : t -> unit
(** Deep audit of the engine's internal consistency: the four hotspot
    trackers' invariants (I1)–(I3), their aux structures' sync with the
    tracker event streams, forward/mirror query-set lockstep, and
    callback-table consistency.  @raise Failure on violation. *)
