let weights ~n_groups ~beta = Cq_util.Dist.zipf_weights ~n:n_groups ~beta

let coverage ~n_groups ~beta ~top_k =
  if n_groups <= 0 then invalid_arg "Zipf_model.coverage: n_groups must be positive";
  if top_k < 0 then invalid_arg "Zipf_model.coverage: top_k must be non-negative";
  let w = weights ~n_groups ~beta in
  let k = min top_k n_groups in
  let acc = ref 0.0 in
  for i = 0 to k - 1 do
    acc := !acc +. w.(i)
  done;
  !acc

let series ~n_groups ~beta ~ks = List.map (fun k -> (k, coverage ~n_groups ~beta ~top_k:k)) ks

type drift = {
  dr_groups : int;
  dr_beta : float;
  dr_center0 : float;
  dr_spread : float;
  dr_velocity : float;
}

let validate_drift d =
  if d.dr_groups <= 0 then invalid_arg "Zipf_model.drift: dr_groups must be positive";
  if not (Float.is_finite d.dr_spread && d.dr_spread > 0.0) then
    invalid_arg "Zipf_model.drift: dr_spread must be positive and finite";
  if not (Float.is_finite d.dr_velocity) then
    invalid_arg "Zipf_model.drift: dr_velocity must be finite";
  if not (Float.is_finite d.dr_center0) then
    invalid_arg "Zipf_model.drift: dr_center0 must be finite"

let group_center d ~step ~rank =
  validate_drift d;
  if rank < 0 || rank >= d.dr_groups then
    invalid_arg "Zipf_model.group_center: rank out of range";
  if step < 0 then invalid_arg "Zipf_model.group_center: step must be non-negative";
  d.dr_center0
  +. (d.dr_velocity *. float_of_int step)
  +. (d.dr_spread *. float_of_int rank)

let sample_rank d ~u =
  validate_drift d;
  if not (Float.is_finite u) || u < 0.0 || u >= 1.0 then
    invalid_arg "Zipf_model.sample_rank: u must be in [0, 1)";
  let w = weights ~n_groups:d.dr_groups ~beta:d.dr_beta in
  let acc = ref 0.0 and r = ref 0 in
  while !r < d.dr_groups - 1 && !acc +. w.(!r) <= u do
    acc := !acc +. w.(!r);
    incr r
  done;
  !r

let groups_needed ~n_groups ~beta ~target =
  let w = weights ~n_groups ~beta in
  let acc = ref 0.0 and k = ref 0 in
  while !acc < target && !k < n_groups do
    acc := !acc +. w.(!k);
    incr k
  done;
  !k
