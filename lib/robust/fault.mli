(** Deterministic, seeded generation of adversarial operation
    sequences.

    The streams deliberately exercise the paths where the paper's
    structures are most fragile: interval endpoints colliding exactly
    on a grid, zero-width point intervals, spans engulfing everything,
    clusters around a few hub points so α-hotspots form, and phased
    add/remove oscillation so group populations repeatedly cross the
    αn hotness threshold in both directions (the promote/demote
    cascade).  Hostile operations — deleting ids that were never
    inserted, re-adding an exact live (id, interval) pair — are mixed
    in to verify the structures reject or tolerate them without
    corruption.

    Generation is pure function of [seed]: the same seed always yields
    the same array, so any failure found downstream replays exactly. *)

type op =
  | Add of { id : int; iv : Cq_interval.Interval.t }
  | Remove of { id : int; iv : Cq_interval.Interval.t }
      (** Remove a pair previously issued by [Add] and still live. *)
  | Remove_absent of { id : int; iv : Cq_interval.Interval.t }
      (** The id was never inserted; structures must report absence. *)
  | Re_add of { id : int; iv : Cq_interval.Interval.t }
      (** Exact duplicate of a live pair; structures must either raise
          a typed rejection or handle the duplicate coherently. *)
  | Probe of float  (** Compare stabbing answers against the oracle. *)

val pp_op : Format.formatter -> op -> unit

val gen : seed:int -> n:int -> op array
(** [gen ~seed ~n] returns [n] operations.  [Remove] ops always target
    a live pair and the live population is capped, so the stream is
    runnable against any of the indexed structures as-is. *)

(** {2 Engine-level streams} *)

type engine_op =
  | Sub_band of { range : Cq_interval.Interval.t }
  | Sub_select of { range_a : Cq_interval.Interval.t; range_c : Cq_interval.Interval.t }
  | Unsub_random  (** Driver unsubscribes one of its live handles. *)
  | Ins_r of { a : float; b : float }
  | Ins_s of { b : float; c : float }
  | Del_r_random  (** Driver deletes one of its live R tuples. *)
  | Del_s_random
  | Reject_ins_r of { a : float; b : float }
      (** Carries a NaN or infinite attribute: the engine must return
          [Error _] and leave its state untouched. *)
  | Reject_sub_band
      (** Subscribe with an empty window: must be rejected. *)

val pp_engine_op : Format.formatter -> engine_op -> unit

val gen_engine : seed:int -> n:int -> engine_op array
(** Engine op stream with bounded live tuple/query populations, mixing
    subscriptions, churn on both relations, and must-reject inputs. *)

(** {2 Overload burst streams} *)

type burst_op =
  | Burst_r of (float * float) array  (** A batch of R rows to ingest. *)
  | Burst_s of (float * float) array
  | Burst_flush  (** Drain: barrier + deliver buffered results. *)

val pp_burst_op : Format.formatter -> burst_op -> unit

val gen_burst : seed:int -> n:int -> burst_op array
(** Seeded overload workload alternating quiet phases (small batches,
    frequent flushes) with burst phases (large 64–256-row batches,
    no flush), so ingest repeatedly outruns drain and the configured
    overload policy must engage.  Pure function of [seed]. *)

(** {2 Hotspot-drift streams} *)

type drift_op =
  | Drift_register of { range : Cq_interval.Interval.t }
      (** Register a band query, live, mid-stream. *)
  | Drift_register_select of {
      range_a : Cq_interval.Interval.t;
      range_c : Cq_interval.Interval.t;
    }
  | Drift_deregister  (** Deregister the driver's oldest live query. *)
  | Drift_r of (float * float) array  (** A batch of R rows near the hotspot. *)
  | Drift_s of (float * float) array
  | Drift_flush  (** Barrier: deliver, and advance the hotspot walk. *)

val pp_drift_op : Format.formatter -> drift_op -> unit

val gen_drift : ?shards:int -> seed:int -> n:int -> unit -> drift_op array
(** A {!Cq_engine.Zipf_model.drift} hotspot that walks over the
    parallel engine's partition axis.  The Zipf sites are laid exactly
    [shards] (default 4) strips apart, so every rank shares a home
    shard: registrations pile onto one shard, the imbalance ratio hits
    [shards], and a configured rebalancer {e must} migrate — then the
    lattice walks (a seeded velocity per flush step) and drags the
    pile-up across strip boundaries, forcing repeat migrations.  The
    first three registrations take distinct ranks so at least two
    strips are populated (a precondition for a strictly-improving
    whole-strip move).  Pure function of [seed]; all intervals and rows
    are materialised in the array, so replays are exact. *)
