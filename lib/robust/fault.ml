module I = Cq_interval.Interval
module Rng = Cq_util.Rng

type op =
  | Add of { id : int; iv : I.t }
  | Remove of { id : int; iv : I.t }
  | Remove_absent of { id : int; iv : I.t }
  | Re_add of { id : int; iv : I.t }
  | Probe of float

let pp_op fmt = function
  | Add { id; iv } -> Format.fprintf fmt "add %d %s" id (I.to_string iv)
  | Remove { id; iv } -> Format.fprintf fmt "remove %d %s" id (I.to_string iv)
  | Remove_absent { id; iv } -> Format.fprintf fmt "remove-absent %d %s" id (I.to_string iv)
  | Re_add { id; iv } -> Format.fprintf fmt "re-add %d %s" id (I.to_string iv)
  | Probe x -> Format.fprintf fmt "probe %g" x

(* The generator is adversarial on purpose: intervals cluster around a
   handful of hub points (so hotspot groups form, then churn), land on
   an integer-ish grid (so endpoints collide exactly), include
   zero-width points and huge spans, and the add/remove mix oscillates
   in phases so group populations repeatedly cross the αn hotness
   threshold in both directions. *)

let hub_count = 5
let live_cap = 3000
let phase_len = 300

let gen_interval rng hubs =
  let hub = hubs.(Rng.int rng hub_count) in
  match Rng.int rng 10 with
  | 0 ->
      (* zero-width point interval, exactly on the hub *)
      I.make hub hub
  | 1 ->
      (* huge span engulfing everything *)
      I.make (hub -. 1000.) (hub +. 1000.)
  | 2 | 3 ->
      (* tiny cluster: endpoints on a 0.25 grid just around the hub *)
      let lo = hub +. (0.25 *. float_of_int (Rng.int rng 5 - 2)) in
      I.make lo (lo +. (0.25 *. float_of_int (Rng.int rng 3)))
  | 4 | 5 ->
      (* touching endpoints: [hub-k, hub] or [hub, hub+k] *)
      let k = 1. +. float_of_int (Rng.int rng 4) in
      if Rng.bool rng then I.make (hub -. k) hub else I.make hub (hub +. k)
  | _ ->
      (* generic grid interval near the hub *)
      let lo = hub +. float_of_int (Rng.int rng 9 - 4) in
      I.make lo (lo +. float_of_int (1 + Rng.int rng 6))

let gen ~seed ~n =
  let rng = Rng.create seed in
  let hubs = Array.init hub_count (fun i -> float_of_int (i * 20)) in
  let live = ref [] (* (id, iv), most recent first *)
  and live_n = ref 0
  and next_id = ref 0 in
  let pick_live () =
    match !live with
    | [] -> None
    | l ->
        let i = Rng.int rng !live_n in
        Some (List.nth l i)
  in
  let fresh_add () =
    let id = !next_id in
    incr next_id;
    let iv = gen_interval rng hubs in
    live := (id, iv) :: !live;
    incr live_n;
    Add { id; iv }
  in
  let remove_some () =
    match pick_live () with
    | None -> fresh_add ()
    | Some (id, iv) ->
        live := List.filter (fun (id', _) -> id' <> id) !live;
        decr live_n;
        Remove { id; iv }
  in
  Array.init n (fun i ->
      let adding_phase = i / phase_len mod 2 = 0 in
      if !live_n >= live_cap then remove_some ()
      else
        match Rng.int rng 20 with
        | 0 -> Probe (hubs.(Rng.int rng hub_count) +. Rng.float rng -. 0.5)
        | 1 -> (
            (* duplicate of an exact live (id, iv) pair *)
            match pick_live () with
            | Some (id, iv) -> Re_add { id; iv }
            | None -> fresh_add ())
        | 2 -> (
            (* remove something that was never inserted *)
            let id = !next_id + 1_000_000 + Rng.int rng 1000 in
            Remove_absent { id; iv = gen_interval rng hubs })
        | 3 | 4 | 5 | 6 | 7 | 8 -> if adding_phase then fresh_add () else remove_some ()
        | _ -> if adding_phase || !live_n = 0 then fresh_add () else remove_some ())

(* ------------------------------------------------------------------ *)
(* Engine-level operations                                              *)
(* ------------------------------------------------------------------ *)

type engine_op =
  | Sub_band of { range : I.t }
  | Sub_select of { range_a : I.t; range_c : I.t }
  | Unsub_random
  | Ins_r of { a : float; b : float }
  | Ins_s of { b : float; c : float }
  | Del_r_random
  | Del_s_random
  | Reject_ins_r of { a : float; b : float }
  | Reject_sub_band

let pp_engine_op fmt = function
  | Sub_band { range } -> Format.fprintf fmt "sub-band %s" (I.to_string range)
  | Sub_select { range_a; range_c } ->
      Format.fprintf fmt "sub-select %s %s" (I.to_string range_a) (I.to_string range_c)
  | Unsub_random -> Format.fprintf fmt "unsub"
  | Ins_r { a; b } -> Format.fprintf fmt "ins-r %g %g" a b
  | Ins_s { b; c } -> Format.fprintf fmt "ins-s %g %g" b c
  | Del_r_random -> Format.fprintf fmt "del-r"
  | Del_s_random -> Format.fprintf fmt "del-s"
  | Reject_ins_r { a; b } -> Format.fprintf fmt "reject-ins-r %g %g" a b
  | Reject_sub_band -> Format.fprintf fmt "reject-sub-band"

(* ------------------------------------------------------------------ *)
(* Overload burst streams                                               *)
(* ------------------------------------------------------------------ *)

type burst_op =
  | Burst_r of (float * float) array
  | Burst_s of (float * float) array
  | Burst_flush

let pp_burst_op fmt = function
  | Burst_r rows -> Format.fprintf fmt "burst-r[%d]" (Array.length rows)
  | Burst_s rows -> Format.fprintf fmt "burst-s[%d]" (Array.length rows)
  | Burst_flush -> Format.fprintf fmt "burst-flush"

(* Alternating quiet/burst phases.  Quiet phases trickle small batches
   and flush often (the drain keeps up); burst phases fire large
   batches back-to-back with no flush, so the per-shard queues fill and
   the overload machinery — backpressure, rejection, or shedding,
   depending on policy — must engage. *)

let burst_phase_len = 12

let gen_burst ~seed ~n =
  let rng = Rng.create seed in
  let grid () = float_of_int (Rng.int rng 41 - 20) /. 2.0 in
  let rows count = Array.init count (fun _ -> (grid (), grid ())) in
  Array.init n (fun i ->
      let bursting = i / burst_phase_len mod 2 = 1 in
      if bursting then
        let count = 64 + Rng.int rng 193 in
        if Rng.bool rng then Burst_r (rows count) else Burst_s (rows count)
      else
        match Rng.int rng 4 with
        | 0 -> Burst_flush
        | 1 -> Burst_s (rows (1 + Rng.int rng 8))
        | _ -> Burst_r (rows (1 + Rng.int rng 8)))

let tuple_cap = 400
let query_cap = 60

let gen_engine ~seed ~n =
  let rng = Rng.create seed in
  let grid () = float_of_int (Rng.int rng 21 - 10) in
  let window () =
    let lo = grid () in
    I.make lo (lo +. float_of_int (Rng.int rng 5))
  in
  (* Track approximate live counts so the stream stays bounded; exact
     liveness is the driver's business. *)
  let r = ref 0 and s = ref 0 and q = ref 0 in
  Array.init n (fun _ ->
      match Rng.int rng 24 with
      | 0 when !q < query_cap ->
          incr q;
          Sub_band { range = window () }
      | 1 when !q < query_cap ->
          incr q;
          Sub_select { range_a = window (); range_c = window () }
      | 2 when !q > 0 ->
          decr q;
          Unsub_random
      | 3 ->
          let bad = if Rng.bool rng then Float.nan else Float.infinity in
          if Rng.bool rng then Reject_ins_r { a = bad; b = grid () }
          else Reject_ins_r { a = grid (); b = bad }
      | 4 -> Reject_sub_band
      | 5 | 6 | 7 when !r > 0 && !r + !s >= tuple_cap ->
          decr r;
          Del_r_random
      | 8 | 9 | 10 when !s > 0 && !r + !s >= tuple_cap ->
          decr s;
          Del_s_random
      | n when n mod 2 = 0 && !r + !s < tuple_cap ->
          incr r;
          Ins_r { a = grid (); b = grid () }
      | _ when !r + !s < tuple_cap ->
          incr s;
          Ins_s { b = grid (); c = grid () }
      | _ ->
          if !r > 0 then (
            decr r;
            Del_r_random)
          else (
            decr s;
            Del_s_random))
