module I = Cq_interval.Interval
module Rng = Cq_util.Rng

type op =
  | Add of { id : int; iv : I.t }
  | Remove of { id : int; iv : I.t }
  | Remove_absent of { id : int; iv : I.t }
  | Re_add of { id : int; iv : I.t }
  | Probe of float

let pp_op fmt = function
  | Add { id; iv } -> Format.fprintf fmt "add %d %s" id (I.to_string iv)
  | Remove { id; iv } -> Format.fprintf fmt "remove %d %s" id (I.to_string iv)
  | Remove_absent { id; iv } -> Format.fprintf fmt "remove-absent %d %s" id (I.to_string iv)
  | Re_add { id; iv } -> Format.fprintf fmt "re-add %d %s" id (I.to_string iv)
  | Probe x -> Format.fprintf fmt "probe %g" x

(* The generator is adversarial on purpose: intervals cluster around a
   handful of hub points (so hotspot groups form, then churn), land on
   an integer-ish grid (so endpoints collide exactly), include
   zero-width points and huge spans, and the add/remove mix oscillates
   in phases so group populations repeatedly cross the αn hotness
   threshold in both directions. *)

let hub_count = 5
let live_cap = 3000
let phase_len = 300

let gen_interval rng hubs =
  let hub = hubs.(Rng.int rng hub_count) in
  match Rng.int rng 10 with
  | 0 ->
      (* zero-width point interval, exactly on the hub *)
      I.make hub hub
  | 1 ->
      (* huge span engulfing everything *)
      I.make (hub -. 1000.) (hub +. 1000.)
  | 2 | 3 ->
      (* tiny cluster: endpoints on a 0.25 grid just around the hub *)
      let lo = hub +. (0.25 *. float_of_int (Rng.int rng 5 - 2)) in
      I.make lo (lo +. (0.25 *. float_of_int (Rng.int rng 3)))
  | 4 | 5 ->
      (* touching endpoints: [hub-k, hub] or [hub, hub+k] *)
      let k = 1. +. float_of_int (Rng.int rng 4) in
      if Rng.bool rng then I.make (hub -. k) hub else I.make hub (hub +. k)
  | _ ->
      (* generic grid interval near the hub *)
      let lo = hub +. float_of_int (Rng.int rng 9 - 4) in
      I.make lo (lo +. float_of_int (1 + Rng.int rng 6))

let gen ~seed ~n =
  let rng = Rng.create seed in
  let hubs = Array.init hub_count (fun i -> float_of_int (i * 20)) in
  let live = ref [] (* (id, iv), most recent first *)
  and live_n = ref 0
  and next_id = ref 0 in
  let pick_live () =
    match !live with
    | [] -> None
    | l ->
        let i = Rng.int rng !live_n in
        Some (List.nth l i)
  in
  let fresh_add () =
    let id = !next_id in
    incr next_id;
    let iv = gen_interval rng hubs in
    live := (id, iv) :: !live;
    incr live_n;
    Add { id; iv }
  in
  let remove_some () =
    match pick_live () with
    | None -> fresh_add ()
    | Some (id, iv) ->
        live := List.filter (fun (id', _) -> id' <> id) !live;
        decr live_n;
        Remove { id; iv }
  in
  Array.init n (fun i ->
      let adding_phase = i / phase_len mod 2 = 0 in
      if !live_n >= live_cap then remove_some ()
      else
        match Rng.int rng 20 with
        | 0 -> Probe (hubs.(Rng.int rng hub_count) +. Rng.float rng -. 0.5)
        | 1 -> (
            (* duplicate of an exact live (id, iv) pair *)
            match pick_live () with
            | Some (id, iv) -> Re_add { id; iv }
            | None -> fresh_add ())
        | 2 -> (
            (* remove something that was never inserted *)
            let id = !next_id + 1_000_000 + Rng.int rng 1000 in
            Remove_absent { id; iv = gen_interval rng hubs })
        | 3 | 4 | 5 | 6 | 7 | 8 -> if adding_phase then fresh_add () else remove_some ()
        | _ -> if adding_phase || !live_n = 0 then fresh_add () else remove_some ())

(* ------------------------------------------------------------------ *)
(* Engine-level operations                                              *)
(* ------------------------------------------------------------------ *)

type engine_op =
  | Sub_band of { range : I.t }
  | Sub_select of { range_a : I.t; range_c : I.t }
  | Unsub_random
  | Ins_r of { a : float; b : float }
  | Ins_s of { b : float; c : float }
  | Del_r_random
  | Del_s_random
  | Reject_ins_r of { a : float; b : float }
  | Reject_sub_band

let pp_engine_op fmt = function
  | Sub_band { range } -> Format.fprintf fmt "sub-band %s" (I.to_string range)
  | Sub_select { range_a; range_c } ->
      Format.fprintf fmt "sub-select %s %s" (I.to_string range_a) (I.to_string range_c)
  | Unsub_random -> Format.fprintf fmt "unsub"
  | Ins_r { a; b } -> Format.fprintf fmt "ins-r %g %g" a b
  | Ins_s { b; c } -> Format.fprintf fmt "ins-s %g %g" b c
  | Del_r_random -> Format.fprintf fmt "del-r"
  | Del_s_random -> Format.fprintf fmt "del-s"
  | Reject_ins_r { a; b } -> Format.fprintf fmt "reject-ins-r %g %g" a b
  | Reject_sub_band -> Format.fprintf fmt "reject-sub-band"

(* ------------------------------------------------------------------ *)
(* Overload burst streams                                               *)
(* ------------------------------------------------------------------ *)

type burst_op =
  | Burst_r of (float * float) array
  | Burst_s of (float * float) array
  | Burst_flush

let pp_burst_op fmt = function
  | Burst_r rows -> Format.fprintf fmt "burst-r[%d]" (Array.length rows)
  | Burst_s rows -> Format.fprintf fmt "burst-s[%d]" (Array.length rows)
  | Burst_flush -> Format.fprintf fmt "burst-flush"

(* Alternating quiet/burst phases.  Quiet phases trickle small batches
   and flush often (the drain keeps up); burst phases fire large
   batches back-to-back with no flush, so the per-shard queues fill and
   the overload machinery — backpressure, rejection, or shedding,
   depending on policy — must engage. *)

let burst_phase_len = 12

let gen_burst ~seed ~n =
  let rng = Rng.create seed in
  let grid () = float_of_int (Rng.int rng 41 - 20) /. 2.0 in
  let rows count = Array.init count (fun _ -> (grid (), grid ())) in
  Array.init n (fun i ->
      let bursting = i / burst_phase_len mod 2 = 1 in
      if bursting then
        let count = 64 + Rng.int rng 193 in
        if Rng.bool rng then Burst_r (rows count) else Burst_s (rows count)
      else
        match Rng.int rng 4 with
        | 0 -> Burst_flush
        | 1 -> Burst_s (rows (1 + Rng.int rng 8))
        | _ -> Burst_r (rows (1 + Rng.int rng 8)))

(* ------------------------------------------------------------------ *)
(* Hotspot-drift streams                                                *)
(* ------------------------------------------------------------------ *)

module Z = Cq_engine.Zipf_model

type drift_op =
  | Drift_register of { range : I.t }
  | Drift_register_select of { range_a : I.t; range_c : I.t }
  | Drift_deregister
  | Drift_r of (float * float) array
  | Drift_s of (float * float) array
  | Drift_flush

let pp_drift_op fmt = function
  | Drift_register { range } -> Format.fprintf fmt "drift-register %s" (I.to_string range)
  | Drift_register_select { range_a; range_c } ->
      Format.fprintf fmt "drift-register-select %s %s" (I.to_string range_a)
        (I.to_string range_c)
  | Drift_deregister -> Format.fprintf fmt "drift-deregister"
  | Drift_r rows -> Format.fprintf fmt "drift-r[%d]" (Array.length rows)
  | Drift_s rows -> Format.fprintf fmt "drift-s[%d]" (Array.length rows)
  | Drift_flush -> Format.fprintf fmt "drift-flush"

(* One strip of Parallel's partition axis is 128 wide; placing the
   drift sites exactly [shards] strips apart parks every Zipf rank on
   the same home shard, so registration mass concentrates there and
   the rebalancer must fire.  The lattice then walks by a seeded
   velocity, carrying the pile-up across strip boundaries. *)
let drift_strip_width = 128.0
let drift_flush_every = 6

let gen_drift ?(shards = 4) ~seed ~n () =
  let rng = Rng.create seed in
  let d =
    {
      Z.dr_groups = 3;
      dr_beta = 1.1 +. (Rng.float rng *. 0.6);
      dr_center0 = (drift_strip_width /. 2.0) +. (Rng.float rng *. 20.0) -. 10.0;
      dr_spread = float_of_int shards *. drift_strip_width;
      dr_velocity = 8.0 +. (Rng.float rng *. 32.0);
    }
  in
  let step = ref 0 in
  let site rank = Z.group_center d ~step:!step ~rank in
  let register i =
    (* The first [dr_groups] registrations take one rank each, so at
       least two distinct strips are always populated and a whole-strip
       move can strictly improve the imbalance. *)
    let rank = if i < d.Z.dr_groups then i else Z.sample_rank d ~u:(Rng.float rng) in
    let c = site rank in
    let w = 4.0 +. (Rng.float rng *. 40.0) in
    if Rng.int rng 4 = 0 then
      let a_lo = c -. 500.0 in
      Drift_register_select
        { range_a = I.make a_lo (a_lo +. 1000.0); range_c = I.make (c -. (w /. 2.0)) (c +. (w /. 2.0)) }
    else Drift_register { range = I.make (c -. (w /. 2.0)) (c +. (w /. 2.0)) }
  in
  (* Rows aimed at the hot sites: an R row [(u, u + c)] has band value
     [b - a = c], an S row [(u + c, c)] has select attribute [c], so
     both query kinds at site [c] actually deliver and the windowed
     load signal tracks the walk. *)
  let rows len =
    Array.init len (fun _ ->
        let c = site (Z.sample_rank d ~u:(Rng.float rng)) in
        let u = (Rng.float rng *. 40.0) -. 20.0 in
        if Rng.bool rng then (u, u +. c) else (u +. c, c))
  in
  let n_reg = ref 0 and live = ref 0 in
  Array.init n (fun i ->
      if i mod drift_flush_every = drift_flush_every - 1 then begin
        incr step;
        Drift_flush
      end
      else if !live < d.Z.dr_groups then begin
        let op = register !n_reg in
        incr n_reg;
        incr live;
        op
      end
      else
        match Rng.int rng 10 with
        | 0 | 1 | 2 ->
            let op = register !n_reg in
            incr n_reg;
            incr live;
            op
        | 3 when !live > d.Z.dr_groups + 2 ->
            decr live;
            Drift_deregister
        | _ ->
            let len = 2 + Rng.int rng 14 in
            if Rng.bool rng then Drift_r (rows len) else Drift_s (rows len))

let tuple_cap = 400
let query_cap = 60

let gen_engine ~seed ~n =
  let rng = Rng.create seed in
  let grid () = float_of_int (Rng.int rng 21 - 10) in
  let window () =
    let lo = grid () in
    I.make lo (lo +. float_of_int (Rng.int rng 5))
  in
  (* Track approximate live counts so the stream stays bounded; exact
     liveness is the driver's business. *)
  let r = ref 0 and s = ref 0 and q = ref 0 in
  Array.init n (fun _ ->
      match Rng.int rng 24 with
      | 0 when !q < query_cap ->
          incr q;
          Sub_band { range = window () }
      | 1 when !q < query_cap ->
          incr q;
          Sub_select { range_a = window (); range_c = window () }
      | 2 when !q > 0 ->
          decr q;
          Unsub_random
      | 3 ->
          let bad = if Rng.bool rng then Float.nan else Float.infinity in
          if Rng.bool rng then Reject_ins_r { a = bad; b = grid () }
          else Reject_ins_r { a = grid (); b = bad }
      | 4 -> Reject_sub_band
      | 5 | 6 | 7 when !r > 0 && !r + !s >= tuple_cap ->
          decr r;
          Del_r_random
      | 8 | 9 | 10 when !s > 0 && !r + !s >= tuple_cap ->
          decr s;
          Del_s_random
      | n when n mod 2 = 0 && !r + !s < tuple_cap ->
          incr r;
          Ins_r { a = grid (); b = grid () }
      | _ when !r + !s < tuple_cap ->
          incr s;
          Ins_s { b = grid (); c = grid () }
      | _ ->
          if !r > 0 then (
            decr r;
            Del_r_random)
          else (
            decr s;
            Del_s_random))
