(** Differential testing: every structure in the stack runs an
    adversarial {!Fault} stream next to a naive mirror (an O(n) scan
    over a hashtable multiset — too slow to ship, too simple to be
    wrong) and must agree with it on every answer.

    A run stops at the {e first} divergence and reports the seed and
    operation index, so any failure replays exactly:
    [run_index d ~seed ~ops] with the printed seed reproduces it
    bit-for-bit (the op stream, the treap priorities and the driver's
    own choices are all derived from [seed]).  Invariant audits from
    {!Invariant} run at checkpoints throughout and their violations are
    collected alongside. *)

type divergence = { structure : string; seed : int; op_index : int; detail : string }

type outcome = {
  structure : string;
  seed : int;
  ops : int;
  final_size : int;
  violations : Invariant.violation list;
  divergence : divergence option;
}

val passed : outcome -> bool
val pp_outcome : Format.formatter -> outcome -> unit

(** {2 Stabbing-index drivers}

    The five 1-D-stabbing-capable indexes behind one interface; the
    treap driver additionally split/joins at every probe, and the
    R-tree driver embeds intervals as [iv × \[0,1\]] rectangles. *)

module type STAB_INDEX = sig
  type t

  val name : string
  val create : seed:int -> t
  val add : t -> int -> Cq_interval.Interval.t -> unit
  val remove : t -> int -> Cq_interval.Interval.t -> bool
  val stab_ids : t -> float -> int list
  val size : t -> int
  val audit : t -> entries:(int * Cq_interval.Interval.t) list -> Invariant.report
end

module Stab_driver (B : Cq_index.Stab_backend.S) : STAB_INDEX
(** A driver for any backend behind the common
    {!Cq_index.Stab_backend.S} signature — the three backend drivers
    below are its instances. *)

module Itree_driver : STAB_INDEX
module Skiplist_driver : STAB_INDEX
module Pst_driver : STAB_INDEX
module Rtree_driver : STAB_INDEX
module Treap_driver : STAB_INDEX

val index_drivers : (module STAB_INDEX) list

val run_index : (module STAB_INDEX) -> seed:int -> ops:int -> outcome

(** {2 Other structures} *)

val run_btree : seed:int -> ops:int -> outcome
(** B+-tree keyed on interval left endpoints: [count_range] and
    [neighbours] checked against linear scans of the mirror. *)

val run_tracker : ?alpha:float -> seed:int -> ops:int -> unit -> outcome
(** Hotspot tracker (default [alpha] 0.05 so the hub clusters actually
    promote): membership against the mirror, duplicate inserts must
    raise, (I1)–(I3) audited at checkpoints. *)

val run_lazy_partition : seed:int -> ops:int -> outcome
val run_refined_partition : seed:int -> ops:int -> outcome

val run_engine :
  ?backend:Cq_index.Stab_backend.kind -> seed:int -> ops:int -> unit -> outcome
(** Whole-engine differential run: per-query delivery/retraction
    balances against a brute-force join mirror, must-reject inputs
    (NaN attributes, empty windows) asserted to return [Error],
    callbacks after unsubscribe flagged, engine invariants audited at
    checkpoints.  [backend] selects the engine's stabbing backend
    (default the interval tree) — the mirror is backend-oblivious, so
    the same run exercises every candidate. *)

val run_batch :
  ?backend:Cq_index.Stab_backend.kind -> seed:int -> ops:int -> unit -> outcome
(** Flat-batch-vs-per-tuple differential run: one seeded insert-only
    workload (band/select subscriptions plus batched rows) is replayed
    into two identically configured sequential engines — once through
    {!Cq_engine.Engine.insert_r}/[insert_s] a row at a time, once
    through {!Cq_engine.Engine.ingest_batch_r}/[_s] — and the
    delivered result multisets, keyed by [(query, rid, sid)], must be
    identical (tuple-id assignment included).  A third of the batches
    are followed by a mid-stream subscription, exercising the
    staging-invalidation fallback.  [backend] selects the stabbing
    backend whose [stab_batch] the batch path descends (default the
    interval tree). *)

val run_parallel : ?shards:int -> seed:int -> ops:int -> unit -> outcome
(** Parallel-vs-sequential differential run: one seeded workload
    (band/select subscriptions plus [~ops] rows of batched ingest) is
    replayed verbatim into {!Cq_engine.Parallel} at [shards = 1] and at
    [shards] (default 2), and the delivered result multisets — keyed by
    [(query, rid, sid)] — must be identical, as must the delivery
    counts.  [Parallel.check_invariants] runs on both engines before
    comparison.  Exercises the determinism argument in
    [Parallel]'s docs; deletions are out of scope (the parallel API is
    insert-only for now). *)

val run_drift : ?shards:int -> seed:int -> ops:int -> unit -> outcome
(** Hotspot-drift differential run: replays a {!Fault.gen_drift}
    walking-hotspot stream — online {!Cq_engine.Parallel.register} /
    [deregister] mid-ingest, registration mass Zipf-piled on one home
    shard, the pile walking across strips — into a 1-shard engine and
    an N-shard engine (default 4) with the rebalancer armed
    ([threshold = 1.5], [check_every = 2]).  Asserts (a) at least one
    strip migration was actually forced (a drift run that never
    migrates is reported as a divergence, not silently vacuous), and
    (b) the delivered [(query, rid, sid)] multiset and delivery counts
    are bit-for-bit independent of the shard count {e across} those
    migrations.  Invariants are checked on both engines. *)

val run_shed : ?shards:int -> ?rate:float -> seed:int -> ops:int -> unit -> outcome
(** Shed-mode differential check.  A seeded insert-only workload runs
    through a [Shed]-policy parallel engine at the forced keep-rate
    [rate] (default 0.5, [shards] default 1); the exact answer for each
    query is then computed by brute force over the full workload.
    Divergences: a query delivering more results than exist (the
    delivered set must be a subsample), the engine's per-query observed
    counter disagreeing with what the callbacks saw, or a
    Horvitz-Thompson estimate falling outside its own claimed error
    bound.  Queries never touched by a shed coin must be exact.  Both
    the shed decisions and the claimed bounds are pure functions of the
    seed, so the outcome is identical across shard counts. *)

val run_shed_adaptive : seed:int -> ops:int -> unit -> outcome
(** Mixed-rate-schedule differential check through the {e sequential}
    engine in [Shed] mode: the keep-rate moves between 1.0 and forced
    sub-unit values per batch — the shape the parallel adaptive
    controller produces, made deterministic by pinning the schedule to
    the seed.  Asserts the same contract as {!run_shed} (subsample,
    observed-counter agreement, every estimate within its claimed
    bound, untouched queries exact); in particular, results delivered
    during exact phases must fold into the estimates at p = 1, so a
    rate-1.0 phase followed by a shedding one cannot push the exact
    count outside the claimed bound. *)

val run_burst : ?shards:int -> seed:int -> ops:int -> unit -> outcome
(** Replays {!Fault.gen_burst} (quiet trickle alternating with
    64–256-row volleys) through an adaptive [Shed] engine ([shards]
    default 2).  Asserts the liveness contract — every
    [try_ingest_batch] returns [Ok], never blocking, never [Overload] —
    plus the subsample property per query, engine invariants, and that
    the minimum applied keep-rate stays in (0, 1].  The adaptive rates
    themselves are timing-dependent, but on runs where no whole chunk
    was dropped past the grace window
    ({!Cq_engine.Parallel.shed_totals}[.par_dropped_rows] = 0) the
    degraded-answer contract is asserted too: every estimate within
    its claimed bound, every unreported query exact. *)

val run_serve : ?sessions:int -> ?shards:int -> seed:int -> ops:int -> unit -> outcome
(** Served-vs-direct differential check.  One seeded workload
    ({!Cq_net.Driver.gen_workload}) is run through the network
    front-end — a real {!Cq_net.Server} on a loopback socket, one
    client per session, lockstep batch streaming — and replayed
    directly into an identically configured {!Cq_engine.Parallel} with
    session-major registration and one flush per batch.  Every
    session's result stream must match {e bit-for-bit}: same qid
    assignment, same [(r.a, r.b, s.b, s.c)] rows, same order.  The
    lockstep discipline plus the server's read/flush/write tick order
    make the served side deterministic, so equality (not multiset
    equality) is the contract.  [sessions] defaults to 4, [shards] to
    2. *)

val fuzz_all :
  ?backend:Cq_index.Stab_backend.kind ->
  ?shards:int ->
  seed:int ->
  ops:int ->
  unit ->
  outcome list
(** The full battery (the engine and parallel runs use [ops/10]
    operations, each one being a full event cascade; [shards] — default
    2 — feeds {!run_parallel}). *)

val audit_workload :
  ?backend:Cq_index.Stab_backend.kind ->
  seed:int ->
  n:int ->
  unit ->
  (string * Invariant.report) list
(** Build every structure from the same seeded adversarial stream and
    run each deep audit once — no differential mirror, just the
    invariant reports.  Powers [cqctl audit]. *)
