(** Deep structural audits for every indexed structure in the stack.

    Each auditor re-derives the structure's advertised invariants from
    first principles — independently of the structure's own
    [check_invariants], which is also run and demoted from an exception
    to a recorded violation — and returns a typed report instead of
    raising.  Audits accumulate {e all} violations they can find, so a
    single corrupted structure produces a complete damage report rather
    than dying on the first inconsistency.

    Cross-checks that would be quadratic (stab counts versus a linear
    scan of every entry) are sampled at a bounded number of probe
    positions, keeping every audit near-linear in the structure size. *)

type violation = { structure : string; check : string; detail : string }
type report = (unit, violation list) result

val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit

val merge : report list -> report
(** Concatenate the violations of many reports; [Ok ()] iff all were. *)

(** {2 Per-structure auditors} *)

val interval_tree : 'a Cq_index.Interval_tree.t -> report
(** AVL shape, max-hi augmentation, size/to_list agreement, and sampled
    stab queries versus a naive filter over the listed entries. *)

val interval_skiplist :
  ?probes:float list -> expected:(float -> int) -> 'a Cq_index.Interval_skiplist.t -> report
(** The skip list exposes no iteration, so the caller supplies the probe
    positions and the expected stab count at each ([expected] is
    typically a closure over a mirror of the inserted intervals). *)

val priority_search_tree : 'a Cq_index.Priority_search_tree.t -> report

val rtree : 'a Cq_index.Rtree.t -> report
(** MBR containment down every path plus sampled center-point stabs. *)

val engine : Cq_engine.Engine.t -> report
(** Wraps {!Cq_engine.Engine.check_invariants}: the four trackers'
    (I1)–(I3), aux-structure sync, and forward/mirror lockstep. *)

module Stab (B : Cq_index.Stab_backend.S) : sig
  val audit : interval:('a -> Cq_interval.Interval.t) -> 'a B.t -> report
  (** Backend-generic audit through the common {!Cq_index.Stab_backend.S}
      signature: the backend's own structural check, size/iteration
      agreement, and sampled stab queries versus a naive filter.
      [interval] recovers each payload's stored interval (the backends
      iterate payloads only). *)
end

module Btree (K : Cq_index.Btree.ORDERED) (B : module type of Cq_index.Btree.Make (K)) : sig
  val audit : 'a B.t -> report
  (** Key order, leaf occupancy, min/max entries, and sampled
      [find_all] / [count_range] / [neighbours] consistency. *)
end

module Treap (E : Cq_index.Treap.ELEMENT) (T : module type of Cq_index.Treap.Make (E)) : sig
  val audit : T.t -> report
  (** Heap order on priorities, BST order on elements, and the root
      intersection augmentation recomputed from the member list. *)
end

module Partition
    (E : Hotspot_core.Partition_intf.ELEMENT)
    (P : Hotspot_core.Partition_intf.S with type elt = E.t) : sig
  val audit : ?name:string -> P.t -> report
  (** Every group's members stabbed by its point, group/size accounting,
      and sampled [group_of]/[group_members] round-trips. *)
end

module Tracker
    (E : Hotspot_core.Partition_intf.ELEMENT)
    (T : module type of Hotspot_core.Hotspot_tracker.Make (E)) : sig
  val audit : T.t -> report
  (** Hotspot membership maps, hot/scattered accounting, stabbing of
      every hot member, and the coverage fraction's domain — on top of
      the tracker's own (I1)–(I3) check. *)
end
