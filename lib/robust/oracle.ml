module I = Cq_interval.Interval
module Rng = Cq_util.Rng
module Metrics = Cq_obs.Metrics
module Trace = Cq_obs.Trace

type divergence = { structure : string; seed : int; op_index : int; detail : string }

type outcome = {
  structure : string;
  seed : int;
  ops : int;
  final_size : int;
  violations : Invariant.violation list;
  divergence : divergence option;
}

let passed o = Option.is_none o.divergence && List.is_empty o.violations

let pp_outcome fmt o =
  Format.fprintf fmt "%-22s seed=%d ops=%d size=%d: " o.structure o.seed o.ops o.final_size;
  match (o.divergence, o.violations) with
  | None, [] -> Format.fprintf fmt "ok"
  | d, vs ->
      (match d with
      | Some d ->
          Format.fprintf fmt "@,  DIVERGENCE at op %d (replay with seed=%d): %s" d.op_index
            d.seed d.detail
      | None -> ());
      List.iter (fun v -> Format.fprintf fmt "@,  VIOLATION %a" Invariant.pp_violation v) vs

(* How often the (expensive, near-linear) invariant audits run. *)
let checkpoint_gap ops = max 50 (ops / 20)

(* Per-run mutable state shared by every driver below. *)
type run = {
  name : string;
  seed : int;
  start_ns : int64;
  mutable viol : Invariant.violation list;
  mutable div : divergence option;
}

let make_run name seed =
  { name; seed; start_ns = Cq_util.Clock.monotonic_ns (); viol = []; div = None }

let diverge run i fmt =
  Printf.ksprintf
    (fun detail ->
      if Option.is_none run.div then
        run.div <- Some { structure = run.name; seed = run.seed; op_index = i; detail })
    fmt

let record_report run = function Ok () -> () | Error vs -> run.viol <- run.viol @ vs

(* Elapsed time and op counts flow through the metrics registry (one
   gauge/counter pair per structure) and the trace ring, so harnesses
   read them out of the shared snapshot instead of each run printing
   its own timings. *)
let finish run ~ops ~final_size =
  let dur_ns = Int64.sub (Cq_util.Clock.monotonic_ns ()) run.start_ns in
  Metrics.set
    (Metrics.gauge ("oracle." ^ run.name ^ ".elapsed_ms"))
    (Int64.to_float dur_ns /. 1e6);
  Metrics.add (Metrics.counter ("oracle." ^ run.name ^ ".ops")) ops;
  Trace.add_span ~cat:"oracle" ~name:("oracle." ^ run.name) ~ts_ns:run.start_ns ~dur_ns ();
  {
    structure = run.name;
    seed = run.seed;
    ops;
    final_size;
    violations = run.viol;
    divergence = run.div;
  }

(* The mirror for index-shaped structures: a multiset of (id, interval)
   pairs, held as a Hashtbl with duplicate bindings per id. *)

let mirror_mem tbl id iv = List.exists (fun iv' -> I.equal iv' iv) (Hashtbl.find_all tbl id)

let mirror_remove_one tbl id iv =
  let bs = Hashtbl.find_all tbl id in
  let rec drop = function
    | [] -> []
    | iv' :: tl -> if I.equal iv' iv then tl else iv' :: drop tl
  in
  let bs' = drop bs in
  List.iter (fun _ -> Hashtbl.remove tbl id) bs;
  List.iter (fun iv' -> Hashtbl.add tbl id iv') (List.rev bs')

let mirror_entries tbl = Hashtbl.fold (fun id iv acc -> (id, iv) :: acc) tbl []

(* ------------------------------------------------------------------ *)
(* Stabbing indexes: one generic driver, five instances                 *)
(* ------------------------------------------------------------------ *)

module type STAB_INDEX = sig
  type t

  val name : string
  val create : seed:int -> t
  val add : t -> int -> I.t -> unit
  val remove : t -> int -> I.t -> bool
  val stab_ids : t -> float -> int list
  val size : t -> int
  val audit : t -> entries:(int * I.t) list -> Invariant.report
end

let run_index (module S : STAB_INDEX) ~seed ~ops =
  let run = make_run S.name seed in
  let t = S.create ~seed in
  let stream = Fault.gen ~seed ~n:ops in
  let mirror : (int, I.t) Hashtbl.t = Hashtbl.create 1024 in
  let gap = checkpoint_gap ops in
  Array.iteri
    (fun i op ->
      if Option.is_none run.div then
        try
          (match op with
          | Fault.Add { id; iv } | Fault.Re_add { id; iv } ->
              S.add t id iv;
              Hashtbl.add mirror id iv
          | Fault.Remove { id; iv } | Fault.Remove_absent { id; iv } ->
              let expect = mirror_mem mirror id iv in
              let got = S.remove t id iv in
              if got <> expect then
                diverge run i "remove %d %s returned %b, oracle says %b" id (I.to_string iv)
                  got expect
              else if got then mirror_remove_one mirror id iv
          | Fault.Probe x ->
              let want =
                List.sort Int.compare
                  (Hashtbl.fold
                     (fun id iv acc -> if I.stabs iv x then id :: acc else acc)
                     mirror [])
              in
              let got = List.sort Int.compare (S.stab_ids t x) in
              if not (List.equal Int.equal got want) then
                diverge run i "stab %g returned %d ids, oracle says %d" x (List.length got)
                  (List.length want));
          let n = S.size t and m = Hashtbl.length mirror in
          if n <> m then diverge run i "size %d, oracle says %d" n m;
          if (i + 1) mod gap = 0 then
            record_report run (S.audit t ~entries:(mirror_entries mirror))
        with exn -> diverge run i "uncaught exception: %s" (Printexc.to_string exn))
    stream;
  record_report run (S.audit t ~entries:(mirror_entries mirror));
  finish run ~ops ~final_size:(S.size t)

(* Any backend behind the common Stab_backend.S signature gets a
   driver for free: payloads carry their interval along so the generic
   audit can recover it. *)
module Stab_driver (B : Cq_index.Stab_backend.S) : STAB_INDEX = struct
  module A = Invariant.Stab (B)

  type t = (int * I.t) B.t

  let name = B.name
  let create ~seed = B.create ~seed
  let add t id iv = B.add t iv (id, iv)
  let remove t id iv = B.remove t iv (fun (id', _) -> id' = id)

  let stab_ids t x =
    let acc = ref [] in
    B.stab t x (fun (id, _) -> acc := id :: !acc);
    !acc

  let size = B.size
  let audit t ~entries:_ = A.audit ~interval:snd t
end

module Itree_driver = Stab_driver (Cq_index.Stab_backend.Interval_tree)
module Skiplist_driver = Stab_driver (Cq_index.Stab_backend.Interval_skiplist)
module Pst_driver = Stab_driver (Cq_index.Stab_backend.Treap)

(* Intervals embed into the R-tree as zero-height-free rectangles
   [iv × [0,1]]; stabbing at y = 0.5 recovers 1-D stabbing. *)
module Rtree_driver : STAB_INDEX = struct
  module R = Cq_index.Rtree
  module Rect = Cq_index.Rect

  type t = int R.t

  let name = "rtree"
  let create ~seed:_ = R.create ()
  let rect iv = Rect.make ~x:iv ~y:(I.make 0.0 1.0)
  let add t id iv = R.insert t (rect iv) id
  let remove t id iv = R.remove t (rect iv) (fun id' -> id' = id)

  let stab_ids t x =
    let acc = ref [] in
    R.stab t ~x ~y:0.5 (fun _ id -> acc := id :: !acc);
    !acc

  let size = R.size
  let audit t ~entries:_ = Invariant.rtree t
end

(* Treap elements are (id, interval), ordered primarily by left
   endpoint as the partition algorithms require. *)
module Elem = struct
  type t = int * I.t

  let compare (i1, v1) (i2, v2) =
    match Float.compare (I.lo v1) (I.lo v2) with 0 -> Int.compare i1 i2 | c -> c

  let interval (_, v) = v
end

module Tr = Cq_index.Treap.Make (Elem)
module Tr_audit = Invariant.Treap (Elem) (Tr)

module Treap_driver : STAB_INDEX = struct
  type t = { rng : Rng.t; mutable tr : Tr.t }

  let name = "treap"
  let create ~seed = { rng = Rng.create seed; tr = Tr.empty }
  let add t id iv = t.tr <- Tr.add t.rng (id, iv) t.tr

  let remove t id iv =
    match Tr.remove (id, iv) t.tr with
    | Some tr ->
        t.tr <- tr;
        true
    | None -> false

  (* Each probe additionally exercises the Appendix-B SPLIT/JOIN pair:
     the treap is split at the probe and rejoined before answering, so
     a split/join bug corrupts the membership answer and gets caught. *)
  let stab_ids t x =
    let l, r = Tr.split_lo_le x t.tr in
    t.tr <- Tr.join l r;
    Tr.fold (fun acc (id, iv) -> if I.stabs iv x then id :: acc else acc) [] t.tr

  let size t = Tr.size t.tr
  let audit t ~entries:_ = Tr_audit.audit t.tr
end

(* ------------------------------------------------------------------ *)
(* B+-tree (keyed on interval left endpoints)                           *)
(* ------------------------------------------------------------------ *)

module Fkey = struct
  type t = float

  let compare = Float.compare
  let compare_at (a : float array) i k = Float.compare (Array.unsafe_get a i) k
end

module Fbt = Cq_index.Btree.Make (Fkey)
module Fbt_audit = Invariant.Btree (Fkey) (Fbt)

let run_btree ~seed ~ops =
  let run = make_run "btree" seed in
  let t : int Fbt.t = Fbt.create () in
  let stream = Fault.gen ~seed ~n:ops in
  let mirror : (int, I.t) Hashtbl.t = Hashtbl.create 1024 in
  let keys () = Hashtbl.fold (fun _ iv acc -> I.lo iv :: acc) mirror [] in
  let gap = checkpoint_gap ops in
  Array.iteri
    (fun i op ->
      if Option.is_none run.div then
        try
          (match op with
          | Fault.Add { id; iv } | Fault.Re_add { id; iv } ->
              Fbt.insert t (I.lo iv) id;
              Hashtbl.add mirror id iv
          | Fault.Remove { id; iv } | Fault.Remove_absent { id; iv } ->
              let expect = mirror_mem mirror id iv in
              let got = Fbt.remove_first t (I.lo iv) (fun id' -> id' = id) in
              if got <> expect then
                diverge run i "remove_first %d at %g returned %b, oracle says %b" id (I.lo iv)
                  got expect
              else if got then mirror_remove_one mirror id iv
          | Fault.Probe x ->
              let ks = keys () in
              let want = List.length (List.filter (fun k -> k = x) ks) in
              let got = Fbt.count_range t ~lo:x ~hi:x in
              if got <> want then
                diverge run i "count_range [%g,%g] = %d, oracle says %d" x x got want;
              let le = List.filter (fun k -> k <= x) ks
              and ge = List.filter (fun k -> k >= x) ks in
              let left, right = Fbt.neighbours t x in
              (match (left, le) with
              | Some (k, _), _ :: _ ->
                  let best = List.fold_left max neg_infinity le in
                  if k <> best then diverge run i "left neighbour of %g is %g, oracle says %g" x k best
              | None, [] -> ()
              | _ -> diverge run i "left-neighbour presence at %g disagrees with oracle" x);
              match (right, ge) with
              | Some (k, _), _ :: _ ->
                  let best = List.fold_left min infinity ge in
                  if k <> best then
                    diverge run i "right neighbour of %g is %g, oracle says %g" x k best
              | None, [] -> ()
              | _ -> diverge run i "right-neighbour presence at %g disagrees with oracle" x);
          let n = Fbt.length t and m = Hashtbl.length mirror in
          if n <> m then diverge run i "length %d, oracle says %d" n m;
          if (i + 1) mod gap = 0 then record_report run (Fbt_audit.audit t)
        with exn -> diverge run i "uncaught exception: %s" (Printexc.to_string exn))
    stream;
  record_report run (Fbt_audit.audit t);
  finish run ~ops ~final_size:(Fbt.length t)

(* ------------------------------------------------------------------ *)
(* Set-like structures: hotspot tracker and the two partitions          *)
(* ------------------------------------------------------------------ *)

(* These reject duplicate inserts with Invalid_argument and hold at
   most one copy of each element, so the mirror is a plain id -> iv
   table and Re_add ops assert the rejection. *)
type setlike = {
  s_insert : int * I.t -> unit;
  s_delete : int * I.t -> bool;
  s_mem : int * I.t -> bool;
  s_size : unit -> int;
  s_audit : unit -> Invariant.report;
}

let run_setlike name s ~seed ~ops =
  let run = make_run name seed in
  let stream = Fault.gen ~seed ~n:ops in
  let mirror : (int, I.t) Hashtbl.t = Hashtbl.create 1024 in
  let gap = checkpoint_gap ops in
  Array.iteri
    (fun i op ->
      if Option.is_none run.div then
        try
          (match op with
          | Fault.Add { id; iv } ->
              s.s_insert (id, iv);
              Hashtbl.replace mirror id iv;
              if not (s.s_mem (id, iv)) then diverge run i "mem is false right after insert"
          | Fault.Re_add { id; iv } -> (
              match s.s_insert (id, iv) with
              | () -> diverge run i "duplicate insert of %d was accepted" id
              | exception Invalid_argument _ -> ())
          | Fault.Remove { id; iv } | Fault.Remove_absent { id; iv } ->
              let expect = Hashtbl.mem mirror id in
              let got = s.s_delete (id, iv) in
              if got <> expect then
                diverge run i "delete %d returned %b, oracle says %b" id got expect
              else if got then Hashtbl.remove mirror id
          | Fault.Probe _ -> ());
          let n = s.s_size () and m = Hashtbl.length mirror in
          if n <> m then diverge run i "size %d, oracle says %d" n m;
          if (i + 1) mod gap = 0 then record_report run (s.s_audit ())
        with exn -> diverge run i "uncaught exception: %s" (Printexc.to_string exn))
    stream;
  record_report run (s.s_audit ());
  finish run ~ops ~final_size:(s.s_size ())

module Tracker = Hotspot_core.Hotspot_tracker.Make (Elem)
module Tracker_audit = Invariant.Tracker (Elem) (Tracker)

let run_tracker ?(alpha = 0.05) ~seed ~ops () =
  let t = Tracker.create ~alpha ~seed () in
  run_setlike "hotspot_tracker"
    {
      s_insert = (fun e -> Tracker.insert t e);
      s_delete = (fun e -> Tracker.delete t e);
      s_mem = (fun e -> Tracker.mem t e);
      s_size = (fun () -> Tracker.size t);
      s_audit = (fun () -> Tracker_audit.audit t);
    }
    ~seed ~ops

module Lazy_p = Hotspot_core.Lazy_partition.Make (Elem)
module Refined_p = Hotspot_core.Refined_partition.Make (Elem)
module Lazy_audit = Invariant.Partition (Elem) (Lazy_p)
module Refined_audit = Invariant.Partition (Elem) (Refined_p)

let run_lazy_partition ~seed ~ops =
  let p = Lazy_p.create ~seed () in
  run_setlike "lazy_partition"
    {
      s_insert = (fun e -> Lazy_p.insert p e);
      s_delete = (fun e -> Lazy_p.delete p e);
      s_mem = (fun e -> Lazy_p.mem p e);
      s_size = (fun () -> Lazy_p.size p);
      s_audit = (fun () -> Lazy_audit.audit ~name:"lazy_partition" p);
    }
    ~seed ~ops

let run_refined_partition ~seed ~ops =
  let p = Refined_p.create ~seed () in
  run_setlike "refined_partition"
    {
      s_insert = (fun e -> Refined_p.insert p e);
      s_delete = (fun e -> Refined_p.delete p e);
      s_mem = (fun e -> Refined_p.mem p e);
      s_size = (fun () -> Refined_p.size p);
      s_audit = (fun () -> Refined_audit.audit ~name:"refined_partition" p);
    }
    ~seed ~ops

(* ------------------------------------------------------------------ *)
(* Whole-engine differential run                                        *)
(* ------------------------------------------------------------------ *)

module Engine = Cq_engine.Engine
module Tuple = Cq_relation.Tuple

type q_kind = Band of I.t | Select of I.t * I.t

type q_state = {
  qid : int;
  kind : q_kind;
  sub : Engine.subscription;
  mutable q_live : bool;
  mutable actual : int; (* deliveries - retractions observed *)
  mutable expect : int; (* same balance per the naive mirror *)
}

let q_matches q (r : Tuple.r) (s : Tuple.s) =
  match q.kind with
  | Band w -> I.stabs w (s.b -. r.b)
  | Select (ra, rc) -> r.b = s.b && I.stabs ra r.a && I.stabs rc s.c

let run_engine ?(backend = Cq_index.Stab_backend.Itree) ~seed ~ops () =
  let run =
    make_run (Printf.sprintf "engine[%s]" (Cq_index.Stab_backend.to_string backend)) seed
  in
  let eng = Engine.create ~alpha:0.1 ~seed ~backend () in
  let stream = Fault.gen_engine ~seed ~n:ops in
  let rng = Rng.create (seed + 0x9e37) in
  let queries : q_state list ref = ref [] in
  let r_live : Tuple.r list ref = ref [] in
  let s_live : Tuple.s list ref = ref [] in
  let next_qid = ref 0 in
  let stray = ref None in
  let gap = checkpoint_gap ops in
  let subscribe i kind =
    let qid = !next_qid in
    incr next_qid;
    let cell = ref None in
    let guard delta _ _ =
      match !cell with
      | Some q when q.q_live -> q.actual <- q.actual + delta
      | Some q when Option.is_none !stray -> stray := Some (q.qid, i)
      | _ -> ()
    in
    let sub =
      match kind with
      | Band range -> Engine.subscribe_band eng ~on_retract:(guard (-1)) ~range (guard 1)
      | Select (range_a, range_c) ->
          Engine.subscribe_select eng ~on_retract:(guard (-1)) ~range_a ~range_c (guard 1)
    in
    let q = { qid; kind; sub; q_live = true; actual = 0; expect = 0 } in
    cell := Some q;
    queries := q :: !queries
  in
  let live_queries () = List.filter (fun q -> q.q_live) !queries in
  (* Mirror the delivery semantics: completing a pair credits every
     subscribed query it matches; deleting a tuple debits every
     subscribed query once per live matching partner. *)
  let credit_r delta r =
    List.iter
      (fun q ->
        List.iter (fun s -> if q_matches q r s then q.expect <- q.expect + delta) !s_live)
      (live_queries ())
  in
  let credit_s delta s =
    List.iter
      (fun q ->
        List.iter (fun r -> if q_matches q r s then q.expect <- q.expect + delta) !r_live)
      (live_queries ())
  in
  let pick l = match !l with [] -> None | xs -> Some (List.nth xs (Rng.int rng (List.length xs))) in
  let checkpoint i =
    List.iter
      (fun q ->
        if q.actual <> q.expect then
          diverge run i "query %d balance %d, oracle says %d" q.qid q.actual q.expect)
      !queries;
    (match !stray with
    | Some (qid, at) -> diverge run i "query %d received a result after unsubscribe (op %d)" qid at
    | None -> ());
    let st = Engine.stats eng in
    let nr = List.length !r_live and ns = List.length !s_live in
    if st.r_size <> nr then diverge run i "r_size %d, oracle says %d" st.r_size nr;
    if st.s_size <> ns then diverge run i "s_size %d, oracle says %d" st.s_size ns;
    record_report run (Invariant.engine eng)
  in
  Array.iteri
    (fun i op ->
      if Option.is_none run.div then
        try
          (match op with
          | Fault.Sub_band { range } -> subscribe i (Band range)
          | Fault.Sub_select { range_a; range_c } -> subscribe i (Select (range_a, range_c))
          | Fault.Unsub_random -> (
              match live_queries () with
              | [] -> ()
              | qs ->
                  let q = List.nth qs (Rng.int rng (List.length qs)) in
                  if not (Engine.unsubscribe eng q.sub) then
                    diverge run i "unsubscribe of live query %d returned false" q.qid;
                  q.q_live <- false)
          | Fault.Ins_r { a; b } ->
              let r, _ = Engine.insert_r eng ~a ~b in
              credit_r 1 r;
              r_live := r :: !r_live
          | Fault.Ins_s { b; c } ->
              let s, _ = Engine.insert_s eng ~b ~c in
              credit_s 1 s;
              s_live := s :: !s_live
          | Fault.Del_r_random -> (
              match pick r_live with
              | None -> ()
              | Some r -> (
                  match Engine.delete_r eng r with
                  | None -> diverge run i "delete_r of live tuple %d returned None" r.rid
                  | Some _ ->
                      r_live := List.filter (fun r' -> r'.Tuple.rid <> r.rid) !r_live;
                      credit_r (-1) r))
          | Fault.Del_s_random -> (
              match pick s_live with
              | None -> ()
              | Some s -> (
                  match Engine.delete_s eng s with
                  | None -> diverge run i "delete_s of live tuple %d returned None" s.sid
                  | Some _ ->
                      s_live := List.filter (fun s' -> s'.Tuple.sid <> s.sid) !s_live;
                      credit_s (-1) s))
          | Fault.Reject_ins_r { a; b } -> (
              match Engine.try_insert_r eng ~a ~b with
              | Error _ -> ()
              | Ok _ -> diverge run i "insert_r with non-finite attribute was accepted")
          | Fault.Reject_sub_band -> (
              match Engine.try_subscribe_band eng ~range:I.empty (fun _ _ -> ()) with
              | Error _ -> ()
              | Ok _ -> diverge run i "subscription with an empty window was accepted"));
          if (i + 1) mod gap = 0 then checkpoint i
        with exn -> diverge run i "uncaught exception: %s" (Printexc.to_string exn))
    stream;
  checkpoint (Array.length stream);
  finish run ~ops ~final_size:(List.length !r_live + List.length !s_live)

(* ------------------------------------------------------------------ *)
(* Parallel-vs-sequential differential run                              *)
(* ------------------------------------------------------------------ *)

module Par = Cq_engine.Parallel

(* The whole workload — queries, row batches, the engine's batch size —
   is materialised from the seed first, then replayed verbatim into a
   1-shard and an N-shard engine, so both runs see bit-identical input
   and tuple ids line up.  The property under test is the determinism
   claim of Parallel's merge: the delivered result multiset, keyed by
   (query, rid, sid), must not depend on the shard count. *)
let run_parallel ?(shards = 2) ~seed ~ops () =
  let run = make_run (Printf.sprintf "parallel[%d]" shards) seed in
  let rng = Rng.create (seed + 0x517c) in
  let n_q = 8 + Rng.int rng 17 in
  let mk_iv () =
    let lo = (Rng.float rng *. 1000.0) -. 200.0 in
    let w = 1.0 +. (Rng.float rng *. 150.0) in
    I.make lo (lo +. w)
  in
  let queries =
    List.init n_q (fun _ ->
        if Rng.bool rng then `Band (mk_iv ()) else `Select (mk_iv (), mk_iv ()))
  in
  let n_batches = max 2 (ops / 40) in
  let batches =
    List.init n_batches (fun _ ->
        let side = if Rng.bool rng then Par.R else Par.S in
        let len = 1 + Rng.int rng 50 in
        let rows =
          Array.init len (fun _ -> (Rng.float rng *. 1000.0, Rng.float rng *. 1000.0))
        in
        (side, rows))
  in
  let batch_size = 1 + Rng.int rng 64 in
  let collect n_shards =
    let t = Par.create ~alpha:0.1 ~seed ~shards:n_shards ~batch_size () in
    let results = ref [] in
    List.iteri
      (fun qi q ->
        let cb (r : Tuple.r) (s : Tuple.s) = results := (qi, r.rid, s.sid) :: !results in
        match q with
        | `Band range -> ignore (Par.subscribe_band t ~range cb)
        | `Select (range_a, range_c) -> ignore (Par.subscribe_select t ~range_a ~range_c cb))
      queries;
    List.iter (fun (side, rows) -> Par.ingest_batch t side rows) batches;
    ignore (Par.flush t);
    Par.check_invariants t;
    let delivered = Par.results_delivered t in
    Par.shutdown t;
    (!results, delivered)
  in
  let total_rows = List.fold_left (fun acc (_, rows) -> acc + Array.length rows) 0 batches in
  (try
     let seq_rs, seq_n = collect 1 in
     let par_rs, par_n = collect shards in
     let cmp (q1, r1, s1) (q2, r2, s2) =
       let c = Int.compare q1 q2 in
       if c <> 0 then c
       else
         let c = Int.compare r1 r2 in
         if c <> 0 then c else Int.compare s1 s2
     in
     if seq_n <> par_n then
       diverge run 0 "sequential delivered %d results, %d shards delivered %d" seq_n shards
         par_n
     else begin
       let a = List.sort cmp seq_rs and b = List.sort cmp par_rs in
       let rec first_diff i xs ys =
         match (xs, ys) with
         | [], [] -> ()
         | (q, r, s) :: _, [] ->
             diverge run i "result (q=%d, rid=%d, sid=%d) missing under %d shards" q r s shards
         | [], (q, r, s) :: _ ->
             diverge run i "result (q=%d, rid=%d, sid=%d) fabricated under %d shards" q r s
               shards
         | x :: xs', y :: ys' ->
             if cmp x y = 0 then first_diff (i + 1) xs' ys'
             else
               let q, r, s = x and q', r', s' = y in
               diverge run i
                 "multisets differ: sequential has (q=%d, rid=%d, sid=%d), %d shards have \
                  (q=%d, rid=%d, sid=%d)"
                 q r s shards q' r' s'
       in
       first_diff 0 a b
     end
   with exn -> diverge run 0 "uncaught exception: %s" (Printexc.to_string exn));
  finish run ~ops:total_rows ~final_size:total_rows

(* Drift differential run: a {!Fault.gen_drift} walking-hotspot stream
   — live registration/deregistration mid-ingest, registration mass
   Zipf-concentrated on one home shard, the concentration walking
   across strips — is replayed verbatim into a 1-shard engine (no
   domains, no rebalancer activity) and an N-shard engine with the
   rebalancer armed.  Two properties under test: the delivered
   (query, rid, sid) multiset is bit-for-bit independent of the shard
   count {e even while strips migrate}, and the stream's pile-up
   actually forces at least one migration (otherwise the run proves
   nothing about migration safety). *)
let run_drift ?(shards = 4) ~seed ~ops () =
  let run = make_run (Printf.sprintf "drift[%d]" shards) seed in
  let stream = Fault.gen_drift ~shards ~seed ~n:(max 60 ops) () in
  let collect n_shards =
    let t =
      Par.create ~alpha:0.1 ~seed ~shards:n_shards ~batch_size:8
        ~rebalance:(Some { Engine.Config.threshold = 1.5; check_every = 2 })
        ()
    in
    let results = ref [] in
    let handles = Queue.create () in
    let next_qi = ref 0 in
    let reg spec =
      let qi = !next_qi in
      incr next_qi;
      let cb (r : Tuple.r) (s : Tuple.s) = results := (qi, r.rid, s.sid) :: !results in
      Queue.add (Par.register t spec cb) handles
    in
    Array.iter
      (fun op ->
        match op with
        | Fault.Drift_register { range } -> reg (Par.Band { range })
        | Fault.Drift_register_select { range_a; range_c } ->
            reg (Par.Select { range_a; range_c })
        | Fault.Drift_deregister -> (
            match Queue.take_opt handles with
            | Some sub -> ignore (Par.deregister t sub)
            | None -> ())
        | Fault.Drift_r rows -> Par.ingest_batch t Par.R rows
        | Fault.Drift_s rows -> Par.ingest_batch t Par.S rows
        | Fault.Drift_flush -> ignore (Par.flush t))
      stream;
    ignore (Par.flush t);
    Par.check_invariants t;
    let delivered = Par.results_delivered t in
    let rb = Par.rebalance_stats t in
    Par.shutdown t;
    (!results, delivered, rb)
  in
  (try
     let seq_rs, seq_n, _ = collect 1 in
     let par_rs, par_n, rb = collect shards in
     if rb.Par.rb_migrations < 1 then
       diverge run 0 "drift stream forced no migration (%d checks, ratio %.2f)"
         rb.Par.rb_checks rb.Par.rb_last_ratio
     else if seq_n <> par_n then
       diverge run 0 "sequential delivered %d results, %d shards delivered %d" seq_n shards
         par_n
     else begin
       let cmp (q1, r1, s1) (q2, r2, s2) =
         let c = Int.compare q1 q2 in
         if c <> 0 then c
         else
           let c = Int.compare r1 r2 in
           if c <> 0 then c else Int.compare s1 s2
       in
       let a = List.sort cmp seq_rs and b = List.sort cmp par_rs in
       let rec first_diff i xs ys =
         match (xs, ys) with
         | [], [] -> ()
         | (q, r, s) :: _, [] ->
             diverge run i "result (q=%d, rid=%d, sid=%d) missing under %d shards" q r s
               shards
         | [], (q, r, s) :: _ ->
             diverge run i "result (q=%d, rid=%d, sid=%d) fabricated under %d shards" q r s
               shards
         | x :: xs', y :: ys' ->
             if cmp x y = 0 then first_diff (i + 1) xs' ys'
             else
               let q, r, s = x and q', r', s' = y in
               diverge run i
                 "multisets differ under migration: sequential has (q=%d, rid=%d, sid=%d), \
                  %d shards have (q=%d, rid=%d, sid=%d)"
                 q r s shards q' r' s'
       in
       first_diff 0 a b
     end
   with exn -> diverge run 0 "uncaught exception: %s" (Printexc.to_string exn));
  finish run ~ops:(Array.length stream) ~final_size:(Array.length stream)

(* Flat-batch differential check: one seeded insert-only workload runs
   twice through identically configured sequential engines — once a
   row at a time (insert_r/insert_s), once through the flat-batch path
   (ingest_batch_r/_s) — and the delivered (query, rid, sid) multisets
   must be identical, tuple-id assignment included (both paths draw
   rids/sids from the same counter in the same order).  A third of the
   batches are followed by a fresh subscription, so staged candidates
   go stale mid-stream and the staging-invalidation fallback is
   exercised on both engines alike. *)
let run_batch ?(backend = Cq_index.Stab_backend.Itree) ~seed ~ops () =
  let run =
    make_run (Printf.sprintf "batch[%s]" (Cq_index.Stab_backend.to_string backend)) seed
  in
  let rng = Rng.create (seed + 0xba7c) in
  let n_q = 8 + Rng.int rng 17 in
  let mk_iv () =
    let lo = (Rng.float rng *. 1000.0) -. 200.0 in
    let w = 1.0 +. (Rng.float rng *. 150.0) in
    I.make lo (lo +. w)
  in
  let mk_query () = if Rng.bool rng then `Band (mk_iv ()) else `Select (mk_iv (), mk_iv ()) in
  let initial = List.init n_q (fun _ -> mk_query ()) in
  let n_batches = max 2 (ops / 40) in
  let batches =
    List.init n_batches (fun _ ->
        let side = if Rng.bool rng then `R else `S in
        let len = 1 + Rng.int rng 50 in
        let rows =
          Array.init len (fun _ -> (Rng.float rng *. 1000.0, Rng.float rng *. 1000.0))
        in
        let churn = if Rng.int rng 3 = 0 then Some (mk_query ()) else None in
        (side, rows, churn))
  in
  let collect use_batch =
    let eng = Engine.create ~alpha:0.1 ~seed ~backend () in
    let results = ref [] in
    let next_q = ref 0 in
    let subscribe q =
      let qi = !next_q in
      incr next_q;
      let cb (r : Tuple.r) (s : Tuple.s) = results := (qi, r.rid, s.sid) :: !results in
      match q with
      | `Band range -> ignore (Engine.subscribe_band eng ~range cb)
      | `Select (range_a, range_c) ->
          ignore (Engine.subscribe_select eng ~range_a ~range_c cb)
    in
    List.iter subscribe initial;
    List.iter
      (fun (side, rows, churn) ->
        (if use_batch then
           let b = Cq_relation.Batch.of_rows rows in
           ignore
             (match side with
             | `R -> Engine.ingest_batch_r eng b
             | `S -> Engine.ingest_batch_s eng b)
         else
           Array.iter
             (fun (x, y) ->
               match side with
               | `R -> ignore (Engine.insert_r eng ~a:x ~b:y)
               | `S -> ignore (Engine.insert_s eng ~b:x ~c:y))
             rows);
        match churn with Some q -> subscribe q | None -> ())
      batches;
    Engine.check_invariants eng;
    (!results, (Engine.stats eng).results_delivered)
  in
  let total_rows = List.fold_left (fun acc (_, rows, _) -> acc + Array.length rows) 0 batches in
  (try
     let seq_rs, seq_n = collect false in
     let bat_rs, bat_n = collect true in
     let cmp (q1, r1, s1) (q2, r2, s2) =
       let c = Int.compare q1 q2 in
       if c <> 0 then c
       else
         let c = Int.compare r1 r2 in
         if c <> 0 then c else Int.compare s1 s2
     in
     if seq_n <> bat_n then
       diverge run 0 "per-tuple path delivered %d results, batch path delivered %d" seq_n bat_n
     else begin
       let a = List.sort cmp seq_rs and b = List.sort cmp bat_rs in
       let rec first_diff i xs ys =
         match (xs, ys) with
         | [], [] -> ()
         | (q, r, s) :: _, [] ->
             diverge run i "result (q=%d, rid=%d, sid=%d) missing under batch ingest" q r s
         | [], (q, r, s) :: _ ->
             diverge run i "result (q=%d, rid=%d, sid=%d) fabricated under batch ingest" q r s
         | x :: xs', y :: ys' ->
             if cmp x y = 0 then first_diff (i + 1) xs' ys'
             else
               let q, r, s = x and q', r', s' = y in
               diverge run i
                 "multisets differ: per-tuple has (q=%d, rid=%d, sid=%d), batch has (q=%d, \
                  rid=%d, sid=%d)"
                 q r s q' r' s'
       in
       first_diff 0 a b
     end
   with exn -> diverge run 0 "uncaught exception: %s" (Printexc.to_string exn));
  finish run ~ops:total_rows ~final_size:total_rows

(* Shed-mode differential check: replay a seeded insert-only workload
   through a Shed-policy engine at a forced keep-rate, compute the
   exact answer for every query by brute force, and require (a) the
   delivered subset never exceeds the exact answer, (b) the engine's
   observed counter matches what the callbacks saw, and (c) every
   Horvitz-Thompson estimate lands within its own claimed error
   bound. *)
let run_shed ?(shards = 1) ?(rate = 0.5) ~seed ~ops () =
  let run = make_run (Printf.sprintf "shed[%dx%.2f]" shards rate) seed in
  let rng = Rng.create (seed + 0x53ed) in
  let n_q = 6 + Rng.int rng 11 in
  let mk_iv () =
    let lo = (Rng.float rng *. 1000.0) -. 200.0 in
    let w = 1.0 +. (Rng.float rng *. 150.0) in
    I.make lo (lo +. w)
  in
  let queries =
    Array.init n_q (fun _ ->
        if Rng.bool rng then `Band (mk_iv ()) else `Select (mk_iv (), mk_iv ()))
  in
  let n_batches = max 2 (ops / 40) in
  let batches =
    List.init n_batches (fun _ ->
        let side = if Rng.bool rng then Par.R else Par.S in
        let len = 1 + Rng.int rng 50 in
        let rows =
          Array.init len (fun _ -> (Rng.float rng *. 1000.0, Rng.float rng *. 1000.0))
        in
        (side, rows))
  in
  let batch_size = 1 + Rng.int rng 64 in
  let total_rows = List.fold_left (fun acc (_, rows) -> acc + Array.length rows) 0 batches in
  (try
     let t =
       Par.create ~alpha:0.1 ~seed ~shards ~batch_size ~overload:Engine.Config.Shed
         ~shed_rate:rate ()
     in
     let observed = Array.make n_q 0 in
     Array.iteri
       (fun qi q ->
         let cb (_ : Tuple.r) (_ : Tuple.s) = observed.(qi) <- observed.(qi) + 1 in
         match q with
         | `Band range -> ignore (Par.subscribe_band t ~range cb)
         | `Select (range_a, range_c) -> ignore (Par.subscribe_select t ~range_a ~range_c cb))
       queries;
     List.iter (fun (side, rows) -> Par.ingest_batch t side rows) batches;
     ignore (Par.flush t);
     Par.check_invariants t;
     let info = Par.shed_info t in
     Par.shutdown t;
     let rs = ref [] and ss = ref [] in
     List.iter
       (fun (side, rows) ->
         match side with
         | Par.R -> Array.iter (fun row -> rs := row :: !rs) rows
         | Par.S -> Array.iter (fun row -> ss := row :: !ss) rows)
       batches;
     let exact qi =
       let n = ref 0 in
       List.iter
         (fun (ra, rb) ->
           List.iter
             (fun (sb, sc) ->
               let hit =
                 match queries.(qi) with
                 | `Band w -> I.stabs w (sb -. rb)
                 | `Select (wa, wc) -> rb = sb && I.stabs wa ra && I.stabs wc sc
               in
               if hit then incr n)
             !ss)
         !rs;
       !n
     in
     let reported = Hashtbl.create 16 in
     List.iter (fun (d : Engine.degraded) -> Hashtbl.replace reported d.deg_qid d) info;
     Array.iteri
       (fun qi _ ->
         let n = exact qi in
         match Hashtbl.find_opt reported qi with
         | Some (d : Engine.degraded) ->
             if observed.(qi) > n then
               diverge run qi
                 "query %d delivered %d results but only %d exist (subsample violated)" qi
                 observed.(qi) n;
             if d.deg_observed <> observed.(qi) then
               diverge run qi "query %d: engine reports %d observed, callbacks saw %d" qi
                 d.deg_observed observed.(qi);
             let err = Float.abs (d.deg_estimate -. float_of_int n) in
             if err > d.deg_claimed_error +. 1e-6 then
               diverge run qi
                 "query %d: estimate %.2f for exact %d misses the claimed bound %.2f (err %.2f)"
                 qi d.deg_estimate n d.deg_claimed_error err
         | None ->
             if observed.(qi) <> n then
               diverge run qi
                 "query %d never saw a shed coin yet delivered %d of %d exact results" qi
                 observed.(qi) n)
       queries
   with exn -> diverge run 0 "uncaught exception: %s" (Printexc.to_string exn));
  finish run ~ops:total_rows ~final_size:total_rows

(* Adaptive-schedule differential check: the keep-rate moves between
   1.0 and sub-unit values per batch — the regime the parallel
   adaptive controller produces — and every claimed bound must still
   contain the exact count.  The load-bearing case is an exact phase
   followed by a shedding one: results delivered at rate 1.0 must fold
   into the estimate at p = 1, or the estimate omits the whole exact
   phase while the claimed error only covers shed-phase sampling.
   Driven through the sequential engine so the schedule is a pure
   function of the seed (the parallel controller reads live queue
   depths, which no replay can pin down). *)
let run_shed_adaptive ~seed ~ops () =
  let run = make_run "shed-adaptive" seed in
  let rng = Rng.create (seed + 0xada) in
  let n_q = 6 + Rng.int rng 11 in
  let mk_iv () =
    let lo = (Rng.float rng *. 1000.0) -. 200.0 in
    let w = 1.0 +. (Rng.float rng *. 150.0) in
    I.make lo (lo +. w)
  in
  let queries =
    Array.init n_q (fun _ ->
        if Rng.bool rng then `Band (mk_iv ()) else `Select (mk_iv (), mk_iv ()))
  in
  let n_batches = max 4 (ops / 40) in
  let batches =
    List.init n_batches (fun i ->
        let side = if Rng.bool rng then `R else `S in
        let len = 1 + Rng.int rng 50 in
        let rows =
          Array.init len (fun _ -> (Rng.float rng *. 1000.0, Rng.float rng *. 1000.0))
        in
        (* Always open with an exact phase (the historical failure
           shape), then mix freely — about half the batches exact. *)
        let rate =
          if i = 0 then 1.0
          else
            match Rng.int rng 6 with
            | 0 | 1 | 2 -> 1.0
            | 3 -> 0.25
            | 4 -> 0.5
            | _ -> 0.75
        in
        (side, rate, rows))
  in
  let total_rows =
    List.fold_left (fun acc (_, _, rows) -> acc + Array.length rows) 0 batches
  in
  (try
     let eng = Engine.create ~alpha:0.1 ~seed ~overload:Engine.Config.Shed () in
     let observed = Array.make n_q 0 in
     Array.iteri
       (fun qi q ->
         let cb (_ : Tuple.r) (_ : Tuple.s) = observed.(qi) <- observed.(qi) + 1 in
         match q with
         | `Band range -> ignore (Engine.subscribe_band eng ~range cb)
         | `Select (range_a, range_c) ->
             ignore (Engine.subscribe_select eng ~range_a ~range_c cb))
       queries;
     List.iter
       (fun (side, rate, rows) ->
         Engine.set_shed_rate eng rate;
         Array.iter
           (fun (x, y) ->
             match side with
             | `R -> ignore (Engine.insert_r eng ~a:x ~b:y)
             | `S -> ignore (Engine.insert_s eng ~b:x ~c:y))
           rows)
       batches;
     Engine.check_invariants eng;
     let info = Engine.shed_info eng in
     let rs = ref [] and ss = ref [] in
     List.iter
       (fun (side, _, rows) ->
         match side with
         | `R -> Array.iter (fun row -> rs := row :: !rs) rows
         | `S -> Array.iter (fun row -> ss := row :: !ss) rows)
       batches;
     let exact qi =
       let n = ref 0 in
       List.iter
         (fun (ra, rb) ->
           List.iter
             (fun (sb, sc) ->
               let hit =
                 match queries.(qi) with
                 | `Band w -> I.stabs w (sb -. rb)
                 | `Select (wa, wc) -> rb = sb && I.stabs wa ra && I.stabs wc sc
               in
               if hit then incr n)
             !ss)
         !rs;
       !n
     in
     let reported = Hashtbl.create 16 in
     List.iter (fun (d : Engine.degraded) -> Hashtbl.replace reported d.deg_qid d) info;
     Array.iteri
       (fun qi _ ->
         let n = exact qi in
         match Hashtbl.find_opt reported qi with
         | Some (d : Engine.degraded) ->
             if observed.(qi) > n then
               diverge run qi
                 "query %d delivered %d results but only %d exist (subsample violated)" qi
                 observed.(qi) n;
             if d.deg_observed <> observed.(qi) then
               diverge run qi "query %d: engine reports %d observed, callbacks saw %d" qi
                 d.deg_observed observed.(qi);
             let err = Float.abs (d.deg_estimate -. float_of_int n) in
             if err > d.deg_claimed_error +. 1e-6 then
               diverge run qi
                 "query %d: estimate %.2f for exact %d misses the claimed bound %.2f \
                  (err %.2f) under a mixed-rate schedule"
                 qi d.deg_estimate n d.deg_claimed_error err
         | None ->
             if observed.(qi) <> n then
               diverge run qi
                 "query %d never saw a sub-unit coin yet delivered %d of %d exact results"
                 qi observed.(qi) n)
       queries
   with exn -> diverge run 0 "uncaught exception: %s" (Printexc.to_string exn));
  finish run ~ops:total_rows ~final_size:total_rows

(* Burst replay: the Fault.gen_burst stream (quiet trickle alternating
   with 64-256-row volleys, no flush inside a volley) goes through an
   adaptive Shed engine.  Shed's contract is liveness, not exactness:
   every ingest call must return [Ok] — never a blocking stall, never
   an [Overload] error — and what does get delivered must remain a
   subset of the exact answer over everything submitted.  The adaptive
   rate itself is timing-dependent (it reads live queue depths), so
   the run is not replayable decision-for-decision — but the bound
   contract is checked regardless: whenever no whole chunk was dropped
   past the grace window (the one loss the estimators cannot see),
   every degraded report must contain the exact count within its
   claimed error, and every unreported query must be exact. *)
let run_burst ?(shards = 2) ~seed ~ops () =
  let run = make_run (Printf.sprintf "burst[%d]" shards) seed in
  let burst = Fault.gen_burst ~seed ~n:(max 24 (ops / 10)) in
  let rng = Rng.create (seed + 0xb5e7) in
  let n_q = 4 + Rng.int rng 9 in
  let mk_iv () =
    let lo = (Rng.float rng *. 30.0) -. 15.0 in
    let w = 0.5 +. (Rng.float rng *. 6.0) in
    I.make lo (lo +. w)
  in
  let queries =
    Array.init n_q (fun _ ->
        if Rng.bool rng then `Band (mk_iv ()) else `Select (mk_iv (), mk_iv ()))
  in
  let total_rows = ref 0 in
  (try
     let t =
       Par.create ~alpha:0.1 ~seed ~shards ~batch_size:8 ~overload:Engine.Config.Shed ()
     in
     let observed = Array.make n_q 0 in
     Array.iteri
       (fun qi q ->
         let cb (_ : Tuple.r) (_ : Tuple.s) = observed.(qi) <- observed.(qi) + 1 in
         match q with
         | `Band range -> ignore (Par.subscribe_band t ~range cb)
         | `Select (range_a, range_c) -> ignore (Par.subscribe_select t ~range_a ~range_c cb))
       queries;
     let rs = ref [] and ss = ref [] in
     let ingest i side rows mirror =
       total_rows := !total_rows + Array.length rows;
       match Par.try_ingest_batch t side rows with
       | Ok () -> Array.iter (fun row -> mirror := row :: !mirror) rows
       | Error e ->
           diverge run i "shed-mode ingest must stay non-blocking and Ok, got: %s"
             (Cq_util.Error.to_string e)
     in
     Array.iteri
       (fun i op ->
         match op with
         | Fault.Burst_r rows -> ingest i Par.R rows rs
         | Fault.Burst_s rows -> ingest i Par.S rows ss
         | Fault.Burst_flush -> ignore (Par.flush t))
       burst;
     ignore (Par.flush t);
     Par.check_invariants t;
     let totals : Par.shed_totals = Par.shed_totals t in
     let info = Par.shed_info t in
     Par.shutdown t;
     if totals.par_min_rate <= 0.0 || totals.par_min_rate > 1.0 then
       diverge run 0 "applied shed rate %.3f outside (0, 1]" totals.par_min_rate;
     let reported = Hashtbl.create 16 in
     List.iter (fun (d : Engine.degraded) -> Hashtbl.replace reported d.deg_qid d) info;
     (* Qids are issued in subscription order, so query index = qid. *)
     Array.iteri
       (fun qi q ->
         let n = ref 0 in
         List.iter
           (fun (ra, rb) ->
             List.iter
               (fun (sb, sc) ->
                 let hit =
                   match q with
                   | `Band w -> I.stabs w (sb -. rb)
                   | `Select (wa, wc) -> rb = sb && I.stabs wa ra && I.stabs wc sc
                 in
                 if hit then incr n)
               !ss)
           !rs;
         if observed.(qi) > !n then
           diverge run qi "query %d delivered %d results but only %d exist under burst" qi
             observed.(qi) !n;
         (* Whole-chunk drops at admission are the one loss the
            per-query estimators never see (no coin is flipped for a
            row that reaches no shard), so the claimed bounds are only
            asserted on runs where none occurred. *)
         if totals.par_dropped_rows = 0 then
           match Hashtbl.find_opt reported qi with
           | Some (d : Engine.degraded) ->
               if d.deg_observed <> observed.(qi) then
                 diverge run qi "query %d: engine reports %d observed, callbacks saw %d" qi
                   d.deg_observed observed.(qi);
               let err = Float.abs (d.deg_estimate -. float_of_int !n) in
               if err > d.deg_claimed_error +. 1e-6 then
                 diverge run qi
                   "query %d: adaptive estimate %.2f for exact %d misses the claimed \
                    bound %.2f (err %.2f)"
                   qi d.deg_estimate !n d.deg_claimed_error err
           | None ->
               if observed.(qi) <> !n then
                 diverge run qi
                   "query %d never saw a sub-unit coin yet delivered %d of %d exact \
                    results under burst"
                   qi observed.(qi) !n)
       queries
   with exn -> diverge run 0 "uncaught exception: %s" (Printexc.to_string exn));
  finish run ~ops:!total_rows ~final_size:!total_rows

(* ------------------------------------------------------------------ *)
(* The full battery                                                     *)
(* ------------------------------------------------------------------ *)

let index_drivers : (module STAB_INDEX) list =
  [
    (module Itree_driver);
    (module Skiplist_driver);
    (module Pst_driver);
    (module Rtree_driver);
    (module Treap_driver);
  ]

(* Build every structure from the same adversarial stream (mutations
   only, single-copy semantics so the set-like structures can share
   it), then deep-audit each one once. *)
let audit_workload ?(backend = Cq_index.Stab_backend.Itree) ~seed ~n () =
  let audit_start = Cq_util.Clock.monotonic_ns () in
  let stream = Fault.gen ~seed ~n in
  let mirror : (int, I.t) Hashtbl.t = Hashtbl.create 1024 in
  let live = Hashtbl.create 1024 in
  let apply ~add ~del =
    Array.iter
      (fun op ->
        match op with
        | Fault.Add { id; iv } ->
            add id iv;
            Hashtbl.replace live id iv
        | Fault.Remove { id; iv } when Hashtbl.mem live id ->
            del id iv;
            Hashtbl.remove live id
        | _ -> ())
      stream;
    Hashtbl.reset live
  in
  let index_reports =
    List.map
      (fun (module S : STAB_INDEX) ->
        let t = S.create ~seed in
        apply ~add:(S.add t) ~del:(fun id iv -> ignore (S.remove t id iv));
        Hashtbl.reset mirror;
        Array.iter
          (function
            | Fault.Add { id; iv } -> Hashtbl.replace mirror id iv
            | Fault.Remove { id; _ } -> Hashtbl.remove mirror id
            | _ -> ())
          stream;
        (S.name, S.audit t ~entries:(mirror_entries mirror)))
      index_drivers
  in
  let bt : int Fbt.t = Fbt.create () in
  apply
    ~add:(fun id iv -> Fbt.insert bt (I.lo iv) id)
    ~del:(fun id iv -> ignore (Fbt.remove_first bt (I.lo iv) (fun id' -> id' = id)));
  let tr = Tracker.create ~alpha:0.05 ~seed () in
  apply ~add:(fun id iv -> Tracker.insert tr (id, iv)) ~del:(fun id iv -> ignore (Tracker.delete tr (id, iv)));
  let lp = Lazy_p.create ~seed () in
  apply ~add:(fun id iv -> Lazy_p.insert lp (id, iv)) ~del:(fun id iv -> ignore (Lazy_p.delete lp (id, iv)));
  let rp = Refined_p.create ~seed () in
  apply ~add:(fun id iv -> Refined_p.insert rp (id, iv)) ~del:(fun id iv -> ignore (Refined_p.delete rp (id, iv)));
  let eng = Engine.create ~alpha:0.1 ~seed ~backend () in
  let rng = Rng.create (seed + 0x9e37) in
  let subs = ref [] and rs = ref [] and ss = ref [] in
  let pick l = match !l with [] -> None | xs -> Some (List.nth xs (Rng.int rng (List.length xs))) in
  Array.iter
    (fun op ->
      match op with
      | Fault.Sub_band { range } ->
          subs := Engine.subscribe_band eng ~range (fun _ _ -> ()) :: !subs
      | Fault.Sub_select { range_a; range_c } ->
          subs := Engine.subscribe_select eng ~range_a ~range_c (fun _ _ -> ()) :: !subs
      | Fault.Unsub_random -> (
          match pick subs with
          | None -> ()
          | Some sub ->
              ignore (Engine.unsubscribe eng sub);
              subs := List.filter (fun s -> s != sub) !subs)
      | Fault.Ins_r { a; b } -> rs := fst (Engine.insert_r eng ~a ~b) :: !rs
      | Fault.Ins_s { b; c } -> ss := fst (Engine.insert_s eng ~b ~c) :: !ss
      | Fault.Del_r_random -> (
          match pick rs with
          | None -> ()
          | Some r ->
              ignore (Engine.delete_r eng r);
              rs := List.filter (fun r' -> r'.Tuple.rid <> r.rid) !rs)
      | Fault.Del_s_random -> (
          match pick ss with
          | None -> ()
          | Some s ->
              ignore (Engine.delete_s eng s);
              ss := List.filter (fun s' -> s'.Tuple.sid <> s.sid) !ss)
      | Fault.Reject_ins_r _ | Fault.Reject_sub_band -> ())
    (Fault.gen_engine ~seed ~n:(max 100 (n / 10)));
  let reports =
    index_reports
    @ [
        ("btree", Fbt_audit.audit bt);
        ("hotspot_tracker", Tracker_audit.audit tr);
        ("lazy_partition", Lazy_audit.audit ~name:"lazy_partition" lp);
        ("refined_partition", Refined_audit.audit ~name:"refined_partition" rp);
        ("engine", Invariant.engine eng);
      ]
  in
  let dur_ns = Int64.sub (Cq_util.Clock.monotonic_ns ()) audit_start in
  Metrics.set (Metrics.gauge "oracle.audit.elapsed_ms") (Int64.to_float dur_ns /. 1e6);
  Metrics.add (Metrics.counter "oracle.audit.ops") n;
  Metrics.add (Metrics.counter "oracle.audit.structures") (List.length reports);
  Trace.add_span ~cat:"oracle" ~name:"oracle.audit_workload" ~ts_ns:audit_start ~dur_ns ();
  reports

let fuzz_all ?backend ?(shards = 2) ~seed ~ops () =
  let engine_ops = max 200 (ops / 10) in
  List.map (fun d -> run_index d ~seed ~ops) index_drivers
  @ [
      run_btree ~seed ~ops;
      run_tracker ~seed ~ops ();
      run_lazy_partition ~seed ~ops;
      run_refined_partition ~seed ~ops;
      run_engine ?backend ~seed ~ops:engine_ops ();
      run_batch ?backend ~seed ~ops:engine_ops ();
      run_parallel ~shards ~seed ~ops:engine_ops ();
      run_shed_adaptive ~seed ~ops:engine_ops ();
    ]

(* Served-vs-direct differential check: the same seeded workload runs
   once through the network front-end (Cq_net.Driver's lockstep
   loopback harness — real sockets, real frames, a real multi-session
   server) and once straight into an identically configured parallel
   engine, and every session's result stream must match bit-for-bit:
   same qid assignment, same rows, same order.  Lockstep driving plus
   the server's read/flush/write tick make the served order
   deterministic, so this is an equality check, not a multiset one. *)
module Netd = Cq_net.Driver

let run_serve ?(sessions = 4) ?(shards = 2) ~seed ~ops () =
  let run = make_run (Printf.sprintf "serve[%d]" sessions) seed in
  let n_batches = max 2 (ops / 20) in
  let w =
    Netd.gen_workload ~seed ~sessions ~queries_per_session:2 ~batches:n_batches
      ~rows_per_batch:8
  in
  let cfg = { Cq_engine.Engine.Config.default with shards; seed } in
  let total_rows =
    Array.fold_left (fun acc (b : Netd.batch_spec) -> acc + Array.length b.rows) 0 w.batches
  in
  (try
     match Netd.run_workload ~engine:cfg w with
     | Error e -> diverge run 0 "served run failed: %s" (Cq_net.Client.error_to_string e)
     | Ok oc ->
         if oc.server.net_results_dropped <> 0 then
           diverge run 0 "lockstep run dropped %d result rows — queues were sized not to"
             oc.server.net_results_dropped
         else begin
           (* Direct replay: same config, same flat-batch path, same
              session-major registration order, one flush per batch
              (the server flushes every ingest tick under lockstep). *)
           let par = Cq_util.Error.ok_exn (Par.try_create_cfg cfg) in
           let recording = ref true in
           let direct = Array.make sessions [] in
           let next_qid = ref 1 in
           let expect_qids =
             Array.mapi
               (fun i specs ->
                 Array.map
                   (fun spec ->
                     let qid = !next_qid in
                     incr next_qid;
                     let cb (r : Tuple.r) (s : Tuple.s) =
                       if !recording then
                         direct.(i) <- (qid, (r.a, r.b, s.b, s.c)) :: direct.(i)
                     in
                     (match spec with
                     | Netd.Band { lo; hi } ->
                         ignore (Par.subscribe_band par ~range:(I.make lo hi) cb)
                     | Netd.Select { a_lo; a_hi; c_lo; c_hi } ->
                         ignore
                           (Par.subscribe_select par ~range_a:(I.make a_lo a_hi)
                              ~range_c:(I.make c_lo c_hi) cb));
                     qid)
                   specs)
               w.queries
           in
           Array.iter
             (fun (b : Netd.batch_spec) ->
               let side = match b.side with Cq_net.Frame.R -> Par.R | Cq_net.Frame.S -> Par.S in
               (match Par.try_ingest_batch_flat par side (Netd.batch_of_rows b.rows) with
               | Ok () -> ()
               | Error e -> diverge run 0 "direct ingest failed: %s" (Cq_util.Error.to_string e));
               ignore (Par.flush par))
             w.batches;
           ignore (Par.flush par);
           recording := false;
           Par.shutdown par;
           if not (Array.for_all2 (fun a b -> a = b) expect_qids oc.qids) then
             diverge run 0 "qid assignment differs between served and direct runs"
           else
             Array.iteri
               (fun i frames ->
                 if Option.is_none run.div then begin
                   let served =
                     List.concat_map
                       (fun (qid, rows) ->
                         List.map (fun row -> (qid, row)) (Array.to_list rows))
                       (Array.to_list frames)
                   in
                   let expect = List.rev direct.(i) in
                   let ns = List.length served and ne = List.length expect in
                   if ns <> ne then
                     diverge run i "session %d: served %d result rows, direct run has %d" i
                       ns ne
                   else
                     List.iteri
                       (fun k ((q1, r1), (q2, r2)) ->
                         if Option.is_none run.div && not (q1 = q2 && r1 = r2) then
                           let p1 (a, b, c, d) =
                             Printf.sprintf "(%.17g, %.17g, %.17g, %.17g)" a b c d
                           in
                           diverge run k
                             "session %d row %d: served q%d %s, direct q%d %s" i k q1
                             (p1 r1) q2 (p1 r2))
                       (List.combine served expect)
                 end)
               oc.results
         end
   with exn -> diverge run 0 "uncaught exception: %s" (Printexc.to_string exn));
  finish run ~ops:total_rows ~final_size:total_rows
