module I = Cq_interval.Interval

type violation = { structure : string; check : string; detail : string }
type report = (unit, violation list) result

let pp_violation fmt v = Format.fprintf fmt "[%s/%s] %s" v.structure v.check v.detail

let pp_report fmt = function
  | Ok () -> Format.fprintf fmt "ok"
  | Error vs ->
      Format.fprintf fmt "%d violation(s):" (List.length vs);
      List.iter (fun v -> Format.fprintf fmt "@,  %a" pp_violation v) vs

(* Violations accumulate so one audit reports every broken invariant,
   not just the first; [guard] converts the Corrupt-raising
   check_invariants style (Cq_util.Error.corrupt) into a recorded
   violation. *)
type ctx = { structure : string; mutable acc : violation list }

let ctx structure = { structure; acc = [] }
let push c check detail = c.acc <- { structure = c.structure; check; detail } :: c.acc
let pushf c check fmt = Printf.ksprintf (push c check) fmt

let guard c check f =
  try f () with
  | Cq_util.Error.Cq_error (Corrupt { detail; _ }) -> push c check detail
  | Cq_util.Error.Cq_error e -> push c check (Cq_util.Error.to_string e)
  | Failure msg -> push c check msg
  | exn -> push c check (Printexc.to_string exn)

let seal c = match List.rev c.acc with [] -> Ok () | vs -> Error vs

let merge reports =
  let vs =
    List.concat_map (function Ok () -> [] | Error vs -> vs) reports
  in
  if List.is_empty vs then Ok () else Error vs

(* Cap the quadratic cross-checks: probe at most [limit] positions
   spread evenly over the entries. *)
let sample limit xs =
  let n = List.length xs in
  if n <= limit then xs
  else
    let step = n / limit in
    List.filteri (fun i _ -> i mod step = 0) xs

(* ------------------------------------------------------------------ *)
(* Interval tree                                                        *)
(* ------------------------------------------------------------------ *)

module It = Cq_index.Interval_tree

let stab_probes entries = sample 24 (List.concat_map (fun iv -> [ I.lo iv; I.hi iv ]) entries)

let interval_tree (t : 'a It.t) : report =
  let c = ctx "interval_tree" in
  guard c "avl" (fun () -> It.check_invariants t);
  let entries = List.map fst (It.to_list t) in
  let n = List.length entries in
  if n <> It.size t then pushf c "size" "size reports %d but %d entries listed" (It.size t) n;
  List.iter (fun iv -> if I.is_empty iv then push c "entries" "stored interval is empty") entries;
  List.iter
    (fun x ->
      let want = List.length (List.filter (fun iv -> I.stabs iv x) entries) in
      let got = It.stab_count t x in
      if got <> want then pushf c "stab" "stab_count at %g is %d, expected %d" x got want;
      let listed = It.stab_list t x in
      if List.length listed <> got then pushf c "stab" "stab_list/stab_count disagree at %g" x;
      List.iter
        (fun (iv, _) ->
          if not (I.stabs iv x) then pushf c "stab" "reported interval %s misses %g" (I.to_string iv) x)
        listed)
    (stab_probes entries);
  seal c

(* ------------------------------------------------------------------ *)
(* Interval skip list (no iteration API: probes supplied by caller)     *)
(* ------------------------------------------------------------------ *)

module Isl = Cq_index.Interval_skiplist

let interval_skiplist ?(probes = []) ~expected:(count_at : float -> int)
    (t : 'a Isl.t) : report =
  let c = ctx "interval_skiplist" in
  guard c "markers" (fun () -> Isl.check_invariants t);
  List.iter
    (fun x ->
      let listed = Isl.stab_list t x in
      let got = Isl.stab_count t x in
      if List.length listed <> got then pushf c "stab" "stab_list/stab_count disagree at %g" x;
      let want = count_at x in
      if got <> want then pushf c "stab" "stab_count at %g is %d, expected %d" x got want;
      List.iter
        (fun (iv, _) ->
          if not (I.stabs iv x) then pushf c "stab" "reported interval %s misses %g" (I.to_string iv) x)
        listed)
    (sample 24 probes);
  seal c

(* ------------------------------------------------------------------ *)
(* Priority search tree                                                 *)
(* ------------------------------------------------------------------ *)

module Pst = Cq_index.Priority_search_tree

let priority_search_tree (t : 'a Pst.t) : report =
  let c = ctx "priority_search_tree" in
  guard c "bst+heap" (fun () -> Pst.check_invariants t);
  let entries = ref [] in
  Pst.iter (fun iv _ -> entries := iv :: !entries) t;
  let entries = !entries in
  let n = List.length entries in
  if n <> Pst.size t then pushf c "size" "size reports %d but %d entries listed" (Pst.size t) n;
  List.iter
    (fun x ->
      let want = List.length (List.filter (fun iv -> I.stabs iv x) entries) in
      let got = Pst.stab_count t x in
      if got <> want then pushf c "stab" "stab_count at %g is %d, expected %d" x got want;
      match Pst.stab_any t x with
      | Some (iv, _) ->
          if want = 0 then pushf c "stab_any" "stab_any found an entry at unstabbed %g" x
          else if not (I.stabs iv x) then pushf c "stab_any" "stab_any interval misses %g" x
      | None -> if want > 0 then pushf c "stab_any" "stab_any missed %d entries at %g" want x)
    (stab_probes entries);
  seal c

(* ------------------------------------------------------------------ *)
(* Any stabbing backend, audited through the common S signature        *)
(* ------------------------------------------------------------------ *)

module Stab (B : Cq_index.Stab_backend.S) = struct
  let audit ~(interval : 'a -> I.t) (t : 'a B.t) : report =
    let c = ctx ("stab:" ^ B.name) in
    guard c "internal" (fun () -> B.check_invariants t);
    let entries = ref [] in
    B.iter t (fun p -> entries := interval p :: !entries);
    let entries = !entries in
    let n = List.length entries in
    if n <> B.size t then pushf c "size" "size reports %d but %d entries listed" (B.size t) n;
    List.iter (fun iv -> if I.is_empty iv then push c "entries" "stored interval is empty") entries;
    List.iter
      (fun x ->
        let want = List.length (List.filter (fun iv -> I.stabs iv x) entries) in
        let got = ref 0 in
        B.stab t x (fun p ->
            incr got;
            if not (I.stabs (interval p) x) then
              pushf c "stab" "reported interval %s misses %g" (I.to_string (interval p)) x);
        if !got <> want then
          pushf c "stab" "stab at %g visits %d entries, expected %d" x !got want)
      (stab_probes entries);
    seal c
end

(* ------------------------------------------------------------------ *)
(* R-tree                                                               *)
(* ------------------------------------------------------------------ *)

module Rect = Cq_index.Rect
module Rtree = Cq_index.Rtree

let rtree (t : 'a Rtree.t) : report =
  let c = ctx "rtree" in
  guard c "mbr" (fun () -> Rtree.check_invariants t);
  let rects = ref [] in
  Rtree.iter t (fun r _ -> rects := r :: !rects);
  let rects = !rects in
  let n = List.length rects in
  if n <> Rtree.size t then pushf c "size" "size reports %d but %d entries listed" (Rtree.size t) n;
  List.iter (fun r -> if Rect.is_empty r then push c "entries" "stored rectangle is empty") rects;
  List.iter
    (fun (r : Rect.t) ->
      let x = I.midpoint r.x and y = I.midpoint r.y in
      let want = List.length (List.filter (fun r' -> Rect.contains_point r' ~x ~y) rects) in
      let got = Rtree.stab_count t ~x ~y in
      if got <> want then
        pushf c "stab" "stab_count at (%g, %g) is %d, expected %d" x y got want)
    (sample 16 rects);
  seal c

(* ------------------------------------------------------------------ *)
(* B+-tree                                                              *)
(* ------------------------------------------------------------------ *)

module Btree (K : Cq_index.Btree.ORDERED) (B : module type of Cq_index.Btree.Make (K)) =
struct
  let audit (t : 'a B.t) : report =
    let c = ctx "btree" in
    guard c "structure" (fun () -> B.check_invariants t);
    let entries = B.to_list t in
    let keys = List.map fst entries in
    let n = List.length entries in
    if n <> B.length t then pushf c "size" "length reports %d but %d entries listed" (B.length t) n;
    let rec sorted = function
      | k1 :: (k2 :: _ as tl) -> K.compare k1 k2 <= 0 && sorted tl
      | _ -> true
    in
    if not (sorted keys) then push c "order" "to_list is not in key order";
    (match (B.min_entry t, keys) with
    | Some (k, _), k0 :: _ ->
        if K.compare k k0 <> 0 then push c "min" "min_entry disagrees with to_list"
    | None, [] -> ()
    | _ -> push c "min" "min_entry presence disagrees with to_list");
    (match (B.max_entry t, List.rev keys) with
    | Some (k, _), kn :: _ ->
        if K.compare k kn <> 0 then push c "max" "max_entry disagrees with to_list"
    | None, [] -> ()
    | _ -> push c "max" "max_entry presence disagrees with to_list");
    (match (keys, List.rev keys) with
    | k0 :: _, kn :: _ ->
        let spanned = B.count_range t ~lo:k0 ~hi:kn in
        if spanned <> n then pushf c "count_range" "full span counts %d of %d entries" spanned n
    | _ -> ());
    List.iter
      (fun k ->
        let want = List.length (List.filter (fun k' -> K.compare k k' = 0) keys) in
        let found = List.length (B.find_all t k) in
        if found <> want then pushf c "find_all" "finds %d duplicates, expected %d" found want;
        if B.count_range t ~lo:k ~hi:k <> want then push c "count_range" "point range disagrees with find_all";
        let left, right = B.neighbours t k in
        (match left with
        | Some (kl, _) ->
            if K.compare kl k > 0 then push c "neighbours" "left neighbour exceeds the key"
        | None -> if List.exists (fun k' -> K.compare k' k <= 0) keys then push c "neighbours" "left neighbour missing");
        match right with
        | Some (kr, _) ->
            if K.compare kr k < 0 then push c "neighbours" "right neighbour precedes the key"
        | None -> if List.exists (fun k' -> K.compare k' k >= 0) keys then push c "neighbours" "right neighbour missing")
      (sample 16 keys);
    seal c
end

(* ------------------------------------------------------------------ *)
(* Treap                                                                *)
(* ------------------------------------------------------------------ *)

module Treap (E : Cq_index.Treap.ELEMENT) (T : module type of Cq_index.Treap.Make (E)) =
struct
  let audit (t : T.t) : report =
    let c = ctx "treap" in
    guard c "heap+bst+isect" (fun () -> T.check_invariants t);
    let xs = T.to_list t in
    let n = List.length xs in
    if n <> T.size t then pushf c "size" "size reports %d but %d elements listed" (T.size t) n;
    let rec sorted = function
      | a :: (b :: _ as tl) -> E.compare a b <= 0 && sorted tl
      | _ -> true
    in
    if not (sorted xs) then push c "order" "to_list is not in element order";
    List.iter (fun e -> if not (T.mem e t) then push c "mem" "listed element fails mem") (sample 32 xs);
    (match (T.min_elt t, xs) with
    | Some m, x :: _ -> if E.compare m x <> 0 then push c "min_elt" "min_elt disagrees with to_list"
    | None, [] -> ()
    | _ -> push c "min_elt" "min_elt presence disagrees with to_list");
    (* The root augmentation must equal the members' true common
       intersection exactly — the refined partition trusts it. *)
    let want =
      List.fold_left (fun acc e -> I.inter acc (E.interval e)) (I.make neg_infinity infinity) xs
    in
    let got = T.isect t in
    if n > 0 && not (I.equal got want) then
      pushf c "isect" "augmented intersection %s, recomputed %s" (I.to_string got)
        (I.to_string want);
    seal c
end

(* ------------------------------------------------------------------ *)
(* Stabbing partitions (lazy and refined)                               *)
(* ------------------------------------------------------------------ *)

module Partition
    (E : Hotspot_core.Partition_intf.ELEMENT)
    (P : Hotspot_core.Partition_intf.S with type elt = E.t) =
struct
  let audit ?(name = "partition") (p : P.t) : report =
    let c = ctx name in
    guard c "internal" (fun () -> P.check_invariants p);
    let groups = P.groups p in
    if not (Hotspot_core.Stabbing.is_valid_partition E.interval groups) then
      push c "stabbing" "some member is not stabbed by its group's stabbing point";
    if List.length groups <> P.num_groups p then
      pushf c "groups" "num_groups reports %d but %d groups listed" (P.num_groups p)
        (List.length groups);
    let members = List.concat_map snd groups in
    if List.length members <> P.size p then
      pushf c "size" "groups hold %d elements but size reports %d" (List.length members) (P.size p);
    List.iter
      (fun e ->
        if not (P.mem p e) then push c "mem" "listed element fails mem";
        guard c "group_of" (fun () ->
            let gid = P.group_of p e in
            let gms = P.group_members p gid in
            if not (List.exists (fun e' -> E.compare e e' = 0) gms) then
              Cq_util.Error.corrupt ~structure:"partition" "group_of does not round-trip through group_members"))
      (sample 48 members);
    seal c
end

(* ------------------------------------------------------------------ *)
(* Hotspot tracker                                                      *)
(* ------------------------------------------------------------------ *)

module Tracker
    (E : Hotspot_core.Partition_intf.ELEMENT)
    (T : module type of Hotspot_core.Hotspot_tracker.Make (E)) =
struct
  let audit (tr : T.t) : report =
    let c = ctx "hotspot_tracker" in
    guard c "I1-I3" (fun () -> T.check_invariants tr);
    let hotspots = T.hotspots tr in
    let scattered = T.scattered tr in
    if List.length hotspots <> T.num_hotspots tr then
      pushf c "hot" "num_hotspots reports %d but %d groups listed" (T.num_hotspots tr)
        (List.length hotspots);
    if List.length scattered <> T.scattered_count tr then
      pushf c "scattered" "scattered_count reports %d but %d elements listed"
        (T.scattered_count tr) (List.length scattered);
    let hot_total = List.fold_left (fun acc (_, _, ms) -> acc + List.length ms) 0 hotspots in
    if hot_total + List.length scattered <> T.size tr then
      pushf c "size" "%d hot + %d scattered but size reports %d" hot_total
        (List.length scattered) (T.size tr);
    List.iter
      (fun (gid, stab, members) ->
        if List.is_empty members then pushf c "hot" "hotspot %d has no members" gid;
        List.iter
          (fun e ->
            if not (I.stabs (E.interval e) stab) then
              pushf c "hot" "hotspot %d: member not stabbed by the group point %g" gid stab;
            (match T.hotspot_of tr e with
            | Some g when g = gid -> ()
            | Some g -> pushf c "where_hot" "member of hotspot %d resolves to hotspot %d" gid g
            | None -> pushf c "where_hot" "member of hotspot %d resolves to no hotspot" gid);
            if not (T.mem tr e) then pushf c "mem" "hotspot %d member fails mem" gid)
          members)
      hotspots;
    List.iter
      (fun e ->
        (match T.hotspot_of tr e with
        | Some g -> pushf c "scattered" "scattered element resolves to hotspot %d" g
        | None -> ());
        if not (T.mem tr e) then push c "mem" "scattered element fails mem")
      (sample 48 scattered);
    let cov = T.coverage tr in
    if cov < -.1e-9 || cov > 1.0 +. 1e-9 then pushf c "coverage" "coverage %g outside [0, 1]" cov;
    seal c
end

(* ------------------------------------------------------------------ *)
(* Engine                                                               *)
(* ------------------------------------------------------------------ *)

let engine (e : Cq_engine.Engine.t) : report =
  let c = ctx "engine" in
  guard c "internal" (fun () -> Cq_engine.Engine.check_invariants e);
  seal c
