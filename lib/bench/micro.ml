(* Bechamel micro-benchmarks over the core operations: one Test.make
   per operation, all collected into a single run. *)

open Bechamel
module I = Cq_interval.Interval
module BQ = Cq_joins.Band_query
module Fbt = Cq_relation.Table.Fbt
module Itree = Cq_index.Interval_tree
module P = Hotspot_core.Refined_partition.Make (BQ.Elem)
module T = Hotspot_core.Hotspot_tracker.Make (BQ.Elem)

let ranges n seed =
  let rng = Cq_util.Rng.create seed in
  Cq_relation.Workload.gen_clustered_ranges rng ~n ~n_clusters:30 ~clustered_frac:0.8
    ~domain:(0.0, 10_000.0) ~cluster_halfwidth:80.0 ~len_mu:400.0 ~len_sigma:150.0

let tests () =
  let n = 10_000 in
  let rs = ranges n 1 in
  let queries = Array.mapi (fun qid range -> BQ.make ~qid ~range) rs in
  (* Pre-built structures probed by the benchmarks. *)
  let bt = Fbt.create () in
  Array.iteri (fun i r -> Fbt.insert bt (I.midpoint r) i) rs;
  let it = Itree.Mutable.create () in
  Array.iteri (fun i r -> Itree.Mutable.add it r i) rs;
  let part = P.create ~epsilon:1.0 () in
  Array.iter (fun q -> P.insert part q) queries;
  let tracker = T.create ~alpha:0.005 () in
  Array.iter (fun q -> T.insert tracker q) (Array.sub queries 0 (n / 2));
  let rng = Cq_util.Rng.create 99 in
  let probe () = Cq_util.Dist.uniform rng ~lo:0.0 ~hi:10_000.0 in
  let counter = ref n in
  let rt = Cq_index.Rtree.create ~max_entries:8 () in
  Array.iteri
    (fun i r ->
      Cq_index.Rtree.insert rt
        (Cq_index.Rect.make ~x:r ~y:(I.of_midpoint ~mid:(I.midpoint r) ~len:(I.length r)))
        i)
    rs;
  let sl = Cq_index.Interval_skiplist.create ~seed:7 () in
  Array.iteri (fun i r -> Cq_index.Interval_skiplist.add sl r i) rs;
  let pst = Cq_index.Priority_search_tree.Mutable.create ~seed:7 () in
  Array.iteri (fun i r -> Cq_index.Priority_search_tree.Mutable.add pst r i) rs;
  [
    Test.make ~name:"rtree.point_stab"
      (Staged.stage (fun () ->
           ignore (Cq_index.Rtree.stab_count rt ~x:(probe ()) ~y:(probe ()))));
    Test.make ~name:"interval_skiplist.stab"
      (Staged.stage (fun () -> ignore (Cq_index.Interval_skiplist.stab_count sl (probe ()))));
    Test.make ~name:"pst.stab_any"
      (Staged.stage (fun () ->
           ignore (Cq_index.Priority_search_tree.Mutable.stab_any pst (probe ()))));
    Test.make ~name:"btree.seek_ge" (Staged.stage (fun () -> ignore (Fbt.seek_ge bt (probe ()))));
    Test.make ~name:"btree.insert+delete"
      (Staged.stage (fun () ->
           let k = probe () in
           Fbt.insert bt k (-1);
           ignore (Fbt.remove_first bt k (fun v -> v = -1))));
    Test.make ~name:"interval_tree.stab"
      (Staged.stage (fun () -> ignore (Itree.Mutable.stab_count it (probe ()))));
    Test.make ~name:"interval_tree.add+remove"
      (Staged.stage (fun () ->
           let iv = I.of_midpoint ~mid:(probe ()) ~len:300.0 in
           Itree.Mutable.add it iv (-1);
           ignore (Itree.Mutable.remove it iv (fun v -> v = -1))));
    Test.make ~name:"canonical_partition.build(1k)"
      (Staged.stage
         (let sub = Array.sub queries 0 1000 in
          fun () -> ignore (Hotspot_core.Stabbing.canonical BQ.Elem.interval sub)));
    Test.make ~name:"refined_partition.insert+delete"
      (Staged.stage (fun () ->
           incr counter;
           let q = BQ.make ~qid:!counter ~range:(I.of_midpoint ~mid:(probe ()) ~len:400.0) in
           P.insert part q;
           ignore (P.delete part q)));
    Test.make ~name:"hotspot_tracker.insert+delete"
      (Staged.stage (fun () ->
           incr counter;
           let q = BQ.make ~qid:!counter ~range:(I.of_midpoint ~mid:(probe ()) ~len:400.0) in
           T.insert tracker q;
           ignore (T.delete tracker q)));
  ]

let run () =
  Report.section "micro" "Bechamel micro-benchmarks (ns per op, OLS on monotonic clock)";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let rows =
    List.map
      (fun test ->
        let results = Benchmark.all cfg [ instance ] test in
        let analyzed = Analyze.all ols instance results in
        Hashtbl.fold
          (fun name ols_result acc ->
            let est =
              match Analyze.OLS.estimates ols_result with
              | Some [ e ] -> Report.fmt_ns e
              | _ -> "n/a"
            in
            [ name; est ] :: acc)
          analyzed [])
      (tests ())
    |> List.concat
    |> List.sort (List.compare String.compare)
  in
  Report.table ~header:[ "operation"; "time/op" ] ~rows
