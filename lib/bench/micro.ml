(* Bechamel micro-benchmarks over the core operations: one Test.make
   per operation, all collected into a single run — plus the ingest
   allocation/latency measurements (Gc.minor_words deltas and p99
   per-event latency over the engine ingest spine). *)

open Bechamel
module I = Cq_interval.Interval
module BQ = Cq_joins.Band_query
module Fbt = Cq_relation.Table.Fbt
module Itree = Cq_index.Interval_tree
module P = Hotspot_core.Refined_partition.Make (BQ.Elem)
module T = Hotspot_core.Hotspot_tracker.Make (BQ.Elem)

let ranges n seed =
  let rng = Cq_util.Rng.create seed in
  Cq_relation.Workload.gen_clustered_ranges rng ~n ~n_clusters:30 ~clustered_frac:0.8
    ~domain:(0.0, 10_000.0) ~cluster_halfwidth:80.0 ~len_mu:400.0 ~len_sigma:150.0

let tests () =
  let n = 10_000 in
  let rs = ranges n 1 in
  let queries = Array.mapi (fun qid range -> BQ.make ~qid ~range) rs in
  (* Pre-built structures probed by the benchmarks. *)
  let bt = Fbt.create () in
  Array.iteri (fun i r -> Fbt.insert bt (I.midpoint r) i) rs;
  let it = Itree.Mutable.create () in
  Array.iteri (fun i r -> Itree.Mutable.add it r i) rs;
  let part = P.create ~epsilon:1.0 () in
  Array.iter (fun q -> P.insert part q) queries;
  let tracker = T.create ~alpha:0.005 () in
  Array.iter (fun q -> T.insert tracker q) (Array.sub queries 0 (n / 2));
  let rng = Cq_util.Rng.create 99 in
  let probe () = Cq_util.Dist.uniform rng ~lo:0.0 ~hi:10_000.0 in
  let counter = ref n in
  let rt = Cq_index.Rtree.create ~max_entries:8 () in
  Array.iteri
    (fun i r ->
      Cq_index.Rtree.insert rt
        (Cq_index.Rect.make ~x:r ~y:(I.of_midpoint ~mid:(I.midpoint r) ~len:(I.length r)))
        i)
    rs;
  let sl = Cq_index.Interval_skiplist.create ~seed:7 () in
  Array.iteri (fun i r -> Cq_index.Interval_skiplist.add sl r i) rs;
  let pst = Cq_index.Priority_search_tree.Mutable.create ~seed:7 () in
  Array.iteri (fun i r -> Cq_index.Priority_search_tree.Mutable.add pst r i) rs;
  [
    Test.make ~name:"rtree.point_stab"
      (Staged.stage (fun () ->
           ignore (Cq_index.Rtree.stab_count rt ~x:(probe ()) ~y:(probe ()))));
    Test.make ~name:"interval_skiplist.stab"
      (Staged.stage (fun () -> ignore (Cq_index.Interval_skiplist.stab_count sl (probe ()))));
    Test.make ~name:"pst.stab_any"
      (Staged.stage (fun () ->
           ignore (Cq_index.Priority_search_tree.Mutable.stab_any pst (probe ()))));
    Test.make ~name:"btree.seek_ge" (Staged.stage (fun () -> ignore (Fbt.seek_ge bt (probe ()))));
    Test.make ~name:"btree.insert+delete"
      (Staged.stage (fun () ->
           let k = probe () in
           Fbt.insert bt k (-1);
           ignore (Fbt.remove_first bt k (fun v -> v = -1))));
    Test.make ~name:"interval_tree.stab"
      (Staged.stage (fun () -> ignore (Itree.Mutable.stab_count it (probe ()))));
    Test.make ~name:"interval_tree.add+remove"
      (Staged.stage (fun () ->
           let iv = I.of_midpoint ~mid:(probe ()) ~len:300.0 in
           Itree.Mutable.add it iv (-1);
           ignore (Itree.Mutable.remove it iv (fun v -> v = -1))));
    Test.make ~name:"canonical_partition.build(1k)"
      (Staged.stage
         (let sub = Array.sub queries 0 1000 in
          fun () -> ignore (Hotspot_core.Stabbing.canonical BQ.Elem.interval sub)));
    Test.make ~name:"refined_partition.insert+delete"
      (Staged.stage (fun () ->
           incr counter;
           let q = BQ.make ~qid:!counter ~range:(I.of_midpoint ~mid:(probe ()) ~len:400.0) in
           P.insert part q;
           ignore (P.delete part q)));
    Test.make ~name:"hotspot_tracker.insert+delete"
      (Staged.stage (fun () ->
           incr counter;
           let q = BQ.make ~qid:!counter ~range:(I.of_midpoint ~mid:(probe ()) ~len:400.0) in
           T.insert tracker q;
           ignore (T.delete tracker q)));
  ]

(* ------------------------------------------------------------------ *)
(* Ingest-path allocation and latency                                  *)
(*                                                                     *)
(* Engine-level, deterministic workload; allocations are measured as   *)
(* Gc minor/promoted word deltas per ingested tuple, latency as p50/   *)
(* p99 over per-event monotonic-clock timings.  Two scenarios:         *)
(*   spine   — no subscriptions; the pure relation->engine storage     *)
(*             path (the headline allocs/op number)                    *)
(*   queried — a live band+select query population, so per-event work  *)
(*             includes group walks and result delivery.               *)
(* The seed capture of these numbers (out/BENCH_micro_seed.json) is    *)
(* the frozen baseline the batch path is compared against.             *)
(* ------------------------------------------------------------------ *)

module E = Cq_engine.Engine
module W = Cq_relation.Workload
module Batch = Cq_relation.Batch
module Stats = Cq_util.Stats

(* Frozen per-tuple baseline from the seed capture
   (out/BENCH_micro_seed.json, commit before the flat-batch refactor):
   minor words per ingested tuple on the spine / queried scenarios.
   The batch path's reduction_vs_seed metrics divide against these. *)
let seed_spine_allocs_per_op = 317.48
let seed_queried_allocs_per_op = 31525.28

type ingest_measure = {
  mi_allocs : float;  (* minor words / op *)
  mi_promoted : float;  (* promoted words / op *)
  mi_p50_ns : float;
  mi_p99_ns : float;
}

let ingest_rows ~n ~seed =
  let c = W.default in
  let s_rows =
    Array.map
      (fun (s : Cq_relation.Tuple.s) -> (s.b, s.c))
      (W.gen_s_tuples c (Cq_util.Rng.create seed) ~n)
  in
  let r_rows =
    Array.map
      (fun (r : Cq_relation.Tuple.r) -> (r.a, r.b))
      (W.gen_r_tuples c (Cq_util.Rng.create (seed + 1)) ~n)
  in
  (s_rows, r_rows)

(* Band offsets cluster near zero (the realistic band-join shape, as in
   the cqctl demo workload) so per-event work is dominated by group
   walks, not result fan-out; select queries follow Table 1. *)
let subscribe_queries eng ~seed ~n_band ~n_select =
  let rng = Cq_util.Rng.create seed in
  Array.iter
    (fun range -> ignore (E.subscribe_band eng ~range (fun _ _ -> ())))
    (W.gen_clustered_ranges ~scattered_len:(10.0, 4.0) rng ~n:n_band ~n_clusters:8
       ~clustered_frac:0.9 ~domain:(-500.0, 500.0) ~cluster_halfwidth:15.0 ~len_mu:40.0
       ~len_sigma:10.0);
  for _ = 1 to n_select do
    let mid_a = Cq_util.Dist.normal rng ~mu:5000.0 ~sigma:1500.0 in
    let mid_c = Cq_util.Dist.uniform rng ~lo:0.0 ~hi:10_000.0 in
    ignore
      (E.subscribe_select eng
         ~range_a:(I.of_midpoint ~mid:mid_a ~len:1000.0)
         ~range_c:(I.of_midpoint ~mid:mid_c ~len:300.0)
         (fun _ _ -> ()))
  done

(* One alternating S/R ingest step; [i] indexes into pre-generated row
   arrays so the allocation pass itself builds nothing. *)
let ingest_step eng s_rows r_rows i =
  if i land 1 = 0 then begin
    let b, c = s_rows.(i lsr 1) in
    ignore (E.insert_s eng ~b ~c)
  end
  else begin
    let a, b = r_rows.(i lsr 1) in
    ignore (E.insert_r eng ~a ~b)
  end

let measure_per_tuple ~queried ~n =
  let warmup = n / 4 in
  (* Enough rows for warmup + alloc pass + latency pass. *)
  let total = warmup + (2 * n) in
  let s_rows, r_rows = ingest_rows ~n:((total / 2) + 1) ~seed:42 in
  let eng = E.create ~seed:42 () in
  if queried then subscribe_queries eng ~seed:7 ~n_band:300 ~n_select:150;
  for i = 0 to warmup - 1 do
    ingest_step eng s_rows r_rows i
  done;
  Gc.minor ();
  let st0 = Gc.quick_stat () in
  let w0 = Gc.minor_words () in
  for i = warmup to warmup + n - 1 do
    ingest_step eng s_rows r_rows i
  done;
  let w1 = Gc.minor_words () in
  let st1 = Gc.quick_stat () in
  let fn = float_of_int n in
  let lat = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let j = warmup + n + i in
    let t0 = Cq_util.Clock.monotonic () in
    ingest_step eng s_rows r_rows j;
    lat.(i) <- (Cq_util.Clock.monotonic () -. t0) *. 1e9
  done;
  {
    mi_allocs = (w1 -. w0) /. fn;
    mi_promoted = (st1.Gc.promoted_words -. st0.Gc.promoted_words) /. fn;
    mi_p50_ns = Stats.percentile lat 50.0;
    mi_p99_ns = Stats.percentile lat 99.0;
  }

(* The flat-batch path over the same row streams: rows are pre-chunked
   into batches before measurement (construction is the producer's
   cost, not the ingest path's), then S and R batches alternate. *)
let batch_chunk = 512

let build_batches rows ~chunk =
  let n = Array.length rows in
  let nb = (n + chunk - 1) / chunk in
  Array.init nb (fun bi ->
      let off = bi * chunk in
      let len = min chunk (n - off) in
      let b = Batch.create ~capacity:len () in
      for i = 0 to len - 1 do
        let x, y = rows.(off + i) in
        Batch.push b ~x ~y
      done;
      b)

let measure_batch ~queried ~n =
  let chunk = batch_chunk in
  let warmup = n / 4 in
  let per_side = ((warmup + (2 * n)) / 2) + (2 * chunk) in
  let s_rows, r_rows = ingest_rows ~n:per_side ~seed:42 in
  let s_batches = build_batches s_rows ~chunk in
  let r_batches = build_batches r_rows ~chunk in
  let eng = E.create ~seed:42 () in
  if queried then subscribe_queries eng ~seed:7 ~n_band:300 ~n_select:150;
  let si = ref 0 and ri = ref 0 and toggle = ref false in
  let ingest_one ?on_event () =
    let len =
      if !toggle then begin
        let b = r_batches.(!ri) in
        incr ri;
        ignore (E.ingest_batch_r eng ?on_event b);
        Batch.length b
      end
      else begin
        let b = s_batches.(!si) in
        incr si;
        ignore (E.ingest_batch_s eng ?on_event b);
        Batch.length b
      end
    in
    toggle := not !toggle;
    len
  in
  let warmed = ref 0 in
  while !warmed < warmup do
    warmed := !warmed + ingest_one ()
  done;
  Gc.minor ();
  let st0 = Gc.quick_stat () in
  let w0 = Gc.minor_words () in
  let cnt = ref 0 in
  while !cnt < n do
    cnt := !cnt + ingest_one ()
  done;
  let w1 = Gc.minor_words () in
  let st1 = Gc.quick_stat () in
  let fn = float_of_int !cnt in
  (* Per-event latency from the post-event hook: the gap between
     consecutive hook firings is one event's processing time. *)
  let lat = Array.make (n + chunk) 0.0 in
  let li = ref 0 in
  let lcnt = ref 0 in
  while !lcnt < n do
    let prev = ref (Cq_util.Clock.monotonic ()) in
    let on_event _ =
      let now = Cq_util.Clock.monotonic () in
      if !li < Array.length lat then begin
        lat.(!li) <- (now -. !prev) *. 1e9;
        incr li
      end;
      prev := now
    in
    lcnt := !lcnt + ingest_one ~on_event ()
  done;
  let lat = Array.sub lat 0 !li in
  {
    mi_allocs = (w1 -. w0) /. fn;
    mi_promoted = (st1.Gc.promoted_words -. st0.Gc.promoted_words) /. fn;
    mi_p50_ns = Stats.percentile lat 50.0;
    mi_p99_ns = Stats.percentile lat 99.0;
  }

let ingest_row ~scenario ~path (m : ingest_measure) =
  Report.record_metric
    (Printf.sprintf "ingest_%s_%s_allocs_per_op" scenario path)
    m.mi_allocs "minor_words_per_op";
  Report.record_metric
    (Printf.sprintf "ingest_%s_%s_promoted_per_op" scenario path)
    m.mi_promoted "words_per_op";
  Report.record_metric
    (Printf.sprintf "ingest_%s_%s_p99_ns" scenario path)
    m.mi_p99_ns "ns";
  [
    scenario;
    path;
    Report.fmt_f m.mi_allocs;
    Report.fmt_f m.mi_promoted;
    Report.fmt_ns m.mi_p50_ns;
    Report.fmt_ns m.mi_p99_ns;
  ]

let ingest_run () =
  let spine = measure_per_tuple ~queried:false ~n:20_000 in
  let queried = measure_per_tuple ~queried:true ~n:4_000 in
  let spine_b = measure_batch ~queried:false ~n:20_000 in
  let queried_b = measure_batch ~queried:true ~n:4_000 in
  let rows =
    [
      ingest_row ~scenario:"spine" ~path:"per_tuple" spine;
      ingest_row ~scenario:"spine" ~path:"batch" spine_b;
      ingest_row ~scenario:"queried" ~path:"per_tuple" queried;
      ingest_row ~scenario:"queried" ~path:"batch" queried_b;
    ]
  in
  (* Headline acceptance metric: allocs-per-tuple reduction of the
     batch path against the frozen seed per-tuple capture. *)
  let reduction seed got = seed /. Float.max got 1e-9 in
  let spine_red = reduction seed_spine_allocs_per_op spine_b.mi_allocs in
  let queried_red = reduction seed_queried_allocs_per_op queried_b.mi_allocs in
  Report.record_metric "ingest_spine_batch_reduction_vs_seed" spine_red "x";
  Report.record_metric "ingest_queried_batch_reduction_vs_seed" queried_red "x";
  Report.note "seed per-tuple baseline: spine %.1f w/op, queried %.1f w/op"
    seed_spine_allocs_per_op seed_queried_allocs_per_op;
  Report.note "batch-path alloc reduction vs seed: spine %.1fx, queried %.1fx" spine_red
    queried_red;
  Report.table
    ~header:[ "scenario"; "path"; "minor w/op"; "promoted w/op"; "p50"; "p99" ]
    ~rows

let run () =
  Report.section "micro" "Bechamel micro-benchmarks (ns per op, OLS on monotonic clock)";
  ingest_run ();
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let rows =
    List.map
      (fun test ->
        let results = Benchmark.all cfg [ instance ] test in
        let analyzed = Analyze.all ols instance results in
        Hashtbl.fold
          (fun name ols_result acc ->
            let est =
              match Analyze.OLS.estimates ols_result with
              | Some [ e ] -> Report.fmt_ns e
              | _ -> "n/a"
            in
            [ name; est ] :: acc)
          analyzed [])
      (tests ())
    |> List.concat
    |> List.sort (List.compare String.compare)
  in
  Report.table ~header:[ "operation"; "time/op" ] ~rows
