(** Network front-end experiments (the [serve-sessions] entry). *)

val serve_sessions : Setup.scale -> unit
(** Concurrent loopback sessions vs per-batch request latency
    (send-to-ack p50/p99) and aggregate ingest throughput, with the
    server-side obs snapshot merged into the experiment's obs block. *)
