(** Multicore scaling experiments for {!Cq_engine.Parallel} — not from
    the paper (its 2006 evaluation is single-threaded), but the natural
    follow-on: the hotspot design partitions queries, so shards scale
    the dominant per-event identification term (Theorems 3/4) while
    replicating the O(log m) table store. *)

val scale_domains : Setup.scale -> unit
(** Sweep [scale.shards] over the fig10i-style band workload (coarse
    quantum, identification-dominated): per shard count, subscribe
    [scale.queries] band queries, preload S unmeasured, then time
    R-ingest + flush end-to-end.  Reports events/s, speedup vs the
    1-shard row, delivered-result counts (equal across rows, by the
    determinism property), per-shard imbalance, and the host's
    [Domain.recommended_domain_count] — on hosts with fewer cores than
    shards, expect slowdown, not speedup. *)
