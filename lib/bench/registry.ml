type exp = {
  id : string;
  title : string;
  run : Setup.scale -> unit;
}

let paper_exps =
  [
    { id = "table1"; title = "Experimental parameters"; run = Hist_exps.table1 };
    { id = "fig2"; title = "Zipf hotspot coverage"; run = Hist_exps.fig2 };
    { id = "fig7i"; title = "Select-join throughput vs #queries"; run = Sj_exps.fig7i };
    { id = "fig7ii"; title = "Select-join throughput vs #groups"; run = Sj_exps.fig7ii };
    { id = "fig8iii"; title = "Select-join vs R.A selectivity"; run = Sj_exps.fig8iii };
    { id = "fig8iv"; title = "Select-join vs S selectivity"; run = Sj_exps.fig8iv };
    { id = "fig9"; title = "Hotspot-based vs traditional"; run = Sj_exps.fig9 };
    { id = "fig10i"; title = "Band-join throughput vs #queries"; run = Bj_exps.fig10i };
    { id = "fig10ii"; title = "Band-join throughput vs #groups"; run = Bj_exps.fig10ii };
    { id = "fig11"; title = "Band-join maintenance cost"; run = Bj_exps.fig11 };
    { id = "fig12"; title = "Histogram quality"; run = Hist_exps.fig12 };
  ]

let scale_exps =
  [
    {
      id = "scale-domains";
      title = "Parallel engine: throughput vs shard count";
      run = Scale_exps.scale_domains;
    };
    {
      id = "overload";
      title = "Overload management: admission control and load shedding";
      run = Overload_exps.overload;
    };
    {
      id = "serve-sessions";
      title = "Network front-end: latency and throughput vs sessions";
      run = Serve_exps.serve_sessions;
    };
    {
      id = "rebalance-drift";
      title = "Adaptive shard rebalancing under hotspot drift";
      run = Rebalance_exps.rebalance_drift;
    };
  ]

let ablation_exps =
  [
    { id = "ablation-eps"; title = "Epsilon sweep"; run = Ablations.ab_eps };
    { id = "ablation-alpha"; title = "Alpha sweep"; run = Ablations.ab_alpha };
    {
      id = "ablation-maintainer";
      title = "Refined vs lazy maintainer";
      run = Ablations.ab_maintainer;
    };
    { id = "ablation-purist"; title = "SSI everywhere vs hotspots only"; run = Ablations.ab_purist };
    {
      id = "ablation-stab-index";
      title = "Interval tree vs interval skip list";
      run = Ablations.ab_stab_index;
    };
    {
      id = "ablation-backend";
      title = "Pluggable stabbing backends under the Hotspot processors";
      run = Ablations.ab_backend;
    };
    {
      id = "ablation-adaptive";
      title = "Cost-based per-event strategy choice";
      run = Ablations.ab_adaptive;
    };
  ]

let all = paper_exps @ scale_exps @ ablation_exps

let find id = List.find_opt (fun e -> e.id = id) all

let ids () = List.map (fun e -> e.id) all

let run_list scale exps =
  List.iter
    (fun e ->
      let _, dt = Cq_util.Clock.time (fun () -> e.run scale) in
      Printf.printf "  [%s completed in %.1fs]\n%!" e.id dt)
    exps

let run_all scale = run_list scale all
let run_paper scale = run_list scale paper_exps
