(** The experiment registry: one entry per table/figure of the paper's
    evaluation, plus the ablations from DESIGN.md. *)

type exp = {
  id : string;  (** e.g. "fig10i" *)
  title : string;
  run : Setup.scale -> unit;
}

val all : exp list
(** In paper order: table1, fig2, fig7i, fig7ii, fig8iii, fig8iv, fig9,
    fig10i, fig10ii, fig11, fig12, then scale-domains, overload,
    serve-sessions and rebalance-drift, then ablations. *)

val find : string -> exp option
val ids : unit -> string list

val run_all : Setup.scale -> unit
val run_paper : Setup.scale -> unit
(** Only the paper's tables/figures, no ablations. *)
