(** Workload construction shared by the experiments: Table-1 data at
    configurable scale, with the knobs each figure sweeps. *)

type scale = {
  tuples : int;
  queries : int;
  events : int;
  shards : int list;  (** Shard counts the [scale-domains] experiment sweeps. *)
  rebalance : float option;
      (** Imbalance-ratio threshold override for the [rebalance-drift]
          experiment ([cqctl bench --rebalance]); [None] leaves the
          experiment's default (1.5). *)
}

val quick : scale
(** Laptop-scale defaults (20k tuples, shards [\[1; 2; 4\]]; runs the
    whole harness in minutes). *)

val full : scale
(** The paper's sizes (100k tuples / 100k queries, shards
    [\[1; 2; 4; 8\]]). *)

val s_table :
  ?quantum:float -> ?sb_sigma:float -> scale -> seed:int -> Cq_relation.Table.s_table
(** S per Table 1.  [quantum] controls the average number of joining
    S-tuples per event (≈ tuples · quantum / 10000). *)

val r_events : ?quantum:float -> scale -> seed:int -> n:int -> Cq_relation.Tuple.r array

val s_rows :
  ?quantum:float -> ?sb_sigma:float -> scale -> seed:int -> (float * float) array
(** Same distribution as {!s_table}, as raw [(b, c)] rows for
    {!Cq_engine.Parallel.ingest_batch} (the parallel engine assigns
    tuple ids itself). *)

val r_rows : ?quantum:float -> scale -> seed:int -> n:int -> (float * float) array
(** {!r_events} as raw [(a, b)] rows. *)

val select_queries :
  scale ->
  seed:int ->
  n:int ->
  len_a_mu:float ->
  len_c_mu:float ->
  ?len_c_min:float ->
  unit ->
  Cq_joins.Select_query.t array
(** rangeA: midpoint Normal(5000,1500), length Normal(len_a_mu, len_a_mu/5);
    rangeC: midpoint Uni(0,10000), length Normal(len_c_mu, len_c_mu/5)
    clamped at [len_c_min] (the stabbing-number knob: τ ≈ 10000 /
    len_c_min). *)

val band_queries :
  scale -> seed:int -> n:int -> len_mu:float -> ?len_min:float -> unit ->
  Cq_joins.Band_query.t array
(** rangeB per Table 1: midpoint Uni(0,10000), length
    Normal(len_mu, len_mu/2.5) clamped at [len_min]. *)

val clustered_select_queries :
  seed:int ->
  n:int ->
  n_clusters:int ->
  clustered_frac:float ->
  Cq_joins.Select_query.t array
(** Figure 9's workloads: rangeC midpoints drawn from Zipf-weighted
    cluster centres for [clustered_frac] of the queries; rangeA per
    Table 1. *)

val domain : float * float
