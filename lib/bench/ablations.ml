(* Ablations over the design choices DESIGN.md calls out: epsilon,
   alpha, maintainer choice, and SSI-on-all-groups vs hotspots-only. *)

module I = Cq_interval.Interval
module BQ = Cq_joins.Band_query
module SJ = Cq_joins.Select_join
module Rng = Cq_util.Rng

module P = Hotspot_core.Refined_partition.Make (BQ.Elem)
module L = Hotspot_core.Lazy_partition.Make (BQ.Elem)
module T = Hotspot_core.Hotspot_tracker.Make (Cq_joins.Select_query.Elem_c)

(* A churn trace over clustered band windows: insert-heavy at first,
   then a 50/50 mix. *)
let churn_trace ~seed ~n =
  let rng = Rng.create seed in
  let ranges =
    Cq_relation.Workload.gen_clustered_ranges rng ~n ~n_clusters:40 ~clustered_frac:0.8
      ~domain:Setup.domain ~cluster_halfwidth:80.0 ~len_mu:400.0 ~len_sigma:150.0
  in
  Array.mapi (fun qid range -> BQ.make ~qid ~range) ranges

let ab_eps (scale : Setup.scale) =
  Report.section "ablation-eps" "Partition slack epsilon: quality vs maintenance cost";
  Report.note "smaller eps -> partition closer to optimal but more reconstructions;";
  Report.note "the paper runs Figure 11 with eps = 3.";
  let n = scale.queries / 2 in
  let queries = churn_trace ~seed:11 ~n in
  let tau = Hotspot_core.Stabbing.tau BQ.Elem.interval queries in
  let rows =
    List.map
      (fun epsilon ->
        let p = P.create ~epsilon ~seed:1 () in
        let ns =
          Report.time_per_op ~n (fun i ->
              P.insert p queries.(i);
              (* Delete every third element to exercise both paths. *)
              if i mod 3 = 2 then ignore (P.delete p queries.(i - 1)))
        in
        [
          Printf.sprintf "%.2f" epsilon;
          Report.fmt_ns ns;
          string_of_int (P.num_groups p);
          Printf.sprintf "%.2fx"
            (float_of_int (P.num_groups p)
            /. float_of_int (max 1 (Hotspot_core.Stabbing.tau BQ.Elem.interval
                                      (Array.of_list (List.concat_map snd (P.groups p))))));
          string_of_int (P.reconstructions p);
        ])
      [ 0.25; 0.5; 1.0; 2.0; 3.0; 5.0 ]
  in
  Report.note "tau of the full query set = %d" tau;
  Report.table
    ~header:[ "eps"; "per-update"; "groups"; "groups/tau"; "reconstructions" ]
    ~rows

let ab_maintainer (scale : Setup.scale) =
  Report.section "ablation-maintainer" "Refined (Appendix B) vs lazy (simple strategy)";
  Report.note "same trace, eps = 1: the lazy strategy pays O(n log n) rebuilds, the";
  Report.note "refined one O(tau log n) split/join reconstructions.";
  let n = scale.queries / 2 in
  let queries = churn_trace ~seed:13 ~n in
  let run_refined () =
    let p = P.create ~epsilon:1.0 ~seed:1 () in
    let ns =
      Report.time_per_op ~n (fun i ->
          P.insert p queries.(i);
          if i mod 3 = 2 then ignore (P.delete p queries.(i - 1)))
    in
    (ns, P.num_groups p, P.reconstructions p)
  in
  let run_lazy () =
    let p = L.create ~epsilon:1.0 ~seed:1 () in
    let ns =
      Report.time_per_op ~n (fun i ->
          L.insert p queries.(i);
          if i mod 3 = 2 then ignore (L.delete p queries.(i - 1)))
    in
    (ns, L.num_groups p, L.reconstructions p)
  in
  let rns, rg, rr = run_refined () in
  let lns, lg, lr = run_lazy () in
  Report.table
    ~header:[ "maintainer"; "per-update"; "groups"; "reconstructions" ]
    ~rows:
      [
        [ "refined (Appendix B)"; Report.fmt_ns rns; string_of_int rg; string_of_int rr ];
        [ "lazy (simple)"; Report.fmt_ns lns; string_of_int lg; string_of_int lr ];
      ]

let ab_alpha (scale : Setup.scale) =
  Report.section "ablation-alpha" "Hotspot threshold alpha: coverage vs group count";
  Report.note "smaller alpha admits more (smaller) hotspots: coverage rises, the";
  Report.note "per-event group scan grows as 2/alpha.";
  let n = scale.queries in
  let queries = Setup.clustered_select_queries ~seed:17 ~n ~n_clusters:60 ~clustered_frac:0.8 in
  let rows =
    List.map
      (fun alpha ->
        let tr = T.create ~alpha () in
        let ns = Report.time_per_op ~n (fun i -> T.insert tr queries.(i)) in
        [
          Printf.sprintf "%.4f" alpha;
          string_of_int (T.num_hotspots tr);
          Printf.sprintf "%.1f%%" (100.0 *. T.coverage tr);
          Printf.sprintf "%.2f" (float_of_int (T.moves tr) /. float_of_int (T.updates tr));
          Report.fmt_ns ns;
        ])
      [ 0.05; 0.01; 0.005; 0.001; 0.0005 ]
  in
  Report.table
    ~header:[ "alpha"; "hotspots"; "coverage"; "moves/update"; "per-insert" ]
    ~rows

let ab_purist (scale : Setup.scale) =
  Report.section "ablation-purist" "SSI on every stabbing group vs hotspots only";
  Report.note "paper (Section 4): restricting SSI to hotspots avoids the overhead of";
  Report.note "visiting many small groups, where traditional processing wins.";
  let table = Setup.s_table scale ~seed:1 in
  let events = Setup.r_events scale ~seed:2 ~n:(max 50 (scale.events / 2)) in
  let n = scale.queries in
  let rows =
    List.map
      (fun frac ->
        let queries = Setup.clustered_select_queries ~seed:19 ~n ~n_clusters:60 ~clustered_frac:frac in
        let purist = SJ.Ssi.create table queries in
        let hybrid = SJ.Hotspot.create_alpha ~alpha:0.002 table queries in
        let sink = ref 0 in
        let warmup = max 1 (Array.length events / 10) in
        let t_purist =
          Report.throughput ~events ~warmup (fun r ->
              SJ.Ssi.affected purist r (fun _ -> incr sink))
        in
        let t_hybrid =
          Report.throughput ~events ~warmup (fun r ->
              SJ.Hotspot.affected hybrid r (fun _ -> incr sink))
        in
        [
          Printf.sprintf "%.0f%%" (100.0 *. frac);
          Printf.sprintf "%.0f%%" (100.0 *. SJ.Hotspot.coverage hybrid);
          Report.fmt_throughput t_purist;
          Report.fmt_throughput t_hybrid;
        ])
      [ 0.2; 0.5; 0.8; 1.0 ]
  in
  Report.table
    ~header:[ "clustered frac"; "hotspot coverage"; "SJ-SSI (all groups)"; "SJ-Hotspot" ]
    ~rows

let ab_stab_index (scale : Setup.scale) =
  Report.section "ablation-stab-index" "Interval tree vs interval skip list vs priority search tree";
  Report.note "the paper offers either structure for the per-query stabbing index";
  Report.note "(BJ-DOuter, SJ-SelectFirst); both give O(log n + k) stabs and O(log n)";
  Report.note "updates — this measures the constants.";
  let n = scale.queries in
  let queries = churn_trace ~seed:23 ~n in
  let module Isl = Cq_index.Interval_skiplist in
  let module It = Cq_index.Interval_tree in
  let probes =
    let rng = Rng.create 31 in
    Array.init 20_000 (fun _ -> Cq_util.Dist.uniform rng ~lo:0.0 ~hi:10_000.0)
  in
  (* Interval tree. *)
  let it = It.Mutable.create () in
  let it_ins = Report.time_per_op ~n (fun i -> It.Mutable.add it queries.(i).BQ.range i) in
  let hits = ref 0 in
  let it_stab =
    Report.time_per_op ~n:(Array.length probes) (fun i ->
        It.Mutable.stab it probes.(i) (fun _ _ -> incr hits))
  in
  let it_del =
    Report.time_per_op ~n (fun i ->
        ignore (It.Mutable.remove it queries.(i).BQ.range (fun p -> p = i)))
  in
  (* Skip list. *)
  let sl = Isl.create ~seed:3 () in
  let sl_ins = Report.time_per_op ~n (fun i -> Isl.add sl queries.(i).BQ.range i) in
  let sl_stab =
    Report.time_per_op ~n:(Array.length probes) (fun i ->
        Isl.stab sl probes.(i) (fun _ _ -> incr hits))
  in
  let sl_del =
    Report.time_per_op ~n (fun i ->
        ignore (Isl.remove sl queries.(i).BQ.range (fun p -> p = i)))
  in
  Report.note "avg stab output: %.1f intervals"
    (float_of_int !hits /. float_of_int (2 * Array.length probes));
  (* Priority search tree. *)
  let module Pst = Cq_index.Priority_search_tree in
  let pst = Pst.Mutable.create ~seed:5 () in
  let pst_ins = Report.time_per_op ~n (fun i -> Pst.Mutable.add pst queries.(i).BQ.range i) in
  let pst_stab =
    Report.time_per_op ~n:(Array.length probes) (fun i ->
        Pst.Mutable.stab pst probes.(i) (fun _ _ -> incr hits))
  in
  let pst_del =
    Report.time_per_op ~n (fun i ->
        ignore (Pst.Mutable.remove pst queries.(i).BQ.range (fun p -> p = i)))
  in
  Report.table
    ~header:[ "structure"; "insert"; "stab"; "delete" ]
    ~rows:
      [
        [ "interval tree (AVL)"; Report.fmt_ns it_ins; Report.fmt_ns it_stab; Report.fmt_ns it_del ];
        [ "interval skip list"; Report.fmt_ns sl_ins; Report.fmt_ns sl_stab; Report.fmt_ns sl_del ];
        [ "priority search tree"; Report.fmt_ns pst_ins; Report.fmt_ns pst_stab; Report.fmt_ns pst_del ];
      ]

let ab_backend (scale : Setup.scale) =
  Report.section "ablation-backend" "Stabbing backend for the scattered-query index";
  Report.note "the processors are functorized over the stabbing index that holds the";
  Report.note "scattered (non-hotspot) queries; same workload, three backends.";
  let module BJ = Cq_joins.Band_join in
  let table = Setup.s_table scale ~seed:1 in
  let events = Setup.r_events scale ~seed:2 ~n:(max 50 (scale.events / 2)) in
  let n = scale.queries in
  Report.json_param "queries" (string_of_int n);
  Report.json_param "events" (string_of_int (Array.length events));
  Report.json_param "alpha" "0.002";
  let band_queries = Setup.band_queries scale ~seed:29 ~n ~len_mu:400.0 () in
  let sel_queries =
    Setup.clustered_select_queries ~seed:31 ~n ~n_clusters:60 ~clustered_frac:0.5
  in
  let warmup = max 1 (Array.length events / 10) in
  let sink = ref 0 in
  let rows =
    List.map
      (fun kind ->
        let (module BP : BJ.PROCESSOR) =
          BJ.processor Hotspot_core.Processor.Hotspot kind
        in
        let bp = BP.create_cfg ~alpha:0.002 ~seed:7 table band_queries in
        let t_band =
          Report.throughput ~events ~warmup (fun r -> BP.affected bp r (fun _ -> incr sink))
        in
        let (module SP : SJ.PROCESSOR) =
          SJ.processor Hotspot_core.Processor.Hotspot kind
        in
        let sp = SP.create_cfg ~alpha:0.002 ~seed:7 table sel_queries in
        let t_sel =
          Report.throughput ~events ~warmup (fun r -> SP.affected sp r (fun _ -> incr sink))
        in
        [
          Cq_index.Stab_backend.to_string kind;
          Report.fmt_throughput t_band;
          Report.fmt_throughput t_sel;
        ])
      Cq_index.Stab_backend.all
  in
  Report.table ~header:[ "backend"; "BJ-Hotspot"; "SJ-Hotspot" ] ~rows

let ab_adaptive (scale : Setup.scale) =
  Report.section "ablation-adaptive" "Per-event cost-based strategy choice (Section 6)";
  Report.note "the dispatcher estimates n' from an SSI histogram over the rangeA";
  Report.note "selections and routes each event to SJ-S or SJ-SSI; it should track";
  Report.note "the better of the two across the whole selectivity sweep.";
  let quantum = 1.0 in
  let table = Setup.s_table ~quantum scale ~seed:1 in
  let events = Setup.r_events ~quantum scale ~seed:2 ~n:scale.events in
  let n = scale.queries in
  let module SJ2 = Cq_joins.Select_join in
  let rows =
    List.map
      (fun len_a_mu ->
        let queries =
          Setup.select_queries scale ~seed:3 ~n ~len_a_mu ~len_c_mu:600.0 ~len_c_min:350.0 ()
        in
        let run (module S : SJ2.STRATEGY) =
          let st = S.create table queries in
          let sink = ref 0 in
          let warmup = max 1 (Array.length events / 10) in
          Report.throughput ~events ~warmup (fun r -> S.affected st r (fun _ -> incr sink))
        in
        let ad = SJ2.Adaptive.create table queries in
        let sink = ref 0 in
        let warmup = max 1 (Array.length events / 10) in
        let t_ad =
          Report.throughput ~events ~warmup (fun r ->
              SJ2.Adaptive.affected ad r (fun _ -> incr sink))
        in
        let sf_n, ssi_n = SJ2.Adaptive.decisions ad in
        [
          Printf.sprintf "%.0f" len_a_mu;
          Report.fmt_throughput (run (module SJ2.Select_first));
          Report.fmt_throughput (run (module SJ2.Ssi));
          Report.fmt_throughput t_ad;
          Printf.sprintf "%d/%d" sf_n ssi_n;
        ])
      [ 25.0; 100.0; 500.0; 2000.0; 5000.0 ]
  in
  Report.table
    ~header:[ "rangeA len"; "SJ-S"; "SJ-SSI"; "SJ-ADAPT"; "routed SJ-S/SJ-SSI" ]
    ~rows
