(* The network front-end under concurrent sessions: batch request
   latency (send to ack, which spans decode, ingest, flush, fan-out and
   the reply write) and aggregate ingest throughput, swept over the
   session count on a loopback socket. *)

module Driver = Cq_net.Driver
module Metrics = Cq_obs.Metrics

(* The server runs in its own process (or domain, once this process
   has created domains — see {!Cq_net.Driver.run_workload}), so its
   side of the instrumentation comes back as a snapshot.  Replay the
   counters and gauges into this process's registry so the experiment's
   obs block shows the server's view (net.* frame/queue metrics);
   histogram cells cannot be replayed from a summary, so their
   percentiles land in the metrics list instead. *)
let merge_server_snapshot (snap : Metrics.snapshot) =
  List.iter
    (fun (name, v) -> if v > 0 then Metrics.add (Metrics.counter name) v)
    snap.Metrics.snap_counters;
  List.iter
    (fun (name, v) -> if Float.compare v 0.0 <> 0 then Metrics.set (Metrics.gauge name) v)
    snap.Metrics.snap_gauges;
  List.iter
    (fun (name, (h : Metrics.hist_summary)) ->
      if h.Metrics.count > 0 then begin
        Report.record_metric (name ^ "_p50") h.Metrics.p50 "ns";
        Report.record_metric (name ^ "_p99") h.Metrics.p99 "ns"
      end)
    snap.Metrics.snap_histograms

let serve_sessions (scale : Setup.scale) =
  Report.section "serve-sessions" "Network front-end: latency and throughput vs sessions";
  Report.note "Seeded loopback workload (DESIGN.md s14): each session registers 2";
  Report.note "continuous queries, then the driver streams tuple batches in";
  Report.note "lockstep and measures each batch's send-to-ack round trip -- the";
  Report.note "ack orders behind the flush that processed the batch, so the RTT";
  Report.note "covers decode, ingest, flush, result fan-out and the reply write.";
  Report.note "One event-loop tick serves every session, so aggregate throughput";
  Report.note "should hold roughly flat as sessions grow and per-batch latency";
  Report.note "should grow with the fan-out work, not with idle sessions.";
  let batches = max 48 (scale.Setup.events / 20) in
  let rows_per_batch = 16 in
  Report.json_param "batches" (string_of_int batches);
  Report.json_param "rows_per_batch" (string_of_int rows_per_batch);
  let rows =
    List.filter_map
      (fun sessions ->
        let w =
          Driver.gen_workload ~seed:(40 + sessions) ~sessions ~queries_per_session:2
            ~batches ~rows_per_batch
        in
        match Driver.run_workload w with
        | Error e ->
            Report.note "sessions=%d FAILED: %s" sessions (Cq_net.Client.error_to_string e);
            None
        | Ok o ->
            let p50 = Driver.percentile o.Driver.latencies_ns 50.0 in
            let p99 = Driver.percentile o.Driver.latencies_ns 99.0 in
            let total_rows = batches * rows_per_batch in
            let tput = float_of_int total_rows /. o.Driver.elapsed_s in
            let st = o.Driver.server in
            Option.iter merge_server_snapshot o.Driver.server_metrics;
            let tag = Printf.sprintf "sessions_%d_" sessions in
            Report.record_metric (tag ^ "rtt_p50") p50 "ns";
            Report.record_metric (tag ^ "rtt_p99") p99 "ns";
            Report.record_metric (tag ^ "tuples_per_sec") tput "rows/s";
            Some
              [
                string_of_int sessions;
                Report.fmt_throughput tput;
                Report.fmt_ns p50;
                Report.fmt_ns p99;
                string_of_int st.Cq_net.Server.net_results_delivered;
                string_of_int st.Cq_net.Server.net_results_dropped;
                string_of_int st.Cq_net.Server.net_overloads;
              ])
      [ 1; 4; 16; 64 ]
  in
  Report.table
    ~header:
      [ "sessions"; "tuples/s"; "rtt p50"; "rtt p99"; "result rows"; "dropped"; "overloads" ]
    ~rows
