(** The [rebalance-drift] experiment: a walking Zipf-hotspot stream
    ({!Cq_robust.Fault.gen_drift}) replayed through the parallel engine
    at each shard count of the sweep, with the strip rebalancer off and
    armed, reporting migrations, migrated queries, the end-of-run
    load-imbalance ratio, and whether the delivered multiset matches
    the 1-shard run bit-for-bit. *)

val rebalance_drift : Setup.scale -> unit
(** [scale.rebalance] overrides the imbalance threshold (default 1.5);
    [scale.events] scales the drift-stream length (floor 240);
    [scale.shards] is the sweep. *)
