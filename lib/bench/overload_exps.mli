(** Overload-management experiment: degraded-answer accuracy at forced
    shed rates (Horvitz-Thompson estimate vs exact mirror, observed
    error vs claimed bound) and Block/Reject/Shed ingest/flush latency
    under seeded bursts.  Writes BENCH_overload.json under
    [bench --json]; CI checks [claimed_error >= observed_error]. *)

val overload : Setup.scale -> unit
