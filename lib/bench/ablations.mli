(** Ablations over the design choices DESIGN.md calls out. *)

val ab_eps : Setup.scale -> unit
(** Partition slack ε: reconstruction frequency vs update cost. *)

val ab_maintainer : Setup.scale -> unit
(** Refined (Appendix B) vs lazy (§2.3) maintainer on one trace. *)

val ab_alpha : Setup.scale -> unit
(** Hotspot threshold α: group count, coverage, move rate. *)

val ab_purist : Setup.scale -> unit
(** SSI on every group vs hotspots-only (§4's closing comparison). *)

val ab_stab_index : Setup.scale -> unit
(** Interval tree vs interval skip list vs priority search tree. *)

val ab_backend : Setup.scale -> unit
(** The three pluggable stabbing backends under the same Hotspot
    processors (band and select). *)

val ab_adaptive : Setup.scale -> unit
(** §6's per-event cost-based strategy routing. *)
