module I = Cq_interval.Interval
module W = Cq_relation.Workload
module Rng = Cq_util.Rng
module Dist = Cq_util.Dist

type scale = {
  tuples : int;
  queries : int;
  events : int;
  shards : int list;
  rebalance : float option;
}

let quick =
  { tuples = 20_000; queries = 20_000; events = 200; shards = [ 1; 2; 4 ]; rebalance = None }

let full =
  {
    tuples = 100_000;
    queries = 100_000;
    events = 500;
    shards = [ 1; 2; 4; 8 ];
    rebalance = None;
  }

let domain = (0.0, 10_000.0)

let config ?(quantum = 100.0) ?(sb_sigma = 1000.0) () =
  { W.default with W.b_quantum = quantum; sb_sigma }

let s_table ?quantum ?sb_sigma scale ~seed =
  let c = config ?quantum ?sb_sigma () in
  let rng = Rng.create seed in
  Cq_relation.Table.of_s_tuples (W.gen_s_tuples c rng ~n:scale.tuples)

let r_events ?quantum scale ~seed ~n =
  ignore scale;
  let c = config ?quantum () in
  W.gen_r_tuples c (Rng.create seed) ~n

(* Raw-row variants for the batch-ingest API of Cq_engine.Parallel,
   which assigns tuple ids itself. *)
let s_rows ?quantum ?sb_sigma scale ~seed =
  let c = config ?quantum ?sb_sigma () in
  Array.map
    (fun (s : Cq_relation.Tuple.s) -> (s.b, s.c))
    (W.gen_s_tuples c (Rng.create seed) ~n:scale.tuples)

let r_rows ?quantum scale ~seed ~n =
  Array.map (fun (r : Cq_relation.Tuple.r) -> (r.a, r.b)) (r_events ?quantum scale ~seed ~n)

let draw_len rng ~mu ~sigma ~min_len = Float.max min_len (Dist.normal rng ~mu ~sigma)

let select_queries scale ~seed ~n ~len_a_mu ~len_c_mu ?(len_c_min = 0.0) () =
  ignore scale;
  let rng = Rng.create seed in
  let lo, hi = domain in
  Array.init n (fun qid ->
      let mid_a = Dist.normal rng ~mu:5000.0 ~sigma:1500.0 in
      let len_a = draw_len rng ~mu:len_a_mu ~sigma:(len_a_mu /. 5.0) ~min_len:0.0 in
      let mid_c = Dist.uniform rng ~lo ~hi in
      let len_c = draw_len rng ~mu:len_c_mu ~sigma:(len_c_mu /. 5.0) ~min_len:len_c_min in
      Cq_joins.Select_query.make ~qid
        ~range_a:(I.of_midpoint ~mid:mid_a ~len:len_a)
        ~range_c:(I.of_midpoint ~mid:mid_c ~len:len_c))

let band_queries scale ~seed ~n ~len_mu ?(len_min = 0.0) () =
  ignore scale;
  let rng = Rng.create seed in
  let lo, hi = domain in
  Array.init n (fun qid ->
      let mid = Dist.uniform rng ~lo ~hi in
      let len = draw_len rng ~mu:len_mu ~sigma:(len_mu /. 2.5) ~min_len:len_min in
      Cq_joins.Band_query.make ~qid ~range:(I.of_midpoint ~mid ~len))

let clustered_select_queries ~seed ~n ~n_clusters ~clustered_frac =
  let rng = Rng.create seed in
  (* Scattered rangeC's are short, so the scattered remainder's own
     stabbing groups stay below realistic hotspot thresholds. *)
  let ranges_c =
    W.gen_clustered_ranges ~scattered_len:(3.0, 1.0) rng ~n ~n_clusters ~clustered_frac
      ~domain ~cluster_halfwidth:60.0 ~len_mu:300.0 ~len_sigma:100.0
  in
  Array.mapi
    (fun qid range_c ->
      let mid_a = Dist.normal rng ~mu:5000.0 ~sigma:1500.0 in
      let len_a = draw_len rng ~mu:1000.0 ~sigma:200.0 ~min_len:0.0 in
      Cq_joins.Select_query.make ~qid ~range_a:(I.of_midpoint ~mid:mid_a ~len:len_a) ~range_c)
    ranges_c
