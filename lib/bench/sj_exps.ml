(* Select-join experiments: Figures 7(i), 7(ii), 8(iii), 8(iv) and 9. *)

module SJ = Cq_joins.Select_join
module SQ = Cq_joins.Select_query
module Tuple = Cq_relation.Tuple
module Table = Cq_relation.Table

let strategies : (module SJ.STRATEGY) list =
  [ (module SJ.Naive); (module SJ.Join_first); (module SJ.Select_first); (module SJ.Ssi) ]

(* Identification throughput: the paper's measurement excludes output
   enumeration, so events are processed through [affected]. *)
let run_one (module S : SJ.STRATEGY) table queries events =
  let st = S.create table queries in
  let affected = ref 0 in
  let warmup = max 1 (Array.length events / 10) in
  let tput =
    Report.throughput ~events ~warmup (fun r -> S.affected st r (fun _ -> incr affected))
  in
  (tput, !affected)

(* The stabbing number of the rangeC projections, as SJ-SSI sees it. *)
let tau_of_queries queries =
  Hotspot_core.Stabbing.tau (fun (q : SQ.t) -> q.range_c) queries

(* ---------------------------- Figure 7(i) ----------------------------- *)

let fig7i (scale : Setup.scale) =
  Report.section "fig7i" "Equality joins w/ local selections: throughput vs #queries";
  Report.note "paper: NAIVE and SJ-S degrade linearly; SJ-J loses to 2-D stabbing cost;";
  Report.note "SJ-SSI stays within ~20%% across 10 .. 100k queries (tau ~ 30).";
  (* A sparse-join regime (few joining S-tuples per event) keeps the
     per-event affected-query count — the output-sensitive k term of
     Theorem 4 — small, which is the regime where the paper's near-flat
     SJ-SSI curve lives. *)
  let quantum = 5.0 in
  let table = Setup.s_table ~quantum scale ~seed:1 in
  let events = Setup.r_events ~quantum scale ~seed:2 ~n:scale.events in
  let sizes =
    [ 10; 100; 1000; 10_000; scale.queries ] |> List.sort_uniq Int.compare
    |> List.filter (fun n -> n <= scale.queries)
  in
  let rows =
    List.map
      (fun n ->
        (* len_c clamped at 350 keeps tau ~ 30 (paper's setting). *)
        let queries =
          Setup.select_queries scale ~seed:3 ~n ~len_a_mu:1000.0 ~len_c_mu:600.0
            ~len_c_min:350.0 ()
        in
        let tau = tau_of_queries queries in
        let cells =
          List.map
            (fun s ->
              let tput, _ = run_one s table queries events in
              Report.fmt_throughput tput)
            strategies
        in
        let _, affected = run_one (module SJ.Ssi) table queries events in
        let per_event = affected * 10 / (9 * Array.length events) in
        (string_of_int n :: string_of_int tau :: cells) @ [ string_of_int per_event ])
      sizes
  in
  Report.table
    ~header:
      (("queries" :: "tau" :: List.map (fun (module S : SJ.STRATEGY) -> S.name) strategies)
      @ [ "affected/event" ])
    ~rows

(* ---------------------------- Figure 7(ii) ---------------------------- *)

let fig7ii (scale : Setup.scale) =
  Report.section "fig7ii" "Equality joins: throughput vs number of stabbing groups";
  Report.note "paper: NAIVE/SJ-S indifferent to clusteredness; SJ-SSI degrades as tau";
  Report.note "grows and crosses below SJ-S once tau exceeds the R.A event selectivity.";
  let quantum = 5.0 in
  let table = Setup.s_table ~quantum scale ~seed:1 in
  let events = Setup.r_events ~quantum scale ~seed:2 ~n:scale.events in
  let n = scale.queries in
  let rows =
    List.map
      (fun len_c_min ->
        (* rangeA sized so the event selectivity on R.A is ~250 queries
           per event in absolute terms, as in the paper ("SJ-S
           outperforms SJ-SSI when there are more than 250 stabbing
           groups, as the event selectivity on R.A is roughly 250"). *)
        let queries =
          Setup.select_queries scale ~seed:3 ~n
            ~len_a_mu:125.0
            ~len_c_mu:(len_c_min *. 1.7)
            ~len_c_min ()
        in
        let tau = tau_of_queries queries in
        string_of_int tau
        :: List.map
             (fun s ->
               let tput, _ = run_one s table queries events in
               Report.fmt_throughput tput)
             strategies)
      [ 1000.0; 330.0; 100.0; 33.0; 10.0 ]
  in
  Report.table
    ~header:("tau" :: List.map (fun (module S : SJ.STRATEGY) -> S.name) strategies)
    ~rows

(* --------------------------- Figure 8(iii) ---------------------------- *)

let fig8iii (scale : Setup.scale) =
  Report.section "fig8iii" "Equality joins: throughput vs event selectivity on R.A";
  Report.note "paper: SJ-S deteriorates linearly in the number of queries whose R.A";
  Report.note "selection the event satisfies (n'); SJ-SSI is unaffected.";
  let quantum = 1.0 in
  let table = Setup.s_table ~quantum scale ~seed:1 in
  let events = Setup.r_events ~quantum scale ~seed:2 ~n:scale.events in
  let n = scale.queries in
  let pair_strategies : (module SJ.STRATEGY) list = [ (module SJ.Select_first); (module SJ.Ssi) ] in
  let rows =
    List.map
      (fun len_a_mu ->
        let queries =
          Setup.select_queries scale ~seed:3 ~n ~len_a_mu ~len_c_mu:600.0 ~len_c_min:350.0 ()
        in
        (* Measure n': average number of satisfied R.A selections. *)
        let sat = ref 0 in
        Array.iter
          (fun (r : Tuple.r) ->
            Array.iter
              (fun (q : SQ.t) -> if Cq_interval.Interval.stabs q.range_a r.a then incr sat)
              queries)
          events;
        let n' = float_of_int !sat /. float_of_int (Array.length events) in
        Printf.sprintf "%.0f" n'
        :: List.map
             (fun s ->
               let tput, _ = run_one s table queries events in
               Report.fmt_throughput tput)
             pair_strategies)
      [ 25.0; 50.0; 100.0; 175.0; 250.0 ]
  in
  Report.table
    ~header:("avg n' (queries/event)" :: List.map (fun (module S : SJ.STRATEGY) -> S.name) pair_strategies)
    ~rows

(* ---------------------------- Figure 8(iv) ---------------------------- *)

let fig8iv (scale : Setup.scale) =
  Report.section "fig8iv" "Equality joins: throughput vs event selectivity on S";
  Report.note "paper: only SJ-J degrades (linearly in the number of joining S-tuples";
  Report.note "m'); the rest are immune.";
  let n = scale.queries in
  let queries =
    Setup.select_queries scale ~seed:3 ~n ~len_a_mu:1000.0 ~len_c_mu:600.0 ~len_c_min:350.0 ()
  in
  let rows =
    List.map
      (fun quantum ->
        let table = Setup.s_table ~quantum scale ~seed:1 in
        let events = Setup.r_events ~quantum scale ~seed:2 ~n:scale.events in
        (* Measure m': average joining S-tuples per event. *)
        let joined = ref 0 in
        Array.iter
          (fun (r : Tuple.r) ->
            joined :=
              !joined
              + Table.Fbt.count_range (Table.s_by_b table) ~lo:r.b ~hi:r.b)
          events;
        let m' = float_of_int !joined /. float_of_int (Array.length events) in
        Printf.sprintf "%.0f" m'
        :: List.map
             (fun s ->
               let tput, _ = run_one s table queries events in
               Report.fmt_throughput tput)
             strategies)
      [ 10.0; 50.0; 100.0; 500.0; 1000.0 ]
  in
  Report.table
    ~header:("avg m' (S-tuples/event)" :: List.map (fun (module S : SJ.STRATEGY) -> S.name) strategies)
    ~rows

(* ----------------------------- Figure 9 ------------------------------- *)

let fig9 (scale : Setup.scale) =
  Report.section "fig9" "SSI + hotspot tracking vs traditional (SJ-S)";
  Report.note "paper: TRADITIONAL is flat across clusteredness; HOTSPOT-BASED improves";
  Report.note "linearly with the fraction of intervals covered by hotspots.";
  let quantum = 1.0 in
  let table = Setup.s_table ~quantum scale ~seed:1 in
  let events = Setup.r_events ~quantum scale ~seed:2 ~n:(max 50 (scale.events / 2)) in
  (* A larger query population, as in the paper's 500k-query setup. *)
  let n = scale.queries * 5 / 2 in
  let n_clusters = 100 in
  let alpha = 0.001 in
  let rows =
    List.map
      (fun frac ->
        let queries =
          Setup.clustered_select_queries ~seed:3 ~n ~n_clusters ~clustered_frac:frac
        in
        let trad = SJ.Select_first.create table queries in
        let hot = SJ.Hotspot.create_alpha ~alpha table queries in
        let sinkc = ref 0 in
        let warmup = max 1 (Array.length events / 10) in
        let t_trad =
          Report.throughput ~events ~warmup (fun r ->
              SJ.Select_first.affected trad r (fun _ -> incr sinkc))
        in
        let t_hot =
          Report.throughput ~events ~warmup (fun r ->
              SJ.Hotspot.affected hot r (fun _ -> incr sinkc))
        in
        [
          Printf.sprintf "%.0f%%" (100.0 *. SJ.Hotspot.coverage hot);
          string_of_int (SJ.Hotspot.num_hotspots hot);
          Report.fmt_ns (1e9 /. t_trad);
          Report.fmt_ns (1e9 /. t_hot);
        ])
      [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]
  in
  Report.table
    ~header:[ "hotspot coverage"; "hotspots"; "TRADITIONAL (per event)"; "HOTSPOT-BASED (per event)" ]
    ~rows
