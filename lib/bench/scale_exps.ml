(* Multicore scaling: the scale-domains experiment sweeps the parallel
   engine's shard count over the same Table-1 band workload. *)

module Par = Cq_engine.Parallel
module BQ = Cq_joins.Band_query

let scale_domains (scale : Setup.scale) =
  Report.section "scale-domains" "Parallel engine: ingest throughput vs shard count";
  Report.note "Query-sharded, tuple-broadcast (DESIGN.md s11): per-event";
  Report.note "identification cost divides by the shard count, the O(log m) table";
  Report.note "store is replicated.  Speedup needs real cores: with fewer cores";
  Report.note "than shards the domains time-slice and shards > 1 only adds queue";
  Report.note "and merge overhead.";
  let recommended = Domain.recommended_domain_count () in
  Report.note "this host: Domain.recommended_domain_count = %d" recommended;
  Report.json_param "recommended_domains" (string_of_int recommended);
  (* Unlike the join-strategy benches (which only count affected
     queries), the engine enumerates and delivers every join result —
     so the workload uses narrow bands and a reduced population to keep
     the output term proportionate rather than explosive. *)
  let n_queries = max 200 (scale.queries / 10) in
  let s_scale = { scale with Setup.tuples = max 1_000 (scale.tuples / 4) } in
  let s_rows = Setup.s_rows s_scale ~seed:1 in
  let n_events = max 50 scale.events in
  let r_rows = Setup.r_rows scale ~seed:2 ~n:n_events in
  let queries = Setup.band_queries scale ~seed:3 ~n:n_queries ~len_mu:2.0 ~len_min:0.5 () in
  let base = ref None in
  let rows =
    List.map
      (fun shards ->
        let t = Par.create ~seed:7 ~shards ~batch_size:256 () in
        Array.iter
          (fun (q : BQ.t) -> ignore (Par.subscribe_band t ~range:q.range (fun _ _ -> ())))
          queries;
        (* Preload S (the home table) unmeasured, as the join
           experiments do. *)
        Par.ingest_batch t Par.S s_rows;
        ignore (Par.flush t);
        let (), dt =
          Cq_util.Clock.time (fun () ->
              Par.ingest_batch t Par.R r_rows;
              ignore (Par.flush t))
        in
        let st = Par.stats t in
        let counts = Par.shard_result_counts t in
        Par.shutdown t;
        let tput = float_of_int n_events /. dt in
        if Option.is_none !base then base := Some tput;
        let speedup = tput /. Option.get !base in
        let imbalance =
          let total = Array.fold_left ( + ) 0 counts in
          if total = 0 then 1.0
          else
            float_of_int (Array.fold_left Int.max 0 counts * Array.length counts)
            /. float_of_int total
        in
        Report.json_param
          (Printf.sprintf "shards_%d_events_per_sec" shards)
          (Printf.sprintf "%.1f" tput);
        Report.json_param
          (Printf.sprintf "shards_%d_speedup" shards)
          (Printf.sprintf "%.3f" speedup);
        [
          string_of_int shards;
          Report.fmt_throughput tput;
          Printf.sprintf "%.2fx" speedup;
          string_of_int st.results_delivered;
          Printf.sprintf "%.2f" imbalance;
        ])
      scale.shards
  in
  Report.table
    ~header:[ "shards"; "events/s"; "speedup vs 1"; "results"; "imbalance" ]
    ~rows
