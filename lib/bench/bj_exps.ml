(* Band-join experiments: Figures 10(i), 10(ii) and 11. *)

module BJ = Cq_joins.Band_join
module BQ = Cq_joins.Band_query

let strategies : (module BJ.STRATEGY) list =
  [ (module BJ.Douter); (module BJ.Qouter); (module BJ.Merge); (module BJ.Ssi) ]

(* Identification throughput (output enumeration excluded, as in the
   paper's measurements). *)
let run_one (module S : BJ.STRATEGY) table queries events =
  let st = S.create table queries in
  let affected = ref 0 in
  let warmup = max 1 (Array.length events / 10) in
  let tput =
    Report.throughput ~events ~warmup (fun r -> S.affected st r (fun _ -> incr affected))
  in
  (tput, !affected)

let tau_of queries = Hotspot_core.Stabbing.tau (fun (q : BQ.t) -> q.range) queries

(* ---------------------------- Figure 10(i) ---------------------------- *)

let fig10i (scale : Setup.scale) =
  Report.section "fig10i" "Band joins: throughput vs #queries";
  Report.note "paper: BJ-Q collapses beyond ~1000 queries; BJ-D is flat but low";
  Report.note "(scans S); BJ-MJ flat until ~50k then decays; BJ-SSI wins by orders";
  Report.note "of magnitude and loses only ~3x over a 10^4-fold query increase.";
  (* Sparse S.B values (coarse quantum) keep the per-event match
     probability low — the regime where identification cost, not output
     size, is measured (see EXPERIMENTS.md). *)
  let quantum = 2000.0 in
  let table = Setup.s_table ~quantum scale ~seed:1 in
  let events = Setup.r_events ~quantum scale ~seed:2 ~n:(max 30 (scale.events / 4)) in
  let sizes =
    [ 50; 500; 5_000; scale.queries; scale.queries * 5 / 2 ] |> List.sort_uniq Int.compare
  in
  let rows =
    List.map
      (fun n ->
        let queries = Setup.band_queries scale ~seed:3 ~n ~len_mu:400.0 ~len_min:150.0 () in
        let tau = tau_of queries in
        string_of_int n :: string_of_int tau
        :: List.map
             (fun s ->
               let tput, _ = run_one s table queries events in
               Report.fmt_throughput tput)
             strategies)
      sizes
  in
  Report.table
    ~header:("queries" :: "tau" :: List.map (fun (module S : BJ.STRATEGY) -> S.name) strategies)
    ~rows

(* --------------------------- Figure 10(ii) ---------------------------- *)

let fig10ii (scale : Setup.scale) =
  Report.section "fig10ii" "Band joins: throughput vs number of stabbing groups";
  Report.note "paper: BJ-D and BJ-MJ are insensitive to the group count; BJ-SSI";
  Report.note "degrades linearly in tau yet still wins even at ~5000 groups.";
  let n = scale.queries in
  let pair : (module BJ.STRATEGY) list = [ (module BJ.Douter); (module BJ.Merge); (module BJ.Ssi) ] in
  let rows =
    List.map
      (fun len_min ->
        (* Scale the S.B quantum with the window length so the match
           probability — hence the output-sensitive term — stays
           constant while tau varies. *)
        let quantum = len_min *. 13.0 in
        let table = Setup.s_table ~quantum scale ~seed:1 in
        let events = Setup.r_events ~quantum scale ~seed:2 ~n:(max 30 (scale.events / 4)) in
        let queries =
          Setup.band_queries scale ~seed:3 ~n ~len_mu:(len_min *. 1.7) ~len_min ()
        in
        let tau = tau_of queries in
        string_of_int tau
        :: List.map
             (fun s ->
               let tput, _ = run_one s table queries events in
               Report.fmt_throughput tput)
             pair)
      [ 100.0; 33.0; 10.0; 3.3; 2.0 ]
  in
  Report.table
    ~header:("tau" :: List.map (fun (module S : BJ.STRATEGY) -> S.name) pair)
    ~rows

(* ----------------------------- Figure 11 ------------------------------ *)

let fig11 (scale : Setup.scale) =
  Report.section "fig11" "Band joins: amortized index maintenance cost per query update";
  Report.note "paper: BJ-Q maintains nothing; BJ-MJ updates a sorted list; BJ-D a";
  Report.note "dynamic stabbing index; BJ-SSI (eps = 3) a (1+eps)-approximate";
  Report.note "stabbing partition, costing only ~20%% over BJ-MJ.";
  let table = Setup.s_table scale ~seed:1 in
  let n = scale.queries in
  let initial = Setup.band_queries scale ~seed:3 ~n ~len_mu:400.0 ~len_min:150.0 () in
  let fresh = Setup.band_queries scale ~seed:4 ~n ~len_mu:400.0 ~len_min:150.0 () in
  let fresh = Array.mapi (fun i (q : BQ.t) -> { q with qid = n + i }) fresh in
  let rng = Cq_util.Rng.create 5 in
  let measure name insert_q delete_q =
    (* 50/50 insertion/deletion mix, as in the paper. *)
    let live = Cq_util.Vec.create () in
    Array.iter (fun q -> Cq_util.Vec.push live q) initial;
    let next_fresh = ref 0 in
    let updates = n in
    let ns =
      Report.time_per_op ~n:updates (fun _ ->
          if (Cq_util.Rng.bool rng && !next_fresh < Array.length fresh)
             || Cq_util.Vec.length live = 0
          then begin
            let q = fresh.(!next_fresh) in
            incr next_fresh;
            insert_q q;
            Cq_util.Vec.push live q
          end
          else begin
            let i = Cq_util.Rng.int rng (Cq_util.Vec.length live) in
            let q = Cq_util.Vec.swap_remove live i in
            if not (delete_q q) then
              Cq_util.Error.corrupt ~structure:name "delete of live query failed"
          end)
    in
    ns
  in
  let rows = ref [] in
  let bd = BJ.Douter.create table initial in
  rows := [ "BJ-D"; Report.fmt_ns (measure "BJ-D" (BJ.Douter.insert_query bd) (BJ.Douter.delete_query bd)); "-" ] :: !rows;
  let bq = BJ.Qouter.create table initial in
  rows := [ "BJ-Q"; Report.fmt_ns (measure "BJ-Q" (BJ.Qouter.insert_query bq) (BJ.Qouter.delete_query bq)); "-" ] :: !rows;
  let bm = BJ.Merge.create table initial in
  rows := [ "BJ-MJ"; Report.fmt_ns (measure "BJ-MJ" (BJ.Merge.insert_query bm) (BJ.Merge.delete_query bm)); "-" ] :: !rows;
  let bs = BJ.Ssi_dynamic.create_eps ~epsilon:3.0 table initial in
  let ssi_ns = measure "BJ-SSI" (BJ.Ssi_dynamic.insert_query bs) (BJ.Ssi_dynamic.delete_query bs) in
  rows :=
    [ "BJ-SSI (eps=3)"; Report.fmt_ns ssi_ns; string_of_int (BJ.Ssi_dynamic.reconstructions bs) ]
    :: !rows;
  Report.table ~header:[ "strategy"; "amortized update time"; "reconstructions" ]
    ~rows:(List.rev !rows)
