(* Adaptive rebalancing under hotspot drift: the rebalance-drift
   experiment replays a walking Zipf-hotspot stream (Fault.gen_drift —
   online register/deregister mid-ingest, registration mass piled on
   one home shard, the pile walking across strips) through the
   parallel engine and measures what the strip rebalancer buys. *)

module Par = Cq_engine.Parallel
module Fault = Cq_robust.Fault

(* Replay one drift stream into a parallel engine and collect the
   delivered-result multiset alongside the rebalancer's own ledger.
   The handle queue mirrors Oracle.run_drift: Drift_deregister always
   retires the oldest live registration, so the replay is a pure
   function of the stream. *)
let replay ~seed ~shards ~rebalance stream =
  let t = Par.create ~alpha:0.1 ~seed ~shards ~batch_size:8 ~rebalance () in
  let results = ref [] in
  let handles = Queue.create () in
  let next_qi = ref 0 in
  let rows = ref 0 in
  let reg spec =
    let qi = !next_qi in
    incr next_qi;
    let cb (r : Cq_relation.Tuple.r) (s : Cq_relation.Tuple.s) =
      results := (qi, r.rid, s.sid) :: !results
    in
    Queue.add (Par.register t spec cb) handles
  in
  let (), dt =
    Cq_util.Clock.time (fun () ->
        Array.iter
          (fun op ->
            match op with
            | Fault.Drift_register { range } -> reg (Par.Band { range })
            | Fault.Drift_register_select { range_a; range_c } ->
                reg (Par.Select { range_a; range_c })
            | Fault.Drift_deregister -> (
                match Queue.take_opt handles with
                | Some sub -> ignore (Par.deregister t sub)
                | None -> ())
            | Fault.Drift_r batch ->
                rows := !rows + Array.length batch;
                Par.ingest_batch t Par.R batch
            | Fault.Drift_s batch ->
                rows := !rows + Array.length batch;
                Par.ingest_batch t Par.S batch
            | Fault.Drift_flush -> ignore (Par.flush t))
          stream;
        ignore (Par.flush t))
  in
  Par.check_invariants t;
  let rb = Par.rebalance_stats t in
  let loads = Par.shard_loads t in
  let delivered = Par.results_delivered t in
  Par.shutdown t;
  let cmp (q1, r1, s1) (q2, r2, s2) =
    let c = Int.compare q1 q2 in
    if c <> 0 then c
    else
      let c = Int.compare r1 r2 in
      if c <> 0 then c else Int.compare s1 s2
  in
  (List.sort cmp !results, delivered, rb, loads, !rows, dt)

(* max(load)·n / total over the post-run per-shard query loads — the
   same ratio the rebalancer steers on, here from the final placement. *)
let final_query_ratio (loads : Par.shard_load array) =
  let total = Array.fold_left (fun a l -> a + l.Par.sl_queries) 0 loads in
  let worst = Array.fold_left (fun a l -> Int.max a l.Par.sl_queries) 0 loads in
  if total = 0 then 1.0
  else float_of_int (worst * Array.length loads) /. float_of_int total

let rebalance_drift (scale : Setup.scale) =
  Report.section "rebalance-drift" "Adaptive shard rebalancing under hotspot drift";
  Report.note "A Zipf hotspot whose sites sit shards x strip-width apart parks";
  Report.note "every query on one home shard, then walks (DESIGN.md s15): without";
  Report.note "rebalancing the placement stays pathological for the whole run.";
  Report.note "The rebalancer migrates whole strips at flush barriers; the";
  Report.note "delivered multiset must not notice (checked against 1 shard here,";
  Report.note "and against the oracle under 100+ seeds in the fuzz suite).";
  let max_shards = List.fold_left Int.max 1 scale.shards in
  let threshold = match scale.rebalance with Some t -> t | None -> 1.5 in
  let seed = 11 in
  let n_ops = Int.max 240 scale.events in
  Report.json_param "threshold" (Printf.sprintf "%.2f" threshold);
  Report.json_param "check_every" "2";
  Report.json_param "drift_ops" (string_of_int n_ops);
  Report.json_param "max_shards" (string_of_int max_shards);
  let stream = Fault.gen_drift ~shards:max_shards ~seed ~n:n_ops () in
  let armed = Some { Cq_engine.Engine.Config.threshold; check_every = 2 } in
  let base_results, base_delivered, _, _, _, _ =
    replay ~seed ~shards:1 ~rebalance:None stream
  in
  let rows =
    List.concat_map
      (fun shards ->
        List.map
          (fun rebalance ->
            let label = match rebalance with Some _ -> "on" | None -> "off" in
            let results, delivered, rb, loads, n_rows, dt =
              replay ~seed ~shards ~rebalance stream
            in
            let matches =
              delivered = base_delivered
              && List.equal
                   (fun (q1, r1, s1) (q2, r2, s2) -> q1 = q2 && r1 = r2 && s1 = s2)
                   results base_results
            in
            let ratio = final_query_ratio loads in
            let tput = float_of_int n_rows /. dt in
            let key k = Printf.sprintf "shards_%d_rb_%s_%s" shards label k in
            Report.json_param (key "migrations") (string_of_int rb.Par.rb_migrations);
            Report.json_param (key "migrated_queries")
              (string_of_int rb.Par.rb_migrated_queries);
            Report.json_param (key "final_query_ratio") (Printf.sprintf "%.3f" ratio);
            Report.json_param (key "matches_one_shard") (string_of_bool matches);
            [
              string_of_int shards;
              label;
              Report.fmt_throughput tput;
              string_of_int rb.Par.rb_checks;
              string_of_int rb.Par.rb_migrations;
              string_of_int rb.Par.rb_migrated_queries;
              Printf.sprintf "%.2f" ratio;
              string_of_int delivered;
              (if matches then "yes" else "NO");
            ])
          (if shards = 1 then [ None ] else [ None; armed ]))
      scale.shards
  in
  Report.table
    ~header:
      [
        "shards"; "rebalance"; "rows/s"; "checks"; "migrations"; "migrated qs";
        "final ratio"; "results"; "= 1 shard";
      ]
    ~rows;
  Report.note "final ratio: max(queries)·shards / total over the end-of-run";
  Report.note "placement — 1.0 is perfectly flat, %d is everything on one shard."
    max_shards
