(* ------------------------------------------------------------------ *)
(* Machine-readable capture                                             *)
(*                                                                      *)
(* When recording is on (cqctl bench --json DIR), everything the        *)
(* printing helpers below emit is also accumulated per section and      *)
(* flushed as BENCH_<id>.json — no experiment opts in explicitly.       *)
(* ------------------------------------------------------------------ *)

type metric = { m_name : string; m_value : float; m_unit : string }

type record = {
  rec_id : string;
  rec_title : string;
  mutable rec_params : (string * string) list;
  mutable rec_notes : string list;
  mutable rec_tables : (string list * string list list) list;
  mutable rec_metrics : metric list;
}

let json_dir : string option ref = ref None
let current : record option ref = ref None

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_str s = Printf.sprintf "\"%s\"" (json_escape s)

let json_num v =
  if Float.is_finite v then
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.9g" v
  else "null"

(* The metrics registry rendered as one JSON object: the [obs] block
   every BENCH_<id>.json carries.  Histograms are summarised (count /
   sum / min / max / p50 / p90 / p99) rather than dumped bucket by
   bucket. *)
let json_of_obs () =
  let module M = Cq_obs.Metrics in
  let snap = M.snapshot () in
  let counters =
    List.map
      (fun (name, v) -> Printf.sprintf "%s: %d" (json_str name) v)
      snap.M.snap_counters
  in
  let gauges =
    List.map
      (fun (name, v) -> Printf.sprintf "%s: %s" (json_str name) (json_num v))
      snap.M.snap_gauges
  in
  let hists =
    List.map
      (fun (name, (h : M.hist_summary)) ->
        Printf.sprintf
          "%s: {\"count\": %d, \"sum\": %s, \"min\": %s, \"max\": %s, \"p50\": %s, \
           \"p90\": %s, \"p99\": %s}"
          (json_str name) h.M.count (json_num h.M.sum) (json_num h.M.min_v)
          (json_num h.M.max_v) (json_num h.M.p50) (json_num h.M.p90) (json_num h.M.p99))
      snap.M.snap_histograms
  in
  Printf.sprintf
    "{\"enabled\": %b, \"counters\": {%s}, \"gauges\": {%s}, \"histograms\": {%s}}"
    (M.enabled ()) (String.concat ", " counters) (String.concat ", " gauges)
    (String.concat ", " hists)

let json_of_record r =
  let buf = Buffer.create 1024 in
  let add = Buffer.add_string buf in
  add "{\n";
  add (Printf.sprintf "  \"experiment\": %s,\n" (json_str r.rec_id));
  add (Printf.sprintf "  \"title\": %s,\n" (json_str r.rec_title));
  add "  \"params\": {";
  add
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s: %s" (json_str k) (json_str v))
          (List.rev r.rec_params)));
  add "},\n";
  add "  \"notes\": [";
  add (String.concat ", " (List.map json_str (List.rev r.rec_notes)));
  add "],\n";
  add "  \"metrics\": [";
  add
    (String.concat ", "
       (List.map
          (fun m ->
            Printf.sprintf "{\"name\": %s, \"value\": %s, \"unit\": %s}" (json_str m.m_name)
              (json_num m.m_value) (json_str m.m_unit))
          (List.rev r.rec_metrics)));
  add "],\n";
  add "  \"tables\": [";
  add
    (String.concat ", "
       (List.map
          (fun (header, rows) ->
            Printf.sprintf "{\"header\": [%s], \"rows\": [%s]}"
              (String.concat ", " (List.map json_str header))
              (String.concat ", "
                 (List.map
                    (fun row -> Printf.sprintf "[%s]" (String.concat ", " (List.map json_str row)))
                    rows)))
          (List.rev r.rec_tables)));
  add "],\n";
  add (Printf.sprintf "  \"obs\": %s\n" (json_of_obs ()));
  add "}\n";
  Buffer.contents buf

let flush_record () =
  match (!current, !json_dir) with
  | Some r, Some dir ->
      let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" r.rec_id) in
      let oc = open_out path in
      output_string oc (json_of_record r);
      close_out oc;
      current := None
  | _ -> current := None

let json_begin ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  json_dir := Some dir

let json_end () =
  flush_record ();
  json_dir := None

let record_metric name value unit_ =
  match !current with
  | Some r -> r.rec_metrics <- { m_name = name; m_value = value; m_unit = unit_ } :: r.rec_metrics
  | None -> ()

let json_param key value =
  match !current with Some r -> r.rec_params <- (key, value) :: r.rec_params | None -> ()

(* ------------------------------------------------------------------ *)
(* Printing and timing helpers                                          *)
(* ------------------------------------------------------------------ *)

let section id title =
  flush_record ();
  (* Each section's obs block is a per-experiment delta, not a running
     total since process start. *)
  Cq_obs.Metrics.reset ();
  if Option.is_some !json_dir then
    current :=
      Some
        {
          rec_id = id;
          rec_title = title;
          rec_params = [];
          rec_notes = [];
          rec_tables = [];
          rec_metrics = [];
        };
  Printf.printf "\n================================================================\n";
  Printf.printf "%s — %s\n" id title;
  Printf.printf "================================================================\n%!"

let note fmt =
  Format.kasprintf
    (fun s ->
      (match !current with Some r -> r.rec_notes <- s :: r.rec_notes | None -> ());
      Format.printf "  %s@." s)
    fmt

let table ~header ~rows =
  (match !current with Some r -> r.rec_tables <- (header, rows) :: r.rec_tables | None -> ());
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row -> List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let print_row row =
    print_string "  ";
    List.iteri (fun i cell -> Printf.printf "%-*s  " widths.(i) cell) row;
    print_newline ()
  in
  print_row header;
  print_row (List.init (List.length header) (fun i -> String.make widths.(i) '-'));
  List.iter print_row rows;
  print_string "\n";
  flush stdout

let throughput ~events ~warmup f =
  let n = Array.length events in
  if warmup >= n then invalid_arg "Report.throughput: no measured events";
  for i = 0 to warmup - 1 do
    f events.(i)
  done;
  let measured = n - warmup in
  let t0 = Cq_util.Clock.monotonic () in
  for i = warmup to n - 1 do
    f events.(i)
  done;
  let dt = Cq_util.Clock.monotonic () -. t0 in
  let rate = Cq_util.Clock.throughput ~events:measured ~seconds:dt in
  record_metric "throughput" rate "events_per_sec";
  rate

let time_per_op ~n f =
  if n <= 0 then invalid_arg "Report.time_per_op: n must be positive";
  let t0 = Cq_util.Clock.monotonic () in
  for i = 0 to n - 1 do
    f i
  done;
  let dt = Cq_util.Clock.monotonic () -. t0 in
  let ns = dt /. float_of_int n *. 1e9 in
  record_metric "time_per_op" ns "ns_per_op";
  ns

let fmt_throughput x =
  if x >= 1e6 then Printf.sprintf "%.2fM/s" (x /. 1e6)
  else if x >= 1e3 then Printf.sprintf "%.1fk/s" (x /. 1e3)
  else Printf.sprintf "%.1f/s" x

let fmt_ns x =
  if x >= 1e6 then Printf.sprintf "%.2fms" (x /. 1e6)
  else if x >= 1e3 then Printf.sprintf "%.2fus" (x /. 1e3)
  else Printf.sprintf "%.0fns" x

let fmt_f x =
  if Float.abs x >= 100.0 then Printf.sprintf "%.0f" x
  else if Float.abs x >= 1.0 then Printf.sprintf "%.2f" x
  else Printf.sprintf "%.4f" x
