(** Row/table printing and timing helpers shared by every experiment in
    the benchmark harness. *)

val section : string -> string -> unit
(** [section id title] prints an experiment header. *)

val note : ('a, Format.formatter, unit) format -> 'a
(** Free-form annotation under the current section. *)

val table : header:string list -> rows:string list list -> unit
(** Aligned plain-text table. *)

val throughput :
  events:'a array -> warmup:int -> ('a -> unit) -> float
(** Run the warmup prefix unmeasured, then time the rest; events/sec.
    @raise Invalid_argument if there are no measured events. *)

val time_per_op : n:int -> (int -> unit) -> float
(** Average time per call on the monotonic clock, in nanoseconds. *)

val fmt_throughput : float -> string
val fmt_ns : float -> string
val fmt_f : float -> string

(** {2 Machine-readable capture}

    Between {!json_begin} and {!json_end}, every {!section} opens a
    record, and {!note}/{!table}/{!throughput}/{!time_per_op} feed it;
    each record is flushed to [DIR/BENCH_<id>.json] when the next
    section starts (or at {!json_end}).  The JSON carries the
    experiment id, title, recorded params, notes, raw metrics
    ([events_per_sec] from {!throughput}, [ns_per_op] from
    {!time_per_op}), every printed table, and an [obs] block — the
    {!Cq_obs.Metrics} registry snapshot taken at flush time (reset at
    each section start, so the block is a per-experiment delta).  With
    metrics disabled the block is still present ([enabled] false,
    every registered value at zero). *)

val json_begin : dir:string -> unit
(** Start recording; creates [dir] if missing. *)

val json_end : unit -> unit
(** Flush the last open record and stop recording. *)

val json_param : string -> string -> unit
(** Attach a key/value parameter to the current record (no-op when
    recording is off or no section is open). *)

val record_metric : string -> float -> string -> unit
(** [record_metric name value unit] appends a raw metric to the current
    record — the hook experiments use for measurements that don't come
    from {!throughput}/{!time_per_op} (e.g. allocs per op, p99 latency).
    No-op when recording is off or no section is open. *)
