(* Overload management: degraded-answer accuracy at forced shed rates
   (claimed error bound vs observed error against an exact mirror) and
   the Block/Reject/Shed policy comparison under seeded ingest bursts. *)

module Par = Cq_engine.Parallel
module E = Cq_engine.Engine
module I = Cq_interval.Interval
module Rng = Cq_util.Rng

let p99 = function
  | [] -> 0.0
  | xs ->
      let a = Array.of_list xs in
      Array.sort Float.compare a;
      a.(min (Array.length a - 1) (Array.length a * 99 / 100))

let fmax = List.fold_left Float.max 0.0

(* The forced-rate workload, generated exactly like the shed oracle's:
   small enough that the exact answer is computable by brute force. *)
let gen_workload ~seed ~n_rows ~n_q =
  let rng = Rng.create seed in
  let mk_iv () =
    let lo = (Rng.float rng *. 1000.0) -. 200.0 in
    I.make lo (lo +. 1.0 +. (Rng.float rng *. 150.0))
  in
  let queries =
    Array.init n_q (fun _ ->
        if Rng.bool rng then `Band (mk_iv ()) else `Select (mk_iv (), mk_iv ()))
  in
  let batches = ref [] and left = ref n_rows in
  while !left > 0 do
    let len = min !left (1 + Rng.int rng 50) in
    left := !left - len;
    let side = if Rng.bool rng then Par.R else Par.S in
    let rows =
      Array.init len (fun _ -> (Rng.float rng *. 1000.0, Rng.float rng *. 1000.0))
    in
    batches := (side, rows) :: !batches
  done;
  (queries, List.rev !batches)

(* One forced-rate accuracy run; returns (worst observed error, claimed
   bound at that query, total observed, total exact). *)
let accuracy ~seed ~rate ~n_rows ~n_q =
  let queries, batches = gen_workload ~seed ~n_rows ~n_q in
  let t =
    Par.create ~alpha:0.1 ~seed ~shards:2 ~batch_size:32 ~overload:E.Config.Shed
      ~shed_rate:rate ()
  in
  let observed = Array.make n_q 0 in
  Array.iteri
    (fun qi q ->
      let cb _ _ = observed.(qi) <- observed.(qi) + 1 in
      match q with
      | `Band range -> ignore (Par.subscribe_band t ~range cb)
      | `Select (range_a, range_c) -> ignore (Par.subscribe_select t ~range_a ~range_c cb))
    queries;
  (* Periodic flushes keep queue depths far from the shed grace window
     so no whole chunk is ever dropped: the claimed bounds this part
     checks are only valid with zero dropped rows. *)
  List.iteri
    (fun i (side, rows) ->
      Par.ingest_batch t side rows;
      if i mod 4 = 3 then ignore (Par.flush t))
    batches;
  ignore (Par.flush t);
  let info = Par.shed_info t in
  let totals = Par.shed_totals t in
  Par.shutdown t;
  if totals.Par.par_dropped_rows > 0 then
    Cq_util.Error.corrupt ~structure:"bench.overload"
      "accuracy run dropped %d rows whole — claimed bounds would be invalid; rerun on a \
       less loaded machine"
      totals.Par.par_dropped_rows;
  let rs = ref [] and ss = ref [] in
  List.iter
    (fun (side, rows) ->
      match side with
      | Par.R -> Array.iter (fun row -> rs := row :: !rs) rows
      | Par.S -> Array.iter (fun row -> ss := row :: !ss) rows)
    batches;
  let exact qi =
    let n = ref 0 in
    List.iter
      (fun (ra, rb) ->
        List.iter
          (fun (sb, sc) ->
            let hit =
              match queries.(qi) with
              | `Band w -> I.stabs w (sb -. rb)
              | `Select (wa, wc) -> rb = sb && I.stabs wa ra && I.stabs wc sc
            in
            if hit then incr n)
          !ss)
      !rs;
    !n
  in
  let worst_err = ref 0.0 and worst_claim = ref 0.0 in
  let tot_obs = ref 0 and tot_exact = ref 0 in
  List.iter
    (fun (d : E.degraded) ->
      let n = exact d.deg_qid in
      tot_obs := !tot_obs + d.deg_observed;
      tot_exact := !tot_exact + n;
      let err = Float.abs (d.deg_estimate -. float_of_int n) in
      if err > !worst_err then begin
        worst_err := err;
        worst_claim := d.deg_claimed_error
      end)
    info;
  (!worst_err, !worst_claim, !tot_obs, !tot_exact)

(* One burst replay under a policy; returns latency/counter summary. *)
let burst_run ~seed ~n_ops policy =
  let t = Par.create ~alpha:0.1 ~seed ~shards:2 ~batch_size:8 ~overload:policy () in
  let rng = Rng.create (seed + 0xb17) in
  for _ = 1 to 12 do
    let lo = (Rng.float rng *. 30.0) -. 15.0 in
    let range = I.make lo (lo +. 1.0 +. (Rng.float rng *. 5.0)) in
    ignore (Par.subscribe_band t ~range (fun _ _ -> ()))
  done;
  let ingest_ns = ref [] and flush_ns = ref [] and rejected = ref 0 in
  let timed cell f =
    let r, dt = Cq_util.Clock.time_ns f in
    cell := Int64.to_float dt :: !cell;
    r
  in
  let ingest side rows =
    match timed ingest_ns (fun () -> Par.try_ingest_batch t side rows) with
    | Ok () -> ()
    | Error _ -> incr rejected
  in
  Array.iter
    (fun op ->
      match op with
      | Cq_robust.Fault.Burst_r rows -> ingest Par.R rows
      | Cq_robust.Fault.Burst_s rows -> ingest Par.S rows
      | Cq_robust.Fault.Burst_flush -> ignore (timed flush_ns (fun () -> Par.flush t)))
    (Cq_robust.Fault.gen_burst ~seed ~n:n_ops);
  ignore (timed flush_ns (fun () -> Par.flush t));
  let totals = Par.shed_totals t in
  Par.shutdown t;
  ( p99 !ingest_ns,
    fmax !ingest_ns,
    p99 !flush_ns,
    !rejected,
    totals.Par.par_kept,
    totals.Par.par_dropped,
    totals.Par.par_dropped_rows )

let overload (scale : Setup.scale) =
  Report.section "overload" "Overload management: admission control and load shedding";
  Report.note "Part A (accuracy): a seeded workload runs through the Shed policy at";
  Report.note "forced keep-rates; per-query Horvitz-Thompson estimates must land";
  Report.note "inside their claimed error bounds (checked here against an exact";
  Report.note "brute-force mirror; fuzzed across seeds by Oracle.run_shed).";
  Report.note "Part B (latency): the same seeded burst stream (ingest outrunning";
  Report.note "drain) replays under each overload policy; Shed must keep ingest";
  Report.note "calls non-blocking where Block absorbs the queue wait.";
  let seed = 11 in
  let n_rows = max 400 scale.Setup.events in
  let n_q = 16 in
  let canonical_rate = 0.5 in
  let acc_rows =
    List.map
      (fun rate ->
        let err, claim, obs, exact = accuracy ~seed ~rate ~n_rows ~n_q in
        if rate = canonical_rate then begin
          Report.json_param "shed_rate" (Printf.sprintf "%.2f" rate);
          Report.json_param "observed_error" (Printf.sprintf "%.3f" err);
          Report.json_param "claimed_error" (Printf.sprintf "%.3f" claim)
        end;
        [
          Printf.sprintf "%.2f" rate;
          string_of_int obs;
          string_of_int exact;
          Printf.sprintf "%.1f" err;
          Printf.sprintf "%.1f" claim;
        ])
      [ 0.25; 0.5; 0.75 ]
  in
  Report.table
    ~header:[ "keep-rate"; "delivered"; "exact"; "worst |est-N|"; "claimed bound" ]
    ~rows:acc_rows;
  Report.note "Shed's per-query bounds cover coin drops only: whole chunks dropped";
  Report.note "past the grace window (dropped-rows column) reach no shard and are";
  Report.note "outside the bounds — nonzero dropped rows invalidates them.";
  let n_ops = max 60 (scale.Setup.events / 2) in
  let pol_rows =
    List.map
      (fun policy ->
        let ing99, ingmax, fl99, rejected, kept, dropped, dropped_rows =
          burst_run ~seed ~n_ops policy
        in
        let name = E.Config.overload_to_string policy in
        Report.json_param (name ^ "_p99_ingest_ns") (Printf.sprintf "%.0f" ing99);
        Report.json_param (name ^ "_p99_flush_ns") (Printf.sprintf "%.0f" fl99);
        if policy = E.Config.Shed then
          Report.json_param "shed_dropped_rows" (string_of_int dropped_rows);
        [
          name;
          Report.fmt_ns ing99;
          Report.fmt_ns ingmax;
          Report.fmt_ns fl99;
          string_of_int rejected;
          string_of_int kept;
          string_of_int dropped;
          string_of_int dropped_rows;
        ])
      [ E.Config.Block; E.Config.Reject; E.Config.Shed ]
  in
  Report.table
    ~header:
      [
        "policy";
        "ingest p99";
        "ingest max";
        "flush p99";
        "rejected";
        "kept";
        "dropped";
        "dropped rows";
      ]
    ~rows:pol_rows
