let int_pair (a1, b1) (a2, b2) =
  match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c

let float_pair (a1, b1) (a2, b2) =
  match Float.compare a1 a2 with 0 -> Float.compare b1 b2 | c -> c

let by f cmp a b = cmp (f a) (f b)
