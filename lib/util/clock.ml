external monotonic_ns : unit -> int64 = "cq_clock_monotonic_ns"

let now () = Unix.gettimeofday ()

let monotonic () = Int64.to_float (monotonic_ns ()) *. 1e-9

let time f =
  let t0 = monotonic_ns () in
  let r = f () in
  (r, Int64.to_float (Int64.sub (monotonic_ns ()) t0) *. 1e-9)

let time_ns f =
  let t0 = monotonic_ns () in
  let r = f () in
  (r, Int64.sub (monotonic_ns ()) t0)

let throughput ~events ~seconds =
  if seconds <= 0.0 then 0.0 else float_of_int events /. seconds
