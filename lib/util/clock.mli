(** Timing for the benchmark harness and the observability layer.

    Two clocks, deliberately distinct:

    - {!now} is the {e wall clock} — subject to NTP slews and
      administrative jumps, meaningful only for display ("the run
      started at ...").  Never subtract two [now] readings to measure
      a duration.
    - {!monotonic_ns} / {!monotonic} read [CLOCK_MONOTONIC] through a
      C stub: an arbitrary-origin clock that never goes backwards,
      which is what {!time}, {!throughput} and every latency metric
      are built on. *)

val now : unit -> float
(** Seconds since the epoch, wall clock.  Display only. *)

val monotonic_ns : unit -> int64
(** Nanoseconds on the monotonic clock (arbitrary origin); the
    substrate for all interval measurements. *)

val monotonic : unit -> float
(** {!monotonic_ns} in seconds. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed
    {e monotonic} time in seconds. *)

val time_ns : (unit -> 'a) -> 'a * int64
(** Like {!time}, in monotonic nanoseconds. *)

val throughput : events:int -> seconds:float -> float
(** Events per second; 0 when [seconds] is not positive. *)
