type t =
  | Invalid_parameter of { name : string; value : string; expected : string }
  | Not_finite of { name : string; value : float }
  | Empty_range of { name : string }
  | Duplicate of { what : string }
  | Absent of { what : string }
  | Corrupt of { structure : string; detail : string }
  | Overload of { shard : int; queue_depth : int; retry_after_ms : float }

exception Cq_error of t

let to_string = function
  | Invalid_parameter { name; value; expected } ->
      Printf.sprintf "invalid %s = %s (expected %s)" name value expected
  | Not_finite { name; value } -> Printf.sprintf "%s = %h is not finite" name value
  | Empty_range { name } -> Printf.sprintf "%s is an empty range" name
  | Duplicate { what } -> Printf.sprintf "%s is already present" what
  | Absent { what } -> Printf.sprintf "%s is not present" what
  | Corrupt { structure; detail } -> Printf.sprintf "%s is corrupt: %s" structure detail
  | Overload { shard; queue_depth; retry_after_ms } ->
      Printf.sprintf "shard %d overloaded (queue depth %d); retry after %.1f ms" shard queue_depth
        retry_after_ms

let pp fmt e = Format.pp_print_string fmt (to_string e)

let () =
  Printexc.register_printer (function
    | Cq_error e -> Some (Printf.sprintf "Cq_error (%s)" (to_string e))
    | _ -> None)

let raise_ e = raise (Cq_error e)
let ok_exn = function Ok v -> v | Error e -> raise_ e
let corrupt ~structure fmt = Printf.ksprintf (fun detail -> raise_ (Corrupt { structure; detail })) fmt

let finite ~name v =
  if Float.is_finite v then Ok v else Error (Not_finite { name; value = v })

let in_unit_open_closed ~name v =
  if Float.is_finite v && v > 0.0 && v <= 1.0 then Ok v
  else
    Error (Invalid_parameter { name; value = Printf.sprintf "%g" v; expected = "0 < value <= 1" })

let positive ~name v =
  if Float.is_finite v && v > 0.0 then Ok v
  else
    Error
      (Invalid_parameter { name; value = Printf.sprintf "%g" v; expected = "a finite value > 0" })

let at_least ~name ~min v =
  if v >= min then Ok v
  else
    Error
      (Invalid_parameter
         { name; value = string_of_int v; expected = Printf.sprintf "an integer >= %d" min })

let both a b = match (a, b) with Ok a, Ok b -> Ok (a, b) | Error e, _ | _, Error e -> Error e
