let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (acc /. float_of_int n)
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    sorted.(idx)
  end

let median xs = percentile xs 50.0

let geometric_mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else if Array.exists (fun x -> x <= 0.0) xs then 0.0
  else exp (Array.fold_left (fun a x -> a +. log x) 0.0 xs /. float_of_int n)
