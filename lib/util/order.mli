(** Monomorphic comparators for the hot paths.

    Polymorphic [compare] walks the runtime representation: it is an
    indirect call per comparison, and on floats it orders NaN
    inconsistently with IEEE semantics.  Every sort or membership test
    in the library goes through an explicit comparator instead —
    [cqlint] rule CQL001 enforces this. *)

val int_pair : int * int -> int * int -> int
(** Lexicographic order on [int] pairs — (qid, sid) result lists. *)

val float_pair : float * float -> float * float -> int
(** Lexicographic order via [Float.compare] (total, NaN-last) —
    endpoint span lists. *)

val by : ('a -> 'b) -> ('b -> 'b -> int) -> 'a -> 'a -> int
(** [by f cmp] compares through a projection: [cmp (f a) (f b)]. *)
