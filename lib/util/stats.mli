(** Small numeric summaries used when reporting experiment results. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0 on arrays of length < 2. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]] (values outside are
    clamped), nearest-rank on a sorted copy; [p = 0] is the minimum,
    [p = 100] the maximum; 0 on the empty array. *)

val median : float array -> float

val geometric_mean : float array -> float
(** Geometric mean of strictly positive values; 0 if any value <= 0. *)
