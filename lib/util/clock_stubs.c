/* Monotonic clock for Cq_util.Clock: CLOCK_MONOTONIC nanoseconds.
   Wall-clock time stays on the OCaml side (Unix.gettimeofday); this
   stub exists because neither the stdlib Unix library nor any baked-in
   opam package exposes clock_gettime. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <stdint.h>

CAMLprim value cq_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL + (int64_t)ts.tv_nsec);
}
