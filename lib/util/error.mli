(** Shared error taxonomy for API-boundary validation.

    The library-internal data structures guard their preconditions with
    [invalid_arg]; user-facing boundaries (the engine, the fuzz
    harness) instead classify bad inputs into this taxonomy so callers
    can match on the failure rather than parse exception strings.
    Boundary modules offer [try_]-prefixed [result]-returning variants;
    their exceptional twins raise {!Cq_error} — never a bare
    [Invalid_argument]. *)

type t =
  | Invalid_parameter of { name : string; value : string; expected : string }
      (** A configuration knob outside its documented domain
          (e.g. [alpha] outside (0, 1]). *)
  | Not_finite of { name : string; value : float }
      (** NaN or infinite where a finite attribute value is required —
          admitted once, these silently corrupt ordered indexes. *)
  | Empty_range of { name : string }
      (** A query window with no points: the subscription could never
          fire and is almost certainly a caller bug. *)
  | Duplicate of { what : string }  (** Element already present. *)
  | Absent of { what : string }  (** Element not present. *)
  | Corrupt of { structure : string; detail : string }
      (** A structural invariant audit failed: [structure] names the
          offending index or partition, [detail] the broken check.
          Raised (never returned) by [check_invariants]-style audits;
          [Cq_robust.Invariant.guard] converts it into a recorded
          violation. *)
  | Overload of { shard : int; queue_depth : int; retry_after_ms : float }
      (** Admission control refused a batch: the named shard's ingest
          queue is too deep to accept it without blocking.  The caller
          should back off for roughly [retry_after_ms] milliseconds
          and retry — or switch the engine to [Shed] mode and accept
          bounded-error degraded answers instead. *)

exception Cq_error of t

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val raise_ : t -> 'a
(** Raise {!Cq_error}. *)

val ok_exn : ('a, t) result -> 'a
(** [Ok v -> v]; [Error e] raises {!Cq_error}. *)

val corrupt : structure:string -> ('a, unit, string, 'b) format4 -> 'a
(** [corrupt ~structure fmt ...] raises {!Cq_error} with a {!Corrupt}
    payload — the audit-failure channel replacing bare [failwith]. *)

(** {2 Validators} *)

val finite : name:string -> float -> (float, t) result
(** Reject NaN and infinities. *)

val in_unit_open_closed : name:string -> float -> (float, t) result
(** Require [0 < v <= 1] (the hotspot threshold's domain). *)

val positive : name:string -> float -> (float, t) result
(** Require a finite [v > 0]. *)

val at_least : name:string -> min:int -> int -> (int, t) result
(** Require an integer [v >= min] (shard counts, batch sizes, queue
    capacities). *)

val both : ('a, t) result -> ('b, t) result -> ('a * 'b, t) result
(** First error wins. *)
