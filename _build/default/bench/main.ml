(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section, plus the DESIGN.md ablations and bechamel
   micro-benchmarks.

   Usage:
     main.exe                 run everything at quick (laptop) scale
     main.exe --paper         only the paper's tables/figures
     main.exe --full          paper-scale sizes (slower)
     main.exe fig10i fig12    selected experiments
     main.exe micro           micro-benchmarks only
     main.exe --list          list experiment ids *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = List.mem "--full" args in
  let scale = if full then Cq_bench.Setup.full else Cq_bench.Setup.quick in
  let selected =
    List.filter (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--")) args
  in
  if List.mem "--list" args then begin
    List.iter print_endline (Cq_bench.Registry.ids ());
    print_endline "micro"
  end
  else if selected <> [] then
    List.iter
      (fun id ->
        if id = "micro" then Cq_bench.Micro.run ()
        else
          match Cq_bench.Registry.find id with
          | Some e -> e.run scale
          | None ->
              Printf.eprintf "unknown experiment %S; try --list\n" id;
              exit 1)
      selected
  else if List.mem "--paper" args then Cq_bench.Registry.run_paper scale
  else begin
    Cq_bench.Registry.run_all scale;
    Cq_bench.Micro.run ()
  end
