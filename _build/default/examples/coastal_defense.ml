(* Example 2 from the paper: coastal-defense monitoring with band
   joins.

     Unit(id, model, pos)      ~ R(A = model code, B = pos)
     Target(id, type, pos)     ~ S(B = pos, C = type code)

   Each class of units registers

     Unit ⋈_{Target.pos − Unit.pos ∈ range} Target

   where [range] is the class's firing envelope.  Classes share
   envelopes, so the band windows cluster into a handful of hotspots.

   Run with: dune exec examples/coastal_defense.exe *)

module I = Cq_interval.Interval
module Engine = Cq_engine.Engine
module Rng = Cq_util.Rng
module Dist = Cq_util.Dist

let coast_length = 100_000.0

type unit_class = { name : string; range : I.t; batteries : int }

(* Firing envelopes in metres, relative to the unit's position:
   symmetric for guns, forward-biased for missiles. *)
let classes =
  [
    { name = "gun battery mk-I"; range = I.make (-800.0) 800.0; batteries = 240 };
    { name = "gun battery mk-II"; range = I.make (-1_200.0) 1_200.0; batteries = 180 };
    { name = "missile battery"; range = I.make (-200.0) 3_000.0; batteries = 60 };
    { name = "close-in defense"; range = I.make (-150.0) 150.0; batteries = 400 };
  ]

let () =
  Format.printf "=== coastal defense: band joins over unit/target positions ===@.@.";
  let rng = Rng.create 7 in
  let engine = Engine.create ~alpha:0.05 () in

  (* One continuous band query per battery (each battery has its own
     class envelope — heavy clustering by class). *)
  let alerts = Hashtbl.create 16 in
  List.iter
    (fun c ->
      for _ = 1 to c.batteries do
        (* Jitter per battery: calibration differences. *)
        let jitter = Dist.normal rng ~mu:0.0 ~sigma:15.0 in
        ignore
          (Engine.subscribe_band engine ~range:(I.shift c.range jitter) (fun _unit _target ->
               Hashtbl.replace alerts c.name
                 (1 + Option.value ~default:0 (Hashtbl.find_opt alerts c.name))))
      done)
    classes;

  let stats = Engine.stats engine in
  Format.printf "%d batteries registered; %d band hotspots, coverage %.1f%%@.@."
    (Engine.band_query_count engine)
    stats.Engine.band_hotspots
    (100.0 *. stats.Engine.band_coverage);

  (* Deploy units along the coast (insertions into R). *)
  for _ = 1 to 200 do
    ignore
      (Engine.insert_r engine ~a:0.0 ~b:(Dist.uniform rng ~lo:0.0 ~hi:coast_length))
  done;

  (* Stream of target sightings (insertions into S): each sighting is
     matched against every battery whose envelope covers it, via the
     symmetric SSI path. *)
  let n_sightings = 300 in
  let results = ref 0 in
  let _, dt =
    Cq_util.Clock.time (fun () ->
        for _ = 1 to n_sightings do
          let pos = Dist.uniform rng ~lo:0.0 ~hi:coast_length in
          let _, k = Engine.insert_s engine ~b:pos ~c:1.0 in
          results := !results + k
        done)
  in
  Format.printf "processed %d sightings in %.2fs (%.0f/s), %d engagement alerts@.@."
    n_sightings dt
    (float_of_int n_sightings /. dt)
    !results;

  List.iter
    (fun c ->
      Format.printf "  %-18s %6d alerts@." c.name
        (Option.value ~default:0 (Hashtbl.find_opt alerts c.name)))
    classes;
  Format.printf "@.%a@." Engine.pp_stats (Engine.stats engine)
