examples/quickstart.mli:
