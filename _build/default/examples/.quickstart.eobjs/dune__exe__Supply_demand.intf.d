examples/supply_demand.mli:
