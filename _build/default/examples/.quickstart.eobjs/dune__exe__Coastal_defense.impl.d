examples/coastal_defense.ml: Cq_engine Cq_interval Cq_util Format Hashtbl List Option
