examples/market_monitor.mli:
