examples/quickstart.ml: Cq_engine Cq_interval Cq_relation Format
