examples/supply_demand.ml: Array Cq_engine Cq_interval Cq_util Float Format
