examples/market_monitor.ml: Array Cq_histogram Cq_interval Cq_joins Cq_util Float Format Hotspot_core List
