examples/coastal_defense.mli:
