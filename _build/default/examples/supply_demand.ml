(* Example 1 from the paper: a listing database for merchants.

     Supply(suppId, prodId, quantity)   ~ R(A = quantity, B = prodId)
     Demand(custId, prodId, quantity)   ~ S(B = prodId, C = quantity)

   Each merchant registers the continuous query

     σ_{quantity ∈ rangeS_i} Supply ⋈_{prodId} σ_{quantity ∈ rangeD_i} Demand

   Wholesalers watch large quantities, small retailers small ones — so
   the quantity ranges cluster into hotspots, which is exactly what the
   tracker discovers and exploits.

   Run with: dune exec examples/supply_demand.exe *)

module I = Cq_interval.Interval
module Engine = Cq_engine.Engine
module Rng = Cq_util.Rng
module Dist = Cq_util.Dist

let n_merchants = 5_000
let n_products = 200
let n_events = 2_000

let () =
  Format.printf "=== supply/demand monitoring: %d merchants, %d products ===@.@." n_merchants
    n_products;
  let rng = Rng.create 2024 in
  let engine = Engine.create ~alpha:0.01 () in

  (* Two merchant populations with clustered interests. *)
  let matches = Array.make n_merchants 0 in
  for m = 0 to n_merchants - 1 do
    let wholesaler = Rng.float rng < 0.4 in
    let centre, spread =
      if wholesaler then (8_000.0, 600.0) (* big-quantity cluster *)
      else (300.0, 120.0) (* small retailers *)
    in
    let mid_s = Dist.normal rng ~mu:centre ~sigma:spread in
    let mid_d = Dist.normal rng ~mu:centre ~sigma:spread in
    let len = Float.abs (Dist.normal rng ~mu:(spread *. 2.0) ~sigma:spread) in
    ignore
      (Engine.subscribe_select engine
         ~range_a:(I.of_midpoint ~mid:mid_s ~len)
         ~range_c:(I.of_midpoint ~mid:mid_d ~len)
         (fun _supply _demand -> matches.(m) <- matches.(m) + 1))
  done;

  let stats = Engine.stats engine in
  Format.printf "after registration: %d hotspots on the demand axis, coverage %.1f%%@."
    stats.Engine.select_hotspots
    (100.0 *. stats.Engine.select_coverage);

  (* Stream supply and demand listings. *)
  let product () = float_of_int (Rng.int rng n_products) in
  let quantity () =
    if Rng.bool rng then Float.abs (Dist.normal rng ~mu:8000.0 ~sigma:900.0)
    else Float.abs (Dist.normal rng ~mu:300.0 ~sigma:200.0)
  in
  let _, dt =
    Cq_util.Clock.time (fun () ->
        for _ = 1 to n_events do
          if Rng.bool rng then ignore (Engine.insert_r engine ~a:(quantity ()) ~b:(product ()))
          else ignore (Engine.insert_s engine ~b:(product ()) ~c:(quantity ()))
        done)
  in

  let stats = Engine.stats engine in
  Format.printf "@.%a@." Engine.pp_stats stats;
  Format.printf "processed %d listings in %.2fs (%.0f events/s)@." n_events dt
    (float_of_int n_events /. dt);

  (* Who got matched? *)
  let matched = Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 matches in
  let total = Array.fold_left ( + ) 0 matches in
  Format.printf "%d of %d merchants saw at least one supply/demand match (%d matches total)@."
    matched n_merchants total
