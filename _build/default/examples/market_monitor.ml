(* The introduction's stock-market scenario: traders register
   continuous queries over price/earning ratios, with a high-density
   cluster at low P/E because traders hunt for value.  The example
   shows (1) the hotspot tracker following interest as it drifts — the
   paper's summer/winter analogy — and (2) the SSI histogram estimating
   how many queries an incoming quote will satisfy (Section 3.3's
   selectivity estimation).

   Run with: dune exec examples/market_monitor.exe *)

module I = Cq_interval.Interval
module Rng = Cq_util.Rng
module Dist = Cq_util.Dist
module BQ = Cq_joins.Band_query
module Tracker = Hotspot_core.Hotspot_tracker.Make (BQ.Elem)

let n_traders = 4_000

let pe_interest rng ~regime =
  (* Bull regimes chase growth (high P/E); bear regimes hunt value. *)
  let mid =
    match regime with
    | `Bear -> Float.abs (Dist.normal rng ~mu:8.0 ~sigma:2.0)
    | `Bull -> Float.abs (Dist.normal rng ~mu:35.0 ~sigma:6.0)
  in
  let len = Float.abs (Dist.normal rng ~mu:4.0 ~sigma:2.0) in
  I.of_midpoint ~mid ~len

let describe tracker label =
  Format.printf "%-22s hotspots: %d, coverage %.1f%%, scattered groups: %d@." label
    (Tracker.num_hotspots tracker)
    (100.0 *. Tracker.coverage tracker)
    (Tracker.scattered_groups tracker);
  List.iter
    (fun (_, stab, members) ->
      Format.printf "    hotspot at P/E %.1f with %d traders@." stab (List.length members))
    (Tracker.hotspots tracker)

let () =
  Format.printf "=== market monitor: hotspots in trader P/E interests ===@.@.";
  let rng = Rng.create 11 in
  let tracker = Tracker.create ~alpha:0.05 () in

  (* Bear market: most traders watch low P/E. *)
  let bear_queries =
    Array.init n_traders (fun qid -> BQ.make ~qid ~range:(pe_interest rng ~regime:`Bear))
  in
  Array.iter (fun q -> Tracker.insert tracker q) bear_queries;
  describe tracker "bear market:";

  (* Sentiment shifts: traders re-register with growth-oriented
     ranges; the tracker demotes the value hotspot and promotes the
     growth one, with amortized O(1) interval moves (invariant I3). *)
  Format.printf "@.sentiment shift to growth ...@.";
  Array.iteri
    (fun i q ->
      if i mod 4 <> 0 then begin
        (* 3/4 of traders switch to bull-regime interests. *)
        ignore (Tracker.delete tracker q);
        Tracker.insert tracker
          (BQ.make ~qid:(n_traders + i) ~range:(pe_interest rng ~regime:`Bull))
      end)
    bear_queries;
  describe tracker "bull market:";
  Format.printf "moves per update: %.2f (Theorem 1 bound: 5)@.@."
    (float_of_int (Tracker.moves tracker) /. float_of_int (Tracker.updates tracker));

  (* Selectivity estimation: how many trader queries does a quote at a
     given P/E stab?  SSI-HIST answers from a compact histogram. *)
  let live_ranges =
    let acc = ref [] in
    List.iter (fun (_, _, ms) -> List.iter (fun q -> acc := q.BQ.range :: !acc) ms)
      (Tracker.hotspots tracker);
    List.iter (fun q -> acc := q.BQ.range :: !acc) (Tracker.scattered tracker);
    Array.of_list !acc
  in
  let hist = Cq_histogram.Ssi_hist.build live_ranges ~buckets:160 in
  let truth = Cq_histogram.Step_fn.of_intervals live_ranges in
  Format.printf "SSI histogram over %d live ranges: %d groups, %d buckets@."
    (Array.length live_ranges)
    (Cq_histogram.Ssi_hist.num_groups hist)
    (Cq_histogram.Ssi_hist.buckets_used hist);
  List.iter
    (fun pe ->
      Format.printf "  quote at P/E %5.1f -> estimated %6.0f affected, true %6.0f@." pe
        (Cq_histogram.Ssi_hist.estimate hist pe)
        (Cq_histogram.Step_fn.eval truth pe))
    [ 5.0; 8.0; 12.0; 20.0; 35.0; 50.0 ]
