(* Quickstart: register continuous queries against the engine, stream
   tuples into both relations, watch results arrive through callbacks.

   Run with: dune exec examples/quickstart.exe *)

module I = Cq_interval.Interval
module Engine = Cq_engine.Engine

let () =
  print_endline "=== quickstart: continuous queries over R(A,B) ⋈ S(B,C) ===\n";

  let engine = Engine.create ~alpha:0.2 () in

  (* A band join: alert whenever an S tuple lands within ±5 of an R
     tuple on the join attribute B.  The optional retraction callback
     fires when a previously reported pair disappears. *)
  let band_hits = ref 0 in
  let _band =
    Engine.subscribe_band engine
      ~on_retract:(fun r s ->
        Format.printf "  RETRACTED:     %a / %a@." Cq_relation.Tuple.pp_r r
          Cq_relation.Tuple.pp_s s)
      ~range:(I.make (-5.0) 5.0)
      (fun r s ->
        incr band_hits;
        Format.printf "  band result:   %a within 5 of %a@." Cq_relation.Tuple.pp_r r
          Cq_relation.Tuple.pp_s s)
  in

  (* An equality join with local selections: R.A must fall in [10, 20]
     and S.C in [100, 200]. *)
  let select_hits = ref 0 in
  let sel =
    Engine.subscribe_select engine ~range_a:(I.make 10.0 20.0) ~range_c:(I.make 100.0 200.0)
      (fun r s ->
        incr select_hits;
        Format.printf "  select result: %a matches %a@." Cq_relation.Tuple.pp_r r
          Cq_relation.Tuple.pp_s s)
  in

  (* Pre-load some S data (continuous queries report only future
     changes, so loading is silent). *)
  Engine.load_s engine [| (42.0, 150.0); (42.0, 999.0); (70.0, 120.0) |];

  print_endline "insert r(A=15, B=42):";
  ignore (Engine.insert_r engine ~a:15.0 ~b:42.0);

  print_endline "insert r(A=50, B=68):";
  ignore (Engine.insert_r engine ~a:50.0 ~b:68.0);

  (* S-side arrivals are symmetric: they join against everything R has
     seen so far. *)
  print_endline "insert s(B=68, C=1):";
  ignore (Engine.insert_s engine ~b:68.0 ~c:1.0);

  (* Deleting a tuple retracts the results it contributed. *)
  print_endline "\ndeleting r(A=50, B=68):";
  let r_gone = { Cq_relation.Tuple.rid = 1; a = 50.0; b = 68.0 } in
  (match Engine.delete_r engine r_gone with
  | Some k -> Format.printf "  %d result(s) retracted@." k
  | None -> print_endline "  tuple not found");

  print_endline "\nunsubscribing the select query and re-sending:";
  ignore (Engine.unsubscribe engine sel);
  ignore (Engine.insert_r engine ~a:15.0 ~b:42.0);

  Format.printf "\n%a@." Engine.pp_stats (Engine.stats engine);
  Format.printf "band results: %d, select results: %d@." !band_hits !select_hits
