(* Direct tests for the interval algebra every other module leans on. *)

module I = Cq_interval.Interval

let interval_gen =
  QCheck2.Gen.(
    map2
      (fun a b -> if a <= b then I.make a b else I.make b a)
      (map float_of_int (int_bound 100))
      (map float_of_int (int_bound 100)))

let point_gen = QCheck2.Gen.(map float_of_int (int_bound 100))

let prop_inter_is_intersection =
  QCheck2.Test.make ~name:"inter: x in a∩b iff x in a and x in b" ~count:500
    QCheck2.Gen.(triple interval_gen interval_gen point_gen)
    (fun (a, b, x) -> I.stabs (I.inter a b) x = (I.stabs a x && I.stabs b x))

let prop_hull_contains_both =
  QCheck2.Test.make ~name:"hull contains both arguments" ~count:500
    QCheck2.Gen.(pair interval_gen interval_gen)
    (fun (a, b) ->
      let h = I.hull a b in
      I.contains h a && I.contains h b)

let prop_overlap_symmetric =
  QCheck2.Test.make ~name:"overlaps symmetric, consistent with inter" ~count:500
    QCheck2.Gen.(pair interval_gen interval_gen)
    (fun (a, b) ->
      I.overlaps a b = I.overlaps b a && I.overlaps a b = not (I.is_empty (I.inter a b)))

let prop_shift_translates_stabs =
  QCheck2.Test.make ~name:"shift translates membership" ~count:500
    QCheck2.Gen.(triple interval_gen point_gen point_gen)
    (fun (a, d, x) -> I.stabs (I.shift a d) (x +. d) = I.stabs a x)

let prop_inter_assoc_comm =
  QCheck2.Test.make ~name:"inter associative and commutative" ~count:500
    QCheck2.Gen.(triple interval_gen interval_gen interval_gen)
    (fun (a, b, c) ->
      I.equal (I.inter a b) (I.inter b a)
      && I.equal (I.inter (I.inter a b) c) (I.inter a (I.inter b c)))

let prop_contains_iff_inter_fixed =
  QCheck2.Test.make ~name:"contains a b iff a∩b = b" ~count:500
    QCheck2.Gen.(pair interval_gen interval_gen)
    (fun (a, b) -> I.contains a b = I.equal (I.inter a b) b)

let prop_compare_lo_total_order =
  QCheck2.Test.make ~name:"compare_lo antisymmetric on distinct intervals" ~count:500
    QCheck2.Gen.(pair interval_gen interval_gen)
    (fun (a, b) ->
      let c1 = I.compare_lo a b and c2 = I.compare_lo b a in
      if I.equal a b then c1 = 0 && c2 = 0 else c1 = -c2)

let test_constructors () =
  Alcotest.check_raises "lo > hi" (Invalid_argument "Interval.make: lo > hi") (fun () ->
      ignore (I.make 2.0 1.0));
  Alcotest.check_raises "NaN" (Invalid_argument "Interval.make: NaN bound") (fun () ->
      ignore (I.make Float.nan 1.0));
  let p = I.point 3.0 in
  Alcotest.(check (float 0.0)) "point lo" 3.0 (I.lo p);
  Alcotest.(check (float 0.0)) "point hi" 3.0 (I.hi p);
  Alcotest.(check (float 0.0)) "point length" 0.0 (I.length p);
  let m = I.of_midpoint ~mid:5.0 ~len:4.0 in
  Alcotest.(check (float 1e-12)) "midpoint" 5.0 (I.midpoint m);
  Alcotest.(check (float 1e-12)) "length" 4.0 (I.length m);
  (* Negative lengths clamp to a point. *)
  Alcotest.(check (float 0.0)) "negative length" 0.0 (I.length (I.of_midpoint ~mid:1.0 ~len:(-3.0)))

let test_empty_behaviour () =
  Alcotest.(check bool) "empty is empty" true (I.is_empty I.empty);
  Alcotest.(check bool) "empty stabs nothing" false (I.stabs I.empty 0.0);
  Alcotest.(check bool) "empty overlaps nothing" false (I.overlaps I.empty (I.make 0.0 1.0));
  Alcotest.(check bool) "inter with empty" true (I.is_empty (I.inter I.empty (I.make 0.0 1.0)));
  Alcotest.(check bool) "hull identity" true (I.equal (I.make 0.0 1.0) (I.hull I.empty (I.make 0.0 1.0)));
  Alcotest.(check bool) "everything contains empty" true (I.contains (I.make 0.0 1.0) I.empty);
  Alcotest.(check (float 0.0)) "empty length" 0.0 (I.length I.empty);
  Alcotest.(check string) "pp empty" "[empty]" (I.to_string I.empty)

let test_closed_endpoints () =
  let iv = I.make 1.0 2.0 in
  Alcotest.(check bool) "lo endpoint" true (I.stabs iv 1.0);
  Alcotest.(check bool) "hi endpoint" true (I.stabs iv 2.0);
  Alcotest.(check bool) "touching intervals overlap" true (I.overlaps iv (I.make 2.0 3.0));
  Alcotest.(check bool) "point overlap" true (I.overlaps (I.point 2.0) iv)

let test_random_normalised () =
  let rng = Cq_util.Rng.create 3 in
  for _ = 1 to 1000 do
    let iv = I.random rng ~lo:0.0 ~hi:10.0 in
    if I.lo iv > I.hi iv then Alcotest.fail "random interval not normalised"
  done

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "cq_interval"
    [
      ( "algebra",
        [
          qc prop_inter_is_intersection;
          qc prop_hull_contains_both;
          qc prop_overlap_symmetric;
          qc prop_shift_translates_stabs;
          qc prop_inter_assoc_comm;
          qc prop_contains_iff_inter_fixed;
          qc prop_compare_lo_total_order;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "constructors" `Quick test_constructors;
          Alcotest.test_case "empty" `Quick test_empty_behaviour;
          Alcotest.test_case "closed endpoints" `Quick test_closed_endpoints;
          Alcotest.test_case "random normalised" `Quick test_random_normalised;
        ] );
    ]
