(* Tests for Section 3.3: step functions, weighted 1-D k-means, the
   V-optimal DP histogram, and SSI-HIST. *)

module I = Cq_interval.Interval
module Step_fn = Cq_histogram.Step_fn
module Kmeans1d = Cq_histogram.Kmeans1d
module Histogram = Cq_histogram.Histogram
module Ssi_hist = Cq_histogram.Ssi_hist
module Rng = Cq_util.Rng

let interval_gen =
  QCheck2.Gen.(
    map2
      (fun a b -> if a <= b then I.make a b else I.make b a)
      (map float_of_int (int_bound 100))
      (map float_of_int (int_bound 100)))

let brute_stab ivs x =
  float_of_int (List.length (List.filter (fun iv -> I.stabs iv x) ivs))

(* ------------------------------ Step_fn ------------------------------- *)

let prop_of_intervals_exact =
  QCheck2.Test.make ~name:"step_fn: of_intervals = brute-force stab count" ~count:300
    QCheck2.Gen.(pair (list_size (int_range 0 100) interval_gen)
                    (list_size (int_range 1 30) (map float_of_int (int_bound 100))))
    (fun (ivs, probes) ->
      let f = Step_fn.of_intervals (Array.of_list ivs) in
      (* Probe integer points, plus every endpoint (closed semantics). *)
      let probes =
        probes @ List.concat_map (fun iv -> [ I.lo iv; I.hi iv; Float.succ (I.hi iv) ]) ivs
      in
      List.for_all (fun x -> Step_fn.eval f x = brute_stab ivs x) probes)

let prop_add_pointwise =
  QCheck2.Test.make ~name:"step_fn: add is pointwise sum" ~count:300
    QCheck2.Gen.(triple (list_size (int_range 0 50) interval_gen)
                    (list_size (int_range 0 50) interval_gen)
                    (list_size (int_range 1 30) (map float_of_int (int_bound 100))))
    (fun (xs, ys, probes) ->
      let fx = Step_fn.of_intervals (Array.of_list xs) in
      let fy = Step_fn.of_intervals (Array.of_list ys) in
      let fs = Step_fn.add fx fy in
      List.for_all
        (fun p -> Step_fn.eval fs p = Step_fn.eval fx p +. Step_fn.eval fy p)
        probes)

let prop_sum_all_matches_concat =
  QCheck2.Test.make ~name:"step_fn: sum of per-group fns = global fn" ~count:200
    QCheck2.Gen.(list_size (int_range 0 80) interval_gen)
    (fun ivs ->
      let arr = Array.of_list ivs in
      let whole = Step_fn.of_intervals arr in
      let groups = Hotspot_core.Stabbing.canonical Fun.id arr in
      let parts =
        Array.to_list groups
        |> List.map (fun (g : I.t Hotspot_core.Stabbing.group) -> Step_fn.of_intervals g.members)
      in
      let summed = Step_fn.sum_all parts in
      let probes = Array.init 101 float_of_int in
      Step_fn.equal_on whole summed ~probes)

let test_step_fn_basics () =
  let f = Step_fn.of_breaks [| (0.0, 1.0); (5.0, 3.0); (10.0, 0.0) |] in
  Alcotest.(check (float 0.0)) "before" 0.0 (Step_fn.eval f (-1.0));
  Alcotest.(check (float 0.0)) "first piece" 1.0 (Step_fn.eval f 0.0);
  Alcotest.(check (float 0.0)) "second piece" 3.0 (Step_fn.eval f 7.5);
  Alcotest.(check (float 0.0)) "after" 0.0 (Step_fn.eval f 100.0);
  Alcotest.(check int) "pieces" 3 (Step_fn.num_pieces f);
  Alcotest.check_raises "unsorted rejected"
    (Invalid_argument "Step_fn.of_breaks: x values must be strictly increasing") (fun () ->
      ignore (Step_fn.of_breaks [| (1.0, 1.0); (1.0, 2.0) |]))

let test_step_fn_clip () =
  let f = Step_fn.of_breaks [| (0.0, 2.0); (10.0, 0.0) |] in
  let g = Step_fn.clip f ~lo:3.0 ~hi:6.0 in
  Alcotest.(check (float 0.0)) "inside" 2.0 (Step_fn.eval g 4.0);
  Alcotest.(check (float 0.0)) "left of clip" 0.0 (Step_fn.eval g 2.0);
  Alcotest.(check (float 0.0)) "right of clip" 0.0 (Step_fn.eval g 7.0)

(* ------------------------------ Kmeans1d ------------------------------ *)

let sorted_pts_gen =
  QCheck2.Gen.(
    map
      (fun l -> Array.of_list (List.sort compare l))
      (list_size (int_range 1 40) (map float_of_int (int_bound 50))))

let prop_kmeans_exact_beats_lloyd =
  QCheck2.Test.make ~name:"kmeans: exact cost <= lloyd cost" ~count:300
    QCheck2.Gen.(pair sorted_pts_gen (int_range 1 6))
    (fun (pts, k) ->
      let weights = Array.make (Array.length pts) 1.0 in
      let e = Kmeans1d.exact ~pts ~weights ~k in
      let l = Kmeans1d.lloyd ~pts ~weights ~k () in
      e.cost <= l.cost +. 1e-6)

let prop_kmeans_boundaries_partition =
  QCheck2.Test.make ~name:"kmeans: boundaries partition the points" ~count:300
    QCheck2.Gen.(pair sorted_pts_gen (int_range 1 6))
    (fun (pts, k) ->
      let weights = Array.make (Array.length pts) 1.0 in
      List.for_all
        (fun (r : Kmeans1d.result) ->
          let b = r.boundaries in
          let n = Array.length b in
          b.(0) = 0
          && b.(n - 1) = Array.length pts
          && Array.for_all (fun c -> c >= 0) b
          &&
          let ok = ref true in
          for i = 1 to n - 1 do
            if b.(i - 1) > b.(i) then ok := false
          done;
          !ok)
        [ Kmeans1d.exact ~pts ~weights ~k; Kmeans1d.lloyd ~pts ~weights ~k () ])

let prop_kmeans_k1_is_weighted_mean =
  QCheck2.Test.make ~name:"kmeans: k=1 center is the weighted mean" ~count:300 sorted_pts_gen
    (fun pts ->
      let weights = Array.init (Array.length pts) (fun i -> 1.0 +. float_of_int (i mod 3)) in
      let r = Kmeans1d.exact ~pts ~weights ~k:1 in
      let sw = Array.fold_left ( +. ) 0.0 weights in
      let swx = ref 0.0 in
      Array.iteri (fun i x -> swx := !swx +. (weights.(i) *. x)) pts;
      Float.abs (r.centers.(0) -. (!swx /. sw)) < 1e-9)

(* Exhaustive oracle for tiny instances: try all contiguous
   partitions. *)
let prop_kmeans_exact_is_optimal_small =
  QCheck2.Test.make ~name:"kmeans: exact matches exhaustive search (small)" ~count:200
    QCheck2.Gen.(pair
                   (map (fun l -> Array.of_list (List.sort compare l))
                      (list_size (int_range 1 8) (map float_of_int (int_bound 20))))
                   (int_range 1 3))
    (fun (pts, k) ->
      let m = Array.length pts in
      let weights = Array.make m 1.0 in
      let r = Kmeans1d.exact ~pts ~weights ~k in
      let k = min k m in
      (* Enumerate all ways to cut m points into k contiguous parts. *)
      let best = ref infinity in
      let rec enumerate start parts_left cost =
        if parts_left = 1 then begin
          let _, c = Kmeans1d.cluster_cost ~pts ~weights ~i:start ~j:(m - 1) in
          if cost +. c < !best then best := cost +. c
        end
        else
          for stop = start to m - parts_left do
            let _, c = Kmeans1d.cluster_cost ~pts ~weights ~i:start ~j:stop in
            enumerate (stop + 1) (parts_left - 1) (cost +. c)
          done
      in
      enumerate 0 k 0.0;
      Float.abs (r.cost -. !best) < 1e-6)

let test_kmeans_validation () =
  Alcotest.check_raises "unsorted" (Invalid_argument "Kmeans1d: points must be sorted")
    (fun () -> ignore (Kmeans1d.exact ~pts:[| 2.0; 1.0 |] ~weights:[| 1.0; 1.0 |] ~k:1));
  Alcotest.check_raises "bad k" (Invalid_argument "Kmeans1d: k must be positive") (fun () ->
      ignore (Kmeans1d.exact ~pts:[| 1.0 |] ~weights:[| 1.0 |] ~k:0))

(* ------------------------------ Histogram ----------------------------- *)

let fixed_intervals seed n =
  let rng = Rng.create seed in
  Array.init n (fun _ ->
      let mid = Cq_util.Dist.normal rng ~mu:50.0 ~sigma:15.0 in
      let len = Float.abs (Cq_util.Dist.normal rng ~mu:10.0 ~sigma:20.0) in
      I.of_midpoint ~mid ~len)

let probes_for rng n = Array.init n (fun _ -> Cq_util.Dist.uniform rng ~lo:0.0 ~hi:100.0)

let test_histogram_eval () =
  let h = { Histogram.bounds = [| 0.0; 10.0; 20.0 |]; values = [| 1.0; 2.0 |] } in
  Alcotest.(check (float 0.0)) "bucket 0" 1.0 (Histogram.eval h 5.0);
  Alcotest.(check (float 0.0)) "bucket 1" 2.0 (Histogram.eval h 10.0);
  Alcotest.(check (float 0.0)) "outside left" 0.0 (Histogram.eval h (-1.0));
  Alcotest.(check (float 0.0)) "outside right" 0.0 (Histogram.eval h 20.0)

let test_equal_width_flat_function () =
  (* A constant function is represented exactly whatever the bucket
     count. *)
  let f = Step_fn.of_breaks [| (0.0, 5.0); (100.0, 0.0) |] in
  let h = Histogram.equal_width f ~lo:0.0 ~hi:100.0 ~buckets:7 in
  Alcotest.(check (float 1e-9)) "zero error" 0.0
    (Histogram.mean_squared_rel_error h f ~lo:0.0 ~hi:100.0)

let test_optimal_enough_buckets_is_exact () =
  let ivs = fixed_intervals 42 30 in
  let f = Step_fn.of_intervals ivs in
  let h = Histogram.optimal f ~lo:0.0 ~hi:100.0 ~buckets:(Step_fn.num_pieces f + 2) in
  let err = Histogram.mean_squared_rel_error h f ~lo:0.0 ~hi:100.0 in
  if err > 1e-9 then Alcotest.failf "expected exact representation, error = %g" err

let test_optimal_beats_eqw () =
  let ivs = fixed_intervals 7 200 in
  let f = Step_fn.of_intervals ivs in
  List.iter
    (fun buckets ->
      let eqw = Histogram.equal_width f ~lo:0.0 ~hi:100.0 ~buckets in
      let opt = Histogram.optimal f ~lo:0.0 ~hi:100.0 ~buckets in
      let e_eqw = Histogram.mean_squared_rel_error eqw f ~lo:0.0 ~hi:100.0 in
      let e_opt = Histogram.mean_squared_rel_error opt f ~lo:0.0 ~hi:100.0 in
      if e_opt > e_eqw +. 1e-9 then
        Alcotest.failf "optimal (%g) worse than EQW (%g) at %d buckets" e_opt e_eqw buckets)
    [ 2; 5; 10; 20 ]

let prop_optimal_monotone_in_buckets =
  QCheck2.Test.make ~name:"histogram: optimal error non-increasing in buckets" ~count:100
    QCheck2.Gen.(list_size (int_range 1 60) interval_gen)
    (fun ivs ->
      let f = Step_fn.of_intervals (Array.of_list ivs) in
      let err b =
        Histogram.mean_squared_rel_error
          (Histogram.optimal f ~lo:0.0 ~hi:101.0 ~buckets:b)
          f ~lo:0.0 ~hi:101.0
      in
      let e2 = err 2 and e4 = err 4 and e8 = err 8 in
      e4 <= e2 +. 1e-9 && e8 <= e4 +. 1e-9)


let test_equal_depth_flat_function () =
  let f = Step_fn.of_breaks [| (0.0, 5.0); (100.0, 0.0) |] in
  let h = Histogram.equal_depth f ~lo:0.0 ~hi:100.0 ~buckets:6 in
  Alcotest.(check (float 1e-9)) "zero error" 0.0
    (Histogram.mean_squared_rel_error h f ~lo:0.0 ~hi:100.0)

let test_equal_depth_zero_function () =
  let h = Histogram.equal_depth Step_fn.zero ~lo:0.0 ~hi:10.0 ~buckets:4 in
  Alcotest.(check int) "one flat bucket" 1 (Histogram.num_buckets h);
  Alcotest.(check (float 0.0)) "zero" 0.0 (Histogram.eval h 5.0)

let prop_equal_depth_mass_balanced =
  QCheck2.Test.make ~name:"equal_depth: boundaries sorted, mass roughly balanced" ~count:150
    QCheck2.Gen.(list_size (int_range 1 80) interval_gen)
    (fun ivs ->
      let f = Step_fn.of_intervals (Array.of_list ivs) in
      let h = Histogram.equal_depth f ~lo:0.0 ~hi:101.0 ~buckets:8 in
      let b = h.Histogram.bounds in
      let sorted = ref true in
      for i = 1 to Array.length b - 1 do
        if b.(i - 1) >= b.(i) then sorted := false
      done;
      !sorted && Histogram.num_buckets h >= 1 && Histogram.num_buckets h <= 9)


let prop_histogram_step_fn_round_trip =
  QCheck2.Test.make ~name:"histogram: of_step_fn/to_step_fn round trip" ~count:200
    QCheck2.Gen.(list_size (int_range 1 60) interval_gen)
    (fun ivs ->
      let f = Step_fn.of_intervals (Array.of_list ivs) in
      let h = Histogram.of_step_fn f in
      let back = Histogram.to_step_fn h in
      let probes = Array.init 101 float_of_int in
      (* Exact representation: one bucket per piece. *)
      Array.for_all (fun x -> Histogram.eval h x = Step_fn.eval f x) probes
      && Step_fn.equal_on back f ~probes)

(* ------------------------------ SSI-HIST ------------------------------ *)

let test_ssi_hist_exact_with_many_buckets () =
  let ivs = fixed_intervals 11 50 in
  let f = Step_fn.of_intervals ivs in
  let h = Ssi_hist.build ~use_exact_kmeans:true ivs ~buckets:(4 * Step_fn.num_pieces f) in
  let rng = Rng.create 1 in
  let probes = probes_for rng 2000 in
  let err = Ssi_hist.avg_rel_error_on h f ~probes in
  if err > 1e-9 then Alcotest.failf "expected near-exact SSI-HIST, error = %g" err

let test_ssi_hist_beats_eqw_on_clustered () =
  (* The paper's headline histogram claim (Figure 12): on clustered
     interval sets — the regime hotspots exist for — SSI-HIST beats
     EQW at equal bucket budgets. *)
  let rng = Rng.create 99 in
  let ivs =
    Cq_relation.Workload.gen_clustered_ranges rng ~n:5000 ~n_clusters:18 ~clustered_frac:1.0
      ~domain:(0.0, 10_000.0) ~cluster_halfwidth:50.0 ~len_mu:150.0 ~len_sigma:80.0
  in
  let f = Step_fn.of_intervals ivs in
  let prng = Rng.create 2 in
  let probes = Array.init 5000 (fun _ -> Cq_util.Dist.uniform prng ~lo:0.0 ~hi:10_000.0) in
  List.iter
    (fun buckets ->
      let ssi = Ssi_hist.build ivs ~buckets in
      let eqw =
        Histogram.equal_width f ~lo:0.0 ~hi:10_000.0 ~buckets:(Ssi_hist.buckets_used ssi)
      in
      let e_ssi = Ssi_hist.avg_rel_error_on ssi f ~probes in
      let e_eqw = Histogram.avg_rel_error_on eqw f ~probes in
      if e_ssi > e_eqw then
        Alcotest.failf "SSI-HIST (%g) worse than EQW (%g) at %d buckets" e_ssi e_eqw buckets)
    [ 20; 40; 70 ]

let test_ssi_hist_group_count () =
  (* Three well-separated clusters -> three stabbing groups. *)
  let mk lo hi = I.make lo hi in
  let ivs =
    Array.concat
      [
        Array.init 10 (fun i -> mk (float_of_int i) 20.0);
        Array.init 10 (fun i -> mk (40.0 +. float_of_int i) 60.0);
        Array.init 10 (fun i -> mk (80.0 +. float_of_int i) 99.0);
      ]
  in
  let h = Ssi_hist.build ivs ~buckets:12 in
  Alcotest.(check int) "groups" 3 (Ssi_hist.num_groups h)

let prop_ssi_hist_never_negative =
  QCheck2.Test.make ~name:"ssi-hist: estimates are non-negative" ~count:150
    QCheck2.Gen.(list_size (int_range 1 80) interval_gen)
    (fun ivs ->
      let arr = Array.of_list ivs in
      let h = Ssi_hist.build arr ~buckets:10 in
      let ok = ref true in
      for x = 0 to 100 do
        if Ssi_hist.estimate h (float_of_int x) < -1e-9 then ok := false
      done;
      !ok)

(* ---------------------------------------------------------------------- *)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "cq_histogram"
    [
      ( "step_fn",
        [
          qc prop_of_intervals_exact;
          qc prop_add_pointwise;
          qc prop_sum_all_matches_concat;
          Alcotest.test_case "basics" `Quick test_step_fn_basics;
          Alcotest.test_case "clip" `Quick test_step_fn_clip;
        ] );
      ( "kmeans1d",
        [
          qc prop_kmeans_exact_beats_lloyd;
          qc prop_kmeans_boundaries_partition;
          qc prop_kmeans_k1_is_weighted_mean;
          qc prop_kmeans_exact_is_optimal_small;
          Alcotest.test_case "validation" `Quick test_kmeans_validation;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "eval" `Quick test_histogram_eval;
          Alcotest.test_case "EQW exact on flat fn" `Quick test_equal_width_flat_function;
          Alcotest.test_case "EQD exact on flat fn" `Quick test_equal_depth_flat_function;
          Alcotest.test_case "EQD on zero fn" `Quick test_equal_depth_zero_function;
          qc prop_equal_depth_mass_balanced;
          qc prop_histogram_step_fn_round_trip;
          Alcotest.test_case "optimal exact with enough buckets" `Quick
            test_optimal_enough_buckets_is_exact;
          Alcotest.test_case "optimal beats EQW" `Quick test_optimal_beats_eqw;
          qc prop_optimal_monotone_in_buckets;
        ] );
      ( "ssi_hist",
        [
          Alcotest.test_case "exact with many buckets" `Quick test_ssi_hist_exact_with_many_buckets;
          Alcotest.test_case "beats EQW on clustered input" `Slow
            test_ssi_hist_beats_eqw_on_clustered;
          Alcotest.test_case "group count" `Quick test_ssi_hist_group_count;
          qc prop_ssi_hist_never_negative;
        ] );
    ]
