test/test_core.ml: Alcotest Array Cq_index Cq_interval Cq_util Float Fun Hashtbl Hotspot_core Int List QCheck2 QCheck_alcotest
