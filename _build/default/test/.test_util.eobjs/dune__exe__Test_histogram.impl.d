test/test_histogram.ml: Alcotest Array Cq_histogram Cq_interval Cq_relation Cq_util Float Fun Hotspot_core List QCheck2 QCheck_alcotest
