test/test_histogram.mli:
