test/test_engine.ml: Alcotest Array Cq_engine Cq_interval Cq_relation Hashtbl List Option QCheck2 QCheck_alcotest
