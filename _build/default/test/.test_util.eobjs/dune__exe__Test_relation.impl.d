test/test_relation.ml: Alcotest Array Cq_interval Cq_relation Cq_util Float Fun Hashtbl Hotspot_core List QCheck2 QCheck_alcotest
