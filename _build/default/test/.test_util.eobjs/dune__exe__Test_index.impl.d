test/test_index.ml: Alcotest Array Cq_index Cq_interval Cq_util Float Int List Option QCheck2 QCheck_alcotest
