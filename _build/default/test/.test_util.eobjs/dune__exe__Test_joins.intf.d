test/test_joins.mli:
