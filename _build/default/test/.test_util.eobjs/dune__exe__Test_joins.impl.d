test/test_joins.ml: Alcotest Array Cq_interval Cq_joins Cq_relation List QCheck2 QCheck_alcotest
