test/test_interval.ml: Alcotest Cq_interval Cq_util Float QCheck2 QCheck_alcotest
