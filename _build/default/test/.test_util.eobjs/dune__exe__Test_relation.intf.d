test/test_relation.mli:
