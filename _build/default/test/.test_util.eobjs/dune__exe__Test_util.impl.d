test/test_util.ml: Alcotest Array Cq_util Dist Float List QCheck2 QCheck_alcotest Rng Stats Vec
