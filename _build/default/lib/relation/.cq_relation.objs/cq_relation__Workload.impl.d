lib/relation/workload.ml: Array Cq_interval Cq_util Float Format Option Tuple
