lib/relation/tuple.ml: Format
