lib/relation/workload.mli: Cq_interval Cq_util Format Tuple
