lib/relation/tuple.mli: Format
