lib/relation/table.mli: Cq_index Tuple
