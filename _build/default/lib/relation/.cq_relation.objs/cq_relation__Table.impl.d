lib/relation/table.ml: Array Cq_index Float Tuple
