type r = { rid : int; a : float; b : float }
type s = { sid : int; b : float; c : float }

let pp_r fmt t = Format.fprintf fmt "r#%d(A=%g, B=%g)" t.rid t.a t.b
let pp_s fmt t = Format.fprintf fmt "s#%d(B=%g, C=%g)" t.sid t.b t.c
let equal_r (a : r) (b : r) = a.rid = b.rid && a.a = b.a && a.b = b.b
let equal_s (a : s) (b : s) = a.sid = b.sid && a.b = b.b && a.c = b.c
