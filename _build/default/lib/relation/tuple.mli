(** Tuples of the two experiment relations (Section 4): R(A,B) and
    S(B,C), where B is the join attribute and A, C carry the local
    selections. *)

type r = { rid : int; a : float; b : float }
type s = { sid : int; b : float; c : float }

val pp_r : Format.formatter -> r -> unit
val pp_s : Format.formatter -> s -> unit
val equal_r : r -> r -> bool
val equal_s : s -> s -> bool
