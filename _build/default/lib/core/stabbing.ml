module I = Cq_interval.Interval

type 'e group = {
  stab : float;
  isect : I.t;
  members : 'e array;
}

let canonical interval_of elems =
  let n = Array.length elems in
  if n = 0 then [||]
  else begin
    let sorted = Array.copy elems in
    Array.sort (fun a b -> I.compare_lo (interval_of a) (interval_of b)) sorted;
    let groups = Cq_util.Vec.create () in
    let start = ref 0 in
    let isect = ref (interval_of sorted.(0)) in
    let flush stop =
      Cq_util.Vec.push groups
        { stab = I.hi !isect; isect = !isect; members = Array.sub sorted !start (stop - !start) }
    in
    for i = 1 to n - 1 do
      let iv = interval_of sorted.(i) in
      let next = I.inter !isect iv in
      if I.is_empty next then begin
        flush i;
        start := i;
        isect := iv
      end
      else isect := next
    done;
    flush n;
    Cq_util.Vec.to_array groups
  end

let tau interval_of elems = Array.length (canonical interval_of elems)

let max_disjoint interval_of elems =
  let n = Array.length elems in
  if n = 0 then 0
  else begin
    (* Earliest-deadline greedy on right endpoints. *)
    let sorted = Array.copy elems in
    Array.sort (fun a b -> Float.compare (I.hi (interval_of a)) (I.hi (interval_of b))) sorted;
    let count = ref 0 and frontier = ref neg_infinity in
    Array.iter
      (fun e ->
        let iv = interval_of e in
        if I.lo iv > !frontier then begin
          incr count;
          frontier := I.hi iv
        end)
      sorted;
    !count
  end

let is_valid_partition interval_of groups =
  List.for_all
    (fun (p, members) -> List.for_all (fun e -> I.stabs (interval_of e) p) members)
    groups
