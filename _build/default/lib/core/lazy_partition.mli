(** The "simple strategy" of Section 2.3: lazy dynamic maintenance of a
    near-optimal stabbing partition.

    Insertions first try to join an existing group whose common
    intersection overlaps the new interval (the paper's "more careful
    implementation" that maintains each group's common intersection);
    otherwise they open a singleton group.  Deletions shrink groups in
    place.  A reconstruction stage — a full greedy rebuild — runs under
    the paper's {e relaxed} trigger: only when the partition size
    reaches [(1+epsilon) * (tau0 - m)], where [tau0] was the optimal
    size at the last rebuild and [m] counts deletions since.  Lemma 3
    guarantees the partition size never exceeds [(1+epsilon) * tau(I)].

    Amortised cost is O(n log n / (epsilon * tau0)) per update — simple
    and effective when queries are naturally clustered, but inferior to
    {!Refined_partition}'s O(log n / epsilon) worst case. *)

module Make (E : Partition_intf.ELEMENT) : Partition_intf.S with type elt = E.t
