(** The refined dynamic stabbing-partition algorithm of Appendix B.

    Each group of the last reconstruction lives in a balanced tree
    (treap) ordered by interval left endpoint and augmented with the
    group's common intersection; newly inserted intervals sit as
    singleton groups.  Every insertion or deletion touches at most one
    group (Theorem 2) — the property that makes the scheme suitable for
    real-time SSI maintenance, because per-group auxiliary structures
    rarely need rebuilding.

    After [epsilon * tau0 / (epsilon + 2)] updates a reconstruction
    stage re-derives the optimal greedy partition in O(tau0 log n) by
    splitting and joining the group trees (emulating Lemma 1's greedy
    scan set-by-set instead of interval-by-interval), maintaining
    invariant (⋆): left endpoints never interleave across groups.

    The partition size is at most [(1 + epsilon) * tau(I)] at all
    times; amortised update cost is O((1 + 1/epsilon) log n). *)

module Make (E : Partition_intf.ELEMENT) : sig
  include Partition_intf.S with type elt = E.t

  val updates_since_reconstruction : t -> int

  val groups_in_order : t -> (float * elt list) list
  (** Like [groups] but old groups first in invariant-(⋆) order,
      then the post-reconstruction singletons in insertion order. *)
end
