lib/core/ssi.ml: Array Partition_intf Stabbing
