lib/core/partition_intf.ml: Cq_interval
