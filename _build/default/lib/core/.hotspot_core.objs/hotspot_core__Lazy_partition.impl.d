lib/core/lazy_partition.ml: Array Cq_index Cq_interval Float Hashtbl List Map Partition_intf Printf Set Stabbing
