lib/core/hotspot_tracker.ml: Cq_interval Hashtbl Int List Map Option Partition_intf Printf Refined_partition Set
