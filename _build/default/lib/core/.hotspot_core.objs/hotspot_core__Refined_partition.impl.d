lib/core/refined_partition.ml: Array Cq_index Cq_interval Cq_util Float Hashtbl List Map Option Partition_intf Printf Stabbing
