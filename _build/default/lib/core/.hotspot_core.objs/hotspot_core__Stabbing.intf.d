lib/core/stabbing.mli: Cq_interval
