lib/core/refined_partition.mli: Partition_intf
