lib/core/lazy_partition.mli: Partition_intf
