lib/core/stabbing2d.ml: Array Cq_index Cq_util Int Stabbing
