lib/core/stabbing.ml: Array Cq_interval Cq_util Float List
