lib/core/hotspot_tracker.mli: Partition_intf
