lib/core/stabbing2d.mli: Cq_index
