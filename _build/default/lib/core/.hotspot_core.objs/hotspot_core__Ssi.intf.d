lib/core/ssi.mli: Partition_intf
