module type GROUP_STRUCTURE = sig
  type elt
  type t

  val build : stab:float -> elt array -> t
end

module Make (E : Partition_intf.ELEMENT) (G : GROUP_STRUCTURE with type elt = E.t) = struct
  type t = {
    groups : (float * G.t) array; (* sorted by stabbing point *)
    size : int;
  }

  let build elems =
    let partition = Stabbing.canonical E.interval elems in
    {
      groups =
        Array.map (fun (g : E.t Stabbing.group) -> (g.stab, G.build ~stab:g.stab g.members))
          partition;
      size = Array.length elems;
    }

  let size t = t.size
  let num_groups t = Array.length t.groups
  let iter t f = Array.iter (fun (stab, g) -> f ~stab g) t.groups
  let fold t f acc = Array.fold_left (fun acc (stab, g) -> f acc ~stab g) acc t.groups
  let stabbing_points t = Array.map fst t.groups
end
