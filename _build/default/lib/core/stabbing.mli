(** Canonical (optimal) stabbing partitions — Lemma 1.

    The greedy algorithm scans intervals in increasing left-endpoint
    order, keeping a running common intersection; whenever the next
    interval misses it, the current group is emitted with its stabbing
    point (we use the right endpoint of the common intersection, as
    Appendix B does).  The result has the minimum possible number of
    groups τ(I), in O(n log n) time. *)

type 'e group = {
  stab : float;  (** The group's stabbing point: every member contains it. *)
  isect : Cq_interval.Interval.t;  (** Common intersection of the members. *)
  members : 'e array;  (** In increasing left-endpoint order. *)
}

val canonical : ('e -> Cq_interval.Interval.t) -> 'e array -> 'e group array
(** Canonical stabbing partition; groups appear in increasing stabbing
    point order.  The input array is not modified. *)

val tau : ('e -> Cq_interval.Interval.t) -> 'e array -> int
(** τ(I): the optimal stabbing number (size of {!canonical}). *)

val max_disjoint : ('e -> Cq_interval.Interval.t) -> 'e array -> int
(** Maximum number of pairwise-disjoint intervals, computed by the
    earliest-right-endpoint greedy.  By interval-graph duality this
    equals τ(I); the test suite uses it as an independent oracle. *)

val is_valid_partition : ('e -> Cq_interval.Interval.t) -> (float * 'e list) list -> bool
(** Is every listed member stabbed by its group's stabbing point? *)
