module Rect = Cq_index.Rect

type 'e group = {
  px : float;
  py : float;
  members : 'e array;
}

let partition rect_of elems =
  let xgroups = Stabbing.canonical (fun e -> (rect_of e).Rect.x) elems in
  let out = Cq_util.Vec.create () in
  Array.iter
    (fun (xg : 'e Stabbing.group) ->
      let ygroups = Stabbing.canonical (fun e -> (rect_of e).Rect.y) xg.members in
      Array.iter
        (fun (yg : 'e Stabbing.group) ->
          Cq_util.Vec.push out { px = xg.stab; py = yg.stab; members = yg.members })
        ygroups)
    xgroups;
  Cq_util.Vec.to_array out

let size rect_of elems = Array.length (partition rect_of elems)

let is_valid rect_of groups =
  Array.for_all
    (fun g ->
      Array.length g.members > 0
      && Array.for_all (fun e -> Rect.contains_point (rect_of e) ~x:g.px ~y:g.py) g.members)
    groups

let coverage_of_top rect_of elems ~top =
  let n = Array.length elems in
  if n = 0 then 0.0
  else begin
    let sizes =
      partition rect_of elems |> Array.map (fun g -> Array.length g.members)
    in
    Array.sort (fun a b -> Int.compare b a) sizes;
    let covered = ref 0 in
    Array.iteri (fun i s -> if i < top then covered := !covered + s) sizes;
    float_of_int !covered /. float_of_int n
  end
