(** Composite continuous queries — Section 6's first future-work item:
    band joins {e combined with} local selections,

    [σ_{A ∈ rangeA_i} R ⋈_{S.B − R.B ∈ rangeB_i} σ_{C ∈ rangeC_i} S]

    (Example 2's coastal-defense query has exactly this shape: a model
    selection on units, a firing-range band on positions, a type
    selection on targets.) *)

type t = {
  qid : int;
  band : Cq_interval.Interval.t;  (** window on S.B − R.B *)
  range_a : Cq_interval.Interval.t;  (** local selection on R.A *)
  range_c : Cq_interval.Interval.t;  (** local selection on S.C *)
}

val make :
  qid:int ->
  band:Cq_interval.Interval.t ->
  range_a:Cq_interval.Interval.t ->
  range_c:Cq_interval.Interval.t ->
  t

val matches : t -> r_a:float -> r_b:float -> s_b:float -> s_c:float -> bool

val pp : Format.formatter -> t -> unit

(** Element view on the band window (the axis the SSI partitions on). *)
module Elem : Hotspot_core.Partition_intf.ELEMENT with type t = t
