(** Continuous band-join queries (Section 3.1):

    [R ⋈_{S.B - R.B ∈ rangeB_i} S]

    Each query is its window [rangeB_i]; an incoming R-tuple [r]
    instantiates it to the selection [S.B ∈ rangeB_i + r.B]. *)

type t = { qid : int; range : Cq_interval.Interval.t }

val make : qid:int -> range:Cq_interval.Interval.t -> t

val of_ranges : Cq_interval.Interval.t array -> t array
(** Number the ranges 0.. as query ids. *)

val instantiated : t -> b:float -> Cq_interval.Interval.t
(** [rangeB_i + r.B]: the S.B interval selected once [r] arrives. *)

val matches : t -> r_b:float -> s_b:float -> bool
(** Ground truth: does the (r,s) pair satisfy the band condition? *)

val pp : Format.formatter -> t -> unit

(** Partition element view keyed on the band window (for SSI /
    hotspot tracking over band-join queries). *)
module Elem : Hotspot_core.Partition_intf.ELEMENT with type t = t
