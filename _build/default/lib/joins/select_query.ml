module I = Cq_interval.Interval

type t = {
  qid : int;
  range_a : I.t;
  range_c : I.t;
}

let make ~qid ~range_a ~range_c = { qid; range_a; range_c }

let of_ranges pairs =
  Array.mapi (fun qid (range_a, range_c) -> { qid; range_a; range_c }) pairs

let rect q = Cq_index.Rect.make ~x:q.range_c ~y:q.range_a

let matches q ~r_a ~s_c = I.stabs q.range_a r_a && I.stabs q.range_c s_c

let pp fmt q = Format.fprintf fmt "sq#%d(A:%a, C:%a)" q.qid I.pp q.range_a I.pp q.range_c

module Elem_c = struct
  type nonrec t = t

  let compare a b =
    let c = I.compare_lo a.range_c b.range_c in
    if c <> 0 then c else Int.compare a.qid b.qid

  let interval q = q.range_c
end

module Elem_a = struct
  type nonrec t = t

  let compare a b =
    let c = I.compare_lo a.range_a b.range_a in
    if c <> 0 then c else Int.compare a.qid b.qid

  let interval q = q.range_a
end
