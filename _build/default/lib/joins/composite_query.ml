module I = Cq_interval.Interval

type t = {
  qid : int;
  band : I.t;
  range_a : I.t;
  range_c : I.t;
}

let make ~qid ~band ~range_a ~range_c = { qid; band; range_a; range_c }

let matches q ~r_a ~r_b ~s_b ~s_c =
  I.stabs q.range_a r_a && I.stabs q.band (s_b -. r_b) && I.stabs q.range_c s_c

let pp fmt q =
  Format.fprintf fmt "cq#%d(band:%a, A:%a, C:%a)" q.qid I.pp q.band I.pp q.range_a I.pp
    q.range_c

module Elem = struct
  type nonrec t = t

  let compare a b =
    let c = I.compare_lo a.band b.band in
    if c <> 0 then c else Int.compare a.qid b.qid

  let interval q = q.band
end
