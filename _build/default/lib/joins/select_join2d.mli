(** Bidirectional SSI over two-dimensional stabbing groups — making
    Section 6's "extend clustering by stabbing partition to
    multidimensional spaces" operational for equality joins with local
    selections.

    {!Select_join.Ssi} partitions on the rangeC projections and can
    therefore process only R-side events (the S-side needs a second SSI
    on the rangeA projections, as the paper notes).  Here each group of
    a {!Hotspot_core.Stabbing2d} partition has a full 2-D stabbing
    point (pc, pa) inside every member rectangle, so the {e same}
    groups process events from {e either} relation: an R event anchors
    on the S(B,C) index around pc, an S event anchors on the R(B,A)
    index around pa, with the identical two-probe STEP 1 / outward-walk
    STEP 2 logic in transposed axes.

    The price is the 2-D partition size (at least max(τ_A, τ_C), up to
    their product on adversarial inputs; equal to the cluster count on
    multi-attribute-clustered workloads). *)

type r_sink = Select_query.t -> Cq_relation.Tuple.s -> unit
type s_sink = Select_query.t -> Cq_relation.Tuple.r -> unit

type t

val create :
  Cq_relation.Table.s_table ->
  Cq_relation.Table.r_table ->
  Select_query.t array ->
  t

val num_groups : t -> int
(** Size of the 2-D partition currently indexed. *)

val query_count : t -> int

val process_r : t -> Cq_relation.Tuple.r -> r_sink -> unit
(** All (query, S-tuple) results the R event produces. *)

val process_s : t -> Cq_relation.Tuple.s -> s_sink -> unit
(** All (query, R-tuple) results the S event produces — through the
    same group structures. *)

val insert_query : t -> Select_query.t -> unit
val delete_query : t -> Select_query.t -> bool

val reference_s :
  Cq_relation.Table.r_table ->
  Select_query.t array ->
  Cq_relation.Tuple.s ->
  (int * int) list
(** Brute-force oracle for S-side events: sorted (qid, rid) pairs. *)
