module I = Cq_interval.Interval
module Table = Cq_relation.Table
module Tuple = Cq_relation.Tuple
module Fbt = Table.Fbt
module Itree = Cq_index.Interval_tree
module Vec = Cq_util.Vec
module CQ = Composite_query

type sink = CQ.t -> Tuple.s -> unit

module type STRATEGY = sig
  type t

  val name : string
  val create : Table.s_table -> CQ.t array -> t
  val process_r : t -> Tuple.r -> sink -> unit
  val affected : t -> Tuple.r -> (CQ.t -> unit) -> unit
  val insert_query : t -> CQ.t -> unit
  val delete_query : t -> CQ.t -> bool
  val query_count : t -> int
end

(* Emit results of one query against the event: scan the instantiated
   band window on the S.B index, filtering by the C selection.  With
   [stop_after_first], stops at the first hit (existence probing for
   [affected]).  Returns whether anything matched. *)
let probe_query table (q : CQ.t) ~b ~stop_after_first sink =
  let w = I.shift q.band b in
  let hit = ref false in
  (try
     Fbt.iter_range (Table.s_by_b table) ~lo:(I.lo w) ~hi:(I.hi w) (fun _ s ->
         if I.stabs q.range_c s.Tuple.c then begin
           hit := true;
           sink q s;
           if stop_after_first then raise Exit
         end)
   with Exit -> ());
  !hit

(* --------------------------------------------------------------------- *)
(* NAIVE                                                                   *)
(* --------------------------------------------------------------------- *)

module Naive = struct
  type t = {
    table : Table.s_table;
    queries : (int, CQ.t) Hashtbl.t;
  }

  let name = "CJ-NAIVE"

  let create table queries =
    let h = Hashtbl.create (max 16 (Array.length queries)) in
    Array.iter (fun (q : CQ.t) -> Hashtbl.replace h q.qid q) queries;
    { table; queries = h }

  let visit t (r : Tuple.r) ~stop_after_first sink report =
    Hashtbl.iter
      (fun _ (q : CQ.t) ->
        if I.stabs q.range_a r.a then
          if probe_query t.table q ~b:r.b ~stop_after_first sink then report q)
      t.queries

  let process_r t r sink = visit t r ~stop_after_first:false sink (fun _ -> ())
  let affected t r report = visit t r ~stop_after_first:true (fun _ _ -> ()) report

  let insert_query t q = Hashtbl.replace t.queries q.CQ.qid q

  let delete_query t (q : CQ.t) =
    if Hashtbl.mem t.queries q.qid then (Hashtbl.remove t.queries q.qid; true) else false

  let query_count t = Hashtbl.length t.queries
end

(* --------------------------------------------------------------------- *)
(* A-first: R.A selection index, then per-query probing                    *)
(* --------------------------------------------------------------------- *)

module Afirst = struct
  type t = {
    table : Table.s_table;
    a_index : CQ.t Itree.Mutable.t;
  }

  let name = "CJ-A"

  let create table queries =
    let a_index = Itree.Mutable.create () in
    Array.iter (fun (q : CQ.t) -> Itree.Mutable.add a_index q.range_a q) queries;
    { table; a_index }

  let process_r t (r : Tuple.r) sink =
    Itree.Mutable.stab t.a_index r.a (fun _ q ->
        ignore (probe_query t.table q ~b:r.b ~stop_after_first:false sink))

  let affected t (r : Tuple.r) report =
    Itree.Mutable.stab t.a_index r.a (fun _ q ->
        if probe_query t.table q ~b:r.b ~stop_after_first:true (fun _ _ -> ()) then report q)

  let insert_query t (q : CQ.t) = Itree.Mutable.add t.a_index q.range_a q

  let delete_query t (q : CQ.t) =
    Itree.Mutable.remove t.a_index q.range_a (fun p -> p.CQ.qid = q.qid)

  let query_count t = Itree.Mutable.size t.a_index
end

(* --------------------------------------------------------------------- *)
(* SSI over the band windows, selections filtered inline                   *)
(* --------------------------------------------------------------------- *)

module Group_seqs = struct
  type elt = CQ.t

  type t = {
    by_lo : CQ.t array; (* band windows by increasing left endpoint *)
    by_hi : CQ.t array; (* by decreasing right endpoint *)
  }

  let build ~stab:_ members =
    let by_hi = Array.copy members in
    Array.sort (fun (a : CQ.t) b -> I.compare_hi_desc a.band b.band) by_hi;
    { by_lo = members; by_hi }
end

module Ssi_index = Hotspot_core.Ssi.Make (CQ.Elem) (Group_seqs)

module Ssi = struct
  type t = {
    table : Table.s_table;
    queries : (int, CQ.t) Hashtbl.t;
    mutable index : Ssi_index.t;
    mutable dirty : bool;
    seen : (int, int) Hashtbl.t;
    mutable event : int;
  }

  let name = "CJ-SSI"

  let rebuild t =
    let qs = Hashtbl.fold (fun _ q acc -> q :: acc) t.queries [] in
    t.index <- Ssi_index.build (Array.of_list qs);
    t.dirty <- false

  let create table queries =
    let h = Hashtbl.create (max 16 (Array.length queries)) in
    Array.iter (fun (q : CQ.t) -> Hashtbl.replace h q.qid q) queries;
    {
      table;
      queries = h;
      index = Ssi_index.build queries;
      dirty = false;
      seen = Hashtbl.create 256;
      event = 0;
    }

  let mark t (q : CQ.t) =
    match Hashtbl.find_opt t.seen q.qid with
    | Some ev when ev = t.event -> false
    | _ ->
        Hashtbl.replace t.seen q.qid t.event;
        true

  (* STEP 1 on the band axis; the R.A selection is tested before a
     candidate is accepted (an O(1) filter the group walk absorbs for
     free), and the C selection during the result walk. *)
  let visit t (r : Tuple.r) ~stop_after_first sink report =
    if t.dirty then rebuild t;
    t.event <- t.event + 1;
    let b = r.b in
    let sb = Table.s_by_b t.table in
    Ssi_index.iter t.index (fun ~stab (g : Group_seqs.t) ->
        let key = stab +. b in
        let c2 = Fbt.seek_ge sb key in
        let c1 = match c2 with Some c -> Fbt.prev c | None -> Fbt.seek_le sb key in
        if not (c1 = None && c2 = None) then begin
          let exact = match c2 with Some c -> Fbt.key c = key | None -> false in
          let candidates = Vec.create () in
          let consider (q : CQ.t) =
            if I.stabs q.range_a r.a && mark t q then Vec.push candidates q
          in
          let scan_lo bound =
            let n = Array.length g.by_lo in
            let rec go i =
              if i < n then begin
                let q = g.by_lo.(i) in
                if I.lo q.band <= bound then begin
                  consider q;
                  go (i + 1)
                end
              end
            in
            go 0
          in
          (if exact then scan_lo infinity
           else begin
             (match c1 with Some c -> scan_lo (Fbt.key c -. b) | None -> ());
             match c2 with
             | Some c ->
                 let s2_shift = Fbt.key c -. b in
                 let n = Array.length g.by_hi in
                 let rec go i =
                   if i < n then begin
                     let q = g.by_hi.(i) in
                     if I.hi q.band >= s2_shift then begin
                       consider q;
                       go (i + 1)
                     end
                   end
                 in
                 go 0
             | None -> ()
           end);
          Vec.iter
            (fun (q : CQ.t) ->
              if probe_query t.table q ~b ~stop_after_first sink then report q)
            candidates
        end)

  let process_r t r sink = visit t r ~stop_after_first:false sink (fun _ -> ())
  let affected t r report = visit t r ~stop_after_first:true (fun _ _ -> ()) report

  let insert_query t q =
    Hashtbl.replace t.queries q.CQ.qid q;
    t.dirty <- true

  let delete_query t (q : CQ.t) =
    if Hashtbl.mem t.queries q.qid then begin
      Hashtbl.remove t.queries q.qid;
      t.dirty <- true;
      true
    end
    else false

  let query_count t = Hashtbl.length t.queries
end

(* --------------------------------------------------------------------- *)

let reference table queries (r : Tuple.r) =
  let acc = ref [] in
  Array.iter
    (fun (q : CQ.t) ->
      Table.iter_s table (fun s ->
          if CQ.matches q ~r_a:r.a ~r_b:r.b ~s_b:s.Tuple.b ~s_c:s.Tuple.c then
            acc := (q.qid, s.sid) :: !acc))
    queries;
  List.sort compare !acc
