(** Continuous equality joins with local selections (Section 3.2):

    [σ_{A ∈ rangeA_i} R ⋈_{R.B = S.B} σ_{C ∈ rangeC_i} S]

    Geometrically, the query is the rectangle [rangeC_i × rangeA_i] in
    the product space S.C × R.A (Figure 5). *)

type t = {
  qid : int;
  range_a : Cq_interval.Interval.t;
  range_c : Cq_interval.Interval.t;
}

val make : qid:int -> range_a:Cq_interval.Interval.t -> range_c:Cq_interval.Interval.t -> t

val of_ranges : (Cq_interval.Interval.t * Cq_interval.Interval.t) array -> t array
(** Number [(rangeA, rangeC)] pairs 0.. as query ids. *)

val rect : t -> Cq_index.Rect.t
(** The query rectangle: x = rangeC (S.C axis), y = rangeA (R.A axis). *)

val matches : t -> r_a:float -> s_c:float -> bool
(** Ground truth on the selection conditions (join equality aside). *)

val pp : Format.formatter -> t -> unit

(** Element view keyed on the rangeC projection — the axis SJ-SSI
    partitions on when processing R-side events. *)
module Elem_c : Hotspot_core.Partition_intf.ELEMENT with type t = t

(** Element view keyed on rangeA — used for the symmetric S-side SSI
    and for the SJ-SelectFirst index. *)
module Elem_a : Hotspot_core.Partition_intf.ELEMENT with type t = t
