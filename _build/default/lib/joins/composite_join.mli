(** Processing composite continuous queries (band join + local
    selections) — an implementation of Section 6's first future-work
    direction.

    Composition costs something: once a C-selection filters the
    B-consecutive result run, output-sensitivity of the SSI's STEP 2 is
    lost (a candidate query may scan part of its instantiated window
    without producing anything).  The SSI strategy here therefore
    guarantees only that {e band-unaffected} queries are never touched;
    among band-affected candidates, the R.A selection is tested in O(1)
    and the C selection during the result walk.  This is precisely the
    composition difficulty the paper flags ("it remains a challenging
    problem to develop methods for composing group-processing
    techniques"). *)

type sink = Composite_query.t -> Cq_relation.Tuple.s -> unit

module type STRATEGY = sig
  type t

  val name : string
  val create : Cq_relation.Table.s_table -> Composite_query.t array -> t
  val process_r : t -> Cq_relation.Tuple.r -> sink -> unit

  val affected : t -> Cq_relation.Tuple.r -> (Composite_query.t -> unit) -> unit
  (** Queries with at least one result for this event, each reported
      once. *)

  val insert_query : t -> Composite_query.t -> unit
  val delete_query : t -> Composite_query.t -> bool
  val query_count : t -> int
end

module Naive : STRATEGY
(** Scan every query; O(n (log m + window)). *)

module Afirst : STRATEGY
(** Stab an interval index on the rangeA selections first (the
    SJ-SelectFirst idea transplanted), then probe per query. *)

module Ssi : STRATEGY
(** SSI over the band windows with inline selection filtering. *)

val reference :
  Cq_relation.Table.s_table ->
  Composite_query.t array ->
  Cq_relation.Tuple.r ->
  (int * int) list
(** Brute-force oracle: sorted (qid, sid) result pairs for one event. *)
