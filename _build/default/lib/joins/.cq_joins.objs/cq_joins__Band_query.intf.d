lib/joins/band_query.mli: Cq_interval Format Hotspot_core
