lib/joins/composite_join.ml: Array Composite_query Cq_index Cq_interval Cq_relation Cq_util Hashtbl Hotspot_core List
