lib/joins/select_join2d.ml: Array Cq_index Cq_interval Cq_relation Cq_util Hashtbl Hotspot_core List Select_query
