lib/joins/select_query.mli: Cq_index Cq_interval Format Hotspot_core
