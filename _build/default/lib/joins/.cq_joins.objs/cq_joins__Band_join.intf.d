lib/joins/band_join.mli: Band_query Cq_relation
