lib/joins/select_join.mli: Cq_relation Select_query
