lib/joins/select_query.ml: Array Cq_index Cq_interval Format Int
