lib/joins/band_join.ml: Array Band_query Cq_index Cq_interval Cq_relation Cq_util Hashtbl Hotspot_core List
