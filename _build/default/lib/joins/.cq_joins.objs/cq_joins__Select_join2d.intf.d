lib/joins/select_join2d.mli: Cq_relation Select_query
