lib/joins/composite_join.mli: Composite_query Cq_relation
