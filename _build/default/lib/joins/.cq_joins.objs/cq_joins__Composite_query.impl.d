lib/joins/composite_query.ml: Cq_interval Format Int
