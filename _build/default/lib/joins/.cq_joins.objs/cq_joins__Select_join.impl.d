lib/joins/select_join.ml: Array Cq_histogram Cq_index Cq_interval Cq_relation Cq_util Hashtbl Hotspot_core List Select_query
