lib/joins/band_query.ml: Array Cq_interval Format Int
