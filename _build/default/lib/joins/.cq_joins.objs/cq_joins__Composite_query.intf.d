lib/joins/composite_query.mli: Cq_interval Format Hotspot_core
