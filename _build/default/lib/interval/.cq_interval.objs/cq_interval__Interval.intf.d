lib/interval/interval.mli: Cq_util Format
