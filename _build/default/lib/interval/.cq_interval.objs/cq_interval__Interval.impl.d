lib/interval/interval.ml: Cq_util Float Format
