type t = { lo : float; hi : float }

(* The empty interval is encoded as an inverted pair; all observers
   special-case it so the encoding never leaks. *)
let empty = { lo = infinity; hi = neg_infinity }

let is_empty iv = iv.lo > iv.hi

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi then invalid_arg "Interval.make: NaN bound";
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let of_midpoint ~mid ~len =
  let half = Float.max len 0.0 /. 2.0 in
  { lo = mid -. half; hi = mid +. half }

let point x = make x x

let lo iv = iv.lo
let hi iv = iv.hi
let length iv = if is_empty iv then 0.0 else iv.hi -. iv.lo
let midpoint iv = (iv.lo +. iv.hi) /. 2.0

let stabs iv x = iv.lo <= x && x <= iv.hi

let overlaps a b = (not (is_empty a)) && (not (is_empty b)) && a.lo <= b.hi && b.lo <= a.hi

let inter a b =
  if overlaps a b then { lo = Float.max a.lo b.lo; hi = Float.min a.hi b.hi } else empty

let hull a b =
  if is_empty a then b
  else if is_empty b then a
  else { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let shift iv d = if is_empty iv then iv else { lo = iv.lo +. d; hi = iv.hi +. d }

let contains outer inner =
  is_empty inner || ((not (is_empty outer)) && outer.lo <= inner.lo && inner.hi <= outer.hi)

let compare_lo a b =
  let c = Float.compare a.lo b.lo in
  if c <> 0 then c else Float.compare a.hi b.hi

let compare_hi_desc a b =
  let c = Float.compare b.hi a.hi in
  if c <> 0 then c else Float.compare b.lo a.lo

let equal a b = (is_empty a && is_empty b) || (a.lo = b.lo && a.hi = b.hi)

let pp fmt iv =
  if is_empty iv then Format.fprintf fmt "[empty]"
  else Format.fprintf fmt "[%g, %g]" iv.lo iv.hi

let to_string iv = Format.asprintf "%a" pp iv

let random rng ~lo:l ~hi:h =
  let a = Cq_util.Dist.uniform rng ~lo:l ~hi:h in
  let b = Cq_util.Dist.uniform rng ~lo:l ~hi:h in
  if a <= b then make a b else make b a
