(** Closed intervals [\[lo, hi\]] over the reals.

    Query ranges in the paper ([rangeA], [rangeB], [rangeC]) are closed
    numeric intervals; a data value [x] {e stabs} an interval iff
    [lo <= x <= hi].  The empty interval is represented explicitly so
    that intersection is total. *)

type t = private { lo : float; hi : float }
(** Invariant: [lo <= hi] for non-empty intervals.  Use {!make}. *)

val make : float -> float -> t
(** [make lo hi] builds [\[lo, hi\]].  @raise Invalid_argument if
    [lo > hi] or either bound is NaN. *)

val of_midpoint : mid:float -> len:float -> t
(** Interval of length [max len 0] centred at [mid]. *)

val point : float -> t
(** Degenerate interval [\[x, x\]]. *)

val empty : t
(** A canonical empty interval; [is_empty empty] holds and it behaves as
    the absorbing element of {!inter}. *)

val is_empty : t -> bool
val lo : t -> float
val hi : t -> float
val length : t -> float
(** 0 for the empty interval. *)

val midpoint : t -> float

val stabs : t -> float -> bool
(** [stabs iv x] is true iff [x] is contained in [iv]. *)

val overlaps : t -> t -> bool
(** Non-empty common intersection (closed semantics: touching endpoints
    overlap). *)

val inter : t -> t -> t
(** Common intersection; {!empty} when disjoint. *)

val hull : t -> t -> t
(** Smallest interval containing both (empty is the identity). *)

val shift : t -> float -> t
(** [shift iv d] translates both endpoints by [d] — the paper's
    [rangeB_i + r.B] instantiation for band joins. *)

val contains : t -> t -> bool
(** [contains outer inner]: is [inner] a subset of [outer]?  The empty
    interval is contained in everything. *)

val compare_lo : t -> t -> int
(** Order by left endpoint, ties by right endpoint — the sort order of
    the canonical greedy algorithm (Lemma 1). *)

val compare_hi_desc : t -> t -> int
(** Order by decreasing right endpoint, ties by decreasing left — the
    order of the [Ir_j] sequences in BJ-SSI. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val random : Cq_util.Rng.t -> lo:float -> hi:float -> t
(** Interval with both endpoints uniform in [\[lo, hi\]], normalised. *)
