let section id title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s — %s\n" id title;
  Printf.printf "================================================================\n%!"

let note fmt = Format.printf ("  " ^^ fmt ^^ "@.")

let table ~header ~rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row -> List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let print_row row =
    print_string "  ";
    List.iteri (fun i cell -> Printf.printf "%-*s  " widths.(i) cell) row;
    print_newline ()
  in
  print_row header;
  print_row (List.init (List.length header) (fun i -> String.make widths.(i) '-'));
  List.iter print_row rows;
  print_string "\n";
  flush stdout

let throughput ~events ~warmup f =
  let n = Array.length events in
  if warmup >= n then invalid_arg "Report.throughput: no measured events";
  for i = 0 to warmup - 1 do
    f events.(i)
  done;
  let measured = n - warmup in
  let t0 = Cq_util.Clock.now () in
  for i = warmup to n - 1 do
    f events.(i)
  done;
  let dt = Cq_util.Clock.now () -. t0 in
  Cq_util.Clock.throughput ~events:measured ~seconds:dt

let time_per_op ~n f =
  if n <= 0 then invalid_arg "Report.time_per_op: n must be positive";
  let t0 = Cq_util.Clock.now () in
  for i = 0 to n - 1 do
    f i
  done;
  let dt = Cq_util.Clock.now () -. t0 in
  dt /. float_of_int n *. 1e9

let fmt_throughput x =
  if x >= 1e6 then Printf.sprintf "%.2fM/s" (x /. 1e6)
  else if x >= 1e3 then Printf.sprintf "%.1fk/s" (x /. 1e3)
  else Printf.sprintf "%.1f/s" x

let fmt_ns x =
  if x >= 1e6 then Printf.sprintf "%.2fms" (x /. 1e6)
  else if x >= 1e3 then Printf.sprintf "%.2fus" (x /. 1e3)
  else Printf.sprintf "%.0fns" x

let fmt_f x =
  if Float.abs x >= 100.0 then Printf.sprintf "%.0f" x
  else if Float.abs x >= 1.0 then Printf.sprintf "%.2f" x
  else Printf.sprintf "%.4f" x
