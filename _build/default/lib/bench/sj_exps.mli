(** Select-join experiments: Figures 7(i), 7(ii), 8(iii), 8(iv), 9. *)

val fig7i : Setup.scale -> unit
val fig7ii : Setup.scale -> unit
val fig8iii : Setup.scale -> unit
val fig8iv : Setup.scale -> unit
val fig9 : Setup.scale -> unit
