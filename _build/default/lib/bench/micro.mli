(** Bechamel micro-benchmarks over the core operations — one
    [Test.make] per operation, all collected into a single run. *)

val run : unit -> unit
