(** Band-join experiments: Figures 10(i), 10(ii), 11. *)

val fig10i : Setup.scale -> unit
val fig10ii : Setup.scale -> unit
val fig11 : Setup.scale -> unit
