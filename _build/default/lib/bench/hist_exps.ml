(* Histogram experiment: Figure 12 — plus Figure 2's analytic model and
   the Table 1 parameter sheet. *)

module I = Cq_interval.Interval
module SF = Cq_histogram.Step_fn
module H = Cq_histogram.Histogram
module SH = Cq_histogram.Ssi_hist

(* ----------------------------- Figure 12 ------------------------------ *)

let fig12 (scale : Setup.scale) =
  Report.section "fig12" "Histogram quality: EQW-HIST vs SSI-HIST vs OPTIMAL";
  Report.note "paper: OPTIMAL consistently wins but is impractically slow to build";
  Report.note "(6.5h on a 10%% sample); SSI-HIST beats EQW throughout and closes most";
  Report.note "of the gap; EQW needs ~2.5x the buckets to match SSI-HIST at 20.";
  Report.note "workload: clustered intervals (18 Zipf-weighted clusters), the regime";
  Report.note "hotspots target; the paper's flat Table-1 draw yields a unimodal f on";
  Report.note "which every method is trivially accurate (see EXPERIMENTS.md).";
  let n = scale.tuples in
  let rng = Cq_util.Rng.create 42 in
  let ivs =
    Cq_relation.Workload.gen_clustered_ranges rng ~n ~n_clusters:18 ~clustered_frac:1.0
      ~domain:Setup.domain ~cluster_halfwidth:50.0 ~len_mu:150.0 ~len_sigma:80.0
  in
  let f = SF.of_intervals ivs in
  let lo, hi = Setup.domain in
  let prng = Cq_util.Rng.create 7 in
  let probes = Array.init 5000 (fun _ -> Cq_util.Dist.uniform prng ~lo ~hi) in
  (* OPTIMAL on a 10% sample, values scaled back up — exactly the
     paper's concession to its cost. *)
  let sample = Array.init (n / 10) (fun i -> ivs.(i * 10)) in
  let fs = SF.of_intervals sample in
  Report.note "tau = %d stabbing groups; %d breakpoints"
    (Hotspot_core.Stabbing.tau Fun.id ivs)
    (SF.num_pieces f);
  let build_opt buckets =
    let (opt, dt) =
      Cq_util.Clock.time (fun () -> H.optimal fs ~lo ~hi ~buckets)
    in
    ({ opt with H.values = Array.map (fun v -> v *. 10.0) opt.H.values }, dt)
  in
  let rows =
    List.map
      (fun buckets ->
        let ssi, ssi_dt = Cq_util.Clock.time (fun () -> SH.build ivs ~buckets) in
        let used = SH.buckets_used ssi in
        let eqw = H.equal_width f ~lo ~hi ~buckets:used in
        let eqd = H.equal_depth f ~lo ~hi ~buckets:used in
        let opt, opt_dt = build_opt used in
        [
          string_of_int buckets;
          string_of_int used;
          Printf.sprintf "%.1f%%" (100.0 *. H.avg_rel_error_on eqw f ~probes);
          Printf.sprintf "%.1f%%" (100.0 *. H.avg_rel_error_on eqd f ~probes);
          Printf.sprintf "%.1f%% (%.2fs)" (100.0 *. SH.avg_rel_error_on ssi f ~probes) ssi_dt;
          Printf.sprintf "%.1f%% (%.1fs, 10%% sample)"
            (100.0 *. H.avg_rel_error_on opt f ~probes)
            opt_dt;
        ])
      [ 20; 30; 40; 50; 60; 70 ]
  in
  Report.table
    ~header:[ "buckets"; "used"; "EQW-HIST"; "EQD-HIST"; "SSI-HIST"; "OPTIMAL" ]
    ~rows

(* ------------------------------ Figure 2 ------------------------------ *)

let fig2 (_scale : Setup.scale) =
  Report.section "fig2" "Hotspot coverage under Zipf-distributed group sizes";
  Report.note "paper: with 5000 groups, the top-500 (10%%) cover ~70%% of all queries";
  Report.note "at beta = 1, and more for larger beta.";
  let ks = [ 1; 10; 50; 100; 200; 300; 400; 500 ] in
  let betas = [ 1.0; 1.1; 1.2 ] in
  let rows =
    List.map
      (fun k ->
        string_of_int k
        :: List.map
             (fun beta ->
               Printf.sprintf "%.1f%%"
                 (100.0 *. Cq_engine.Zipf_model.coverage ~n_groups:5000 ~beta ~top_k:k))
             betas)
      ks
  in
  Report.table
    ~header:("top-k groups" :: List.map (fun b -> Printf.sprintf "beta=%.1f" b) betas)
    ~rows

(* ------------------------------ Table 1 ------------------------------- *)

let table1 (scale : Setup.scale) =
  Report.section "table1" "Experimental parameters (Table 1)";
  Format.printf "%a@." Cq_relation.Workload.pp_config Cq_relation.Workload.default;
  Report.note "harness scale: |S| = %d tuples, %d queries, %d events per point"
    scale.tuples scale.queries scale.events
