lib/bench/registry.ml: Ablations Bj_exps Cq_util Hist_exps List Printf Setup Sj_exps
