lib/bench/report.ml: Array Cq_util Float Format List Printf String
