lib/bench/sj_exps.ml: Array Cq_interval Cq_joins Cq_relation Hotspot_core List Printf Report Setup
