lib/bench/micro.ml: Analyze Array Bechamel Benchmark Cq_index Cq_interval Cq_joins Cq_relation Cq_util Hashtbl Hotspot_core List Measure Report Staged Test Time Toolkit
