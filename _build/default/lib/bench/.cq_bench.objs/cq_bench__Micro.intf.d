lib/bench/micro.mli:
