lib/bench/ablations.mli: Setup
