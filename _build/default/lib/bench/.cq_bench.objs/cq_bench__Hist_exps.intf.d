lib/bench/hist_exps.mli: Setup
