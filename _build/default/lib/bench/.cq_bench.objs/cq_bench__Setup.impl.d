lib/bench/setup.ml: Array Cq_interval Cq_joins Cq_relation Cq_util Float
