lib/bench/bj_exps.mli: Setup
