lib/bench/registry.mli: Setup
