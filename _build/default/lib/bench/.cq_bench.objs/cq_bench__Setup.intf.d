lib/bench/setup.mli: Cq_joins Cq_relation
