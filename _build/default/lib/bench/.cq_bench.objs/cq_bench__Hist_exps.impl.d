lib/bench/hist_exps.ml: Array Cq_engine Cq_histogram Cq_interval Cq_relation Cq_util Format Fun Hotspot_core List Printf Report Setup
