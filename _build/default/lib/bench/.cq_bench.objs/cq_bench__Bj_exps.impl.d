lib/bench/bj_exps.ml: Array Cq_joins Cq_util Hotspot_core List Report Setup
