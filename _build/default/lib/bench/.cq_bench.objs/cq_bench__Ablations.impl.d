lib/bench/ablations.ml: Array Cq_index Cq_interval Cq_joins Cq_relation Cq_util Hotspot_core List Printf Report Setup
