lib/bench/sj_exps.mli: Setup
