(** Row/table printing and timing helpers shared by every experiment in
    the benchmark harness. *)

val section : string -> string -> unit
(** [section id title] prints an experiment header. *)

val note : ('a, Format.formatter, unit) format -> 'a
(** Free-form annotation under the current section. *)

val table : header:string list -> rows:string list list -> unit
(** Aligned plain-text table. *)

val throughput :
  events:'a array -> warmup:int -> ('a -> unit) -> float
(** Run the warmup prefix unmeasured, then time the rest; events/sec.
    @raise Invalid_argument if there are no measured events. *)

val time_per_op : n:int -> (int -> unit) -> float
(** Average wall time per call, in nanoseconds. *)

val fmt_throughput : float -> string
val fmt_ns : float -> string
val fmt_f : float -> string
