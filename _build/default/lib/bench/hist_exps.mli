(** Histogram experiment (Figure 12), the Figure-2 coverage model and
    the Table-1 parameter sheet. *)

val fig12 : Setup.scale -> unit
val fig2 : Setup.scale -> unit
val table1 : Setup.scale -> unit
