(** Priority search tree (McCreight 1985), the structure the paper
    names for the O(log(1/α)) hotspot-membership check and as a
    BJ-DOuter window index.

    An interval [\[lo, hi\]] is the point (lo, hi): a stabbing query
    for x asks for all points with lo <= x <= hi — a three-sided query
    (lo in (-inf, x], hi in [x, +inf)).  The tree is a binary search
    tree on lo combined with a max-heap on hi: stabbing reports k
    intervals in O(log n + k).

    This implementation is a randomized-balanced (treap) variant with
    heap-on-hi maintained as a subtree augmentation via tournament
    winners, supporting O(log n) expected insert and delete. *)

type 'a t

val empty : 'a t
val size : 'a t -> int

val add : Cq_util.Rng.t -> Cq_interval.Interval.t -> 'a -> 'a t -> 'a t
(** Persistent insert; duplicates kept.  @raise Invalid_argument on an
    empty interval. *)

val remove : Cq_interval.Interval.t -> ('a -> bool) -> 'a t -> 'a t option
(** Remove one entry with exactly this interval and a matching
    payload; [None] if absent. *)

val stab : 'a t -> float -> (Cq_interval.Interval.t -> 'a -> unit) -> unit
(** Report every stored interval containing x, in O(log n + k). *)

val stab_count : 'a t -> float -> int
val stab_any : 'a t -> float -> (Cq_interval.Interval.t * 'a) option
(** Some stabbed interval if any exists — O(log n); the paper's
    membership-style check. *)

val iter : (Cq_interval.Interval.t -> 'a -> unit) -> 'a t -> unit

val check_invariants : 'a t -> unit
(** BST order on lo, max-hi augmentation correctness.
    @raise Failure on violation. *)

(** Imperative facade. *)
module Mutable : sig
  type 'a p := 'a t
  type 'a t

  val create : ?seed:int -> unit -> 'a t
  val size : 'a t -> int
  val add : 'a t -> Cq_interval.Interval.t -> 'a -> unit
  val remove : 'a t -> Cq_interval.Interval.t -> ('a -> bool) -> bool
  val stab : 'a t -> float -> (Cq_interval.Interval.t -> 'a -> unit) -> unit
  val stab_count : 'a t -> float -> int
  val stab_any : 'a t -> float -> (Cq_interval.Interval.t * 'a) option
  val snapshot : 'a t -> 'a p
end
