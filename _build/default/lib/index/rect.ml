module I = Cq_interval.Interval

type t = { x : I.t; y : I.t }

let make ~x ~y = { x; y }

let of_bounds ~x0 ~x1 ~y0 ~y1 = { x = I.make x0 x1; y = I.make y0 y1 }

let empty = { x = I.empty; y = I.empty }

let is_empty r = I.is_empty r.x || I.is_empty r.y

let contains_point r ~x ~y = I.stabs r.x x && I.stabs r.y y

let contains outer inner =
  is_empty inner || (I.contains outer.x inner.x && I.contains outer.y inner.y)

let intersects a b = I.overlaps a.x b.x && I.overlaps a.y b.y

let union a b =
  if is_empty a then b
  else if is_empty b then a
  else { x = I.hull a.x b.x; y = I.hull a.y b.y }

let area r = if is_empty r then 0.0 else I.length r.x *. I.length r.y

let margin r = if is_empty r then 0.0 else I.length r.x +. I.length r.y

let enlargement mbr r = area (union mbr r) -. area mbr

let equal a b = (is_empty a && is_empty b) || (I.equal a.x b.x && I.equal a.y b.y)

let pp fmt r =
  if is_empty r then Format.fprintf fmt "[empty rect]"
  else Format.fprintf fmt "%a x %a" I.pp r.x I.pp r.y
