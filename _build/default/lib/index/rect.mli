(** Axis-aligned rectangles in the product space [S.C × R.A].

    A continuous equality-join query with local selections
    [σ_{A∈rangeA} R ⋈ σ_{C∈rangeC} S] is the rectangle
    [rangeC × rangeA] (Section 3.2, Figure 5). *)

type t = { x : Cq_interval.Interval.t; y : Cq_interval.Interval.t }

val make : x:Cq_interval.Interval.t -> y:Cq_interval.Interval.t -> t
val of_bounds : x0:float -> x1:float -> y0:float -> y1:float -> t

val empty : t
val is_empty : t -> bool

val contains_point : t -> x:float -> y:float -> bool

val contains : t -> t -> bool
(** [contains outer inner]: is [inner] a subset of [outer]?  An empty
    rectangle is contained in everything. *)

val intersects : t -> t -> bool

val union : t -> t -> t
(** Minimum bounding rectangle of both. *)

val area : t -> float

val margin : t -> float
(** Half perimeter — used by split heuristics. *)

val enlargement : t -> t -> float
(** [enlargement mbr r]: area growth of [mbr] needed to absorb [r]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
