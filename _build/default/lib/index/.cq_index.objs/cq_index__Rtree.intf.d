lib/index/rtree.mli: Rect
