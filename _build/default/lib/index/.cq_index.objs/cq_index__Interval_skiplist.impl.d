lib/index/interval_skiplist.ml: Array Cq_interval Cq_util Fun Hashtbl List Option Printf
