lib/index/interval_skiplist.mli: Cq_interval
