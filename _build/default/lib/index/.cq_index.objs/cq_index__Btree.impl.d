lib/index/btree.ml: Array List Option Printf
