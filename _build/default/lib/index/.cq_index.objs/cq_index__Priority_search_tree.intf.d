lib/index/priority_search_tree.mli: Cq_interval Cq_util
