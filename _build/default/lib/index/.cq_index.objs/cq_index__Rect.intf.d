lib/index/rect.mli: Cq_interval Format
