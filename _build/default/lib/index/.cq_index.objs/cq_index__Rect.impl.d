lib/index/rect.ml: Cq_interval Format
