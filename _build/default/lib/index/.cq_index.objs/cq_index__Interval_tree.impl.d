lib/index/interval_tree.ml: Cq_interval Float List Printf
