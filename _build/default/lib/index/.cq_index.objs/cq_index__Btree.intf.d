lib/index/btree.mli:
