lib/index/interval_tree.mli: Cq_interval
