lib/index/rtree.ml: Array Cq_util Float Printf Rect
