lib/index/priority_search_tree.ml: Cq_interval Cq_util Float List Printf
