lib/index/treap.mli: Cq_interval Cq_util
