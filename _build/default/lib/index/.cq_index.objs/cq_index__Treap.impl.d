lib/index/treap.ml: Cq_interval Cq_util List Printf
