(** Dynamic stabbing index: an AVL tree keyed by interval left
    endpoints, with each node augmented by the maximum right endpoint
    in its subtree.

    This is the classic in-memory interval tree the paper lists as an
    option for BJ-DOuter and SJ-SelectFirst ("an index on ranges, e.g.,
    priority search tree or external interval tree"): a stabbing query
    — report every stored interval containing a point — runs in
    O(min(n, (k+1) log n)) where k is the output size.  Insert and
    delete are O(log n).

    The structure is persistent (applicative); the thin {!Mutable}
    wrapper packages it behind an imperative interface for call sites
    that want one. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val add : Cq_interval.Interval.t -> 'a -> 'a t -> 'a t
(** Insert an interval with a payload.  Duplicates (even identical
    interval + payload) are kept. *)

val remove : Cq_interval.Interval.t -> ('a -> bool) -> 'a t -> 'a t option
(** [remove iv pred t] deletes one entry with exactly this interval
    whose payload satisfies [pred]; [None] if no such entry exists. *)

val stab : 'a t -> float -> (Cq_interval.Interval.t -> 'a -> unit) -> unit
(** [stab t x f] applies [f] to every stored (interval, payload) whose
    interval contains [x]. *)

val stab_list : 'a t -> float -> (Cq_interval.Interval.t * 'a) list
val stab_count : 'a t -> float -> int

val query : 'a t -> Cq_interval.Interval.t -> (Cq_interval.Interval.t -> 'a -> unit) -> unit
(** Report every stored interval overlapping the query interval. *)

val iter : (Cq_interval.Interval.t -> 'a -> unit) -> 'a t -> unit
val to_list : 'a t -> (Cq_interval.Interval.t * 'a) list
(** Entries in key order (left endpoint, then right). *)

val check_invariants : 'a t -> unit
(** AVL balance, key order and max-hi augmentation; @raise Failure. *)

(** Imperative facade over the persistent tree. *)
module Mutable : sig
  type 'a p := 'a t
  type 'a t

  val create : unit -> 'a t
  val size : 'a t -> int
  val add : 'a t -> Cq_interval.Interval.t -> 'a -> unit
  val remove : 'a t -> Cq_interval.Interval.t -> ('a -> bool) -> bool
  val stab : 'a t -> float -> (Cq_interval.Interval.t -> 'a -> unit) -> unit
  val stab_count : 'a t -> float -> int
  val snapshot : 'a t -> 'a p
end
