(** Randomised balanced search trees (treaps) over interval-carrying
    elements, with O(log n) expected insert, delete, {e split} and
    {e join}, and a subtree augmentation maintaining the {e common
    intersection} of all member intervals.

    This is the "height-balanced binary tree supporting INSERT, DELETE,
    SPLIT and JOIN in O(log n)" that Appendix B builds each stabbing
    group on: leaves hold the group's intervals ordered by left
    endpoint, and the root's augmented value is the group's common
    intersection ⋂Ii.  (Tarjan's reference is a 2-3 tree; a treap gives
    the same expected bounds with far simpler split/join.) *)

module type ELEMENT = sig
  type t

  val compare : t -> t -> int
  (** Total order whose {e primary} criterion must be the interval's
      left endpoint (Appendix B's invariant (⋆) depends on it). *)

  val interval : t -> Cq_interval.Interval.t
end

module Make (E : ELEMENT) : sig
  type t

  val empty : t
  val is_empty : t -> bool
  val size : t -> int

  val isect : t -> Cq_interval.Interval.t
  (** Common intersection of all member intervals; for the empty treap
      this is the full line [(-inf, +inf)] (neutral element). *)

  val add : Cq_util.Rng.t -> E.t -> t -> t
  (** Insert (duplicates by [E.compare] are kept, landing adjacently).
      The RNG draws the node's heap priority. *)

  val remove : E.t -> t -> t option
  (** Remove one element equal to the argument; [None] if absent. *)

  val mem : E.t -> t -> bool

  val split_lo_le : float -> t -> t * t
  (** [split_lo_le x t] = (elements whose interval's left endpoint <= x,
      the rest), each a valid treap.  This is the Appendix-B SPLIT at
      the right endpoint of the active set's common intersection. *)

  val join : t -> t -> t
  (** [join l r] assumes every element of [l] precedes every element of
      [r] in [E.compare] order (checked only in test builds via
      {!check_invariants}). *)

  val min_elt : t -> E.t option
  val iter : (E.t -> unit) -> t -> unit
  val fold : ('acc -> E.t -> 'acc) -> 'acc -> t -> 'acc
  val to_list : t -> E.t list
  val of_list : Cq_util.Rng.t -> E.t list -> t

  val check_invariants : t -> unit
  (** Heap order on priorities, BST order on elements, intersection
      augmentation; @raise Failure. *)
end
